(** Protocol-invariant rules: the per-record state machine.

    One pass over a call-time-sorted record stream, tracking just enough
    state to check RPC pairing, file-handle lifecycle and I/O sanity:

    - outstanding (client, XID) pairs within a reuse window;
    - the set of handles the trace has introduced (LOOKUP/CREATE
      results, or any non-I/O use — the mount-root handle arrives
      outside the trace, so first use introduces implicitly);
    - link counts and (dir, name) bindings so REMOVE/RMDIR/RENAME can
      resolve which handle died;
    - the previous call timestamp and per-record reply/size fields.

    All tables are {!Bounded}; eviction makes the checker forget and
    therefore miss violations, never invent them — with one exception:
    once the introduced-handle set has evicted, [fh-before-introduction]
    is suppressed entirely (fail open) because lost membership would
    otherwise fabricate findings.

    Passive captures timestamp packets at the monitor, so causally
    ordered RPCs can appear a few milliseconds out of order. The
    handle-lifecycle rules therefore tolerate one [reorder_window]:
    I/O on a not-yet-introduced handle is held as a suspect and only
    reported once the stream is a full window past it with no
    introducing reply having surfaced ({!finalize} judges the rest),
    and use-after-remove fires only when the use trails the REMOVE by
    more than the window. *)

type config = {
  reorder_window : float;  (** tolerated backwards step in call time, seconds *)
  xid_window : float;  (** (client, XID) reuse within this window is duplicate *)
  max_tracked : int;  (** capacity of each state table *)
}

type t

val create : config -> emit:(Finding.t -> unit) -> t

val observe : t -> index:int -> Nt_trace.Record.t -> unit
(** Check one record and fold it into the state. [index] is the
    zero-based position in the stream, reported in findings. *)

val finalize : t -> unit
(** Judge all still-pending suspect uses as if the stream had advanced
    past every reorder window. Idempotent; call once the stream ends
    (further {!observe} calls remain valid). *)

val tracked : t -> int
(** Total live entries across all state tables (bench observability). *)

val evictions : t -> int
(** Capacity evictions across all state tables so far. *)
