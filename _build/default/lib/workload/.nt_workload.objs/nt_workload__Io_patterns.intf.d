lib/workload/io_patterns.mli: Nt_nfs Nt_sim Nt_util
