(** The bounded ingest queue between the feed reader and the analysis
    loop — the monitor's overload valve.

    A fixed-capacity FIFO that sheds from the {e head} when full: under
    overload the monitor keeps the newest records and drops the oldest,
    so reports describe the present, stay bounded in latency, and every
    dropped record is returned to the caller to be counted. Plain
    circular buffer, O(1) push/pop, no allocation per operation. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val push : 'a t -> 'a -> 'a option
(** Enqueue; returns [Some oldest] when the queue was full and the
    oldest element was shed to make room. *)

val pop : 'a t -> 'a option
val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool

val footprint : ?entry_words:int -> 'a t -> Nt_obs.Footprint.t
(** State-footprint accounting; the queue is parametric, so the caller
    supplies the per-entry heap-words estimate (default 24, a trace
    record's rough boxed cost). *)
