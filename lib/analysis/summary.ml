module Record = Nt_trace.Record
module Proc = Nt_nfs.Proc
module Fh = Nt_nfs.Fh

module Fh_set = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

type t = {
  per_proc : (Proc.t, int) Hashtbl.t;
  mutable total : int;
  mutable bytes_read : float;
  mutable bytes_written : float;
  touched : unit Fh_set.t;
  mutable first : float;
  mutable last : float;
}

let create () =
  {
    per_proc = Hashtbl.create 32;
    total = 0;
    bytes_read = 0.;
    bytes_written = 0.;
    touched = Fh_set.create 4096;
    first = infinity;
    last = neg_infinity;
  }

let observe t (r : Record.t) =
  let proc = Record.proc r in
  Hashtbl.replace t.per_proc proc (1 + Option.value (Hashtbl.find_opt t.per_proc proc) ~default:0);
  t.total <- t.total + 1;
  if r.time < t.first then t.first <- r.time;
  if r.time > t.last then t.last <- r.time;
  (match Proc.kind proc with
  | Proc.Data_read -> t.bytes_read <- t.bytes_read +. float_of_int (Record.io_bytes r)
  | Proc.Data_write -> t.bytes_written <- t.bytes_written +. float_of_int (Record.io_bytes r)
  | Proc.Metadata_read | Proc.Metadata_write -> ());
  match Record.target_fh r with
  | Some fh -> if not (Fh_set.mem t.touched fh) then Fh_set.add t.touched fh ()
  | None -> ()
[@@nt.bounded "per_proc is keyed by the finite proc enum"]
[@@nt.unbounded "touched is the paper's working-set metric: one entry per distinct file handle"]

let merge a b =
  Hashtbl.iter
    (fun proc n ->
      Hashtbl.replace a.per_proc proc (n + Option.value (Hashtbl.find_opt a.per_proc proc) ~default:0))
    b.per_proc;
  a.total <- a.total + b.total;
  a.bytes_read <- a.bytes_read +. b.bytes_read;
  a.bytes_written <- a.bytes_written +. b.bytes_written;
  Fh_set.iter (fun fh () -> if not (Fh_set.mem a.touched fh) then Fh_set.add a.touched fh ()) b.touched;
  (* The infinity sentinels make an empty accumulator merge-neutral:
     min/max against them never widens the observed span, so an empty
     shard contributes nothing (the >= 1 us clamp in [days] applies only
     to the final merged span, never per shard). *)
  if b.first < a.first then a.first <- b.first;
  if b.last > a.last then a.last <- b.last;
  a

let total_ops t = t.total
let ops_for t proc = Option.value (Hashtbl.find_opt t.per_proc proc) ~default:0
let read_ops t = ops_for t Proc.Read
let write_ops t = ops_for t Proc.Write
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written

let data_ops_pct t =
  if t.total = 0 then 0.
  else 100. *. float_of_int (read_ops t + write_ops t) /. float_of_int t.total

let ratio a b = if b = 0. then 0. else a /. b
let read_write_byte_ratio t = ratio t.bytes_read t.bytes_written
let read_write_op_ratio t = ratio (float_of_int (read_ops t)) (float_of_int (write_ops t))
let unique_files_accessed t = Fh_set.length t.touched

let days t =
  if t.last <= t.first then 1e-6 /. 86400. else (t.last -. t.first) /. 86400.

type daily = {
  total_ops_m : float;
  data_read_gb : float;
  read_ops_m : float;
  data_written_gb : float;
  write_ops_m : float;
  rw_byte_ratio : float;
  rw_op_ratio : float;
}

let daily ?(scale = 1.0) t =
  let d = days t in
  let per_day x = x /. d /. scale in
  let gb = 1024. *. 1024. *. 1024. in
  {
    total_ops_m = per_day (float_of_int t.total) /. 1e6;
    data_read_gb = per_day t.bytes_read /. gb;
    read_ops_m = per_day (float_of_int (read_ops t)) /. 1e6;
    data_written_gb = per_day t.bytes_written /. gb;
    write_ops_m = per_day (float_of_int (write_ops t)) /. 1e6;
    rw_byte_ratio = read_write_byte_ratio t;
    rw_op_ratio = read_write_op_ratio t;
  }

let top_procs t =
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) t.per_proc []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let footprint t =
  (* touched dominates: one table entry + boxed handle per distinct
     file; per_proc is bounded by the proc enum. *)
  let procs = Hashtbl.length t.per_proc and touched = Fh_set.length t.touched in
  Nt_obs.Footprint.v ~cards:(procs + touched) ~words:(16 + (procs * 6) + (touched * 12))
