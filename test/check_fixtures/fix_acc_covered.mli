(* Clean twin of Fix_acc: same shape, but Fix_testreg registers its
   merge through prop_merge_laws, so merge-law-missing must stay
   silent. *)

type t

val empty : t
val add : t -> int -> t
val merge : t -> t -> t
