(** The modified-server read-ahead experiment (§6.4).

    The paper modified the FreeBSD 4.4 NFS server to drive its
    read-ahead heuristic with a simplified sequentiality metric and
    measured >5% end-to-end improvement on large sequential transfers
    when ~10% of requests arrive reordered. This module reproduces the
    mechanism: a request stream for a large sequential read is
    perturbed by nfsiod-style reordering and served against the
    {!Disk} model under each heuristic.

    - [Fragile]: classic FFS-style detection — prefetch only while each
      request starts exactly where the previous ended; a single
      out-of-order request flips the file to "random" and disables
      read-ahead until sequential behaviour re-establishes.
    - [Metric]: maintain the fraction of recent requests that were
      c-consecutive and keep prefetching while the score stays high, so
      isolated swaps do not kill read-ahead. *)

type policy = No_readahead | Fragile | Metric

val policy_name : policy -> string

type outcome = {
  total_time : float;  (** end-to-end service time for the stream *)
  disk_time : float;  (** platter time consumed *)
  requests : int;
  reordered : int;  (** requests that arrived out of ascending order *)
}

val run :
  ?seed:int64 ->
  ?file_blocks:int ->
  ?reorder_fraction:float ->
  ?window:int ->
  policy ->
  outcome
(** Serve one large sequential transfer ([file_blocks], default 2048 =
    16 MB) whose request order has [reorder_fraction] of requests
    displaced within [window] positions (default 3, matching the
    paper's "vast majority of seeks were to blocks two or three
    away"). *)

val speedup : baseline:outcome -> outcome -> float
(** Percentage end-to-end improvement over [baseline]. *)
