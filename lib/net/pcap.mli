(** libpcap savefile format (tcpdump's on-disk format).

    The paper's tracer was a modified tcpdump; ours round-trips the same
    file format so that synthetic captures written by the simulator are
    ordinary pcap files, and the analysis pipeline could equally consume
    a capture produced by a real tcpdump.

    Both byte orders and both microsecond and nanosecond timestamp
    magics are accepted on read; writes are microsecond little-endian,
    linktype EN10MB. *)

type packet = { time : float; orig_len : int; data : string }
(** [data] may be shorter than [orig_len] when the capture snapped. *)

exception Bad_format of string

type writer

val writer_to_buffer : ?snaplen:int -> Buffer.t -> writer
val writer_to_channel : ?snaplen:int -> out_channel -> writer
val write : writer -> time:float -> string -> unit
(** Appends one packet record, truncating to the snaplen. *)

type reader

type read_stats = {
  records : int;  (** records successfully decoded *)
  salvaged : int;  (** records recovered after resyncing past corruption *)
  skipped_bytes : int;  (** bytes discarded while resyncing or at a cut-off tail *)
  resyncs : int;  (** times the salvage scanner re-acquired a record boundary *)
  truncated_tail : bool;  (** the capture ended mid-record *)
}

val reader_of_string : ?obs:Nt_obs.Obs.t -> ?salvage:bool -> string -> reader
val reader_of_channel : ?obs:Nt_obs.Obs.t -> ?salvage:bool -> in_channel -> reader
(** [salvage] (default false): instead of raising {!Bad_format} on a
    corrupt record header, scan forward byte-by-byte for the next
    plausible header, counting skipped bytes — a months-long capture
    with a few mangled records is still mostly analyzable (§4.1.4).

    [obs] hosts the loss-accounting counters ([capture.pcap_records],
    [capture.salvaged_records], [capture.skipped_bytes],
    [capture.resyncs], [capture.truncated_tails]); defaults to a
    private always-enabled registry so {!read_stats} works without
    wiring. *)

val read_next : reader -> packet option
(** [None] at end of file. A final record cut off by EOF also yields
    [None], with [truncated_tail] set in {!read_stats} rather than an
    exception. In non-salvage mode a corrupt record header raises
    {!Bad_format}; in salvage mode it resyncs. *)

val read_stats : reader -> read_stats
(** Loss accounting for everything read so far. *)

val fold : reader -> ('a -> packet -> 'a) -> 'a -> 'a
val packets : reader -> packet Seq.t
(** Lazily read remaining packets. The sequence must be consumed once. *)
