(** Path, unit-name and allowlist-attribute helpers shared by the rule
    passes. *)

val starts_with : prefix:string -> string -> bool

val norm_name : string -> string
(** Strip the [Stdlib.] / [Stdlib__] alias prefixes from a dotted name
    so "Stdlib.Hashtbl.t" and "Hashtbl.t" compare equal. *)

val norm_path : Path.t -> string
val path_last : Path.t -> string

val dotted_of_unit : string -> string
(** "Nt_analysis__Io_log" -> "Nt_analysis.Io_log". *)

val unit_matches : unit:string -> string -> bool
(** Does compilation unit [unit] denote module [target]?  Accepts exact
    matches and wrapped suffixes (Dune__exe__Test_par matches
    Test_par). *)

val allows : Typedtree.attributes -> string list
(** Rule ids allowlisted by [@@nt.domain_safe "reason"],
    [@@nt.alloc_ok "reason"] (whole alloc family),
    [@@nt.bounded "cap"] / [@@nt.unbounded "reason"] (bound family),
    [@@nt.raise_ok "reason"] (exn-escape) or
    [@@nt.allow "<rule-id>: reason"] attributes.  Attributes with no
    reason string suppress nothing. *)

val allowed : string list -> Rule.t -> bool
(** Is [rule] in the allowlist (or is the list a "*" wildcard)? *)
