lib/analysis/summary.ml: Hashtbl List Nt_nfs Nt_trace Option
