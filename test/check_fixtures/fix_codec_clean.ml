(* Clean twin of fix_codec: every constructor has both an encode
   pattern and a decode construction, and the version tag is a registry
   reference rather than a literal. *)

type op = Alpha | Beta

let encode = function Alpha -> 'a' | Beta -> 'b'
let decode = function 'a' -> Some Alpha | 'b' -> Some Beta | _ -> None
let tag = Fix_formats.fixfmt
