(** One rule violation anchored to a source location. *)

type t = { rule : Rule.t; file : string; line : int; col : int; detail : string }

val v : Rule.t -> file:string -> line:int -> col:int -> string -> t

val of_loc : Rule.t -> Location.t -> string -> t
(** Anchor at the start of a typedtree location; [pos_fname] is the
    build-relative source path the compiler recorded. *)

val compare : t -> t -> int
(** Orders by (file, line, col, rule id, detail) so reports are
    deterministic regardless of cmt traversal order. *)

val to_string : t -> string
val to_json : t -> string
val list_to_json : t list -> string

val list_to_sarif : t list -> string
(** SARIF 2.1.0 log: one run, the whole rule registry as the driver's
    rules array, one result per finding (Info/Warn/Error mapped to
    note/warning/error, positions clamped to SARIF's 1-based minima). *)

type sink = { emit : Rule.t -> Location.t -> string -> unit; allow : Rule.t -> unit }
(** How rule passes report: [emit] records a finding (subject to the
    engine's enable set and per-rule cap), [allow] counts a violation
    suppressed by an allowlist attribute. *)
