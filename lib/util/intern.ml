(* String interning for per-record hot paths.  The analysis passes key
   their name tables by (directory handle, component name); hashing and
   comparing those strings per record — or worse, hex-encoding the
   handle first — dominates the pass cost.  Interning maps each
   distinct string to a small int once, so the steady-state per-record
   work is one string-keyed lookup and all downstream table traffic is
   int-keyed and allocation-free.

   Each accumulator owns its interner (atom ids are meaningless across
   instances — merge must translate through [to_string]), which also
   keeps shard accumulators domain-local. *)

type t = {
  ids : (string, int) Hashtbl.t;
  mutable rev : string array;
  mutable n : int;
}

let create size = { ids = Hashtbl.create size; rev = Array.make (max size 16) ""; n = 0 }

let id t s =
  match Hashtbl.find_opt t.ids s with
  | Some i -> i
  | None ->
      let i = t.n in
      if i >= Array.length t.rev then begin
        let bigger = Array.make (2 * Array.length t.rev) "" in
        Array.blit t.rev 0 bigger 0 t.n;
        t.rev <- bigger
      end;
      t.rev.(i) <- s;
      Hashtbl.add t.ids s i;
      t.n <- i + 1;
      i
[@@nt.unbounded "one entry per distinct atom; interning trades table growth for zero-alloc per-record keys"]

let to_string t i = t.rev.(i)
let size t = t.n
