lib/sim/disk.ml: Int Set
