(** On-the-fly reconstruction of the file-system hierarchy.

    NFS traces never show the tree directly, but as the paper notes
    (§4.1.1, following Blaze), the active part of the hierarchy can be
    learned from LOOKUP/CREATE/MKDIR calls and their replies: each one
    reveals that handle [child] is entry [name] of directory [dir].
    After a few minutes of trace the probability of meeting a handle
    with unknown parentage is very small; [resolution_rate] measures
    exactly that claim. *)

type t

val create : unit -> t

val observe : t -> Record.t -> unit
(** Learn from one record: lookup/create/mkdir/symlink/mknod replies
    bind names; rename rebinds; remove/rmdir unbinds. *)

val name_of : t -> Nt_nfs.Fh.t -> string option
(** Last known leaf name of the handle. *)

val path_of : t -> Nt_nfs.Fh.t -> string option
(** Full path from the highest known ancestor, e.g.
    ["?/users/u042/.pinerc"] — the ["?"] marks an unlearned root. *)

val parent_of : t -> Nt_nfs.Fh.t -> Nt_nfs.Fh.t option
val known : t -> int
(** Number of handles with a learned binding. *)

val lookups_resolved : t -> int
val lookups_total : t -> int

val resolution_rate : t -> float
(** Fraction of name-revealing observations whose directory handle was
    already known — the paper's "probability that the parent has been
    seen". 1.0 when nothing was observed. *)
