(** Merge-law and footprint coverage: interfaces exposing
    [merge : t -> t -> t] must have a merge-law property registration in
    the test suite, must also expose state-footprint accounting
    ([footprint] over [t]), and must have that footprint registered
    under the footprint property. *)

val check :
  Finding.sink ->
  in_scope:(string -> bool) ->
  test_units:string list ->
  prop_fn:string ->
  footprint_prop_fn:string ->
  Loader.unit_info list ->
  string list * string list * int
(** [check sink ~in_scope ~test_units ~prop_fn ~footprint_prop_fn units]
    emits a [merge-law-missing] finding per uncovered merge requirement
    and a [footprint-missing] finding per merge-bearing interface that
    either lacks a [footprint] value over [t] or has no
    [footprint_prop_fn] registration naming it, then returns
    [(required, covered, test_units_found)] for the engine's stats:
    dotted names of modules that must be covered, dotted names the test
    registrations actually mention, and how many test units were
    scanned (0 means the coverage side never ran — the engine turns
    that into a config-drift finding). *)
