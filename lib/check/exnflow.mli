(** Interprocedural may-raise analysis.

    The pure lattice/fixpoint core is exposed separately from the
    typedtree lowering so the property tests can drive it on random
    call graphs: [solve] must terminate and be monotone (adding an
    item to any summary never shrinks any node's solution). *)

(** {1 Lattice} *)

module Names : Set.S with type elt = string

type exns =
  | Top  (** may raise something we cannot name *)
  | Names of Names.t  (** raises at most these constructors *)

val bot : exns
val is_bot : exns -> bool
val union : exns -> exns -> exns
val subtract : exns -> string list -> exns
val leq : exns -> exns -> bool
val equal_exns : exns -> exns -> bool
val mem_exn : string -> exns -> bool

val to_strings : exns -> string list
(** [["*"]] for [Top], sorted constructor names otherwise. *)

(** {1 Summaries and fixpoint} *)

type catch =
  | Catch_all  (** wildcard handler: clears the guarded set *)
  | Catch_names of string list  (** subtracts exactly these *)

type 'a item =
  | Prim of string * 'a  (** primitive raise of a named constructor *)
  | Prim_top of 'a  (** primitive raise of an unnameable exception *)
  | Call of string  (** inherits the named node's solution *)
  | Guard of catch * 'a item list  (** handler-subtracted region *)

val eval : (string -> exns) -> 'a item list -> exns
(** One transfer-function application under a solution lookup. *)

val solve : (string * 'a item list) list -> (string, exns) Hashtbl.t
(** Least fixpoint of [eval] over all summaries; nodes absent from the
    list evaluate to [bot] when called. *)

val item_calls : 'a item list -> string list
(** Every [Call] target in a summary, guards included. *)

(** {1 Typedtree lowering} *)

type origin = { o_desc : string; o_file : string; o_line : int }

type node = {
  n_id : string;
  n_display : string;  (** dotted unit ^ "." ^ path, e.g. Nt_tbin.Decoder.feed *)
  n_unit : string;
  n_path : string;
  n_file : string;
  n_line : int;
  n_allows : string list;  (** allowlist rule ids from the binding's attributes *)
}

type graph

val build : Loader.unit_info list -> graph
(** Collect every value binding (top level and nested [struct]s, keyed
    by ident stamp so shadowed bindings stay distinct) and lower each
    body to a summary: raise primitives, the raising-stdlib seed
    table, partial matches, and try/match-exception guards. *)

val nodes : graph -> node list
val node : graph -> string -> node option
val summary : graph -> string -> origin item list
val set_summary : graph -> string -> origin item list -> unit
val summaries : graph -> (string * origin item list) list

val exported : graph -> node -> bool
(** Whether this node is the last binding registered for its (unit,
    path) — i.e. what the module actually exports under that name. *)

val explain :
  graph -> (string, exns) Hashtbl.t -> id:string -> exn:string -> string list option
(** One witness chain from node [id] to a primitive source of [exn]
    (["*"] to chase a [Top]): callee display names ending with the
    primitive's description and location. *)
