type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; sum = 0.; mn = nan; mx = nan }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.mn <- x;
    t.mx <- x
  end
  else begin
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x
  end

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let stddev_pct_of_mean t =
  let m = mean t in
  if m = 0. then 0. else 100. *. stddev t /. Float.abs m

let min t = t.mn
let max t = t.mx

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
    {
      n;
      mean;
      m2;
      sum = a.sum +. b.sum;
      mn = Float.min a.mn b.mn;
      mx = Float.max a.mx b.mx;
    }

let percentile data p =
  let n = Array.length data in
  if n = 0 then nan
  else begin
    let sorted = Array.copy data in
    Array.sort compare sorted;
    if n = 1 then sorted.(0)
    else
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median data = percentile data 50.

let footprint _t =
  (* One flat record of six scalar fields regardless of sample count. *)
  Nt_obs.Footprint.v ~cards:1 ~words:8
