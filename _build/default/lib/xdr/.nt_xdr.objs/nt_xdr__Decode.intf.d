lib/xdr/decode.mli:
