lib/analysis/reorder.mli: Io_log
