(** NFS procedure numbering and workload classification.

    The paper's headline characterisation ("most EECS calls are for
    metadata, most CAMPUS calls are for data") relies on classifying
    procedures; the classification here follows the paper's usage:
    READ/WRITE are data, everything else is metadata. *)

type t =
  | Null
  | Getattr
  | Setattr
  | Root  (** v2 only, obsolete *)
  | Lookup
  | Access  (** v3 only *)
  | Readlink
  | Read
  | Writecache  (** v2 only, unused *)
  | Write
  | Create
  | Mkdir
  | Symlink
  | Mknod  (** v3 only *)
  | Remove
  | Rmdir
  | Rename
  | Link
  | Readdir
  | Readdirplus  (** v3 only *)
  | Statfs  (** v2; the v3 codec maps FSSTAT here *)
  | Fsinfo  (** v3 only *)
  | Pathconf  (** v3 only *)
  | Commit  (** v3 only *)

val to_string : t -> string

val v2_number : t -> int option
(** Wire procedure number under NFSv2; [None] if the procedure does not
    exist in v2. *)

val v3_number : t -> int option
val of_v2_number : int -> t option
val of_v3_number : int -> t option
val number : version:int -> t -> int option
val of_number : version:int -> int -> t option

type kind = Data_read | Data_write | Metadata_read | Metadata_write

val kind : t -> kind
val is_data : t -> bool
val all : t list
