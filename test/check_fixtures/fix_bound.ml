(* Accumulator-boundedness fixtures: this unit is in the configured
   accumulator scope, so [observe] and [add] are bound-hot seeds. *)

type t = { table : (int, int) Hashtbl.t; mutable log : int list }

let create () = { table = Hashtbl.create 16; log = [] }

(* violation: bound-table (growth with no eviction anywhere in this
   module) *)
let add t k v = Hashtbl.replace t.table k v

(* violation: bound-list (self-appending field with no reset anywhere
   in this module) *)
let observe t x = t.log <- x :: t.log
