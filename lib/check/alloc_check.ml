(* Hot-path allocation rules.  A binding in the alloc-hot set (reachable
   from analysis observe/add entry points or wire decode* entry points,
   per Hot) runs once per record; any allocation it performs is a
   per-record cost the ROADMAP's throughput targets cannot absorb.

   Flagged: intermediate string copies, Printf/Format interpretation,
   list construction, closures allocated past the parameter spine, and
   polymorphic comparison at unspecialized types (which walks the heap).
   Not flagged: record/variant/tuple construction (usually the decoded
   output itself) and anything lexically under a raise/failwith — error
   paths are cold by definition.

   The poly-compare rule additionally covers the merge-hot set: merges
   run once per shard, so their allocations amortize, but a polymorphic
   compare there is still a correctness-adjacent performance trap
   (satellite: names/lifetime merge paths).

   [@@nt.alloc_ok "reason"] on the binding is the counted escape hatch
   for necessary materialization (e.g. Decode.fixed_opaque). *)

let string_fns =
  [
    "String.sub"; "String.concat"; "String.cat"; "String.init"; "String.make";
    "String.lowercase_ascii"; "String.uppercase_ascii"; "^"; "Bytes.sub_string";
    "Bytes.to_string"; "Bytes.of_string"; "Buffer.create"; "Buffer.contents";
  ]

let list_fns =
  [
    "@"; "List.append"; "List.rev_append"; "List.concat"; "List.concat_map"; "List.map";
    "List.mapi"; "List.rev"; "List.init"; "List.filter"; "List.filter_map"; "List.sort";
    "List.of_seq"; "List.partition";
  ]

let compare_fns = [ "="; "<>"; "compare"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]
let raise_fns = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Mirrors the compiler's comparison specialization (Translprim): at
   these types = / compare / hash compile to direct primitives with no
   heap walk, so flagging them would be noise. *)
let specialized_heads =
  [ "int"; "char"; "bool"; "unit"; "float"; "string"; "bytes"; "int32"; "int64"; "nativeint" ]

let specialized ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> List.mem (Syntax.norm_path p) specialized_heads
  | _ -> false

let first_arg_type args =
  List.find_map
    (fun (_, arg) ->
      match arg with Some (a : Typedtree.expression) -> Some a.exp_type | None -> None)
    args

let scan_binding (sink : Finding.sink) ~allows ~alloc ~cmp ~fn_name
    (root : Typedtree.expression) =
  let report rule loc detail =
    if Syntax.allowed allows rule then sink.Finding.allow rule else sink.Finding.emit rule loc detail
  in
  let raise_depth = ref 0 in
  (* [spine] is true while descending only through the binding's own
     parameter chain (fun a -> fun b -> ...); a Texp_function met after
     any other node is a closure allocated per call.  Texp_let on the
     spine keeps it: optional-argument defaults desugar to
     [fun ?(x = d) -> let x = ... in fun y -> ...], which allocates
     nothing per call beyond the binding's own closure. *)
  let spine = ref true in
  let rec expr sub (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function _ when !spine -> Tast_iterator.default_iterator.expr sub e
    | Texp_let (_, vbs, body) when !spine ->
        spine := false;
        List.iter (fun (vb : Typedtree.value_binding) -> expr sub vb.vb_expr) vbs;
        spine := true;
        expr sub body;
        spine := false
    | Texp_function _ ->
        if alloc && !raise_depth = 0 then
          report Rule.alloc_hot_closure e.exp_loc
          (Printf.sprintf "closure allocated per call of %s" fn_name);
        (* The flagged closure's own parameter chain is one allocation:
           re-enter spine so fun a b -> ... does not double-report. *)
        spine := true;
        Tast_iterator.default_iterator.expr sub e;
        spine := false
    | _ ->
        spine := false;
        (match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            let n = Syntax.norm_path p in
            if List.mem n raise_fns then begin
              incr raise_depth;
              Tast_iterator.default_iterator.expr sub e;
              decr raise_depth
            end
            else begin
              (if !raise_depth = 0 then
                 if alloc && List.mem n string_fns then
                   report Rule.alloc_hot_string e.exp_loc
                     (Printf.sprintf "%s in hot %s (use offset slices or precomputed atoms)" n
                        fn_name)
                 else if
                   alloc
                   && (Syntax.starts_with ~prefix:"Printf." n
                      || Syntax.starts_with ~prefix:"Format." n)
                 then
                   report Rule.alloc_hot_format e.exp_loc
                     (Printf.sprintf "%s in hot %s (format off the hot path)" n fn_name)
                 else if alloc && List.mem n list_fns then
                   report Rule.alloc_hot_list e.exp_loc
                     (Printf.sprintf "%s in hot %s (reuse arrays or fold without building)" n
                        fn_name)
                 else if cmp && List.mem n compare_fns then
                   match first_arg_type args with
                   | Some ty when not (specialized ty) ->
                       report Rule.alloc_poly_compare e.exp_loc
                         (Printf.sprintf
                            "polymorphic %s at an unspecialized type in hot %s (use a \
                             specialized comparator)"
                            n fn_name)
                   | _ -> ());
              Tast_iterator.default_iterator.expr sub e
            end)
        | Texp_construct (_, cd, _) when cd.Types.cstr_name = "::" ->
            if alloc && !raise_depth = 0 then
              report Rule.alloc_hot_list e.exp_loc
                (Printf.sprintf "list cons in hot %s (reuse arrays or fold without building)"
                   fn_name);
            Tast_iterator.default_iterator.expr sub e
        | _ -> Tast_iterator.default_iterator.expr sub e)
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with Tpat_var (id, _) -> Some (Ident.name id) | _ -> None

(* Only function bindings are scanned: a non-function top-level binding
   evaluates once at module init, so its allocations are not per-record
   even when hot code reads it. *)
let is_function (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function _ -> true
  | _ -> ( match Types.get_desc e.exp_type with Types.Tarrow _ -> true | _ -> false)

let check (sink : Finding.sink) ~(hot : Hot.t) ~(cmp_hot : Hot.t) (u : Loader.unit_info) =
  match u.Loader.payload with
  | Loader.Intf _ -> ()
  | Loader.Impl str ->
      List.iter
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match binding_name vb with
                  | Some fn when is_function vb.vb_expr ->
                      let alloc = Hot.mem hot ~unit_name:u.Loader.name ~fn in
                      let cmp = Hot.mem cmp_hot ~unit_name:u.Loader.name ~fn in
                      if alloc || cmp then
                        scan_binding sink
                          ~allows:(Syntax.allows vb.vb_attributes)
                          ~alloc ~cmp ~fn_name:fn vb.vb_expr
                  | _ -> ())
                vbs
          | _ -> ())
        str.str_items
