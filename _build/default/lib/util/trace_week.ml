let seconds_per_hour = 3600.
let seconds_per_day = 86400.

(* Unix time of 2001-10-21 00:00:00 UTC, a Sunday. *)
let week_start = 1003622400.
let week_end = week_start +. (7. *. seconds_per_day)

type day = Sun | Mon | Tue | Wed | Thu | Fri | Sat

let day_to_string = function
  | Sun -> "Sun"
  | Mon -> "Mon"
  | Tue -> "Tue"
  | Wed -> "Wed"
  | Thu -> "Thu"
  | Fri -> "Fri"
  | Sat -> "Sat"

let days = [| Sun; Mon; Tue; Wed; Thu; Fri; Sat |]

let day_number t =
  let d = int_of_float (Float.floor ((t -. week_start) /. seconds_per_day)) in
  ((d mod 7) + 7) mod 7

let day_of_time t = days.(day_number t)

let seconds_into_day t =
  let s = Float.rem (t -. week_start) seconds_per_day in
  if s < 0. then s +. seconds_per_day else s

let hour_of_time t = int_of_float (seconds_into_day t /. seconds_per_hour)

let hour_index t = int_of_float (Float.floor ((t -. week_start) /. seconds_per_hour))

let is_weekday = function Mon | Tue | Wed | Thu | Fri -> true | Sun | Sat -> false

let is_peak t =
  let h = hour_of_time t in
  is_weekday (day_of_time t) && h >= 9 && h < 18

let day_index = function
  | Sun -> 0
  | Mon -> 1
  | Tue -> 2
  | Wed -> 3
  | Thu -> 4
  | Fri -> 5
  | Sat -> 6

let time_of ~day ~hour ~minute =
  week_start
  +. (float_of_int (day_index day) *. seconds_per_day)
  +. (float_of_int hour *. seconds_per_hour)
  +. (float_of_int minute *. 60.)

let format t =
  let day = day_to_string (day_of_time t) in
  let s = seconds_into_day t in
  let h = int_of_float (s /. 3600.) in
  let m = int_of_float (Float.rem s 3600. /. 60.) in
  let sec = Float.rem s 60. in
  Printf.sprintf "%s %02d:%02d:%06.3f" day h m sec
