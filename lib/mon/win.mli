(** One time window of monitor state: the accumulator behind every
    nfsmon report table, built to run forever.

    A window is a monoid — [merge] is an exact sum, associative with
    {!create} as the neutral element — so the ring buffer can fold
    closed windows into its running summary with the same law-tested
    machinery the sharded batch engine uses. Boundedness comes from two
    separate mechanisms that deliberately do not interfere with the
    merge laws:

    - {e observe-time caps}: each breakdown table (client, uid, fs,
      proc) holds at most [cap] distinct keys; once full, records for
      new keys are folded into the table's [other] row and counted as
      evictions. Totals are conserved — an evicted record still counts
      everywhere except under its own key.
    - {e merge-time compaction}: [merge] itself is exact (so it stays
      associative); the ring applies {!compact} after folding a closed
      window into the long-run summary, demoting the smallest rows to
      [other] until the table fits again.

    Everything here is plain integer arithmetic over record fields —
    no floats, so equality in tests is exact. *)

type caps = {
  client_cap : int;
  uid_cap : int;
  fs_cap : int;
  proc_cap : int;  (** procedure table; 64 fits every NFS v2+v3 proc *)
}

val default_caps : caps
(** 256 clients, 256 uids, 64 filesystems, 64 procedures. *)

type row = {
  ops : int;
  read_bytes : int;
  write_bytes : int;
}

type table = [ `Client | `Uid | `Fs | `Proc ]

val table_name : table -> string
val all_tables : table list

type t

val create : ?caps:caps -> unit -> t
(** The neutral element: merging it in either direction changes
    nothing. *)

val observe : t -> Nt_trace.Record.t -> unit

val merge : t -> t -> t
(** [merge a b] folds [b] into [a] and returns [a]; [b] must not be
    used afterwards. Exact key-wise sum — tables may temporarily exceed
    their caps until the caller runs {!compact}. *)

val compact : t -> unit
(** Re-establish every table's cap by demoting the smallest rows
    (ties broken by key, so compaction is deterministic) into [other],
    counting them as evictions. *)

(** {1 Accessors} *)

val span : t -> (float * float) option
(** (earliest, latest) record time observed; [None] when empty. *)

val total_ops : t -> int
val read_ops : t -> int
val read_bytes : t -> int
val write_ops : t -> int
val write_bytes : t -> int
val commit_ops : t -> int
val lost_replies : t -> int
(** Records whose reply was never captured. *)

val writes_by_stable : t -> (Nt_nfs.Types.stable_how * row) list
(** WRITE calls split the way [nfs3-mon.d] reports them: plain
    (unstable), data-sync and file-sync, each with op and byte
    tallies. *)

val top : t -> table -> int -> (string * row) list
(** Top-N rows of a table by ops (ties by key), excluding [other]. *)

val other_row : t -> table -> row
(** The spill row absorbing evicted keys. *)

val table_size : t -> table -> int
val evictions : t -> table -> int
(** Keys ever folded into [other] — observe-time sheds plus
    compaction demotions. Monotone; survives [merge] by summation. *)

val evictions_total : t -> int

(** {1 Checkpoint serialization}

    A stable, line-oriented text form (one token-separated record per
    line) embedded in the versioned nfsmon checkpoint. [of_lines]
    accepts exactly what [to_lines] emits and fails loudly — a corrupt
    checkpoint must never restore silently. *)

val to_lines : t -> string list

val of_lines : ?caps:caps -> string list -> (t, string) result
(** [caps] (default {!default_caps}) applies the restoring service's
    configured caps to the revived tables; the checkpoint's own caps
    line is informational. *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}). *)
