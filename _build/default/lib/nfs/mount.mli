(** The MOUNT protocol, version 3 (RFC 1813, Appendix I).

    Before any NFS traffic, a client asks mountd for the file handle of
    an exported root; a passive tracer on a real network sees this
    exchange (RPC program 100005) alongside the NFS program and can use
    it to seed its handle→path map with true export roots. The
    simulator's clients receive their root handles out of band, so this
    codec exists for protocol completeness and for consumers decoding
    real captures. *)

val program : int
(** 100005. *)

type proc = Null | Mnt | Dump | Umnt | Umntall | Export

val proc_number : proc -> int
val proc_of_number : int -> proc option

type mnt_result = {
  fh : Fh.t;
  auth_flavors : int list;  (** flavors the server accepts for this export *)
}

val encode_mnt_call : Nt_xdr.Encode.t -> string -> unit
(** Argument is the export's directory path. *)

val decode_mnt_call : Nt_xdr.Decode.t -> string

val encode_mnt_result : Nt_xdr.Encode.t -> (mnt_result, Types.nfsstat) result -> unit
val decode_mnt_result : Nt_xdr.Decode.t -> (mnt_result, Types.nfsstat) result

val encode_umnt_call : Nt_xdr.Encode.t -> string -> unit
val decode_umnt_call : Nt_xdr.Decode.t -> string

type export = { dir : string; groups : string list }

val encode_export_result : Nt_xdr.Encode.t -> export list -> unit
val decode_export_result : Nt_xdr.Decode.t -> export list
