(** NFSv3 wire codec (RFC 1813).

    Encodes unified {!Ops} values into procedure argument/result bodies
    and decodes bodies captured off the wire. Result decoding needs the
    procedure, which the capture engine recovers by pairing the reply's
    XID with its call.

    WRITE and READ data: on encode, [write_filler] bytes are
    materialised so the wire image has the correct length; on decode the
    data is measured, not retained. *)

exception Unsupported of string
(** Raised when asked to encode a call that has no v3 form. *)

val encode_call : Nt_xdr.Encode.t -> Ops.call -> unit
val decode_call : proc:Proc.t -> Nt_xdr.Decode.t -> Ops.call
val encode_result : Nt_xdr.Encode.t -> proc:Proc.t -> Ops.result -> unit
val decode_result : proc:Proc.t -> Nt_xdr.Decode.t -> Ops.result

val encode_fattr : Nt_xdr.Encode.t -> Types.fattr -> unit
val decode_fattr : Nt_xdr.Decode.t -> Types.fattr
