(** Materialise trace records as real packets in a pcap capture.

    This closes the loop that makes the reproduction honest: workload →
    records → RPC/XDR bytes → UDP datagrams or record-marked TCP
    segments → Ethernet frames → pcap, which the {!Nt_trace.Capture}
    engine then decodes like any tcpdump output.

    The monitor model reproduces §4.1.4 and beyond: every emitted
    packet passes through a {!Fault} injector, so the capture can
    suffer bursty loss, corruption, truncation, duplication, and
    reordering before it reaches the pcap file. Faults apply to the
    {e capture}, not the protocol — the simulated client/server
    conversation already happened.

    TCP mode opens one long-lived connection per client (as CAMPUS's
    mounts do): a SYN packet precedes a client's first payload, and
    sequence numbers accumulate across the whole capture. *)

type transport = Udp_transport | Tcp_transport

type t

val create :
  ?obs:Nt_obs.Obs.t ->
  ?monitor_loss:float ->
  ?fault:Fault.plan ->
  ?seed:int64 ->
  ?mtu:int ->
  transport:transport ->
  writer:Nt_net.Pcap.writer ->
  unit ->
  t
(** [obs] hosts [pipe.packets_written] plus the injector's [fault.*]
    counters; defaults to a private always-enabled registry so the
    accessors below keep counting without wiring.

    [fault] is the full monitor fault model; when absent,
    [monitor_loss] (the legacy knob) maps to
    {!Fault.bernoulli_loss} — independent drop with that probability,
    the CAMPUS mirror port's headline behaviour (it lost up to ~10%
    under load; EECS lost none).

    [mtu] defaults to 9000 (jumbo frames); UDP datagrams above it are
    emitted anyway (the real stack would IP-fragment; the capture
    engine treats the oversized frame equivalently). *)

val push : t -> Nt_trace.Record.t -> unit
(** Emit the call packet(s) and, when the record has a reply, the reply
    packet(s). Records should arrive roughly time-sorted (the
    record-sorter output); packets are re-sorted in a bounded window
    before writing. *)

val finish : t -> unit
(** Flush buffered packets. *)

val packets_written : t -> int
val packets_dropped : t -> int

val faults : t -> Fault.counts
(** Injection accounting for the whole run — the other half of the
    conservation invariant the capture engine's stats must satisfy. *)
