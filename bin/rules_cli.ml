(* Shared rule-catalog listing for the static checkers (nfslint over
   traces, ntcheck over typedtrees).  Both binaries expose the same
   --rules flag and print the same four-column table. *)

open Cmdliner

type row = { id : string; family : string; severity : string; doc : string }

let render rows =
  let id_w = List.fold_left (fun w r -> max w (String.length r.id)) 4 rows in
  let fam_w = List.fold_left (fun w r -> max w (String.length r.family)) 6 rows in
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %-*s %-5s %s\n" id_w r.id fam_w r.family r.severity r.doc))
    rows;
  Buffer.contents buf

let print rows = print_string (render rows)

let term =
  Arg.(
    value & flag
    & info [ "rules"; "list-rules" ] ~doc:"Print the rule catalog (id, family, severity, doc) and exit.")
