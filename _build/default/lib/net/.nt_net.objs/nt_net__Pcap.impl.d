lib/net/pcap.ml: Buffer Bytes Char Float Printf Seq String
