(* Function-level hot-code discovery for the alloc and bound families.

   Module-granular reachability (Reach) is too coarse for per-record
   cost rules: Record.to_line lives in the same unit as the hot
   accessors but only runs once per serialized report.  This module
   builds a cross-unit call graph over *top-level value bindings* and
   solves reachability from configurable seed bindings (analysis
   observe/add entry points, wire decode* entry points, merge paths).

   Resolution is name-based over typedtree paths: a [Texp_ident] whose
   path prefix names another compiled unit (directly, via the wrapped
   dotted name, or through a one-level local module alias — the
   [module Fh = Nt_nfs.Fh] idiom every lib file uses) becomes an edge.
   Bindings inside nested structures are not graph nodes; references
   through functor instances (Fh_tbl.add) resolve to no unit and add no
   edge, which is fine — the stdlib leaves they wrap are modeled by the
   rules themselves, not by traversal. *)

type node = string * string (* compilation unit name, binding name *)

type graph = {
  (* unit name -> binding names defined at its top level, in order *)
  bindings : (string, string list) Hashtbl.t;
  (* unit name -> dotted name *)
  dotted : (string, string) Hashtbl.t;
  (* "Nt_nfs.Fh" / "Nt_nfs__Fh" -> unit name, for prefix resolution *)
  by_name : (string, string) Hashtbl.t;
  edges : (node, node list) Hashtbl.t;
}

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with Tpat_var (id, _) -> Some (Ident.name id) | _ -> None

(* Local [module X = Path] aliases, one level (merge_check's idiom). *)
let module_aliases (str : Typedtree.structure) =
  let tbl = Hashtbl.create 16 in
  let rec of_expr (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> Some (Path.name p)
    | Tmod_constraint (me, _, _, _) -> of_expr me
    | _ -> None
  in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_module mb -> (
          match (mb.mb_id, of_expr mb.mb_expr) with
          | Some id, Some target -> Hashtbl.replace tbl (Ident.name id) target
          | _ -> ())
      | _ -> ())
    str.str_items;
  tbl

let expand_alias aliases dotted =
  match String.index_opt dotted '.' with
  | None -> ( match Hashtbl.find_opt aliases dotted with Some t -> t | None -> dotted)
  | Some i -> (
      let head = String.sub dotted 0 i in
      let rest = String.sub dotted i (String.length dotted - i) in
      match Hashtbl.find_opt aliases head with Some t -> t ^ rest | None -> dotted)

let top_bindings (str : Typedtree.structure) =
  List.concat_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.filter_map
            (fun vb -> Option.map (fun n -> (n, vb)) (binding_name vb))
            vbs
      | _ -> [])
    str.str_items

(* Every (unit, binding) pair a binding's body mentions. *)
let callees graph aliases ~unit_name (vb : Typedtree.value_binding) =
  let acc = ref [] in
  let local = Hashtbl.find_opt graph.bindings unit_name in
  let local_has n = match local with Some l -> List.mem n l | None -> false in
  let add node = if not (List.mem node !acc) then acc := node :: !acc in
  let resolve_prefix prefix_name =
    let expanded = expand_alias aliases prefix_name in
    Hashtbl.find_opt graph.by_name expanded
  in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match p with
        | Path.Pident id ->
            let n = Ident.name id in
            if local_has n then add (unit_name, n)
        | Path.Pdot (prefix, last) -> (
            match resolve_prefix (Path.name prefix) with
            | Some u -> (
                match Hashtbl.find_opt graph.bindings u with
                | Some l when List.mem last l -> add (u, last)
                | _ -> ())
            | None -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it vb.vb_expr;
  !acc

let build (units : Loader.unit_info list) =
  let graph =
    {
      bindings = Hashtbl.create 64;
      dotted = Hashtbl.create 64;
      by_name = Hashtbl.create 64;
      edges = Hashtbl.create 256;
    }
  in
  let impls =
    List.filter_map
      (fun (u : Loader.unit_info) ->
        match u.Loader.payload with
        | Loader.Impl str -> Some (u, str)
        | Loader.Intf _ -> None)
      units
  in
  (* Pass 1: nodes and name resolution tables. *)
  List.iter
    (fun ((u : Loader.unit_info), str) ->
      Hashtbl.replace graph.bindings u.Loader.name (List.map fst (top_bindings str));
      Hashtbl.replace graph.dotted u.Loader.name u.Loader.dotted;
      Hashtbl.replace graph.by_name u.Loader.name u.Loader.name;
      Hashtbl.replace graph.by_name u.Loader.dotted u.Loader.name)
    impls;
  (* Pass 2: edges. *)
  List.iter
    (fun ((u : Loader.unit_info), str) ->
      let aliases = module_aliases str in
      List.iter
        (fun (n, vb) ->
          Hashtbl.replace graph.edges (u.Loader.name, n)
            (callees graph aliases ~unit_name:u.Loader.name vb))
        (top_bindings str))
    impls;
  graph

type t = { hot : (node, unit) Hashtbl.t; seed_count : int }

(* [seeds graph f] collects every top-level binding [f] accepts;
   [solve] closes them over the call graph. *)
let solve graph ~seeds:accept =
  let seeds = ref [] in
  Hashtbl.iter
    (fun unit_name bindings ->
      let dotted =
        match Hashtbl.find_opt graph.dotted unit_name with Some d -> d | None -> unit_name
      in
      List.iter
        (fun fn -> if accept ~unit_name ~dotted ~fn then seeds := (unit_name, fn) :: !seeds)
        bindings)
    graph.bindings;
  let hot = Hashtbl.create 256 in
  let rec visit node =
    if not (Hashtbl.mem hot node) then begin
      Hashtbl.add hot node ();
      match Hashtbl.find_opt graph.edges node with
      | Some callees -> List.iter visit callees
      | None -> ()
    end
  in
  List.iter visit !seeds;
  { hot; seed_count = List.length !seeds }

let mem t ~unit_name ~fn = Hashtbl.mem t.hot (unit_name, fn)
let seed_count t = t.seed_count
let size t = Hashtbl.length t.hot

let to_list t =
  List.sort compare (Hashtbl.fold (fun (u, f) () acc -> (u ^ "." ^ f) :: acc) t.hot [])
