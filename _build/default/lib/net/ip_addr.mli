(** IPv4 addresses as plain ints (0 .. 2^32-1, host order). *)

type t = int

val v : int -> int -> int -> int -> t
(** [v 10 0 0 1] is 10.0.0.1. Each octet must be 0–255. *)

val to_string : t -> string
val of_string : string -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
