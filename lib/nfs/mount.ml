module E = Nt_xdr.Encode
module D = Nt_xdr.Decode

let program = 100005

type proc = Null | Mnt | Dump | Umnt | Umntall | Export

let proc_number = function
  | Null -> 0
  | Mnt -> 1
  | Dump -> 2
  | Umnt -> 3
  | Umntall -> 4
  | Export -> 5

let proc_of_number = function
  | 0 -> Some Null
  | 1 -> Some Mnt
  | 2 -> Some Dump
  | 3 -> Some Umnt
  | 4 -> Some Umntall
  | 5 -> Some Export
  | _ -> None

type mnt_result = { fh : Fh.t; auth_flavors : int list }

let encode_mnt_call e path = E.string e path
let decode_mnt_call d = D.string d

let encode_mnt_result e = function
  | Ok { fh; auth_flavors } ->
      E.uint32 e 0;
      E.opaque e (Fh.to_raw fh);
      E.array e (E.uint32 e) auth_flavors
  | Error st -> E.uint32 e (Types.nfsstat_to_int st)

let decode_mnt_result d =
  match Types.nfsstat_of_int (D.uint32 d) with
  | Types.Ok_ ->
      let fh = Fh.of_raw (D.opaque d) in
      let auth_flavors = D.array d D.uint32 in
      Ok { fh; auth_flavors }
  | err -> Error err

let encode_umnt_call = encode_mnt_call
let decode_umnt_call = decode_mnt_call

type export = { dir : string; groups : string list }

(* The export list is a linked structure on the wire: bool more, then
   the entry, for both exports and their group lists. *)
let encode_export_result e exports =
  List.iter
    (fun { dir; groups } ->
      E.bool e true;
      E.string e dir;
      List.iter
        (fun g ->
          E.bool e true;
          E.string e g)
        groups;
      E.bool e false)
    exports;
  E.bool e false

let decode_export_result d =
  let rec entries acc =
    if D.bool d then begin
      let dir = D.string d in
      let rec groups acc = if D.bool d then groups (D.string d :: acc) else List.rev acc in
      entries ({ dir; groups = groups [] } :: acc)
    end
    else List.rev acc
  in
  entries []
[@@nt.alloc_ok "the export list is the decoded value; MOUNT traffic is a handful of calls per trace"]
