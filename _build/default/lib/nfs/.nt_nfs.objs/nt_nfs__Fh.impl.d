lib/nfs/fh.ml: Buffer Bytes Char Hashtbl Int32 Int64 Printf String
