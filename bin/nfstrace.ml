(* nfstrace: the passive tracer. Decode a pcap capture of NFS traffic
   into nfsdump-style text trace records.

   Example: nfstrace capture.pcap -o capture.trace --metrics=run.json *)

open Cmdliner
module Obs = Nt_obs.Obs

let run input output out_tbin salvage lint obs_opts =
  let ic = if input = "-" then stdin else open_in_bin input in
  let obs = Obs.create () in
  let timeline = Obs_cli.timeline obs_opts obs in
  let sampler = Nt_obs.Sampler.create ~interval:0.05 obs in
  let prog = Obs_cli.progress obs_opts "nfstrace" in
  let decode () =
    let reader = Nt_net.Pcap.reader_of_channel ~obs ~salvage ic in
    let oc = if output = "-" then stdout else open_out output in
    let tbin =
      match out_tbin with
      | None -> None
      | Some path ->
          let toc = open_out_bin path in
          Some (toc, Nt_tbin.Writer.create (output_string toc))
    in
    let linter =
      if lint then
        (* Streamed records are not globally call-time sorted (lost calls
           flush late), so leave the reorder rule plenty of slack. *)
        Some
          (Nt_lint.Engine.create ~obs
             { Nt_lint.Engine.default_config with reorder_window = 120. })
      else None
    in
    let emit r =
      output_string oc (Nt_trace.Record.to_line r);
      output_char oc '\n';
      Option.iter (fun (_, w) -> Nt_tbin.Writer.add w r) tbin;
      Option.iter (fun l -> Nt_lint.Engine.observe l r) linter;
      Nt_obs.Sampler.tick sampler;
      Obs_cli.tick prog ~stage:"decode" 1
    in
    (* Stream records as replies complete; unanswered calls flush at EOF. *)
    let capture = Nt_trace.Capture.create ~obs ~emit () in
    Obs.with_span obs "capture.decode" (fun () ->
        Nt_trace.Capture.feed_pcap capture reader);
    let stats, _ = Nt_trace.Capture.finish capture in
    Option.iter
      (fun (toc, w) ->
        Nt_tbin.Writer.close w;
        close_out toc)
      tbin;
    if output <> "-" then close_out oc;
    Printf.eprintf "nfstrace: %s\n%!" (Nt_trace.Capture.stats_to_string stats);
    Option.iter
      (fun l ->
        Nt_lint.Engine.observe_stats l stats;
        List.iter
          (fun f -> Printf.eprintf "nfstrace: %s\n" (Nt_lint.Finding.to_string f))
          (Nt_lint.Engine.findings l);
        Printf.eprintf "nfstrace: lint: %d error(s), %d warning(s)\n%!"
          (Nt_lint.Engine.severity_count l Nt_lint.Rule.Error)
          (Nt_lint.Engine.severity_count l Nt_lint.Rule.Warn))
      linter
  in
  let status =
    match decode () with
    | () -> 0
    | exception Nt_net.Pcap.Bad_format msg ->
        (* Salvage resyncs past damaged records, but a damaged global
           header leaves no endianness/tick-unit to resync with. *)
        let hint = if salvage then "" else "; retry with --salvage to resync past damage" in
        Printf.eprintf "nfstrace: corrupt pcap (%s)%s\n%!" msg hint;
        1
  in
  if input <> "-" then close_in ic;
  Obs_cli.finish prog;
  (* Dump whatever was counted even on a decode abort: a partial
     snapshot is exactly what post-mortems want. *)
  Obs_cli.dump obs_opts obs;
  Obs_cli.dump_timeline ~sampler obs_opts timeline;
  status

let input =
  Arg.(
    required & pos 0 (some string) None & info [] ~docv:"PCAP" ~doc:"Input pcap file (- for stdin).")

let output =
  Arg.(
    value & opt string "-"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file (- for stdout).")

let out_tbin =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-tbin" ] ~docv:"FILE"
        ~doc:"Also write the decoded records to $(docv) as an nttb/1 binary trace.")

let salvage =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "Resync past corrupt pcap record headers instead of aborting; skipped bytes and \
           salvaged records are counted in the stats line.")

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static checker over the decoded records and capture stats; findings go to \
           stderr and do not affect the exit code (use nfslint for gating).")

let cmd =
  Cmd.v
    (Cmd.info "nfstrace" ~doc:"Decode a pcap capture into NFS trace records")
    Term.(const run $ input $ output $ out_tbin $ salvage $ lint $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
