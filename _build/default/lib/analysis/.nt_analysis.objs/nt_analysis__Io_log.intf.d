lib/analysis/io_log.mli: Nt_nfs Nt_trace
