lib/util/trace_week.mli:
