lib/analysis/hourly.mli: Nt_trace
