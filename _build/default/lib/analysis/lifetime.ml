module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Histogram = Nt_util.Histogram

type config = {
  phase1_start : float;
  phase1_len : float;
  phase2_len : float;
  block : int;
}

let config ~phase1_start =
  { phase1_start; phase1_len = 86400.; phase2_len = 86400.; block = 8192 }

(* Per-block state, packed in a float array:
   >= 0.0   live, tracked birth at that time
   -1.0     live, birth not tracked (pre-existing or out-of-phase)
   -2.0     not live *)
let untracked = -1.0
let dead = -2.0

type file_state = {
  mutable births : float array;
  mutable size_blocks : int;
}

module Fh_tbl = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

type death_cause = Overwrite | Truncate | Deletion

type t = {
  cfg : config;
  files : file_state Fh_tbl.t;
  (* (dir handle hex, name) -> fh, learned from lookups/creates so
     REMOVE calls can be resolved to the dying file. *)
  names : (string * string, Fh.t) Hashtbl.t;
  mutable births_write : int;
  mutable births_extension : int;
  mutable deaths : (float * death_cause) list;  (** lifetimes *)
  lifetimes : Histogram.t;
}

(* Log-ish edges from 10 ms to 4 days for the Figure 3 CDF. *)
let lifetime_edges =
  [| 0.01; 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10.; 30.; 60.; 120.; 300.; 600.; 1200.; 1800.;
     3600.; 7200.; 14400.; 28800.; 43200.; 86400.; 172800.; 345600. |]

let create cfg =
  {
    cfg;
    files = Fh_tbl.create 1024;
    names = Hashtbl.create 1024;
    births_write = 0;
    births_extension = 0;
    deaths = [];
    lifetimes = Histogram.create ~edges:lifetime_edges;
  }

let phase1_end t = t.cfg.phase1_start +. t.cfg.phase1_len
let phase2_end t = phase1_end t +. t.cfg.phase2_len
let in_phase1 t time = time >= t.cfg.phase1_start && time < phase1_end t
let in_window t time = time >= t.cfg.phase1_start && time < phase2_end t

let blocks_of t bytes = (bytes + t.cfg.block - 1) / t.cfg.block

let state_for t fh ~initial_size_blocks =
  match Fh_tbl.find_opt t.files fh with
  | Some st -> st
  | None ->
      let n = max initial_size_blocks 4 in
      let births = Array.make n dead in
      Array.fill births 0 initial_size_blocks untracked;
      let st = { births; size_blocks = initial_size_blocks } in
      Fh_tbl.add t.files fh st;
      st

let ensure_capacity st n =
  if n > Array.length st.births then begin
    let bigger = Array.make (max n (2 * Array.length st.births)) dead in
    Array.blit st.births 0 bigger 0 (Array.length st.births);
    st.births <- bigger
  end

let kill t st ~time ~cause b =
  let birth = st.births.(b) in
  if birth >= 0. && in_window t time then begin
    let lifetime = time -. birth in
    t.deaths <- (lifetime, cause) :: t.deaths;
    Histogram.add t.lifetimes lifetime
  end;
  st.births.(b) <- dead

let give_birth t st ~time ~extension b =
  if in_phase1 t time then begin
    st.births.(b) <- time;
    if extension then t.births_extension <- t.births_extension + 1
    else t.births_write <- t.births_write + 1
  end
  else st.births.(b) <- untracked

(* A write over [b0, b1]: live blocks die by overwrite and are reborn;
   blocks past EOF are born (the skipped gap counts as extension). *)
let handle_write t fh ~time ~offset ~count ~post_size =
  if count > 0 then begin
    let b0 = offset / t.cfg.block in
    let b1 = (offset + count - 1) / t.cfg.block in
    let initial = max 0 (min b0 (blocks_of t (offset + count))) in
    let st = state_for t fh ~initial_size_blocks:initial in
    ensure_capacity st (b1 + 1);
    (* Gap blocks between old EOF and the write start. *)
    if b0 > st.size_blocks then
      for b = st.size_blocks to b0 - 1 do
        if st.births.(b) = dead then give_birth t st ~time ~extension:true b
      done;
    for b = b0 to b1 do
      if b < st.size_blocks && st.births.(b) <> dead then kill t st ~time ~cause:Overwrite b;
      give_birth t st ~time ~extension:false b
    done;
    let new_size = max st.size_blocks (b1 + 1) in
    (match post_size with
    | Some s ->
        let sb = blocks_of t (Int64.to_int s) in
        st.size_blocks <- max new_size sb
    | None -> st.size_blocks <- new_size);
    ensure_capacity st st.size_blocks
  end

let handle_truncate t fh ~time ~new_size =
  let nb = blocks_of t new_size in
  match Fh_tbl.find_opt t.files fh with
  | None -> ignore (state_for t fh ~initial_size_blocks:nb)
  | Some st ->
      if nb < st.size_blocks then begin
        for b = nb to st.size_blocks - 1 do
          if b < Array.length st.births && st.births.(b) <> dead then
            kill t st ~time ~cause:Truncate b
        done;
        st.size_blocks <- nb
      end
      else if nb > st.size_blocks then begin
        ensure_capacity st nb;
        for b = st.size_blocks to nb - 1 do
          give_birth t st ~time ~extension:true b
        done;
        st.size_blocks <- nb
      end

let handle_remove t fh ~time =
  match Fh_tbl.find_opt t.files fh with
  | None -> ()
  | Some st ->
      for b = 0 to st.size_blocks - 1 do
        if b < Array.length st.births && st.births.(b) <> dead then
          kill t st ~time ~cause:Deletion b
      done;
      Fh_tbl.remove t.files fh

(* Learn sizes from attributes without creating tracked births. *)
let note_size t fh size =
  let nb = blocks_of t (Int64.to_int size) in
  let st = state_for t fh ~initial_size_blocks:nb in
  if nb > st.size_blocks then begin
    ensure_capacity st nb;
    for b = st.size_blocks to nb - 1 do
      if st.births.(b) = dead then st.births.(b) <- untracked
    done;
    st.size_blocks <- nb
  end

let name_key dir name = (Fh.to_hex_full dir, name)

let observe t (r : Record.t) =
  if r.time < phase2_end t then begin
    (* Name learning for REMOVE resolution. *)
    (match (r.call, r.result) with
    | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh; _ })) ->
        Hashtbl.replace t.names (name_key dir name) fh
    | Ops.Create { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
        Hashtbl.replace t.names (name_key dir name) fh
    | _ -> ());
    match r.call with
    | Ops.Write { fh; offset; count; _ } ->
        let count =
          match r.result with Some (Ok (Ops.R_write { count = c; _ })) when c > 0 -> c | _ -> count
        in
        handle_write t fh ~time:r.time ~offset:(Int64.to_int offset) ~count
          ~post_size:(Record.post_size r)
    | Ops.Setattr { fh; attrs } -> (
        match attrs.set_size with
        | Some s -> handle_truncate t fh ~time:r.time ~new_size:(Int64.to_int s)
        | None -> ())
    | Ops.Remove { dir; name } ->
        if Record.is_ok r then begin
          match Hashtbl.find_opt t.names (name_key dir name) with
          | Some fh ->
              handle_remove t fh ~time:r.time;
              Hashtbl.remove t.names (name_key dir name)
          | None -> ()
        end
    | Ops.Rename { from_dir; from_name; to_dir; to_name } ->
        if Record.is_ok r then begin
          (* POSIX rename: a pre-existing target is unlinked. *)
          (match Hashtbl.find_opt t.names (name_key to_dir to_name) with
          | Some victim -> handle_remove t victim ~time:r.time
          | None -> ());
          match Hashtbl.find_opt t.names (name_key from_dir from_name) with
          | Some fh ->
              Hashtbl.remove t.names (name_key from_dir from_name);
              Hashtbl.replace t.names (name_key to_dir to_name) fh
          | None -> Hashtbl.remove t.names (name_key to_dir to_name)
        end
    | Ops.Create { dir = _; name = _; _ } -> (
        (* A create that truncated an existing file would show as size 0. *)
        match (Record.target_fh r, Record.post_size r) with
        | Some fh, Some size -> note_size t fh size
        | _ -> ())
    | _ -> (
        match (Record.target_fh r, Record.post_size r) with
        | Some fh, Some size -> note_size t fh size
        | _ -> ())
  end

type result = {
  births : int;
  births_write_pct : float;
  births_extension_pct : float;
  deaths : int;
  deaths_overwrite_pct : float;
  deaths_truncate_pct : float;
  deaths_deletion_pct : float;
  end_surplus : int;
  end_surplus_pct : float;
  lifetime_cdf : (float * float) list;
}

let result t =
  let births = t.births_write + t.births_extension in
  (* Sampling-bias filter: deaths with lifespan beyond Phase 2's length
     could only have been observed for early births. *)
  let kept = List.filter (fun (l, _) -> l <= t.cfg.phase2_len) t.deaths in
  let dropped = List.length t.deaths - List.length kept in
  let deaths = List.length kept in
  let count cause = List.length (List.filter (fun (_, c) -> c = cause) kept) in
  let live_tracked = ref 0 in
  Fh_tbl.iter
    (fun _ st ->
      for b = 0 to st.size_blocks - 1 do
        if b < Array.length st.births && st.births.(b) >= 0. then incr live_tracked
      done)
    t.files;
  let end_surplus = !live_tracked + dropped in
  let pct n = if deaths = 0 then 0. else 100. *. float_of_int n /. float_of_int deaths in
  let hist = Histogram.create ~edges:lifetime_edges in
  List.iter (fun (l, _) -> Histogram.add hist l) kept;
  {
    births;
    births_write_pct =
      (if births = 0 then 0. else 100. *. float_of_int t.births_write /. float_of_int births);
    births_extension_pct =
      (if births = 0 then 0. else 100. *. float_of_int t.births_extension /. float_of_int births);
    deaths;
    deaths_overwrite_pct = pct (count Overwrite);
    deaths_truncate_pct = pct (count Truncate);
    deaths_deletion_pct = pct (count Deletion);
    end_surplus;
    end_surplus_pct =
      (if births = 0 then 0. else 100. *. float_of_int end_surplus /. float_of_int births);
    lifetime_cdf = Histogram.cdf hist;
  }

let cdf_at r seconds =
  let rec go last = function
    | [] -> last
    | (edge, frac) :: rest -> if edge > seconds then last else go frac rest
  in
  go 0. r.lifetime_cdf
