(** Run detection and access-pattern classification (§4.2, §5.1).

    NFS has no open/close, so runs are synthesised from the access
    stream per the paper's heuristic: a run ends when the previous
    access referenced end-of-file or is older than 30 seconds. Each run
    is then classified entire / sequential / random with offsets and
    counts rounded to 8 KB blocks; the "processed" variant first applies
    the reorder window and tolerates seeks under 10 blocks. *)

type pattern = Entire | Sequential | Random

val pattern_to_string : pattern -> string

type run = {
  is_read : bool;  (** contains at least one read *)
  is_write : bool;
  bytes : int;  (** bytes accessed in the run *)
  file_size : int;  (** largest size observed during the run *)
  pattern : pattern;
  accesses : int;
}

val split : ?gap:float -> Io_log.access array -> Io_log.access array list
(** Split one file's (possibly window-sorted) accesses into runs;
    [gap] defaults to the paper's 30 s. *)

val classify : ?block:int -> jump_blocks:int -> Io_log.access array -> pattern
(** [jump_blocks = 1] is the strict rule; [10] allows the small seeks
    the paper argues never move a disk arm. Singleton runs are entire
    when they span the whole file and sequential otherwise. *)

val analyze_file : ?window:float -> ?gap:float -> jump_blocks:int -> Io_log.access array -> run list
(** Window-sort, split and classify one file's accesses. Runs never
    span files, so a full analysis is the per-file concatenation — the
    unit the parallel driver fans out over domains. *)

val analyze : ?window:float -> ?gap:float -> jump_blocks:int -> Io_log.t -> run list
(** Full pipeline: optional reorder-window sort (seconds), split,
    classify every run of every file. *)

(** Table 3: the entire/sequential/random breakdown. *)
type table3_row = { entire_pct : float; sequential_pct : float; random_pct : float }

type table3 = {
  reads_pct : float;  (** read-only runs as % of all runs *)
  writes_pct : float;
  rw_pct : float;
  read : table3_row;  (** percentages within read-only runs *)
  write : table3_row;
  rw : table3_row;
  total_runs : int;
}

val table3 : run list -> table3

(** Figure 2: percentage of bytes accessed vs file size, by category. *)
type size_curve = {
  edges : float array;  (** file-size bucket upper edges (bytes) *)
  total : float array;  (** cumulative % of all bytes, per bucket *)
  entire : float array;
  sequential : float array;
  random : float array;
}

val by_file_size : run list -> size_curve
