(** Predicting file attributes from file names (§6.3).

    The paper's finding: on CAMPUS nearly every file falls into one of
    four name-identifiable categories (lock files, dot files, mail
    composer files, mailboxes), each with a sharply predictable size,
    lifespan and access pattern; EECS names are also strong predictors.
    This module categorises by the last pathname component, accumulates
    per-category attribute distributions, and runs the
    train-on-first-half / test-on-second-half prediction experiment.

    Categories are recognisable from anonymized names too, because the
    anonymizer preserves the structural markers (leading dot, [.lock],
    [,v], [~], [#…#]) — the paper's design intent. *)

type category =
  | Lock
  | Mailbox
  | Mail_composer
  | Dot_file
  | Applet
  | Browser_cache
  | Temp_build
  | Autosave
  | Backup
  | Rcs_archive
  | Source
  | Object_file
  | Log_index
  | Dataset
  | Other

val categorize : string -> category
val category_to_string : category -> string
val all_categories : category list

type t

val create : unit -> t
val observe : t -> Nt_trace.Record.t -> unit

val create_shard : unit -> t
(** An accumulator for a non-initial trace shard: unlike a {!create}d
    (root) one, it cannot assume an unknown (dir, name) key is unbound
    or an unknown handle is unnamed. It defers unresolvable REMOVEs and
    banks I/O on unknown handles for {!merge} to settle. *)

val merge : t -> t -> t
(** [merge a b] folds shard [b] (the next time range) into root/merged
    accumulator [a] and returns [a]; [b] must not be used afterwards.
    Deferred REMOVEs replay in time order against [a]'s bindings,
    orphan I/O resolves against files [a] already knows (and is dropped
    otherwise, matching the sequential pass), per-file infos combine
    with first-sight-wins category/created and earliest-time deleted
    (the sequential pass stamps the first successful REMOVE, which a
    merge-time replay may follow), and [b]'s binding
    end-states override [a]'s. Left folds in shard order reproduce the
    sequential pass exactly up to float reassociation in byte sums
    (assuming the server does not reuse a file handle within the
    trace). *)

type category_stats = {
  files_seen : int;  (** distinct files bearing this category's names *)
  created_deleted : int;  (** created AND deleted inside the window *)
  median_size : float;
  median_lifetime : float;  (** of created+deleted files; nan if none *)
  read_only_pct : float;
  write_only_pct : float;
}

val stats : t -> (category * category_stats) list

val created_deleted_total : t -> int

val byte_share : t -> category -> float
(** Fraction (0-1) of all READ+WRITE bytes that touched files of this
    category (paper: >95% of CAMPUS data movement is inboxes). *)

val unique_file_share : t -> category -> float
(** Fraction of distinct files seen that belong to the category
    (paper: ~20% inboxes, ~50% locks on CAMPUS during peak hours). *)

val lock_created_deleted_pct : t -> float
(** % of created-and-deleted files that are locks (paper: 96% CAMPUS). *)

val lock_lifetime_under : t -> float -> float
(** Fraction of lock lifetimes <= the given seconds (paper: 99.9%
    under 0.40 s). *)

val composer_size_under : t -> float -> float
(** Fraction of mail-composer files at or below a size (98% <= 8 KB). *)

val composer_lifetime_under : t -> float -> float

type prediction = {
  tested : int;
  size_accuracy : float;  (** size-class prediction accuracy, 0–1 *)
  lifetime_accuracy : float;
  pattern_accuracy : float;
}

val predict : t -> prediction
(** Learn each category's majority size / lifetime / access-pattern
    class on files created in the first half of the window; test on the
    second half. *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}): tracked
    entries and an approximate heap-words estimate. *)
