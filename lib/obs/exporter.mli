(** A dependency-free metrics endpoint: serve the registry's Prometheus
    and JSON exports over a TCP socket without threads.

    The exporter owns a non-blocking listening socket and does all its
    work inside {!poll}, which the monitor calls once per service step:
    accept whatever connections are pending (bounded per call), read
    the request line when it has arrived, write the response, close.
    A client that connects but never sends a request is dropped after a
    short grace period, and the pending-connection set is capped — a
    scrape stampede degrades to refused connections, never to unbounded
    state or a blocked monitor loop.

    Endpoints: [GET /metrics] (Prometheus text exposition), [GET /json]
    (the nt_obs snapshot document) and [GET /series] (the resource
    sampler's ["nt_obs_series/1"] document when a source was wired at
    {!create}); anything else is 404. *)

type t

val create : ?addr:string -> ?port:int -> ?series:(unit -> string) -> Obs.t -> (t, string) result
(** Listen on [addr] (default ["127.0.0.1"]) : [port] (default 0 = an
    ephemeral port; read it back with {!port}). [series] supplies the
    [/series] body — typically [Sampler.series_json]. *)

val port : t -> int
val poll : t -> unit
(** Bounded, non-blocking: never waits for a client. Safe to call at
    any frequency. *)

val close : t -> unit

val scrape : ?timeout_s:float -> addr:string -> port:int -> path:string -> unit ->
  (string, string) result
(** Minimal blocking HTTP GET used by tests and the endurance smoke:
    returns the response body. *)
