(* Hot only by reachability: no entry-point seed lives here, but
   Fix_hot.observe calls [slice], so the hot set must propagate across
   the unit boundary and flag it. *)

(* violation: alloc-hot-string (intermediate copy per record) *)
let slice (s : string) = String.sub s 0 1
