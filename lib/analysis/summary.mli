(** Aggregate activity statistics (Tables 1 and 2).

    Streaming accumulator over trace records: operation counts by
    procedure, data volumes, read/write ratios, data-vs-metadata split,
    and the unique-file accounting behind Table 1's "20% of files
    accessed are inboxes / 50% are locks" characterisation. *)

type t

val create : unit -> t
val observe : t -> Nt_trace.Record.t -> unit

val merge : t -> t -> t
(** [merge a b] folds [b] into [a] and returns [a]; [b] must not be
    used afterwards. Shard-order left folds of per-shard accumulators
    reproduce the sequential pass exactly for every integer statistic;
    byte totals are float sums, so sharded results can differ from the
    sequential ones only by float-addition reassociation (documented
    tolerance: 1e-9 relative). An empty accumulator is merge-neutral —
    in particular it does not contribute the "empty trace" one-
    microsecond span clamp of {!days} to the merged span. *)

val total_ops : t -> int
val ops_for : t -> Nt_nfs.Proc.t -> int
val read_ops : t -> int
val write_ops : t -> int
val bytes_read : t -> float
val bytes_written : t -> float
val data_ops_pct : t -> float
(** READ+WRITE calls as a percentage of all calls — Table 1's "most
    NFS calls are for data / for metadata" discriminator. *)

val read_write_byte_ratio : t -> float
val read_write_op_ratio : t -> float
val unique_files_accessed : t -> int
(** Distinct file handles named by any call in the window. *)

val days : t -> float
(** Observed span of the trace, in days (>= one microsecond). *)

type daily = {
  total_ops_m : float;  (** millions per day *)
  data_read_gb : float;
  read_ops_m : float;
  data_written_gb : float;
  write_ops_m : float;
  rw_byte_ratio : float;
  rw_op_ratio : float;
}

val daily : ?scale:float -> t -> daily
(** Average daily activity as in Table 2. [scale] divides the workload
    scale factor back out (e.g. 0.01 to compare a 1/100-scale run with
    the paper's absolute numbers). *)

val top_procs : t -> (Nt_nfs.Proc.t * int) list
(** Procedures by call count, descending. *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}): tracked
    entries and an approximate heap-words estimate. *)
