(** Hot-path allocation rules (alloc-hot-string / format / list /
    closure and alloc-poly-compare) over the bindings in the alloc-hot
    and merge-hot sets.  Error paths under raise are exempt; the counted
    escape hatch is [@@nt.alloc_ok "reason"]. *)

val check : Finding.sink -> hot:Hot.t -> cmp_hot:Hot.t -> Loader.unit_info -> unit
