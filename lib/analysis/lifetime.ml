module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Histogram = Nt_util.Histogram
module Intern = Nt_util.Intern

type config = {
  phase1_start : float;
  phase1_len : float;
  phase2_len : float;
  block : int;
}

let config ~phase1_start =
  { phase1_start; phase1_len = 86400.; phase2_len = 86400.; block = 8192 }

(* Per-block state, packed in a float array:
   >= 0.0   live, tracked birth at that time
   -1.0     live, birth not tracked (pre-existing or out-of-phase)
   -2.0     not live *)
let untracked = -1.0
let dead = -2.0

type file_state = {
  mutable births : float array;
  mutable size_blocks : int;
}

module Fh_tbl = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

(* Name-binding keys are packed interned atoms (dir atom high, name
   atom in the low 31 bits): binding traffic is int-keyed, with no
   per-record tuple allocation or directory-handle hex encoding. *)
module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type death_cause = Overwrite | Truncate | Deletion

(* Name-binding states. Root accumulators know every binding, so an
   absent key means unbound. Shard accumulators start mid-trace and
   absent means unknown; [K_unbound] is an explicit tombstone, and
   [K_tainted] marks a binding whose value depends on predecessor state
   (a rename whose source the shard never saw) — events against it must
   be deferred to preserve ordering. *)
type kstate = K_bound of Fh.t | K_unbound | K_tainted

(* Shard replay log, oldest last. [L_bind] records every locally
   applied binding transition; [L_record] is a record the shard could
   not process (it needed predecessor bindings or block state). At
   merge the log replays in time order against the merged root, which
   restores exactly the binding/state context the sequential pass had. *)
type litem = L_bind of (string * string) * kstate | L_record of Record.t
(* L_bind carries the raw (dir handle, name) strings, not a packed key:
   atom ids are private to one accumulator, so merge re-interns on the
   destination. *)

(* Shard knowledge about a handle's block state. [Grounded]: the file
   was created inside this shard, so its whole history is local.
   [Frozen]: it was grounded, but then a record touching it was
   deferred — local state stops evolving and later events defer too, so
   replay at merge sees states in true time order. Absent: unknown
   (pre-existing file); every state-touching event defers. *)
type fground = Grounded | Frozen

type t = {
  cfg : config;
  files : file_state Fh_tbl.t;
  atoms : Intern.t;  (* dir-handle and name atoms backing [names] keys *)
  (* packed (dir, name) key -> binding, learned from lookups/creates so
     REMOVE/RENAME calls can be resolved to the dying file. *)
  names : kstate Int_tbl.t;
  root : bool;
  ground : fground Fh_tbl.t;  (* shard mode only *)
  mutable log : litem list;  (* shard mode only, newest first *)
  mutable ground_conflicts : int;
      (* merge-detected violations of the fresh-create assumption *)
  mutable births_write : int;
  mutable births_extension : int;
  (* Death journal as parallel arrays ([n_deaths] live entries): the
     kill path runs per overwritten block, so recording a death must
     not allocate. *)
  mutable death_lt : float array;
  mutable death_cause : death_cause array;
  mutable n_deaths : int;
  lifetimes : Histogram.t;
}

(* Log-ish edges from 10 ms to 4 days for the Figure 3 CDF. *)
let lifetime_edges =
  [| 0.01; 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10.; 30.; 60.; 120.; 300.; 600.; 1200.; 1800.;
     3600.; 7200.; 14400.; 28800.; 43200.; 86400.; 172800.; 345600. |]

let make ~root cfg =
  {
    cfg;
    files = Fh_tbl.create 1024;
    atoms = Intern.create 1024;
    names = Int_tbl.create 1024;
    root;
    ground = Fh_tbl.create 256;
    log = [];
    ground_conflicts = 0;
    births_write = 0;
    births_extension = 0;
    death_lt = [||];
    death_cause = [||];
    n_deaths = 0;
    lifetimes = Histogram.create ~edges:lifetime_edges;
  }

let create cfg = make ~root:true cfg
let create_shard cfg = make ~root:false cfg

let phase1_end t = t.cfg.phase1_start +. t.cfg.phase1_len
let phase2_end t = phase1_end t +. t.cfg.phase2_len
let in_phase1 t time = time >= t.cfg.phase1_start && time < phase1_end t
let in_window t time = time >= t.cfg.phase1_start && time < phase2_end t

let blocks_of t bytes = (bytes + t.cfg.block - 1) / t.cfg.block

let state_for t fh ~initial_size_blocks =
  match Fh_tbl.find_opt t.files fh with
  | Some st -> st
  | None ->
      let n = max initial_size_blocks 4 in
      let births = Array.make n dead in
      Array.fill births 0 initial_size_blocks untracked;
      let st = { births; size_blocks = initial_size_blocks } in
      Fh_tbl.add t.files fh st;
      st

let ensure_capacity st n =
  if n > Array.length st.births then begin
    let bigger = Array.make (max n (2 * Array.length st.births)) dead in
    Array.blit st.births 0 bigger 0 (Array.length st.births);
    st.births <- bigger
  end

let push_death t lt cause =
  if t.n_deaths >= Array.length t.death_lt then begin
    let cap = max 64 (2 * Array.length t.death_lt) in
    let lts = Array.make cap 0. in
    let causes = Array.make cap Overwrite in
    Array.blit t.death_lt 0 lts 0 t.n_deaths;
    Array.blit t.death_cause 0 causes 0 t.n_deaths;
    t.death_lt <- lts;
    t.death_cause <- causes
  end;
  t.death_lt.(t.n_deaths) <- lt;
  t.death_cause.(t.n_deaths) <- cause;
  t.n_deaths <- t.n_deaths + 1
[@@nt.unbounded "death journal, one entry per tracked block death; summarized by result"]

let kill t st ~time ~cause b =
  let birth = st.births.(b) in
  if birth >= 0. && in_window t time then begin
    let lifetime = time -. birth in
    push_death t lifetime cause;
    Histogram.add t.lifetimes lifetime
  end;
  st.births.(b) <- dead

let give_birth t st ~time ~extension b =
  if in_phase1 t time then begin
    st.births.(b) <- time;
    if extension then t.births_extension <- t.births_extension + 1
    else t.births_write <- t.births_write + 1
  end
  else st.births.(b) <- untracked

(* A write over [b0, b1]: live blocks die by overwrite and are reborn;
   blocks past EOF are born (the skipped gap counts as extension). *)
let handle_write t fh ~time ~offset ~count ~post_size =
  if count > 0 then begin
    let b0 = offset / t.cfg.block in
    let b1 = (offset + count - 1) / t.cfg.block in
    let initial = max 0 (min b0 (blocks_of t (offset + count))) in
    let st = state_for t fh ~initial_size_blocks:initial in
    ensure_capacity st (b1 + 1);
    (* Gap blocks between old EOF and the write start. *)
    if b0 > st.size_blocks then
      for b = st.size_blocks to b0 - 1 do
        if st.births.(b) = dead then give_birth t st ~time ~extension:true b
      done;
    for b = b0 to b1 do
      if b < st.size_blocks && st.births.(b) <> dead then kill t st ~time ~cause:Overwrite b;
      give_birth t st ~time ~extension:false b
    done;
    let new_size = max st.size_blocks (b1 + 1) in
    (match post_size with
    | Some s ->
        let sb = blocks_of t (Int64.to_int s) in
        st.size_blocks <- max new_size sb
    | None -> st.size_blocks <- new_size);
    ensure_capacity st st.size_blocks
  end

let handle_truncate t fh ~time ~new_size =
  let nb = blocks_of t new_size in
  match Fh_tbl.find_opt t.files fh with
  | None -> ignore (state_for t fh ~initial_size_blocks:nb)
  | Some st ->
      if nb < st.size_blocks then begin
        for b = nb to st.size_blocks - 1 do
          if b < Array.length st.births && st.births.(b) <> dead then
            kill t st ~time ~cause:Truncate b
        done;
        st.size_blocks <- nb
      end
      else if nb > st.size_blocks then begin
        ensure_capacity st nb;
        for b = st.size_blocks to nb - 1 do
          give_birth t st ~time ~extension:true b
        done;
        st.size_blocks <- nb
      end

let handle_remove t fh ~time =
  match Fh_tbl.find_opt t.files fh with
  | None -> ()
  | Some st ->
      for b = 0 to st.size_blocks - 1 do
        if b < Array.length st.births && st.births.(b) <> dead then
          kill t st ~time ~cause:Deletion b
      done;
      Fh_tbl.remove t.files fh

(* Learn sizes from attributes without creating tracked births. *)
let note_size t fh size =
  let nb = blocks_of t (Int64.to_int size) in
  let st = state_for t fh ~initial_size_blocks:nb in
  if nb > st.size_blocks then begin
    ensure_capacity st nb;
    for b = st.size_blocks to nb - 1 do
      if st.births.(b) = dead then st.births.(b) <- untracked
    done;
    st.size_blocks <- nb
  end

let key t ~dir ~name = (Intern.id t.atoms dir lsl 31) lor Intern.id t.atoms name
let name_key t dir name = key t ~dir:(Fh.to_raw dir) ~name

(* Binding lookup that distinguishes "known unbound" (root: absent;
   shard: tombstone) from "never seen" (shard: absent). *)
type kq = Q_bound of Fh.t | Q_unbound | Q_tainted | Q_unknown

let kstate_of t k =
  match Int_tbl.find_opt t.names k with
  | Some (K_bound fh) -> Q_bound fh
  | Some K_unbound -> Q_unbound
  | Some K_tainted -> Q_tainted
  | None -> if t.root then Q_unbound else Q_unknown

(* Every locally applied binding transition is journaled so merge can
   replay it at its stream position. [~log:false] marks shard-mode
   bookkeeping for a *deferred* record: the replayed record itself will
   redo the binding on the root, so journaling it too would apply it
   twice. *)
let set_key ?(log = true) t ~dir ~name st =
  let dir = Fh.to_raw dir in
  (match st with
  | K_unbound when t.root -> Int_tbl.remove t.names (key t ~dir ~name)
  | _ -> Int_tbl.replace t.names (key t ~dir ~name) st);
  if log && not t.root then t.log <- L_bind ((dir, name), st) :: t.log
[@@nt.alloc_ok "journal entry per shard-local binding transition; root mode never journals"]
[@@nt.unbounded "shard replay journal, drained at merge"]

let is_grounded t fh =
  t.root || match Fh_tbl.find_opt t.ground fh with Some Grounded -> true | _ -> false

let freeze t fh =
  match Fh_tbl.find_opt t.ground fh with
  | Some Grounded -> Fh_tbl.replace t.ground fh Frozen
  | _ -> ()

(* Defer [r] to merge time. Any locally grounded handle whose state
   the record would touch must be frozen (see [freeze]) by the caller
   so no later local event mutates it out of order. *)
let defer t (r : Record.t) =
  t.log <- L_record r :: t.log
[@@nt.alloc_ok "journal entry per deferred record; shard mode only"]
[@@nt.unbounded "shard replay journal, drained at merge"]

(* Process a record whose every prerequisite (bindings, block states)
   is locally known. This is the entire sequential semantics; the root
   path and the merge replay both come straight here. *)
let apply t (r : Record.t) =
  (* Name learning for REMOVE/RENAME resolution. *)
  (match (r.call, r.result) with
  | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh; _ })) ->
      set_key t ~dir ~name (K_bound fh)
  | Ops.Create { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
      set_key t ~dir ~name (K_bound fh)
  | _ -> ());
  match r.call with
  | Ops.Write { fh; offset; count; _ } ->
      let count =
        match r.result with Some (Ok (Ops.R_write { count = c; _ })) when c > 0 -> c | _ -> count
      in
      handle_write t fh ~time:r.time ~offset:(Int64.to_int offset) ~count
        ~post_size:(Record.post_size r)
  | Ops.Setattr { fh; attrs } -> (
      match attrs.set_size with
      | Some s -> handle_truncate t fh ~time:r.time ~new_size:(Int64.to_int s)
      | None -> ())
  | Ops.Remove { dir; name } ->
      if Record.is_ok r then begin
        match kstate_of t (name_key t dir name) with
        | Q_bound fh ->
            handle_remove t fh ~time:r.time;
            set_key t ~dir ~name K_unbound
        | Q_unbound | Q_tainted | Q_unknown -> ()
      end
  | Ops.Rename { from_dir; from_name; to_dir; to_name } ->
      if Record.is_ok r then begin
        (* POSIX rename: a pre-existing target is unlinked. *)
        let fk = name_key t from_dir from_name and tk = name_key t to_dir to_name in
        (match kstate_of t tk with
        | Q_bound victim -> handle_remove t victim ~time:r.time
        | _ -> ());
        match kstate_of t fk with
        | Q_bound fh ->
            set_key t ~dir:from_dir ~name:from_name K_unbound;
            set_key t ~dir:to_dir ~name:to_name (K_bound fh)
        | _ -> set_key t ~dir:to_dir ~name:to_name K_unbound
      end
  | Ops.Create { dir = _; name = _; _ } -> (
      (* A create that truncated an existing file would show as size 0. *)
      match (Record.target_fh r, Record.post_size r) with
      | Some fh, Some size -> note_size t fh size
      | _ -> ())
  | _ -> (
      match (Record.target_fh r, Record.post_size r) with
      | Some fh, Some size -> note_size t fh size
      | _ -> ())

(* Shard-mode dispatch: apply locally when every prerequisite is
   shard-local knowledge, otherwise journal the record for merge-time
   replay and keep just enough local bookkeeping (tombstones, taint,
   un-journaled bindings) that later records resolve consistently. *)
let observe_shard t (r : Record.t) =
  match r.call with
  | Ops.Write { fh; _ } -> if is_grounded t fh then apply t r else defer t r
  | Ops.Setattr { fh; attrs } -> (
      match attrs.set_size with
      | None -> ()
      | Some _ -> if is_grounded t fh then apply t r else defer t r)
  | Ops.Remove { dir; name } ->
      if Record.is_ok r then begin
        match kstate_of t (name_key t dir name) with
        | Q_bound fh when is_grounded t fh -> apply t r
        | Q_unbound -> ()
        | Q_bound _ | Q_tainted | Q_unknown ->
            (* The dying file's block state (or the binding itself)
               lives in a predecessor shard. *)
            defer t r;
            set_key ~log:false t ~dir ~name K_unbound
      end
  | Ops.Rename { from_dir; from_name; to_dir; to_name } ->
      if Record.is_ok r then begin
        let fk = name_key t from_dir from_name and tk = name_key t to_dir to_name in
        let fq = kstate_of t fk and tq = kstate_of t tk in
        let victim_local =
          match tq with
          | Q_bound vfh -> is_grounded t vfh
          | Q_unbound -> true
          | Q_tainted | Q_unknown -> false
        in
        let from_known = match fq with Q_bound _ | Q_unbound -> true | _ -> false in
        if victim_local && from_known then apply t r
        else begin
          (* A locally known victim dies at replay time: freeze it. *)
          (match tq with Q_bound vfh -> freeze t vfh | _ -> ());
          defer t r;
          set_key ~log:false t ~dir:from_dir ~name:from_name K_unbound;
          match fq with
          | Q_bound fh -> set_key ~log:false t ~dir:to_dir ~name:to_name (K_bound fh)
          | Q_unbound -> set_key ~log:false t ~dir:to_dir ~name:to_name K_unbound
          | Q_tainted | Q_unknown -> set_key ~log:false t ~dir:to_dir ~name:to_name K_tainted
        end
      end
  | _ -> (
      (* Lookup / Create / attribute-bearing replies. A successful
         CREATE grounds its handle: the reply handle is assumed fresh
         (no handle reuse within a trace), so the file's whole history
         is shard-local from here on. *)
      (match (r.call, r.result) with
      | Ops.Create _, Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
          if not (Fh_tbl.mem t.ground fh) then Fh_tbl.replace t.ground fh Grounded
      | _ -> ());
      match (Record.target_fh r, Record.post_size r) with
      | Some fh, Some _ when not (is_grounded t fh) ->
          (* note_size needs predecessor state; the Lookup binding is
             state-free, so keep it usable locally (un-journaled — the
             replayed record re-binds at its own stream slot). *)
          defer t r;
          (match (r.call, r.result) with
          | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh = lfh; _ })) ->
              set_key ~log:false t ~dir ~name (K_bound lfh)
          | _ -> ())
      | _ -> apply t r)

let observe t (r : Record.t) =
  if r.time < phase2_end t then if t.root then apply t r else observe_shard t r

let ground_conflicts t = t.ground_conflicts

let merge a b =
  if not a.root then invalid_arg "Lifetime.merge: destination must be a root accumulator";
  (* 1. Absorb [b]'s shard-local file states. Each is either grounded
     (created in [b], never deferred against — final) or frozen at its
     defer point (replay below finishes its history in time order). *)
  Fh_tbl.iter
    (fun fh st ->
      if Fh_tbl.mem a.files fh then a.ground_conflicts <- a.ground_conflicts + 1;
      Fh_tbl.replace a.files fh st)
    b.files;
  a.ground_conflicts <- a.ground_conflicts + b.ground_conflicts;
  (* 2. Replay binding transitions and deferred records oldest-first
     against the merged root, restoring the sequential pass's context
     for each deferred record. *)
  List.iter
    (function
      | L_bind ((dir, name), K_unbound) -> Int_tbl.remove a.names (key a ~dir ~name)
      | L_bind ((dir, name), st) -> Int_tbl.replace a.names (key a ~dir ~name) st
      | L_record r -> observe a r)
    (List.rev b.log);
  (* 3. Counters, deaths and the lifetime histogram are plain sums
     (replayed records above contributed to [a]'s, never [b]'s). *)
  a.births_write <- a.births_write + b.births_write;
  a.births_extension <- a.births_extension + b.births_extension;
  for i = 0 to b.n_deaths - 1 do
    push_death a b.death_lt.(i) b.death_cause.(i)
  done;
  ignore (Histogram.merge a.lifetimes b.lifetimes);
  a

type result = {
  births : int;
  births_write_pct : float;
  births_extension_pct : float;
  deaths : int;
  deaths_overwrite_pct : float;
  deaths_truncate_pct : float;
  deaths_deletion_pct : float;
  end_surplus : int;
  end_surplus_pct : float;
  lifetime_cdf : (float * float) list;
}

let result t =
  let births = t.births_write + t.births_extension in
  (* Sampling-bias filter: deaths with lifespan beyond Phase 2's length
     could only have been observed for early births. *)
  let deaths = ref 0 in
  let dropped = ref 0 in
  let overwrites = ref 0 in
  let truncates = ref 0 in
  let deletions = ref 0 in
  let hist = Histogram.create ~edges:lifetime_edges in
  for i = 0 to t.n_deaths - 1 do
    let l = t.death_lt.(i) in
    if l <= t.cfg.phase2_len then begin
      incr deaths;
      (match t.death_cause.(i) with
      | Overwrite -> incr overwrites
      | Truncate -> incr truncates
      | Deletion -> incr deletions);
      Histogram.add hist l
    end
    else incr dropped
  done;
  let deaths = !deaths in
  let live_tracked = ref 0 in
  Fh_tbl.iter
    (fun _ st ->
      for b = 0 to st.size_blocks - 1 do
        if b < Array.length st.births && st.births.(b) >= 0. then incr live_tracked
      done)
    t.files;
  let end_surplus = !live_tracked + !dropped in
  let pct n = if deaths = 0 then 0. else 100. *. float_of_int n /. float_of_int deaths in
  {
    births;
    births_write_pct =
      (if births = 0 then 0. else 100. *. float_of_int t.births_write /. float_of_int births);
    births_extension_pct =
      (if births = 0 then 0. else 100. *. float_of_int t.births_extension /. float_of_int births);
    deaths;
    deaths_overwrite_pct = pct !overwrites;
    deaths_truncate_pct = pct !truncates;
    deaths_deletion_pct = pct !deletions;
    end_surplus;
    end_surplus_pct =
      (if births = 0 then 0. else 100. *. float_of_int end_surplus /. float_of_int births);
    lifetime_cdf = Histogram.cdf hist;
  }

let cdf_at r seconds =
  let rec go last = function
    | [] -> last
    | (edge, frac) :: rest -> if edge > seconds then last else go frac rest
  in
  go 0. r.lifetime_cdf

let footprint t =
  let files = Fh_tbl.length t.files in
  let atoms = Intern.size t.atoms in
  let names = Int_tbl.length t.names in
  let ground = Fh_tbl.length t.ground in
  let log = List.length t.log in
  let fp =
    Nt_obs.Footprint.v
      ~cards:(files + atoms + names + ground + log + t.n_deaths)
      ~words:
        (32 + (files * 22) + (atoms * 10) + (names * 8) + (ground * 14) + (log * 12)
        + (Array.length t.death_lt * 3))
  in
  Nt_obs.Footprint.add fp (Histogram.footprint t.lifetimes)
