(* The CAMPUS scenario from the paper's introduction: a central email
   service whose NFS traffic is dominated by mailbox reads, short-lived
   lock files, and the daily rhythm of its users.

   This example simulates a peak morning and an off-peak night window,
   then shows the signatures the paper reports: the lock-file churn,
   the mailbox byte share, and how differently the two windows load the
   server.

   Run with: dune exec examples/email_workload.exe *)

module Tw = Nt_util.Trace_week
module Tables = Nt_util.Tables
module Summary = Nt_analysis.Summary
module Names = Nt_analysis.Names

let window label ~day ~hour ~hours =
  let start = Tw.time_of ~day ~hour ~minute:0 in
  let stop = start +. (3600. *. hours) in
  let summary = Summary.create () in
  let names = Names.create () in
  let config = { Nt_workload.Email.default_config with users = 50 } in
  let stats =
    Nt_core.Pipeline.simulate_campus ~config ~start ~stop
      ~sink:(fun r ->
        Summary.observe summary r;
        Names.observe names r)
      ()
  in
  Printf.printf "\n=== %s (%s, %g h, 50 users) ===\n" label (Tw.format start) hours;
  Printf.printf "  records: %d  sessions: %d  deliveries: %d\n" stats.records stats.sessions
    stats.deliveries;
  Printf.printf "  data read %s / written %s (R/W ops %.2f)\n"
    (Tables.fmt_bytes (Summary.bytes_read summary))
    (Tables.fmt_bytes (Summary.bytes_written summary))
    (Summary.read_write_op_ratio summary);
  Printf.printf "  %% of calls moving data: %.1f%%\n" (Summary.data_ops_pct summary);
  Printf.printf "  mailbox share of bytes: %.1f%% (paper: >95%%)\n"
    (100. *. Names.byte_share names Names.Mailbox);
  Printf.printf "  locks among files touched: %.1f%% (paper: ~50%% at peak)\n"
    (100. *. Names.unique_file_share names Names.Lock);
  let lock_life = Names.lock_lifetime_under names 0.40 in
  if not (Float.is_nan lock_life) then
    Printf.printf "  lock lifetimes < 0.4 s: %.1f%% (paper: 99.9%%)\n" (100. *. lock_life);
  (summary, stats)

let () =
  let peak, peak_stats = window "Peak hours" ~day:Tw.Wed ~hour:10 ~hours:3. in
  let night, night_stats = window "Off-peak" ~day:Tw.Wed ~hour:2 ~hours:3. in
  Printf.printf "\n=== Peak vs off-peak (the paper's Figure 4 effect) ===\n";
  Printf.printf "  ops: %d at peak vs %d at night (%.1fx)\n" peak_stats.records
    night_stats.records
    (float_of_int peak_stats.records /. float_of_int (max 1 night_stats.records));
  Printf.printf "  bytes read: %s vs %s\n"
    (Tables.fmt_bytes (Summary.bytes_read peak))
    (Tables.fmt_bytes (Summary.bytes_read night))
