(** Unified observability: a registry of labeled counters, gauges and
    fixed-bucket histograms, plus lightweight nested stage spans, with
    JSON and Prometheus text exporters.

    The paper's tracer ran unattended for months; that only works when
    the tool reports on itself — capture loss, decode failures and
    throughput are first-class results (§4.1.4). Every pipeline stage
    registers its accounting here so one snapshot document describes a
    whole run.

    Cost contract: a metric handle is resolved once (at component
    creation), so hot-path updates are one load, one branch and one
    store. When the registry is disabled the branch fails and nothing
    else happens — no clock reads, no allocation. [null] is a shared,
    permanently disabled registry for callers that want instrumentation
    compiled down to that single branch. *)

type t
(** A metric registry. Instances are independent; components default to
    a private always-enabled registry so their accessors keep working
    when the caller does not wire one through. *)

val create : ?enabled:bool -> ?clock:(unit -> float) -> unit -> t
(** [enabled] defaults to [true]. [clock] (seconds, default
    [Unix.gettimeofday]) is read through a monotonic clamp: observed
    time never goes backwards even if the source does. *)

val null : t
(** Shared, permanently disabled registry; {!set_enabled} on it is
    ignored. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val now : t -> float
(** The registry's monotonically clamped clock. *)

(** {1 Metrics}

    Registration is idempotent: the same name and label set returns the
    same underlying metric. Re-registering a name under a different
    metric kind raises [Invalid_argument]. Labels are sorted
    canonically, so label order does not matter. *)

type labels = (string * string) list

type counter

val counter : t -> ?labels:labels -> ?help:string -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
(** No-ops while the registry is disabled. Negative [add] amounts are
    ignored — counters are monotone. *)

val value : counter -> int

type gauge

val gauge : t -> ?labels:labels -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** [set_max g v] keeps the peak: the gauge only moves up. *)

val gauge_value : gauge -> float

type histogram

val histogram : t -> ?labels:labels -> ?help:string -> buckets:float list -> string -> histogram
(** [buckets] are upper bounds, sorted ascending; an implicit +infinity
    bucket catches the rest. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Stage spans}

    Monotonic-clock start/stop pairs with nesting: a span opened while
    another is open is recorded under the path
    ["parent/child"]. Aggregation is by path — count, total, min and
    max seconds. Disabled registries skip the clock read entirely. *)

val span_open : t -> string -> unit

val span_close : t -> string -> unit
(** Closes the innermost open span (the name is checked only
    informally; a mismatched or extra close is ignored rather than
    raised — observability must never take the pipeline down). *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span; the span closes even
    if [f] raises. *)

val reanchor : t -> unit
(** Re-anchor the registry on the current clock after a checkpoint
    restore: the monotonic clamp is released down to the clock's
    present reading and every open span is re-stamped to start {e now},
    so downtime is attributed to no span and a wall clock that stepped
    backward across the restart can never yield a negative or wrapped
    duration. Ignored on {!null}. *)

(** {2 Trace sink}

    A registered sink sees every span transition on the registry —
    path, clamped timestamp — which is how {!Timeline} mirrors span
    activity into a Chrome-trace export without the registry knowing
    about timelines. The sink is consulted only on the enabled path
    (plus {!reanchor}), so the disabled-registry cost contract is
    untouched. *)

type sink = {
  on_span_open : string -> float -> unit;  (** full path, start time *)
  on_span_close : string -> float -> unit;  (** full path, stop time *)
  on_reanchor : float -> unit;  (** the re-anchored clock reading *)
}

val set_trace_sink : t -> sink option -> unit
(** At most one sink; [None] detaches. Ignored on {!null}. *)

val span_record : t -> string -> seconds:float -> unit
(** Record one completed span of the given duration without touching
    the registry clock, attributed under the currently open span path.
    This is how work timed on another domain (e.g. a shard task in the
    parallel driver) is folded into a single-domain registry: workers
    measure, the coordinator records. Negative durations clamp to 0. *)

(** {1 Snapshots and exporters} *)

type metric_value =
  | Counter of int
  | Gauge of float
  | Histogram of { le : float list; counts : int list; sum : float; count : int }
      (** [counts] has one entry per [le] bound plus a final overflow
          bucket. *)

type metric = { name : string; labels : labels; help : string; value : metric_value }
type span_stat = { path : string; count : int; total_s : float; min_s : float; max_s : float }

type snapshot = {
  taken_at : float;  (** registry clock at snapshot time *)
  snap_enabled : bool;
  metrics : metric list;  (** sorted by (name, labels) *)
  spans : span_stat list;  (** sorted by path *)
}

val snapshot : t -> snapshot

val get_counter : snapshot -> ?labels:labels -> string -> int option
val sum_counter : snapshot -> string -> int
(** Sum of a counter across all label sets (0 when absent). *)

val get_gauge : snapshot -> ?labels:labels -> string -> float option
val get_span : snapshot -> string -> span_stat option

val to_json : snapshot -> string
(** One self-describing JSON document ([{"schema":"nt_obs/1", ...}]). *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format. Metric names are sanitised
    ([.-] become [_]); spans export as [nt_span_seconds_total] /
    [nt_span_count] with a [path] label. *)

val output_json : out_channel -> snapshot -> unit

(** {1 Minimal JSON parser}

    Enough JSON to validate and interrogate our own exports (and the
    bench's snapshot schema) without an external dependency. Numbers
    are floats; object member order is preserved; duplicate keys keep
    their first occurrence for {!member}. *)

module Json : sig
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  val parse : string -> (v, string) result
  (** Rejects trailing garbage; the whole input must be one value. *)

  val member : string -> v -> v option
  val to_num : v -> float option
  val to_str : v -> string option
  val to_list : v -> v list option

  val find_metric : v -> ?labels:(string * string) list -> string -> v option
  (** Look up a metric object by name (and exact label set) inside a
      parsed nt_obs snapshot. *)

  val metric_number : v -> ?labels:(string * string) list -> string -> float option
  (** The ["value"] field of {!find_metric}'s result. *)
end
