lib/trace/record.ml: Buffer Char Int64 List Nt_net Nt_nfs Option Printf Result Seq Stdlib String
