test/test_sim.ml: Alcotest Gen Int64 List Nt_net Nt_nfs Nt_sim Nt_trace Nt_util Printf QCheck QCheck_alcotest
