(** Merge-law coverage: interfaces exposing [merge : t -> t -> t] must
    have a merge-law property registration in the test suite. *)

val check :
  Finding.sink ->
  in_scope:(string -> bool) ->
  test_units:string list ->
  prop_fn:string ->
  Loader.unit_info list ->
  string list * string list * int
(** [check sink ~in_scope ~test_units ~prop_fn units] emits a
    [merge-law-missing] finding per uncovered requirement and returns
    [(required, covered, test_units_found)] for the engine's stats:
    dotted names of modules that must be covered, dotted names the test
    registrations actually mention, and how many test units were
    scanned (0 means the coverage side never ran — the engine turns
    that into a config-drift finding). *)
