type config = {
  seek_time : float;
  settle_time : float;
  transfer_rate : float;
  near_threshold : int;
  block_size : int;
}

let default_config =
  {
    seek_time = 0.005;
    settle_time = 0.002;
    transfer_rate = 40_000_000.;
    near_threshold = 10;
    block_size = 8192;
  }

module Int_set = Set.Make (Int)

type t = {
  config : config;
  mutable head_pos : int;
  mutable buffered : Int_set.t;  (* blocks in the prefetch buffer *)
  mutable busy : float;
}

let create ?(config = default_config) () =
  { config; head_pos = 0; buffered = Int_set.empty; busy = 0. }

let platter_read t ~block ~nblocks =
  let c = t.config in
  let distance = abs (block - t.head_pos) in
  let seek = if distance <= c.near_threshold then 0. else c.seek_time in
  let transfer = float_of_int (nblocks * c.block_size) /. c.transfer_rate in
  t.head_pos <- block + nblocks;
  let cost = seek +. c.settle_time +. transfer in
  t.busy <- t.busy +. cost;
  cost

let read t ~block ~nblocks =
  (* Any buffered prefix is free; the remainder hits the platter. *)
  let rec buffered_prefix b n = if n = 0 || not (Int_set.mem b t.buffered) then (b, n) else buffered_prefix (b + 1) (n - 1) in
  let first_missing, missing = buffered_prefix block nblocks in
  (* Consumed blocks leave the buffer. *)
  for b = block to first_missing - 1 do
    t.buffered <- Int_set.remove b t.buffered
  done;
  if missing = 0 then 0. else platter_read t ~block:first_missing ~nblocks:missing

let prefetch t ~block ~nblocks =
  let cost = platter_read t ~block ~nblocks in
  for b = block to block + nblocks - 1 do
    t.buffered <- Int_set.add b t.buffered
  done;
  cost

let head t = t.head_pos
let busy_time t = t.busy
