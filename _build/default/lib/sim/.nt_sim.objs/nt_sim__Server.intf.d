lib/sim/server.mli: Nt_net Nt_nfs Sim_fs
