(** A small mechanical disk model for the read-ahead experiment (§6.4).

    Service time = seek (when the arm must move) + rotational settle +
    transfer. The paper's observation that "logical seeks of fewer than
    10 blocks are unlikely to induce disk arm movement" is modelled by
    [near_threshold]: jumps inside it cost no seek. *)

type config = {
  seek_time : float;  (** average arm movement cost, seconds *)
  settle_time : float;  (** rotational delay applied on every request *)
  transfer_rate : float;  (** bytes per second off the platter *)
  near_threshold : int;  (** blocks reachable without arm movement *)
  block_size : int;
}

val default_config : config
(** Early-2000s disk: 5 ms seek, 2 ms settle, 40 MB/s, 10-block
    near-window, 8 KB blocks. *)

type t

val create : ?config:config -> unit -> t

val read : t -> block:int -> nblocks:int -> float
(** Service time for reading [nblocks] starting at [block]; advances
    the head. Reads satisfied by the prefetch buffer are free — see
    {!prefetch}. *)

val prefetch : t -> block:int -> nblocks:int -> float
(** Fetch blocks into the prefetch buffer (costs platter time now,
    saves it later). *)

val head : t -> int
val busy_time : t -> float
(** Total platter time consumed so far. *)
