(* The registry is a flat table of metric objects keyed by
   (name, canonical labels). Handles are resolved once at component
   creation; every hot-path update is then one load, one branch on
   [reg.on], and one store — and when the registry is disabled, just
   the branch. Spans additionally read the clock, so a disabled
   registry skips them entirely. *)

type labels = (string * string) list

let canon_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

type reg = {
  mutable on : bool;
  frozen : bool;  (* [null]: set_enabled is ignored *)
  clock : unit -> float;
  mutable last_now : float;  (* monotonic clamp over [clock] *)
  metrics : (string, entry) Hashtbl.t;
  mutable entries_rev : entry list;
  span_aggs : (string, span_agg) Hashtbl.t;
  mutable span_paths_rev : string list;
  mutable stack : open_span list;
  mutable sink : sink option;
}

and sink = {
  on_span_open : string -> float -> unit;
  on_span_close : string -> float -> unit;
  on_reanchor : float -> unit;
}

and entry = { e_name : string; e_labels : labels; e_help : string; e_obj : obj }
and obj = M_counter of counter | M_gauge of gauge | M_hist of histogram
and counter = { c_reg : reg; mutable c_v : int }
and gauge = { g_reg : reg; mutable g_v : float }

and histogram = {
  h_reg : reg;
  h_le : float array;  (* ascending upper bounds *)
  h_counts : int array;  (* length = Array.length h_le + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
}

and span_agg = {
  mutable sp_count : int;
  mutable sp_total : float;
  mutable sp_min : float;
  mutable sp_max : float;
}

and open_span = { o_path : string; o_start : float }

type t = reg

let create ?(enabled = true) ?clock () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    on = enabled;
    frozen = false;
    clock;
    last_now = neg_infinity;
    metrics = Hashtbl.create 64;
    entries_rev = [];
    span_aggs = Hashtbl.create 16;
    span_paths_rev = [];
    stack = [];
    sink = None;
  }

let null = { (create ~enabled:false ()) with frozen = true }
[@@nt.domain_safe "disabled and frozen: every mutating entry point checks [on]/[frozen] first, so cross-domain sharing never writes"]
let enabled t = t.on
let set_enabled t v = if not t.frozen then t.on <- v
let set_trace_sink t s = if not t.frozen then t.sink <- s

let now t =
  let v = t.clock () in
  if v > t.last_now then t.last_now <- v;
  t.last_now

(* --- registration --- *)

let key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_hist _ -> "histogram"

let register t ~labels ~help name make =
  let labels = canon_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt t.metrics k with
  | Some e -> e.e_obj
  | None ->
      let obj = make () in
      (* A name must keep one kind across all label sets. *)
      List.iter
        (fun e ->
          if e.e_name = name && kind_name e.e_obj <> kind_name obj then
            invalid_arg
              (Printf.sprintf "Obs: %s already registered as a %s" name (kind_name e.e_obj)))
        t.entries_rev;
      let e = { e_name = name; e_labels = labels; e_help = help; e_obj = obj } in
      Hashtbl.replace t.metrics k e;
      t.entries_rev <- e :: t.entries_rev;
      obj

let counter t ?(labels = []) ?(help = "") name =
  match register t ~labels ~help name (fun () -> M_counter { c_reg = t; c_v = 0 }) with
  | M_counter c -> c
  | M_gauge _ | M_hist _ -> invalid_arg ("Obs.counter: " ^ name ^ " is not a counter")
[@@nt.raise_ok
  "metric names are static strings chosen at wiring time; a kind clash is a programming error \
   the first registration surfaces"]

let inc c = if c.c_reg.on then c.c_v <- c.c_v + 1
let add c n = if c.c_reg.on && n > 0 then c.c_v <- c.c_v + n
let value c = c.c_v

let gauge t ?(labels = []) ?(help = "") name =
  match register t ~labels ~help name (fun () -> M_gauge { g_reg = t; g_v = 0. }) with
  | M_gauge g -> g
  | M_counter _ | M_hist _ -> invalid_arg ("Obs.gauge: " ^ name ^ " is not a gauge")
[@@nt.raise_ok
  "metric names are static strings chosen at wiring time; a kind clash is a programming error \
   the first registration surfaces"]

let set g v = if g.g_reg.on then g.g_v <- v
let set_max g v = if g.g_reg.on && v > g.g_v then g.g_v <- v
let gauge_value g = g.g_v

let histogram t ?(labels = []) ?(help = "") ~buckets name =
  let make () =
    let le = Array.of_list buckets in
    let sorted = Array.copy le in
    Array.sort Float.compare sorted;
    if le <> sorted then invalid_arg ("Obs.histogram: buckets not ascending for " ^ name);
    M_hist { h_reg = t; h_le = le; h_counts = Array.make (Array.length le + 1) 0; h_sum = 0.; h_count = 0 }
  in
  match register t ~labels ~help name make with
  | M_hist h -> h
  | M_counter _ | M_gauge _ -> invalid_arg ("Obs.histogram: " ^ name ^ " is not a histogram")
[@@nt.raise_ok
  "metric names and bucket lists are static wiring-time values; a kind clash or unsorted \
   buckets is a programming error the first registration surfaces"]

let observe h v =
  if h.h_reg.on then begin
    let n = Array.length h.h_le in
    let i = ref 0 in
    while !i < n && v > h.h_le.(!i) do
      incr i
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* --- spans --- *)

let span_agg_for t path =
  match Hashtbl.find_opt t.span_aggs path with
  | Some a -> a
  | None ->
      let a = { sp_count = 0; sp_total = 0.; sp_min = infinity; sp_max = 0. } in
      Hashtbl.replace t.span_aggs path a;
      t.span_paths_rev <- path :: t.span_paths_rev;
      a

let span_open t name =
  if t.on then begin
    let path =
      match t.stack with [] -> name | { o_path; _ } :: _ -> o_path ^ "/" ^ name
    in
    let start = now t in
    t.stack <- { o_path = path; o_start = start } :: t.stack;
    match t.sink with Some s -> s.on_span_open path start | None -> ()
  end

let reanchor t =
  if not t.frozen then begin
    (* Release the monotonic clamp down to the current clock reading,
       then re-stamp every open span at that instant: time the process
       did not exist (checkpoint restore) is attributed to no span, and
       a clock that stepped backward across the restart cannot produce
       a negative or wrapped duration. *)
    t.last_now <- t.clock ();
    t.stack <- List.map (fun sp -> { sp with o_start = t.last_now }) t.stack;
    match t.sink with Some s -> s.on_reanchor t.last_now | None -> ()
  end

let span_close t _name =
  if t.on then
    match t.stack with
    | [] -> ()
    | { o_path; o_start } :: rest ->
        t.stack <- rest;
        (* The clamp in [now] guarantees d >= 0 even if the underlying
           clock stepped backwards mid-span. *)
        let stop = now t in
        let d = Float.max 0. (stop -. o_start) in
        let a = span_agg_for t o_path in
        a.sp_count <- a.sp_count + 1;
        a.sp_total <- a.sp_total +. d;
        if d < a.sp_min then a.sp_min <- d;
        if d > a.sp_max then a.sp_max <- d;
        (match t.sink with Some s -> s.on_span_close o_path stop | None -> ())

let span_record t name ~seconds =
  if t.on then begin
    let path =
      match t.stack with [] -> name | { o_path; _ } :: _ -> o_path ^ "/" ^ name
    in
    let d = Float.max 0. seconds in
    let a = span_agg_for t path in
    a.sp_count <- a.sp_count + 1;
    a.sp_total <- a.sp_total +. d;
    if d < a.sp_min then a.sp_min <- d;
    if d > a.sp_max then a.sp_max <- d
  end

let with_span t name f =
  if not t.on then f ()
  else begin
    span_open t name;
    Fun.protect ~finally:(fun () -> span_close t name) f
  end

(* --- snapshots --- *)

type metric_value =
  | Counter of int
  | Gauge of float
  | Histogram of { le : float list; counts : int list; sum : float; count : int }

type metric = { name : string; labels : labels; help : string; value : metric_value }
type span_stat = { path : string; count : int; total_s : float; min_s : float; max_s : float }

type snapshot = {
  taken_at : float;
  snap_enabled : bool;
  metrics : metric list;
  spans : span_stat list;
}

let snapshot t =
  let metrics =
    List.rev_map
      (fun e ->
        let value =
          match e.e_obj with
          | M_counter c -> Counter c.c_v
          | M_gauge g -> Gauge g.g_v
          | M_hist h ->
              Histogram
                {
                  le = Array.to_list h.h_le;
                  counts = Array.to_list h.h_counts;
                  sum = h.h_sum;
                  count = h.h_count;
                }
        in
        { name = e.e_name; labels = e.e_labels; help = e.e_help; value })
      t.entries_rev
  in
  let metrics =
    List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) metrics
  in
  let spans =
    List.rev_map
      (fun path ->
        let a = Hashtbl.find t.span_aggs path in
        {
          path;
          count = a.sp_count;
          total_s = a.sp_total;
          min_s = (if a.sp_count = 0 then 0. else a.sp_min);
          max_s = a.sp_max;
        })
      t.span_paths_rev
  in
  let spans = List.sort (fun a b -> String.compare a.path b.path) spans in
  { taken_at = (if t.on then now t else t.clock ()); snap_enabled = t.on; metrics; spans }

let get_counter snap ?(labels = []) name =
  let labels = canon_labels labels in
  List.find_map
    (fun m ->
      match m.value with
      | Counter v when m.name = name && m.labels = labels -> Some v
      | _ -> None)
    snap.metrics

let sum_counter snap name =
  List.fold_left
    (fun acc m -> match m.value with Counter v when m.name = name -> acc + v | _ -> acc)
    0 snap.metrics

let get_gauge snap ?(labels = []) name =
  let labels = canon_labels labels in
  List.find_map
    (fun m ->
      match m.value with
      | Gauge v when m.name = name && m.labels = labels -> Some v
      | _ -> None)
    snap.metrics

let get_span snap path = List.find_opt (fun s -> s.path = path) snap.spans

(* --- JSON export --- *)

let buf_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_float f =
  if Float.is_nan f || Float.is_integer f = false && Float.is_finite f = false then "0"
  else if Float.is_finite f = false then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let buf_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      buf_json_string b k;
      Buffer.add_string b ": ";
      buf_json_string b v)
    labels;
  Buffer.add_char b '}'

let to_json snap =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"";
  Buffer.add_string b Nt_formats.Formats.obs_snapshot;
  Buffer.add_string b "\",\n  \"taken_at\": ";
  Buffer.add_string b (json_float snap.taken_at);
  Buffer.add_string b ",\n  \"enabled\": ";
  Buffer.add_string b (if snap.snap_enabled then "true" else "false");
  Buffer.add_string b ",\n  \"metrics\": [";
  List.iteri
    (fun i m ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "    {\"name\": ";
      buf_json_string b m.name;
      Buffer.add_string b ", \"kind\": ";
      (match m.value with
      | Counter _ -> Buffer.add_string b "\"counter\""
      | Gauge _ -> Buffer.add_string b "\"gauge\""
      | Histogram _ -> Buffer.add_string b "\"histogram\"");
      Buffer.add_string b ", \"labels\": ";
      buf_labels b m.labels;
      if m.help <> "" then begin
        Buffer.add_string b ", \"help\": ";
        buf_json_string b m.help
      end;
      (match m.value with
      | Counter v ->
          Buffer.add_string b ", \"value\": ";
          Buffer.add_string b (string_of_int v)
      | Gauge v ->
          Buffer.add_string b ", \"value\": ";
          Buffer.add_string b (json_float v)
      | Histogram { le; counts; sum; count } ->
          Buffer.add_string b ", \"le\": [";
          Buffer.add_string b (String.concat ", " (List.map json_float le));
          Buffer.add_string b "], \"counts\": [";
          Buffer.add_string b (String.concat ", " (List.map string_of_int counts));
          Buffer.add_string b "], \"sum\": ";
          Buffer.add_string b (json_float sum);
          Buffer.add_string b ", \"count\": ";
          Buffer.add_string b (string_of_int count));
      Buffer.add_string b "}")
    snap.metrics;
  Buffer.add_string b "\n  ],\n  \"spans\": [";
  List.iteri
    (fun i s ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "    {\"path\": ";
      buf_json_string b s.path;
      Buffer.add_string b (Printf.sprintf ", \"count\": %d, \"total_seconds\": %s" s.count
           (json_float s.total_s));
      Buffer.add_string b (Printf.sprintf ", \"min_seconds\": %s, \"max_seconds\": %s}"
           (json_float s.min_s) (json_float s.max_s)))
    snap.spans;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let output_json oc snap = output_string oc (to_json snap)

(* --- Prometheus text export --- *)

let prom_name name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_') name

let prom_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_label_value v)) labels)
      ^ "}"

let to_prometheus snap =
  let b = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.replace seen_header name ();
      if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun m ->
      let pname = prom_name m.name in
      match m.value with
      | Counter v ->
          header pname "counter" m.help;
          Buffer.add_string b (Printf.sprintf "%s%s %d\n" pname (prom_labels m.labels) v)
      | Gauge v ->
          header pname "gauge" m.help;
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" pname (prom_labels m.labels) (json_float v))
      | Histogram { le; counts; sum; count } ->
          header pname "histogram" m.help;
          let cum = ref 0 in
          List.iteri
            (fun i c ->
              cum := !cum + c;
              let bound =
                if i < List.length le then json_float (List.nth le i) else "+Inf"
              in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" pname
                   (prom_labels (m.labels @ [ ("le", bound) ]))
                   !cum))
            counts;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" pname (prom_labels m.labels) (json_float sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" pname (prom_labels m.labels) count))
    snap.metrics;
  if snap.spans <> [] then begin
    Buffer.add_string b "# TYPE nt_span_seconds_total counter\n";
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "nt_span_seconds_total{path=\"%s\"} %s\n" (prom_label_value s.path)
             (json_float s.total_s)))
      snap.spans;
    Buffer.add_string b "# TYPE nt_span_count counter\n";
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "nt_span_count{path=\"%s\"} %d\n" (prom_label_value s.path) s.count))
      snap.spans
  end;
  Buffer.contents b

(* --- minimal JSON parser --- *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Fail of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let h = String.sub s !pos 4 in
      pos := !pos + 4;
      match int_of_string_opt ("0x" ^ h) with
      | Some v -> v
      | None -> fail "bad \\u escape"
    in
    let utf8_of_code b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> advance (); Buffer.add_char b '"'; go ()
            | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
            | Some '/' -> advance (); Buffer.add_char b '/'; go ()
            | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
            | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
            | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
            | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
            | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
            | Some 'u' ->
                advance ();
                let cp = parse_hex4 () in
                let cp =
                  (* Combine a surrogate pair when one follows. *)
                  if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                     && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = parse_hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                    else fail "bad surrogate pair"
                  end
                  else cp
                in
                utf8_of_code b cp;
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            advance ();
            Buffer.add_char b c;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            Arr (elems [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Fail msg -> Error msg

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_num = function Num f -> Some f | _ -> None
  let to_str = function Str s -> Some s | _ -> None
  let to_list = function Arr l -> Some l | _ -> None

  let labels_match want (m : v) =
    let want = canon_labels want in
    match member "labels" m with
    | Some (Obj kvs) ->
        let have =
          canon_labels
            (List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (to_str v)) kvs)
        in
        have = want
    | _ -> want = []

  let find_metric doc ?(labels = []) name =
    match member "metrics" doc with
    | Some (Arr ms) ->
        List.find_opt
          (fun m -> member "name" m = Some (Str name) && labels_match labels m)
          ms
    | _ -> None

  let metric_number doc ?labels name =
    Option.bind (find_metric doc ?labels name) (fun m -> Option.bind (member "value" m) to_num)
end
