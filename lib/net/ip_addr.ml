type t = int

let v a b c d =
  assert (a land 0xFF = a && b land 0xFF = b && c land 0xFF = c && d land 0xFF = d);
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
[@@nt.raise_ok
  "every caller range-checks or masks the four bytes first (of_string guards 0..255, wire \
   decoders read single bytes)"]

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF) (t land 0xFF)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256 ->
          Some (v a b c d)
      | _ -> None)
  | _ -> None

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
