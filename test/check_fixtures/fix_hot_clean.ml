(* Clean twin of Fix_hot: the same entry-point shape (seeded observe
   and merge in the hot scope) with nothing allocated per record. *)

type t = { mutable seen : int; mutable total : int }

let create () = { seen = 0; total = 0 }
let bump x = x + 1

let observe t x =
  t.seen <- t.seen + 1;
  t.total <- t.total + bump x

let merge (a : t) (b : t) =
  if b.seen > a.seen then a.seen <- b.seen;
  a.total <- a.total + b.total;
  a
