lib/xdr/encode.ml: Buffer Char Int32 Int64 List String
