bin/nfsanon.ml: Arg Cmd Cmdliner Int64 Nt_trace Option Printf Seq Term
