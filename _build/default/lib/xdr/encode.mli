(** XDR encoding (RFC 4506).

    XDR is the presentation layer under ONC RPC and therefore under every
    NFS message. All quantities are big-endian and every item occupies a
    multiple of 4 bytes; variable-length data is zero-padded to the next
    4-byte boundary. *)

type t
(** A growable encode buffer. *)

val create : ?initial_size:int -> unit -> t
val reset : t -> unit
val length : t -> int
val contents : t -> string
val to_bytes : t -> bytes

val uint32 : t -> int -> unit
(** Encodes the low 32 bits of the int. Accepts 0 .. 2^32-1. *)

val int32 : t -> int32 -> unit
val uint64 : t -> int64 -> unit
val int64 : t -> int64 -> unit

val bool : t -> bool -> unit
(** Encoded as uint32 0/1 per the RFC. *)

val enum : t -> int -> unit
(** Same wire form as a signed 32-bit integer. *)

val fixed_opaque : t -> string -> unit
(** Fixed-length opaque: bytes plus padding, no length prefix. *)

val opaque : t -> string -> unit
(** Variable-length opaque: uint32 length, bytes, padding. *)

val string : t -> string -> unit
(** Identical wire form to {!opaque}. *)

val array : t -> ('a -> unit) -> 'a list -> unit
(** Variable-length array: uint32 count then each element. The element
    encoder is expected to write into this same buffer. *)

val optional : t -> ('a -> unit) -> 'a option -> unit
(** XDR optional-data: bool discriminant then the value if present. *)
