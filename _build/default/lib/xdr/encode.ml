type t = Buffer.t

let create ?(initial_size = 256) () = Buffer.create initial_size
let reset = Buffer.reset
let length = Buffer.length
let contents = Buffer.contents
let to_bytes = Buffer.to_bytes

let uint32 t v =
  assert (v >= 0 && v <= 0xFFFFFFFF);
  Buffer.add_char t (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char t (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char t (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char t (Char.chr (v land 0xFF))

let int32 t v = uint32 t (Int32.to_int (Int32.logand v 0xFFFFFFFFl) land 0xFFFFFFFF)

let uint64 t v =
  uint32 t (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF);
  uint32 t (Int64.to_int (Int64.logand v 0xFFFFFFFFL) land 0xFFFFFFFF)

let int64 = uint64
let bool t b = uint32 t (if b then 1 else 0)

let enum t v =
  let v = if v < 0 then v + 0x100000000 else v in
  uint32 t v

let padding t n =
  let pad = (4 - (n mod 4)) mod 4 in
  for _ = 1 to pad do
    Buffer.add_char t '\000'
  done

let fixed_opaque t s =
  Buffer.add_string t s;
  padding t (String.length s)

let opaque t s =
  uint32 t (String.length s);
  fixed_opaque t s

let string = opaque

let array t enc items =
  uint32 t (List.length items);
  List.iter enc items

let optional t enc = function
  | None -> bool t false
  | Some v ->
      bool t true;
      enc v
