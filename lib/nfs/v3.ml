module E = Nt_xdr.Encode
module D = Nt_xdr.Decode

exception Unsupported of string

let ftype_code = function
  | Types.Reg -> 1
  | Types.Dir -> 2
  | Types.Blk -> 3
  | Types.Chr -> 4
  | Types.Lnk -> 5
  | Types.Sock -> 6
  | Types.Fifo -> 7

let ftype_of_code = function
  | 1 -> Types.Reg
  | 2 -> Types.Dir
  | 3 -> Types.Blk
  | 4 -> Types.Chr
  | 5 -> Types.Lnk
  | 6 -> Types.Sock
  | 7 -> Types.Fifo
  | n -> raise (D.Error (Printf.sprintf "bad ftype3 %d" n))

let encode_time e (t : Types.time) =
  E.uint32 e t.seconds;
  E.uint32 e t.nanos

let decode_time d : Types.time =
  let seconds = D.uint32 d in
  let nanos = D.uint32 d in
  { seconds; nanos }

let encode_fh e fh = E.opaque e (Fh.to_raw fh)
(* NFS3_FHSIZE caps handles at 64 bytes; an oversized opaque is a
   malformed packet, not a bigger handle. *)
let decode_fh d =
  let s = D.opaque d in
  if String.length s > 64 then raise (D.Error "file handle longer than NFS3_FHSIZE");
  Fh.of_raw s

let encode_fattr e (a : Types.fattr) =
  E.uint32 e (ftype_code a.ftype);
  E.uint32 e a.mode;
  E.uint32 e a.nlink;
  E.uint32 e a.uid;
  E.uint32 e a.gid;
  E.uint64 e a.size;
  E.uint64 e a.used;
  E.uint32 e 0 (* rdev major *);
  E.uint32 e 0 (* rdev minor *);
  E.uint64 e a.fsid;
  E.uint64 e a.fileid;
  encode_time e a.atime;
  encode_time e a.mtime;
  encode_time e a.ctime

let decode_fattr d : Types.fattr =
  let ftype = ftype_of_code (D.uint32 d) in
  let mode = D.uint32 d in
  let nlink = D.uint32 d in
  let uid = D.uint32 d in
  let gid = D.uint32 d in
  let size = D.uint64 d in
  let used = D.uint64 d in
  let _rdev_major = D.uint32 d in
  let _rdev_minor = D.uint32 d in
  let fsid = D.uint64 d in
  let fileid = D.uint64 d in
  let atime = decode_time d in
  let mtime = decode_time d in
  let ctime = decode_time d in
  { ftype; mode; nlink; uid; gid; size; used; fsid; fileid; atime; mtime; ctime }

let encode_post_op_attr e = function
  | None -> E.bool e false
  | Some a ->
      E.bool e true;
      encode_fattr e a

let decode_post_op_attr d = D.optional d decode_fattr

(* We never report pre-op attributes; the tracer ignores them anyway. *)
let encode_wcc_data e post =
  E.bool e false;
  encode_post_op_attr e post

(* Top level so decode_wcc_data (per WRITE/CREATE/REMOVE record)
   allocates no closure per call. *)
let skip_wcc_attr d =
  let _size = D.uint64 d in
  let _mtime = decode_time d in
  let _ctime = decode_time d in
  ()

let decode_wcc_data d =
  let pre = D.optional d skip_wcc_attr in
  ignore pre;
  decode_post_op_attr d

let encode_sattr e (s : Types.sattr) =
  let opt32 v = E.optional e (E.uint32 e) v in
  opt32 s.set_mode;
  opt32 s.set_uid;
  opt32 s.set_gid;
  E.optional e (E.uint64 e) s.set_size;
  (* set_atime / set_mtime: 0 = don't change, 2 = set to client time *)
  (match s.set_atime with
  | None -> E.uint32 e 0
  | Some t ->
      E.uint32 e 2;
      encode_time e t);
  match s.set_mtime with
  | None -> E.uint32 e 0
  | Some t ->
      E.uint32 e 2;
      encode_time e t

(* Top level so decode_sattr (per SETATTR/CREATE record) allocates no
   closure per call. *)
let decode_set_time d =
  match D.uint32 d with
  | 0 -> None
  | 1 -> Some { Types.seconds = 0; nanos = 0 } (* SET_TO_SERVER_TIME *)
  | 2 -> Some (decode_time d)
  | n -> raise (D.Error (Printf.sprintf "bad time_how %d" n))

let decode_sattr d : Types.sattr =
  let set_mode = D.optional d D.uint32 in
  let set_uid = D.optional d D.uint32 in
  let set_gid = D.optional d D.uint32 in
  let set_size = D.optional d D.uint64 in
  let set_atime = decode_set_time d in
  let set_mtime = decode_set_time d in
  { set_mode; set_uid; set_gid; set_size; set_atime; set_mtime }

let encode_diropargs e dir name =
  encode_fh e dir;
  E.string e name

let write_filler = Bytes.make 65536 '\000'

let filler n =
  if n <= Bytes.length write_filler then Bytes.sub_string write_filler 0 n
  else String.make n '\000'

let cookie_verf = String.make 8 '\000'

let encode_call e (c : Ops.call) =
  match c with
  | Null -> ()
  | Getattr fh | Readlink fh | Statfs fh | Fsinfo fh | Pathconf fh -> encode_fh e fh
  | Setattr { fh; attrs } ->
      encode_fh e fh;
      encode_sattr e attrs;
      E.bool e false (* no guard *)
  | Lookup { dir; name } -> encode_diropargs e dir name
  | Access { fh; access } ->
      encode_fh e fh;
      E.uint32 e access
  | Read { fh; offset; count } ->
      encode_fh e fh;
      E.uint64 e offset;
      E.uint32 e count
  | Write { fh; offset; count; stable } ->
      encode_fh e fh;
      E.uint64 e offset;
      E.uint32 e count;
      E.uint32 e (Types.stable_how_to_int stable);
      E.opaque e (filler count)
  | Create { dir; name; mode; exclusive } ->
      encode_diropargs e dir name;
      if exclusive then begin
        E.uint32 e 2;
        E.fixed_opaque e cookie_verf
      end
      else begin
        E.uint32 e 0 (* UNCHECKED *);
        encode_sattr e { Types.empty_sattr with set_mode = Some mode }
      end
  | Mkdir { dir; name; mode } ->
      encode_diropargs e dir name;
      encode_sattr e { Types.empty_sattr with set_mode = Some mode }
  | Symlink { dir; name; target } ->
      encode_diropargs e dir name;
      encode_sattr e Types.empty_sattr;
      E.string e target
  | Mknod { dir; name } ->
      encode_diropargs e dir name;
      E.uint32 e 7 (* NF3FIFO *);
      encode_sattr e Types.empty_sattr
  | Remove { dir; name } | Rmdir { dir; name } -> encode_diropargs e dir name
  | Rename { from_dir; from_name; to_dir; to_name } ->
      encode_diropargs e from_dir from_name;
      encode_diropargs e to_dir to_name
  | Link { fh; to_dir; to_name } ->
      encode_fh e fh;
      encode_diropargs e to_dir to_name
  | Readdir { dir; cookie; count } ->
      encode_fh e dir;
      E.uint64 e cookie;
      E.fixed_opaque e cookie_verf;
      E.uint32 e count
  | Readdirplus { dir; cookie; count } ->
      encode_fh e dir;
      E.uint64 e cookie;
      E.fixed_opaque e cookie_verf;
      E.uint32 e count;
      E.uint32 e (count * 8)
  | Commit { fh; offset; count } ->
      encode_fh e fh;
      E.uint64 e offset;
      E.uint32 e count

let decode_call ~proc d : Ops.call =
  match (proc : Proc.t) with
  | Null -> Null
  | Getattr -> Getattr (decode_fh d)
  | Readlink -> Readlink (decode_fh d)
  | Statfs -> Statfs (decode_fh d)
  | Fsinfo -> Fsinfo (decode_fh d)
  | Pathconf -> Pathconf (decode_fh d)
  | Setattr ->
      let fh = decode_fh d in
      let attrs = decode_sattr d in
      let _guard = D.optional d decode_time in
      Setattr { fh; attrs }
  | Lookup ->
      let dir = decode_fh d in
      let name = D.string d in
      Lookup { dir; name }
  | Access ->
      let fh = decode_fh d in
      let access = D.uint32 d in
      Access { fh; access }
  | Read ->
      let fh = decode_fh d in
      let offset = D.uint64 d in
      let count = D.uint32 d in
      Read { fh; offset; count }
  | Write ->
      let fh = decode_fh d in
      let offset = D.uint64 d in
      let count = D.uint32 d in
      let stable = Types.stable_how_of_int (D.uint32 d) in
      let data = D.opaque d in
      ignore (String.length data);
      Write { fh; offset; count; stable }
  | Create -> (
      let dir = decode_fh d in
      let name = D.string d in
      match D.uint32 d with
      | 0 | 1 ->
          let attrs = decode_sattr d in
          Create { dir; name; mode = Option.value attrs.set_mode ~default:0o644; exclusive = false }
      | 2 ->
          let _verf = D.fixed_opaque d 8 in
          Create { dir; name; mode = 0o644; exclusive = true }
      | n -> raise (D.Error (Printf.sprintf "bad createmode %d" n)))
  | Mkdir ->
      let dir = decode_fh d in
      let name = D.string d in
      let attrs = decode_sattr d in
      Mkdir { dir; name; mode = Option.value attrs.set_mode ~default:0o755 }
  | Symlink ->
      let dir = decode_fh d in
      let name = D.string d in
      let _attrs = decode_sattr d in
      let target = D.string d in
      Symlink { dir; name; target }
  | Mknod -> (
      let dir = decode_fh d in
      let name = D.string d in
      match D.uint32 d with
      | 6 | 7 ->
          let _attrs = decode_sattr d in
          Mknod { dir; name }
      | 3 | 4 ->
          let _attrs = decode_sattr d in
          let _major = D.uint32 d in
          let _minor = D.uint32 d in
          Mknod { dir; name }
      | _ -> Mknod { dir; name })
  | Remove ->
      let dir = decode_fh d in
      let name = D.string d in
      Remove { dir; name }
  | Rmdir ->
      let dir = decode_fh d in
      let name = D.string d in
      Rmdir { dir; name }
  | Rename ->
      let from_dir = decode_fh d in
      let from_name = D.string d in
      let to_dir = decode_fh d in
      let to_name = D.string d in
      Rename { from_dir; from_name; to_dir; to_name }
  | Link ->
      let fh = decode_fh d in
      let to_dir = decode_fh d in
      let to_name = D.string d in
      Link { fh; to_dir; to_name }
  | Readdir ->
      let dir = decode_fh d in
      let cookie = D.uint64 d in
      let _verf = D.fixed_opaque d 8 in
      let count = D.uint32 d in
      Readdir { dir; cookie; count }
  | Readdirplus ->
      let dir = decode_fh d in
      let cookie = D.uint64 d in
      let _verf = D.fixed_opaque d 8 in
      let count = D.uint32 d in
      let _maxcount = D.uint32 d in
      Readdirplus { dir; cookie; count }
  | Commit ->
      let fh = decode_fh d in
      let offset = D.uint64 d in
      let count = D.uint32 d in
      Commit { fh; offset; count }
  | Root | Writecache -> raise (Unsupported "v2-only procedure in v3 stream")

let status_code (r : Ops.result) =
  match r with Ok _ -> 0 | Error st -> Types.nfsstat_to_int st

let encode_result e ~proc (r : Ops.result) =
  E.uint32 e (status_code r);
  let attr_of = function Ok (Ops.R_attr a) -> Some a | _ -> None in
  match (proc : Proc.t) with
  | Null -> ()
  | Getattr -> (
      match r with
      | Ok (R_attr a) -> encode_fattr e a
      | Ok _ -> raise (Unsupported "getattr result shape")
      | Error _ -> ())
  | Setattr -> encode_wcc_data e (attr_of r)
  | Lookup -> (
      match r with
      | Ok (R_lookup { fh; obj; dir }) ->
          encode_fh e fh;
          encode_post_op_attr e obj;
          encode_post_op_attr e dir
      | Ok _ -> raise (Unsupported "lookup result shape")
      | Error _ -> encode_post_op_attr e None)
  | Access -> (
      match r with
      | Ok (R_access bits) ->
          encode_post_op_attr e None;
          E.uint32 e bits
      | Ok _ -> raise (Unsupported "access result shape")
      | Error _ -> encode_post_op_attr e None)
  | Readlink -> (
      match r with
      | Ok (R_readlink target) ->
          encode_post_op_attr e None;
          E.string e target
      | Ok _ -> raise (Unsupported "readlink result shape")
      | Error _ -> encode_post_op_attr e None)
  | Read -> (
      match r with
      | Ok (R_read { attr; count; eof }) ->
          encode_post_op_attr e attr;
          E.uint32 e count;
          E.bool e eof;
          E.opaque e (filler count)
      | Ok _ -> raise (Unsupported "read result shape")
      | Error _ -> encode_post_op_attr e None)
  | Write -> (
      match r with
      | Ok (R_write { count; committed; attr }) ->
          encode_wcc_data e attr;
          E.uint32 e count;
          E.uint32 e (Types.stable_how_to_int committed);
          E.fixed_opaque e cookie_verf
      | Ok _ -> raise (Unsupported "write result shape")
      | Error _ -> encode_wcc_data e None)
  | Create | Mkdir | Symlink | Mknod -> (
      match r with
      | Ok (R_create { fh; attr }) ->
          E.optional e (encode_fh e) fh;
          encode_post_op_attr e attr;
          encode_wcc_data e None
      | Ok _ -> raise (Unsupported "create result shape")
      | Error _ -> encode_wcc_data e None)
  | Remove | Rmdir -> encode_wcc_data e (attr_of r)
  | Rename ->
      encode_wcc_data e None;
      encode_wcc_data e None
  | Link ->
      encode_post_op_attr e None;
      encode_wcc_data e None
  | Readdir -> (
      match r with
      | Ok (R_readdir { entries; eof }) ->
          encode_post_op_attr e None;
          E.fixed_opaque e cookie_verf;
          List.iter
            (fun (entry : Ops.dir_entry) ->
              E.bool e true;
              E.uint64 e entry.entry_fileid;
              E.string e entry.entry_name;
              E.uint64 e entry.entry_cookie)
            entries;
          E.bool e false;
          E.bool e eof
      | Ok _ -> raise (Unsupported "readdir result shape")
      | Error _ -> encode_post_op_attr e None)
  | Readdirplus -> (
      match r with
      | Ok (R_readdir { entries; eof }) ->
          encode_post_op_attr e None;
          E.fixed_opaque e cookie_verf;
          List.iter
            (fun (entry : Ops.dir_entry) ->
              E.bool e true;
              E.uint64 e entry.entry_fileid;
              E.string e entry.entry_name;
              E.uint64 e entry.entry_cookie;
              encode_post_op_attr e None;
              E.bool e false (* no handle *))
            entries;
          E.bool e false;
          E.bool e eof
      | Ok _ -> raise (Unsupported "readdirplus result shape")
      | Error _ -> encode_post_op_attr e None)
  | Statfs -> (
      match r with
      | Ok (R_statfs { total_bytes; free_bytes }) ->
          encode_post_op_attr e None;
          E.uint64 e total_bytes;
          E.uint64 e free_bytes;
          E.uint64 e free_bytes (* abytes *);
          E.uint64 e 1000000L (* tfiles *);
          E.uint64 e 500000L (* ffiles *);
          E.uint64 e 500000L (* afiles *);
          E.uint32 e 0 (* invarsec *)
      | Ok _ -> raise (Unsupported "fsstat result shape")
      | Error _ -> encode_post_op_attr e None)
  | Fsinfo -> (
      match r with
      | Ok (R_fsinfo { rtmax; wtmax }) ->
          encode_post_op_attr e None;
          E.uint32 e rtmax;
          E.uint32 e rtmax;
          E.uint32 e 512;
          E.uint32 e wtmax;
          E.uint32 e wtmax;
          E.uint32 e 512;
          E.uint32 e rtmax (* dtpref *);
          E.uint64 e Int64.max_int;
          encode_time e { seconds = 0; nanos = 1 };
          E.uint32 e 0x1B (* properties *)
      | Ok _ -> raise (Unsupported "fsinfo result shape")
      | Error _ -> encode_post_op_attr e None)
  | Pathconf -> (
      match r with
      | Ok (R_pathconf { name_max }) ->
          encode_post_op_attr e None;
          E.uint32 e 32000 (* linkmax *);
          E.uint32 e name_max;
          E.bool e true;
          E.bool e false;
          E.bool e false;
          E.bool e true
      | Ok _ -> raise (Unsupported "pathconf result shape")
      | Error _ -> encode_post_op_attr e None)
  | Commit -> (
      match r with
      | Ok R_empty ->
          encode_wcc_data e None;
          E.fixed_opaque e cookie_verf
      | Ok _ -> raise (Unsupported "commit result shape")
      | Error _ -> encode_wcc_data e None)
  | Root | Writecache -> raise (Unsupported "v2-only procedure in v3 stream")

let decode_result ~proc d : Ops.result =
  let status = Types.nfsstat_of_int (D.uint32 d) in
  match (status, (proc : Proc.t)) with
  | Ok_, Null -> Ok R_null
  | Ok_, Getattr -> Ok (R_attr (decode_fattr d))
  | Ok_, Setattr -> (
      match decode_wcc_data d with Some a -> Ok (R_attr a) | None -> Ok R_empty)
  | Ok_, Lookup ->
      let fh = decode_fh d in
      let obj = decode_post_op_attr d in
      let dir = decode_post_op_attr d in
      Ok (R_lookup { fh; obj; dir })
  | Ok_, Access ->
      let _attr = decode_post_op_attr d in
      Ok (R_access (D.uint32 d))
  | Ok_, Readlink ->
      let _attr = decode_post_op_attr d in
      Ok (R_readlink (D.string d))
  | Ok_, Read ->
      let attr = decode_post_op_attr d in
      let count = D.uint32 d in
      let eof = D.bool d in
      let data = D.opaque d in
      ignore (String.length data);
      Ok (R_read { attr; count; eof })
  | Ok_, Write ->
      let attr = decode_wcc_data d in
      let count = D.uint32 d in
      let committed = Types.stable_how_of_int (D.uint32 d) in
      let _verf = D.fixed_opaque d 8 in
      Ok (R_write { count; committed; attr })
  | Ok_, (Create | Mkdir | Symlink | Mknod) ->
      let fh = D.optional d decode_fh in
      let attr = decode_post_op_attr d in
      let _wcc = decode_wcc_data d in
      Ok (R_create { fh; attr })
  | Ok_, (Remove | Rmdir) -> (
      match decode_wcc_data d with Some a -> Ok (R_attr a) | None -> Ok R_empty)
  | Ok_, Rename ->
      let _from = decode_wcc_data d in
      let _to = decode_wcc_data d in
      Ok R_empty
  | Ok_, Link ->
      let _attr = decode_post_op_attr d in
      let _wcc = decode_wcc_data d in
      Ok R_empty
  | Ok_, Readdir ->
      let _attr = decode_post_op_attr d in
      let _verf = D.fixed_opaque d 8 in
      let rec entries acc =
        if D.bool d then begin
          let entry_fileid = D.uint64 d in
          let entry_name = D.string d in
          let entry_cookie = D.uint64 d in
          entries ({ Ops.entry_fileid; entry_name; entry_cookie } :: acc)
        end
        else List.rev acc
      in
      let es = entries [] in
      let eof = D.bool d in
      Ok (R_readdir { entries = es; eof })
  | Ok_, Readdirplus ->
      let _attr = decode_post_op_attr d in
      let _verf = D.fixed_opaque d 8 in
      let rec entries acc =
        if D.bool d then begin
          let entry_fileid = D.uint64 d in
          let entry_name = D.string d in
          let entry_cookie = D.uint64 d in
          let _name_attr = decode_post_op_attr d in
          let _name_fh = D.optional d decode_fh in
          entries ({ Ops.entry_fileid; entry_name; entry_cookie } :: acc)
        end
        else List.rev acc
      in
      let es = entries [] in
      let eof = D.bool d in
      Ok (R_readdir { entries = es; eof })
  | Ok_, Statfs ->
      let _attr = decode_post_op_attr d in
      let total_bytes = D.uint64 d in
      let free_bytes = D.uint64 d in
      let _abytes = D.uint64 d in
      let _tfiles = D.uint64 d in
      let _ffiles = D.uint64 d in
      let _afiles = D.uint64 d in
      let _invarsec = D.uint32 d in
      Ok (R_statfs { total_bytes; free_bytes })
  | Ok_, Fsinfo ->
      let _attr = decode_post_op_attr d in
      let rtmax = D.uint32 d in
      let _rtpref = D.uint32 d in
      let _rtmult = D.uint32 d in
      let wtmax = D.uint32 d in
      Ok (R_fsinfo { rtmax; wtmax })
  | Ok_, Pathconf ->
      let _attr = decode_post_op_attr d in
      let _linkmax = D.uint32 d in
      let name_max = D.uint32 d in
      Ok (R_pathconf { name_max })
  | Ok_, Commit ->
      let _wcc = decode_wcc_data d in
      Ok R_empty
  | Ok_, (Root | Writecache) -> raise (Unsupported "v2-only procedure in v3 stream")
  | err, _ -> Error err
[@@nt.alloc_ok "the readdir entry list (cons + rev + local walker) is the decoded value"]
