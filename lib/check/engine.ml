type config = {
  roots : string list;
  lib_prefixes : string list;
  decode_prefixes : string list;
  hot_prefixes : string list;
  acc_prefixes : string list;
  test_units : string list;
  merge_prop_fn : string;
  footprint_prop_fn : string;
  excludes : string list;
  exn_roots : string list;
  codecs : (string * string list * string) list;
  formats_unit : string;
  enabled_only : string list option;
  disabled : string list;
  max_per_rule : int;
}

let default_config =
  {
    roots = [ "Nt_par__Passes"; "Nt_par__Driver"; "Nt_mon__Service"; "Nt_mon__Feed" ];
    lib_prefixes = [ "Nt_" ];
    decode_prefixes = [ "Nt_xdr"; "Nt_rpc"; "Nt_nfs"; "Nt_net"; "Nt_tbin" ];
    hot_prefixes = [ "Nt_analysis" ];
    acc_prefixes = [ "Nt_analysis"; "Nt_lint"; "Nt_mon" ];
    test_units = [ "Test_par" ];
    merge_prop_fn = "prop_merge_laws";
    footprint_prop_fn = "prop_footprint";
    excludes = [ "check_fixtures" ];
    exn_roots =
      [
        "Nt_trace.Capture.create";
        "Nt_trace.Capture.feed_packet";
        "Nt_trace.Capture.feed_pcap";
        "Nt_trace.Capture.finish";
        "Nt_tbin.Tbin.Decoder.*";
        "Nt_mon.Feed.*";
        "Nt_mon.Checkpoint.*";
        "Nt_mon.Service.step";
        "Nt_mon.Service.run";
        "Nt_mon.Service.drain";
        "Nt_mon.Service.restore";
        "Nt_mon.Service.shutdown";
        "Nt_mon.Service.conservation";
        "Nt_lint.Engine.observe";
        "Nt_lint.Engine.observe_stats";
        "Nt_core.Pipeline.analyze_stream";
      ];
    codecs = [ ("Nt_nfs__Ops", [ "call"; "success" ], "Nt_tbin__Tbin") ];
    formats_unit = "Nt_formats__Formats";
    enabled_only = None;
    disabled = [];
    max_per_rule = 100;
  }

type t = {
  findings : Finding.t list;
  allowed : int;
  allowed_by_rule : (string * int) list;
  overflow : int;
  units_scanned : int;
  reachable : string list;
  merge_required : string list;
  merge_covered : string list;
  exn_report : (string * string * int * string list) list;
  load_errors : (string * string) list;
}

let findings t = t.findings
let allowed t = t.allowed
let allowed_by_rule t = t.allowed_by_rule
let overflow t = t.overflow
let units_scanned t = t.units_scanned
let reachable t = t.reachable
let merge_required t = t.merge_required
let merge_covered t = t.merge_covered
let exn_report t = t.exn_report
let load_errors t = t.load_errors

let severity_count t sev =
  List.length (List.filter (fun (f : Finding.t) -> f.rule.Rule.severity = sev) t.findings)

let rule_count t id =
  List.length (List.filter (fun (f : Finding.t) -> f.rule.Rule.id = id) t.findings)

let enabled config (rule : Rule.t) =
  (match config.enabled_only with
  | Some ids -> List.mem rule.Rule.id ids
  | None -> true)
  && not (List.mem rule.Rule.id config.disabled)

(* Scope prefixes are raw prefixes of the dotted unit name: "Nt_"
   covers every project library, "Nt_xdr" covers Nt_xdr and
   Nt_xdr.Decode. *)
let prefix_scope prefixes dotted =
  List.exists (fun p -> p <> "" && Syntax.starts_with ~prefix:p dotted) prefixes

let lib_scope config dotted = prefix_scope config.lib_prefixes dotted

let run config root =
  let units, load_errors = Loader.load_dir ~excludes:config.excludes root in
  let reach = Reach.compute ~roots:config.roots units in
  let findings = ref [] in
  let allowed = ref 0 in
  let allow_by_rule = Hashtbl.create 16 in
  let overflow = ref 0 in
  let per_rule = Hashtbl.create 16 in
  let sink =
    {
      Finding.emit =
        (fun rule loc detail ->
          if enabled config rule then begin
            let n = match Hashtbl.find_opt per_rule rule.Rule.id with Some n -> n | None -> 0 in
            if n >= config.max_per_rule then incr overflow
            else begin
              Hashtbl.replace per_rule rule.Rule.id (n + 1);
              findings := Finding.of_loc rule loc detail :: !findings
            end
          end);
      allow =
        (fun rule ->
          if enabled config rule then begin
            incr allowed;
            let n =
              match Hashtbl.find_opt allow_by_rule rule.Rule.id with Some n -> n | None -> 0
            in
            Hashtbl.replace allow_by_rule rule.Rule.id (n + 1)
          end);
    }
  in
  let config_finding detail =
    sink.Finding.emit Rule.config_drift
      { Location.none with loc_start = { Lexing.dummy_pos with pos_fname = "<config>" } }
      detail
  in
  (* --- configuration drift: every configured scope must bite --- *)
  List.iter
    (fun root -> config_finding (Printf.sprintf "reachability root %s matched no compiled module" root))
    (Reach.missing_roots reach);
  let impls = List.filter Loader.is_impl units in
  let any_scope prefixes =
    List.filter
      (fun p ->
        not
          (List.exists
             (fun (u : Loader.unit_info) -> prefix_scope [ p ] u.Loader.dotted)
             units))
      prefixes
  in
  List.iter
    (fun p -> config_finding (Printf.sprintf "lib scope prefix %s matched no compiled module" p))
    (any_scope config.lib_prefixes);
  List.iter
    (fun p ->
      config_finding (Printf.sprintf "decode scope prefix %s matched no compiled module" p))
    (any_scope config.decode_prefixes);
  List.iter
    (fun p -> config_finding (Printf.sprintf "hot scope prefix %s matched no compiled module" p))
    (any_scope config.hot_prefixes);
  List.iter
    (fun p ->
      config_finding (Printf.sprintf "accumulator scope prefix %s matched no compiled module" p))
    (any_scope config.acc_prefixes);
  (* --- hot-set discovery for the alloc/bound families --- *)
  let graph = Hot.build units in
  let entry_fns = [ "observe"; "observe_shard"; "add" ] in
  let alloc_hot =
    Hot.solve graph ~seeds:(fun ~unit_name:_ ~dotted ~fn ->
        (List.mem fn entry_fns && prefix_scope config.hot_prefixes dotted)
        || (Syntax.starts_with ~prefix:"decode" fn
           && prefix_scope config.decode_prefixes dotted))
  in
  (* Merge paths also carry the poly-compare rule (they run per shard,
     not per record, so the other alloc rules would be noise there). *)
  let cmp_hot =
    Hot.solve graph ~seeds:(fun ~unit_name:_ ~dotted ~fn ->
        prefix_scope config.hot_prefixes dotted
        && (List.mem fn entry_fns || fn = "merge")
        || (Syntax.starts_with ~prefix:"decode" fn
           && prefix_scope config.decode_prefixes dotted))
  in
  let bound_hot =
    Hot.solve graph ~seeds:(fun ~unit_name:_ ~dotted ~fn ->
        List.mem fn entry_fns && prefix_scope config.acc_prefixes dotted)
  in
  if Hot.seed_count alloc_hot = 0 then
    config_finding "alloc-hot seed set is empty; hot-path allocation rules never ran";
  if Hot.seed_count bound_hot = 0 then
    config_finding "bound-hot seed set is empty; accumulator-boundedness rules never ran";
  (* --- per-unit rule families --- *)
  List.iter
    (fun (u : Loader.unit_info) ->
      if Reach.mem reach u.Loader.name then Domain_check.check sink u;
      if prefix_scope config.decode_prefixes u.Loader.dotted then Purity_check.check sink u;
      if lib_scope config u.Loader.dotted then Hygiene_check.check sink u;
      Alloc_check.check sink ~hot:alloc_hot ~cmp_hot u;
      Bound_check.check sink ~hot:bound_hot u)
    impls;
  (* --- merge-law and footprint coverage (cross-unit) --- *)
  let merge_required, merge_covered, test_units_found =
    Merge_check.check sink
      ~in_scope:(fun dotted -> lib_scope config dotted)
      ~test_units:config.test_units ~prop_fn:config.merge_prop_fn
      ~footprint_prop_fn:config.footprint_prop_fn units
  in
  if test_units_found = 0 then
    config_finding
      (Printf.sprintf "no test unit matched [%s]; merge-law and footprint coverage never ran"
         (String.concat "; " config.test_units));
  (* --- interprocedural exception flow and codec drift --- *)
  let exn_report = Exn_check.check sink ~roots:config.exn_roots ~units ~config_finding in
  Codec_check.check sink ~codecs:config.codecs ~formats_unit:config.formats_unit ~units
    ~config_finding;
  {
    findings = List.sort Finding.compare !findings;
    allowed = !allowed;
    allowed_by_rule =
      List.sort compare (Hashtbl.fold (fun id n acc -> (id, n) :: acc) allow_by_rule []);
    overflow = !overflow;
    units_scanned = List.length units;
    reachable = Reach.to_list reach;
    merge_required;
    merge_covered;
    exn_report;
    load_errors;
  }
