type conn = {
  fd : Unix.file_descr;
  opened_at : float;
  buf : Buffer.t;
}

type t = {
  listen_fd : Unix.file_descr;
  obs : Obs.t;
  series : (unit -> string) option;
  bound_port : int;
  mutable conns : conn list;
  mutable closed : bool;
}

let max_pending = 16
let max_accept_per_poll = 8
let grace_s = 0.5
let max_request_bytes = 4096

let create ?(addr = "127.0.0.1") ?(port = 0) ?series obs =
  match
    let inet = Unix.inet_addr_of_string addr in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 16;
       Unix.set_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let bound_port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
    in
    { listen_fd = fd; obs; series; bound_port; conns = []; closed = false }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, _) -> Error (fn ^ ": " ^ Unix.error_message e)
  | exception Failure e -> Error e

let port t = t.bound_port

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let respond t c request_line =
  let body, ctype, status =
    match String.split_on_char ' ' request_line with
    | "GET" :: path :: _ -> (
        let path = match String.index_opt path '?' with
          | Some i -> String.sub path 0 i
          | None -> path
        in
        match path with
        | "/metrics" ->
            (Obs.to_prometheus (Obs.snapshot t.obs), "text/plain; version=0.0.4", "200 OK")
        | "/json" -> (Obs.to_json (Obs.snapshot t.obs), "application/json", "200 OK")
        | "/series" -> (
            match t.series with
            | Some f -> (f (), "application/json", "200 OK")
            | None -> ("no series source\n", "text/plain", "404 Not Found"))
        | _ -> ("not found\n", "text/plain", "404 Not Found"))
    | _ -> ("bad request\n", "text/plain", "400 Bad Request")
  in
  let resp =
    Printf.sprintf "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      status ctype (String.length body) body
  in
  (* One best-effort blocking write: the response fits comfortably in a
     socket buffer for any sane scrape, and a stuck peer is cut off by
     closing rather than by waiting. *)
  (try Unix.clear_nonblock c.fd; ignore (Unix.write_substring c.fd resp 0 (String.length resp))
   with Unix.Unix_error _ -> ());
  close_fd c.fd

let service_conn t now c =
  let bytes = Bytes.create 1024 in
  let state =
    match Unix.read c.fd bytes 0 (Bytes.length bytes) with
    | 0 -> `Drop
    | n ->
        Buffer.add_subbytes c.buf bytes 0 n;
        if Buffer.length c.buf > max_request_bytes then `Drop
        else `Check
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Check
    | exception Unix.Unix_error (_, _, _) -> `Drop
  in
  match state with
  | `Drop ->
      close_fd c.fd;
      None
  | `Check -> (
      let s = Buffer.contents c.buf in
      match String.index_opt s '\n' with
      | Some i ->
          let line = String.trim (String.sub s 0 i) in
          respond t c line;
          None
      | None -> if now -. c.opened_at > grace_s then (close_fd c.fd; None) else Some c)

let poll t =
  if not t.closed then begin
    let accepted = ref 0 in
    let continue = ref true in
    while !continue && !accepted < max_accept_per_poll do
      match Unix.accept t.listen_fd with
      | fd, _ ->
          incr accepted;
          Unix.set_nonblock fd;
          if List.length t.conns >= max_pending then close_fd fd
          else
            t.conns <-
              { fd; opened_at = Unix.gettimeofday (); buf = Buffer.create 128 } :: t.conns
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
      | exception Unix.Unix_error (_, _, _) -> continue := false
    done;
    let now = Unix.gettimeofday () in
    t.conns <- List.filter_map (service_conn t now) t.conns
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun c -> close_fd c.fd) t.conns;
    t.conns <- [];
    close_fd t.listen_fd
  end

let scrape ?(timeout_s = 5.) ~addr ~port ~path () =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> close_fd fd)
      (fun () ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
        let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let b = Buffer.create 4096 in
        let bytes = Bytes.create 4096 in
        let rec go () =
          match Unix.read fd bytes 0 (Bytes.length bytes) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes b bytes 0 n;
              go ()
        in
        go ();
        let s = Buffer.contents b in
        (* Strip the header block: body starts after the first blank
           line. *)
        let n = String.length s in
        let rec find i =
          if i + 3 >= n then None
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
            Some (i + 4)
          else find (i + 1)
        in
        match find 0 with Some i -> String.sub s i (n - i) | None -> s)
  with
  | body -> Ok body
  | exception Unix.Unix_error (e, fn, _) -> Error (fn ^ ": " ^ Unix.error_message e)
