lib/core/pipeline.ml: Nt_net Nt_sim Nt_trace Nt_workload
