(** A fixed-size domain pool.

    OCaml 5 domains map 1:1 to cores and are expensive to spawn, so the
    sharded analysis driver spawns them once and feeds them batches of
    closures. A pool of size <= 1 spawns no domains at all and runs
    every batch inline on the caller, which keeps [--jobs 1] (the
    default) free of any threading machinery while exercising the same
    shard/merge code path. *)

type t

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [jobs] (default 1) is the worker-domain count; [jobs <= 0] means
    {!recommended}. With [jobs <= 1] no domains are spawned. *)

val run_all : t -> (unit -> 'a) array -> 'a array
(** Run every closure to completion and return their results in input
    order. Closures run concurrently on the pool's domains (inline, in
    order, for a size-1 pool), so they must not share mutable state. If
    any closure raises, the first exception (in completion order) is
    re-raised after the whole batch has drained — never from a worker.
    Must not be called from inside a pool task, and a pool serves one
    [run_all] batch at a time per caller. *)

val shutdown : t -> unit
(** Signal workers to exit and join them. Idempotent; [run_all] after
    shutdown raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown]. *)

val size : t -> int
(** Worker count the pool was created with (after the [<= 0]
    normalisation). *)

val peak_queue : t -> int
(** Highwater mark of queued-but-unclaimed tasks — the queue-depth
    number the driver exports as the [par.queue_depth] gauge. *)

val tasks : t -> int
(** Total tasks ever submitted. *)
