(** RPC record marking over TCP (RFC 5531 §11).

    On TCP, RPC messages are delimited by 4-byte fragment headers: the
    top bit flags the last fragment of a record and the low 31 bits give
    the fragment length. CAMPUS traffic is NFSv3-over-TCP, so the capture
    path must reassemble records from an arbitrary byte stream — packets
    may split a record, and one jumbo frame may carry several records
    (the "TCP packet coalescing" the paper's tracer supports). *)

val frame : string -> string
(** Wrap one RPC message in a single last-fragment record. *)

val frame_fragmented : fragment_size:int -> string -> string
(** Split the message into fragments of at most [fragment_size] bytes;
    used by tests to exercise multi-fragment reassembly. *)

type reassembler

val create_reassembler : unit -> reassembler

val push : reassembler -> string -> string list
(** Feed stream bytes in arrival order; returns the complete RPC records
    finished by these bytes (possibly several, possibly none). *)

val pending_bytes : reassembler -> int
(** Bytes buffered waiting for the rest of a record; useful for loss
    accounting at the end of a capture. *)
