type flow = { src_ip : Ip_addr.t; src_port : int; dst_ip : Ip_addr.t; dst_port : int }

type event = Data of string | Gap of int

module Flow_key = struct
  type t = flow

  let equal a b =
    a.src_ip = b.src_ip && a.src_port = b.src_port && a.dst_ip = b.dst_ip
    && a.dst_port = b.dst_port

  let hash = Hashtbl.hash
end

module Flow_tbl = Hashtbl.Make (Flow_key)
module Seq_map = Map.Make (Int)

type flow_state = {
  mutable expected : int;
      (* Next expected sequence number, unwrapped onto a monotonic line
         (OCaml ints are 63-bit): [expected land 0xFFFFFFFF] is the wire
         value. Keeping the unwrapped form makes buffered-segment
         ordering correct even when the hold buffer straddles 2^32. *)
  mutable synced : bool;
  mutable buffered : string Seq_map.t;  (* keyed by unwrapped seq *)
  mutable buffered_count : int;
}

type t = {
  table : flow_state Flow_tbl.t;
  max_buffered : int;
  mutable gap_count : int;
}

let create ?(max_buffered_segments = 64) () =
  { table = Flow_tbl.create 64; max_buffered = max_buffered_segments; gap_count = 0 }

let modulus = 0x100000000

(* Signed circular distance from [a] to [b]: positive when b is ahead. *)
let seq_diff a b =
  let d = (b - a) land (modulus - 1) in
  if d >= modulus / 2 then d - modulus else d

let flows t = Flow_tbl.length t.table
let gaps t = t.gap_count

let get_state t flow ~seq =
  match Flow_tbl.find_opt t.table flow with
  | Some st -> st
  | None ->
      let st = { expected = seq; synced = false; buffered = Seq_map.empty; buffered_count = 0 } in
      Flow_tbl.add t.table flow st;
      st

(* Drain buffered segments that are now contiguous with [expected]. *)
let drain st acc =
  let acc = ref acc in
  let continue = ref true in
  while !continue do
    match Seq_map.min_binding_opt st.buffered with
    | None -> continue := false
    | Some (useq, payload) ->
        let d = useq - st.expected in
        if d > 0 then continue := false
        else begin
          st.buffered <- Seq_map.remove useq st.buffered;
          st.buffered_count <- st.buffered_count - 1;
          if d + String.length payload > 0 then begin
            (* Overlap with already-delivered bytes: trim the front. *)
            let skip = -d in
            let fresh = String.sub payload skip (String.length payload - skip) in
            if String.length fresh > 0 then begin
              acc := Data fresh :: !acc;
              st.expected <- st.expected + String.length fresh
            end
          end
        end
  done;
  !acc

let force_resync t st acc =
  match Seq_map.min_binding_opt st.buffered with
  | None -> acc
  | Some (useq, _) ->
      let lost = useq - st.expected in
      t.gap_count <- t.gap_count + 1;
      st.expected <- useq;
      drain st (Gap (max lost 0) :: acc)

let push t flow ~seq ~syn payload =
  let st = get_state t flow ~seq in
  (* Wire seq unwrapped onto the flow's monotonic line. *)
  let d = seq_diff (st.expected land (modulus - 1)) seq in
  let useq = st.expected + d in
  if syn then begin
    st.expected <- useq + 1;
    st.synced <- true;
    st.buffered <- Seq_map.empty;
    st.buffered_count <- 0;
    []
  end
  else begin
    if not st.synced then begin
      (* First data segment of a flow we joined mid-stream. *)
      st.expected <- useq;
      st.synced <- true
    end;
    let n = String.length payload in
    if n = 0 then []
    else begin
      let d = useq - st.expected in
      if d < 0 && d + n <= 0 then [] (* pure retransmission of delivered data *)
      else begin
        let acc =
          if d <= 0 then begin
            (* In-order (possibly overlapping the delivered prefix). *)
            let skip = -d in
            let fresh = String.sub payload skip (n - skip) in
            st.expected <- st.expected + String.length fresh;
            drain st [ Data fresh ]
          end
          else begin
            (* Out of order: hold until the hole fills, or resync. *)
            if not (Seq_map.mem useq st.buffered) then begin
              st.buffered <- Seq_map.add useq payload st.buffered;
              st.buffered_count <- st.buffered_count + 1
            end;
            if st.buffered_count > t.max_buffered then force_resync t st [] else []
          end
        in
        List.rev acc
      end
    end
  end
