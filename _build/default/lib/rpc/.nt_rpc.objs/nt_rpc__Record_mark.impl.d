lib/rpc/record_mark.ml: Buffer Bytes Char List String
