(** The nfsstats report, computed by the sharded engine and rendered
    deterministically.

    Rendering goes through {!Nt_util.Tables.render} into strings, so a
    report is a value that can be golden-tested; and because the shard
    plan, merge order and terminal chunking are all independent of the
    worker count, the same trace renders to byte-identical text at any
    [jobs] setting. *)

type section = [ `Summary | `Runs | `Names | `Hourly ]

val section_name : section -> string

val default_records_per_shard : int
(** 65536 — small enough to give a day-scale trace real parallelism,
    large enough that per-shard constant costs stay negligible. *)

val run :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  ?jobs:int ->
  ?records_per_shard:int ->
  sections:section list ->
  Nt_trace.Record.t array ->
  (section * string) list
(** Run the requested sections over a time-sorted record array with
    [jobs] worker domains (default 1 — inline, no domains; 0 = the
    machine's recommended count) and [records_per_shard]-sized shards
    (default 65536). All requested passes share one task batch; the
    runs section additionally chunk-fans its terminal analysis over the
    merged I/O log. Results come back in request order. *)

val render_summary : Nt_analysis.Summary.t -> string
val render_runs : Nt_analysis.Runs.table3 -> string
val render_names : Nt_analysis.Names.t -> string
val render_hourly : Nt_analysis.Hourly.t -> string
(** The individual section renderers, exposed for tests that build
    accumulators by hand. *)

val run_stream :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  ?jobs:int ->
  ?records_per_shard:int ->
  sections:section list ->
  ((Nt_trace.Record.t -> unit) -> unit) ->
  (section * string) list * int
(** [run_stream ~sections produce] is {!run} without the array:
    [produce push] drives the trace through [push] record by record,
    the report folds over fixed [records_per_shard] chunks that replay
    the materialized shard plan exactly (root accumulator for chunk 0,
    shard-mode after, merges in chunk order), and the rendered text is
    byte-identical with {!run} on the same records at any [jobs].
    Peak state is one chunk plus the pass accumulators — the out-of-core
    path. Also returns the record count. *)
