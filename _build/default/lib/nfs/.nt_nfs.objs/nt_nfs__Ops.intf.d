lib/nfs/ops.mli: Fh Proc Stdlib Types
