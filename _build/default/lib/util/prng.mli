(** Deterministic pseudo-random number generation.

    All randomness in the simulator and the anonymizer flows through this
    module so that every experiment is reproducible from a single seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny,
    fast, and passes BigCrush when used as a 64-bit stream. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Generators created from the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated entity (user, client, daemon) its own
    stream so that adding entities does not perturb existing ones. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val bits30 : t -> int
(** 30 uniform random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)], 53-bit resolution. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
