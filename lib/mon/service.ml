module Obs = Nt_obs.Obs
module Sampler = Nt_obs.Sampler
module Footprint = Nt_obs.Footprint
module Record = Nt_trace.Record
module Types = Nt_nfs.Types

type config = {
  ring : Ring.config;
  topn : int;
  report_every : int;
  queue_cap : int;
  pull_batch : int;
  drain_max : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  watchdog_s : float;
  checkpoint_path : string option;
  checkpoint_every_s : float;
  outstanding_cap : int;
  pending_timeout : float;
  max_records : int option;
  idle_exit : int option;
  json : bool;
}

let default_emit s =
  print_string s;
  flush stdout
[@@nt.allow "lib-stdout: the monitor's report stream is stdout by contract; callers override"]

let default_config =
  {
    ring = Ring.default_config;
    topn = 10;
    report_every = 1;
    queue_cap = 65536;
    pull_batch = 1024;
    drain_max = 8192;
    backoff_base_s = 0.02;
    backoff_cap_s = 2.0;
    watchdog_s = 30.;
    checkpoint_path = None;
    checkpoint_every_s = 30.;
    outstanding_cap = 4096;
    pending_timeout = 60.;
    max_records = None;
    idle_exit = None;
    json = false;
  }

(* A ring counter mirrored into the registry: the ring keeps the
   authoritative value, the registry gets monotone deltas. *)
type mirror = { m_counter : Obs.counter; mutable m_last : int }

let mirror_sync m cur =
  if cur > m.m_last then begin
    Obs.add m.m_counter (cur - m.m_last);
    m.m_last <- cur
  end

type t = {
  config : config;
  feed : Feed.t;
  o : Obs.t;
  clock : unit -> float;
  sleep : float -> unit;
  emit : string -> unit;
  tick : unit -> unit;
  queue : Record.t Ingest.t;
  mutable ring : Ring.t;
  mutable out : Outstanding.t;  (* replaced wholesale on restore *)
  (* service counters: authoritative ints + registry handles *)
  mutable ingested : int;
  mutable shed : int;
  mutable reports : int;
  c_ingested : Obs.counter;
  c_shed : Obs.counter;
  c_reports : Obs.counter;
  c_ckpt_saved : Obs.counter;
  c_ckpt_save_failed : Obs.counter;
  c_ckpt_restored : Obs.counter;
  c_ckpt_restore_failed : Obs.counter;
  (* ring/outstanding counters mirrored into the registry *)
  m_observed : mirror;
  m_rotations : mirror;
  m_evicted_windows : mirror;
  m_late : mirror;
  m_backward : mirror;
  m_jumps : mirror;
  m_tables : (Win.table * mirror) list;
  m_pending_lost : mirror;
  m_pending_dropped : mirror;
  g_queue : Obs.gauge;
  g_outstanding : Obs.gauge;
  g_backoff : Obs.gauge;
  g_stalled : Obs.gauge;
  g_heap : Obs.gauge;
  sampler : Sampler.t;
  mutable stop_requested : bool;
  mutable stopped : bool;
  mutable shutdown_done : bool;
  mutable was_restored : bool;
  mutable idle_streak : int;
  mutable backoff_s : float;
  mutable last_progress : float;
  mutable last_checkpoint : float;
  mutable rotations_reported : int;
}

let footprints t =
  [
    ("mon.ring", Ring.footprint t.ring);
    ("mon.outstanding", Outstanding.footprint t.out);
    ("mon.ingest", Ingest.footprint t.queue);
  ]

let sync t =
  mirror_sync t.m_observed (Ring.observed t.ring);
  mirror_sync t.m_rotations (Ring.rotations t.ring);
  mirror_sync t.m_evicted_windows (Ring.evicted_windows t.ring);
  mirror_sync t.m_late (Ring.late t.ring);
  mirror_sync t.m_backward (Ring.backward t.ring);
  mirror_sync t.m_jumps (Ring.forward_jumps t.ring);
  List.iter
    (fun (table, n) ->
      match List.assoc_opt table t.m_tables with
      | Some m -> mirror_sync m n
      | None -> ())
    (Ring.evictions t.ring);
  mirror_sync t.m_pending_lost (Outstanding.lost t.out);
  mirror_sync t.m_pending_dropped (Outstanding.dropped t.out);
  Obs.set t.g_queue (float_of_int (Ingest.length t.queue));
  Obs.set t.g_outstanding (float_of_int (Outstanding.outstanding t.out))
(* Footprint gauges are NOT refreshed in [sync]: it runs every step,
   and walking every window table that often is measurable garbage.
   They refresh at sampling cadence instead — [Sampler.sample_now]
   (every report, every /series scrape, each elapsed interval)
   republishes. *)

(* --- reports --- *)

let stable_name = function
  | Types.Unstable -> "unstable"
  | Types.Data_sync -> "data_sync"
  | Types.File_sync -> "file_sync"

let report_win t =
  (* The most recently closed window when one is retained, else the
     (partial) current window, else the summary. *)
  match Ring.live t.ring with
  | _ :: prev :: _ -> prev
  | [ w ] -> w
  | [] -> (Float.nan, Ring.summary t.ring)

let win_section b ~topn ~prefix w =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%sops=%d reads=%d(%dB) writes=%d(%dB) commits=%d lost_replies=%d" prefix
    (Win.total_ops w) (Win.read_ops w) (Win.read_bytes w) (Win.write_ops w) (Win.write_bytes w)
    (Win.commit_ops w) (Win.lost_replies w);
  let stables =
    List.map
      (fun (s, (r : Win.row)) -> Printf.sprintf "%s=%d(%dB)" (stable_name s) r.Win.ops r.Win.write_bytes)
      (Win.writes_by_stable w)
  in
  line "%swrites by stable: %s" prefix (String.concat " " stables);
  List.iter
    (fun (table, title) ->
      let rows = Win.top w table topn in
      if rows <> [] then begin
        line "%stop %s:" prefix title;
        List.iter
          (fun (key, (r : Win.row)) ->
            line "%s  %-24s ops=%-8d rd=%-10d wr=%d" prefix key r.Win.ops r.Win.read_bytes
              r.Win.write_bytes)
          rows;
        let other = Win.other_row w table in
        if other.Win.ops > 0 then
          line "%s  %-24s ops=%-8d rd=%-10d wr=%d (evicted=%d)" prefix "(other)" other.Win.ops
            other.Win.read_bytes other.Win.write_bytes (Win.evictions w table)
      end)
    [ (`Client, "clients"); (`Uid, "uids"); (`Fs, "filesystems") ]

let report_text t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let start, w = report_win t in
  let now = match Ring.newest t.ring with Some s -> s | None -> Float.nan in
  line "=== nfsmon report #%d  feed-time=%.3f  window-start=%.3f ===" (t.reports + 1) now start;
  win_section b ~topn:t.config.topn ~prefix:"" w;
  line "outstanding: %d lost=%d dropped=%d" (Outstanding.outstanding t.out)
    (Outstanding.lost t.out) (Outstanding.dropped t.out);
  (match Outstanding.by_proc t.out with
  | [] -> ()
  | procs ->
      line "  by proc: %s"
        (String.concat " " (List.map (fun (p, n) -> Printf.sprintf "%s=%d" p n) procs)));
  let ev =
    String.concat " "
      (List.map
         (fun (tab, n) -> Printf.sprintf "%s=%d" (Win.table_name tab) n)
         (Ring.evictions t.ring))
  in
  line "health: ingested=%d shed=%d observed=%d queue=%d/%d evictions[%s] late=%d backward=%d jumps=%d rotations=%d"
    t.ingested t.shed (Ring.observed t.ring) (Ingest.length t.queue) (Ingest.capacity t.queue) ev
    (Ring.late t.ring) (Ring.backward t.ring) (Ring.forward_jumps t.ring) (Ring.rotations t.ring);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_rows rows =
  let row (key, (r : Win.row)) =
    Printf.sprintf "{\"key\":\"%s\",\"ops\":%d,\"read_bytes\":%d,\"write_bytes\":%d}"
      (json_escape key) r.Win.ops r.Win.read_bytes r.Win.write_bytes
  in
  "[" ^ String.concat "," (List.map row rows) ^ "]"

let report_json t =
  let start, w = report_win t in
  let now = match Ring.newest t.ring with Some s -> s | None -> Float.nan in
  let num f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f in
  let stables =
    String.concat ","
      (List.map
         (fun (s, (r : Win.row)) ->
           Printf.sprintf "\"%s\":{\"ops\":%d,\"bytes\":%d}" (stable_name s) r.Win.ops
             r.Win.write_bytes)
         (Win.writes_by_stable w))
  in
  let tables =
    String.concat ","
      (List.map
         (fun (tab, name) ->
           Printf.sprintf "\"%s\":%s" name (json_rows (Win.top w tab t.config.topn)))
         [ (`Client, "clients"); (`Uid, "uids"); (`Fs, "filesystems") ])
  in
  let evictions =
    String.concat ","
      (List.map
         (fun (tab, n) -> Printf.sprintf "\"%s\":%d" (Win.table_name tab) n)
         (Ring.evictions t.ring))
  in
  let procs =
    String.concat ","
      (List.map
         (fun (p, n) -> Printf.sprintf "\"%s\":%d" (json_escape p) n)
         (Outstanding.by_proc t.out))
  in
  Printf.sprintf
    "{\"schema\":\"nfsmon-report/1\",\"report\":%d,\"feed_time\":%s,\"window_start\":%s,\
     \"ops\":%d,\"read_ops\":%d,\"read_bytes\":%d,\"write_ops\":%d,\"write_bytes\":%d,\
     \"commit_ops\":%d,\"lost_replies\":%d,\"writes_by_stable\":{%s},%s,\
     \"outstanding\":{\"count\":%d,\"lost\":%d,\"dropped\":%d,\"by_proc\":{%s}},\
     \"health\":{\"ingested\":%d,\"shed\":%d,\"observed\":%d,\"queue\":%d,\"queue_cap\":%d,\
     \"evictions\":{%s},\"late\":%d,\"backward\":%d,\"jumps\":%d,\"rotations\":%d}}"
    (t.reports + 1) (num now) (num start) (Win.total_ops w) (Win.read_ops w) (Win.read_bytes w)
    (Win.write_ops w) (Win.write_bytes w) (Win.commit_ops w) (Win.lost_replies w) stables tables
    (Outstanding.outstanding t.out) (Outstanding.lost t.out) (Outstanding.dropped t.out) procs
    t.ingested t.shed (Ring.observed t.ring) (Ingest.length t.queue) (Ingest.capacity t.queue)
    evictions (Ring.late t.ring) (Ring.backward t.ring) (Ring.forward_jumps t.ring)
    (Ring.rotations t.ring)

let emit_report t =
  t.rotations_reported <- Ring.rotations t.ring;
  t.emit (if t.config.json then report_json t ^ "\n" else report_text t);
  t.reports <- t.reports + 1;
  Obs.inc t.c_reports;
  (* Heap numbers come from the sampler — the one audited probe — and
     mon.top_heap_words keeps its historical meaning as the peak. *)
  let s = Sampler.sample_now t.sampler in
  Obs.set_max t.g_heap (float_of_int s.Sampler.top_heap_words)

(* --- checkpoints --- *)

let drain t limit =
  let n = ref 0 in
  while !n < limit && not (Ingest.is_empty t.queue) do
    (match Ingest.pop t.queue with
    | Some r ->
        Ring.observe t.ring r;
        Outstanding.note t.out r;
        Sampler.tick t.sampler
    | None -> ());
    incr n
  done;
  !n

let save_checkpoint t =
  match t.config.checkpoint_path with
  | None -> ()
  | Some path ->
      (* Drain first so ring state and feed offset agree: everything
         pulled before this offset is in the ring, nothing after it
         is. That makes kill-9 + restore an exact replay. *)
      ignore (drain t max_int);
      (match Ring.newest t.ring with
      | Some now -> Outstanding.advance t.out ~now
      | None -> ());
      sync t;
      let ck =
        {
          Checkpoint.saved_at = t.clock ();
          feed_pos = Feed.pos t.feed;
          counters = [ ("ingested", t.ingested); ("shed", t.shed); ("reports", t.reports) ];
          ring = Ring.to_lines t.ring;
          pending = Outstanding.to_lines t.out;
        }
      in
      (match Checkpoint.save ~path ck with
      | Ok () -> Obs.inc t.c_ckpt_saved
      | Error _ -> Obs.inc t.c_ckpt_save_failed);
      t.last_checkpoint <- t.clock ()

let restore t =
  match t.config.checkpoint_path with
  | Some path when Sys.file_exists path -> (
      match Checkpoint.load ~path with
      | Error _ -> Obs.inc t.c_ckpt_restore_failed
      | Ok ck -> (
          match Ring.of_lines t.config.ring ck.Checkpoint.ring with
          | Error _ -> Obs.inc t.c_ckpt_restore_failed
          | Ok ring ->
              t.ring <- ring;
              (match
                 Outstanding.of_lines ~cap:t.config.outstanding_cap
                   ~timeout:t.config.pending_timeout ck.Checkpoint.pending
               with
              | Ok out -> t.out <- out
              | Error _ ->
                  (* the aggregated state is still good; start the
                     in-flight tracker fresh rather than refuse *)
                  Obs.inc t.c_ckpt_restore_failed);
              List.iter
                (fun (k, v) ->
                  match k with
                  | "ingested" ->
                      t.ingested <- v;
                      Obs.add t.c_ingested v
                  | "shed" ->
                      t.shed <- v;
                      Obs.add t.c_shed v
                  | "reports" ->
                      t.reports <- v;
                      Obs.add t.c_reports v
                  | _ -> ())
                ck.Checkpoint.counters;
              t.rotations_reported <- Ring.rotations ring;
              (match ck.Checkpoint.feed_pos with
              | Some off -> ignore (Feed.seek t.feed off)
              | None -> ());
              (* Downtime must not bleed into span durations or leave
                 the registry clock behind the wall clock. *)
              Obs.reanchor t.o;
              sync t;
              t.was_restored <- true;
              Obs.inc t.c_ckpt_restored))
  | _ -> ()

(* --- lifecycle --- *)

let create ?obs ?clock ?sleep ?emit ?tick config feed =
  let o = match obs with Some o -> o | None -> Obs.create () in
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  let sleep = match sleep with Some s -> s | None -> Unix.sleepf in
  let emit = match emit with Some e -> e | None -> default_emit in
  let tick = match tick with Some f -> f | None -> Fun.id in
  let mir ?labels name = { m_counter = Obs.counter o ?labels name; m_last = 0 } in
  let t =
    {
      config;
      feed;
      o;
      clock;
      sleep;
      emit;
      tick;
      queue = Ingest.create ~capacity:config.queue_cap;
      ring = Ring.create config.ring;
      out = Outstanding.create ~cap:config.outstanding_cap ~timeout:config.pending_timeout ();
      ingested = 0;
      shed = 0;
      reports = 0;
      c_ingested = Obs.counter o "mon.ingested";
      c_shed = Obs.counter o "mon.shed";
      c_reports = Obs.counter o "mon.reports";
      c_ckpt_saved = Obs.counter o "mon.checkpoint.saved";
      c_ckpt_save_failed = Obs.counter o "mon.checkpoint.save_failed";
      c_ckpt_restored = Obs.counter o "mon.checkpoint.restored";
      c_ckpt_restore_failed = Obs.counter o "mon.checkpoint.restore_failed";
      m_observed = mir "mon.observed";
      m_rotations = mir "mon.rotations";
      m_evicted_windows = mir "mon.window_evictions";
      m_late = mir "mon.late";
      m_backward = mir "mon.backward";
      m_jumps = mir "mon.forward_jumps";
      m_tables =
        List.map
          (fun tab -> (tab, mir ~labels:[ ("table", Win.table_name tab) ] "mon.evictions"))
          Win.all_tables;
      m_pending_lost = mir "mon.pending.lost";
      m_pending_dropped = mir "mon.pending.dropped";
      g_queue = Obs.gauge o "mon.queue.depth";
      g_outstanding = Obs.gauge o "mon.outstanding";
      g_backoff = Obs.gauge o "mon.backoff_s";
      g_stalled = Obs.gauge o "mon.feed.stalled";
      g_heap = Obs.gauge o "mon.top_heap_words";
      sampler = Sampler.create o;
      stop_requested = false;
      stopped = false;
      shutdown_done = false;
      was_restored = false;
      idle_streak = 0;
      backoff_s = config.backoff_base_s;
      last_progress = clock ();
      last_checkpoint = clock ();
      rotations_reported = 0;
    }
  in
  Sampler.set_footprints t.sampler (fun () -> footprints t);
  ignore (Sampler.publish_footprints t.sampler : (string * Footprint.t) list);
  restore t;
  t

let request_stop t = t.stop_requested <- true

let shutdown t =
  if not t.shutdown_done then begin
    t.shutdown_done <- true;
    t.stopped <- true;
    ignore (drain t max_int);
    (match Ring.newest t.ring with
    | Some now -> Outstanding.advance t.out ~now
    | None -> ());
    if Ring.anchored t.ring then Ring.force_rotate t.ring;
    sync t;
    emit_report t;
    save_checkpoint t;
    Feed.close t.feed
  end

let step t =
  if t.stopped then `Stopped
  else begin
    t.tick ();
    if t.stop_requested then begin
      shutdown t;
      `Stopped
    end
    else begin
      let pulled = ref 0 and closed = ref false and idle = ref false in
      while !pulled < t.config.pull_batch && (not !closed) && not !idle do
        match Feed.pull t.feed with
        | `Record r ->
            incr pulled;
            t.ingested <- t.ingested + 1;
            Obs.inc t.c_ingested;
            (match Ingest.push t.queue r with
            | Some _shed_oldest ->
                t.shed <- t.shed + 1;
                Obs.inc t.c_shed
            | None -> ())
        | `Idle -> idle := true
        | `Closed -> closed := true
      done;
      if !pulled > 0 then t.last_progress <- t.clock ();
      let drained = drain t t.config.drain_max in
      (match Ring.newest t.ring with
      | Some now -> Outstanding.advance t.out ~now
      | None -> ());
      sync t;
      if Ring.anchored t.ring && Ring.rotations t.ring - t.rotations_reported >= t.config.report_every
      then emit_report t;
      (match t.config.checkpoint_path with
      | Some _ when t.clock () -. t.last_checkpoint >= t.config.checkpoint_every_s ->
          save_checkpoint t
      | _ -> ());
      Obs.set t.g_stalled
        (if t.clock () -. t.last_progress > t.config.watchdog_s then 1. else 0.);
      let done_by_count =
        match t.config.max_records with Some n -> Ring.observed t.ring >= n | None -> false
      in
      if done_by_count || (!closed && Ingest.is_empty t.queue) then begin
        shutdown t;
        `Stopped
      end
      else if !pulled = 0 && drained = 0 then begin
        t.idle_streak <- t.idle_streak + 1;
        match t.config.idle_exit with
        | Some n when t.idle_streak >= n ->
            shutdown t;
            `Stopped
        | _ ->
            Obs.set t.g_backoff t.backoff_s;
            t.sleep t.backoff_s;
            t.backoff_s <- Float.min (t.backoff_s *. 2.) t.config.backoff_cap_s;
            `Continue
      end
      else begin
        t.idle_streak <- 0;
        t.backoff_s <- t.config.backoff_base_s;
        Obs.set t.g_backoff 0.;
        `Continue
      end
    end
  end

let rec run t = match step t with `Continue -> run t | `Stopped -> ()

let conservation t =
  let observed = Ring.observed t.ring in
  let q = Ingest.length t.queue in
  if t.ingested <> t.shed + observed + q then
    Error
      (Printf.sprintf "ingested(%d) <> shed(%d) + observed(%d) + queue(%d)" t.ingested t.shed
         observed q)
  else
    let totals = Ring.totals t.ring in
    if Win.total_ops totals <> observed then
      Error
        (Printf.sprintf "ring totals ops(%d) <> observed(%d)" (Win.total_ops totals) observed)
    else Ok ()

let ring t = t.ring
let obs t = t.o
let sampler t = t.sampler
let ingested t = t.ingested
let shed t = t.shed
let observed t = Ring.observed t.ring
let queue_depth t = Ingest.length t.queue
let reports_emitted t = t.reports
let restored t = t.was_restored
