(** Literature constants the paper compares against.

    Table 2 quotes the Roselli INS/RES/NT traces and the Baker Sprite
    study; Table 3 quotes Roselli's NT, the Sprite and the BSD run
    breakdowns. These are fixed published numbers, reproduced here so
    the bench harness can print the full comparison tables. *)

type daily_activity = {
  label : string;
  year : int;
  days : int;
  total_ops_m : float;
  data_read_gb : float;
  read_ops_m : float;
  data_written_gb : float;
  write_ops_m : float;
  rw_byte_ratio : float;
  rw_op_ratio : float;
}

val ins : daily_activity
val res : daily_activity
val nt : daily_activity
val sprite : daily_activity
val table2_comparisons : daily_activity list

(** The paper's own Table 2 rows for CAMPUS and EECS (the targets our
    simulation is calibrated against). *)

val campus_week : daily_activity
val eecs_week : daily_activity

type run_breakdown = {
  label : string;
  reads_pct : float;
  read_entire : float;
  read_seq : float;
  read_random : float;
  writes_pct : float;
  write_entire : float;
  write_seq : float;
  write_random : float;
  rw_pct : float;
  rw_entire : float;
  rw_seq : float;
  rw_random : float;
}

val nt_runs : run_breakdown
val sprite_runs : run_breakdown
val bsd_runs : run_breakdown

val campus_runs_raw : run_breakdown
val campus_runs_processed : run_breakdown
val eecs_runs_raw : run_breakdown
val eecs_runs_processed : run_breakdown
(** Paper Table 3 values for CAMPUS/EECS, raw and processed. *)

type block_life = {
  label : string;
  births_m : float;
  births_write_pct : float;
  births_extension_pct : float;
  deaths_m : float;
  deaths_overwrite_pct : float;
  deaths_truncate_pct : float;
  deaths_deletion_pct : float;
}

val campus_block_life : block_life
val eecs_block_life : block_life
(** Paper Table 4. *)
