type t = {
  size : int;
  mutable domains : unit Domain.t list;
  q : (unit -> unit) Queue.t;
  m : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
  mutable peak_queue : int;
  mutable task_count : int;
}

let recommended () = Domain.recommended_domain_count ()

let rec worker t =
  Mutex.lock t.m;
  let rec next () =
    match Queue.take_opt t.q with
    | Some task -> Some task
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.work_ready t.m;
          next ()
        end
  in
  match next () with
  | None -> Mutex.unlock t.m
  | Some task ->
      Mutex.unlock t.m;
      (* Tasks are wrapped by [run_all] and never raise. *)
      task ();
      worker t

let create ?(jobs = 1) () =
  let size = if jobs <= 0 then recommended () else jobs in
  let t =
    {
      size;
      domains = [];
      q = Queue.create ();
      m = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
      peak_queue = 0;
      task_count = 0;
    }
  in
  if size > 1 then t.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let run_all t fns =
  let n = Array.length fns in
  if t.closed then invalid_arg "Pool.run_all: pool already shut down"
  else if n = 0 then [||]
  else if t.domains = [] then Array.map (fun f -> f ()) fns
  else begin
    let results = Array.make n None in
    let first_error = ref None in
    let remaining = ref n in
    let finished = Condition.create () in
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.run_all: pool already shut down"
    end;
    Array.iteri
      (fun i f ->
        Queue.push
          (fun () ->
            let r = try Ok (f ()) with e -> Error e in
            Mutex.lock t.m;
            (match r with
            | Ok v -> results.(i) <- Some v
            | Error e -> ( match !first_error with None -> first_error := Some e | Some _ -> ()));
            decr remaining;
            if !remaining = 0 then Condition.broadcast finished;
            Mutex.unlock t.m)
          t.q)
      fns;
    t.task_count <- t.task_count + n;
    if Queue.length t.q > t.peak_queue then t.peak_queue <- Queue.length t.q;
    Condition.broadcast t.work_ready;
    while !remaining > 0 do
      Condition.wait finished t.m
    done;
    Mutex.unlock t.m;
    match !first_error with
    | Some e -> raise e
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end
[@@nt.raise_ok
  "re-raises whatever a task closure raised on the caller's own domain; the closure bodies \
   are charged to each call site's summary, so this channel only replays exceptions already \
   accounted for there"]

let shutdown t =
  Mutex.lock t.m;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.work_ready
  end;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let size t = t.size

let locked t f =
  Mutex.lock t.m;
  let v = f () in
  Mutex.unlock t.m;
  v

let peak_queue t = locked t (fun () -> t.peak_queue)
let tasks t = locked t (fun () -> t.task_count)
