examples/readahead_demo.ml: List Nt_sim Printf
