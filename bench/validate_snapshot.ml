(* Minimal JSON-Schema validator (type / required / properties / items /
   enum) for the observability snapshot exports — enough schema to keep
   BENCH_obs.json and the binaries' --metrics output honest without an
   external dependency.

   Usage: validate_snapshot SCHEMA DOC [MEMBER]

   With MEMBER, validate DOC's top-level member of that name (the bench
   report embeds the snapshot under "snapshot") instead of the whole
   document. Exits 1 with a path-qualified message on the first
   violation. *)

module J = Nt_obs.Obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail path msg =
  let where = match String.concat "." (List.rev path) with "" -> "$" | p -> p in
  Printf.eprintf "validate_snapshot: %s: %s\n" where msg;
  exit 1

let type_name = function
  | J.Null -> "null"
  | J.Bool _ -> "boolean"
  | J.Num _ -> "number"
  | J.Str _ -> "string"
  | J.Arr _ -> "array"
  | J.Obj _ -> "object"

let type_matches v t =
  match (t, v) with
  | "object", J.Obj _
  | "array", J.Arr _
  | "string", J.Str _
  | "boolean", J.Bool _
  | "null", J.Null
  | "number", J.Num _ ->
      true
  | "integer", J.Num x -> Float.is_integer x
  | ("object" | "array" | "string" | "boolean" | "null" | "number" | "integer"), _ -> false
  | t, _ -> invalid_arg ("unsupported schema type " ^ t)

let rec validate path (schema : J.v) (v : J.v) =
  (match J.member "type" schema with
  | Some (J.Str t) ->
      if not (type_matches v t) then
        fail path (Printf.sprintf "expected %s, got %s" t (type_name v))
  | Some _ -> fail path "schema: \"type\" must be a string"
  | None -> ());
  (match J.member "enum" schema with
  | Some (J.Arr allowed) -> if not (List.mem v allowed) then fail path "value not in enum"
  | Some _ -> fail path "schema: \"enum\" must be an array"
  | None -> ());
  (match (J.member "required" schema, v) with
  | Some (J.Arr names), J.Obj fields ->
      List.iter
        (fun name ->
          match name with
          | J.Str name ->
              if not (List.mem_assoc name fields) then
                fail path ("missing required member " ^ name)
          | _ -> fail path "schema: \"required\" entries must be strings")
        names
  | Some _, _ | None, _ -> ());
  (match (J.member "properties" schema, v) with
  | Some (J.Obj props), J.Obj fields ->
      List.iter
        (fun (k, sub) ->
          match List.assoc_opt k fields with
          | Some fv -> validate (k :: path) sub fv
          | None -> ())
        props
  | _ -> ());
  match (J.member "items" schema, v) with
  | Some sub, J.Arr items ->
      List.iteri (fun i it -> validate (Printf.sprintf "[%d]" i :: path) sub it) items
  | _ -> ()

let () =
  match Array.to_list Sys.argv with
  | _ :: schema_path :: doc_path :: rest ->
      let parse what s =
        match J.parse s with
        | Ok v -> v
        | Error e ->
            Printf.eprintf "validate_snapshot: %s: %s\n" what e;
            exit 1
      in
      let schema = parse schema_path (read_file schema_path) in
      let doc = parse doc_path (read_file doc_path) in
      let target =
        match rest with
        | [] -> doc
        | [ m ] -> (
            match J.member m doc with
            | Some v -> v
            | None ->
                Printf.eprintf "validate_snapshot: %s: no top-level member %S\n" doc_path m;
                exit 1)
        | _ ->
            Printf.eprintf "usage: validate_snapshot SCHEMA DOC [MEMBER]\n";
            exit 2
      in
      validate [] schema target;
      Printf.printf "validate_snapshot: %s conforms to %s\n" doc_path schema_path
  | _ ->
      Printf.eprintf "usage: validate_snapshot SCHEMA DOC [MEMBER]\n";
      exit 2
