(** Hourly activity series and peak-hour variance (§6.2, Figure 4,
    Table 5).

    Buckets every record into its hour of the trace week and derives
    the two Figure 4 series (hourly operation counts, hourly R/W op
    ratio) and Table 5's all-hours vs peak-hours (9am–6pm weekdays)
    mean ± standard deviation rows. *)

type t

val create : unit -> t
val observe : t -> Nt_trace.Record.t -> unit

val merge : t -> t -> t
(** [merge a b] adds [b]'s hour buckets into [a] and returns [a].
    Hour bucketing is position-independent, so merged shards equal the
    sequential pass exactly on counts; per-bucket byte sums are floats
    and carry the usual reassociation tolerance (1e-9 relative). *)

type hour_point = {
  hour : int;  (** hour index since week start *)
  ops : int;
  reads : int;
  writes : int;
  bytes_read : float;
  bytes_written : float;
}

val series : t -> hour_point list
(** Hour-by-hour points covering the observed span (Figure 4). *)

val rw_ratio : hour_point -> float

type variance_row = { mean : float; stddev_pct : float }

type variance = {
  total_ops_k : variance_row;  (** thousands of ops per hour *)
  data_read_mb : variance_row;
  read_ops_k : variance_row;
  data_written_mb : variance_row;
  write_ops_k : variance_row;
  rw_op_ratio : variance_row;
}

val all_hours : t -> variance
val peak_hours : t -> variance
(** Table 5's two halves. Peak = 9am–6pm Monday–Friday. *)

val variance_reduction : t -> float
(** Factor by which the normalised standard deviation of hourly total
    ops shrinks when restricted to peak hours (the paper reports at
    least 4x for CAMPUS). *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}): tracked
    entries and an approximate heap-words estimate. *)
