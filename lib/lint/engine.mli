(** The linter: rules, state and findings behind one streaming façade.

    Feed records (and optionally capture stats) in stream order; the
    engine runs every enabled rule, collects findings (capped per rule
    so a systemic fault cannot balloon memory — suppressed findings are
    still counted), and answers severity tallies for exit-code policy.
    State is bounded, so million-record traces lint in constant memory
    (see {!Bounded} and {!Protocol_check}). *)

type config = {
  anonymized : bool;  (** run the anonymization family *)
  anon_profile : Anon_check.profile;
  reorder_window : float;  (** seconds; default 10 ms *)
  xid_window : float;  (** seconds; default 120 s *)
  max_tracked : int;  (** per-table state cap; default 1 million *)
  max_findings_per_rule : int;  (** stored findings cap; default 100 *)
  enabled_only : string list option;  (** [Some ids]: run just these rules *)
  disabled : string list;  (** rule ids to skip *)
}

val default_config : config

val rule_enabled : config -> Rule.t -> bool

type t

val create : ?obs:Nt_obs.Obs.t -> config -> t
(** [obs] (default {!Nt_obs.Obs.null}) mirrors the engine's accounting
    as [lint.records], [lint.findings{rule=...}], [lint.suppressed],
    [lint.evictions] and the [lint.tracked] gauge. The accessors below
    never read the registry, so the disabled default costs one dead
    branch per record. *)

val observe : t -> Nt_trace.Record.t -> unit
(** Lint one record; the engine numbers records from zero. *)

val observe_stats : t -> Nt_trace.Capture.stats -> unit

val run :
  ?obs:Nt_obs.Obs.t -> ?stats:Nt_trace.Capture.stats -> config -> Nt_trace.Record.t Seq.t -> t
(** [create], observe the whole sequence, then any [stats]. *)

val findings : t -> Finding.t list
(** Stored findings ordered by record index (at most
    [max_findings_per_rule] each; see {!suppressed}). Reading any
    result accessor finalizes deferred protocol checks — suspects
    still inside their reorder window are judged as if the stream had
    ended (see {!Protocol_check.finalize}). *)

val finding_count : t -> Rule.t -> int
(** Total count for one rule, including suppressed findings. *)

val suppressed : t -> int
(** Findings counted but not stored because a rule hit its cap. *)

val severity_count : t -> Rule.severity -> int
(** Total findings at exactly this severity, including suppressed. *)

val worst : t -> Rule.severity option
(** Highest severity seen; [None] for a clean trace. *)

val records_seen : t -> int

val tracked : t -> int
(** Live protocol-state entries (bench observability). *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting: protocol-state entries plus kept
    findings; published as the [lint] component on every settle. *)
