module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh

type size_class = Tiny | Small | Medium | Large

type lifetime_class = Subsecond | Transient | Session | Durable

let size_class_of bytes =
  if bytes <= 8192. then Tiny
  else if bytes <= 65536. then Small
  else if bytes <= 1_048_576. then Medium
  else Large

let lifetime_class_of seconds =
  if seconds <= 1. then Subsecond
  else if seconds <= 60. then Transient
  else if seconds <= 3600. then Session
  else Durable

(* Per-category frequency counts; prediction = argmax. *)
type model = {
  size_counts : (size_class, int) Hashtbl.t;
  lifetime_counts : (lifetime_class, int) Hashtbl.t;
}

let fresh_model () = { size_counts = Hashtbl.create 4; lifetime_counts = Hashtbl.create 4 }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

(* Top-level so [argmax] (on the create path) allocates no folder
   closure per call. *)
let keep_best k n best = match best with Some (_, bn) when bn >= n -> best | _ -> Some (k, n)

let argmax tbl = Hashtbl.fold keep_best tbl None |> Option.map fst

let size_class_eq a b =
  match (a, b) with
  | Tiny, Tiny | Small, Small | Medium, Medium | Large, Large -> true
  | _ -> false

let lifetime_class_eq a b =
  match (a, b) with
  | Subsecond, Subsecond | Transient, Transient | Session, Session | Durable, Durable -> true
  | _ -> false

(* An open prediction awaiting ground truth. *)
type pending = {
  category : Names.category;
  created_at : float;
  predicted_size : size_class option;
  predicted_lifetime : lifetime_class option;
  mutable max_size : float;
}

module Fh_tbl = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

type t = {
  models : (Names.category, model) Hashtbl.t;
  pending : pending Fh_tbl.t;
  names : (string * string, Fh.t) Hashtbl.t;
  mutable predictions : int;
  mutable size_correct : int;
  mutable size_scored : int;
  mutable lifetime_scored : int;
  mutable lifetime_correct : int;
  mutable cold_creates : int;
}

let create () =
  {
    models = Hashtbl.create 32;
    pending = Fh_tbl.create 1024;
    names = Hashtbl.create 1024;
    predictions = 0;
    size_correct = 0;
    size_scored = 0;
    lifetime_scored = 0;
    lifetime_correct = 0;
    cold_creates = 0;
  }

let model_for t category =
  match Hashtbl.find_opt t.models category with
  | Some m -> m
  | None ->
      let m = fresh_model () in
      Hashtbl.add t.models category m;
      m

(* Raw handle bytes key just as well as hex and cost nothing to make. *)
let name_key dir name = (Fh.to_raw dir, name)

(* Ground truth for a file's size arrives when the file is deleted or
   at end of trace; we score size on the maximum size observed. *)
let settle t fh ~deleted_at =
  match Fh_tbl.find_opt t.pending fh with
  | None -> ()
  | Some p ->
      let m = model_for t p.category in
      let actual_size = size_class_of p.max_size in
      (match p.predicted_size with
      | Some predicted ->
          t.size_scored <- t.size_scored + 1;
          if size_class_eq predicted actual_size then t.size_correct <- t.size_correct + 1
      | None -> ());
      bump m.size_counts actual_size;
      (match deleted_at with
      | Some d ->
          let actual_lt = lifetime_class_of (d -. p.created_at) in
          (match p.predicted_lifetime with
          | Some predicted ->
              t.lifetime_scored <- t.lifetime_scored + 1;
              if lifetime_class_eq predicted actual_lt then
                t.lifetime_correct <- t.lifetime_correct + 1
          | None -> ());
          bump m.lifetime_counts actual_lt
      | None -> ());
      Fh_tbl.remove t.pending fh

let observe t (r : Record.t) =
  match (r.call, r.result) with
  | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh; _ })) ->
      Hashtbl.replace t.names (name_key dir name) fh
  | Ops.Create { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
      Hashtbl.replace t.names (name_key dir name) fh;
      let category = Names.categorize name in
      let m = model_for t category in
      let predicted_size = argmax m.size_counts in
      let predicted_lifetime = argmax m.lifetime_counts in
      if Option.is_none predicted_size && Option.is_none predicted_lifetime then
        t.cold_creates <- t.cold_creates + 1
      else t.predictions <- t.predictions + 1;
      Fh_tbl.replace t.pending fh
        { category; created_at = r.time; predicted_size; predicted_lifetime; max_size = 0. }
  | Ops.Remove { dir; name }, Some (Ok _) -> (
      match Hashtbl.find_opt t.names (name_key dir name) with
      | Some fh ->
          settle t fh ~deleted_at:(Some r.time);
          Hashtbl.remove t.names (name_key dir name)
      | None -> ())
  | (Ops.Write { fh; _ } | Ops.Read { fh; _ }), _ -> (
      match Fh_tbl.find_opt t.pending fh with
      | Some p -> (
          match Record.post_size r with
          | Some s -> if Int64.to_float s > p.max_size then p.max_size <- Int64.to_float s
          | None -> ())
      | None -> ())
  | _ -> ()

type score = {
  predictions : int;
  size_scored : int;
  size_correct : int;
  lifetime_scored : int;
  lifetime_correct : int;
  cold_creates : int;
  model_categories : int;
}

let score t =
  (* Files never deleted settle their size class now. *)
  let open_fhs = Fh_tbl.fold (fun fh _ acc -> fh :: acc) t.pending [] in
  List.iter (fun fh -> settle t fh ~deleted_at:None) open_fhs;
  {
    predictions = t.predictions;
    size_scored = t.size_scored;
    size_correct = t.size_correct;
    lifetime_scored = t.lifetime_scored;
    lifetime_correct = t.lifetime_correct;
    cold_creates = t.cold_creates;
    model_categories = Hashtbl.length t.models;
  }

let size_accuracy (s : score) =
  if s.size_scored = 0 then nan else float_of_int s.size_correct /. float_of_int s.size_scored

let lifetime_accuracy (s : score) =
  if s.lifetime_scored = 0 then nan
  else float_of_int s.lifetime_correct /. float_of_int s.lifetime_scored

let footprint t =
  let model_cards =
    Hashtbl.fold
      (fun _ m acc -> acc + Hashtbl.length m.size_counts + Hashtbl.length m.lifetime_counts)
      t.models 0
  in
  let pending = Fh_tbl.length t.pending in
  let names = Hashtbl.length t.names in
  Nt_obs.Footprint.v
    ~cards:(model_cards + pending + names)
    ~words:(16 + (model_cards * 6) + (pending * 16) + (names * 18))
