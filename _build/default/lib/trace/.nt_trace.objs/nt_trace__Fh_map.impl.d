lib/trace/fh_map.ml: Hashtbl Nt_nfs Option Record String
