lib/analysis/prior_studies.ml:
