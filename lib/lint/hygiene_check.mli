(** Capture-hygiene rules over {!Nt_trace.Capture.stats}.

    Two kinds of check: conservation laws the capture engine promises at
    [finish] (violations mean the tracer itself is broken — [error]),
    and loss/damage indicators that are legitimate on degraded input but
    must never appear on a clean capture — [warn], and the differential
    oracle CI keys on. Findings carry index [-1]: they describe the
    capture, not a record. *)

val check : emit:(Finding.t -> unit) -> Nt_trace.Capture.stats -> unit
