lib/analysis/nvram.ml: Hashtbl Int64 List Nt_nfs Nt_trace Queue
