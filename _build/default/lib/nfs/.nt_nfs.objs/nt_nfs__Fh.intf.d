lib/nfs/fh.mli:
