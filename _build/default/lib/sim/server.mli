(** The simulated NFS server: executes protocol calls against a
    {!Sim_fs} and produces wire-faithful results (post-op attributes,
    EOF flags, new handles). One instance models one disk array /
    filer, like CAMPUS's [home02]. *)

type t

val create : ?fsid:int -> ip:Nt_net.Ip_addr.t -> unit -> t
val fs : t -> Sim_fs.t
val ip : t -> Nt_net.Ip_addr.t
val root_fh : t -> Nt_nfs.Fh.t

val handle : t -> time:float -> Nt_nfs.Ops.call -> Nt_nfs.Ops.result
(** Execute one call at the given instant. Total: protocol errors come
    back as [Error status], never as exceptions. *)

val calls_handled : t -> int
