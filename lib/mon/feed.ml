module Record = Nt_trace.Record
module Obs = Nt_obs.Obs

type pull_result = [ `Record of Record.t | `Idle | `Closed ]

type t = {
  pull_fn : unit -> pull_result;
  pos_fn : unit -> int64 option;
  seek_fn : int64 -> bool;
  close_fn : unit -> unit;
  describe : string;
}

let pull t = t.pull_fn ()
let pos t = t.pos_fn ()
let seek t off = t.seek_fn off
let describe t = t.describe
let close t = t.close_fn ()

let of_fn ?(describe = "fn") ?(pos = fun () -> None) ?(seek = fun _ -> false)
    ?(close = fun () -> ()) pull_fn =
  { pull_fn; pos_fn = pos; seek_fn = seek; close_fn = close; describe }

let of_records seq =
  let cursor = ref seq in
  of_fn ~describe:"records" (fun () ->
      match !cursor () with
      | Seq.Nil -> `Closed
      | Seq.Cons (r, rest) ->
          cursor := rest;
          `Record r)

(* --- shared file-tail plumbing --- *)

type counters = {
  c_parse_errors : Obs.counter;
  c_reopens : Obs.counter;
  c_open_failures : Obs.counter;
  c_bytes : Obs.counter;
}

let counters obs =
  {
    c_parse_errors = Obs.counter obs ~help:"malformed feed input units skipped" "mon.feed.parse_errors";
    c_reopens = Obs.counter obs ~help:"tailed file reopened after truncation" "mon.feed.reopens";
    c_open_failures = Obs.counter obs ~help:"feed file open attempts that failed" "mon.feed.open_failures";
    c_bytes = Obs.counter obs ~help:"feed bytes consumed" "mon.feed.bytes";
  }

(* A tailed file: [pending] holds bytes read from the fd but not yet
   consumed as complete input units. [consumed] is the parse offset —
   the boundary of the last complete unit decoded. [delivered] lags it:
   the offset after the last record actually handed to the caller, so
   a checkpoint taken between parse and delivery still replays the
   records sitting in the feed's own queue. *)
type tail = {
  path : string;
  cs : counters;
  mutable fd : Unix.file_descr option;
  mutable ino : int;  (* inode the fd reads; rotation detection *)
  mutable pending : string;
  mutable consumed : int64;
  mutable delivered : int64;
  mutable read_off : int64;  (* fd offset = consumed + pending length *)
}

let tail_create ~obs path =
  {
    path;
    cs = counters obs;
    fd = None;
    ino = -1;
    pending = "";
    consumed = 0L;
    delivered = 0L;
    read_off = 0L;
  }

let tail_close t =
  (match t.fd with Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  t.fd <- None

let tail_reset t =
  tail_close t;
  t.ino <- -1;
  t.pending <- "";
  t.consumed <- 0L;
  t.delivered <- 0L;
  t.read_off <- 0L

let tail_ensure_open t =
  match t.fd with
  | Some fd -> Some fd
  | None -> (
      match Unix.openfile t.path [ Unix.O_RDONLY ] 0 with
      | fd ->
          (try ignore (Unix.LargeFile.lseek fd t.read_off Unix.SEEK_SET)
           with Unix.Unix_error _ -> ());
          (try t.ino <- (Unix.LargeFile.fstat fd).Unix.LargeFile.st_ino
           with Unix.Unix_error _ -> ());
          t.fd <- Some fd;
          Some fd
      | exception Unix.Unix_error _ ->
          Obs.inc t.cs.c_open_failures;
          None)

let chunk_size = 65536

(* Pull more bytes off the file; true when anything new arrived.
   Detects truncation (file now shorter than what we consumed) and
   rotation (the path now names a different inode) and starts over,
   counting the reopen. *)
let rec tail_fill t =
  match tail_ensure_open t with
  | None -> false
  | Some fd -> (
      let truncated =
        match Unix.LargeFile.fstat fd with
        | st -> st.Unix.LargeFile.st_size < t.read_off
        | exception Unix.Unix_error _ -> false
      in
      let rotated =
        match Unix.LargeFile.stat t.path with
        | st -> st.Unix.LargeFile.st_ino <> t.ino
        | exception Unix.Unix_error _ -> false
      in
      if truncated || rotated then begin
        Obs.inc t.cs.c_reopens;
        tail_reset t;
        (* retry once against the fresh file; reset leaves fd closed, so
           the recursive call reopens at offset 0 and cannot loop *)
        tail_fill t
      end
      else
        let buf = Bytes.create chunk_size in
        match Unix.read fd buf 0 chunk_size with
        | 0 -> false
        | n ->
            t.pending <- t.pending ^ Bytes.sub_string buf 0 n;
            t.read_off <- Int64.add t.read_off (Int64.of_int n);
            true
        | exception Unix.Unix_error _ -> false)

let tail_consume t n =
  t.pending <- String.sub t.pending n (String.length t.pending - n);
  t.consumed <- Int64.add t.consumed (Int64.of_int n);
  Obs.add t.cs.c_bytes n

let tail_seek t off =
  tail_reset t;
  t.consumed <- off;
  t.delivered <- off;
  t.read_off <- off;
  match tail_ensure_open t with Some _ -> true | None -> true
(* an absent file is fine: the offset sticks and applies on open *)

(* --- text trace tail --- *)

let trace_tail ?obs path =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let t = tail_create ~obs path in
  (* Each queued record carries the parse offset just past its line, so
     [pos] can report the boundary of the last *delivered* record rather
     than the last *parsed* one. *)
  let queue = Queue.create () in
  let parse_complete_lines () =
    let continue = ref true in
    while !continue do
      match String.index_opt t.pending '\n' with
      | None -> continue := false
      | Some i ->
          let line = String.sub t.pending 0 i in
          tail_consume t (i + 1);
          if String.length line > 0 then (
            match Record.of_line line with
            | Ok r -> Queue.push (r, t.consumed) queue
            | Error _ -> Obs.inc t.cs.c_parse_errors)
    done
  in
  let rec pull_fn () =
    match Queue.take_opt queue with
    | Some (r, off) ->
        t.delivered <- off;
        `Record r
    | None ->
    if tail_fill t then begin
      parse_complete_lines ();
      if Queue.is_empty queue then `Idle else pull_fn ()
    end
    else `Idle
  in
  of_fn ~describe:("trace:" ^ path)
    ~pos:(fun () -> Some t.delivered)
    ~seek:(fun off ->
      Queue.clear queue;
      tail_seek t off)
    ~close:(fun () -> tail_close t)
    pull_fn

(* --- pcap tail --- *)

let magic_us = 0xA1B2C3D4
let magic_ns = 0xA1B23C4D
let pcap_global_header = 24
let pcap_record_header = 16
let max_frame = 1 lsl 18 (* longer claimed frames are treated as corruption *)

type pcap_state = {
  mutable header_seen : bool;
  mutable big_endian : bool;
  mutable nanosecond : bool;
}

let u32 ~be s off =
  let b i = Char.code s.[off + i] in
  if be then (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  else (b 3 lsl 24) lor (b 2 lsl 16) lor (b 1 lsl 8) lor b 0

let pcap_tail ?obs path =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let t = tail_create ~obs path in
  let queue = Queue.create () in
  (* Records emit synchronously from [feed_packet], after the frame's
     bytes were consumed, so [t.consumed] here is the offset just past
     the packet that completed the record. *)
  let cap = Nt_trace.Capture.create ~obs ~emit:(fun r -> Queue.push (r, t.consumed) queue) () in
  let st = { header_seen = false; big_endian = false; nanosecond = false } in
  let try_header () =
    if String.length t.pending >= pcap_global_header then begin
      let detect be =
        let m = u32 ~be t.pending 0 in
        if m = magic_us then Some (be, false)
        else if m = magic_ns then Some (be, true)
        else None
      in
      (match detect true with
      | Some (be, ns) ->
          st.big_endian <- be;
          st.nanosecond <- ns
      | None -> (
          match detect false with
          | Some (be, ns) ->
              st.big_endian <- be;
              st.nanosecond <- ns
          | None ->
              (* Unrecognized magic: treat as microsecond little-endian
                 and let per-record sanity checks resync. *)
              Obs.inc t.cs.c_parse_errors));
      st.header_seen <- true;
      tail_consume t pcap_global_header
    end
  in
  let parse_records () =
    let continue = ref true in
    while !continue do
      if String.length t.pending < pcap_record_header then continue := false
      else begin
        let be = st.big_endian in
        let ts_sec = u32 ~be t.pending 0 in
        let ts_frac = u32 ~be t.pending 4 in
        let incl_len = u32 ~be t.pending 8 in
        if incl_len > max_frame then begin
          (* Corrupt length: slide one byte and retry — the salvage
             strategy of the batch reader, minus its double
             validation, kept cheap for the hot tail path. *)
          Obs.inc t.cs.c_parse_errors;
          tail_consume t 1
        end
        else if String.length t.pending < pcap_record_header + incl_len then
          continue := false
        else begin
          let frame = String.sub t.pending pcap_record_header incl_len in
          let time =
            Float.of_int ts_sec
            +. (Float.of_int ts_frac /. if st.nanosecond then 1e9 else 1e6)
          in
          tail_consume t (pcap_record_header + incl_len);
          Nt_trace.Capture.feed_packet cap ~time frame
        end
      end
    done
  in
  let rec pull_fn () =
    match Queue.take_opt queue with
    | Some (r, off) ->
        t.delivered <- off;
        `Record r
    | None ->
    if tail_fill t then begin
      if not st.header_seen then try_header ();
      if st.header_seen then parse_records ();
      if Queue.is_empty queue then `Idle else pull_fn ()
    end
    else `Idle
  in
  of_fn ~describe:("pcap:" ^ path)
    ~pos:(fun () -> if st.header_seen then Some t.delivered else None)
    ~seek:(fun off ->
      (* Resuming mid-capture: the global header was consumed before the
         checkpoint, so mark it seen but re-learn byte order from the
         file's first bytes when available. *)
      Queue.clear queue;
      let ok = tail_seek t off in
      if off = 0L then st.header_seen <- false
      else (match Unix.openfile path [ Unix.O_RDONLY ] 0 with
         | fd ->
             let hdr = Bytes.create pcap_global_header in
             let n = try Unix.read fd hdr 0 pcap_global_header with Unix.Unix_error _ -> 0 in
             (try Unix.close fd with Unix.Unix_error _ -> ());
             if n = pcap_global_header then begin
               let s = Bytes.to_string hdr in
               let m_be = u32 ~be:true s 0 and m_le = u32 ~be:false s 0 in
               if m_be = magic_us || m_be = magic_ns then begin
                 st.big_endian <- true;
                 st.nanosecond <- m_be = magic_ns
               end
               else if m_le = magic_us || m_le = magic_ns then begin
                 st.big_endian <- false;
                 st.nanosecond <- m_le = magic_ns
               end
             end;
             st.header_seen <- true
         | exception Unix.Unix_error _ -> st.header_seen <- true);
      ok)
    ~close:(fun () ->
      ignore (Nt_trace.Capture.finish cap);
      tail_close t)
    pull_fn

(* --- tbin tail --- *)

let tbin_tail ?obs path =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let t = tail_create ~obs path in
  (* The frame decoder owns resync and failure counting; its failure
     total is mirrored onto mon.feed.parse_errors so feed dashboards
     need not know the source format. Replay offsets come from the
     decoder: frame end for the last record of a frame, frame start
     before that — at-least-once at frame granularity. *)
  let d = Nt_tbin.Decoder.create ~obs () in
  let failures_seen = ref 0 in
  let mirror_failures () =
    let f = Nt_tbin.failures (Nt_tbin.Decoder.stats d) in
    if f > !failures_seen then begin
      Obs.add t.cs.c_parse_errors (f - !failures_seen);
      failures_seen := f
    end
  in
  let rec pull_fn () =
    match Nt_tbin.Decoder.next d with
    | Some (r, off) ->
        t.delivered <- off;
        `Record r
    | None ->
        if tail_fill t then begin
          let chunk = t.pending in
          tail_consume t (String.length chunk);
          Nt_tbin.Decoder.feed d chunk;
          mirror_failures ();
          pull_fn ()
        end
        else `Idle
  in
  of_fn ~describe:("tbin:" ^ path)
    ~pos:(fun () -> Some t.delivered)
    ~seek:(fun off ->
      let ok = tail_seek t off in
      Nt_tbin.Decoder.reset_at d off;
      ok)
    ~close:(fun () -> tail_close t)
    pull_fn
