lib/nfs/proc.ml: List
