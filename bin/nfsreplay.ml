(* nfsreplay: replay the READ stream of a saved trace against the disk
   model under each read-ahead policy, reporting what the paper's §6.4
   server modification would have done for this workload.

   Example: nfsreplay campus.trace *)

open Cmdliner

module Record = Nt_trace.Record
module Fh = Nt_nfs.Fh
module Disk = Nt_sim.Disk

type policy = No_readahead | Fragile | Metric

let policy_name = function
  | No_readahead -> "no-readahead"
  | Fragile -> "fragile"
  | Metric -> "seq-metric"

(* Per-file heuristic state, mirroring Nt_sim.Readahead but driven by
   an arbitrary trace. *)
type file_state = {
  mutable expected : int;
  mutable last_block : int;
  history : bool Queue.t;  (* was each recent access c-consecutive? *)
  mutable consecutive : int;
}

let block_size = 8192
let prefetch_depth = 8
let history_len = 32
let c = 10

let replay policy records =
  let disk = Disk.create () in
  let files : (string, file_state) Hashtbl.t = Hashtbl.create 256 in
  (* Distinct files map to distinct disk regions so cross-file seeks
     are visible to the arm model. *)
  let regions = Hashtbl.create 256 in
  let next_region = ref 0 in
  let region_of hex =
    match Hashtbl.find_opt regions hex with
    | Some r -> r
    | None ->
        let r = !next_region * (1 lsl 16) in
        incr next_region;
        Hashtbl.add regions hex r;
        r
  in
  let total = ref 0. in
  let requests = ref 0 in
  List.iter
    (fun r ->
      match r.Record.call with
      | Nt_nfs.Ops.Read { fh; offset; count } when count > 0 ->
          incr requests;
          let hex = Fh.to_hex_full fh in
          let base = region_of hex in
          let st =
            match Hashtbl.find_opt files hex with
            | Some st -> st
            | None ->
                let st =
                  { expected = 0; last_block = -1; history = Queue.create (); consecutive = 0 }
                in
                Hashtbl.add files hex st;
                st
          in
          let block = Int64.to_int offset / block_size in
          let nblocks = max 1 ((count + block_size - 1) / block_size) in
          let is_c_consecutive = st.last_block >= 0 && abs (block - st.last_block) <= c in
          if st.last_block >= 0 then begin
            Queue.push is_c_consecutive st.history;
            if is_c_consecutive then st.consecutive <- st.consecutive + 1;
            if Queue.length st.history > history_len then
              if Queue.pop st.history then st.consecutive <- st.consecutive - 1
          end;
          let sequential_now = block = st.expected in
          st.expected <- block + nblocks;
          st.last_block <- block;
          let do_prefetch =
            match policy with
            | No_readahead -> false
            | Fragile -> sequential_now
            | Metric ->
                Queue.length st.history = 0
                || float_of_int st.consecutive /. float_of_int (Queue.length st.history) >= 0.75
          in
          let service = Disk.read disk ~block:(base + block) ~nblocks in
          if do_prefetch then
            ignore (Disk.prefetch disk ~block:(base + block + nblocks) ~nblocks:prefetch_depth);
          total := !total +. service
      | _ -> ())
    records;
  (!requests, !total)

let run input obs_opts =
  let obs = Nt_obs.Obs.create () in
  let timeline = Obs_cli.timeline obs_opts obs in
  let sampler = Nt_obs.Sampler.create ~interval:0.05 obs in
  let prog = Obs_cli.progress obs_opts "nfsreplay" in
  let records =
    Nt_obs.Obs.with_span obs "load" (fun () ->
        Nt_core.Pipeline.load_trace ~obs
          ~tick:(fun () ->
            Obs_cli.tick prog ~stage:"load" 1;
            Nt_obs.Sampler.tick sampler)
          input)
  in
  Printf.eprintf "nfsreplay: %d records loaded\n%!" (List.length records);
  let results =
    List.map
      (fun p ->
        let name = policy_name p in
        Obs_cli.set_stage prog name;
        let ((reqs, total) as r) =
          Nt_obs.Obs.with_span obs ("replay." ^ name) (fun () -> replay p records)
        in
        Nt_obs.Obs.add
          (Nt_obs.Obs.counter obs
             ~labels:[ ("policy", name) ]
             ~help:"READ requests replayed against the disk model" "replay.read_requests")
          reqs;
        Nt_obs.Obs.set
          (Nt_obs.Obs.gauge obs
             ~labels:[ ("policy", name) ]
             ~help:"modeled disk service time, seconds" "replay.disk_seconds")
          total;
        (p, r))
      [ No_readahead; Fragile; Metric ]
  in
  let baseline =
    match List.assoc_opt Fragile results with Some (_, t) -> t | None -> 0.
  in
  print_string
    (Nt_util.Tables.render
       ~title:"Disk service time for the trace's READ stream, per read-ahead policy"
       ~header:[ "policy"; "read requests"; "disk time"; "vs fragile" ]
       (List.map
          (fun (p, (reqs, t)) ->
            [
              policy_name p;
              string_of_int reqs;
              Printf.sprintf "%.3f s" t;
              (if baseline > 0. then
                 Printf.sprintf "%+.1f%%" (100. *. (baseline -. t) /. baseline)
               else "-");
            ])
          results));
  ignore (Nt_obs.Sampler.sample_now sampler : Nt_obs.Sampler.sample);
  Obs_cli.finish prog;
  Obs_cli.dump obs_opts obs;
  Obs_cli.dump_timeline ~sampler obs_opts timeline;
  0

let input =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"TRACE"
        ~doc:
          "Input trace: - for stdin (text), a sniffed path, or an explicit trace:PATH / \
           tbin:PATH.")

let cmd =
  Cmd.v
    (Cmd.info "nfsreplay" ~doc:"Replay a trace's reads against the disk model per read-ahead policy")
    Term.(const run $ input $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
