(** The simulator as a live record source: the paper's workloads
    plugged into the monitor's {!Nt_mon.Feed} pull interface.

    Instead of simulating the whole interval and handing back a list,
    the feed advances the discrete-event engine one [slice_s] at a time
    from inside [pull], releasing horizon-sorted records as the clock
    passes them. With [speedup] set, simulated time is paced against
    the wall clock ([speedup] simulated seconds per real second) and
    [pull] answers [`Idle] when the simulation is ahead of schedule —
    which exercises the monitor's backoff path exactly the way a quiet
    capture port would. Unpaced (the default), it runs flat out and the
    feed closes when the workload interval is exhausted.

    The feed cannot seek ([pos] is [None]): a restored monitor resumes
    its windows and counters but replays no simulated suffix. *)

type workload = Campus | Eecs

val create :
  ?obs:Nt_obs.Obs.t ->
  ?email:Nt_workload.Email.config ->
  ?research:Nt_workload.Research.config ->
  ?slice_s:float ->
  ?speedup:float ->
  workload:workload ->
  start:float ->
  stop:float ->
  unit ->
  Nt_mon.Feed.t
(** [slice_s] (default 1.0 simulated second) bounds the engine work done
    by a single [pull]. [email]/[research] configure whichever workload
    [workload] selects. *)
