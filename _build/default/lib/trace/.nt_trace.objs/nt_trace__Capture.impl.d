lib/trace/capture.ml: Float Hashtbl List Nt_net Nt_nfs Nt_rpc Nt_xdr Printf Record Seq String
