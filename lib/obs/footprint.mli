(** State-footprint accounting: every bounded accumulator in the tree
    answers "how many things are you tracking, and roughly how much
    heap do they hold?" as a plain value, and those values surface as
    the [nt_state_cards{component}] / [nt_state_words{component}]
    gauge pair a live scrape can watch.

    [words] is an {e estimate} — OCaml gives no per-value sizeof — built
    from per-entry structural costs (record fields + headers, table
    load factors). The contract is monotone honesty, not byte
    precision: a component whose cardinality doubles must roughly
    double its words, and the sum across components must stay within a
    small constant factor of the sampled major heap (the soak bench
    gates on 2x). *)

type t = { cards : int; words : int }

val zero : t
val v : cards:int -> words:int -> t

val add : t -> t -> t
(** Componentwise sum — footprints of sub-structures compose. *)

val scale : int -> t -> t
(** [scale n per_entry] for [n] homogeneous entries. *)

(** {1 Publication} *)

type pub
(** Resolved gauge pair for one component; resolve once, set often. *)

val publisher : Obs.t -> component:string -> pub
val set : pub -> t -> unit

val publish : Obs.t -> component:string -> t -> unit
(** One-shot [publisher] + [set] for report-time call sites. *)
