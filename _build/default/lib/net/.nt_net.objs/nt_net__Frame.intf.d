lib/net/frame.mli: Ip_addr
