bin/nfstrace.mli:
