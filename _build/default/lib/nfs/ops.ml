type call =
  | Null
  | Getattr of Fh.t
  | Setattr of { fh : Fh.t; attrs : Types.sattr }
  | Lookup of { dir : Fh.t; name : string }
  | Access of { fh : Fh.t; access : int }
  | Readlink of Fh.t
  | Read of { fh : Fh.t; offset : int64; count : int }
  | Write of { fh : Fh.t; offset : int64; count : int; stable : Types.stable_how }
  | Create of { dir : Fh.t; name : string; mode : int; exclusive : bool }
  | Mkdir of { dir : Fh.t; name : string; mode : int }
  | Symlink of { dir : Fh.t; name : string; target : string }
  | Mknod of { dir : Fh.t; name : string }
  | Remove of { dir : Fh.t; name : string }
  | Rmdir of { dir : Fh.t; name : string }
  | Rename of { from_dir : Fh.t; from_name : string; to_dir : Fh.t; to_name : string }
  | Link of { fh : Fh.t; to_dir : Fh.t; to_name : string }
  | Readdir of { dir : Fh.t; cookie : int64; count : int }
  | Readdirplus of { dir : Fh.t; cookie : int64; count : int }
  | Statfs of Fh.t
  | Fsinfo of Fh.t
  | Pathconf of Fh.t
  | Commit of { fh : Fh.t; offset : int64; count : int }

type dir_entry = { entry_fileid : int64; entry_name : string; entry_cookie : int64 }

type success =
  | R_null
  | R_attr of Types.fattr
  | R_lookup of { fh : Fh.t; obj : Types.fattr option; dir : Types.fattr option }
  | R_access of int
  | R_readlink of string
  | R_read of { attr : Types.fattr option; count : int; eof : bool }
  | R_write of { count : int; committed : Types.stable_how; attr : Types.fattr option }
  | R_create of { fh : Fh.t option; attr : Types.fattr option }
  | R_empty
  | R_readdir of { entries : dir_entry list; eof : bool }
  | R_statfs of { total_bytes : int64; free_bytes : int64 }
  | R_fsinfo of { rtmax : int; wtmax : int }
  | R_pathconf of { name_max : int }

type result = (success, Types.nfsstat) Stdlib.result

let proc_of_call : call -> Proc.t = function
  | Null -> Proc.Null
  | Getattr _ -> Proc.Getattr
  | Setattr _ -> Proc.Setattr
  | Lookup _ -> Proc.Lookup
  | Access _ -> Proc.Access
  | Readlink _ -> Proc.Readlink
  | Read _ -> Proc.Read
  | Write _ -> Proc.Write
  | Create _ -> Proc.Create
  | Mkdir _ -> Proc.Mkdir
  | Symlink _ -> Proc.Symlink
  | Mknod _ -> Proc.Mknod
  | Remove _ -> Proc.Remove
  | Rmdir _ -> Proc.Rmdir
  | Rename _ -> Proc.Rename
  | Link _ -> Proc.Link
  | Readdir _ -> Proc.Readdir
  | Readdirplus _ -> Proc.Readdirplus
  | Statfs _ -> Proc.Statfs
  | Fsinfo _ -> Proc.Fsinfo
  | Pathconf _ -> Proc.Pathconf
  | Commit _ -> Proc.Commit

let call_fh = function
  | Null -> None
  | Getattr fh | Readlink fh | Statfs fh | Fsinfo fh | Pathconf fh -> Some fh
  | Setattr { fh; _ } | Access { fh; _ } | Read { fh; _ } | Write { fh; _ } | Commit { fh; _ } ->
      Some fh
  | Lookup { dir; _ } | Create { dir; _ } | Mkdir { dir; _ } | Symlink { dir; _ }
  | Mknod { dir; _ } | Remove { dir; _ } | Rmdir { dir; _ } | Readdir { dir; _ }
  | Readdirplus { dir; _ } ->
      Some dir
  | Rename { from_dir; _ } -> Some from_dir
  | Link { fh; _ } -> Some fh

let call_name = function
  | Lookup { name; _ } | Create { name; _ } | Mkdir { name; _ } | Symlink { name; _ }
  | Mknod { name; _ } | Remove { name; _ } | Rmdir { name; _ } ->
      Some name
  | Rename { from_name; _ } -> Some from_name
  | Link { to_name; _ } -> Some to_name
  | Null | Getattr _ | Setattr _ | Access _ | Readlink _ | Read _ | Write _ | Readdir _
  | Readdirplus _ | Statfs _ | Fsinfo _ | Pathconf _ | Commit _ ->
      None

let describe_call c =
  let proc = Proc.to_string (proc_of_call c) in
  match c with
  | Null -> proc
  | Getattr fh | Readlink fh | Statfs fh | Fsinfo fh | Pathconf fh ->
      Printf.sprintf "%s fh=%s" proc (Fh.to_hex fh)
  | Setattr { fh; _ } | Access { fh; _ } -> Printf.sprintf "%s fh=%s" proc (Fh.to_hex fh)
  | Read { fh; offset; count } | Commit { fh; offset; count } ->
      Printf.sprintf "%s fh=%s off=%Ld count=%d" proc (Fh.to_hex fh) offset count
  | Write { fh; offset; count; stable } ->
      Printf.sprintf "%s fh=%s off=%Ld count=%d stable=%d" proc (Fh.to_hex fh) offset count
        (Types.stable_how_to_int stable)
  | Lookup { dir; name } | Mknod { dir; name } | Remove { dir; name } | Rmdir { dir; name } ->
      Printf.sprintf "%s dir=%s name=%S" proc (Fh.to_hex dir) name
  | Create { dir; name; mode; exclusive } ->
      Printf.sprintf "%s dir=%s name=%S mode=%o excl=%b" proc (Fh.to_hex dir) name mode exclusive
  | Mkdir { dir; name; mode } ->
      Printf.sprintf "%s dir=%s name=%S mode=%o" proc (Fh.to_hex dir) name mode
  | Symlink { dir; name; target } ->
      Printf.sprintf "%s dir=%s name=%S target=%S" proc (Fh.to_hex dir) name target
  | Rename { from_dir; from_name; to_dir; to_name } ->
      Printf.sprintf "%s from=%s/%S to=%s/%S" proc (Fh.to_hex from_dir) from_name
        (Fh.to_hex to_dir) to_name
  | Link { fh; to_dir; to_name } ->
      Printf.sprintf "%s fh=%s to=%s/%S" proc (Fh.to_hex fh) (Fh.to_hex to_dir) to_name
  | Readdir { dir; cookie; count } | Readdirplus { dir; cookie; count } ->
      Printf.sprintf "%s dir=%s cookie=%Ld count=%d" proc (Fh.to_hex dir) cookie count
