lib/sim/client.mli: Nt_net Nt_nfs Nt_trace Nt_util Server
