(** The supervised monitor loop: feed in, bounded windows, periodic
    reports, checkpoints, and graceful degradation — the piece that
    turns the batch pipeline into something that can run for ten weeks.

    One [step] is one bounded unit of work: pull at most [pull_batch]
    feed events into the shedding ingest queue, analyze at most
    [drain_max] queued records into the ring, then do the housekeeping
    (report on rotation, checkpoint on the wall clock, watchdog, idle
    backoff). Nothing in a step is unbounded, so report latency is
    bounded by construction even when the feed outruns analysis — the
    queue sheds oldest-first and every shed is counted.

    Accounting is registry-first (like {!Nt_core.Pipeline.run_stats}):
    the conservation law the soak test asserts is

    [mon.ingested = mon.shed + mon.observed + queue depth]

    and after {!shutdown} (which drains the queue) the depth term is
    zero. Table evictions move ops between a keyed row and the [other]
    row {e within} windows and are counted separately
    ([mon.evictions{table}]) — they never break record conservation.

    Crash safety: with a checkpoint path configured, state is saved
    atomically every [checkpoint_every_s] and on shutdown; [create]
    restores it when present, re-adds the saved counters, re-anchors
    open spans on the current clock ({!Nt_obs.Obs.reanchor}) and seeks
    the feed back to the checkpointed offset, so a kill -9 merely
    replays the suffix since the last save. *)

type config = {
  ring : Ring.config;
  topn : int;  (** rows per breakdown table in reports *)
  report_every : int;  (** emit a report every N window rotations *)
  queue_cap : int;
  pull_batch : int;
  drain_max : int;
  backoff_base_s : float;
  backoff_cap_s : float;  (** capped exponential idle backoff *)
  watchdog_s : float;  (** no-progress threshold flagging a wedged feed *)
  checkpoint_path : string option;
  checkpoint_every_s : float;
  outstanding_cap : int;
  pending_timeout : float;
  max_records : int option;  (** stop after observing this many (soaks) *)
  idle_exit : int option;  (** stop after N consecutive idle rounds *)
  json : bool;  (** emit JSON report lines instead of tables *)
}

val default_config : config

type t

val create :
  ?obs:Nt_obs.Obs.t ->
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  ?emit:(string -> unit) ->
  ?tick:(unit -> unit) ->
  config ->
  Feed.t ->
  t
(** [clock]/[sleep] (defaults [Unix.gettimeofday]/[Unix.sleepf]) are
    injectable so endurance tests run on a synthetic clock. [emit]
    receives rendered reports (default stdout). [tick] runs once per
    step — the CLI polls the metrics socket there. Restore-on-start
    happens here when [checkpoint_path] names an existing file. *)

val step : t -> [ `Continue | `Stopped ]
val run : t -> unit
(** [step] until stopped. *)

val request_stop : t -> unit
(** Signal-safe: sets a flag the next [step] honors. *)

val shutdown : t -> unit
(** Graceful teardown: drain the queue completely, close the final
    window into the summary, emit a last report, save a final
    checkpoint, close the feed. Idempotent. *)

val conservation : t -> (unit, string) result
(** Check the conservation law above plus ring-internal agreement;
    [Error] describes the first violated identity. *)

val report_text : t -> string
val report_json : t -> string

val ring : t -> Ring.t
val obs : t -> Nt_obs.Obs.t

val sampler : t -> Nt_obs.Sampler.t
(** The service's resource sampler: ticked per drained record, sampled
    at every report, publisher of the [mon.*] component footprints.
    Wire [Nt_obs.Sampler.series_json] of this into the exporter's
    [/series] endpoint. *)

val ingested : t -> int
val shed : t -> int
val observed : t -> int
val queue_depth : t -> int
val reports_emitted : t -> int
val restored : t -> bool
(** True when this instance revived from a checkpoint. *)
