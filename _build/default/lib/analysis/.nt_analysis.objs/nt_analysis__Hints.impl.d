lib/analysis/hints.ml: Hashtbl Int64 List Names Nt_nfs Nt_trace Option
