(* Seeded exn-escape violation: [entry] is configured as a
   counted-never-raised root, but the Failure raised two calls down
   passes straight through its Not_found handler. *)

let deep () = failwith "boom"
let middle () = deep ()
let entry () = try middle () with Not_found -> ()
