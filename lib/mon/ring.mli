(** The ring buffer of time-window accumulators.

    Record time (not wall time) drives the ring: window [k] covers
    [[k*window_s, (k+1)*window_s)], so boundaries are exact multiples of
    the window length and every run over the same records rotates at the
    same instants regardless of arrival pacing. When the ring is full,
    the oldest window is folded into a long-run {e summary} window with
    {!Win.merge} and the summary is re-bounded with {!Win.compact} — so
    total counts are conserved forever while live memory stays
    O(ring windows * table caps + summary cap).

    Clock anomalies rotate or clamp, never corrupt:
    - a record {e older} than the current window lands in the retained
      window that covers it, or in the summary when it has already
      scrolled off (counted as [late]);
    - a {e backward} step versus the newest time seen is counted
      ([backward]) but handled by the same late-routing;
    - a {e forward} jump farther than the whole ring span flushes every
      live window to the summary and re-anchors the ring at the jump
      target (counted as [forward_jumps]) instead of spinning through
      millions of empty rotations. *)

type t

type config = {
  window_s : float;  (** window length, seconds; must be > 0 *)
  windows : int;  (** live windows retained; must be >= 1 *)
  caps : Win.caps;  (** per-window table caps *)
  summary_cap : Win.caps;  (** long-run summary table caps *)
}

val default_config : config
(** 10 s windows, 30 retained, default caps, 4x caps on the summary. *)

val create : config -> t

val observe : t -> Nt_trace.Record.t -> unit

val force_rotate : t -> unit
(** Close the current window as if its boundary had passed — used at
    shutdown so the final partial window reaches the summary path. *)

(** {1 State} *)

val current : t -> (float * Win.t) option
(** (start, window) of the newest live window. *)

val live : t -> (float * Win.t) list
(** Live windows, newest first. *)

val summary : t -> Win.t
val anchored : t -> bool
(** False until the first record anchors the ring. *)

val newest : t -> float option
(** Latest record time seen — the monitor's notion of "now" on the
    feed clock. *)

val totals : t -> Win.t
(** A fresh window holding live + summary merged: the whole run's
    conserved totals. O(live state), built per call. *)

(** {1 Counters} *)

val observed : t -> int
val rotations : t -> int
val evicted_windows : t -> int
val late : t -> int
val backward : t -> int
val forward_jumps : t -> int

val evictions : t -> (Win.table * int) list
(** Per-table eviction totals summed across live windows and the
    summary (compaction included). *)

(** {1 Checkpoint serialization} *)

val to_lines : t -> string list

val of_lines : config -> string list -> (t, string) result
(** Restore under the given config; window contents revive under the
    config's caps and are compacted immediately. *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}). *)
