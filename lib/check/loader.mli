(** Discovery and loading of [.cmt]/[.cmti] typedtree files.

    [load_dir] walks a build tree (normally [_build/default]), reads
    every binary-annotation file the current compiler can parse and
    returns one [unit_info] per (compilation unit, impl-or-intf) pair,
    first occurrence winning when dune duplicates a unit across object
    directories. *)

type payload = Impl of Typedtree.structure | Intf of Typedtree.signature

type unit_info = {
  name : string;  (** compilation unit, e.g. Nt_analysis__Summary *)
  dotted : string;  (** surface name, e.g. Nt_analysis.Summary *)
  source : string;  (** build-relative source path when recorded *)
  cmt_path : string;
  imports : string list;  (** direct compilation-unit imports *)
  payload : payload;
}

val is_impl : unit_info -> bool

val load_dir : excludes:string list -> string -> unit_info list * (string * string) list
(** [load_dir ~excludes root] returns loaded units and (path, error)
    pairs for unreadable files.  Paths containing any substring in
    [excludes] are skipped entirely. *)
