(* Hot-path allocation fixtures: this unit is in the configured hot
   scope, so [observe] is an entry-point seed and everything it calls
   (here and in Fix_hotdep) is per-record hot code; [merge] seeds the
   poly-compare rule's merge-hot set. *)

type t = { mutable seen : int; mutable total : int }

let create () = { seen = 0; total = 0 }

(* violation: alloc-hot-list (cons cell built per record) *)
let note x = [ x ]

(* violation: alloc-hot-closure (closure allocated past the spine) *)
let shift base =
  let bump = fun y -> y + base in
  bump base

let observe t name =
  t.seen <- t.seen + String.length (Fix_hotdep.slice name);
  t.total <- t.total + List.length (note (shift t.seen))

(* violation: alloc-poly-compare (structural compare at a record type,
   seeded through the merge path) *)
let merge (a : t) (b : t) =
  if compare a b < 0 then a.seen <- b.seen;
  a.total <- a.total + b.total;
  a
