(** Single registry of versioned on-disk format tags.

    Every magic/version string any writer emits or any reader checks
    must be one of these values, referenced (never re-spelled): the
    codec-drift rules in ntcheck flag tag literals found anywhere
    outside this module. *)

val tbin_magic : string
val checkpoint_version : string
val obs_snapshot : string
val obs_series : string
val bench_obs : string
val bench_par : string
val bench_mon : string
val bench_scale : string
val exn_report : string

val all : (string * string) list
(** [(registry name, tag)] pairs, for reports and docs. *)
