lib/workload/diurnal.ml: Array Float Nt_util
