lib/util/histogram.mli:
