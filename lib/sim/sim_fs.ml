module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh

exception Fs_error of Types.nfsstat

let err st = raise (Fs_error st)

type kind =
  | Dir of (string, node) Hashtbl.t
  | Reg
  | Lnk of string

and node = {
  id : int;
  kind : kind;
  mutable size : int64;
  mutable nlink : int;
  mode : int;
  uid : int;
  gid : int;
  mutable atime : float;
  mutable mtime : float;
  mutable ctime : float;
}

type t = {
  fsid : int;
  mutable next_id : int;
  nodes : (int, node) Hashtbl.t;
  root_node : node;
}

let make_node t ~time ~kind ~mode ~uid ~gid =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let n =
    { id; kind; size = 0L; nlink = 1; mode; uid; gid; atime = time; mtime = time; ctime = time }
  in
  Hashtbl.add t.nodes id n;
  n

let create ?(fsid = 1) () =
  let t =
    {
      fsid;
      next_id = 2;
      nodes = Hashtbl.create 4096;
      root_node =
        {
          id = 1;
          kind = Dir (Hashtbl.create 64);
          size = 4096L;
          nlink = 2;
          mode = 0o755;
          uid = 0;
          gid = 0;
          atime = 0.;
          mtime = 0.;
          ctime = 0.;
        };
    }
  in
  Hashtbl.add t.nodes 1 t.root_node;
  t

let root t = t.root_node
let fsid t = t.fsid
let fileid n = n.id
let nlink n = n.nlink

let ftype n =
  match n.kind with Dir _ -> Types.Dir | Reg -> Types.Reg | Lnk _ -> Types.Lnk

let size n = n.size

let fh_of_node t n = Fh.make ~fsid:t.fsid ~fileid:n.id

let node_of_fh t fh =
  match Fh.fileid fh with Some id -> Hashtbl.find_opt t.nodes id | None -> None

let fattr t n : Types.fattr =
  {
    ftype = ftype n;
    mode = n.mode;
    nlink = n.nlink;
    uid = n.uid;
    gid = n.gid;
    size = n.size;
    used = Int64.logand (Int64.add n.size 8191L) (Int64.lognot 8191L);
    fsid = Int64.of_int t.fsid;
    fileid = Int64.of_int n.id;
    atime = Types.time_of_float n.atime;
    mtime = Types.time_of_float n.mtime;
    ctime = Types.time_of_float n.ctime;
  }

let dir_table n = match n.kind with Dir tbl -> tbl | Reg | Lnk _ -> err Types.Err_notdir

let lookup _t dir name =
  let tbl = dir_table dir in
  match Hashtbl.find_opt tbl name with Some n -> n | None -> err Types.Err_noent

let insert t ~time ~parent ~name node =
  let tbl = dir_table parent in
  if Hashtbl.mem tbl name then err Types.Err_exist;
  Hashtbl.add tbl name node;
  parent.mtime <- time;
  parent.ctime <- time;
  ignore t

let mkdir t ~time ~parent ~name ~mode =
  let n = make_node t ~time ~kind:(Dir (Hashtbl.create 8)) ~mode ~uid:0 ~gid:0 in
  n.nlink <- 2;
  n.size <- 4096L;
  insert t ~time ~parent ~name n;
  parent.nlink <- parent.nlink + 1;
  n

let create_file t ~time ~parent ~name ~mode ~uid ~gid =
  let n = make_node t ~time ~kind:Reg ~mode ~uid ~gid in
  insert t ~time ~parent ~name n;
  n

let symlink t ~time ~parent ~name ~target =
  let n = make_node t ~time ~kind:(Lnk target) ~mode:0o777 ~uid:0 ~gid:0 in
  n.size <- Int64.of_int (String.length target);
  insert t ~time ~parent ~name n;
  n

let readlink n = match n.kind with Lnk target -> target | Dir _ | Reg -> err Types.Err_inval

let drop_link t ~time node =
  node.nlink <- node.nlink - 1;
  node.ctime <- time;
  if node.nlink <= 0 then Hashtbl.remove t.nodes node.id

let remove t ~time ~parent ~name =
  let tbl = dir_table parent in
  match Hashtbl.find_opt tbl name with
  | None -> err Types.Err_noent
  | Some n -> (
      match n.kind with
      | Dir _ -> err Types.Err_isdir
      | Reg | Lnk _ ->
          Hashtbl.remove tbl name;
          parent.mtime <- time;
          parent.ctime <- time;
          drop_link t ~time n)

let rmdir t ~time ~parent ~name =
  let tbl = dir_table parent in
  match Hashtbl.find_opt tbl name with
  | None -> err Types.Err_noent
  | Some n -> (
      match n.kind with
      | Reg | Lnk _ -> err Types.Err_notdir
      | Dir entries ->
          if Hashtbl.length entries > 0 then err Types.Err_notempty;
          Hashtbl.remove tbl name;
          parent.mtime <- time;
          parent.ctime <- time;
          parent.nlink <- parent.nlink - 1;
          n.nlink <- 0;
          Hashtbl.remove t.nodes n.id)

let rename t ~time ~from_parent ~from_name ~to_parent ~to_name =
  let from_tbl = dir_table from_parent in
  let to_tbl = dir_table to_parent in
  match Hashtbl.find_opt from_tbl from_name with
  | None -> err Types.Err_noent
  | Some n ->
      (match Hashtbl.find_opt to_tbl to_name with
      | Some existing when existing == n -> ()
      | Some existing -> (
          (* POSIX rename semantics: the target is replaced. *)
          match existing.kind with
          | Dir entries when Hashtbl.length entries > 0 -> err Types.Err_notempty
          | Dir _ ->
              Hashtbl.remove to_tbl to_name;
              to_parent.nlink <- to_parent.nlink - 1;
              existing.nlink <- 0;
              Hashtbl.remove t.nodes existing.id
          | Reg | Lnk _ ->
              Hashtbl.remove to_tbl to_name;
              drop_link t ~time existing)
      | None -> ());
      Hashtbl.remove from_tbl from_name;
      Hashtbl.replace to_tbl to_name n;
      from_parent.mtime <- time;
      from_parent.ctime <- time;
      to_parent.mtime <- time;
      to_parent.ctime <- time;
      n.ctime <- time;
      (match n.kind with
      | Dir _ when from_parent != to_parent ->
          from_parent.nlink <- from_parent.nlink - 1;
          to_parent.nlink <- to_parent.nlink + 1
      | Dir _ | Reg | Lnk _ -> ())

let link t ~time n ~to_parent ~to_name =
  (match n.kind with Dir _ -> err Types.Err_isdir | Reg | Lnk _ -> ());
  insert t ~time ~parent:to_parent ~name:to_name n;
  n.nlink <- n.nlink + 1;
  n.ctime <- time

let write _t ~time n ~offset ~count =
  (match n.kind with Reg -> () | Dir _ -> err Types.Err_isdir | Lnk _ -> err Types.Err_inval);
  let end_ = Int64.add offset (Int64.of_int count) in
  if Int64.compare end_ n.size > 0 then n.size <- end_;
  n.mtime <- time;
  n.ctime <- time

let truncate _t ~time n new_size =
  (match n.kind with Reg -> () | Dir _ -> err Types.Err_isdir | Lnk _ -> err Types.Err_inval);
  n.size <- new_size;
  n.mtime <- time;
  n.ctime <- time

let touch_read _t ~time n = n.atime <- time

let set_mtime _t ~time n =
  n.mtime <- time;
  n.ctime <- time

let entries n =
  let tbl = dir_table n in
  Hashtbl.fold (fun name node acc -> (name, node) :: acc) tbl []

let node_count t = Hashtbl.length t.nodes

let mkdir_path t ~time path =
  let rec go parent = function
    | [] -> parent
    | name :: rest ->
        let next =
          match Hashtbl.find_opt (dir_table parent) name with
          | Some n -> n
          | None -> mkdir t ~time ~parent ~name ~mode:0o755
        in
        go next rest
  in
  go t.root_node path
