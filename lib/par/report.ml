module A = Nt_analysis
module T = Nt_util.Tables
module Obs = Nt_obs.Obs

type section = [ `Summary | `Runs | `Names | `Hourly ]

let section_name = function
  | `Summary -> "summary"
  | `Runs -> "runs"
  | `Names -> "names"
  | `Hourly -> "hourly"

let render_summary s =
  T.render ~title:"Summary" ~header:[ "statistic"; "value" ]
    [
      [ "records"; string_of_int (A.Summary.total_ops s) ];
      [ "trace span"; T.fmt_duration (A.Summary.days s *. 86400.) ];
      [ "data read"; T.fmt_bytes (A.Summary.bytes_read s) ];
      [ "data written"; T.fmt_bytes (A.Summary.bytes_written s) ];
      [ "read ops"; string_of_int (A.Summary.read_ops s) ];
      [ "write ops"; string_of_int (A.Summary.write_ops s) ];
      [ "R/W op ratio"; T.fmt_float (A.Summary.read_write_op_ratio s) ];
      [ "R/W byte ratio"; T.fmt_float (A.Summary.read_write_byte_ratio s) ];
      [ "data calls"; T.fmt_pct (A.Summary.data_ops_pct s) ];
      [ "unique files"; string_of_int (A.Summary.unique_files_accessed s) ];
    ]
  ^ "\n"
  ^ T.render ~title:"Calls by procedure" ~header:[ "procedure"; "calls" ]
      (List.map
         (fun (p, n) -> [ Nt_nfs.Proc.to_string p; string_of_int n ])
         (A.Summary.top_procs s))

let render_runs (t : A.Runs.table3) =
  let f = T.fmt_float ~decimals:1 in
  T.render ~title:"Run patterns (processed: 10ms window, 10-block jumps)" ~header:[ "pattern"; "%" ]
    [
      [ "total runs"; string_of_int t.total_runs ];
      [ "reads (% total)"; f t.reads_pct ];
      [ "  entire (% read)"; f t.read.entire_pct ];
      [ "  sequential (% read)"; f t.read.sequential_pct ];
      [ "  random (% read)"; f t.read.random_pct ];
      [ "writes (% total)"; f t.writes_pct ];
      [ "  entire (% write)"; f t.write.entire_pct ];
      [ "  sequential (% write)"; f t.write.sequential_pct ];
      [ "  random (% write)"; f t.write.random_pct ];
      [ "read-write (% total)"; f t.rw_pct ];
    ]

let render_names n =
  T.render ~title:"File categories (by last pathname component)"
    ~header:[ "category"; "files"; "created+deleted"; "median size"; "read-only %" ]
    (List.map
       (fun (cat, (s : A.Names.category_stats)) ->
         [
           A.Names.category_to_string cat;
           string_of_int s.files_seen;
           string_of_int s.created_deleted;
           T.fmt_bytes s.median_size;
           T.fmt_pct s.read_only_pct;
         ])
       (A.Names.stats n))
  ^ Printf.sprintf "locks among created+deleted files: %.1f%%\n"
      (A.Names.lock_created_deleted_pct n)

let render_hourly h =
  T.render ~title:"Hourly activity" ~header:[ "hour"; "ops"; "reads"; "writes"; "R/W" ]
    (List.filter_map
       (fun (p : A.Hourly.hour_point) ->
         if p.ops = 0 then None
         else
           Some
             [
               string_of_int p.hour;
               string_of_int p.ops;
               string_of_int p.reads;
               string_of_int p.writes;
               T.fmt_float (A.Hourly.rw_ratio p);
             ])
       (A.Hourly.series h))

let default_records_per_shard = 65536

let run ?(obs = Obs.null) ?timeline ?(jobs = 1)
    ?(records_per_shard = default_records_per_shard) ~sections records =
  let slices = Shard.plan ~records_per_shard (Array.length records) in
  Pool.with_pool ~jobs (fun pool ->
      let want s = List.mem s sections in
      let summary = ref None and hourly = ref None and names = ref None and log = ref None in
      let batch =
        List.concat
          [
            (if want `Summary then [ Driver.Job (Passes.summary, fun a -> summary := Some a) ]
             else []);
            (if want `Hourly then [ Driver.Job (Passes.hourly, fun a -> hourly := Some a) ]
             else []);
            (if want `Names then [ Driver.Job (Passes.names, fun a -> names := Some a) ] else []);
            (if want `Runs then [ Driver.Job (Passes.io_log, fun a -> log := Some a) ] else []);
          ]
      in
      Driver.run_jobs ~obs ?timeline pool ~records ~slices batch;
      List.map
        (fun s ->
          let text =
            match s with
            | `Summary -> render_summary (Option.get !summary)
            | `Hourly -> render_hourly (Option.get !hourly)
            | `Names -> render_names (Option.get !names)
            | `Runs ->
                render_runs (A.Runs.table3 (Passes.runs ~obs ?timeline ~jump_blocks:10 pool (Option.get !log)))
          in
          (s, text))
        sections)

(* Streaming variant: the producer pushes records and never holds the
   trace in memory. Chunks are exactly [records_per_shard] long, so
   the fold replays the materialized shard plan — chunk 0 takes the
   root accumulator, later chunks the shard-mode one, and merges
   left-fold in chunk order — and the rendered text is byte-identical
   with {!run} at any worker count. Within a chunk the wanted passes
   fan across the pool (pass-parallel rather than shard-parallel), and
   each pass's chunk time still lands on [par.pass.<name>]. *)

type fold = Fold : 'a Driver.pass * 'a option ref -> fold

let run_stream ?(obs = Obs.null) ?timeline ?(jobs = 1)
    ?(records_per_shard = default_records_per_shard) ~sections produce =
  if records_per_shard <= 0 then
    invalid_arg "Report.run_stream: records_per_shard must be positive";
  Pool.with_pool ~jobs (fun pool ->
      let want s = List.mem s sections in
      let summary = ref None and hourly = ref None and names = ref None and log = ref None in
      let folds =
        List.concat
          [
            (if want `Summary then [ Fold (Passes.summary, summary) ] else []);
            (if want `Hourly then [ Fold (Passes.hourly, hourly) ] else []);
            (if want `Names then [ Fold (Passes.names, names) ] else []);
            (if want `Runs then [ Fold (Passes.io_log, log) ] else []);
          ]
      in
      let process chunk ~first =
        let tasks =
          List.map
            (fun (Fold (p, slot)) () ->
              let t0 = Unix.gettimeofday () in
              let acc = if first then p.Driver.init () else p.Driver.init_shard () in
              Array.iter (p.Driver.observe acc) chunk;
              let dt = Unix.gettimeofday () -. t0 in
              let commit () =
                slot := Some (match !slot with None -> acc | Some prev -> p.Driver.merge prev acc)
              in
              (p.Driver.name, dt, commit))
            folds
        in
        let done_ = Pool.run_all pool (Array.of_list tasks) in
        Array.iter
          (fun (name, dt, commit) ->
            Obs.span_record obs ("par.pass." ^ name) ~seconds:dt;
            commit ())
          done_
      in
      let chunk = ref [||] in
      let fill = ref 0 in
      let first = ref true in
      let total = ref 0 in
      let flush () =
        if !fill > 0 then begin
          let c = if !fill = Array.length !chunk then !chunk else Array.sub !chunk 0 !fill in
          process c ~first:!first;
          first := false;
          fill := 0
        end
      in
      let push r =
        if Array.length !chunk = 0 then chunk := Array.make records_per_shard r;
        !chunk.(!fill) <- r;
        incr fill;
        incr total;
        if !fill = records_per_shard then flush ()
      in
      produce push;
      flush ();
      (* an empty stream still yields root accumulators, like {!run} *)
      if !first then process [||] ~first:true;
      chunk := [||];
      let texts =
        List.map
          (fun s ->
            let text =
              match s with
              | `Summary -> render_summary (Option.get !summary)
              | `Hourly -> render_hourly (Option.get !hourly)
              | `Names -> render_names (Option.get !names)
              | `Runs ->
                  render_runs
                    (A.Runs.table3
                       (Passes.runs ~obs ?timeline ~jump_blocks:10 pool (Option.get !log)))
            in
            (s, text))
          sections
      in
      (texts, !total))
[@@nt.raise_ok
  "records_per_shard is caller configuration rejected up front; each Option.get reads a slot \
   the matching fold above is guaranteed to have committed"]
