(* Clean twin of Fix_bound: the same growth sites, paired with eviction
   on the table class and a reset of the appended field. *)

type t = { table : (int, int) Hashtbl.t; mutable log : int list }

let create () = { table = Hashtbl.create 16; log = [] }

let add t k v =
  if Hashtbl.length t.table > 1024 then Hashtbl.reset t.table;
  Hashtbl.replace t.table k v

let observe t x = t.log <- x :: t.log

let flush t =
  let out = t.log in
  t.log <- [];
  out
