lib/analysis/runs.ml: Array Io_log List
