(* Domain-safety: top-level bindings in modules reachable from the
   parallel driver must not create shared mutable state.  Two rules:

   - dom-top-mutable: the bound value's type mentions a known mutable
     container (ref, Hashtbl.t, Buffer.t, Queue.t, Stack.t) outside any
     arrow (state a function creates per call is per-shard and fine).
   - dom-mutable-record: the binding's right-hand side builds a record
     literal with mutable fields outside any function body.  This is
     syntactic: a top-level [M.create ()] whose abstract result hides
     mutable fields is not seen, which is why the merge-equivalence
     oracle stays the last line of defense.

   Atomic.t / Mutex.t / Condition.t / Semaphore wrappers are considered
   safe, as is anything under [@@nt.domain_safe "reason"]. *)

let mutable_heads =
  [ "ref"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "Ephemeron.K1.t" ]

let safe_heads =
  [
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Domain.DLS.key";
  ]

let rec type_mutable_head ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> None
  | Types.Tconstr (p, args, _) ->
      let n = Syntax.norm_path p in
      if List.mem n safe_heads then None
      else if List.mem n mutable_heads then Some n
      else List.find_map type_mutable_head args
  | Types.Ttuple ts -> List.find_map type_mutable_head ts
  | _ -> None

(* Scan an expression for record literals with mutable fields, without
   entering function bodies (those allocate per call). *)
let mutable_record_literal (root : Typedtree.expression) =
  let found = ref None in
  let expr sub (e : Typedtree.expression) =
    if !found = None then
      match e.exp_desc with
      | Texp_function _ -> ()
      | Texp_record { fields; _ } -> (
          let mut =
            Array.to_list fields
            |> List.find_map (fun ((ld : Types.label_description), _) ->
                   match ld.lbl_mut with
                   | Asttypes.Mutable -> Some ld.lbl_name
                   | Asttypes.Immutable -> None)
          in
          match mut with
          | Some field -> found := Some (e.exp_loc, field)
          | None -> Tast_iterator.default_iterator.expr sub e)
      | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root;
  !found

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> Ident.name id
  | Tpat_any -> "_"
  | _ -> "<pattern>"

let check_binding (sink : Finding.sink) (vb : Typedtree.value_binding) =
  let allows = Syntax.allows vb.vb_attributes in
  let name = binding_name vb in
  match type_mutable_head vb.vb_expr.exp_type with
  | Some head ->
      if Syntax.allowed allows Rule.dom_top_mutable then sink.allow Rule.dom_top_mutable
      else
        sink.emit Rule.dom_top_mutable vb.vb_loc
          (Printf.sprintf "let %s : shared mutable %s at module top level" name head)
  | None -> (
      match mutable_record_literal vb.vb_expr with
      | Some (loc, field) ->
          if Syntax.allowed allows Rule.dom_mutable_record then
            sink.allow Rule.dom_mutable_record
          else
            sink.emit Rule.dom_mutable_record loc
              (Printf.sprintf "let %s : record literal with mutable field '%s' at module \
                               top level"
                 name field)
      | None -> ())

let rec check_structure sink (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (check_binding sink) vbs
      | Tstr_module mb -> check_module_expr sink mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun (mb : Typedtree.module_binding) -> check_module_expr sink mb.mb_expr) mbs
      | Tstr_include incl -> check_module_expr sink incl.incl_mod
      | _ -> ())
    str.str_items

and check_module_expr sink (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> check_structure sink str
  | Tmod_constraint (me, _, _, _) -> check_module_expr sink me
  | _ -> ()

let check sink (u : Loader.unit_info) =
  match u.payload with Loader.Impl str -> check_structure sink str | Loader.Intf _ -> ()
