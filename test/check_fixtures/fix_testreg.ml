(* The fixture project's test unit: the merge-law scanner reads
   prop_merge_laws applications out of this typedtree and credits the
   modules whose merge they name; prop_footprint does the same for
   footprint coverage. *)

let prop_merge_laws _name merge = ignore merge
let () = prop_merge_laws "acc_covered" Fix_acc_covered.merge
let prop_footprint _name footprint = ignore footprint
let () = prop_footprint "acc_covered" Fix_acc_covered.footprint
