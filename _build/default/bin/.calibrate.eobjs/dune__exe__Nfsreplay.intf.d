bin/nfsreplay.mli:
