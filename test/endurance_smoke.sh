#!/bin/sh
# Endurance smoke for nfsmon.
#
# Phase 1: soak against a paced simulated feed with the metrics socket
#   up — scrape /metrics and /json while it runs, hold VmHWM under a
#   fixed ceiling, then SIGTERM and require a clean (conserved) exit.
# Phase 2: kill -9 / restore against a tailed trace — run over a prefix
#   with aggressive checkpointing, kill -9 at the checkpoint, append
#   the rest of the trace, restart, and require the restored run to
#   report exactly the same total ingested count as an uninterrupted
#   reference run (zero uncounted record loss).
set -eu

NFSMON=${NFSMON:-_build/default/bin/nfsmon.exe}
NFSWLGEN=${NFSWLGEN:-_build/default/bin/nfswlgen.exe}
PORT=${SMOKE_PORT:-9464}
RSS_CEILING_KB=${RSS_CEILING_KB:-262144} # 256 MB

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "endurance_smoke: FAIL: $1" >&2
  exit 1
}

last_ingested() {
  # health.ingested of the last JSON report in a file
  grep -o '"ingested":[0-9]*' "$1" | tail -1 | cut -d: -f2
}

echo "== phase 1: paced sim soak, live scrape, RSS ceiling, clean shutdown"
"$NFSMON" sim:campus --sim-stop 900 --speedup 30 --json --window 10 \
  --listen "127.0.0.1:$PORT" >"$WORK/sim.out" 2>"$WORK/sim.err" &
PID=$!
sleep 2
kill -0 "$PID" 2>/dev/null || { cat "$WORK/sim.err" >&2; fail "monitor died early"; }

curl -sf "http://127.0.0.1:$PORT/metrics" >"$WORK/metrics.txt" \
  || fail "/metrics scrape failed"
grep -q '^mon_ingested ' "$WORK/metrics.txt" || fail "mon_ingested series missing"
grep -q '^mon_evictions{' "$WORK/metrics.txt" || fail "mon_evictions series missing"
curl -sf "http://127.0.0.1:$PORT/json" | grep -q '"mon.ingested"' \
  || fail "/json scrape failed"

# /series mid-run: the resource sampler's ring must be bounded, its
# timestamps monotone, and every mon component must account non-zero
# state-footprint words.
curl -sf "http://127.0.0.1:$PORT/series" >"$WORK/series.json" \
  || fail "/series scrape failed"
grep -q '"schema": "nt_obs_series/1"' "$WORK/series.json" \
  || fail "/series schema tag missing"
SAMPLES=$(grep -c '"at":' "$WORK/series.json") || true
CAP=$(grep -o '"cap": [0-9]*' "$WORK/series.json" | head -1 | tr -dc 0-9)
[ -n "$SAMPLES" ] && [ "$SAMPLES" -ge 1 ] || fail "/series has no samples"
[ -n "$CAP" ] && [ "$SAMPLES" -le "$CAP" ] \
  || fail "/series ring unbounded: $SAMPLES samples over cap $CAP"
grep -o '"at": [0-9.]*' "$WORK/series.json" | tr -dc '0-9.\n' >"$WORK/ats.txt"
sort -nc "$WORK/ats.txt" 2>/dev/null || fail "/series timestamps not monotone"
for comp in mon.ring mon.outstanding mon.ingest; do
  WORDS=$(grep -o "\"$comp\": {\"cards\": [0-9]*, \"words\": [0-9]*" \
    "$WORK/series.json" | grep -o '[0-9]*$')
  [ -n "$WORDS" ] && [ "$WORDS" -gt 0 ] \
    || fail "footprint for $comp missing or zero words"
done
echo "   /series: $SAMPLES samples (cap $CAP), footprints live"
grep -q 'nt_state_words{component="mon_ring"}\|nt_state_words{component="mon.ring"}' \
  "$WORK/metrics.txt" \
  || { curl -sf "http://127.0.0.1:$PORT/metrics" \
         | grep -q 'nt_state_words' || fail "nt_state_words gauges never exported"; }

VMHWM=$(awk '/VmHWM/ {print $2}' "/proc/$PID/status")
[ "$VMHWM" -le "$RSS_CEILING_KB" ] \
  || fail "VmHWM ${VMHWM}kB over ceiling ${RSS_CEILING_KB}kB"
echo "   VmHWM ${VMHWM}kB (ceiling ${RSS_CEILING_KB}kB)"

kill -TERM "$PID"
wait "$PID" || fail "SIGTERM shutdown exited non-zero (conservation?)"
grep -q '"schema":"nfsmon-report/1"' "$WORK/sim.out" || fail "no reports emitted"

echo "== phase 2: kill -9 mid-tail, restore, stable counts"
"$NFSWLGEN" --system campus --users 25 --hours 0.5 -o "$WORK/soak.trace" \
  2>/dev/null
TOTAL_LINES=$(wc -l <"$WORK/soak.trace")
PREFIX=$((TOTAL_LINES * 3 / 5))

# Uninterrupted reference over the whole trace.
"$NFSMON" "trace:$WORK/soak.trace" --json --window 60 --report-every 5 \
  --idle-exit 3 >"$WORK/ref.out" 2>/dev/null \
  || fail "reference run exited non-zero"
REF=$(last_ingested "$WORK/ref.out")
[ -n "$REF" ] && [ "$REF" -gt 0 ] || fail "reference run reported nothing"

# Interrupted run: tail a prefix, checkpoint every step, kill -9.
head -n "$PREFIX" "$WORK/soak.trace" >"$WORK/live.trace"
"$NFSMON" "trace:$WORK/live.trace" --json --window 60 --report-every 5 \
  --checkpoint "$WORK/mon.ckpt" --checkpoint-every 0 \
  >"$WORK/b1.out" 2>/dev/null &
B1=$!
for _ in $(seq 1 100); do
  if grep -q '^counter ingested [1-9]' "$WORK/mon.ckpt" 2>/dev/null; then break; fi
  sleep 0.1
done
grep -q '^counter ingested [1-9]' "$WORK/mon.ckpt" \
  || fail "no checkpoint with progress appeared"
kill -9 "$B1"
wait "$B1" 2>/dev/null || true

# The writer finishes the file; the restored monitor replays the rest.
tail -n +"$((PREFIX + 1))" "$WORK/soak.trace" >>"$WORK/live.trace"
"$NFSMON" "trace:$WORK/live.trace" --json --window 60 --report-every 5 \
  --checkpoint "$WORK/mon.ckpt" --checkpoint-every 0 --idle-exit 3 \
  >"$WORK/b2.out" 2>"$WORK/b2.err" \
  || fail "restored run exited non-zero (conservation?)"
grep -q 'restored from checkpoint' "$WORK/b2.err" || fail "restore did not engage"
GOT=$(last_ingested "$WORK/b2.out")
[ "$GOT" = "$REF" ] \
  || fail "restored run ingested $GOT, reference ingested $REF"
echo "   restored run conserved all $GOT records across kill -9"

echo "endurance_smoke: PASS"
