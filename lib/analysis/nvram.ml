module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh

type config = {
  capacity_bytes : int;
  flush_delay : float;
  block : int;
}

(* Buffered dirty blocks, keyed by (raw fh bytes, block index). [seq] gives
   FIFO flush order; a rewrite refreshes the entry (the old version is
   absorbed, the new one re-enters at the tail). *)
type entry = { mutable seq : int; mutable live : bool }

type t = {
  cfg : config;
  entries : (string * int, entry) Hashtbl.t;
  queue : (float * int * (string * int)) Queue.t;  (* deadline, seq, key *)
  names : (string * string, Fh.t) Hashtbl.t;
  mutable next_seq : int;
  mutable buffered : int;  (* live entries *)
  mutable block_writes : int;
  mutable absorbed : int;
  mutable disk_writes : int;
  mutable overflow_flushes : int;
}

let create cfg =
  {
    cfg;
    entries = Hashtbl.create 4096;
    queue = Queue.create ();
    names = Hashtbl.create 1024;
    next_seq = 0;
    buffered = 0;
    block_writes = 0;
    absorbed = 0;
    disk_writes = 0;
    overflow_flushes = 0;
  }

let capacity_blocks t = max 1 (t.cfg.capacity_bytes / t.cfg.block)

let flush t ~forced key =
  match Hashtbl.find_opt t.entries key with
  | Some e when e.live ->
      e.live <- false;
      t.buffered <- t.buffered - 1;
      t.disk_writes <- t.disk_writes + 1;
      if forced then t.overflow_flushes <- t.overflow_flushes + 1
  | _ -> ()

(* Flush entries whose deadline has passed, then enforce capacity. The
   queue may hold stale (refreshed or absorbed) tickets; an entry is
   only flushed when the ticket matches its current sequence number. *)
let expire t ~now =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.queue with
    | Some (deadline, seq, key) when deadline <= now ->
        ignore (Queue.pop t.queue);
        (match Hashtbl.find_opt t.entries key with
        | Some e when e.live && e.seq = seq -> flush t ~forced:false key
        | _ -> ())
    | Some _ | None -> continue := false
  done;
  while t.buffered > capacity_blocks t && not (Queue.is_empty t.queue) do
    let _, seq, key = Queue.pop t.queue in
    match Hashtbl.find_opt t.entries key with
    | Some e when e.live && e.seq = seq -> flush t ~forced:true key
    | _ -> ()
  done

let absorb_entry t e =
  if e.live then begin
    e.live <- false;
    t.buffered <- t.buffered - 1;
    t.absorbed <- t.absorbed + 1
  end

let absorb t key =
  match Hashtbl.find_opt t.entries key with Some e -> absorb_entry t e | None -> ()

let write_block t ~now key =
  t.block_writes <- t.block_writes + 1;
  absorb t key (* previous buffered version, if any, dies here *);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let deadline = now +. t.cfg.flush_delay in
  (match Hashtbl.find_opt t.entries key with
  | Some e ->
      e.seq <- seq;
      e.live <- true
  | None -> Hashtbl.add t.entries key { seq; live = true });
  t.buffered <- t.buffered + 1;
  Queue.push (deadline, seq, key) t.queue

(* Blocks of a removed/truncated file that are still buffered never
   need to reach the disk at all.  [absorb_entry] mutates entry fields
   only (never the table structure), so iterating directly is safe. *)
let drop_file t fh_raw =
  Hashtbl.iter (fun (h, _) e -> if String.equal h fh_raw then absorb_entry t e) t.entries
[@@nt.alloc_ok "one iterator closure per remove/truncate; the per-write path never comes here"]

let name_key dir name = (Fh.to_raw dir, name)

let observe t (r : Record.t) =
  expire t ~now:r.time;
  (match (r.call, r.result) with
  | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh; _ })) ->
      Hashtbl.replace t.names (name_key dir name) fh
  | Ops.Create { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
      Hashtbl.replace t.names (name_key dir name) fh
  | _ -> ());
  match r.call with
  | Ops.Write { fh; offset; count; _ } when count > 0 ->
      let raw = Fh.to_raw fh in
      let b0 = Int64.to_int offset / t.cfg.block in
      let b1 = (Int64.to_int offset + count - 1) / t.cfg.block in
      for b = b0 to b1 do
        write_block t ~now:r.time (raw, b)
      done
  | Ops.Setattr { fh; attrs = { set_size = Some s; _ } } when Int64.equal s 0L ->
      drop_file t (Fh.to_raw fh)
  | Ops.Remove { dir; name } when Record.is_ok r -> (
      match Hashtbl.find_opt t.names (name_key dir name) with
      | Some fh ->
          drop_file t (Fh.to_raw fh);
          Hashtbl.remove t.names (name_key dir name)
      | None -> ())
  | _ -> ()

type result = {
  block_writes : int;
  absorbed : int;
  disk_writes : int;
  absorbed_pct : float;
  overflow_flushes : int;
}

let result (t : t) =
  (* Final flush of everything still buffered. *)
  Hashtbl.iter
    (fun _ e ->
      if e.live then begin
        e.live <- false;
        t.disk_writes <- t.disk_writes + 1
      end)
    t.entries;
  t.buffered <- 0;
  {
    block_writes = t.block_writes;
    absorbed = t.absorbed;
    disk_writes = t.disk_writes;
    absorbed_pct =
      (if t.block_writes = 0 then 0.
       else 100. *. float_of_int t.absorbed /. float_of_int t.block_writes);
    overflow_flushes = t.overflow_flushes;
  }
