let exponential rng ~rate =
  assert (rate > 0.);
  (* 1 - u avoids log 0 since unit_float is in [0,1). *)
  -.log (1. -. Prng.unit_float rng) /. rate

let uniform rng ~lo ~hi = lo +. Prng.float rng (hi -. lo)

let normal rng ~mean ~stddev =
  let u1 = 1. -. Prng.unit_float rng in
  let u2 = Prng.unit_float rng in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let pareto rng ~alpha ~x_min =
  assert (alpha > 0. && x_min > 0.);
  x_min /. ((1. -. Prng.unit_float rng) ** (1. /. alpha))

let geometric rng ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = 1. -. Prng.unit_float rng in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let poisson rng ~mean =
  assert (mean >= 0.);
  if mean = 0. then 0
  else if mean > 60. then
    (* Normal approximation; adequate for load modelling. *)
    max 0 (int_of_float (Float.round (normal rng ~mean ~stddev:(sqrt mean))))
  else
    let l = exp (-.mean) in
    let rec loop k p =
      let p = p *. Prng.unit_float rng in
      if p <= l then k else loop (k + 1) p
    in
    loop 0 1.

type zipf = { cdf : float array }

let zipf ~n ~s =
  assert (n > 0);
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for rank = 1 to n do
    total := !total +. (1. /. (float_of_int rank ** s));
    cdf.(rank - 1) <- !total
  done;
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. !total
  done;
  { cdf }

let zipf_n z = Array.length z.cdf

let bisect cdf target =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < target then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length cdf - 1)

let zipf_draw rng z =
  let u = Prng.unit_float rng in
  1 + bisect z.cdf u

type 'a weighted = { values : 'a array; wcdf : float array }

let weighted pairs =
  assert (pairs <> []);
  let values = Array.of_list (List.map fst pairs) in
  let wcdf = Array.make (Array.length values) 0. in
  let total = ref 0. in
  List.iteri
    (fun i (_, w) ->
      assert (w > 0.);
      total := !total +. w;
      wcdf.(i) <- !total)
    pairs;
  Array.iteri (fun i v -> wcdf.(i) <- v /. !total) wcdf;
  { values; wcdf }

let weighted_draw rng w =
  let u = Prng.unit_float rng in
  w.values.(bisect w.wcdf u)
