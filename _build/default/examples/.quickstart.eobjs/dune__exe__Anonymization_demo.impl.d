examples/anonymization_demo.ml: List Nt_analysis Nt_core Nt_trace Nt_util Nt_workload Printf
