lib/nfs/v2.mli: Nt_xdr Ops Proc Types
