(* Lint engine tests: clean simulator output must be finding-free, each
   rule must fire exactly once on a trace mutated to violate it exactly
   once, and the differential fault harness must light up the rule
   family its plan predicts. *)

module Record = Nt_trace.Record
module Capture = Nt_trace.Capture
module Anonymize = Nt_trace.Anonymize
module Pipeline = Nt_core.Pipeline
module Fault = Nt_sim.Fault
module Lint = Nt_lint.Engine
module Rule = Nt_lint.Rule
module Finding = Nt_lint.Finding
module Anon_check = Nt_lint.Anon_check
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Ip = Nt_net.Ip_addr

let t0 = 1003622400.0
let dir_fh = Fh.make ~fsid:1 ~fileid:2
let file_fh = Fh.make ~fsid:1 ~fileid:3
let attr = { Types.default_fattr with size = 1_000_000L; fileid = 3L }

let mk i call result : Record.t =
  {
    time = t0 +. (0.5 *. float_of_int i);
    reply_time = Some (t0 +. (0.5 *. float_of_int i) +. 0.001);
    client = Ip.v 10 1 0 20;
    server = Ip.v 10 1 1 2;
    version = 3;
    xid = 0x1000 + i;
    uid = 1042;
    gid = 100;
    call;
    result = Some result;
  }

let lookup i = mk i (Ops.Lookup { dir = dir_fh; name = "plain" })
    (Ok (Ops.R_lookup { fh = file_fh; obj = Some attr; dir = None }))

let read i = mk i (Ops.Read { fh = file_fh; offset = 0L; count = 4096 })
    (Ok (Ops.R_read { attr = Some attr; count = 4096; eof = false }))

let lint ?stats ?config records = Pipeline.lint_records ?config ?stats records

let finding_ids t =
  List.map (fun (f : Finding.t) -> f.Finding.rule.Rule.id) (Lint.findings t)

let check_clean what t =
  Alcotest.(check (list string)) (what ^ " lint-clean") [] (finding_ids t)

(* The trace violates exactly one rule exactly once. *)
let check_one what ~rule ~index t =
  match Lint.findings t with
  | [ f ] ->
      Alcotest.(check string) (what ^ " rule") rule f.Finding.rule.Rule.id;
      Alcotest.(check int) (what ^ " index") index f.Finding.index
  | fs ->
      Alcotest.failf "%s: expected exactly one finding, got [%s]" what
        (String.concat "; " (List.map Finding.to_string fs))

(* --- clean simulator output --- *)

let hour = 3600.

let simulate which =
  let acc = ref [] in
  let sink r = acc := r :: !acc in
  (match which with
  | `Eecs -> ignore (Pipeline.simulate_eecs ~start:t0 ~stop:(t0 +. (0.3 *. hour)) ~sink ())
  | `Campus -> ignore (Pipeline.simulate_campus ~start:t0 ~stop:(t0 +. (0.3 *. hour)) ~sink ()));
  List.rev !acc

let test_clean_eecs () =
  let records = simulate `Eecs in
  Alcotest.(check bool) "records exist" true (List.length records > 100);
  check_clean "eecs" (lint records)

let test_clean_campus () = check_clean "campus" (lint (simulate `Campus))

let anon_config = { Lint.default_config with anonymized = true }

let test_anonymized_clean () =
  let records = simulate `Eecs in
  let anon = Anonymize.create Anonymize.default_config in
  let anonymized = List.map (Anonymize.record anon) records in
  check_clean "anonymized eecs" (lint ~config:anon_config anonymized);
  Alcotest.(check int) "no leaks under full mapping" 0 (Anonymize.leaks anon)

let test_leak_counter () =
  let records = simulate `Eecs in
  let anon = Anonymize.create { Anonymize.default_config with map_ids = false } in
  let half = List.map (Anonymize.record anon) records in
  Alcotest.(check bool) "raw ids counted as leaks" true (Anonymize.leaks anon > 0);
  let t = lint ~config:anon_config half in
  Alcotest.(check bool) "linter flags the leaked ids" true
    (Lint.finding_count t Rule.unmapped_id > 0)

(* --- one rule, one violation, one finding --- *)

let test_unanswered_call () =
  let records =
    [ lookup 0; read 1; { (read 2) with reply_time = None; result = None }; read 3 ]
  in
  check_one "unanswered" ~rule:"unanswered-call" ~index:2 (lint records)

let test_duplicate_xid () =
  let r1 = read 1 in
  check_one "duplicate" ~rule:"duplicate-xid" ~index:2 (lint [ lookup 0; r1; r1 ])

let test_fh_use_after_remove () =
  let getattr i = mk i (Ops.Getattr file_fh) (Ok (Ops.R_attr attr)) in
  let remove i = mk i (Ops.Remove { dir = dir_fh; name = "plain" }) (Ok Ops.R_empty) in
  let records = [ lookup 0; getattr 1; remove 2; getattr 3 ] in
  check_one "use-after-remove" ~rule:"fh-use-after-remove" ~index:3 (lint records)

let test_fh_before_introduction () =
  check_one "before-introduction" ~rule:"fh-before-introduction" ~index:0 (lint [ read 0 ])

let test_offset_beyond_size () =
  let small = { attr with size = 4096L } in
  let past =
    mk 1
      (Ops.Read { fh = file_fh; offset = 8192L; count = 100 })
      (Ok (Ops.R_read { attr = Some small; count = 100; eof = true }))
  in
  check_one "beyond-size" ~rule:"offset-beyond-size" ~index:1 (lint [ lookup 0; past ])

let test_reply_before_call () =
  let bad = { (read 1) with reply_time = Some (t0 -. 1.) } in
  check_one "reply-before-call" ~rule:"reply-before-call" ~index:1 (lint [ lookup 0; bad ])

let test_non_monotonic_time () =
  let back = { (read 2) with time = t0 -. 5.; reply_time = Some (t0 -. 4.999) } in
  check_one "non-monotonic" ~rule:"non-monotonic-time" ~index:2 (lint [ lookup 0; read 1; back ])

let test_bad_io_range () =
  let bad =
    mk 1
      (Ops.Read { fh = file_fh; offset = -1L; count = 4096 })
      (Ok (Ops.R_read { attr = Some attr; count = 0; eof = false }))
  in
  check_one "bad-range" ~rule:"bad-io-range" ~index:1 (lint [ lookup 0; bad ])

let test_raw_ip () =
  let bare = mk 0 (Ops.Getattr file_fh) (Ok (Ops.R_attr { attr with uid = 10500; gid = 10600 })) in
  let leaky = { bare with client = Ip.v 192 168 1 7; uid = 10500; gid = 10600 } in
  check_one "raw-ip" ~rule:"raw-ip" ~index:0 (lint ~config:anon_config [ leaky ])

let test_unmapped_id () =
  let bare = mk 0 (Ops.Getattr file_fh) (Ok (Ops.R_attr { attr with uid = 10500; gid = 10600 })) in
  let leaky = { bare with uid = 42; gid = 10600 } in
  check_one "unmapped-id" ~rule:"unmapped-id" ~index:0 (lint ~config:anon_config [ leaky ])

let anon_lookup i name =
  let r = mk i (Ops.Lookup { dir = dir_fh; name })
      (Ok (Ops.R_lookup { fh = file_fh; obj = None; dir = None }))
  in
  { r with uid = 10500; gid = 10600 }

let test_name_residue () =
  check_one "residue" ~rule:"name-residue" ~index:0
    (lint ~config:anon_config [ anon_lookup 0 "zq9x7" ])

let test_dictionary_word () =
  (* The word suppresses the residue finding for the same name. *)
  check_one "dictionary" ~rule:"dictionary-word" ~index:0
    (lint ~config:anon_config [ anon_lookup 0 "secret-plans" ])

(* --- capture-hygiene rules from stats --- *)

let zero_stats : Capture.stats =
  {
    frames = 0; undecodable_frames = 0; corrupt_frames = 0; rpc_messages = 0;
    rpc_errors = 0; non_nfs = 0; calls = 0; replies = 0; duplicate_calls = 0;
    duplicate_replies = 0; orphan_replies = 0; lost_replies = 0; tcp_gaps = 0;
    salvaged_records = 0; skipped_pcap_bytes = 0; truncated_pcap_tails = 0;
  }

let lint_stats stats =
  let t = Lint.create Lint.default_config in
  Lint.observe_stats t stats;
  t

let test_hygiene_rules () =
  check_clean "zero stats" (lint_stats zero_stats);
  check_clean "balanced stats"
    (lint_stats { zero_stats with frames = 10; rpc_messages = 10; calls = 5; replies = 5 });
  check_one "broken conservation" ~rule:"loss-accounting" ~index:(-1)
    (lint_stats { zero_stats with calls = 5; replies = 3 });
  check_one "loss visible" ~rule:"capture-loss" ~index:(-1)
    (lint_stats { zero_stats with calls = 5; replies = 3; lost_replies = 2 });
  check_one "damage visible" ~rule:"frame-damage" ~index:(-1)
    (lint_stats { zero_stats with frames = 10; undecodable_frames = 2 });
  check_one "silent skip" ~rule:"salvage-gap" ~index:(-1)
    (lint_stats { zero_stats with skipped_pcap_bytes = 64 })

(* --- the linter as a differential oracle --- *)

let ge_plan =
  {
    Fault.none with
    drop = Fault.Gilbert_elliott { p_gb = 0.05; p_bg = 0.3; loss_good = 0.001; loss_bad = 0.3 };
  }

let truncate_plan = { Fault.none with truncate = 0.3; truncate_to = 64 }

let family_count t family =
  List.length
    (List.filter
       (fun (f : Finding.t) -> f.Finding.rule.Rule.family = family)
       (Lint.findings t))

let oracle plan =
  let d = Pipeline.eecs_degraded ~plan ~start:t0 ~stop:(t0 +. (0.15 *. hour)) () in
  Pipeline.lint_degraded d

let test_oracle_clean_side () =
  let o = oracle ge_plan in
  Alcotest.(check (list string)) "clean capture lints clean" [] (finding_ids o.Pipeline.clean_lint)

let test_oracle_ge_loss () =
  let o = oracle ge_plan in
  Alcotest.(check bool) "loss yields protocol findings" true
    (family_count o.Pipeline.degraded_lint Rule.Protocol > 0)

let test_oracle_truncation () =
  let o = oracle truncate_plan in
  Alcotest.(check bool) "truncation yields hygiene findings" true
    (family_count o.Pipeline.degraded_lint Rule.Hygiene > 0)

(* --- properties --- *)

(* Whatever the anonymizer emits must parse under the checker's grammar:
   the two are mirror images, and this pins them together. *)
let prop_anonymizer_output_passes =
  let anon = Anonymize.create Anonymize.default_config in
  QCheck.Test.make ~name:"anonymizer output passes the leak checker" ~count:500
    QCheck.(string_of_size QCheck.Gen.(0 -- 30))
    (fun s ->
      QCheck.assume (not (String.contains s '/'));
      match Anon_check.check_name Anon_check.default (Anonymize.name anon s) with
      | Anon_check.Name_ok -> true
      | Anon_check.Dictionary w ->
          QCheck.Test.fail_reportf "dictionary %S for %S" w s
      | Anon_check.Residue why -> QCheck.Test.fail_reportf "residue (%s) for %S" why s)

let clean_run n = lookup 0 :: List.init n (fun i -> read (i + 1))

let prop_dropped_reply_fires_once =
  QCheck.Test.make ~name:"dropping one reply yields exactly one unanswered-call" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (n, pick) ->
      let k = 1 + (pick mod n) in
      let records =
        List.mapi
          (fun i r ->
            if i = k then { r with Record.reply_time = None; result = None } else r)
          (clean_run n)
      in
      let t = lint records in
      match Lint.findings t with
      | [ f ] -> f.Finding.rule.Rule.id = "unanswered-call" && f.Finding.index = k
      | _ -> false)

let prop_duplicated_record_fires_once =
  QCheck.Test.make ~name:"duplicating one record yields exactly one duplicate-xid" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (n, pick) ->
      let k = 1 + (pick mod n) in
      let records =
        List.concat_map
          (fun (i, r) -> if i = k then [ r; r ] else [ r ])
          (List.mapi (fun i r -> (i, r)) (clean_run n))
      in
      let t = lint records in
      match Lint.findings t with
      | [ f ] -> f.Finding.rule.Rule.id = "duplicate-xid" && f.Finding.index = k + 1
      | _ -> false)

let () =
  Alcotest.run "nt_lint"
    [
      ( "clean",
        [
          Alcotest.test_case "eecs simulator output" `Quick test_clean_eecs;
          Alcotest.test_case "campus simulator output" `Quick test_clean_campus;
          Alcotest.test_case "anonymized round-trip" `Quick test_anonymized_clean;
          Alcotest.test_case "leak counter" `Quick test_leak_counter;
        ] );
      ( "rules",
        [
          Alcotest.test_case "unanswered-call" `Quick test_unanswered_call;
          Alcotest.test_case "duplicate-xid" `Quick test_duplicate_xid;
          Alcotest.test_case "fh-use-after-remove" `Quick test_fh_use_after_remove;
          Alcotest.test_case "fh-before-introduction" `Quick test_fh_before_introduction;
          Alcotest.test_case "offset-beyond-size" `Quick test_offset_beyond_size;
          Alcotest.test_case "reply-before-call" `Quick test_reply_before_call;
          Alcotest.test_case "non-monotonic-time" `Quick test_non_monotonic_time;
          Alcotest.test_case "bad-io-range" `Quick test_bad_io_range;
          Alcotest.test_case "raw-ip" `Quick test_raw_ip;
          Alcotest.test_case "unmapped-id" `Quick test_unmapped_id;
          Alcotest.test_case "name-residue" `Quick test_name_residue;
          Alcotest.test_case "dictionary-word" `Quick test_dictionary_word;
          Alcotest.test_case "hygiene stats" `Quick test_hygiene_rules;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean side lint-clean" `Quick test_oracle_clean_side;
          Alcotest.test_case "ge loss => protocol" `Quick test_oracle_ge_loss;
          Alcotest.test_case "truncation => hygiene" `Quick test_oracle_truncation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_anonymizer_output_passes;
          QCheck_alcotest.to_alcotest prop_dropped_reply_fires_once;
          QCheck_alcotest.to_alcotest prop_duplicated_record_fires_once;
        ] );
    ]
