(* Clean twin of Fix_tbin: the same varint decode shape with a typed
   project exception as its only failure channel, which is exactly the
   contract lib/tbin's real decoders keep. *)

exception Corrupt

let decode_uv (s : string) (pos : int) =
  if pos >= String.length s then raise Corrupt
  else Char.code (String.unsafe_get s pos) land 0x7f
