(** Trace anonymization (paper §2).

    Replaces UIDs, GIDs, IP addresses and filename components with
    arbitrary but consistent values. Following the paper:

    - mappings are random, not hashes, so a known-text attack without
      access to the traced system is impossible and traces from
      different sites cannot be cross-correlated;
    - names are anonymized by component, so common path prefixes stay
      common;
    - filename suffixes are anonymized separately from stems, so all
      files sharing [.c] share one anonymized suffix;
    - the special affixes [#…#], [trailing ~] and [,v] are preserved
      literally around the anonymized core, keeping the relationship
      between [foo], [#foo#], [foo~] and [foo,v] visible;
    - any specific name, suffix, UID or GID can be exempted
      (the paper exempts e.g. [CVS], [.inbox], [.pinerc], [lock],
      root and daemon);
    - an [omit] mode drops names/IDs/IPs entirely instead of mapping.

    Consistency holds within one anonymizer instance; two instances
    (even with equal configs but different seeds) produce unrelated
    mappings, which is the privacy point. *)

type config = {
  map_names : bool;
  map_ids : bool;
  map_ips : bool;
  omit : bool;  (** drop instead of map; overrides the three flags *)
  preserve_names : string list;  (** whole components left verbatim *)
  preserve_suffixes : string list;  (** suffixes (with dot) left verbatim *)
  preserve_uids : int list;
  preserve_gids : int list;
}

val default_config : config
(** The paper's own configuration: map everything; preserve [CVS],
    [.inbox], [.pinerc], [.cshrc], [.login], [lock], the [.lock] and
    [,v] suffixes, and UIDs/GIDs 0 and 1. *)

val omit_config : config
(** Strip all names, IDs and addresses. *)

type t

val create : ?obs:Nt_obs.Obs.t -> ?seed:int64 -> config -> t
(** [seed] defaults to an arbitrary constant; real deployments pass a
    secret. Same seed + same input order = same mapping (useful for
    tests), which is why the seed must be kept private.

    [obs] hosts [anon.leaks] and [anon.mappings{kind=...}]; defaults
    to a private always-enabled registry so {!leaks} gates keep
    working without wiring. *)

val name : t -> string -> string
(** Anonymize one path component. *)

val uid : t -> int -> int
val gid : t -> int -> int
val ip : t -> Nt_net.Ip_addr.t -> Nt_net.Ip_addr.t

val record : t -> Record.t -> Record.t
(** Anonymize every sensitive field of a record. *)

val mapped_names : t -> int
(** Number of distinct components mapped so far. *)

val leaks : t -> int
(** Number of sensitive values passed through raw because mapping for
    their kind ([map_names]/[map_ids]/[map_ips]) was disabled. Trivial
    names ([""], ["."], [".."]) and preserve-list hits are deliberate
    pass-throughs, not leaks; [omit] mode never leaks. A fully-mapping
    config keeps this at zero — release gates assert exactly that. *)
