module Obs = Nt_obs.Obs

type entry = { at : float; seq : int; thunk : unit -> unit }

(* Simple binary min-heap over (at, seq). *)
type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  c_dispatched : Obs.counter;
  g_depth : Obs.gauge;
}

let dummy = { at = 0.; seq = 0; thunk = ignore }

(* The event loop has no semantic accessors of its own, so the default
   registry is the disabled [Obs.null]: uninstrumented simulations pay
   one dead branch per event. *)
let create ?(obs = Obs.null) ?(start = 0.) () =
  {
    heap = Array.make 1024 dummy;
    size = 0;
    clock = start;
    next_seq = 0;
    c_dispatched = Obs.counter obs ~help:"simulation events fired" "engine.events_dispatched";
    g_depth = Obs.gauge obs ~help:"peak event-queue depth" "engine.queue_depth";
  }

let now t = t.clock

let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t at thunk =
  if at < t.clock then invalid_arg "Engine.schedule: time is in the past";
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { at; seq = t.next_seq; thunk };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  Obs.set_max t.g_depth (float_of_int t.size);
  sift_up t (t.size - 1)

let schedule_in t delay thunk = schedule t (t.clock +. delay) thunk

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  top

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if t.size = 0 || t.heap.(0).at > horizon then continue := false
    else begin
      let e = pop t in
      t.clock <- Float.max t.clock e.at;
      Obs.inc t.c_dispatched;
      e.thunk ()
    end
  done;
  t.clock <- Float.max t.clock horizon

let run_all t =
  while t.size > 0 do
    let e = pop t in
    t.clock <- Float.max t.clock e.at;
    Obs.inc t.c_dispatched;
    e.thunk ()
  done

let pending t = t.size
