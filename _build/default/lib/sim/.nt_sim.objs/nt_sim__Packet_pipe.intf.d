lib/sim/packet_pipe.mli: Nt_net Nt_trace
