lib/sim/record_sorter.mli: Nt_trace
