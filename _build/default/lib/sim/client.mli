(** The simulated NFS client.

    Reproduces the client behaviours the paper identifies as shaping
    server workloads:

    - {b close-to-open caching}: attributes are cached for a bounded
      TTL; opens past the TTL cost a GETATTR (the metadata storm that
      dominates EECS). Data is cached per file; a changed server mtime
      invalidates the {e whole} file (NFS's file-granularity model),
      which is what forces CAMPUS clients to re-read multi-megabyte
      inboxes after every delivery (§6.1.2);
    - {b nfsiod scheduling}: calls are handed to asynchronous I/O
      daemons whose dispatch order depends on the process scheduler, so
      wire order differs from issue order (§4.1.5). With one nfsiod
      no reordering occurs; more nfsiods reorder more;
    - {b read-ahead/pipelining}: bulk transfers issue back-to-back
      rsize/wsize chunks rather than waiting out a full RTT each.

    A client speaks one protocol version (EECS mixes v2 and v3 clients;
    CAMPUS is all v3). Sessions carry per-user credentials and their own
    clock cursor, so many sessions of one client interleave. *)

type config = {
  ip : Nt_net.Ip_addr.t;
  version : int;  (** 2 or 3 *)
  rtt : float;  (** network round-trip, seconds *)
  service_time : float;  (** server think time per call *)
  attr_ttl : float;  (** attribute cache timeout *)
  nfsiods : int;
  reorder_prob : float;  (** chance a call is delayed while the client is congested *)
  reorder_mean : float;  (** mean extra delay when delayed, seconds *)
  reorder_cap : float;  (** congestion delays are bounded by queue depth *)
  rsize : int;
  wsize : int;
  cache_capacity : int;  (** bytes of file data the client may cache (LRU) *)
}

val default_config : ip:Nt_net.Ip_addr.t -> version:int -> config

type t

val create : config -> server:Server.t -> sink:(Nt_trace.Record.t -> unit) -> rng:Nt_util.Prng.t -> t

val config : t -> config
val calls_issued : t -> int

type session

val session : t -> time:float -> uid:int -> gid:int -> session
val now : session -> float
val set_now : session -> float -> unit

(** All operations emit the wire calls they would cost on a real
    client, advance the session clock by the time those calls take, and
    return what the application would see. *)

val lookup_path : session -> string list -> Nt_nfs.Fh.t option
(** Resolve from the root, using the directory-name cache; misses cost
    LOOKUP calls. *)

val getattr : session -> Nt_nfs.Fh.t -> Nt_nfs.Types.fattr option
(** Unconditional wire GETATTR (cache refresh). *)

val open_file : session -> Nt_nfs.Fh.t -> [ `Cached | `Changed | `Error ]
(** Close-to-open open: revalidate attributes (GETATTR when the cache
    has expired, plus ACCESS for v3), invalidate cached data on mtime
    change. [`Cached] means cached data is still usable. *)

val read : session -> Nt_nfs.Fh.t -> offset:int64 -> len:int -> int
(** Application read. Satisfied from cache silently when valid;
    otherwise issues chunked READ calls and caches. Returns bytes the
    application got. *)

val read_whole : session -> Nt_nfs.Fh.t -> int
(** Read a file beginning to end (size from cached attributes). *)

val write : session -> Nt_nfs.Fh.t -> offset:int64 -> len:int -> sync:bool -> unit
(** Chunked WRITE calls ([sync] = FILE_SYNC, else UNSTABLE + COMMIT on
    v3). *)

val append : session -> Nt_nfs.Fh.t -> len:int -> sync:bool -> unit
(** Write at current EOF (per cached size, refreshing if stale). *)

val truncate : session -> Nt_nfs.Fh.t -> int64 -> unit
val create_file : session -> dir:Nt_nfs.Fh.t -> name:string -> ?exclusive:bool -> mode:int -> unit -> Nt_nfs.Fh.t option
val mkdir : session -> dir:Nt_nfs.Fh.t -> name:string -> mode:int -> Nt_nfs.Fh.t option
val symlink : session -> dir:Nt_nfs.Fh.t -> name:string -> target:string -> unit
val remove : session -> dir:Nt_nfs.Fh.t -> name:string -> unit
val rmdir : session -> dir:Nt_nfs.Fh.t -> name:string -> unit
val rename : session -> from_dir:Nt_nfs.Fh.t -> from_name:string -> to_dir:Nt_nfs.Fh.t -> to_name:string -> unit
val readdir : session -> Nt_nfs.Fh.t -> Nt_nfs.Ops.dir_entry list
(** Full listing (paginated READDIR / READDIRPLUS on v3). *)

val cached_size : session -> Nt_nfs.Fh.t -> int64 option
(** Size per the attribute cache, without wire traffic. *)

val invalidate : t -> Nt_nfs.Fh.t -> unit
(** Drop cached state for a handle (e.g. after local truncation). *)
