(* Library root: the codec surface lives in Tbin; Varint and Frame are
   exposed for the round-trip/fuzz test batteries. *)

module Varint = Varint
module Frame = Frame
include Tbin
