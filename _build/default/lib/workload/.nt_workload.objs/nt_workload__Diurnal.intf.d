lib/workload/diurnal.mli:
