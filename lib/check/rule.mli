(** Declarative registry of ntcheck's typedtree rules.

    Mirrors [Nt_lint.Rule]: every rule has a stable id, a family, a
    fixed severity and a one-line doc string; the engine consults the
    registry for enable/disable filtering and the CLI prints it for
    [--rules]. *)

type severity = Info | Warn | Error

val severity_to_string : severity -> string
val severity_rank : severity -> int

type family =
  | Domain_safety
  | Merge_law
  | Decode_purity
  | Hygiene
  | Alloc
  | Bound
  | Footprint
  | Exn_flow
  | Codec_drift
  | Config

val family_to_string : family -> string

type t = { id : string; family : family; severity : severity; doc : string }

val dom_top_mutable : t
val dom_mutable_record : t
val merge_law_missing : t
val decode_raise : t
val decode_partial_match : t
val lib_stdout : t
val obj_magic : t
val marshal_untrusted : t
val marshal_output : t
val alloc_hot_string : t
val alloc_hot_format : t
val alloc_hot_list : t
val alloc_hot_closure : t
val alloc_poly_compare : t
val bound_table : t
val bound_list : t
val footprint_missing : t
val exn_escape : t
val codec_arm_missing : t
val format_literal_drift : t
val format_unregistered : t
val config_drift : t

val all : t list
(** Registry order is the [--rules] listing order. *)

val find : string -> t option
