(** nttb/1: the compact binary trace container.

    A tbin stream is a 7-byte magic ["nttb/1\n"] followed by
    self-contained frames. Each frame opens with a 4-byte sync marker
    (F5 4E 54 B1), a flags byte (bit 0: payload RLE-compressed), and
    three little-endian u32s — uncompressed payload length, stored
    payload length, Adler-32 of the uncompressed payload. The payload
    interns every string the frame's records mention (file handles,
    names, symlink targets) into an atom dictionary, then varint-packs
    the records themselves: times as XOR-delta float bit patterns,
    ints zigzag-coded, atoms as dictionary indices (see DESIGN.md
    section 15 for the byte-level grammar).

    Unlike the text format, the record codec is lossless for every
    field the in-memory {!Nt_trace.Record.t} carries — full [fattr]s,
    readdir entry lists, sattr masks — so
    [decode (encode r) = r] structurally.

    The reader follows the {!Nt_trace.Capture} discipline: decode
    failures are counted, never raised. A damaged frame is charged to
    exactly one labeled [tbin.decode_failure] counter and the stream
    resynchronises on the next sync marker; frames are independent
    (per-frame dictionaries, per-frame time deltas), so corruption
    never propagates past the frame that absorbed it. *)

val magic : string
(** ["nttb/1\n"], the 7-byte stream header. *)

val sync : string
(** The 4-byte frame marker the reader rescans for after damage. *)

val max_payload : int
(** Per-frame payload bound (16 MiB); larger claimed lengths are
    treated as corruption. *)

type stats = {
  frames : int;  (** frames decoded clean *)
  records : int;  (** records delivered *)
  skipped_bytes : int;  (** bytes passed over while resynchronising *)
  missing_header : int;  (** streams that did not open with {!magic} *)
  bad_frames : int;  (** header-bounds, checksum or decompression failures *)
  bad_records : int;  (** checksummed frames with undecodable records *)
  lost_sync : int;  (** spontaneous resync episodes *)
  truncated_tails : int;  (** partial frame bytes left at end of stream *)
}

val failures : stats -> int
(** Sum of the five failure classes — every decode failure lands in
    exactly one of them. *)

val stats_to_string : stats -> string

(** {1 Writing} *)

module Writer : sig
  type t

  val create : ?frame_records:int -> (string -> unit) -> t
  (** [create sink] emits {!magic} immediately, then one frame per
      [frame_records] records (default 4096, clamped to >= 1; a frame
      also closes early when its payload reaches 1 MiB). *)

  val add : t -> Nt_trace.Record.t -> unit

  val flush : t -> unit
  (** Close the open frame, if any; the stream stays appendable. *)

  val close : t -> unit
  (** {!flush}; the writer must not be used afterwards. *)

  val written : t -> int
  (** Records accepted so far. *)
end

val write_channel : ?frame_records:int -> out_channel -> Nt_trace.Record.t Seq.t -> int
(** Write a whole stream; returns the record count. *)

val encode_string : ?frame_records:int -> Nt_trace.Record.t list -> string

(** {1 Reading} *)

module Decoder : sig
  (** Incremental push decoder: feed byte chunks of any size (one byte
      at a time works), pull decoded records. Failures are counted on
      the registry ([tbin.*] namespace), never raised. *)

  type t

  val create : ?obs:Nt_obs.Obs.t -> unit -> t

  val feed : t -> string -> unit

  val next : t -> (Nt_trace.Record.t * int64) option
  (** Next record plus its replay offset: the end of its frame for the
      last record of a frame, the frame's start for earlier ones — so
      resuming a tail from the reported offset is at-least-once at
      frame granularity. *)

  val pull : t -> Nt_trace.Record.t option
  (** {!next} without the offset. *)

  val finish : t -> unit
  (** Mark end of stream: leftover partial-frame bytes are counted as
      a truncated tail. Idempotent. *)

  val reset_at : t -> int64 -> unit
  (** Forget buffered bytes and queued records and resume as if the
      stream position were [off] (0 re-expects the magic). Counters
      keep accumulating. *)

  val consumed : t -> int64
  (** Stream offset of the next unparsed byte. *)

  val stats : t -> stats

  val footprint : t -> Nt_obs.Footprint.t
  (** Buffered-bytes + queued-records estimate for the state-footprint
      gauges. *)
end

val iter_channel : ?obs:Nt_obs.Obs.t -> in_channel -> (Nt_trace.Record.t -> unit) -> stats
(** Stream-decode a channel without materializing the record set —
    the out-of-core path. *)

val read_channel : ?obs:Nt_obs.Obs.t -> in_channel -> stats * Nt_trace.Record.t list
val decode_string : ?obs:Nt_obs.Obs.t -> string -> stats * Nt_trace.Record.t list
