(* Decode-path purity: inside the wire-decoding libraries every failure
   must travel a typed channel the capture boundary counts (PR 1's
   invariant), never an untyped stdlib exception that would escape the
   accounting and kill the binary.

   A function is exempt when its final return type is result or option:
   there the type system already forces callers to face failure.
   Raising a *project-declared* exception (Decode.Error, Pcap.Bad_format,
   ...) is the typed channel and is allowed; what gets flagged is
   failwith / invalid_arg / assert false / raise of a stdlib exception,
   plus partial matches.  A raise lexically inside [try ... with] in the
   same function is treated as local control flow and allowed. *)

let stdlib_exceptions =
  [
    "Failure";
    "Invalid_argument";
    "Not_found";
    "Exit";
    "End_of_file";
    "Division_by_zero";
    "Assert_failure";
    "Match_failure";
    "Stack_overflow";
    "Out_of_memory";
  ]

let rec final_return ty =
  match Types.get_desc ty with Types.Tarrow (_, _, r, _) -> final_return r | _ -> ty

let returns_result_or_option ty =
  match Types.get_desc (final_return ty) with
  | Types.Tconstr (p, _, _) ->
      let n = Syntax.norm_path p in
      n = "result" || n = "option" || n = "Result.t" || n = "Either.t"
  | _ -> false

let untyped_raise (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      match Syntax.norm_path p with
      | "failwith" -> Some "failwith"
      | "invalid_arg" -> Some "invalid_arg"
      | "raise" | "raise_notrace" -> (
          match args with
          | (_, Some { exp_desc = Texp_construct (_, cd, _); _ }) :: _ ->
              let n = Syntax.norm_name cd.cstr_name in
              if List.mem n stdlib_exceptions then Some ("raise " ^ n) else None
          | _ -> None)
      | _ -> None)
  | _ -> None

let is_assert_false (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_assert ({ exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, []); _ }, _) ->
      true
  | _ -> false

let check_body (sink : Finding.sink) ~allows ~fn_name (body : Typedtree.expression) =
  let report rule loc detail =
    if Syntax.allowed allows rule then sink.allow rule else sink.emit rule loc detail
  in
  let try_depth = ref 0 in
  let expr sub (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_try (inner, handlers) ->
        incr try_depth;
        sub.Tast_iterator.expr sub inner;
        decr try_depth;
        List.iter (sub.Tast_iterator.case sub) handlers
    | Texp_match (_, _, Typedtree.Partial) ->
        report Rule.decode_partial_match e.exp_loc
          (Printf.sprintf "partial match in %s (add the missing cases or return a result)"
             fn_name);
        Tast_iterator.default_iterator.expr sub e
    | Texp_function { partial = Typedtree.Partial; _ } ->
        report Rule.decode_partial_match e.exp_loc
          (Printf.sprintf "partial function in %s (add the missing cases or return a result)"
             fn_name);
        Tast_iterator.default_iterator.expr sub e
    | _ ->
        (if is_assert_false e then
           (if !try_depth = 0 then
              report Rule.decode_raise e.exp_loc
                (Printf.sprintf "assert false in %s (count the failure instead)" fn_name))
         else
           match untyped_raise e with
           | Some what when !try_depth = 0 ->
               report Rule.decode_raise e.exp_loc
                 (Printf.sprintf "%s in %s (use the typed failure channel or return a \
                                  result)"
                    what fn_name)
           | _ -> ());
        Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body

let check_binding sink (vb : Typedtree.value_binding) =
  if not (returns_result_or_option vb.vb_expr.exp_type) then
    let allows = Syntax.allows vb.vb_attributes in
    let fn_name =
      match vb.vb_pat.pat_desc with Tpat_var (id, _) -> Ident.name id | _ -> "<binding>"
    in
    check_body sink ~allows ~fn_name vb.vb_expr

let rec check_structure sink (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (check_binding sink) vbs
      | Tstr_module mb -> check_module_expr sink mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun (mb : Typedtree.module_binding) -> check_module_expr sink mb.mb_expr) mbs
      | Tstr_include incl -> check_module_expr sink incl.incl_mod
      | _ -> ())
    str.str_items

and check_module_expr sink (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> check_structure sink str
  | Tmod_constraint (me, _, _, _) -> check_module_expr sink me
  | _ -> ()

let check sink (u : Loader.unit_info) =
  match u.payload with Loader.Impl str -> check_structure sink str | Loader.Intf _ -> ()
