module Record = Nt_trace.Record

type config = {
  window_s : float;
  windows : int;
  caps : Win.caps;
  summary_cap : Win.caps;
}

let default_config =
  let c = Win.default_caps in
  {
    window_s = 10.;
    windows = 30;
    caps = c;
    summary_cap =
      {
        Win.client_cap = 4 * c.Win.client_cap;
        uid_cap = 4 * c.Win.uid_cap;
        fs_cap = 4 * c.Win.fs_cap;
        proc_cap = c.Win.proc_cap;
      };
  }

type t = {
  config : config;
  mutable cur_start : float;  (* nan until anchored *)
  mutable wins : (float * Win.t) list;  (* newest first, length <= windows *)
  summary : Win.t;
  mutable observed : int;
  mutable rotations : int;
  mutable evicted_windows : int;
  mutable late : int;
  mutable backward : int;
  mutable forward_jumps : int;
  mutable max_seen : float;
}

let create config =
  if config.window_s <= 0. then invalid_arg "Ring.create: window_s <= 0";
  if config.windows < 1 then invalid_arg "Ring.create: windows < 1";
  {
    config;
    cur_start = Float.nan;
    wins = [];
    summary = Win.create ~caps:config.summary_cap ();
    observed = 0;
    rotations = 0;
    evicted_windows = 0;
    late = 0;
    backward = 0;
    forward_jumps = 0;
    max_seen = neg_infinity;
  }
[@@nt.raise_ok
  "window geometry is operator configuration validated at construction, not a runtime \
   condition"]

let anchored t = not (Float.is_nan t.cur_start)
let align t time = Float.of_int (int_of_float (time /. t.config.window_s)) *. t.config.window_s

let spill t win =
  ignore (Win.merge t.summary win);
  Win.compact t.summary;
  t.evicted_windows <- t.evicted_windows + 1

(* Advance the ring by one window. The window scrolling off the back
   spills into the summary. *)
let rotate_once t =
  t.rotations <- t.rotations + 1;
  t.cur_start <- t.cur_start +. t.config.window_s;
  let fresh = Win.create ~caps:t.config.caps () in
  let wins = (t.cur_start, fresh) :: t.wins in
  match List.rev wins with
  | (_, oldest) :: kept_rev when List.length wins > t.config.windows ->
      spill t oldest;
      t.wins <- List.rev kept_rev
  | _ -> t.wins <- wins

let anchor t time =
  t.cur_start <- align t time;
  t.wins <- [ (t.cur_start, Win.create ~caps:t.config.caps ()) ]

let observe t (r : Record.t) =
  let time = r.Record.time in
  if not (anchored t) then anchor t time;
  if time < t.max_seen then t.backward <- t.backward + 1;
  if time > t.max_seen then t.max_seen <- time;
  if time >= t.cur_start +. t.config.window_s then begin
    (* Forward: rotate up to the covering window. A jump clearing the
       whole ring flushes live windows and re-anchors instead. *)
    let target = align t time in
    let steps = (target -. t.cur_start) /. t.config.window_s in
    if steps > Float.of_int t.config.windows then begin
      t.forward_jumps <- t.forward_jumps + 1;
      List.iter (fun (_, w) -> spill t w) t.wins;
      anchor t time
    end
    else
      while t.cur_start < target do
        rotate_once t
      done
  end;
  (* Route to the covering window: current, a retained older one, or
     the summary once it has scrolled off. *)
  (match t.wins with
  | (start, win) :: _ when time >= start -> Win.observe win r
  | _ -> (
      t.late <- t.late + 1;
      match
        List.find_opt (fun (start, _) -> time >= start && time < start +. t.config.window_s) t.wins
      with
      | Some (_, win) -> Win.observe win r
      | None ->
          Win.observe t.summary r;
          Win.compact t.summary));
  t.observed <- t.observed + 1

let force_rotate t = if anchored t then rotate_once t

let newest t = if t.max_seen = neg_infinity then None else Some t.max_seen
let current t = match t.wins with [] -> None | w :: _ -> Some w
let live t = t.wins
let summary t = t.summary

let totals t =
  let acc = Win.create ~caps:t.config.summary_cap () in
  let ws = List.map snd t.wins @ [ t.summary ] in
  List.iter
    (fun w ->
      match Win.of_lines ~caps:t.config.summary_cap (Win.to_lines w) with
      | Ok copy -> ignore (Win.merge acc copy)
      | Error _ -> assert false)
    ws;
  acc
[@@nt.raise_ok
  "round-tripping an in-memory window through its own line format cannot fail; the assert \
   guards the copy trick, not an input"]

let observed t = t.observed
let rotations t = t.rotations
let evicted_windows t = t.evicted_windows
let late t = t.late
let backward t = t.backward
let forward_jumps t = t.forward_jumps

let evictions t =
  List.map
    (fun table ->
      let n =
        List.fold_left (fun acc (_, w) -> acc + Win.evictions w table) 0 t.wins
        + Win.evictions t.summary table
      in
      (table, n))
    Win.all_tables

(* --- checkpoint serialization --- *)

let f2s = Printf.sprintf "%h"

let to_lines t =
  let b = ref [] in
  let push s = b := s :: !b in
  push
    (Printf.sprintf "ring cur_start=%s max_seen=%s observed=%d rotations=%d evicted=%d late=%d backward=%d jumps=%d windows=%d"
       (f2s t.cur_start) (f2s t.max_seen) t.observed t.rotations t.evicted_windows t.late
       t.backward t.forward_jumps (List.length t.wins));
  List.iter
    (fun (start, w) ->
      let lines = Win.to_lines w in
      push (Printf.sprintf "window start=%s lines=%d" (f2s start) (List.length lines));
      List.iter push lines)
    (List.rev t.wins);
  let slines = Win.to_lines t.summary in
  push (Printf.sprintf "summary lines=%d" (List.length slines));
  List.iter push slines;
  List.rev !b

let kv_int kvs k =
  match List.assoc_opt k kvs with
  | Some v -> ( match int_of_string_opt v with Some i -> Ok i | None -> Error ("bad int " ^ k))
  | None -> Error ("missing field " ^ k)

let kv_float kvs k =
  match List.assoc_opt k kvs with
  | Some v -> (
      match float_of_string_opt v with Some f -> Ok f | None -> Error ("bad float " ^ k))
  | None -> Error ("missing field " ^ k)

let parse_kvs tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i -> Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None)
    tokens

let of_lines config lines =
  let ( let* ) = Result.bind in
  let take n lines =
    let rec go n acc = function
      | rest when n = 0 -> Ok (List.rev acc, rest)
      | [] -> Error "truncated ring section"
      | l :: rest -> go (n - 1) (l :: acc) rest
    in
    go n [] lines
  in
  let win_of ~caps body =
    let* w = Win.of_lines ~caps body in
    Win.compact w;
    Ok w
  in
  match lines with
  | [] -> Error "empty ring section"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | "ring" :: kv_toks ->
          let kvs = parse_kvs kv_toks in
          let* cur_start = kv_float kvs "cur_start" in
          let* max_seen = kv_float kvs "max_seen" in
          let* observed = kv_int kvs "observed" in
          let* rotations = kv_int kvs "rotations" in
          let* evicted_windows = kv_int kvs "evicted" in
          let* late = kv_int kvs "late" in
          let* backward = kv_int kvs "backward" in
          let* forward_jumps = kv_int kvs "jumps" in
          let* nwins = kv_int kvs "windows" in
          let t = create config in
          t.cur_start <- cur_start;
          t.max_seen <- max_seen;
          t.observed <- observed;
          t.rotations <- rotations;
          t.evicted_windows <- evicted_windows;
          t.late <- late;
          t.backward <- backward;
          t.forward_jumps <- forward_jumps;
          let rec read_windows k lines acc =
            if k = 0 then Ok (acc, lines)
            else
              match lines with
              | [] -> Error "missing window header"
              | wh :: rest -> (
                  match String.split_on_char ' ' wh with
                  | [ "window"; s; l ] ->
                      let kvs = parse_kvs [ s; l ] in
                      let* start = kv_float kvs "start" in
                      let* n = kv_int kvs "lines" in
                      let* body, rest = take n rest in
                      let* w = win_of ~caps:config.caps body in
                      read_windows (k - 1) rest ((start, w) :: acc)
                  | _ -> Error ("expected window header, got: " ^ wh))
          in
          let* wins_newest_first, rest = read_windows nwins rest [] in
          t.wins <- wins_newest_first;
          (match rest with
          | sh :: srest -> (
              match String.split_on_char ' ' sh with
              | [ "summary"; l ] -> (
                  let kvs = parse_kvs [ l ] in
                  let* n = kv_int kvs "lines" in
                  let* body, rest' = take n srest in
                  let* s = win_of ~caps:config.summary_cap body in
                  ignore (Win.merge t.summary s);
                  match rest' with
                  | [] -> Ok t
                  | l :: _ -> Error ("trailing ring line: " ^ l))
              | _ -> Error ("expected summary header, got: " ^ sh))
          | [] -> Error "missing summary section")
      | _ -> Error ("expected ring header, got: " ^ header))

let footprint t =
  List.fold_left
    (fun acc (_, w) -> Nt_obs.Footprint.add acc (Win.footprint w))
    (Nt_obs.Footprint.add (Nt_obs.Footprint.v ~cards:0 ~words:16) (Win.footprint t.summary))
    t.wins
