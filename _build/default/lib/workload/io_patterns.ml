module Prng = Nt_util.Prng
module Dist = Nt_util.Dist
module Client = Nt_sim.Client

let seeky_write rng s fh ~total ~seg_min ~seg_max ~jump_prob ~sync =
  assert (seg_min > 0 && seg_max >= seg_min);
  (* Partition [0, total) into segments, then perturb the write order:
     each segment is written exactly once (same bytes and op count as a
     sequential rewrite), but segment boundaries seek forward or
     backward the way a mail client's copy-compaction or a linker's
     section emission does. *)
  (* Segments are 8 KB-block aligned so adjacent segments never share
     a block: every block is written exactly once per rewrite. *)
  let block = 8192 in
  let round_up v = (v + block - 1) / block * block in
  let rec partition acc off =
    if off >= total then List.rev acc
    else begin
      let len =
        min (round_up (seg_min + Prng.int rng (seg_max - seg_min + 1))) (total - off)
      in
      partition ((off, len) :: acc) (off + len)
    end
  in
  let segments = Array.of_list (partition [] 0) in
  let n = Array.length segments in
  for i = 0 to n - 2 do
    if Prng.chance rng jump_prob then begin
      let j = min (n - 1) (i + 1 + Prng.int rng 30) in
      let tmp = segments.(i) in
      segments.(i) <- segments.(j);
      segments.(j) <- tmp
    end
  done;
  Array.iter
    (fun (off, len) -> Client.write s fh ~offset:(Int64.of_int off) ~len ~sync)
    segments

let seeky_read rng s fh ~file_size ~stretches ~stretch_min ~stretch_max ~pause =
  let lo, hi = pause in
  for _ = 1 to stretches do
    if file_size > stretch_min then begin
      let len = stretch_min + Prng.int rng (max 1 (stretch_max - stretch_min)) in
      let off = Prng.int rng (max 1 (file_size - len)) in
      ignore (Client.read s fh ~offset:(Int64.of_int off) ~len:(min len (file_size - off)))
    end;
    Client.set_now s (Client.now s +. Dist.uniform rng ~lo ~hi)
  done
