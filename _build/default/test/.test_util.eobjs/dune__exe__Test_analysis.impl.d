test/test_analysis.ml: Alcotest Array Float Fun Int64 List Nt_analysis Nt_net Nt_nfs Nt_trace Nt_util Printf
