(** Hygiene rules for lib/ units: no stdout printing, no Obj.magic, no
    Marshal.  The caller decides which units are in lib scope. *)

val check : Finding.sink -> Loader.unit_info -> unit
