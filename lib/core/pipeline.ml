module Engine = Nt_sim.Engine
module Server = Nt_sim.Server
module Record_sorter = Nt_sim.Record_sorter
module Packet_pipe = Nt_sim.Packet_pipe
module Email = Nt_workload.Email
module Research = Nt_workload.Research
module Ip_addr = Nt_net.Ip_addr

type run_stats = {
  records : int;
  sessions : int;
  deliveries : int;
  compiles : int;
  server_calls : int;
}

let campus_server_ip = Ip_addr.v 10 1 1 2 (* "home02" *)
let eecs_server_ip = Ip_addr.v 10 2 1 2

let simulate_campus ?(config = Email.default_config) ~start ~stop ~sink () =
  let engine = Engine.create ~start:(start -. 1.) () in
  let server = Server.create ~fsid:2 ~ip:campus_server_ip () in
  let count = ref 0 in
  let sorter =
    Record_sorter.create (fun r ->
        incr count;
        sink r)
  in
  let wl = Email.setup config ~engine ~server ~sink:(Record_sorter.push sorter) in
  Email.schedule wl ~start ~stop;
  Engine.run_until engine stop;
  Record_sorter.flush sorter;
  {
    records = !count;
    sessions = Email.sessions_started wl;
    deliveries = Email.deliveries_made wl;
    compiles = 0;
    server_calls = Server.calls_handled server;
  }

let simulate_eecs ?(config = Research.default_config) ~start ~stop ~sink () =
  let engine = Engine.create ~start:(start -. 1.) () in
  let server = Server.create ~fsid:3 ~ip:eecs_server_ip () in
  let count = ref 0 in
  let sorter =
    Record_sorter.create (fun r ->
        incr count;
        sink r)
  in
  let wl = Research.setup config ~engine ~server ~sink:(Record_sorter.push sorter) in
  Research.schedule wl ~start ~stop;
  Engine.run_until engine stop;
  Record_sorter.flush sorter;
  {
    records = !count;
    sessions = 0;
    deliveries = 0;
    compiles = Research.compiles_run wl;
    server_calls = Server.calls_handled server;
  }

type pcap_stats = {
  run : run_stats;
  packets_written : int;
  packets_dropped : int;
}

let to_pcap ~fault ~seed ~transport ~monitor_loss ~writer ~simulate =
  let pipe = Packet_pipe.create ~monitor_loss ?fault ?seed ~transport ~writer () in
  let run = simulate ~sink:(Packet_pipe.push pipe) in
  Packet_pipe.finish pipe;
  {
    run;
    packets_written = Packet_pipe.packets_written pipe;
    packets_dropped = Packet_pipe.packets_dropped pipe;
  }

let campus_to_pcap ?config ?fault ?seed ?(monitor_loss = 0.) ~start ~stop ~writer () =
  to_pcap ~fault ~seed ~transport:Packet_pipe.Tcp_transport ~monitor_loss ~writer
    ~simulate:(fun ~sink -> simulate_campus ?config ~start ~stop ~sink ())

let eecs_to_pcap ?config ?fault ?seed ?(monitor_loss = 0.) ~start ~stop ~writer () =
  to_pcap ~fault ~seed ~transport:Packet_pipe.Udp_transport ~monitor_loss ~writer
    ~simulate:(fun ~sink -> simulate_eecs ?config ~start ~stop ~sink ())

let capture_pcap ?salvage pcap_bytes =
  let reader = Nt_net.Pcap.reader_of_string ?salvage pcap_bytes in
  let capture = Nt_trace.Capture.create () in
  Nt_trace.Capture.feed_pcap capture reader;
  Nt_trace.Capture.finish capture

(* --- degraded-vs-clean differential harness --- *)

module Fault = Nt_sim.Fault

type degraded_run = {
  simulated : int;
  clean : Nt_trace.Capture.stats;
  degraded : Nt_trace.Capture.stats;
  faults : Fault.counts;
  clean_records : Nt_trace.Record.t list;
  degraded_records : Nt_trace.Record.t list;
}

let run_degraded ?(seed = 2003L) ?(mangle_flips = 0) ~transport ~plan records =
  let through plan =
    let buf = Buffer.create (1 lsl 20) in
    let writer = Nt_net.Pcap.writer_to_buffer buf in
    let pipe = Packet_pipe.create ~fault:plan ~seed ~transport ~writer () in
    List.iter (Packet_pipe.push pipe) records;
    Packet_pipe.finish pipe;
    (Buffer.contents buf, Packet_pipe.faults pipe)
  in
  let clean_pcap, _ = through Fault.none in
  let degraded_pcap, faults = through plan in
  let degraded_pcap, _ =
    if mangle_flips > 0 then Fault.mangle_pcap ~seed ~flips:mangle_flips degraded_pcap
    else (degraded_pcap, 0)
  in
  let clean, clean_records = capture_pcap clean_pcap in
  let degraded, degraded_records = capture_pcap ~salvage:true degraded_pcap in
  { simulated = List.length records; clean; degraded; faults; clean_records; degraded_records }

let collect_records simulate =
  let acc = ref [] in
  let stats = simulate ~sink:(fun r -> acc := r :: !acc) in
  (stats, List.rev !acc)

(* --- lint hooks: the linter as a differential oracle --- *)

let lint_records ?(config = Nt_lint.Engine.default_config) ?stats records =
  Nt_lint.Engine.run ?stats config (List.to_seq records)

type lint_oracle = { clean_lint : Nt_lint.Engine.t; degraded_lint : Nt_lint.Engine.t }

let lint_degraded ?config (d : degraded_run) =
  {
    clean_lint = lint_records ?config ~stats:d.clean d.clean_records;
    degraded_lint = lint_records ?config ~stats:d.degraded d.degraded_records;
  }

let campus_degraded ?config ?seed ?mangle_flips ~plan ~start ~stop () =
  let _, records =
    collect_records (fun ~sink -> simulate_campus ?config ~start ~stop ~sink ())
  in
  run_degraded ?seed ?mangle_flips ~transport:Packet_pipe.Tcp_transport ~plan records

let eecs_degraded ?config ?seed ?mangle_flips ~plan ~start ~stop () =
  let _, records =
    collect_records (fun ~sink -> simulate_eecs ?config ~start ~stop ~sink ())
  in
  run_degraded ?seed ?mangle_flips ~transport:Packet_pipe.Udp_transport ~plan records
