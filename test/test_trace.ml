(* Trace layer tests: record serialization, path reconstruction, the
   capture engine (over real pcap bytes) and the anonymizer. *)

module Record = Nt_trace.Record
module Fh_map = Nt_trace.Fh_map
module Capture = Nt_trace.Capture
module Anonymize = Nt_trace.Anonymize
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Ip = Nt_net.Ip_addr
module Pcap = Nt_net.Pcap
module Packet_pipe = Nt_sim.Packet_pipe

(* Tiny wrapper so the fuzz property below can call the full pipeline
   and catch only the exceptions it is allowed to see. *)
module Pipeline_capture = struct
  let run pcap_bytes =
    let cap = Capture.create () in
    Capture.feed_pcap cap (Pcap.reader_of_string pcap_bytes);
    fst (Capture.finish cap)
end

let dir_fh = Fh.make ~fsid:1 ~fileid:2
let file_fh = Fh.make ~fsid:1 ~fileid:3

let base_record : Record.t =
  {
    time = 1003622400.123456;
    reply_time = Some 1003622400.125;
    client = Ip.v 10 1 0 20;
    server = Ip.v 10 1 1 2;
    version = 3;
    xid = 0xABCD1234;
    uid = 1042;
    gid = 100;
    call = Ops.Read { fh = file_fh; offset = 8192L; count = 8192 };
    result = Some (Ok (Ops.R_read { attr = None; count = 8192; eof = false }));
  }

(* --- record line format --- *)

let roundtrip r =
  match Record.of_line (Record.to_line r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "parse failed: %s on %s" e (Record.to_line r)

let test_line_roundtrip_read () =
  let r' = roundtrip base_record in
  Alcotest.(check (float 1e-5) "time") base_record.time r'.time;
  Alcotest.(check int) "xid" base_record.xid r'.xid;
  Alcotest.(check int) "uid" base_record.uid r'.uid;
  Alcotest.(check bool) "client ip" true (r'.client = base_record.client);
  Alcotest.(check (option int64)) "offset" (Some 8192L) (Record.offset r');
  Alcotest.(check (option int)) "count" (Some 8192) (Record.count r')

let test_line_roundtrip_all_procs () =
  let cases =
    [
      Ops.Null;
      Ops.Getattr file_fh;
      Ops.Setattr { fh = file_fh; attrs = { Types.empty_sattr with set_size = Some 0L } };
      Ops.Lookup { dir = dir_fh; name = "plain" };
      Ops.Access { fh = file_fh; access = 63 };
      Ops.Readlink file_fh;
      Ops.Write { fh = file_fh; offset = 0L; count = 99; stable = Types.Unstable };
      Ops.Create { dir = dir_fh; name = ".inbox.lock"; mode = 0o600; exclusive = true };
      Ops.Mkdir { dir = dir_fh; name = "d"; mode = 0o755 };
      Ops.Symlink { dir = dir_fh; name = "s"; target = "a/b" };
      Ops.Mknod { dir = dir_fh; name = "n" };
      Ops.Remove { dir = dir_fh; name = "gone" };
      Ops.Rmdir { dir = dir_fh; name = "gonedir" };
      Ops.Rename { from_dir = dir_fh; from_name = "x"; to_dir = dir_fh; to_name = "y" };
      Ops.Link { fh = file_fh; to_dir = dir_fh; to_name = "h" };
      Ops.Readdir { dir = dir_fh; cookie = 3L; count = 1024 };
      Ops.Readdirplus { dir = dir_fh; cookie = 0L; count = 2048 };
      Ops.Statfs file_fh;
      Ops.Fsinfo file_fh;
      Ops.Pathconf file_fh;
      Ops.Commit { fh = file_fh; offset = 0L; count = 8192 };
    ]
  in
  List.iter
    (fun call ->
      let r = { base_record with call; result = None; reply_time = None } in
      let r' = roundtrip r in
      Alcotest.(check bool)
        (Nt_nfs.Proc.to_string (Record.proc r) ^ " proc survives")
        true
        (Record.proc r' = Record.proc r);
      Alcotest.(check bool) "name survives" true (Record.name r' = Record.name r);
      Alcotest.(check bool) "fh survives" true
        (match (Record.fh r', Record.fh r) with
        | Some a, Some b -> Fh.equal a b
        | None, None -> true
        | _ -> false))
    cases

let test_line_escaping () =
  let nasty = "has space|pipe=eq%pct\tand tab" in
  let r = { base_record with call = Ops.Lookup { dir = dir_fh; name = nasty } } in
  let r' = roundtrip r in
  Alcotest.(check (option string)) "nasty name survives" (Some nasty) (Record.name r')

let test_line_lost_reply () =
  let r = { base_record with reply_time = None; result = None } in
  let r' = roundtrip r in
  Alcotest.(check bool) "no reply time" true (r'.reply_time = None);
  Alcotest.(check bool) "no result" true (r'.result = None);
  Alcotest.(check bool) "not ok" true (not (Record.is_ok r'))

let test_line_error_result () =
  let r = { base_record with result = Some (Error Types.Err_stale) } in
  let r' = roundtrip r in
  Alcotest.(check bool) "stale survives" true (Record.status r' = Some Types.Err_stale)

let test_line_bad_input () =
  Alcotest.(check bool) "junk rejected" true (Result.is_error (Record.of_line "not a record"));
  Alcotest.(check bool) "empty rejected" true (Result.is_error (Record.of_line ""))

let test_io_bytes () =
  Alcotest.(check int) "read bytes from reply" 8192 (Record.io_bytes base_record);
  let lost = { base_record with result = None } in
  Alcotest.(check int) "falls back to call count" 8192 (Record.io_bytes lost);
  let failed = { base_record with result = Some (Error Types.Err_io) } in
  Alcotest.(check int) "failed IO moves nothing" 0 (Record.io_bytes failed)

let test_channel_roundtrip () =
  let path = Filename.temp_file "nt_trace" ".trace" in
  let records = List.init 20 (fun i -> { base_record with xid = i }) in
  let oc = open_out path in
  let n = Record.write_channel oc (List.to_seq records) in
  close_out oc;
  Alcotest.(check int) "wrote all" 20 n;
  let ic = open_in path in
  let back = List.of_seq (Record.read_channel ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "read all" 20 (List.length back);
  List.iteri (fun i r -> Alcotest.(check int) "xids in order" i r.Record.xid) back

(* --- fh map --- *)

let lookup_record ~dir ~name ~child =
  {
    base_record with
    call = Ops.Lookup { dir; name };
    result = Some (Ok (Ops.R_lookup { fh = child; obj = None; dir = None }));
  }

let test_fh_map_paths () =
  let m = Fh_map.create () in
  let home = Fh.make ~fsid:1 ~fileid:10 in
  let user = Fh.make ~fsid:1 ~fileid:11 in
  let inbox = Fh.make ~fsid:1 ~fileid:12 in
  Fh_map.observe m (lookup_record ~dir:dir_fh ~name:"users" ~child:home);
  Fh_map.observe m (lookup_record ~dir:home ~name:"u0042" ~child:user);
  Fh_map.observe m (lookup_record ~dir:user ~name:".inbox" ~child:inbox);
  Alcotest.(check (option string)) "leaf name" (Some ".inbox") (Fh_map.name_of m inbox);
  Alcotest.(check (option string)) "full path" (Some "?/users/u0042/.inbox")
    (Fh_map.path_of m inbox);
  Alcotest.(check bool) "parent" true (Fh_map.parent_of m inbox = Some user);
  Alcotest.(check int) "three bindings" 3 (Fh_map.known m)

let test_fh_map_rename () =
  let m = Fh_map.create () in
  let f = Fh.make ~fsid:1 ~fileid:20 in
  Fh_map.observe m (lookup_record ~dir:dir_fh ~name:"old" ~child:f);
  Fh_map.observe m
    {
      base_record with
      call = Ops.Rename { from_dir = dir_fh; from_name = "old"; to_dir = dir_fh; to_name = "new" };
      result = Some (Ok Ops.R_empty);
    };
  Alcotest.(check (option string)) "renamed" (Some "new") (Fh_map.name_of m f)

let test_fh_map_resolution_rate () =
  let m = Fh_map.create () in
  let a = Fh.make ~fsid:1 ~fileid:30 in
  let b = Fh.make ~fsid:1 ~fileid:31 in
  (* First binding: the root is unknown but counted as resolved (empty
     map bootstrap); child of a known parent is resolved. *)
  Fh_map.observe m (lookup_record ~dir:dir_fh ~name:"a" ~child:a);
  Fh_map.observe m (lookup_record ~dir:a ~name:"b" ~child:b);
  Alcotest.(check (float 1e-9) "fully resolved") 1.0 (Fh_map.resolution_rate m)

(* --- capture over real packets --- *)

let synth_records n =
  List.init n (fun i ->
      let call, result =
        if i mod 3 = 0 then
          ( Ops.Lookup { dir = dir_fh; name = Printf.sprintf "f%d" i },
            Some (Ok (Ops.R_lookup { fh = file_fh; obj = None; dir = None })) )
        else if i mod 3 = 1 then
          ( Ops.Read { fh = file_fh; offset = Int64.of_int (i * 8192); count = 8192 },
            Some (Ok (Ops.R_read { attr = None; count = 8192; eof = false })) )
        else
          ( Ops.Write { fh = file_fh; offset = 0L; count = 100; stable = Types.File_sync },
            Some (Ok (Ops.R_write { count = 100; committed = Types.File_sync; attr = None })) )
      in
      {
        base_record with
        time = 1000. +. float_of_int i;
        reply_time = Some (1000.4 +. float_of_int i);
        xid = 7000 + i;
        call;
        result;
      })

let capture_through ~transport records =
  let buf = Buffer.create 65536 in
  let writer = Pcap.writer_to_buffer buf in
  let pipe = Packet_pipe.create ~transport ~writer () in
  List.iter (Packet_pipe.push pipe) records;
  Packet_pipe.finish pipe;
  let cap = Capture.create () in
  Capture.feed_pcap cap (Pcap.reader_of_string (Buffer.contents buf));
  Capture.finish cap

let check_recovered records recovered =
  Alcotest.(check int) "all records recovered" (List.length records) (List.length recovered);
  List.iter2
    (fun (orig : Record.t) (got : Record.t) ->
      Alcotest.(check bool) "proc" true (Record.proc got = Record.proc orig);
      Alcotest.(check int) "xid" orig.xid got.xid;
      Alcotest.(check int) "uid" orig.uid got.uid;
      Alcotest.(check bool) "offset" true (Record.offset got = Record.offset orig);
      Alcotest.(check bool) "has reply" true (got.result <> None))
    records recovered

let test_capture_udp_roundtrip () =
  let records = synth_records 30 in
  let stats, recovered = capture_through ~transport:Packet_pipe.Udp_transport records in
  Alcotest.(check int) "calls" 30 stats.calls;
  Alcotest.(check int) "replies" 30 stats.replies;
  Alcotest.(check int) "no losses" 0 (stats.orphan_replies + stats.lost_replies);
  check_recovered records recovered

let test_capture_tcp_roundtrip () =
  let records = synth_records 30 in
  let stats, recovered = capture_through ~transport:Packet_pipe.Tcp_transport records in
  Alcotest.(check int) "calls" 30 stats.calls;
  Alcotest.(check int) "replies" 30 stats.replies;
  Alcotest.(check int) "no tcp gaps" 0 stats.tcp_gaps;
  check_recovered records recovered

let test_capture_lost_reply () =
  (* A record with no reply: the capture should flush it as lost. *)
  let records = [ { base_record with reply_time = None; result = None } ] in
  let stats, recovered = capture_through ~transport:Packet_pipe.Udp_transport records in
  Alcotest.(check int) "one lost reply" 1 stats.lost_replies;
  match recovered with
  | [ r ] -> Alcotest.(check bool) "emitted without result" true (r.result = None)
  | _ -> Alcotest.fail "expected one record"

let test_capture_orphan_reply () =
  (* Build a pcap, then drop the first (call) packet before feeding. *)
  let records = [ List.hd (synth_records 1) ] in
  let buf = Buffer.create 4096 in
  let writer = Pcap.writer_to_buffer buf in
  let pipe = Packet_pipe.create ~transport:Packet_pipe.Udp_transport ~writer () in
  List.iter (Packet_pipe.push pipe) records;
  Packet_pipe.finish pipe;
  let reader = Pcap.reader_of_string (Buffer.contents buf) in
  let cap = Capture.create () in
  (match Pcap.read_next reader with Some _ -> () | None -> Alcotest.fail "missing call packet");
  Seq.iter (fun (p : Pcap.packet) -> Capture.feed_packet cap ~time:p.time p.data)
    (Pcap.packets reader);
  let stats, recovered = Capture.finish cap in
  Alcotest.(check int) "orphan reply counted" 1 stats.orphan_replies;
  Alcotest.(check int) "nothing decodable" 0 (List.length recovered)

let test_capture_garbage_frame () =
  let cap = Capture.create () in
  Capture.feed_packet cap ~time:1. "garbage bytes that are not a frame";
  let stats, _ = Capture.finish cap in
  Alcotest.(check int) "undecodable counted" 1 stats.undecodable_frames

let test_capture_duplicate_call_reply () =
  (* UDP retransmissions: the same call and the same reply each arrive
     twice. The capture must count the extras, not double-emit. *)
  let records = [ List.hd (synth_records 1) ] in
  let buf = Buffer.create 4096 in
  let writer = Pcap.writer_to_buffer buf in
  let pipe = Packet_pipe.create ~transport:Packet_pipe.Udp_transport ~writer () in
  List.iter (Packet_pipe.push pipe) records;
  Packet_pipe.finish pipe;
  let reader = Pcap.reader_of_string (Buffer.contents buf) in
  let packets = List.of_seq (Pcap.packets reader) in
  let call, reply =
    match packets with [ c; r ] -> (c, r) | _ -> Alcotest.fail "expected call+reply packets"
  in
  let cap = Capture.create () in
  Capture.feed_packet cap ~time:call.Pcap.time call.Pcap.data;
  Capture.feed_packet cap ~time:(call.Pcap.time +. 0.01) call.Pcap.data;
  Capture.feed_packet cap ~time:reply.Pcap.time reply.Pcap.data;
  Capture.feed_packet cap ~time:(reply.Pcap.time +. 0.01) reply.Pcap.data;
  let stats, recovered = Capture.finish cap in
  Alcotest.(check int) "one call" 1 stats.calls;
  Alcotest.(check int) "one duplicate call" 1 stats.duplicate_calls;
  Alcotest.(check int) "one reply" 1 stats.replies;
  Alcotest.(check int) "one duplicate reply" 1 stats.duplicate_replies;
  Alcotest.(check int) "no orphans" 0 stats.orphan_replies;
  Alcotest.(check int) "emitted once" 1 (List.length recovered);
  match recovered with
  | [ r ] -> Alcotest.(check bool) "with its reply" true (r.Record.result <> None)
  | _ -> ()

let test_capture_fuzz_10k () =
  (* The "never raises" contract, exercised at volume: 5000 seeded
     random frames plus 5000 bit-flipped copies of a real NFS frame,
     all through one capture. Every frame must land in the stats. *)
  let module Prng = Nt_util.Prng in
  let rng = Prng.create 0xF022_2003L in
  let records = [ List.hd (synth_records 1) ] in
  let buf = Buffer.create 4096 in
  let writer = Pcap.writer_to_buffer buf in
  let pipe = Packet_pipe.create ~transport:Packet_pipe.Udp_transport ~writer () in
  List.iter (Packet_pipe.push pipe) records;
  Packet_pipe.finish pipe;
  let real_frame =
    match List.of_seq (Pcap.packets (Pcap.reader_of_string (Buffer.contents buf))) with
    | c :: _ -> c.Pcap.data
    | [] -> Alcotest.fail "no frame"
  in
  let cap = Capture.create () in
  for i = 0 to 4999 do
    let len = Prng.int rng 300 in
    let junk = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
    Capture.feed_packet cap ~time:(float_of_int i *. 0.001) junk
  done;
  for i = 0 to 4999 do
    let b = Bytes.of_string real_frame in
    let flips = 1 + Prng.int rng 3 in
    for _ = 1 to flips do
      let pos = Prng.int rng (Bytes.length b) in
      let mask = 1 + Prng.int rng 255 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
    done;
    Capture.feed_packet cap ~time:(10. +. (float_of_int i *. 0.001)) (Bytes.to_string b)
  done;
  let stats, _ = Capture.finish cap in
  Alcotest.(check int) "all frames presented" 10_000 stats.frames;
  Alcotest.(check bool) "counters within frame total" true
    (stats.undecodable_frames + stats.corrupt_frames <= stats.frames);
  Alcotest.(check bool) "junk mostly rejected" true (stats.undecodable_frames >= 4999);
  Alcotest.(check bool) "flipped frames detected" true
    (stats.corrupt_frames > 0 && stats.rpc_errors >= 0)

(* --- degraded-vs-clean differential runs --- *)

module Pipeline = Nt_core.Pipeline
module Fault = Nt_sim.Fault

let degraded ?mangle_flips ~plan n =
  Pipeline.run_degraded ?mangle_flips ~transport:Packet_pipe.Udp_transport ~plan
    (synth_records n)

let test_degraded_duplicates_conserved () =
  (* Duplication only: every injected duplicate is recognised as a
     retransmitted call or reply, and no record is emitted twice. *)
  let plan = { Fault.none with duplicate = 0.05; duplicate_delay = 0.005 } in
  let d = degraded ~plan 400 in
  Alcotest.(check bool) "duplicates injected" true (d.faults.duplicated > 0);
  Alcotest.(check int) "injected = counted"
    d.faults.duplicated
    (d.degraded.duplicate_calls + d.degraded.duplicate_replies);
  Alcotest.(check int) "every emission captured" d.faults.emitted d.degraded.frames;
  Alcotest.(check int) "no double emission"
    (List.length d.clean_records) (List.length d.degraded_records);
  Alcotest.(check int) "same calls" d.clean.calls d.degraded.calls

let test_degraded_corrupt_truncate_conserved () =
  (* Address-only single-byte corruption always breaks the IPv4 header
     checksum; 30-byte truncation always cuts inside the IP header. So
     each injected fault lands in exactly one capture counter. *)
  let plan =
    {
      Fault.none with
      corrupt = 0.03;
      corrupt_bytes = 1;
      corrupt_addrs_only = true;
      truncate = 0.02;
      truncate_to = 30;
    }
  in
  let d = degraded ~plan 400 in
  Alcotest.(check bool) "corruptions injected" true (d.faults.corrupted > 0);
  Alcotest.(check bool) "truncations injected" true (d.faults.truncated > 0);
  Alcotest.(check int) "corrupted = checksum failures" d.faults.corrupted
    d.degraded.corrupt_frames;
  Alcotest.(check int) "truncated = undecodable" d.faults.truncated
    d.degraded.undecodable_frames;
  Alcotest.(check int) "every emission captured" d.faults.emitted d.degraded.frames;
  Alcotest.(check int) "clean run unaffected" 0
    (d.clean.corrupt_frames + d.clean.undecodable_frames)

let test_degraded_acceptance_burst () =
  (* The acceptance scenario: burst loss + corruption + duplication +
     truncation together. Decoding completes without exception and the
     conservation invariants hold. *)
  let plan =
    {
      Fault.none with
      drop = Fault.Gilbert_elliott { p_gb = 0.02; p_bg = 0.3; loss_good = 0.002; loss_bad = 0.4 };
      corrupt = 0.02;
      corrupt_bytes = 1;
      corrupt_addrs_only = true;
      truncate = 0.01;
      truncate_to = 30;
      duplicate = 0.02;
      duplicate_delay = 0.005;
    }
  in
  let d = degraded ~plan 600 in
  let f = d.faults in
  Alcotest.(check bool) "all fault classes fired" true
    (f.dropped > 0 && f.corrupted > 0 && f.truncated > 0 && f.duplicated > 0);
  Alcotest.(check int) "injector conservation" (f.presented - f.dropped + f.duplicated)
    f.emitted;
  Alcotest.(check int) "every emission captured" f.emitted d.degraded.frames;
  Alcotest.(check int) "corrupted = checksum failures" f.corrupted d.degraded.corrupt_frames;
  Alcotest.(check int) "truncated = undecodable" f.truncated d.degraded.undecodable_frames;
  (* A duplicate whose counterpart was dropped or corrupted surfaces as
     an orphan instead, so the duplicate counters are bounded, not
     exactly equal, once drops are in play. *)
  Alcotest.(check bool) "duplicates bounded by injection" true
    (d.degraded.duplicate_calls + d.degraded.duplicate_replies <= f.duplicated);
  Alcotest.(check bool) "clean baseline intact" true
    (d.clean.calls = 600 && d.clean.replies = 600 && d.clean.frames = f.presented)

let test_degraded_salvage_mangled_pcap () =
  (* Savefile-level damage on top of packet faults: 200 byte flips in
     the pcap stream itself. The salvage reader must absorb them and
     still recover most of the trace. *)
  let plan = { Fault.none with duplicate = 0.01; duplicate_delay = 0.005 } in
  let d = degraded ~mangle_flips:200 ~plan 400 in
  Alcotest.(check bool) "decoding survives" true (d.degraded.frames > 0);
  Alcotest.(check bool) "damage visible in stats" true
    (d.degraded.skipped_pcap_bytes > 0 || d.degraded.corrupt_frames > 0
    || d.degraded.rpc_errors > 0 || d.degraded.undecodable_frames > 0);
  let clean_n = List.length d.clean_records in
  let degraded_n = List.length d.degraded_records in
  Alcotest.(check bool) "most records recovered" true
    (float_of_int degraded_n >= 0.5 *. float_of_int clean_n)

let test_degraded_drift_bounded () =
  (* §4.1.4-style question: does ~2% bursty capture loss distort the
     analysis? The op mix of the degraded trace must track the clean
     one within 10% relative, with >=90% of records recovered. *)
  let plan =
    {
      Fault.none with
      drop = Fault.Gilbert_elliott { p_gb = 0.02; p_bg = 0.3; loss_good = 0.002; loss_bad = 0.4 };
    }
  in
  let d = degraded ~plan 900 in
  let clean_n = List.length d.clean_records in
  let degraded_n = List.length d.degraded_records in
  Alcotest.(check bool) "at least 90% of records survive" true
    (float_of_int degraded_n >= 0.9 *. float_of_int clean_n);
  let mix records =
    let total = float_of_int (List.length records) in
    let frac proc =
      float_of_int (List.length (List.filter (fun r -> Record.proc r = proc) records))
      /. total
    in
    (frac Nt_nfs.Proc.Read, frac Nt_nfs.Proc.Write, frac Nt_nfs.Proc.Lookup)
  in
  let cr, cw, cl = mix d.clean_records in
  let dr, dw, dl = mix d.degraded_records in
  let close name a b =
    Alcotest.(check bool) (name ^ " mix within 10%") true (Float.abs (a -. b) /. a < 0.10)
  in
  close "read" cr dr;
  close "write" cw dw;
  close "lookup" cl dl

(* --- anonymizer --- *)

let anon ?(config = Anonymize.default_config) () = Anonymize.create ~seed:9L config

let test_anon_consistent () =
  let a = anon () in
  Alcotest.(check string) "same input same output" (Anonymize.name a "thesis.tex")
    (Anonymize.name a "thesis.tex")

let test_anon_changes_names () =
  let a = anon () in
  Alcotest.(check bool) "name is anonymized" false
    (String.equal (Anonymize.name a "secret-project.txt") "secret-project.txt")

let test_anon_suffix_shared () =
  let a = anon () in
  let n1 = Anonymize.name a "alpha.c" and n2 = Anonymize.name a "beta.c" in
  let suffix s = String.sub s (String.rindex s '.') (String.length s - String.rindex s '.') in
  Alcotest.(check string) "shared suffix" (suffix n1) (suffix n2);
  Alcotest.(check bool) "different stems" false (String.equal n1 n2)

let test_anon_special_affixes () =
  let a = anon () in
  let plain = Anonymize.name a "report" in
  Alcotest.(check string) "backup keeps ~" (plain ^ "~") (Anonymize.name a "report~");
  Alcotest.(check string) "rcs keeps ,v" (plain ^ ",v") (Anonymize.name a "report,v");
  Alcotest.(check string) "autosave keeps ##" ("#" ^ plain ^ "#") (Anonymize.name a "#report#")

let test_anon_preserved_names () =
  let a = anon () in
  List.iter
    (fun n -> Alcotest.(check string) "preserved verbatim" n (Anonymize.name a n))
    [ "CVS"; ".inbox"; ".pinerc"; "lock"; "mbox" ]

let test_anon_lock_suffix_preserved () =
  let a = anon () in
  let n = Anonymize.name a "mailbox.lock" in
  Alcotest.(check bool) "keeps .lock" true
    (String.length n > 5 && String.sub n (String.length n - 5) 5 = ".lock");
  Alcotest.(check bool) "stem anonymized" false (String.equal n "mailbox.lock")

let test_anon_dotfile_keeps_dot () =
  let a = anon () in
  let n = Anonymize.name a ".secretrc" in
  Alcotest.(check bool) "leading dot kept" true (n.[0] = '.');
  Alcotest.(check bool) "rest anonymized" false (String.equal n ".secretrc")

let test_anon_uid_gid () =
  let a = anon () in
  Alcotest.(check int) "root preserved" 0 (Anonymize.uid a 0);
  let u = Anonymize.uid a 1042 in
  Alcotest.(check bool) "uid mapped" true (u <> 1042);
  Alcotest.(check int) "uid stable" u (Anonymize.uid a 1042);
  Alcotest.(check bool) "distinct uids distinct" true (Anonymize.uid a 1043 <> u)

let test_anon_ip () =
  let a = anon () in
  let ip = Ip.v 128 103 60 15 in
  let mapped = Anonymize.ip a ip in
  Alcotest.(check bool) "ip mapped" true (mapped <> ip);
  Alcotest.(check bool) "ip stable" true (Anonymize.ip a ip = mapped)

let test_anon_seeds_differ () =
  let a = Anonymize.create ~seed:1L Anonymize.default_config in
  let b = Anonymize.create ~seed:2L Anonymize.default_config in
  Alcotest.(check bool) "different seeds, different mapping" false
    (String.equal (Anonymize.name a "projectx.dat") (Anonymize.name b "projectx.dat"))

let test_anon_record () =
  let a = anon () in
  let r = { base_record with call = Ops.Lookup { dir = dir_fh; name = "grant-proposal.doc" } } in
  let r' = Anonymize.record a r in
  Alcotest.(check bool) "uid anonymized" true (r'.uid <> r.uid);
  Alcotest.(check bool) "client anonymized" true (r'.client <> r.client);
  Alcotest.(check bool) "name anonymized" true (Record.name r' <> Record.name r);
  (* Structure preserved. *)
  Alcotest.(check bool) "proc preserved" true (Record.proc r' = Record.proc r);
  Alcotest.(check (float 0.) "time untouched") r.time r'.time

let test_anon_omit () =
  let a = anon ~config:Anonymize.omit_config () in
  Alcotest.(check string) "name dropped" "x" (Anonymize.name a "anything.txt");
  Alcotest.(check int) "uid dropped" 0 (Anonymize.uid a 1234)

let test_anon_categories_survive () =
  (* The Names analysis must still classify anonymized traces. *)
  let a = anon () in
  let check_cat name =
    let cat = Nt_analysis.Names.categorize name in
    let cat' = Nt_analysis.Names.categorize (Anonymize.name a name) in
    Alcotest.(check string)
      (name ^ " category survives anonymization")
      (Nt_analysis.Names.category_to_string cat)
      (Nt_analysis.Names.category_to_string cat')
  in
  List.iter check_cat [ ".inbox"; ".inbox.lock"; "mbox"; "draft~"; "#draft#"; "module.c,v" ]

(* --- robustness: a passive tracer must survive hostile input --- *)

let prop_capture_never_crashes_on_garbage =
  QCheck.Test.make ~name:"capture survives arbitrary frames" ~count:300
    QCheck.(string_of_size Gen.(0 -- 400))
    (fun junk ->
      let cap = Capture.create () in
      Capture.feed_packet cap ~time:1. junk;
      let stats, _ = Capture.finish cap in
      stats.frames = 1)

let prop_capture_survives_bitflips =
  QCheck.Test.make ~name:"capture survives bit-flipped real packets" ~count:200
    QCheck.(pair (int_range 0 10_000) small_int)
    (fun (pos_seed, flip) ->
      (* Take a real UDP-encoded NFS call frame and corrupt one byte. *)
      let r = List.hd (synth_records 1) in
      let buf = Buffer.create 4096 in
      let writer = Pcap.writer_to_buffer buf in
      let pipe = Packet_pipe.create ~transport:Packet_pipe.Udp_transport ~writer () in
      Packet_pipe.push pipe r;
      Packet_pipe.finish pipe;
      let pcap = Bytes.of_string (Buffer.contents buf) in
      let n = Bytes.length pcap in
      (* Corrupt only past the pcap global header so the reader itself
         stays parseable. *)
      if n > 48 then begin
        let pos = 40 + (pos_seed mod (n - 48)) in
        Bytes.set pcap pos (Char.chr (Char.code (Bytes.get pcap pos) lxor (1 + (flip mod 255))))
      end;
      match Pipeline_capture.run (Bytes.to_string pcap) with
      | exception Pcap.Bad_format _ -> true (* corrupt lengths may be detected *)
      | _stats -> true)

let prop_of_line_never_crashes =
  QCheck.Test.make ~name:"record parser is total" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Record.of_line s with Ok _ -> true | Error _ -> true)

let prop_record_line_roundtrip =
  QCheck.Test.make ~name:"record text format roundtrips" ~count:300
    QCheck.(
      quad (int_range 0 0xFFFFFF) (int_range 0 100000) (int_range 0 5_000_000)
        (string_of_size Gen.(1 -- 30)))
    (fun (xid, uid, off, name) ->
      QCheck.assume (not (String.contains name '/'));
      let r =
        {
          base_record with
          xid;
          uid;
          call =
            (if off mod 2 = 0 then Ops.Lookup { dir = dir_fh; name }
             else Ops.Read { fh = file_fh; offset = Int64.of_int off; count = 1 + (off mod 9000) });
          result = None;
          reply_time = None;
        }
      in
      match Record.of_line (Record.to_line r) with
      | Ok r' ->
          r'.xid = xid && r'.uid = uid
          && Record.name r' = Record.name r
          && Record.offset r' = Record.offset r
      | Error _ -> false)

let () =
  Alcotest.run "nt_trace"
    [
      ( "record",
        [
          Alcotest.test_case "roundtrip read" `Quick test_line_roundtrip_read;
          Alcotest.test_case "roundtrip all procs" `Quick test_line_roundtrip_all_procs;
          Alcotest.test_case "escaping" `Quick test_line_escaping;
          Alcotest.test_case "lost reply" `Quick test_line_lost_reply;
          Alcotest.test_case "error result" `Quick test_line_error_result;
          Alcotest.test_case "bad input" `Quick test_line_bad_input;
          Alcotest.test_case "io bytes" `Quick test_io_bytes;
          Alcotest.test_case "channel roundtrip" `Quick test_channel_roundtrip;
          QCheck_alcotest.to_alcotest prop_record_line_roundtrip;
          QCheck_alcotest.to_alcotest prop_of_line_never_crashes;
        ] );
      ( "fh_map",
        [
          Alcotest.test_case "paths" `Quick test_fh_map_paths;
          Alcotest.test_case "rename" `Quick test_fh_map_rename;
          Alcotest.test_case "resolution rate" `Quick test_fh_map_resolution_rate;
        ] );
      ( "capture",
        [
          Alcotest.test_case "udp roundtrip" `Quick test_capture_udp_roundtrip;
          Alcotest.test_case "tcp roundtrip" `Quick test_capture_tcp_roundtrip;
          Alcotest.test_case "lost reply" `Quick test_capture_lost_reply;
          Alcotest.test_case "orphan reply" `Quick test_capture_orphan_reply;
          Alcotest.test_case "garbage frame" `Quick test_capture_garbage_frame;
          Alcotest.test_case "duplicate call/reply" `Quick test_capture_duplicate_call_reply;
          Alcotest.test_case "fuzz 10k frames" `Quick test_capture_fuzz_10k;
          QCheck_alcotest.to_alcotest prop_capture_never_crashes_on_garbage;
          QCheck_alcotest.to_alcotest prop_capture_survives_bitflips;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "duplicates conserved" `Quick test_degraded_duplicates_conserved;
          Alcotest.test_case "corrupt+truncate conserved" `Quick
            test_degraded_corrupt_truncate_conserved;
          Alcotest.test_case "acceptance: burst+corrupt+dup+trunc" `Quick
            test_degraded_acceptance_burst;
          Alcotest.test_case "salvage mangled pcap" `Quick test_degraded_salvage_mangled_pcap;
          Alcotest.test_case "analysis drift bounded" `Quick test_degraded_drift_bounded;
        ] );
      ( "anonymize",
        [
          Alcotest.test_case "consistent" `Quick test_anon_consistent;
          Alcotest.test_case "changes names" `Quick test_anon_changes_names;
          Alcotest.test_case "suffix shared" `Quick test_anon_suffix_shared;
          Alcotest.test_case "special affixes" `Quick test_anon_special_affixes;
          Alcotest.test_case "preserved names" `Quick test_anon_preserved_names;
          Alcotest.test_case "lock suffix" `Quick test_anon_lock_suffix_preserved;
          Alcotest.test_case "dotfile dot" `Quick test_anon_dotfile_keeps_dot;
          Alcotest.test_case "uid/gid" `Quick test_anon_uid_gid;
          Alcotest.test_case "ip" `Quick test_anon_ip;
          Alcotest.test_case "seeds differ" `Quick test_anon_seeds_differ;
          Alcotest.test_case "record" `Quick test_anon_record;
          Alcotest.test_case "omit mode" `Quick test_anon_omit;
          Alcotest.test_case "categories survive" `Quick test_anon_categories_survive;
        ] );
    ]
