(* Library hygiene: lib/ code must return data or go through nt_obs —
   never print to stdout (which belongs to the binaries' report
   streams), never defeat the type system with Obj.magic, and never
   move bytes through Marshal. *)

let stdout_printers =
  [
    "print_string";
    "print_bytes";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
    "Format.print_flush";
  ]

let classify path =
  let n = Syntax.norm_path path in
  if List.mem n stdout_printers then Some (Rule.lib_stdout, n)
  else if n = "Obj.magic" then Some (Rule.obj_magic, n)
  else if Syntax.starts_with ~prefix:"Marshal.from_" n then Some (Rule.marshal_untrusted, n)
  else if Syntax.starts_with ~prefix:"Marshal." n then Some (Rule.marshal_output, n)
  else None

let check_expr (sink : Finding.sink) ~allows root =
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match classify p with
        | Some (rule, name) ->
            if Syntax.allowed allows rule then sink.allow rule
            else sink.emit rule e.exp_loc (name ^ " in lib code")
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root

let check_binding sink (vb : Typedtree.value_binding) =
  check_expr sink ~allows:(Syntax.allows vb.vb_attributes) vb.vb_expr

let rec check_structure sink (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (check_binding sink) vbs
      | Tstr_eval (e, attrs) -> check_expr sink ~allows:(Syntax.allows attrs) e
      | Tstr_module mb -> check_module_expr sink mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun (mb : Typedtree.module_binding) -> check_module_expr sink mb.mb_expr) mbs
      | Tstr_include incl -> check_module_expr sink incl.incl_mod
      | _ -> ())
    str.str_items

and check_module_expr sink (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> check_structure sink str
  | Tmod_constraint (me, _, _, _) -> check_module_expr sink me
  | _ -> ()

let check sink (u : Loader.unit_info) =
  match u.payload with Loader.Impl str -> check_structure sink str | Loader.Intf _ -> ()
