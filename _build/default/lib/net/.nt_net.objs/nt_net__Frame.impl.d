lib/net/frame.ml: Bytes Char Ip_addr Printf String
