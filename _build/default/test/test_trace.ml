(* Trace layer tests: record serialization, path reconstruction, the
   capture engine (over real pcap bytes) and the anonymizer. *)

module Record = Nt_trace.Record
module Fh_map = Nt_trace.Fh_map
module Capture = Nt_trace.Capture
module Anonymize = Nt_trace.Anonymize
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Ip = Nt_net.Ip_addr
module Pcap = Nt_net.Pcap
module Packet_pipe = Nt_sim.Packet_pipe

(* Tiny wrapper so the fuzz property below can call the full pipeline
   and catch only the exceptions it is allowed to see. *)
module Pipeline_capture = struct
  let run pcap_bytes =
    let cap = Capture.create () in
    Capture.feed_pcap cap (Pcap.reader_of_string pcap_bytes);
    fst (Capture.finish cap)
end

let dir_fh = Fh.make ~fsid:1 ~fileid:2
let file_fh = Fh.make ~fsid:1 ~fileid:3

let base_record : Record.t =
  {
    time = 1003622400.123456;
    reply_time = Some 1003622400.125;
    client = Ip.v 10 1 0 20;
    server = Ip.v 10 1 1 2;
    version = 3;
    xid = 0xABCD1234;
    uid = 1042;
    gid = 100;
    call = Ops.Read { fh = file_fh; offset = 8192L; count = 8192 };
    result = Some (Ok (Ops.R_read { attr = None; count = 8192; eof = false }));
  }

(* --- record line format --- *)

let roundtrip r =
  match Record.of_line (Record.to_line r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "parse failed: %s on %s" e (Record.to_line r)

let test_line_roundtrip_read () =
  let r' = roundtrip base_record in
  Alcotest.(check (float 1e-5) "time") base_record.time r'.time;
  Alcotest.(check int) "xid" base_record.xid r'.xid;
  Alcotest.(check int) "uid" base_record.uid r'.uid;
  Alcotest.(check bool) "client ip" true (r'.client = base_record.client);
  Alcotest.(check (option int64)) "offset" (Some 8192L) (Record.offset r');
  Alcotest.(check (option int)) "count" (Some 8192) (Record.count r')

let test_line_roundtrip_all_procs () =
  let cases =
    [
      Ops.Null;
      Ops.Getattr file_fh;
      Ops.Setattr { fh = file_fh; attrs = { Types.empty_sattr with set_size = Some 0L } };
      Ops.Lookup { dir = dir_fh; name = "plain" };
      Ops.Access { fh = file_fh; access = 63 };
      Ops.Readlink file_fh;
      Ops.Write { fh = file_fh; offset = 0L; count = 99; stable = Types.Unstable };
      Ops.Create { dir = dir_fh; name = ".inbox.lock"; mode = 0o600; exclusive = true };
      Ops.Mkdir { dir = dir_fh; name = "d"; mode = 0o755 };
      Ops.Symlink { dir = dir_fh; name = "s"; target = "a/b" };
      Ops.Mknod { dir = dir_fh; name = "n" };
      Ops.Remove { dir = dir_fh; name = "gone" };
      Ops.Rmdir { dir = dir_fh; name = "gonedir" };
      Ops.Rename { from_dir = dir_fh; from_name = "x"; to_dir = dir_fh; to_name = "y" };
      Ops.Link { fh = file_fh; to_dir = dir_fh; to_name = "h" };
      Ops.Readdir { dir = dir_fh; cookie = 3L; count = 1024 };
      Ops.Readdirplus { dir = dir_fh; cookie = 0L; count = 2048 };
      Ops.Statfs file_fh;
      Ops.Fsinfo file_fh;
      Ops.Pathconf file_fh;
      Ops.Commit { fh = file_fh; offset = 0L; count = 8192 };
    ]
  in
  List.iter
    (fun call ->
      let r = { base_record with call; result = None; reply_time = None } in
      let r' = roundtrip r in
      Alcotest.(check bool)
        (Nt_nfs.Proc.to_string (Record.proc r) ^ " proc survives")
        true
        (Record.proc r' = Record.proc r);
      Alcotest.(check bool) "name survives" true (Record.name r' = Record.name r);
      Alcotest.(check bool) "fh survives" true
        (match (Record.fh r', Record.fh r) with
        | Some a, Some b -> Fh.equal a b
        | None, None -> true
        | _ -> false))
    cases

let test_line_escaping () =
  let nasty = "has space|pipe=eq%pct\tand tab" in
  let r = { base_record with call = Ops.Lookup { dir = dir_fh; name = nasty } } in
  let r' = roundtrip r in
  Alcotest.(check (option string)) "nasty name survives" (Some nasty) (Record.name r')

let test_line_lost_reply () =
  let r = { base_record with reply_time = None; result = None } in
  let r' = roundtrip r in
  Alcotest.(check bool) "no reply time" true (r'.reply_time = None);
  Alcotest.(check bool) "no result" true (r'.result = None);
  Alcotest.(check bool) "not ok" true (not (Record.is_ok r'))

let test_line_error_result () =
  let r = { base_record with result = Some (Error Types.Err_stale) } in
  let r' = roundtrip r in
  Alcotest.(check bool) "stale survives" true (Record.status r' = Some Types.Err_stale)

let test_line_bad_input () =
  Alcotest.(check bool) "junk rejected" true (Result.is_error (Record.of_line "not a record"));
  Alcotest.(check bool) "empty rejected" true (Result.is_error (Record.of_line ""))

let test_io_bytes () =
  Alcotest.(check int) "read bytes from reply" 8192 (Record.io_bytes base_record);
  let lost = { base_record with result = None } in
  Alcotest.(check int) "falls back to call count" 8192 (Record.io_bytes lost);
  let failed = { base_record with result = Some (Error Types.Err_io) } in
  Alcotest.(check int) "failed IO moves nothing" 0 (Record.io_bytes failed)

let test_channel_roundtrip () =
  let path = Filename.temp_file "nt_trace" ".trace" in
  let records = List.init 20 (fun i -> { base_record with xid = i }) in
  let oc = open_out path in
  let n = Record.write_channel oc (List.to_seq records) in
  close_out oc;
  Alcotest.(check int) "wrote all" 20 n;
  let ic = open_in path in
  let back = List.of_seq (Record.read_channel ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "read all" 20 (List.length back);
  List.iteri (fun i r -> Alcotest.(check int) "xids in order" i r.Record.xid) back

(* --- fh map --- *)

let lookup_record ~dir ~name ~child =
  {
    base_record with
    call = Ops.Lookup { dir; name };
    result = Some (Ok (Ops.R_lookup { fh = child; obj = None; dir = None }));
  }

let test_fh_map_paths () =
  let m = Fh_map.create () in
  let home = Fh.make ~fsid:1 ~fileid:10 in
  let user = Fh.make ~fsid:1 ~fileid:11 in
  let inbox = Fh.make ~fsid:1 ~fileid:12 in
  Fh_map.observe m (lookup_record ~dir:dir_fh ~name:"users" ~child:home);
  Fh_map.observe m (lookup_record ~dir:home ~name:"u0042" ~child:user);
  Fh_map.observe m (lookup_record ~dir:user ~name:".inbox" ~child:inbox);
  Alcotest.(check (option string)) "leaf name" (Some ".inbox") (Fh_map.name_of m inbox);
  Alcotest.(check (option string)) "full path" (Some "?/users/u0042/.inbox")
    (Fh_map.path_of m inbox);
  Alcotest.(check bool) "parent" true (Fh_map.parent_of m inbox = Some user);
  Alcotest.(check int) "three bindings" 3 (Fh_map.known m)

let test_fh_map_rename () =
  let m = Fh_map.create () in
  let f = Fh.make ~fsid:1 ~fileid:20 in
  Fh_map.observe m (lookup_record ~dir:dir_fh ~name:"old" ~child:f);
  Fh_map.observe m
    {
      base_record with
      call = Ops.Rename { from_dir = dir_fh; from_name = "old"; to_dir = dir_fh; to_name = "new" };
      result = Some (Ok Ops.R_empty);
    };
  Alcotest.(check (option string)) "renamed" (Some "new") (Fh_map.name_of m f)

let test_fh_map_resolution_rate () =
  let m = Fh_map.create () in
  let a = Fh.make ~fsid:1 ~fileid:30 in
  let b = Fh.make ~fsid:1 ~fileid:31 in
  (* First binding: the root is unknown but counted as resolved (empty
     map bootstrap); child of a known parent is resolved. *)
  Fh_map.observe m (lookup_record ~dir:dir_fh ~name:"a" ~child:a);
  Fh_map.observe m (lookup_record ~dir:a ~name:"b" ~child:b);
  Alcotest.(check (float 1e-9) "fully resolved") 1.0 (Fh_map.resolution_rate m)

(* --- capture over real packets --- *)

let synth_records n =
  List.init n (fun i ->
      let call, result =
        if i mod 3 = 0 then
          ( Ops.Lookup { dir = dir_fh; name = Printf.sprintf "f%d" i },
            Some (Ok (Ops.R_lookup { fh = file_fh; obj = None; dir = None })) )
        else if i mod 3 = 1 then
          ( Ops.Read { fh = file_fh; offset = Int64.of_int (i * 8192); count = 8192 },
            Some (Ok (Ops.R_read { attr = None; count = 8192; eof = false })) )
        else
          ( Ops.Write { fh = file_fh; offset = 0L; count = 100; stable = Types.File_sync },
            Some (Ok (Ops.R_write { count = 100; committed = Types.File_sync; attr = None })) )
      in
      {
        base_record with
        time = 1000. +. float_of_int i;
        reply_time = Some (1000.4 +. float_of_int i);
        xid = 7000 + i;
        call;
        result;
      })

let capture_through ~transport records =
  let buf = Buffer.create 65536 in
  let writer = Pcap.writer_to_buffer buf in
  let pipe = Packet_pipe.create ~transport ~writer () in
  List.iter (Packet_pipe.push pipe) records;
  Packet_pipe.finish pipe;
  let cap = Capture.create () in
  Capture.feed_pcap cap (Pcap.reader_of_string (Buffer.contents buf));
  Capture.finish cap

let check_recovered records recovered =
  Alcotest.(check int) "all records recovered" (List.length records) (List.length recovered);
  List.iter2
    (fun (orig : Record.t) (got : Record.t) ->
      Alcotest.(check bool) "proc" true (Record.proc got = Record.proc orig);
      Alcotest.(check int) "xid" orig.xid got.xid;
      Alcotest.(check int) "uid" orig.uid got.uid;
      Alcotest.(check bool) "offset" true (Record.offset got = Record.offset orig);
      Alcotest.(check bool) "has reply" true (got.result <> None))
    records recovered

let test_capture_udp_roundtrip () =
  let records = synth_records 30 in
  let stats, recovered = capture_through ~transport:Packet_pipe.Udp_transport records in
  Alcotest.(check int) "calls" 30 stats.calls;
  Alcotest.(check int) "replies" 30 stats.replies;
  Alcotest.(check int) "no losses" 0 (stats.orphan_replies + stats.lost_replies);
  check_recovered records recovered

let test_capture_tcp_roundtrip () =
  let records = synth_records 30 in
  let stats, recovered = capture_through ~transport:Packet_pipe.Tcp_transport records in
  Alcotest.(check int) "calls" 30 stats.calls;
  Alcotest.(check int) "replies" 30 stats.replies;
  Alcotest.(check int) "no tcp gaps" 0 stats.tcp_gaps;
  check_recovered records recovered

let test_capture_lost_reply () =
  (* A record with no reply: the capture should flush it as lost. *)
  let records = [ { base_record with reply_time = None; result = None } ] in
  let stats, recovered = capture_through ~transport:Packet_pipe.Udp_transport records in
  Alcotest.(check int) "one lost reply" 1 stats.lost_replies;
  match recovered with
  | [ r ] -> Alcotest.(check bool) "emitted without result" true (r.result = None)
  | _ -> Alcotest.fail "expected one record"

let test_capture_orphan_reply () =
  (* Build a pcap, then drop the first (call) packet before feeding. *)
  let records = [ List.hd (synth_records 1) ] in
  let buf = Buffer.create 4096 in
  let writer = Pcap.writer_to_buffer buf in
  let pipe = Packet_pipe.create ~transport:Packet_pipe.Udp_transport ~writer () in
  List.iter (Packet_pipe.push pipe) records;
  Packet_pipe.finish pipe;
  let reader = Pcap.reader_of_string (Buffer.contents buf) in
  let cap = Capture.create () in
  (match Pcap.read_next reader with Some _ -> () | None -> Alcotest.fail "missing call packet");
  Seq.iter (fun (p : Pcap.packet) -> Capture.feed_packet cap ~time:p.time p.data)
    (Pcap.packets reader);
  let stats, recovered = Capture.finish cap in
  Alcotest.(check int) "orphan reply counted" 1 stats.orphan_replies;
  Alcotest.(check int) "nothing decodable" 0 (List.length recovered)

let test_capture_garbage_frame () =
  let cap = Capture.create () in
  Capture.feed_packet cap ~time:1. "garbage bytes that are not a frame";
  let stats, _ = Capture.finish cap in
  Alcotest.(check int) "undecodable counted" 1 stats.undecodable_frames

(* --- anonymizer --- *)

let anon ?(config = Anonymize.default_config) () = Anonymize.create ~seed:9L config

let test_anon_consistent () =
  let a = anon () in
  Alcotest.(check string) "same input same output" (Anonymize.name a "thesis.tex")
    (Anonymize.name a "thesis.tex")

let test_anon_changes_names () =
  let a = anon () in
  Alcotest.(check bool) "name is anonymized" false
    (String.equal (Anonymize.name a "secret-project.txt") "secret-project.txt")

let test_anon_suffix_shared () =
  let a = anon () in
  let n1 = Anonymize.name a "alpha.c" and n2 = Anonymize.name a "beta.c" in
  let suffix s = String.sub s (String.rindex s '.') (String.length s - String.rindex s '.') in
  Alcotest.(check string) "shared suffix" (suffix n1) (suffix n2);
  Alcotest.(check bool) "different stems" false (String.equal n1 n2)

let test_anon_special_affixes () =
  let a = anon () in
  let plain = Anonymize.name a "report" in
  Alcotest.(check string) "backup keeps ~" (plain ^ "~") (Anonymize.name a "report~");
  Alcotest.(check string) "rcs keeps ,v" (plain ^ ",v") (Anonymize.name a "report,v");
  Alcotest.(check string) "autosave keeps ##" ("#" ^ plain ^ "#") (Anonymize.name a "#report#")

let test_anon_preserved_names () =
  let a = anon () in
  List.iter
    (fun n -> Alcotest.(check string) "preserved verbatim" n (Anonymize.name a n))
    [ "CVS"; ".inbox"; ".pinerc"; "lock"; "mbox" ]

let test_anon_lock_suffix_preserved () =
  let a = anon () in
  let n = Anonymize.name a "mailbox.lock" in
  Alcotest.(check bool) "keeps .lock" true
    (String.length n > 5 && String.sub n (String.length n - 5) 5 = ".lock");
  Alcotest.(check bool) "stem anonymized" false (String.equal n "mailbox.lock")

let test_anon_dotfile_keeps_dot () =
  let a = anon () in
  let n = Anonymize.name a ".secretrc" in
  Alcotest.(check bool) "leading dot kept" true (n.[0] = '.');
  Alcotest.(check bool) "rest anonymized" false (String.equal n ".secretrc")

let test_anon_uid_gid () =
  let a = anon () in
  Alcotest.(check int) "root preserved" 0 (Anonymize.uid a 0);
  let u = Anonymize.uid a 1042 in
  Alcotest.(check bool) "uid mapped" true (u <> 1042);
  Alcotest.(check int) "uid stable" u (Anonymize.uid a 1042);
  Alcotest.(check bool) "distinct uids distinct" true (Anonymize.uid a 1043 <> u)

let test_anon_ip () =
  let a = anon () in
  let ip = Ip.v 128 103 60 15 in
  let mapped = Anonymize.ip a ip in
  Alcotest.(check bool) "ip mapped" true (mapped <> ip);
  Alcotest.(check bool) "ip stable" true (Anonymize.ip a ip = mapped)

let test_anon_seeds_differ () =
  let a = Anonymize.create ~seed:1L Anonymize.default_config in
  let b = Anonymize.create ~seed:2L Anonymize.default_config in
  Alcotest.(check bool) "different seeds, different mapping" false
    (String.equal (Anonymize.name a "projectx.dat") (Anonymize.name b "projectx.dat"))

let test_anon_record () =
  let a = anon () in
  let r = { base_record with call = Ops.Lookup { dir = dir_fh; name = "grant-proposal.doc" } } in
  let r' = Anonymize.record a r in
  Alcotest.(check bool) "uid anonymized" true (r'.uid <> r.uid);
  Alcotest.(check bool) "client anonymized" true (r'.client <> r.client);
  Alcotest.(check bool) "name anonymized" true (Record.name r' <> Record.name r);
  (* Structure preserved. *)
  Alcotest.(check bool) "proc preserved" true (Record.proc r' = Record.proc r);
  Alcotest.(check (float 0.) "time untouched") r.time r'.time

let test_anon_omit () =
  let a = anon ~config:Anonymize.omit_config () in
  Alcotest.(check string) "name dropped" "x" (Anonymize.name a "anything.txt");
  Alcotest.(check int) "uid dropped" 0 (Anonymize.uid a 1234)

let test_anon_categories_survive () =
  (* The Names analysis must still classify anonymized traces. *)
  let a = anon () in
  let check_cat name =
    let cat = Nt_analysis.Names.categorize name in
    let cat' = Nt_analysis.Names.categorize (Anonymize.name a name) in
    Alcotest.(check string)
      (name ^ " category survives anonymization")
      (Nt_analysis.Names.category_to_string cat)
      (Nt_analysis.Names.category_to_string cat')
  in
  List.iter check_cat [ ".inbox"; ".inbox.lock"; "mbox"; "draft~"; "#draft#"; "module.c,v" ]

(* --- robustness: a passive tracer must survive hostile input --- *)

let prop_capture_never_crashes_on_garbage =
  QCheck.Test.make ~name:"capture survives arbitrary frames" ~count:300
    QCheck.(string_of_size Gen.(0 -- 400))
    (fun junk ->
      let cap = Capture.create () in
      Capture.feed_packet cap ~time:1. junk;
      let stats, _ = Capture.finish cap in
      stats.frames = 1)

let prop_capture_survives_bitflips =
  QCheck.Test.make ~name:"capture survives bit-flipped real packets" ~count:200
    QCheck.(pair (int_range 0 10_000) small_int)
    (fun (pos_seed, flip) ->
      (* Take a real UDP-encoded NFS call frame and corrupt one byte. *)
      let r = List.hd (synth_records 1) in
      let buf = Buffer.create 4096 in
      let writer = Pcap.writer_to_buffer buf in
      let pipe = Packet_pipe.create ~transport:Packet_pipe.Udp_transport ~writer () in
      Packet_pipe.push pipe r;
      Packet_pipe.finish pipe;
      let pcap = Bytes.of_string (Buffer.contents buf) in
      let n = Bytes.length pcap in
      (* Corrupt only past the pcap global header so the reader itself
         stays parseable. *)
      if n > 48 then begin
        let pos = 40 + (pos_seed mod (n - 48)) in
        Bytes.set pcap pos (Char.chr (Char.code (Bytes.get pcap pos) lxor (1 + (flip mod 255))))
      end;
      match Pipeline_capture.run (Bytes.to_string pcap) with
      | exception Pcap.Bad_format _ -> true (* corrupt lengths may be detected *)
      | _stats -> true)

let prop_of_line_never_crashes =
  QCheck.Test.make ~name:"record parser is total" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Record.of_line s with Ok _ -> true | Error _ -> true)

let prop_record_line_roundtrip =
  QCheck.Test.make ~name:"record text format roundtrips" ~count:300
    QCheck.(
      quad (int_range 0 0xFFFFFF) (int_range 0 100000) (int_range 0 5_000_000)
        (string_of_size Gen.(1 -- 30)))
    (fun (xid, uid, off, name) ->
      QCheck.assume (not (String.contains name '/'));
      let r =
        {
          base_record with
          xid;
          uid;
          call =
            (if off mod 2 = 0 then Ops.Lookup { dir = dir_fh; name }
             else Ops.Read { fh = file_fh; offset = Int64.of_int off; count = 1 + (off mod 9000) });
          result = None;
          reply_time = None;
        }
      in
      match Record.of_line (Record.to_line r) with
      | Ok r' ->
          r'.xid = xid && r'.uid = uid
          && Record.name r' = Record.name r
          && Record.offset r' = Record.offset r
      | Error _ -> false)

let () =
  Alcotest.run "nt_trace"
    [
      ( "record",
        [
          Alcotest.test_case "roundtrip read" `Quick test_line_roundtrip_read;
          Alcotest.test_case "roundtrip all procs" `Quick test_line_roundtrip_all_procs;
          Alcotest.test_case "escaping" `Quick test_line_escaping;
          Alcotest.test_case "lost reply" `Quick test_line_lost_reply;
          Alcotest.test_case "error result" `Quick test_line_error_result;
          Alcotest.test_case "bad input" `Quick test_line_bad_input;
          Alcotest.test_case "io bytes" `Quick test_io_bytes;
          Alcotest.test_case "channel roundtrip" `Quick test_channel_roundtrip;
          QCheck_alcotest.to_alcotest prop_record_line_roundtrip;
          QCheck_alcotest.to_alcotest prop_of_line_never_crashes;
        ] );
      ( "fh_map",
        [
          Alcotest.test_case "paths" `Quick test_fh_map_paths;
          Alcotest.test_case "rename" `Quick test_fh_map_rename;
          Alcotest.test_case "resolution rate" `Quick test_fh_map_resolution_rate;
        ] );
      ( "capture",
        [
          Alcotest.test_case "udp roundtrip" `Quick test_capture_udp_roundtrip;
          Alcotest.test_case "tcp roundtrip" `Quick test_capture_tcp_roundtrip;
          Alcotest.test_case "lost reply" `Quick test_capture_lost_reply;
          Alcotest.test_case "orphan reply" `Quick test_capture_orphan_reply;
          Alcotest.test_case "garbage frame" `Quick test_capture_garbage_frame;
          QCheck_alcotest.to_alcotest prop_capture_never_crashes_on_garbage;
          QCheck_alcotest.to_alcotest prop_capture_survives_bitflips;
        ] );
      ( "anonymize",
        [
          Alcotest.test_case "consistent" `Quick test_anon_consistent;
          Alcotest.test_case "changes names" `Quick test_anon_changes_names;
          Alcotest.test_case "suffix shared" `Quick test_anon_suffix_shared;
          Alcotest.test_case "special affixes" `Quick test_anon_special_affixes;
          Alcotest.test_case "preserved names" `Quick test_anon_preserved_names;
          Alcotest.test_case "lock suffix" `Quick test_anon_lock_suffix_preserved;
          Alcotest.test_case "dotfile dot" `Quick test_anon_dotfile_keeps_dot;
          Alcotest.test_case "uid/gid" `Quick test_anon_uid_gid;
          Alcotest.test_case "ip" `Quick test_anon_ip;
          Alcotest.test_case "seeds differ" `Quick test_anon_seeds_differ;
          Alcotest.test_case "record" `Quick test_anon_record;
          Alcotest.test_case "omit mode" `Quick test_anon_omit;
          Alcotest.test_case "categories survive" `Quick test_anon_categories_survive;
        ] );
    ]
