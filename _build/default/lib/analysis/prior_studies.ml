type daily_activity = {
  label : string;
  year : int;
  days : int;
  total_ops_m : float;
  data_read_gb : float;
  read_ops_m : float;
  data_written_gb : float;
  write_ops_m : float;
  rw_byte_ratio : float;
  rw_op_ratio : float;
}

(* Table 2, rightmost columns. *)
let ins =
  { label = "INS"; year = 2000; days = 31; total_ops_m = 8.30; data_read_gb = 3.05;
    read_ops_m = 2.32; data_written_gb = 0.542; write_ops_m = 0.15; rw_byte_ratio = 5.6;
    rw_op_ratio = 15.4 }

let res =
  { label = "RES"; year = 2000; days = 31; total_ops_m = 3.20; data_read_gb = 1.70;
    read_ops_m = 0.303; data_written_gb = 0.455; write_ops_m = 0.071; rw_byte_ratio = 3.7;
    rw_op_ratio = 4.27 }

let nt =
  { label = "NT"; year = 2000; days = 31; total_ops_m = 3.87; data_read_gb = 4.04;
    read_ops_m = 1.27; data_written_gb = 0.639; write_ops_m = 0.231; rw_byte_ratio = 6.3;
    rw_op_ratio = 4.49 }

let sprite =
  { label = "Sprite"; year = 1991; days = 8; total_ops_m = 0.432; data_read_gb = 5.36;
    read_ops_m = 0.207; data_written_gb = 1.16; write_ops_m = 0.057; rw_byte_ratio = 4.6;
    rw_op_ratio = 3.61 }

let table2_comparisons = [ ins; res; nt; sprite ]

(* Table 2, the 10/21–10/27 columns. *)
let campus_week =
  { label = "CAMPUS"; year = 2001; days = 7; total_ops_m = 26.7; data_read_gb = 119.6;
    read_ops_m = 17.29; data_written_gb = 44.57; write_ops_m = 5.73; rw_byte_ratio = 2.68;
    rw_op_ratio = 3.01 }

let eecs_week =
  { label = "EECS"; year = 2001; days = 7; total_ops_m = 4.44; data_read_gb = 5.10;
    read_ops_m = 0.461; data_written_gb = 9.086; write_ops_m = 0.667; rw_byte_ratio = 0.56;
    rw_op_ratio = 0.69 }

type run_breakdown = {
  label : string;
  reads_pct : float;
  read_entire : float;
  read_seq : float;
  read_random : float;
  writes_pct : float;
  write_entire : float;
  write_seq : float;
  write_random : float;
  rw_pct : float;
  rw_entire : float;
  rw_seq : float;
  rw_random : float;
}

(* Table 3. *)
let nt_runs =
  { label = "NT"; reads_pct = 73.8; read_entire = 64.6; read_seq = 7.1; read_random = 28.3;
    writes_pct = 23.5; write_entire = 41.6; write_seq = 57.1; write_random = 1.3; rw_pct = 2.7;
    rw_entire = 15.9; rw_seq = 0.3; rw_random = 83.8 }

let sprite_runs =
  { label = "Sprite"; reads_pct = 83.5; read_entire = 72.5; read_seq = 25.4; read_random = 2.1;
    writes_pct = 15.4; write_entire = 67.0; write_seq = 28.9; write_random = 4.0; rw_pct = 1.1;
    rw_entire = 0.1; rw_seq = 0.0; rw_random = 99.9 }

let bsd_runs =
  { label = "BSD"; reads_pct = 64.5; read_entire = 67.1; read_seq = 24.0; read_random = 8.9;
    writes_pct = 27.5; write_entire = 82.5; write_seq = 17.2; write_random = 0.3; rw_pct = 7.9;
    rw_entire = nan; rw_seq = nan; rw_random = 75.1 }

let campus_runs_raw =
  { label = "CAMPUS raw"; reads_pct = 53.1; read_entire = 47.7; read_seq = 29.3;
    read_random = 23.0; writes_pct = 43.8; write_entire = 37.2; write_seq = 52.3;
    write_random = 10.5; rw_pct = 3.1; rw_entire = 1.4; rw_seq = 0.9; rw_random = 97.8 }

let campus_runs_processed =
  { label = "CAMPUS processed"; reads_pct = 53.1; read_entire = 57.6; read_seq = 33.9;
    read_random = 8.6; writes_pct = 43.9; write_entire = 37.8; write_seq = 53.2;
    write_random = 9.0; rw_pct = 3.0; rw_entire = 3.5; rw_seq = 2.1; rw_random = 94.3 }

let eecs_runs_raw =
  { label = "EECS raw"; reads_pct = 16.6; read_entire = 53.9; read_seq = 36.8;
    read_random = 9.3; writes_pct = 82.3; write_entire = 19.6; write_seq = 76.2;
    write_random = 4.1; rw_pct = 1.1; rw_entire = 4.4; rw_seq = 1.8; rw_random = 93.9 }

let eecs_runs_processed =
  { label = "EECS processed"; reads_pct = 16.5; read_entire = 57.2; read_seq = 39.0;
    read_random = 3.8; writes_pct = 82.3; write_entire = 19.6; write_seq = 78.3;
    write_random = 2.1; rw_pct = 1.1; rw_entire = 5.8; rw_seq = 7.3; rw_random = 86.8 }

type block_life = {
  label : string;
  births_m : float;
  births_write_pct : float;
  births_extension_pct : float;
  deaths_m : float;
  deaths_overwrite_pct : float;
  deaths_truncate_pct : float;
  deaths_deletion_pct : float;
}

(* Table 4 (daily figures for 10/22–10/26). *)
let campus_block_life =
  { label = "CAMPUS"; births_m = 28.4; births_write_pct = 99.9; births_extension_pct = 0.1;
    deaths_m = 27.5; deaths_overwrite_pct = 99.1; deaths_truncate_pct = 0.6;
    deaths_deletion_pct = 0.3 }

let eecs_block_life =
  { label = "EECS"; births_m = 9.8; births_write_pct = 75.5; births_extension_pct = 24.5;
    deaths_m = 9.2; deaths_overwrite_pct = 42.4; deaths_truncate_pct = 5.8;
    deaths_deletion_pct = 51.8 }
