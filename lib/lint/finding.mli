(** One lint finding: which rule fired, where, and why.

    Findings carry the zero-based record index so a reader can seek the
    offending line in the trace file, the record's call time (NaN for
    stats-level findings that have no record), and a short free-form
    detail string. Two renderings are provided: a one-line human form
    and a JSON object for machine consumers. *)

type t = {
  rule : Rule.t;
  index : int;  (** zero-based record index; [-1] for stats-level findings *)
  time : float;  (** call time of the record; [nan] for stats-level findings *)
  detail : string;
}

val v : Rule.t -> index:int -> time:float -> string -> t

val to_string : t -> string
(** ["error offset-beyond-size #42 @1003622400.123: read 8192@65536 past size 4096"] *)

val to_json : t -> string
(** One JSON object, no trailing newline. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects. *)
