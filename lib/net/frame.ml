type transport =
  | Udp of { src_port : int; dst_port : int; payload : string }
  | Tcp of { src_port : int; dst_port : int; seq : int; syn : bool; fin : bool; payload : string }

type t = {
  src_mac : string;
  dst_mac : string;
  src_ip : Ip_addr.t;
  dst_ip : Ip_addr.t;
  transport : transport;
}

let default_src_mac = "\x02\x00\x00\x00\x00\x01"
let default_dst_mac = "\x02\x00\x00\x00\x00\x02"
let ethertype_ipv4 = 0x0800
let proto_tcp = 6
let proto_udp = 17

let udp ?(src_mac = default_src_mac) ?(dst_mac = default_dst_mac) ~src_ip ~dst_ip ~src_port
    ~dst_port payload =
  { src_mac; dst_mac; src_ip; dst_ip; transport = Udp { src_port; dst_port; payload } }

let tcp ?(src_mac = default_src_mac) ?(dst_mac = default_dst_mac) ?(syn = false) ?(fin = false)
    ~src_ip ~dst_ip ~src_port ~dst_port ~seq payload =
  { src_mac; dst_mac; src_ip; dst_ip; transport = Tcp { src_port; dst_port; seq; syn; fin; payload } }

let set16 b pos v =
  Bytes.set b pos (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (pos + 1) (Char.chr (v land 0xFF))

let set32 b pos v =
  set16 b pos ((v lsr 16) land 0xFFFF);
  set16 b (pos + 2) (v land 0xFFFF)

let get8 s pos = Char.code s.[pos]
let get16 s pos = (get8 s pos lsl 8) lor get8 s (pos + 1)
let get32 s pos = (get16 s pos lsl 16) lor get16 s (pos + 2)

let ipv4_checksum s ~pos ~len =
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + get16 s (pos + !i);
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (get8 s (pos + len - 1) lsl 8);
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let encode t =
  let payload, proto, transport_len =
    match t.transport with
    | Udp { payload; _ } -> (payload, proto_udp, 8 + String.length payload)
    | Tcp { payload; _ } -> (payload, proto_tcp, 20 + String.length payload)
  in
  let ip_len = 20 + transport_len in
  let b = Bytes.make (14 + ip_len) '\000' in
  Bytes.blit_string t.dst_mac 0 b 0 6;
  Bytes.blit_string t.src_mac 0 b 6 6;
  set16 b 12 ethertype_ipv4;
  (* IPv4 header *)
  let ip = 14 in
  Bytes.set b ip '\x45';
  set16 b (ip + 2) ip_len;
  Bytes.set b (ip + 8) '\x40' (* TTL 64 *);
  Bytes.set b (ip + 9) (Char.chr proto);
  set32 b (ip + 12) t.src_ip;
  set32 b (ip + 16) t.dst_ip;
  let cksum = ipv4_checksum (Bytes.unsafe_to_string b) ~pos:ip ~len:20 in
  set16 b (ip + 10) cksum;
  (* Transport header + payload *)
  let tp = ip + 20 in
  (match t.transport with
  | Udp { src_port; dst_port; payload } ->
      set16 b tp src_port;
      set16 b (tp + 2) dst_port;
      set16 b (tp + 4) (8 + String.length payload);
      Bytes.blit_string payload 0 b (tp + 8) (String.length payload)
  | Tcp { src_port; dst_port; seq; syn; fin; payload } ->
      set16 b tp src_port;
      set16 b (tp + 2) dst_port;
      set32 b (tp + 4) (seq land 0xFFFFFFFF);
      (* data offset 5 words, flags: ACK always, SYN/FIN as requested *)
      Bytes.set b (tp + 12) '\x50';
      let flags = 0x10 lor (if syn then 0x02 else 0) lor if fin then 0x01 else 0 in
      Bytes.set b (tp + 13) (Char.chr flags);
      set16 b (tp + 14) 0xFFFF (* window *);
      Bytes.blit_string payload 0 b (tp + 20) (String.length payload));
  ignore payload;
  Bytes.unsafe_to_string b

let header_checksum_ok s =
  let len = String.length s in
  if len < 34 || get16 s 12 <> ethertype_ipv4 then true
  else begin
    let vihl = get8 s 14 in
    let ihl = (vihl land 0xF) * 4 in
    if vihl lsr 4 <> 4 || ihl < 20 || 14 + ihl > len then true
    else ipv4_checksum s ~pos:14 ~len:ihl = 0
  end

let decode s =
  let len = String.length s in
  if len < 34 then Error "frame too short"
  else if get16 s 12 <> ethertype_ipv4 then Error "not IPv4"
  else begin
    let ip = 14 in
    let vihl = get8 s ip in
    if vihl lsr 4 <> 4 then Error "not IP version 4"
    else begin
      let ihl = (vihl land 0xF) * 4 in
      if ihl < 20 then Error "bad IP header length"
      else begin
        let total = get16 s (ip + 2) in
        if ip + total > len || total < ihl then Error "truncated IP packet"
        else begin
          let proto = get8 s (ip + 9) in
          let src_ip = get32 s (ip + 12) in
          let dst_ip = get32 s (ip + 16) in
          let tp = ip + ihl in
          let dst_mac = String.sub s 0 6 in
          let src_mac = String.sub s 6 6 in
          if proto = proto_udp then begin
            if ip + total - tp < 8 then Error "truncated UDP header"
            else begin
              let src_port = get16 s tp in
              let dst_port = get16 s (tp + 2) in
              let udp_len = get16 s (tp + 4) in
              if tp + udp_len > ip + total || udp_len < 8 then Error "bad UDP length"
              else
                let payload = String.sub s (tp + 8) (udp_len - 8) in
                Ok { src_mac; dst_mac; src_ip; dst_ip; transport = Udp { src_port; dst_port; payload } }
            end
          end
          else if proto = proto_tcp then begin
            if ip + total - tp < 20 then Error "truncated TCP header"
            else begin
              let src_port = get16 s tp in
              let dst_port = get16 s (tp + 2) in
              let seq = get32 s (tp + 4) in
              let doff = (get8 s (tp + 12) lsr 4) * 4 in
              if doff < 20 || tp + doff > ip + total then Error "bad TCP data offset"
              else begin
                let flags = get8 s (tp + 13) in
                let syn = flags land 0x02 <> 0 in
                let fin = flags land 0x01 <> 0 in
                let payload = String.sub s (tp + doff) (ip + total - tp - doff) in
                Ok
                  { src_mac; dst_mac; src_ip; dst_ip;
                    transport = Tcp { src_port; dst_port; seq; syn; fin; payload } }
              end
            end
          end
          else Error (Printf.sprintf "unsupported IP protocol %d" proto)
        end
      end
    end
  end
[@@nt.alloc_ok "materializes MACs and one payload copy per frame; zero-copy slices are a ROADMAP item"]
