(* Clean twin for reachability: this module holds top-level mutable
   state but is NOT imported by Fix_driver, so the domain-safety rules
   must stay silent about it. *)

let scratch = Buffer.create 64
let note s = Buffer.add_string scratch s
