(** Discrete-event simulation engine.

    A single global clock and a priority queue of thunks. Events
    scheduled for the same instant fire in insertion order, which keeps
    runs deterministic. *)

type t

val create : ?obs:Nt_obs.Obs.t -> ?start:float -> unit -> t
(** [obs] (default {!Nt_obs.Obs.null}) hosts
    [engine.events_dispatched] and the [engine.queue_depth] peak
    gauge; the disabled default costs one dead branch per event. *)

val now : t -> float

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at thunk] runs [thunk] when the clock reaches [at].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_in : t -> float -> (unit -> unit) -> unit
(** Relative form: [schedule_in t delay thunk]. *)

val run_until : t -> float -> unit
(** Fire every event with time <= the horizon, then set the clock to
    the horizon. Events may schedule further events. *)

val run_all : t -> unit
(** Drain the queue completely. *)

val pending : t -> int
