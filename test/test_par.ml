(* Parallel sharded analysis engine tests.

   The centerpiece is a differential oracle: for randomized workloads,
   shard sizes and shard counts, merge-of-shards must equal the
   sequential single-pass result for every analysis pass — exactly for
   integers, within 1e-9 relative for float sums (reassociation).
   Around it: shard-boundary unit tests (runs, lifetimes and reorder
   windows straddling a cut), report determinism + a golden file, the
   Summary.days empty-shard regression, and pool/shard-plan unit
   tests. NT_PAR_TEST_JOBS sets the worker-domain count the sharded
   side runs with (CI's par job uses 4); the results must not care. *)

module Summary = Nt_analysis.Summary
module Hourly = Nt_analysis.Hourly
module Io_log = Nt_analysis.Io_log
module Runs = Nt_analysis.Runs
module Seqmetric = Nt_analysis.Seqmetric
module Names = Nt_analysis.Names
module Lifetime = Nt_analysis.Lifetime
module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Ip = Nt_net.Ip_addr
module Tw = Nt_util.Trace_week
module Histogram = Nt_util.Histogram
module Stats = Nt_util.Stats
module Obs = Nt_obs.Obs
module Pool = Nt_par.Pool
module Shard = Nt_par.Shard
module Driver = Nt_par.Driver
module Passes = Nt_par.Passes
module Report = Nt_par.Report
module Win = Nt_mon.Win

let test_jobs =
  match Sys.getenv_opt "NT_PAR_TEST_JOBS" with Some s -> int_of_string s | None -> 1

(* --- record constructors --- *)

let record ?(time = Tw.week_start) ?(result = None) call : Record.t =
  {
    time;
    reply_time = Some (time +. 0.001);
    client = Ip.v 10 0 0 1;
    server = Ip.v 10 0 0 2;
    version = 3;
    xid = 1;
    uid = 1;
    gid = 1;
    call;
    result;
  }

let fattr_size size = { Types.default_fattr with size = Int64.of_int size }

let read_rec ~fh ~time ~offset ~count ~size ~eof ?(lost = false) () =
  record ~time
    ~result:
      (if lost then None
       else Some (Ok (Ops.R_read { attr = Some (fattr_size size); count; eof })))
    (Ops.Read { fh; offset = Int64.of_int offset; count })

let write_rec ~fh ~time ~offset ~count ~size ?(lost = false) () =
  record ~time
    ~result:
      (if lost then None
       else
         Some
           (Ok (Ops.R_write { count; committed = Types.File_sync; attr = Some (fattr_size size) })))
    (Ops.Write { fh; offset = Int64.of_int offset; count; stable = Types.File_sync })

let lookup_rec ~time ~dir ~name ~fh ~size ?(ok = true) () =
  record ~time
    ~result:
      (if ok then Some (Ok (Ops.R_lookup { fh; obj = Some (fattr_size size); dir = None }))
       else Some (Error Types.Err_noent))
    (Ops.Lookup { dir; name })

let create_rec ~time ~dir ~name ~fh () =
  record ~time
    ~result:(Some (Ok (Ops.R_create { fh = Some fh; attr = Some (fattr_size 0) })))
    (Ops.Create { dir; name; mode = 0o644; exclusive = false })

let remove_rec ~time ~dir ~name ?(ok = true) () =
  record ~time
    ~result:(Some (if ok then Ok Ops.R_empty else Error Types.Err_noent))
    (Ops.Remove { dir; name })

let rename_rec ~time ~from_dir ~from_name ~to_dir ~to_name () =
  record ~time ~result:(Some (Ok Ops.R_empty))
    (Ops.Rename { from_dir; from_name; to_dir; to_name })

let truncate_rec ~time ~fh ~size () =
  record ~time
    ~result:(Some (Ok (Ops.R_attr (fattr_size size))))
    (Ops.Setattr { fh; attrs = { Types.empty_sattr with set_size = Some (Int64.of_int size) } })

let getattr_rec ~time ~fh ~size () =
  record ~time ~result:(Some (Ok (Ops.R_attr (fattr_size size)))) (Ops.Getattr fh)

(* --- comparison helpers: exact for ints, 1e-9 relative for sums --- *)

let feq ?(tol = 1e-9) a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let cki name a b = if a <> b then QCheck.Test.fail_reportf "%s: %d <> %d" name a b
let ckf name a b = if not (feq a b) then QCheck.Test.fail_reportf "%s: %.17g <> %.17g" name a b

let ckfa name a b =
  if Array.length a <> Array.length b then
    QCheck.Test.fail_reportf "%s: lengths %d <> %d" name (Array.length a) (Array.length b);
  Array.iteri (fun i v -> ckf (Printf.sprintf "%s[%d]" name i) v b.(i)) a

(* --- randomized workload generator ---

   Deterministic in (seed, n). Mixes the shapes that stress shard-mode
   accumulators: pre-existing files first named (or never named)
   mid-trace, creates of fresh handles, removes of bindings learned
   shards earlier, unresolvable and failed removes, renames with
   unknown sources and live victims, truncates, lost replies, run gaps
   and hour/phase-scale time jumps. *)

type genfile = { g_fh : Fh.t; mutable g_size : int; mutable g_pos : int }

let gen_records ~seed ~n =
  let rng = Random.State.make [| 0x9e3779b9; seed; n |] in
  let dirs = [| Fh.make ~fsid:9 ~fileid:1; Fh.make ~fsid:9 ~fileid:2 |] in
  let pick_dir () = dirs.(Random.State.int rng 2) in
  let name_id = ref 0 in
  let fresh_name () =
    incr name_id;
    match Random.State.int rng 6 with
    | 0 -> Printf.sprintf "user%d.lock" !name_id
    | 1 -> Printf.sprintf "mbox%d" !name_id
    | 2 -> Printf.sprintf ".rc%d" !name_id
    | 3 -> Printf.sprintf "src%d.c" !name_id
    | 4 -> Printf.sprintf "#comp%d#" !name_id
    | _ -> Printf.sprintf "data%d" !name_id
  in
  let pre =
    Array.init 8 (fun i ->
        { g_fh = Fh.make ~fsid:9 ~fileid:(100 + i); g_size = 65536; g_pos = 0 })
  in
  let files = ref (Array.to_list pre) in
  (* (dir, name, file) bindings the stream has established *)
  let bound = ref [] in
  let next_fileid = ref 5000 in
  let t = ref Tw.week_start in
  let out = ref [] in
  let emit r = out := r :: !out in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let io ~read f time =
    let seq = Random.State.int rng 4 <> 0 in
    let offset = if seq then f.g_pos else 8192 * Random.State.int rng 32 in
    let count = [| 2048; 4096; 8192; 16384 |].(Random.State.int rng 4) in
    let lost = Random.State.int rng 20 = 0 in
    if read then begin
      let eof = offset + count >= f.g_size in
      f.g_pos <- offset + count;
      emit (read_rec ~fh:f.g_fh ~time ~offset ~count ~size:f.g_size ~eof ~lost ())
    end
    else begin
      f.g_size <- max f.g_size (offset + count);
      f.g_pos <- offset + count;
      emit (write_rec ~fh:f.g_fh ~time ~offset ~count ~size:f.g_size ~lost ())
    end
  in
  for _ = 1 to n do
    let dt =
      match Random.State.int rng 100 with
      | 0 | 1 -> 31. +. Random.State.float rng 10. (* breaks a run *)
      | 2 -> 3600. +. Random.State.float rng 400. (* next hour *)
      | 3 -> 25000. (* phase-scale jump *)
      | _ -> Random.State.float rng 0.3
    in
    t := !t +. dt;
    let time = !t in
    match Random.State.int rng 20 with
    | 0 | 1 ->
        (* lookup: bind a (possibly pre-existing) file to a name *)
        let f = pick !files in
        let d = pick_dir () and name = fresh_name () in
        emit (lookup_rec ~time ~dir:d ~name ~fh:f.g_fh ~size:f.g_size ());
        bound := (d, name, f) :: !bound
    | 2 ->
        emit (lookup_rec ~time ~dir:(pick_dir ()) ~name:(fresh_name ()) ~fh:dirs.(0) ~size:0 ~ok:false ())
    | 3 | 4 ->
        (* create: always a fresh handle *)
        incr next_fileid;
        let f = { g_fh = Fh.make ~fsid:9 ~fileid:!next_fileid; g_size = 0; g_pos = 0 } in
        let d = pick_dir () and name = fresh_name () in
        emit (create_rec ~time ~dir:d ~name ~fh:f.g_fh ());
        files := f :: !files;
        bound := (d, name, f) :: !bound
    | 5 when !bound <> [] ->
        (* remove a binding some earlier record (maybe shards ago) made *)
        let ((d, name, f) as b) = pick !bound in
        emit (remove_rec ~time ~dir:d ~name ());
        bound := List.filter (fun b' -> b' != b) !bound;
        if Random.State.bool rng then files := List.filter (fun f' -> f' != f) !files
    | 6 ->
        (* remove of a name never bound in the stream *)
        emit (remove_rec ~time ~dir:(pick_dir ()) ~name:(fresh_name ()) ())
    | 7 when !bound <> [] ->
        (* failed remove: binding survives *)
        let d, name, _ = pick !bound in
        emit (remove_rec ~time ~dir:d ~name ~ok:false ())
    | 8 when !bound <> [] ->
        (* rename a known binding, sometimes onto a live victim *)
        let ((d, name, f) as b) = pick !bound in
        let to_dir, to_name =
          if Random.State.int rng 3 = 0 && List.exists (fun b' -> b' != b) !bound then begin
            let victims = List.filter (fun b' -> b' != b) !bound in
            let ((vd, vn, _) as v) = pick victims in
            bound := List.filter (fun b' -> b' != v) !bound;
            (vd, vn)
          end
          else (pick_dir (), fresh_name ())
        in
        emit (rename_rec ~time ~from_dir:d ~from_name:name ~to_dir ~to_name ());
        bound := (to_dir, to_name, f) :: List.filter (fun b' -> b' != b) !bound
    | 9 ->
        (* rename whose source the stream never bound *)
        emit
          (rename_rec ~time ~from_dir:(pick_dir ()) ~from_name:(fresh_name ())
             ~to_dir:(pick_dir ()) ~to_name:(fresh_name ()) ())
    | 10 ->
        let f = pick !files in
        let size = if Random.State.bool rng then f.g_size / 2 else f.g_size + 8192 in
        f.g_size <- size;
        emit (truncate_rec ~time ~fh:f.g_fh ~size ())
    | 11 ->
        let f = pick !files in
        emit (getattr_rec ~time ~fh:f.g_fh ~size:f.g_size ())
    | 12 | 13 | 14 | 15 -> io ~read:true (pick !files) time
    | _ -> io ~read:false (pick !files) time
  done;
  Array.of_list (List.rev !out)

(* --- sequential vs sharded harness --- *)

let run_seq (pass : 'a Driver.pass) records =
  let acc = pass.Driver.init () in
  Array.iter (pass.Driver.observe acc) records;
  acc

let run_sharded ?(jobs = test_jobs) pass ~shard_len records =
  let slices = Shard.plan ~records_per_shard:shard_len (Array.length records) in
  Pool.with_pool ~jobs (fun pool -> Driver.run_pass pool ~records ~slices pass)

(* --- per-pass equivalence checks --- *)

let check_summary_eq s p =
  cki "total_ops" (Summary.total_ops s) (Summary.total_ops p);
  cki "read_ops" (Summary.read_ops s) (Summary.read_ops p);
  cki "write_ops" (Summary.write_ops s) (Summary.write_ops p);
  cki "unique_files" (Summary.unique_files_accessed s) (Summary.unique_files_accessed p);
  ckf "bytes_read" (Summary.bytes_read s) (Summary.bytes_read p);
  ckf "bytes_written" (Summary.bytes_written s) (Summary.bytes_written p);
  ckf "days" (Summary.days s) (Summary.days p);
  ckf "data_ops_pct" (Summary.data_ops_pct s) (Summary.data_ops_pct p);
  let by_proc l = List.sort compare (List.map (fun (p, n) -> (Nt_nfs.Proc.to_string p, n)) l) in
  if by_proc (Summary.top_procs s) <> by_proc (Summary.top_procs p) then
    QCheck.Test.fail_reportf "top_procs differ"

let check_hourly_eq s p =
  let hs = Hourly.series s and hp = Hourly.series p in
  cki "series length" (List.length hs) (List.length hp);
  List.iter2
    (fun (a : Hourly.hour_point) (b : Hourly.hour_point) ->
      cki "hour" a.hour b.hour;
      cki "ops" a.ops b.ops;
      cki "reads" a.reads b.reads;
      cki "writes" a.writes b.writes;
      ckf "bytes_read" a.bytes_read b.bytes_read;
      ckf "bytes_written" a.bytes_written b.bytes_written)
    hs hp

let check_io_log_eq s p =
  cki "files" (Io_log.files s) (Io_log.files p);
  cki "accesses" (Io_log.accesses s) (Io_log.accesses p);
  let fs = Io_log.sorted_files s and fp = Io_log.sorted_files p in
  Array.iteri
    (fun i (fh, aa) ->
      let fh', ab = fp.(i) in
      if not (Fh.equal fh fh') then QCheck.Test.fail_reportf "file %d handle differs" i;
      if aa <> ab then QCheck.Test.fail_reportf "file %d access list differs" i)
    fs

let check_runs_eq rs rp =
  cki "run count" (List.length rs) (List.length rp);
  (* order differs (hash order vs handle order): compare as multisets *)
  if List.sort compare rs <> List.sort compare rp then
    QCheck.Test.fail_reportf "run multiset differs";
  let ts = Runs.table3 rs and tp = Runs.table3 rp in
  cki "total_runs" ts.total_runs tp.total_runs;
  ckf "reads_pct" ts.reads_pct tp.reads_pct;
  ckf "writes_pct" ts.writes_pct tp.writes_pct;
  ckf "rw_pct" ts.rw_pct tp.rw_pct;
  ckf "read.entire" ts.read.entire_pct tp.read.entire_pct;
  ckf "write.entire" ts.write.entire_pct tp.write.entire_pct

let check_curve_eq (s : Seqmetric.curve) (p : Seqmetric.curve) =
  ckfa "read_allowed" s.read_allowed p.read_allowed;
  ckfa "read_strict" s.read_strict p.read_strict;
  ckfa "write_allowed" s.write_allowed p.write_allowed;
  ckfa "write_strict" s.write_strict p.write_strict;
  ckfa "cum_total_runs" s.cum_total_runs p.cum_total_runs;
  ckfa "cum_read_runs" s.cum_read_runs p.cum_read_runs;
  ckfa "cum_write_runs" s.cum_write_runs p.cum_write_runs

let check_names_eq s p =
  cki "created_deleted_total" (Names.created_deleted_total s) (Names.created_deleted_total p);
  ckf "lock_created_deleted_pct" (Names.lock_created_deleted_pct s)
    (Names.lock_created_deleted_pct p);
  ckf "lock_lifetime_under" (Names.lock_lifetime_under s 0.4) (Names.lock_lifetime_under p 0.4);
  ckf "composer_size_under" (Names.composer_size_under s 8192.)
    (Names.composer_size_under p 8192.);
  List.iter2
    (fun (c, (a : Names.category_stats)) (c', (b : Names.category_stats)) ->
      if c <> c' then QCheck.Test.fail_reportf "category order differs";
      let n = Names.category_to_string c in
      cki (n ^ ".files_seen") a.files_seen b.files_seen;
      cki (n ^ ".created_deleted") a.created_deleted b.created_deleted;
      ckf (n ^ ".median_size") a.median_size b.median_size;
      ckf (n ^ ".median_lifetime") a.median_lifetime b.median_lifetime;
      ckf (n ^ ".read_only_pct") a.read_only_pct b.read_only_pct;
      ckf (n ^ ".write_only_pct") a.write_only_pct b.write_only_pct)
    (Names.stats s) (Names.stats p);
  List.iter
    (fun c ->
      ckf
        (Names.category_to_string c ^ ".byte_share")
        (Names.byte_share s c) (Names.byte_share p c))
    Names.all_categories

let check_lifetime_eq s p =
  cki "ground_conflicts" 0 (Lifetime.ground_conflicts p);
  let a = Lifetime.result s and b = Lifetime.result p in
  cki "births" a.births b.births;
  cki "deaths" a.deaths b.deaths;
  cki "end_surplus" a.end_surplus b.end_surplus;
  ckf "births_write_pct" a.births_write_pct b.births_write_pct;
  ckf "births_extension_pct" a.births_extension_pct b.births_extension_pct;
  ckf "deaths_overwrite_pct" a.deaths_overwrite_pct b.deaths_overwrite_pct;
  ckf "deaths_truncate_pct" a.deaths_truncate_pct b.deaths_truncate_pct;
  ckf "deaths_deletion_pct" a.deaths_deletion_pct b.deaths_deletion_pct;
  ckf "end_surplus_pct" a.end_surplus_pct b.end_surplus_pct;
  cki "cdf length" (List.length a.lifetime_cdf) (List.length b.lifetime_cdf);
  List.iter2
    (fun (e, f) (e', f') ->
      ckf "cdf edge" e e';
      ckf "cdf frac" f f')
    a.lifetime_cdf b.lifetime_cdf

(* --- merge-equivalence properties (the differential oracle) --- *)

let workload_arb = QCheck.(triple (int_range 0 400) (int_range 1 97) (int_range 0 9999))

let prop_pass name pass check =
  QCheck.Test.make ~count:40 ~name
    workload_arb
    (fun (n, shard_len, seed) ->
      let records = gen_records ~seed ~n in
      check (run_seq pass records) (run_sharded pass ~shard_len records);
      true)

let lifetime_cfg = Lifetime.config ~phase1_start:Tw.week_start

let prop_summary = prop_pass "summary: merge of shards == sequential" Passes.summary check_summary_eq
let prop_hourly = prop_pass "hourly: merge of shards == sequential" Passes.hourly check_hourly_eq
let prop_io_log = prop_pass "io_log: merge of shards == sequential" Passes.io_log check_io_log_eq
let prop_names = prop_pass "names: merge of shards == sequential" Passes.names check_names_eq

let prop_lifetime =
  prop_pass "lifetime: merge of shards == sequential" (Passes.lifetime lifetime_cfg)
    check_lifetime_eq

let prop_runs =
  QCheck.Test.make ~count:40 ~name:"runs: chunked over merged log == sequential" workload_arb
    (fun (n, shard_len, seed) ->
      let records = gen_records ~seed ~n in
      let log_seq = run_seq Passes.io_log records in
      let log_par = run_sharded Passes.io_log ~shard_len records in
      let rs = Runs.analyze ~window:0.01 ~jump_blocks:10 log_seq in
      let rp =
        Pool.with_pool ~jobs:test_jobs (fun pool ->
            Passes.runs ~chunk:(1 + (seed mod 7)) ~jump_blocks:10 pool log_par)
      in
      check_runs_eq rs rp;
      true)

let prop_seqmetric =
  QCheck.Test.make ~count:40 ~name:"seqmetric: chunked over merged log == sequential" workload_arb
    (fun (n, shard_len, seed) ->
      let records = gen_records ~seed ~n in
      let log_seq = run_seq Passes.io_log records in
      let log_par = run_sharded Passes.io_log ~shard_len records in
      let cs = Seqmetric.analyze log_seq in
      let cp =
        Pool.with_pool ~jobs:test_jobs (fun pool ->
            Passes.seq_curve ~chunk:(1 + (seed mod 5)) pool log_par)
      in
      check_curve_eq cs cp;
      true)

(* --- merge laws ---

   ntcheck's merge-law-missing rule requires every interface exposing
   [merge : t -> t -> t] to be registered through [prop_merge_laws];
   each call below names the module's merge directly so the typedtree
   scan can attribute the coverage. *)

let slice records a b = Array.sub records a (b - a)

let build_with init observe records =
  let acc = init () in
  Array.iter (observe acc) records;
  acc

(* Associativity and neutral elements over a random 3-way split of a
   random workload. Accumulators are rebuilt from scratch on each side
   of every law because merges may mutate their first argument.
   Root-left merges (Names, Lifetime reject shard<>shard) get the fold
   form of associativity: folding the same records through two
   different tail splits must agree. *)
let prop_merge_laws name ~symmetric ~build ~build_shard ~empty ~empty_shard ~merge ~eq =
  QCheck.Test.make ~count:40 ~name:(name ^ ": merge laws (assoc + neutral)") workload_arb
    (fun (n, cut, seed) ->
      let records = gen_records ~seed ~n in
      let len = Array.length records in
      let i = cut mod (len + 1) in
      let j = i + ((len - i) / 2) in
      let r1 () = build (slice records 0 i)
      and s2 () = build_shard (slice records i j)
      and s3 () = build_shard (slice records j len) in
      eq (build records) (merge (build records) (empty_shard ()));
      eq (build records) (merge (empty ()) (build_shard records));
      (if symmetric then
         eq
           (merge (merge (r1 ()) (s2 ())) (s3 ()))
           (merge (r1 ()) (merge (s2 ()) (s3 ())))
       else
         let j' = i + ((len - i) / 3) in
         let s2' () = build_shard (slice records i j')
         and s3' () = build_shard (slice records j' len) in
         eq
           (merge (merge (r1 ()) (s2 ())) (s3 ()))
           (merge (merge (r1 ()) (s2' ())) (s3' ())));
      true)

let law_summary =
  prop_merge_laws "summary" ~symmetric:true
    ~build:(build_with Summary.create Summary.observe)
    ~build_shard:(build_with Summary.create Summary.observe)
    ~empty:Summary.create ~empty_shard:Summary.create ~merge:Summary.merge
    ~eq:check_summary_eq

let law_hourly =
  prop_merge_laws "hourly" ~symmetric:true
    ~build:(build_with Hourly.create Hourly.observe)
    ~build_shard:(build_with Hourly.create Hourly.observe)
    ~empty:Hourly.create ~empty_shard:Hourly.create ~merge:Hourly.merge ~eq:check_hourly_eq

let law_io_log =
  prop_merge_laws "io_log" ~symmetric:true
    ~build:(build_with Io_log.create Io_log.observe)
    ~build_shard:(build_with Io_log.create Io_log.observe)
    ~empty:Io_log.create ~empty_shard:Io_log.create ~merge:Io_log.merge ~eq:check_io_log_eq

let law_names =
  prop_merge_laws "names" ~symmetric:false
    ~build:(build_with Names.create Names.observe)
    ~build_shard:(build_with Names.create_shard Names.observe)
    ~empty:Names.create ~empty_shard:Names.create_shard ~merge:Names.merge
    ~eq:check_names_eq

let law_lifetime =
  prop_merge_laws "lifetime" ~symmetric:false
    ~build:(build_with (fun () -> Lifetime.create lifetime_cfg) Lifetime.observe)
    ~build_shard:(build_with (fun () -> Lifetime.create_shard lifetime_cfg) Lifetime.observe)
    ~empty:(fun () -> Lifetime.create lifetime_cfg)
    ~empty_shard:(fun () -> Lifetime.create_shard lifetime_cfg)
    ~merge:Lifetime.merge ~eq:check_lifetime_eq

let check_histogram_eq a b =
  ckfa "edges" (Histogram.edges a) (Histogram.edges b);
  cki "bucket_count" (Histogram.bucket_count a) (Histogram.bucket_count b);
  ckfa "weights"
    (Array.init (Histogram.bucket_count a) (Histogram.weight a))
    (Array.init (Histogram.bucket_count b) (Histogram.weight b));
  ckf "total_weight" (Histogram.total_weight a) (Histogram.total_weight b)

let law_histogram =
  let build records =
    let h = Histogram.log2_buckets ~lo:1. ~hi:(2. ** 24.) in
    Array.iter
      (fun (r : Record.t) -> Histogram.add h (r.Record.time -. Tw.week_start +. 1.))
      records;
    h
  in
  let empty () = Histogram.log2_buckets ~lo:1. ~hi:(2. ** 24.) in
  prop_merge_laws "histogram" ~symmetric:true ~build ~build_shard:build ~empty
    ~empty_shard:empty ~merge:Histogram.merge ~eq:check_histogram_eq

let check_stats_eq a b =
  cki "count" (Stats.count a) (Stats.count b);
  ckf "total" (Stats.total a) (Stats.total b);
  ckf "mean" (Stats.mean a) (Stats.mean b);
  ckf "variance" (Stats.variance a) (Stats.variance b);
  ckf "min" (Stats.min a) (Stats.min b);
  ckf "max" (Stats.max a) (Stats.max b)

let law_stats =
  let build records =
    let t = Stats.create () in
    Array.iter (fun (r : Record.t) -> Stats.add t (r.Record.time -. Tw.week_start)) records;
    t
  in
  prop_merge_laws "stats" ~symmetric:true ~build ~build_shard:build ~empty:Stats.create
    ~empty_shard:Stats.create ~merge:Stats.merge ~eq:check_stats_eq

let check_win_row name (a : Win.row) (b : Win.row) =
  cki (name ^ ".ops") a.Win.ops b.Win.ops;
  cki (name ^ ".read_bytes") a.Win.read_bytes b.Win.read_bytes;
  cki (name ^ ".write_bytes") a.Win.write_bytes b.Win.write_bytes

let check_win_eq a b =
  (match (Win.span a, Win.span b) with
  | None, None -> ()
  | Some (lo1, hi1), Some (lo2, hi2) ->
      ckf "span.lo" lo1 lo2;
      ckf "span.hi" hi1 hi2
  | _ -> QCheck.Test.fail_reportf "span: one side empty");
  cki "total_ops" (Win.total_ops a) (Win.total_ops b);
  cki "read_ops" (Win.read_ops a) (Win.read_ops b);
  cki "read_bytes" (Win.read_bytes a) (Win.read_bytes b);
  cki "write_ops" (Win.write_ops a) (Win.write_ops b);
  cki "write_bytes" (Win.write_bytes a) (Win.write_bytes b);
  cki "commit_ops" (Win.commit_ops a) (Win.commit_ops b);
  cki "lost_replies" (Win.lost_replies a) (Win.lost_replies b);
  List.iter2
    (fun (s1, r1) (s2, r2) ->
      cki "stable.kind" (Types.stable_how_to_int s1) (Types.stable_how_to_int s2);
      check_win_row "stable" r1 r2)
    (Win.writes_by_stable a) (Win.writes_by_stable b);
  List.iter
    (fun table ->
      let tn = Win.table_name table in
      cki (tn ^ ".size") (Win.table_size a table) (Win.table_size b table);
      cki (tn ^ ".evictions") (Win.evictions a table) (Win.evictions b table);
      check_win_row (tn ^ ".other") (Win.other_row a table) (Win.other_row b table);
      let ta = Win.top a table max_int and tb = Win.top b table max_int in
      cki (tn ^ ".rows") (List.length ta) (List.length tb);
      List.iter2
        (fun (k1, r1) (k2, r2) ->
          if k1 <> k2 then QCheck.Test.fail_reportf "%s.key: %s <> %s" tn k1 k2;
          check_win_row (tn ^ ".row") r1 r2)
        ta tb)
    Win.all_tables

(* Tight caps so the laws hold even while the eviction machinery is
   active on every build: capping happens at observe time and [merge]
   stays an exact sum, which is exactly the design the monitor's ring
   relies on. *)
let law_win =
  let win_caps = { Win.client_cap = 3; uid_cap = 3; fs_cap = 2; proc_cap = 4 } in
  let build = build_with (fun () -> Win.create ~caps:win_caps ()) Win.observe in
  let empty () = Win.create ~caps:win_caps () in
  prop_merge_laws "win" ~symmetric:true ~build ~build_shard:build ~empty ~empty_shard:empty
    ~merge:Win.merge ~eq:check_win_eq

(* --- footprint accounting ---

   ntcheck's footprint-missing rule requires every merge-bearing
   interface to expose state-footprint accounting and have it
   registered through [prop_footprint]; each call below names the
   module's footprint directly so the typedtree scan can attribute the
   coverage.  The invariant is deliberately weak: [words] is a
   structural estimate and is NOT monotone over record prefixes (Names
   resolves orphans away, shrinking words), but an accumulator that
   reports zero words or fewer words than tracked entries is lying to
   the nt_state_* gauges. *)

let prop_footprint name ~build ~footprint =
  QCheck.Test.make ~count:40 ~name:(name ^ ": footprint honesty (words >= cards, > 0)")
    workload_arb
    (fun (n, _cut, seed) ->
      let records = gen_records ~seed ~n in
      let fp = footprint (build records) in
      if fp.Nt_obs.Footprint.words <= 0 then
        QCheck.Test.fail_reportf "%s: words = %d, state invisible to gauges" name
          fp.Nt_obs.Footprint.words;
      if fp.Nt_obs.Footprint.cards < 0 then
        QCheck.Test.fail_reportf "%s: negative cardinality %d" name fp.Nt_obs.Footprint.cards;
      if fp.Nt_obs.Footprint.words < fp.Nt_obs.Footprint.cards then
        QCheck.Test.fail_reportf "%s: %d entries in %d words undercounts heap" name
          fp.Nt_obs.Footprint.cards fp.Nt_obs.Footprint.words;
      true)

let fp_summary =
  prop_footprint "summary"
    ~build:(build_with Summary.create Summary.observe)
    ~footprint:Summary.footprint

let fp_hourly =
  prop_footprint "hourly"
    ~build:(build_with Hourly.create Hourly.observe)
    ~footprint:Hourly.footprint

let fp_io_log =
  prop_footprint "io_log"
    ~build:(build_with Io_log.create Io_log.observe)
    ~footprint:Io_log.footprint

let fp_names =
  prop_footprint "names"
    ~build:(build_with Names.create Names.observe)
    ~footprint:Names.footprint

let fp_lifetime =
  prop_footprint "lifetime"
    ~build:(build_with (fun () -> Lifetime.create lifetime_cfg) Lifetime.observe)
    ~footprint:Lifetime.footprint

let fp_histogram =
  prop_footprint "histogram"
    ~build:(fun records ->
      let h = Histogram.log2_buckets ~lo:1. ~hi:(2. ** 24.) in
      Array.iter
        (fun (r : Record.t) -> Histogram.add h (r.Record.time -. Tw.week_start +. 1.))
        records;
      h)
    ~footprint:Histogram.footprint

let fp_stats =
  prop_footprint "stats"
    ~build:(fun records ->
      let t = Stats.create () in
      Array.iter (fun (r : Record.t) -> Stats.add t (r.Record.time -. Tw.week_start)) records;
      t)
    ~footprint:Stats.footprint

let fp_win =
  let win_caps = { Win.client_cap = 3; uid_cap = 3; fs_cap = 2; proc_cap = 4 } in
  prop_footprint "win"
    ~build:(build_with (fun () -> Win.create ~caps:win_caps ()) Win.observe)
    ~footprint:Win.footprint

(* --- shard-boundary unit tests --- *)

let fh_a = Fh.make ~fsid:9 ~fileid:201
let dir0 = Fh.make ~fsid:9 ~fileid:1

let check_unit f = fun () -> f ()

(* A sequential run straddling the cut must not be split: the log merge
   carries the open run across the boundary. *)
let test_run_straddles_boundary () =
  let records =
    Array.init 10 (fun i ->
        read_rec ~fh:fh_a ~time:(Tw.week_start +. float_of_int i) ~offset:(i * 8192) ~count:8192
          ~size:(1 lsl 20) ~eof:false ())
  in
  let log_par = run_sharded Passes.io_log ~shard_len:5 records in
  let rp = Runs.analyze ~window:0.01 ~jump_blocks:10 log_par in
  Alcotest.(check int) "one run despite the cut" 1 (List.length rp);
  let r = List.hd rp in
  Alcotest.(check int) "all accesses in it" 10 r.Runs.accesses;
  check_runs_eq (Runs.analyze ~window:0.01 ~jump_blocks:10 (run_seq Passes.io_log records)) rp

(* A reorder-window inversion exactly at the cut: the merged per-file
   list must equal the sequential one, so the window sort fixes it. *)
let test_reorder_window_straddles_boundary () =
  let t0 = Tw.week_start in
  let records =
    [|
      read_rec ~fh:fh_a ~time:t0 ~offset:0 ~count:8192 ~size:(1 lsl 20) ~eof:false ();
      read_rec ~fh:fh_a ~time:(t0 +. 0.001) ~offset:16384 ~count:8192 ~size:(1 lsl 20) ~eof:false ();
      read_rec ~fh:fh_a ~time:(t0 +. 0.002) ~offset:8192 ~count:8192 ~size:(1 lsl 20) ~eof:false ();
      read_rec ~fh:fh_a ~time:(t0 +. 0.003) ~offset:24576 ~count:8192 ~size:(1 lsl 20) ~eof:false ();
    |]
  in
  let log_par = run_sharded Passes.io_log ~shard_len:2 records in
  check_io_log_eq (run_seq Passes.io_log records) log_par;
  let _, accesses = (Io_log.sorted_files log_par).(0) in
  let sorted, swaps = Io_log.sort_window 0.01 accesses in
  Alcotest.(check int) "window sort sees the straddling swap" 1 swaps;
  Alcotest.(check (list int)) "offsets ascend after the sort" [ 0; 8192; 16384; 24576 ]
    (Array.to_list (Array.map (fun (a : Io_log.access) -> a.Io_log.offset) sorted))

(* A file created in one shard, written in the next, removed two shards
   later: the carried state must yield the same births and deaths. *)
let test_lifetime_straddles_boundary () =
  let t0 = Tw.week_start in
  let records =
    [|
      create_rec ~time:(t0 +. 1.) ~dir:dir0 ~name:"straddle" ~fh:fh_a ();
      write_rec ~fh:fh_a ~time:(t0 +. 2.) ~offset:0 ~count:8192 ~size:8192 ();
      (* --- shard cut (len 2) --- *)
      write_rec ~fh:fh_a ~time:(t0 +. 3.) ~offset:8192 ~count:8192 ~size:16384 ();
      getattr_rec ~time:(t0 +. 4.) ~fh:fh_a ~size:16384 ();
      (* --- shard cut --- *)
      remove_rec ~time:(t0 +. 5.) ~dir:dir0 ~name:"straddle" ();
    |]
  in
  let pass = Passes.lifetime lifetime_cfg in
  let s = run_seq pass records and p = run_sharded pass ~shard_len:2 records in
  check_lifetime_eq s p;
  let r = Lifetime.result p in
  Alcotest.(check int) "two tracked births" 2 r.births;
  Alcotest.(check int) "both die by deletion" 2 r.deaths;
  Alcotest.(check (float 1e-9)) "all deletion" 100. r.deaths_deletion_pct

(* An open lifetime: created in shard 0, still live at the end. *)
let test_lifetime_open_across_boundary () =
  let t0 = Tw.week_start in
  let records =
    [|
      create_rec ~time:(t0 +. 1.) ~dir:dir0 ~name:"live" ~fh:fh_a ();
      write_rec ~fh:fh_a ~time:(t0 +. 2.) ~offset:0 ~count:8192 ~size:8192 ();
      getattr_rec ~time:(t0 +. 40.) ~fh:fh_a ~size:8192 ();
      getattr_rec ~time:(t0 +. 41.) ~fh:fh_a ~size:8192 ();
    |]
  in
  let pass = Passes.lifetime lifetime_cfg in
  let s = run_seq pass records and p = run_sharded pass ~shard_len:1 records in
  check_lifetime_eq s p;
  let r = Lifetime.result p in
  Alcotest.(check int) "one tracked birth" 1 r.births;
  Alcotest.(check int) "no deaths" 0 r.deaths;
  Alcotest.(check int) "survives as end surplus" 1 r.end_surplus

(* A remove whose binding was learned a shard earlier must defer and
   then kill the right file at merge. *)
let test_names_remove_across_boundary () =
  let t0 = Tw.week_start in
  let records =
    [|
      create_rec ~time:(t0 +. 0.1) ~dir:dir0 ~name:"x.lock" ~fh:fh_a ();
      write_rec ~fh:fh_a ~time:(t0 +. 0.2) ~offset:0 ~count:100 ~size:100 ();
      remove_rec ~time:(t0 +. 0.3) ~dir:dir0 ~name:"x.lock" ();
    |]
  in
  let s = run_seq Passes.names records and p = run_sharded Passes.names ~shard_len:1 records in
  check_names_eq s p;
  Alcotest.(check int) "created+deleted seen through the cut" 1 (Names.created_deleted_total p)

(* Regression: qcheck counterexample (67, 29, 9417). A file removed
   both by a shard-local REMOVE and by a deferred one replayed at
   merge must keep the earliest deletion time, like the sequential
   pass does (first successful remove wins). *)
let test_names_earliest_delete_wins () =
  let records = gen_records ~seed:9417 ~n:67 in
  check_names_eq (run_seq Passes.names records)
    (run_sharded Passes.names ~shard_len:29 records)

(* --- Summary.days regression: empty shards must be merge-neutral --- *)

let test_days_empty_shard_neutral () =
  let t0 = Tw.week_start in
  let root = Summary.create () in
  Summary.observe root (getattr_rec ~time:t0 ~fh:fh_a ~size:0 ());
  Summary.observe root (getattr_rec ~time:(t0 +. 10.) ~fh:fh_a ~size:0 ());
  let merged = Summary.merge root (Summary.create ()) in
  (* the empty shard's >= 1 microsecond clamp must not inflate the span *)
  Alcotest.(check (float 1e-12)) "span unchanged by empty shard" (10. /. 86400.)
    (Summary.days merged);
  let both_empty = Summary.merge (Summary.create ()) (Summary.create ()) in
  Alcotest.(check (float 1e-12)) "empty merge == empty sequential" (Summary.days (Summary.create ()))
    (Summary.days both_empty)

let test_zero_length_slice_is_neutral () =
  let records = gen_records ~seed:3 ~n:40 in
  let n = Array.length records in
  let slices = [| { Shard.off = 0; len = 17 }; { Shard.off = 17; len = 0 }; { Shard.off = 17; len = n - 17 } |] in
  let p =
    Pool.with_pool ~jobs:test_jobs (fun pool ->
        Driver.run_pass pool ~records ~slices Passes.summary)
  in
  check_summary_eq (run_seq Passes.summary records) p

(* --- determinism and the golden report --- *)

let golden_records () = gen_records ~seed:7 ~n:400

let render_report ~jobs records =
  let sections = [ `Summary; `Runs; `Names; `Hourly ] in
  Report.run ~jobs ~records_per_shard:64 ~sections records
  |> List.map (fun (s, text) -> Printf.sprintf "== %s ==\n%s" (Report.section_name s) text)
  |> String.concat "\n"

let test_report_deterministic () =
  let records = golden_records () in
  let a = render_report ~jobs:1 records in
  let b = render_report ~jobs:4 records in
  let c = render_report ~jobs:4 records in
  Alcotest.(check string) "--jobs 1 == --jobs 4" a b;
  Alcotest.(check string) "repeated --jobs 4 identical" b c

let golden_path = "golden/nfsstats_report.golden"

let test_report_matches_golden () =
  let got = render_report ~jobs:test_jobs (golden_records ()) in
  (* NT_PAR_GOLDEN_UPDATE=<abs path> rewrites the source-tree golden. *)
  (match Sys.getenv_opt "NT_PAR_GOLDEN_UPDATE" with
  | Some path ->
      let oc = open_out path in
      output_string oc got;
      close_out oc
  | None -> ());
  let ic = open_in_bin golden_path in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "report matches golden file" want got

(* --- pool --- *)

let test_pool_runs_in_order () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let results = Pool.run_all pool (Array.init 50 (fun i () -> i * i)) in
      Alcotest.(check (list int)) "results in submission order"
        (List.init 50 (fun i -> i * i))
        (Array.to_list results))

let test_pool_inline_when_single () =
  let pool = Pool.create () in
  Alcotest.(check int) "default size 1" 1 (Pool.size pool);
  let r = Pool.run_all pool [| (fun () -> Domain.self ()) |] in
  Alcotest.(check bool) "ran on the caller's domain" true (r.(0) = Domain.self ());
  Pool.shutdown pool

let test_pool_propagates_exception () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match Pool.run_all pool [| (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) |] with
      | _ -> Alcotest.fail "expected exception"
      | exception Failure m -> Alcotest.(check string) "exception carried" "boom" m)

let test_pool_counters () =
  Pool.with_pool ~jobs:2 (fun pool ->
      ignore (Pool.run_all pool (Array.init 8 (fun i () -> i)));
      Alcotest.(check int) "tasks counted" 8 (Pool.tasks pool);
      Alcotest.(check bool) "queue depth observed" true (Pool.peak_queue pool >= 1))

let test_pool_shutdown_rejects_work () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  match Pool.run_all pool [| (fun () -> 0) |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pool_normalizes_jobs () =
  let pool = Pool.create ~jobs:0 () in
  Alcotest.(check bool) "0 becomes the recommended count" true (Pool.size pool >= 1);
  Alcotest.(check int) "matches Domain.recommended_domain_count" (Pool.recommended ())
    (Pool.size pool);
  Pool.shutdown pool

(* --- shard plans --- *)

let test_plan_tiles () =
  let slices = Shard.plan ~records_per_shard:3 10 in
  Shard.check ~total:10 slices;
  Alcotest.(check int) "shard count" 4 (Array.length slices);
  Alcotest.(check int) "last is short" 1 slices.(3).Shard.len

let test_plan_empty () =
  Alcotest.(check int) "no shards for no records" 0 (Array.length (Shard.plan ~records_per_shard:5 0))

let test_plan_by_time () =
  let t0 = Tw.week_start in
  let records =
    Array.map
      (fun dt -> getattr_rec ~time:(t0 +. dt) ~fh:fh_a ~size:0 ())
      [| 0.; 1.; 2.; 65.; 66.; 300. |]
  in
  let slices = Shard.plan_by_time ~window:60. records in
  Shard.check ~total:6 slices;
  Alcotest.(check int) "three populated windows" 3 (Array.length slices);
  Alcotest.(check (list int)) "cut at the minute marks" [ 3; 2; 1 ]
    (Array.to_list (Array.map (fun s -> s.Shard.len) slices))

let test_check_rejects_gaps () =
  (match Shard.check ~total:4 [| { Shard.off = 0; len = 2 }; { Shard.off = 3; len = 1 } |] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Shard.check ~total:4 [| { Shard.off = 0; len = 2 } |] with
  | () -> Alcotest.fail "expected Invalid_argument (short cover)"
  | exception Invalid_argument _ -> ()

(* --- driver observability --- *)

let test_driver_instruments_obs () =
  let records = gen_records ~seed:11 ~n:120 in
  let obs = Obs.create () in
  let shard_len = 25 in
  let expected_shards = (Array.length records + shard_len - 1) / shard_len in
  let _ =
    Pool.with_pool ~jobs:2 (fun pool ->
        Driver.run_pass ~obs pool ~records
          ~slices:(Shard.plan ~records_per_shard:shard_len (Array.length records))
          Passes.summary)
  in
  let snap = Obs.snapshot obs in
  Alcotest.(check int) "par.shards counter" expected_shards (Obs.sum_counter snap "par.shards");
  Alcotest.(check int) "par.tasks counter" expected_shards (Obs.sum_counter snap "par.tasks");
  Alcotest.(check (option (float 1e-9))) "par.jobs gauge" (Some 2.)
    (Obs.get_gauge snap "par.jobs");
  (match Obs.get_span snap "par.pass.summary" with
  | None -> Alcotest.fail "missing par.pass.summary span"
  | Some sp -> Alcotest.(check int) "one span per shard" expected_shards sp.Obs.count);
  match Obs.get_span snap "par.merge" with
  | None -> Alcotest.fail "missing par.merge span"
  | Some sp -> Alcotest.(check int) "one merge span" 1 sp.Obs.count

let () =
  Alcotest.run "nt_par"
    [
      ( "merge-equivalence",
        [
          QCheck_alcotest.to_alcotest prop_summary;
          QCheck_alcotest.to_alcotest prop_hourly;
          QCheck_alcotest.to_alcotest prop_io_log;
          QCheck_alcotest.to_alcotest prop_names;
          QCheck_alcotest.to_alcotest prop_lifetime;
          QCheck_alcotest.to_alcotest prop_runs;
          QCheck_alcotest.to_alcotest prop_seqmetric;
        ] );
      ( "merge-laws",
        [
          QCheck_alcotest.to_alcotest law_summary;
          QCheck_alcotest.to_alcotest law_hourly;
          QCheck_alcotest.to_alcotest law_io_log;
          QCheck_alcotest.to_alcotest law_names;
          QCheck_alcotest.to_alcotest law_lifetime;
          QCheck_alcotest.to_alcotest law_histogram;
          QCheck_alcotest.to_alcotest law_stats;
          QCheck_alcotest.to_alcotest law_win;
        ] );
      ( "footprints",
        [
          QCheck_alcotest.to_alcotest fp_summary;
          QCheck_alcotest.to_alcotest fp_hourly;
          QCheck_alcotest.to_alcotest fp_io_log;
          QCheck_alcotest.to_alcotest fp_names;
          QCheck_alcotest.to_alcotest fp_lifetime;
          QCheck_alcotest.to_alcotest fp_histogram;
          QCheck_alcotest.to_alcotest fp_stats;
          QCheck_alcotest.to_alcotest fp_win;
        ] );
      ( "shard-boundary",
        [
          Alcotest.test_case "run straddles a cut" `Quick (check_unit test_run_straddles_boundary);
          Alcotest.test_case "reorder window straddles a cut" `Quick
            (check_unit test_reorder_window_straddles_boundary);
          Alcotest.test_case "lifetime straddles two cuts" `Quick
            (check_unit test_lifetime_straddles_boundary);
          Alcotest.test_case "open lifetime carries to the end" `Quick
            (check_unit test_lifetime_open_across_boundary);
          Alcotest.test_case "deferred remove resolves at merge" `Quick
            (check_unit test_names_remove_across_boundary);
          Alcotest.test_case "earliest delete wins at merge" `Quick
            (check_unit test_names_earliest_delete_wins);
        ] );
      ( "days-regression",
        [
          Alcotest.test_case "empty shard is merge-neutral" `Quick
            (check_unit test_days_empty_shard_neutral);
          Alcotest.test_case "zero-length slice is neutral" `Quick
            (check_unit test_zero_length_slice_is_neutral);
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 == jobs=4, byte for byte" `Quick
            (check_unit test_report_deterministic);
          Alcotest.test_case "report matches golden file" `Quick
            (check_unit test_report_matches_golden);
        ] );
      ( "pool",
        [
          Alcotest.test_case "results in order" `Quick (check_unit test_pool_runs_in_order);
          Alcotest.test_case "size 1 runs inline" `Quick (check_unit test_pool_inline_when_single);
          Alcotest.test_case "exceptions propagate" `Quick
            (check_unit test_pool_propagates_exception);
          Alcotest.test_case "task and queue counters" `Quick (check_unit test_pool_counters);
          Alcotest.test_case "shutdown rejects work" `Quick
            (check_unit test_pool_shutdown_rejects_work);
          Alcotest.test_case "jobs 0 means recommended" `Quick
            (check_unit test_pool_normalizes_jobs);
        ] );
      ( "shard-plan",
        [
          Alcotest.test_case "plan tiles the input" `Quick (check_unit test_plan_tiles);
          Alcotest.test_case "empty input, empty plan" `Quick (check_unit test_plan_empty);
          Alcotest.test_case "time windows cut on the clock" `Quick (check_unit test_plan_by_time);
          Alcotest.test_case "check rejects bad plans" `Quick (check_unit test_check_rejects_gaps);
        ] );
      ( "observability",
        [
          Alcotest.test_case "driver exports spans and gauges" `Quick
            (check_unit test_driver_instruments_obs);
        ] );
    ]
