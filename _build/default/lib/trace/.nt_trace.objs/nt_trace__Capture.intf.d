lib/trace/capture.mli: Nt_net Record
