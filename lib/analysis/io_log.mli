(** Per-file I/O access collection, shared by the run, reorder and
    sequentiality analyses.

    Each READ/WRITE record contributes one access to its file's
    chronological list. Lists preserve wire arrival order — exactly what
    the paper's reorder-window technique then (partially) sorts. *)

type access = {
  at : float;  (** wire time of the call *)
  offset : int;  (** bytes *)
  count : int;  (** bytes actually moved *)
  is_read : bool;
  at_eof : bool;  (** the access referenced end-of-file *)
  file_size : int;  (** file size when the access completed *)
}

type t

val create : unit -> t

val observe : t -> Nt_trace.Record.t -> unit
(** Collect READ/WRITE records (others are ignored). Lost-reply reads
    still count with the requested byte count, as the paper's tools
    must assume. *)

val merge : t -> t -> t
(** [merge a b] splices [b]'s per-file access lists after [a]'s and
    returns [a]; [b] must cover the later time range and must not be
    used afterwards. The merged log is structurally identical to the
    sequential single-pass log — every downstream analysis (runs,
    reorder window, sequentiality metric) is a pure function of the
    per-file access lists, so open runs and reorder windows that
    straddle a shard boundary are carried across it exactly. *)

val files : t -> int
val accesses : t -> int

val iter_files : t -> (Nt_nfs.Fh.t -> access array -> unit) -> unit
(** Visit each file's accesses in arrival order. *)

val sorted_files : t -> (Nt_nfs.Fh.t * access array) array
(** Every file's accesses in arrival order, as an array sorted by
    {!Nt_nfs.Fh.compare} — a deterministic snapshot independent of hash
    table iteration order, used to chunk terminal analyses across
    domains reproducibly. *)

val sort_window : float -> access array -> access array * int
(** [sort_window w accesses] applies the paper's reorder window: each
    access may be swapped with a nearby later access (within [w]
    seconds) when they are out of ascending offset order. Returns the
    partially sorted copy and the number of swaps performed. [w = 0]
    returns an unchanged copy. *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}): tracked
    entries and an approximate heap-words estimate. *)
