lib/trace/fh_map.mli: Nt_nfs Record
