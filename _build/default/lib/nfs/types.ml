type ftype = Reg | Dir | Blk | Chr | Lnk | Sock | Fifo

let ftype_to_string = function
  | Reg -> "REG"
  | Dir -> "DIR"
  | Blk -> "BLK"
  | Chr -> "CHR"
  | Lnk -> "LNK"
  | Sock -> "SOCK"
  | Fifo -> "FIFO"

type time = { seconds : int; nanos : int }

let time_of_float f =
  let sec = int_of_float (Float.floor f) in
  let nanos = int_of_float (Float.round ((f -. float_of_int sec) *. 1e9)) in
  if nanos >= 1_000_000_000 then { seconds = sec + 1; nanos = nanos - 1_000_000_000 }
  else { seconds = sec; nanos }

let time_to_float t = float_of_int t.seconds +. (float_of_int t.nanos *. 1e-9)

type fattr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int64;
  used : int64;
  fsid : int64;
  fileid : int64;
  atime : time;
  mtime : time;
  ctime : time;
}

let default_fattr =
  let zero = { seconds = 0; nanos = 0 } in
  {
    ftype = Reg;
    mode = 0o644;
    nlink = 1;
    uid = 0;
    gid = 0;
    size = 0L;
    used = 0L;
    fsid = 1L;
    fileid = 0L;
    atime = zero;
    mtime = zero;
    ctime = zero;
  }

type sattr = {
  set_mode : int option;
  set_uid : int option;
  set_gid : int option;
  set_size : int64 option;
  set_atime : time option;
  set_mtime : time option;
}

let empty_sattr =
  { set_mode = None; set_uid = None; set_gid = None; set_size = None; set_atime = None;
    set_mtime = None }

type nfsstat =
  | Ok_
  | Err_perm
  | Err_noent
  | Err_io
  | Err_acces
  | Err_exist
  | Err_notdir
  | Err_isdir
  | Err_inval
  | Err_fbig
  | Err_nospc
  | Err_rofs
  | Err_nametoolong
  | Err_notempty
  | Err_dquot
  | Err_stale
  | Err_badhandle
  | Err_notsupp
  | Err_serverfault
  | Err_jukebox
  | Err_unknown of int

let nfsstat_to_int = function
  | Ok_ -> 0
  | Err_perm -> 1
  | Err_noent -> 2
  | Err_io -> 5
  | Err_acces -> 13
  | Err_exist -> 17
  | Err_notdir -> 20
  | Err_isdir -> 21
  | Err_inval -> 22
  | Err_fbig -> 27
  | Err_nospc -> 28
  | Err_rofs -> 30
  | Err_nametoolong -> 63
  | Err_notempty -> 66
  | Err_dquot -> 69
  | Err_stale -> 70
  | Err_badhandle -> 10001
  | Err_notsupp -> 10004
  | Err_serverfault -> 10006
  | Err_jukebox -> 10008
  | Err_unknown n -> n

let nfsstat_of_int = function
  | 0 -> Ok_
  | 1 -> Err_perm
  | 2 -> Err_noent
  | 5 -> Err_io
  | 13 -> Err_acces
  | 17 -> Err_exist
  | 20 -> Err_notdir
  | 21 -> Err_isdir
  | 22 -> Err_inval
  | 27 -> Err_fbig
  | 28 -> Err_nospc
  | 30 -> Err_rofs
  | 63 -> Err_nametoolong
  | 66 -> Err_notempty
  | 69 -> Err_dquot
  | 70 -> Err_stale
  | 10001 -> Err_badhandle
  | 10004 -> Err_notsupp
  | 10006 -> Err_serverfault
  | 10008 -> Err_jukebox
  | n -> Err_unknown n

let nfsstat_to_string = function
  | Ok_ -> "OK"
  | Err_perm -> "EPERM"
  | Err_noent -> "ENOENT"
  | Err_io -> "EIO"
  | Err_acces -> "EACCES"
  | Err_exist -> "EEXIST"
  | Err_notdir -> "ENOTDIR"
  | Err_isdir -> "EISDIR"
  | Err_inval -> "EINVAL"
  | Err_fbig -> "EFBIG"
  | Err_nospc -> "ENOSPC"
  | Err_rofs -> "EROFS"
  | Err_nametoolong -> "ENAMETOOLONG"
  | Err_notempty -> "ENOTEMPTY"
  | Err_dquot -> "EDQUOT"
  | Err_stale -> "ESTALE"
  | Err_badhandle -> "EBADHANDLE"
  | Err_notsupp -> "ENOTSUPP"
  | Err_serverfault -> "ESERVERFAULT"
  | Err_jukebox -> "EJUKEBOX"
  | Err_unknown n -> Printf.sprintf "ERR%d" n

type stable_how = Unstable | Data_sync | File_sync

let stable_how_to_int = function Unstable -> 0 | Data_sync -> 1 | File_sync -> 2
let stable_how_of_int = function 0 -> Unstable | 1 -> Data_sync | _ -> File_sync
