(* Allowlist fixture: the same growth sites as Fix_bound, accepted and
   counted through the boundedness attributes. *)

type t = { table : (int, int) Hashtbl.t; mutable log : int list }

let create () = { table = Hashtbl.create 16; log = [] }

(* suppressed: bound-table *)
let add t k v = Hashtbl.replace t.table k v
[@@nt.bounded "fixture: capped by the test driver"]

(* suppressed: bound-list *)
let observe t x = t.log <- x :: t.log
[@@nt.unbounded "fixture: accepted growth, drained by the test driver"]
