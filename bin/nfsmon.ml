(* nfsmon: live streaming NFS monitor. Tails a growing trace or pcap
   file (or runs a simulated workload as a live source), maintains a
   ring of bounded time windows, and emits periodic top-N reports while
   serving its own metrics over HTTP.

   Examples:
     nfsmon trace:campus.trace
     nfsmon pcap:/var/tmp/capture.pcap --listen 127.0.0.1:9200
     nfsmon sim:campus --sim-stop 3600 --speedup 60 --json
     nfsmon trace:live.trace --checkpoint mon.ckpt --checkpoint-every 10 *)

open Cmdliner
module Obs = Nt_obs.Obs
module Mon = Nt_mon.Service

let parse_source obs s ~sim_start ~sim_stop ~speedup ~slice =
  let feed_of_path kind path =
    match kind with
    | `Trace -> Ok (Nt_mon.Feed.trace_tail ~obs path)
    | `Pcap -> Ok (Nt_mon.Feed.pcap_tail ~obs path)
    | `Tbin -> Ok (Nt_mon.Feed.tbin_tail ~obs path)
  in
  match String.index_opt s ':' with
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "trace" -> feed_of_path `Trace rest
      | "pcap" -> feed_of_path `Pcap rest
      | "tbin" -> feed_of_path `Tbin rest
      | "sim" -> (
          let mk workload =
            Ok
              (Nt_core.Live_feed.create ~obs ?speedup ~slice_s:slice ~workload ~start:sim_start
                 ~stop:sim_stop ())
          in
          match rest with
          | "campus" -> mk Nt_core.Live_feed.Campus
          | "eecs" -> mk Nt_core.Live_feed.Eecs
          | w -> Error (Printf.sprintf "unknown workload %S (campus or eecs)" w))
      | _ -> Error (Printf.sprintf "unknown source kind %S (trace:, pcap:, tbin:, sim:)" kind))
  | None ->
      if Filename.check_suffix s ".pcap" then feed_of_path `Pcap s
      else if Filename.check_suffix s ".ntb" then feed_of_path `Tbin s
      else feed_of_path `Trace s

let parse_listen s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let addr = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> Ok ((if addr = "" then "127.0.0.1" else addr), p)
      | _ -> Error (Printf.sprintf "bad listen port %S" port))
  | None -> (
      match int_of_string_opt s with
      | Some p when p >= 0 && p < 65536 -> Ok ("127.0.0.1", p)
      | _ -> Error (Printf.sprintf "bad listen spec %S (ADDR:PORT or PORT)" s))

let run source window windows topn report_every json checkpoint checkpoint_every listen
    table_cap queue_cap max_records idle_exit sim_start sim_stop speedup slice trace_out =
  let obs = Obs.create () in
  let timeline =
    match trace_out with
    | None -> None
    | Some _ ->
        let tl = Nt_obs.Timeline.create () in
        Nt_obs.Timeline.attach tl obs;
        Some tl
  in
  match parse_source obs source ~sim_start ~sim_stop ~speedup ~slice with
  | Error e ->
      Printf.eprintf "nfsmon: %s\n%!" e;
      2
  | Ok feed -> (
      (* The exporter is wired before the service exists, so /series
         reads the sampler through this cell once [Mon.create] fills
         it; until then the endpoint answers an empty document. *)
      let service_cell = ref None in
      let series () =
        match !service_cell with
        | Some svc -> Nt_obs.Sampler.series_json (Mon.sampler svc)
        | None -> "{\"schema\": \"" ^ Nt_formats.Formats.obs_series ^ "\", \"samples\": []}"
      in
      let exporter =
        match listen with
        | None -> None
        | Some spec -> (
            match parse_listen spec with
            | Error e ->
                Printf.eprintf "nfsmon: %s\n%!" e;
                exit 2
            | Ok (addr, port) -> (
                match Nt_obs.Exporter.create ~addr ~port ~series obs with
                | Ok ex ->
                    Printf.eprintf "nfsmon: metrics on http://%s:%d/metrics\n%!" addr
                      (Nt_obs.Exporter.port ex);
                    Some ex
                | Error e ->
                    Printf.eprintf "nfsmon: listen failed: %s\n%!" e;
                    exit 2))
      in
      let caps =
        {
          Nt_mon.Win.client_cap = table_cap;
          uid_cap = table_cap;
          fs_cap = max 16 (table_cap / 4);
          proc_cap = Nt_mon.Win.default_caps.Nt_mon.Win.proc_cap;
        }
      in
      let ring_config =
        {
          Nt_mon.Ring.window_s = window;
          windows;
          caps;
          summary_cap =
            {
              caps with
              Nt_mon.Win.client_cap = 4 * caps.Nt_mon.Win.client_cap;
              uid_cap = 4 * caps.Nt_mon.Win.uid_cap;
            };
        }
      in
      let config =
        {
          Mon.default_config with
          Mon.ring = ring_config;
          topn;
          report_every;
          json;
          checkpoint_path = checkpoint;
          checkpoint_every_s = checkpoint_every;
          queue_cap;
          max_records;
          idle_exit;
        }
      in
      let tick () = match exporter with Some ex -> Nt_obs.Exporter.poll ex | None -> () in
      let service = Mon.create ~obs ~tick config feed in
      service_cell := Some service;
      if Mon.restored service then Printf.eprintf "nfsmon: restored from checkpoint\n%!";
      let stop _ = Mon.request_stop service in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Obs.span_open obs "mon.run";
      Mon.run service;
      Obs.span_close obs "mon.run";
      (match exporter with Some ex -> Nt_obs.Exporter.close ex | None -> ());
      (match (trace_out, timeline) with
      | Some path, Some tl -> Obs_cli.write_timeline ~sampler:(Mon.sampler service) ~path tl
      | _ -> ());
      match Mon.conservation service with
      | Ok () -> 0
      | Error e ->
          Printf.eprintf "nfsmon: conservation violated: %s\n%!" e;
          1)

let source =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOURCE"
        ~doc:
          "Record source: $(b,trace:PATH) (tail a text trace), $(b,pcap:PATH) (tail a pcap \
           capture), $(b,tbin:PATH) (tail an nttb/1 binary trace), or \
           $(b,sim:campus)/$(b,sim:eecs) (live simulated workload). A bare path picks the \
           format by extension (.pcap, .ntb, else text).")

let window =
  Arg.(value & opt float 10. & info [ "window" ] ~docv:"SECONDS" ~doc:"Window length.")

let windows =
  Arg.(value & opt int 30 & info [ "windows" ] ~docv:"N" ~doc:"Live windows retained.")

let topn = Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Rows per report table.")

let report_every =
  Arg.(
    value & opt int 1
    & info [ "report-every" ] ~docv:"N" ~doc:"Emit a report every N window rotations.")

let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON report documents.")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"PATH"
        ~doc:"Checkpoint state here (atomically) and restore from it on start.")

let checkpoint_every =
  Arg.(
    value & opt float 30.
    & info [ "checkpoint-every" ] ~docv:"SECONDS" ~doc:"Checkpoint cadence (wall clock).")

let listen =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR:PORT"
        ~doc:"Serve /metrics (Prometheus) and /json on this address; port 0 = ephemeral.")

let table_cap =
  Arg.(
    value & opt int 256
    & info [ "table-cap" ] ~docv:"N"
        ~doc:"Per-window client/uid table cap; new keys past it fold into (other).")

let queue_cap =
  Arg.(
    value & opt int 65536
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Ingest queue bound; under overload the oldest queued records are shed (counted).")

let max_records =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-records" ] ~docv:"N" ~doc:"Stop after observing N records (soak runs).")

let idle_exit =
  Arg.(
    value
    & opt (some int) None
    & info [ "idle-exit" ] ~docv:"N"
        ~doc:"Exit after N consecutive idle rounds instead of tailing forever.")

let sim_start =
  Arg.(value & opt float 0. & info [ "sim-start" ] ~docv:"T" ~doc:"Simulated interval start.")

let sim_stop =
  Arg.(value & opt float 600. & info [ "sim-stop" ] ~docv:"T" ~doc:"Simulated interval end.")

let speedup =
  Arg.(
    value
    & opt (some float) None
    & info [ "speedup" ] ~docv:"K"
        ~doc:"Pace the simulated source at K simulated seconds per real second (default: \
              unpaced).")

let slice =
  Arg.(
    value & opt float 1.0
    & info [ "slice" ] ~docv:"SECONDS" ~doc:"Simulated seconds advanced per feed pull.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event timeline of the run to $(docv) on exit: service spans \
           plus heap/RSS counter tracks from the resource sampler.")

let cmd =
  Cmd.v
    (Cmd.info "nfsmon" ~doc:"Continuously monitor a live NFS record source")
    Term.(
      const run $ source $ window $ windows $ topn $ report_every $ json $ checkpoint
      $ checkpoint_every $ listen $ table_cap $ queue_cap $ max_records $ idle_exit $ sim_start
      $ sim_stop $ speedup $ slice $ trace_out)

let () = exit (Cmd.eval' cmd)
