module Fh = Nt_nfs.Fh
module Ops = Nt_nfs.Ops

module Fh_tbl = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

type binding = { parent : Fh.t; name : string }

type t = {
  bindings : binding Fh_tbl.t;
  mutable resolved : int;
  mutable total : int;
}

let create () = { bindings = Fh_tbl.create 4096; resolved = 0; total = 0 }

let bind t ~dir ~name fh =
  t.total <- t.total + 1;
  if Fh_tbl.mem t.bindings dir || Fh_tbl.length t.bindings = 0 then t.resolved <- t.resolved + 1;
  Fh_tbl.replace t.bindings fh { parent = dir; name }

(* Stale bindings are left in place rather than eagerly unlearned,
   matching the paper's tools; a handle removed and recreated is simply
   rebound when its new parentage is revealed. *)
let unbind_name _t ~dir:_ ~name:_ = ()

let observe t (r : Record.t) =
  match (r.call, r.result) with
  | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh; _ })) -> bind t ~dir ~name fh
  | Ops.Create { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ }))
  | Ops.Mkdir { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ }))
  | Ops.Symlink { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ }))
  | Ops.Mknod { dir; name }, Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
      bind t ~dir ~name fh
  | Ops.Rename { from_dir; from_name; to_dir; to_name }, Some (Ok _) -> (
      (* Find the handle currently bound as (from_dir, from_name): the
         rename target keeps its handle in NFS, so rebind it. *)
      let moved =
        Fh_tbl.fold
          (fun fh b acc ->
            if Fh.equal b.parent from_dir && String.equal b.name from_name then Some fh else acc)
          t.bindings None
      in
      match moved with
      | Some fh -> Fh_tbl.replace t.bindings fh { parent = to_dir; name = to_name }
      | None -> ())
  | Ops.Remove { dir; name }, Some (Ok _) | Ops.Rmdir { dir; name }, Some (Ok _) ->
      unbind_name t ~dir ~name
  | _ -> ()

let name_of t fh = Option.map (fun b -> b.name) (Fh_tbl.find_opt t.bindings fh)
let parent_of t fh = Option.map (fun b -> b.parent) (Fh_tbl.find_opt t.bindings fh)

let path_of t fh =
  match Fh_tbl.find_opt t.bindings fh with
  | None -> None
  | Some _ ->
      let rec walk fh acc depth =
        if depth > 256 then "..." :: acc (* cycle guard *)
        else
          match Fh_tbl.find_opt t.bindings fh with
          | None -> "?" :: acc
          | Some b -> walk b.parent (b.name :: acc) (depth + 1)
      in
      Some (String.concat "/" (walk fh [] 0))

let known t = Fh_tbl.length t.bindings
let lookups_resolved t = t.resolved
let lookups_total t = t.total
let resolution_rate t = if t.total = 0 then 1.0 else float_of_int t.resolved /. float_of_int t.total
