let swap_percentages log ~windows_ms =
  let total = float_of_int (Io_log.accesses log) in
  List.map
    (fun w_ms ->
      let swaps = ref 0 in
      Io_log.iter_files log (fun _ accesses ->
          let _, s = Io_log.sort_window (w_ms /. 1000.) accesses in
          swaps := !swaps + s);
      let pct = if total = 0. then 0. else 100. *. float_of_int !swaps /. total in
      (w_ms, pct))
    windows_ms

let knee points =
  match points with
  | [] -> 0.
  | _ ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) points in
      let rec find = function
        | (w1, p1) :: ((_, p2) :: _ as rest) ->
            if p1 > 0. && (p2 -. p1) /. Float.max p1 1e-9 < 0.05 then w1 else find rest
        | [ (w, _) ] -> w
        | [] -> 0.
      in
      (* Skip the zero-window origin when present. *)
      (match sorted with (0., _) :: rest -> find rest | _ -> find sorted)

let out_of_order_fraction log =
  let pairs = ref 0 and backwards = ref 0 in
  Io_log.iter_files log (fun _ accesses ->
      for i = 1 to Array.length accesses - 1 do
        incr pairs;
        if accesses.(i).offset < accesses.(i - 1).offset + accesses.(i - 1).count
           && accesses.(i).offset < accesses.(i - 1).offset
        then incr backwards
      done);
  if !pairs = 0 then 0. else float_of_int !backwards /. float_of_int !pairs
