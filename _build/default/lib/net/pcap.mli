(** libpcap savefile format (tcpdump's on-disk format).

    The paper's tracer was a modified tcpdump; ours round-trips the same
    file format so that synthetic captures written by the simulator are
    ordinary pcap files, and the analysis pipeline could equally consume
    a capture produced by a real tcpdump.

    Both byte orders and both microsecond and nanosecond timestamp
    magics are accepted on read; writes are microsecond little-endian,
    linktype EN10MB. *)

type packet = { time : float; orig_len : int; data : string }
(** [data] may be shorter than [orig_len] when the capture snapped. *)

exception Bad_format of string

type writer

val writer_to_buffer : ?snaplen:int -> Buffer.t -> writer
val writer_to_channel : ?snaplen:int -> out_channel -> writer
val write : writer -> time:float -> string -> unit
(** Appends one packet record, truncating to the snaplen. *)

type reader

val reader_of_string : string -> reader
val reader_of_channel : in_channel -> reader
val read_next : reader -> packet option
(** [None] at end of file. Raises {!Bad_format} on a corrupt header. *)

val fold : reader -> ('a -> packet -> 'a) -> 'a -> 'a
val packets : reader -> packet Seq.t
(** Lazily read remaining packets. The sequence must be consumed once. *)
