(** Fixed-edge and logarithmic histograms plus CDF extraction.

    The paper presents several cumulative distributions over logarithmic
    axes (block lifetimes in Figure 3, run sizes in Figure 5); this module
    provides the shared bucketing machinery. *)

type t

val create : edges:float array -> t
(** [create ~edges] builds a histogram with [Array.length edges + 1]
    buckets: (-inf, e0), [e0, e1), ..., [e_last, +inf). [edges] must be
    strictly increasing. *)

val log2_buckets : lo:float -> hi:float -> t
(** Power-of-two edges covering [lo .. hi], e.g. file or run sizes. *)

val add : t -> float -> unit
(** Add an observation with weight 1. *)

val add_weighted : t -> float -> float -> unit
(** [add_weighted t x w] adds observation [x] with weight [w] (e.g. bytes). *)

val bucket_count : t -> int
val edges : t -> float array
val weight : t -> int -> float
(** Total weight in bucket [i]. *)

val total_weight : t -> float

val merge : t -> t -> t
(** [merge a b] adds [b]'s bucket weights into [a] and returns [a]; the
    two histograms must share identical edges. *)

val cdf : t -> (float * float) list
(** [(upper_edge, cumulative_fraction)] per bounded bucket; fractions in
    [\[0,1\]]. Empty histogram yields all-zero fractions. *)

val bucket_of : t -> float -> int
(** Index of the bucket that would receive value [x]. *)

val footprint : t -> Nt_obs.Footprint.t
(** Cardinality = bucket count; words = the two parallel arrays. *)
