(** Decode-path purity rules: untyped failures and partial matches are
    forbidden in wire-decoding units unless the enclosing top-level
    function returns result or option.  The caller decides which units
    are in decode scope. *)

val check : Finding.sink -> Loader.unit_info -> unit
