type t = int list

let empty = []
let add t x = x :: t
let merge a b = a @ b
