let render ?title ~header rows =
  List.iter (fun r -> assert (List.length r = List.length header)) rows;
  let all = header :: rows in
  let cols = List.length header in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let pad i cell =
    let n = width.(i) - String.length cell in
    if i = 0 then cell ^ String.make n ' ' else String.make n ' ' ^ cell
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule = String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') width)) in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf
[@@nt.raise_ok
  "every caller builds rows with a literal list per column of its literal header, so a width \
   mismatch is a programming error, not data-dependent"]

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals x
let fmt_millions x = Printf.sprintf "%.2fM" (x /. 1e6)

let fmt_bytes x =
  let abs = Float.abs x in
  if abs >= 1024. ** 3. then Printf.sprintf "%.1f GB" (x /. (1024. ** 3.))
  else if abs >= 1024. ** 2. then Printf.sprintf "%.1f MB" (x /. (1024. ** 2.))
  else if abs >= 1024. then Printf.sprintf "%.1f KB" (x /. 1024.)
  else Printf.sprintf "%.0f B" x

let fmt_duration s =
  if s < 1. then Printf.sprintf "%.2f s" s
  else if s < 120. then Printf.sprintf "%.1f s" s
  else if s < 7200. then Printf.sprintf "%.1f min" (s /. 60.)
  else if s < 2. *. 86400. then Printf.sprintf "%.1f hours" (s /. 3600.)
  else Printf.sprintf "%.1f days" (s /. 86400.)
