lib/analysis/hints.mli: Nt_trace
