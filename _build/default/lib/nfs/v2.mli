(** NFSv2 wire codec (RFC 1094).

    EECS clients are a mix of v2 and v3; this codec lets the simulator
    put genuine v2 traffic on the wire and the capture engine recover
    it. Differences from v3 handled here: fixed 32-byte handles, 32-bit
    sizes and offsets, microsecond timestamps, combined status+attr
    reply shapes, no ACCESS / READDIRPLUS / COMMIT / MKNOD. *)

exception Unsupported of string
(** Raised when asked to encode a v3-only call as v2. *)

val encode_call : Nt_xdr.Encode.t -> Ops.call -> unit
val decode_call : proc:Proc.t -> Nt_xdr.Decode.t -> Ops.call
val encode_result : Nt_xdr.Encode.t -> proc:Proc.t -> Ops.result -> unit
val decode_result : proc:Proc.t -> Nt_xdr.Decode.t -> Ops.result

val encode_fattr : Nt_xdr.Encode.t -> Types.fattr -> unit
val decode_fattr : Nt_xdr.Decode.t -> Types.fattr
