(** NFS wire-level data types shared by NFSv2 (RFC 1094) and NFSv3
    (RFC 1813).

    The unified representation follows NFSv3 (64-bit sizes, nanosecond
    times); the v2 codec narrows on encode and widens on decode. *)

type ftype = Reg | Dir | Blk | Chr | Lnk | Sock | Fifo

val ftype_to_string : ftype -> string

type time = { seconds : int; nanos : int }

val time_of_float : float -> time
val time_to_float : time -> float

type fattr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int64;
  used : int64;
  fsid : int64;
  fileid : int64;
  atime : time;
  mtime : time;
  ctime : time;
}

val default_fattr : fattr
(** A regular empty root-owned file; callers override fields of note. *)

type sattr = {
  set_mode : int option;
  set_uid : int option;
  set_gid : int option;
  set_size : int64 option;
  set_atime : time option;
  set_mtime : time option;
}

val empty_sattr : sattr

type nfsstat =
  | Ok_
  | Err_perm
  | Err_noent
  | Err_io
  | Err_acces
  | Err_exist
  | Err_notdir
  | Err_isdir
  | Err_inval
  | Err_fbig
  | Err_nospc
  | Err_rofs
  | Err_nametoolong
  | Err_notempty
  | Err_dquot
  | Err_stale
  | Err_badhandle  (** v3 only *)
  | Err_notsupp  (** v3 only *)
  | Err_serverfault  (** v3 only *)
  | Err_jukebox  (** v3 only *)
  | Err_unknown of int

val nfsstat_to_int : nfsstat -> int
val nfsstat_of_int : int -> nfsstat
val nfsstat_to_string : nfsstat -> string

type stable_how = Unstable | Data_sync | File_sync

val stable_how_to_int : stable_how -> int
val stable_how_of_int : int -> stable_how
