(* Quickstart: simulate three hours of the CAMPUS email workload,
   collect the NFS trace it generates, and print a profile of the
   traffic — the smallest end-to-end use of the library.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let start = Nt_util.Trace_week.week_start in
  let stop = start +. (3. *. 3600.) in
  (* Count calls per procedure and bytes moved as records stream out. *)
  let per_proc = Hashtbl.create 32 in
  let read_bytes = ref 0 and write_bytes = ref 0 in
  let records = ref [] in
  let sink r =
    records := r :: !records;
    let proc = Nt_trace.Record.proc r in
    let name = Nt_nfs.Proc.to_string proc in
    Hashtbl.replace per_proc name (1 + Option.value (Hashtbl.find_opt per_proc name) ~default:0);
    match Nt_nfs.Proc.kind proc with
    | Nt_nfs.Proc.Data_read -> read_bytes := !read_bytes + Nt_trace.Record.io_bytes r
    | Nt_nfs.Proc.Data_write -> write_bytes := !write_bytes + Nt_trace.Record.io_bytes r
    | Nt_nfs.Proc.Metadata_read | Nt_nfs.Proc.Metadata_write -> ()
  in
  let config = { Nt_workload.Email.default_config with users = 40 } in
  let stats = Nt_core.Pipeline.simulate_campus ~config ~start ~stop ~sink () in
  Printf.printf "CAMPUS, %s .. %s (40 users)\n"
    (Nt_util.Trace_week.format start)
    (Nt_util.Trace_week.format stop);
  Printf.printf "  trace records : %d\n" stats.records;
  Printf.printf "  mail sessions : %d\n" stats.sessions;
  Printf.printf "  deliveries    : %d\n" stats.deliveries;
  Printf.printf "  data read     : %s\n" (Nt_util.Tables.fmt_bytes (float_of_int !read_bytes));
  Printf.printf "  data written  : %s\n" (Nt_util.Tables.fmt_bytes (float_of_int !write_bytes));
  Printf.printf "\nCalls by procedure:\n";
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_proc []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  List.iter (fun (name, n) -> Printf.printf "  %-12s %8d\n" name n) rows;
  (* Show a few raw trace lines, as nfsdump-style text. *)
  Printf.printf "\nFirst records of the trace:\n";
  let sorted = List.rev !records in
  List.iteri
    (fun i r -> if i < 5 then print_endline ("  " ^ Nt_trace.Record.to_line r))
    sorted
