(* nfswlgen: generate a synthetic CAMPUS or EECS workload as either an
   nfsdump-style text trace or a pcap capture.

   Examples:
     nfswlgen --system campus --hours 2 -o campus.trace
     nfswlgen --system eecs --users 10 --format pcap -o eecs.pcap *)

open Cmdliner

let run system users start_hour hours format loss fault fault_seed output out_tbin obs_opts =
  if format = `Pcap && out_tbin <> None then begin
    Printf.eprintf
      "nfswlgen: --out-tbin requires --format trace or tbin (the pcap path emits packets, not \
       records)\n\
       %!";
    exit 2
  end;
  let obs = Nt_obs.Obs.create () in
  let timeline = Obs_cli.timeline obs_opts obs in
  let sampler = Nt_obs.Sampler.create ~interval:0.05 obs in
  let prog = Obs_cli.progress obs_opts "nfswlgen" in
  let day = Nt_util.Trace_week.Wed in
  let start = Nt_util.Trace_week.time_of ~day ~hour:start_hour ~minute:0 in
  let stop = start +. (3600. *. hours) in
  let with_out f =
    match output with
    | "-" -> f stdout
    | path ->
        let oc = open_out_bin path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  in
  (* Optional side copy of the record stream in the compact binary
     format, written alongside whatever the primary format is. *)
  let tbin_copy =
    match out_tbin with
    | None -> None
    | Some path ->
        let oc = open_out_bin path in
        Some (oc, Nt_tbin.Writer.create (output_string oc))
  in
  let copy r = match tbin_copy with Some (_, w) -> Nt_tbin.Writer.add w r | None -> () in
  let close_copy () =
    match tbin_copy with
    | Some (oc, w) ->
        Nt_tbin.Writer.close w;
        close_out oc
    | None -> ()
  in
  let simulate sink =
    match system with
    | `Campus ->
        let config = { Nt_workload.Email.default_config with users } in
        ignore (Nt_core.Pipeline.simulate_campus ~obs ~config ~start ~stop ~sink ())
    | `Eecs ->
        let config = { Nt_workload.Research.default_config with users } in
        ignore (Nt_core.Pipeline.simulate_eecs ~obs ~config ~start ~stop ~sink ())
  in
  let emit_trace oc =
    let n = ref 0 in
    let sink r =
      output_string oc (Nt_trace.Record.to_line r);
      output_char oc '\n';
      copy r;
      incr n;
      Nt_obs.Sampler.tick sampler;
      Obs_cli.tick prog ~stage:"simulate" 1
    in
    simulate sink;
    Printf.eprintf "nfswlgen: wrote %d records\n%!" !n
  in
  let emit_tbin oc =
    let w = Nt_tbin.Writer.create (output_string oc) in
    let n = ref 0 in
    let sink r =
      Nt_tbin.Writer.add w r;
      copy r;
      incr n;
      Nt_obs.Sampler.tick sampler;
      Obs_cli.tick prog ~stage:"simulate" 1
    in
    simulate sink;
    Nt_tbin.Writer.close w;
    Printf.eprintf "nfswlgen: wrote %d records\n%!" !n
  in
  let emit_pcap oc =
    let plan =
      match fault with
      | `None -> None
      | `Burst -> Some Nt_sim.Fault.campus_burst
      | `Truncate ->
          (* Snaplen-style damage: a quarter of the frames cut to 64
             bytes, which the capture engine counts as undecodable. *)
          Some { Nt_sim.Fault.none with truncate = 0.25; truncate_to = 64 }
    in
    let writer = Nt_net.Pcap.writer_to_channel oc in
    Obs_cli.set_stage prog "emit-pcap";
    let stats =
      match system with
      | `Campus ->
          let config = { Nt_workload.Email.default_config with users } in
          Nt_core.Pipeline.campus_to_pcap ~obs ~config ?fault:plan ~seed:fault_seed
            ~monitor_loss:loss ~start ~stop ~writer ()
      | `Eecs ->
          let config = { Nt_workload.Research.default_config with users } in
          Nt_core.Pipeline.eecs_to_pcap ~obs ~config ?fault:plan ~seed:fault_seed
            ~monitor_loss:loss ~start ~stop ~writer ()
    in
    Obs_cli.tick prog stats.run.records;
    Printf.eprintf "nfswlgen: %d records, %d packets written, %d dropped at monitor\n%!"
      stats.run.records stats.packets_written stats.packets_dropped
  in
  with_out (match format with `Trace -> emit_trace | `Tbin -> emit_tbin | `Pcap -> emit_pcap);
  close_copy ();
  ignore (Nt_obs.Sampler.sample_now sampler : Nt_obs.Sampler.sample);
  Obs_cli.finish prog;
  Obs_cli.dump obs_opts obs;
  Obs_cli.dump_timeline ~sampler obs_opts timeline;
  0

let system =
  Arg.(
    value
    & opt (enum [ ("campus", `Campus); ("eecs", `Eecs) ]) `Campus
    & info [ "s"; "system" ] ~docv:"SYSTEM"
        ~doc:"Workload to generate: campus (email) or eecs (research).")

let users =
  Arg.(value & opt int 25 & info [ "u"; "users" ] ~docv:"N" ~doc:"Simulated user population.")

let start_hour =
  Arg.(
    value & opt int 9 & info [ "start-hour" ] ~docv:"H" ~doc:"Hour of (Wednesday) trace start, 0-23.")

let hours =
  Arg.(value & opt float 1. & info [ "hours" ] ~docv:"H" ~doc:"Length of the trace window in hours.")

let format =
  Arg.(
    value
    & opt (enum [ ("trace", `Trace); ("tbin", `Tbin); ("pcap", `Pcap) ]) `Trace
    & info [ "f"; "format" ] ~docv:"FMT"
        ~doc:"Output format: trace (text records), tbin (compact nttb/1 binary records), or \
              pcap (packets).")

let loss =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P" ~doc:"Monitor-port packet loss probability (pcap format only).")

let fault =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("burst", `Burst); ("truncate", `Truncate) ]) `None
    & info [ "fault" ] ~docv:"PLAN"
        ~doc:
          "Inject a monitor fault plan (pcap format only): burst (Gilbert-Elliott bursty \
           loss with light damage) or truncate (snaplen-style frame truncation).")

let fault_seed =
  Arg.(
    value & opt int64 2003L
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed for the fault injector.")

let output =
  Arg.(
    value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (- for stdout).")

let out_tbin =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-tbin" ] ~docv:"FILE"
        ~doc:
          "Also write the generated records to $(docv) as an nttb/1 binary trace (trace and \
           tbin formats only; the pcap path never materializes records).")

let cmd =
  Cmd.v
    (Cmd.info "nfswlgen" ~doc:"Generate a synthetic NFS workload trace or capture")
    Term.(
      const run $ system $ users $ start_hour $ hours $ format $ loss $ fault $ fault_seed
      $ output $ out_tbin $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
