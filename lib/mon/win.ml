module Record = Nt_trace.Record
module Proc = Nt_nfs.Proc
module Types = Nt_nfs.Types
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Ip_addr = Nt_net.Ip_addr

type caps = { client_cap : int; uid_cap : int; fs_cap : int; proc_cap : int }

let default_caps = { client_cap = 256; uid_cap = 256; fs_cap = 64; proc_cap = 64 }

type row = { ops : int; read_bytes : int; write_bytes : int }

let zero_row = { ops = 0; read_bytes = 0; write_bytes = 0 }

let add_row a b =
  {
    ops = a.ops + b.ops;
    read_bytes = a.read_bytes + b.read_bytes;
    write_bytes = a.write_bytes + b.write_bytes;
  }

type table = [ `Client | `Uid | `Fs | `Proc ]

let table_name = function
  | `Client -> "client"
  | `Uid -> "uid"
  | `Fs -> "fs"
  | `Proc -> "proc"

let all_tables = [ `Client; `Uid; `Fs; `Proc ]

(* A capped breakdown table. [rows] never grows past [cap] through
   [bump] — newcomers beyond the cap land in [other]. [absorb] (merge)
   is exact and may overshoot; [compact_tbl] restores the bound. *)
type tbl = {
  cap : int;
  rows : (string, row) Hashtbl.t;
  mutable other : row;
  mutable evicted : int;
}

let tbl_create cap = { cap; rows = Hashtbl.create 16; other = zero_row; evicted = 0 }

let bump tbl key row =
  match Hashtbl.find_opt tbl.rows key with
  | Some r -> Hashtbl.replace tbl.rows key (add_row r row)
  | None ->
      if Hashtbl.length tbl.rows < tbl.cap then Hashtbl.replace tbl.rows key row
      else begin
        tbl.other <- add_row tbl.other row;
        tbl.evicted <- tbl.evicted + 1
      end

let absorb dst src =
  Hashtbl.iter
    (fun k r ->
      match Hashtbl.find_opt dst.rows k with
      | Some r0 -> Hashtbl.replace dst.rows k (add_row r0 r)
      | None -> Hashtbl.replace dst.rows k r)
    src.rows;
  dst.other <- add_row dst.other src.other;
  dst.evicted <- dst.evicted + src.evicted

(* Demote the smallest rows (ops asc, key desc — so the keep-set is the
   ops-descending, key-ascending prefix) until the cap holds again. *)
let compact_tbl tbl =
  let n = Hashtbl.length tbl.rows in
  if n > tbl.cap then begin
    let all = Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl.rows [] in
    let sorted =
      List.sort
        (fun (ka, ra) (kb, rb) ->
          if ra.ops <> rb.ops then compare rb.ops ra.ops else compare ka kb)
        all
    in
    List.iteri
      (fun i (k, r) ->
        if i >= tbl.cap then begin
          Hashtbl.remove tbl.rows k;
          tbl.other <- add_row tbl.other r;
          tbl.evicted <- tbl.evicted + 1
        end)
      sorted
  end

type t = {
  caps : caps;
  mutable t_min : float;
  mutable t_max : float;
  mutable total : row;  (* every record: ops + all io bytes *)
  mutable reads : row;
  mutable writes : row;
  mutable commits : int;
  mutable lost : int;
  stable : row array;  (* indexed by Types.stable_how_to_int, 0..2 *)
  clients : tbl;
  uids : tbl;
  fss : tbl;
  procs : tbl;
}

let create ?(caps = default_caps) () =
  {
    caps;
    t_min = infinity;
    t_max = neg_infinity;
    total = zero_row;
    reads = zero_row;
    writes = zero_row;
    commits = 0;
    lost = 0;
    stable = Array.make 3 zero_row;
    clients = tbl_create caps.client_cap;
    uids = tbl_create caps.uid_cap;
    fss = tbl_create caps.fs_cap;
    procs = tbl_create caps.proc_cap;
  }

let fs_key r =
  match Record.fh r with
  | Some fh -> (
      match Fh.fsid fh with Some id -> string_of_int id | None -> "foreign")
  | None -> "-"

let observe t (r : Record.t) =
  if r.Record.time < t.t_min then t.t_min <- r.Record.time;
  if r.Record.time > t.t_max then t.t_max <- r.Record.time;
  let io = Record.io_bytes r in
  let proc = Record.proc r in
  let row =
    match proc with
    | Proc.Read -> { ops = 1; read_bytes = io; write_bytes = 0 }
    | Proc.Write -> { ops = 1; read_bytes = 0; write_bytes = io }
    | _ -> { ops = 1; read_bytes = 0; write_bytes = 0 }
  in
  t.total <- add_row t.total row;
  (match proc with
  | Proc.Read -> t.reads <- add_row t.reads row
  | Proc.Write -> (
      t.writes <- add_row t.writes row;
      match r.Record.call with
      | Ops.Write { stable; _ } ->
          let i = Types.stable_how_to_int stable in
          t.stable.(i) <- add_row t.stable.(i) row
      | _ -> ())
  | Proc.Commit -> t.commits <- t.commits + 1
  | _ -> ());
  if r.Record.reply_time = None then t.lost <- t.lost + 1;
  bump t.clients (Ip_addr.to_string r.Record.client) row;
  bump t.uids (string_of_int r.Record.uid) row;
  bump t.fss (fs_key r) row;
  bump t.procs (Proc.to_string proc) row

let merge a b =
  if b.t_min < a.t_min then a.t_min <- b.t_min;
  if b.t_max > a.t_max then a.t_max <- b.t_max;
  a.total <- add_row a.total b.total;
  a.reads <- add_row a.reads b.reads;
  a.writes <- add_row a.writes b.writes;
  a.commits <- a.commits + b.commits;
  a.lost <- a.lost + b.lost;
  for i = 0 to 2 do
    a.stable.(i) <- add_row a.stable.(i) b.stable.(i)
  done;
  absorb a.clients b.clients;
  absorb a.uids b.uids;
  absorb a.fss b.fss;
  absorb a.procs b.procs;
  a

let tbl_of t = function
  | `Client -> t.clients
  | `Uid -> t.uids
  | `Fs -> t.fss
  | `Proc -> t.procs

let compact t = List.iter (fun tb -> compact_tbl (tbl_of t tb)) all_tables
let span t = if t.t_min > t.t_max then None else Some (t.t_min, t.t_max)
let total_ops t = t.total.ops
let read_ops t = t.reads.ops
let read_bytes t = t.reads.read_bytes
let write_ops t = t.writes.ops
let write_bytes t = t.writes.write_bytes
let commit_ops t = t.commits
let lost_replies t = t.lost

let writes_by_stable t =
  List.map
    (fun how -> (how, t.stable.(Types.stable_how_to_int how)))
    [ Types.Unstable; Types.Data_sync; Types.File_sync ]

let top t table n =
  let tbl = tbl_of t table in
  let all = Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl.rows [] in
  let sorted =
    List.sort
      (fun (ka, ra) (kb, rb) ->
        if ra.ops <> rb.ops then compare rb.ops ra.ops else compare ka kb)
      all
  in
  List.filteri (fun i _ -> i < n) sorted

let other_row t table = (tbl_of t table).other
let table_size t table = Hashtbl.length (tbl_of t table).rows
let evictions t table = (tbl_of t table).evicted
let evictions_total t = List.fold_left (fun acc tb -> acc + evictions t tb) 0 all_tables

(* --- checkpoint serialization --- *)

(* One token-separated record per line. Table keys are emitted in
   sorted order so the text form is deterministic; keys never contain
   whitespace (IPs, small ints, procedure names, "foreign"/"-"). *)

let f2s = Printf.sprintf "%h" (* lossless hex float round-trip *)

let s2f s =
  match float_of_string_opt s with Some f -> Ok f | None -> Error ("bad float " ^ s)

let row_tokens r = Printf.sprintf "%d %d %d" r.ops r.read_bytes r.write_bytes

let to_lines t =
  let b = ref [] in
  let push s = b := s :: !b in
  push (Printf.sprintf "span %s %s" (f2s t.t_min) (f2s t.t_max));
  push (Printf.sprintf "caps %d %d %d %d" t.caps.client_cap t.caps.uid_cap t.caps.fs_cap
          t.caps.proc_cap);
  push ("total " ^ row_tokens t.total);
  push ("reads " ^ row_tokens t.reads);
  push ("writes " ^ row_tokens t.writes);
  push (Printf.sprintf "commits %d" t.commits);
  push (Printf.sprintf "lost %d" t.lost);
  Array.iteri (fun i r -> push (Printf.sprintf "stable %d %s" i (row_tokens r))) t.stable;
  List.iter
    (fun table ->
      let tbl = tbl_of t table in
      let name = table_name table in
      push
        (Printf.sprintf "table %s other %s evicted %d" name (row_tokens tbl.other) tbl.evicted);
      let keys = Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl.rows [] in
      List.iter
        (fun (k, r) -> push (Printf.sprintf "row %s %s %s" name k (row_tokens r)))
        (List.sort compare keys))
    all_tables;
  List.rev !b

let of_lines ?caps lines =
  let ( let* ) = Result.bind in
  let int s =
    match int_of_string_opt s with Some i -> Ok i | None -> Error ("bad int " ^ s)
  in
  let row3 a b c =
    let* ops = int a in
    let* read_bytes = int b in
    let* write_bytes = int c in
    Ok { ops; read_bytes; write_bytes }
  in
  let table_of_name = function
    | "client" -> Ok `Client
    | "uid" -> Ok `Uid
    | "fs" -> Ok `Fs
    | "proc" -> Ok `Proc
    | s -> Error ("unknown table " ^ s)
  in
  let t = create ?caps () in
  (* Every serialized window carries these sections exactly once; a
     checkpoint that lost lines must not restore as a smaller window. *)
  let seen = Hashtbl.create 16 in
  let mark s =
    if Hashtbl.mem seen s then Error ("duplicate window section: " ^ s)
    else begin
      Hashtbl.replace seen s ();
      Ok ()
    end
  in
  let apply line =
    match String.split_on_char ' ' line with
    | [ "span"; a; b ] ->
        let* () = mark "span" in
        let* mn = s2f a in
        let* mx = s2f b in
        t.t_min <- mn;
        t.t_max <- mx;
        Ok ()
    | [ "caps"; _; _; _; _ ] ->
        (* caps are carried for the record; restored tables keep the
           service's configured caps, enforced by the next compact *)
        mark "caps"
    | [ "total"; a; b; c ] ->
        let* () = mark "total" in
        let* r = row3 a b c in
        t.total <- r;
        Ok ()
    | [ "reads"; a; b; c ] ->
        let* () = mark "reads" in
        let* r = row3 a b c in
        t.reads <- r;
        Ok ()
    | [ "writes"; a; b; c ] ->
        let* () = mark "writes" in
        let* r = row3 a b c in
        t.writes <- r;
        Ok ()
    | [ "commits"; n ] ->
        let* () = mark "commits" in
        let* n = int n in
        t.commits <- n;
        Ok ()
    | [ "lost"; n ] ->
        let* () = mark "lost" in
        let* n = int n in
        t.lost <- n;
        Ok ()
    | [ "stable"; i; a; b; c ] ->
        let* i = int i in
        if i < 0 || i > 2 then Error ("bad stable index " ^ string_of_int i)
        else
          let* () = mark ("stable" ^ string_of_int i) in
          let* r = row3 a b c in
          t.stable.(i) <- r;
          Ok ()
    | [ "table"; name; "other"; a; b; c; "evicted"; n ] ->
        let* table = table_of_name name in
        let* () = mark ("table " ^ table_name table) in
        let* other = row3 a b c in
        let* evicted = int n in
        let tbl = tbl_of t table in
        tbl.other <- other;
        tbl.evicted <- evicted;
        Ok ()
    | [ "row"; name; key; a; b; c ] ->
        let* table = table_of_name name in
        let* r = row3 a b c in
        Hashtbl.replace (tbl_of t table).rows key r;
        Ok ()
    | _ -> Error ("unrecognized window line: " ^ line)
  in
  let required =
    [ "span"; "caps"; "total"; "reads"; "writes"; "commits"; "lost"; "stable0"; "stable1";
      "stable2" ]
    @ List.map (fun table -> "table " ^ table_name table) all_tables
  in
  let rec go = function
    | [] -> (
        match List.find_opt (fun s -> not (Hashtbl.mem seen s)) required with
        | Some s -> Error ("missing window section: " ^ s)
        | None -> Ok t)
    | line :: rest -> (
        match apply line with Ok () -> go rest | Error e -> Error e)
  in
  go lines

let fp_tbl tbl =
  let n = Hashtbl.length tbl.rows in
  (* key string (~client/uid/fs/proc label) + row record + table entry *)
  Nt_obs.Footprint.v ~cards:n ~words:(8 + (n * 14))

let footprint t =
  List.fold_left
    (fun acc tb -> Nt_obs.Footprint.add acc (fp_tbl (tbl_of t tb)))
    (Nt_obs.Footprint.v ~cards:0 ~words:32)
    all_tables
