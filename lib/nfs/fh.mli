(** NFS file handles.

    On the wire a handle is opaque: fixed 32 bytes in v2, variable up to
    64 bytes in v3. Our simulated server packs the file-system id and
    the inode number into the handle the way real servers do, and the
    trace analyses use the compact hex form as the file's identity. *)

type t

val of_raw : string -> t
(** Wrap wire bytes (any length 0–64). *)

val to_raw : t -> string

val make : fsid:int -> fileid:int -> t
(** A server-style handle: 32 bytes embedding fsid, fileid and a
    generation pad. *)

val fileid : t -> int option
(** Recover the fileid from a handle built by {!make}; [None] for
    foreign handles. *)

val fsid : t -> int option
(** Recover the file-system id from a handle built by {!make}; [None]
    for foreign handles. The live monitor's per-filesystem breakdown
    keys on this. *)

val to_hex : t -> string
(** Compact identity used in trace records (first 16 significant
    bytes, hex). *)

val to_hex_full : t -> string
(** Lossless hex of the whole handle, for trace serialization. *)

val of_hex : string -> t option
(** Inverse of {!to_hex_full}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val v2_size : int
(** 32: v2 handles are padded/truncated to exactly this size. *)

val to_v2_raw : t -> string
(** Fixed 32-byte form for the v2 codec. *)
