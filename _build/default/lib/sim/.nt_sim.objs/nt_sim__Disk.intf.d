lib/sim/disk.mli:
