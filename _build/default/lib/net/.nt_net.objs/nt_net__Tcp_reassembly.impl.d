lib/net/tcp_reassembly.ml: Hashtbl Int Ip_addr List Map String
