lib/util/stats.mli:
