(** Plain-text table rendering for the benchmark harness.

    Every reproduced table/figure prints through this module so that
    bench output lines up and is diffable across runs. *)

val render : ?title:string -> header:string list -> string list list -> string
(** [render ~header rows] returns an aligned ASCII table. All rows must
    have the same arity as [header]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point with [decimals] (default 2). *)

val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct 12.345] is ["12.3%"] (default 1 decimal). *)

val fmt_millions : float -> string
(** Counts expressed in millions, matching the paper's tables. *)

val fmt_bytes : float -> string
(** Human bytes with binary units: ["1.5 MB"], ["119.6 GB"]. *)

val fmt_duration : float -> string
(** Seconds rendered like the paper's lifetime axes: ["0.8 s"],
    ["5 min"], ["1 hour"], ["1 day"]. *)
