lib/xdr/encode.mli:
