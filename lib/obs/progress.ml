type t = {
  out : out_channel;
  interval : float;
  clock : unit -> float;
  total : int option;
  label : string;
  start : float;
  mutable count : int;
  mutable stage : string;
  mutable last_print : float;
  mutable last_count : int;
  mutable printed : bool;
  mutable check_mask : int;  (* probe the clock every mask+1 ticks *)
  mutable ticks_since_check : int;
}

let create ?(out = stderr) ?(interval = 1.0) ?clock ?total ~label () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  let start = clock () in
  {
    out;
    interval = Float.max 0.01 interval;
    clock;
    total;
    label;
    start;
    count = 0;
    stage = "";
    last_print = start;
    last_count = 0;
    printed = false;
    check_mask = 0;
    ticks_since_check = 0;
  }

let human_rate r =
  if r >= 1e6 then Printf.sprintf "%.2fM/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk/s" (r /. 1e3)
  else Printf.sprintf "%.0f/s" r

let human_eta seconds =
  if Float.is_finite seconds = false || seconds < 0. then "?"
  else if seconds >= 3600. then Printf.sprintf "%dh%02dm" (int_of_float seconds / 3600)
      (int_of_float seconds mod 3600 / 60)
  else if seconds >= 60. then Printf.sprintf "%dm%02ds" (int_of_float seconds / 60)
      (int_of_float seconds mod 60)
  else Printf.sprintf "%.0fs" seconds

let print_line t now =
  let dt = Float.max 1e-9 (now -. t.last_print) in
  let inst_rate = float_of_int (t.count - t.last_count) /. dt in
  let stage = if t.stage = "" then "" else Printf.sprintf " stage=%s" t.stage in
  let eta =
    match t.total with
    | Some total when total > 0 && inst_rate > 0. && t.count < total ->
        Printf.sprintf " eta=%s" (human_eta (float_of_int (total - t.count) /. inst_rate))
    | Some total when total > 0 ->
        Printf.sprintf " %d%%" (min 100 (t.count * 100 / total))
    | _ -> ""
  in
  Printf.fprintf t.out "%s: %d records %s%s%s\n%!" t.label t.count (human_rate inst_rate)
    stage eta;
  (* Retune the clock-probe mask so we check roughly 20x per interval:
     enough resolution to hit the cadence, cheap enough to not matter. *)
  let per_check = Float.max 1. (inst_rate *. t.interval /. 20.) in
  let mask = ref 0 in
  while float_of_int (!mask + 1) < per_check && !mask < 0xFFFF do
    mask := (!mask * 2) + 1
  done;
  t.check_mask <- !mask;
  t.last_print <- now;
  t.last_count <- t.count;
  t.printed <- true

let maybe_print t =
  t.ticks_since_check <- 0;
  let now = t.clock () in
  if now -. t.last_print >= t.interval then print_line t now

let tick t ?stage n =
  (match stage with Some s -> t.stage <- s | None -> ());
  t.count <- t.count + n;
  t.ticks_since_check <- t.ticks_since_check + 1;
  if t.ticks_since_check land t.check_mask = 0 then maybe_print t

let set_stage t s =
  t.stage <- s;
  maybe_print t

let items t = t.count

let finish t =
  if t.printed || t.count > 0 then begin
    let now = t.clock () in
    let elapsed = Float.max 1e-9 (now -. t.start) in
    Printf.fprintf t.out "%s: done, %d records in %.2fs (%s)\n%!" t.label t.count elapsed
      (human_rate (float_of_int t.count /. elapsed))
  end
