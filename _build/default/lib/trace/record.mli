(** Trace records: one per NFS call observed, with its reply if seen.

    This is the unit every analysis consumes and the unit the
    anonymizer rewrites. The text form is a stable, line-oriented,
    key=value format in the spirit of nfsdump; [to_line]/[of_line]
    round-trip, so traces can be saved, anonymized offline, shared, and
    re-analyzed — the workflow the paper's tools support. *)

type t = {
  time : float;  (** call timestamp (seconds since epoch) *)
  reply_time : float option;  (** reply timestamp; [None] if the reply was lost *)
  client : Nt_net.Ip_addr.t;
  server : Nt_net.Ip_addr.t;
  version : int;  (** 2 or 3 *)
  xid : int;
  uid : int;
  gid : int;
  call : Nt_nfs.Ops.call;
  result : Nt_nfs.Ops.result option;
}

val proc : t -> Nt_nfs.Proc.t

val fh : t -> Nt_nfs.Fh.t option
(** Handle the call operates on (directory handle for name ops). *)

val target_fh : t -> Nt_nfs.Fh.t option
(** Handle of the object the call ultimately concerns: for LOOKUP and
    CREATE-style calls this is the handle returned in the reply. *)

val name : t -> string option
val offset : t -> int64 option
val count : t -> int option

val io_bytes : t -> int
(** Bytes moved by READ/WRITE (from the reply when present, otherwise
    the call); 0 for other procedures. *)

val post_size : t -> int64 option
(** File size after the call, from post-op attributes in the reply. *)

val post_fattr : t -> Nt_nfs.Types.fattr option

val status : t -> Nt_nfs.Types.nfsstat option
(** [None] when the reply was lost. *)

val is_ok : t -> bool
(** True when a reply was seen and it carries NFS3_OK. *)

val to_line : t -> string
val of_line : string -> (t, string) result

val write_channel : out_channel -> t Seq.t -> int
(** Stream records to a channel, one line each; returns the count. *)

val read_channel : in_channel -> t Seq.t
(** Lazily parse records; malformed lines are skipped. *)
