let drop_prefix ~prefix s =
  if String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let starts_with ~prefix s = drop_prefix ~prefix s <> None

(* "Stdlib.Hashtbl.t", "Stdlib__Hashtbl.t" and "Hashtbl.t" all name the
   same stdlib type depending on how the alias was resolved; normalize
   to the short form so rule tables stay readable. *)
let norm_name s =
  match drop_prefix ~prefix:"Stdlib__" s with
  | Some rest -> rest
  | None -> ( match drop_prefix ~prefix:"Stdlib." s with Some rest -> rest | None -> s)

let norm_path p = norm_name (Path.name p)

let path_last p = Path.last p

let dotted_of_unit name =
  (* Wrapped-library unit names use "__" where the surface syntax uses
     ".": Nt_analysis__Io_log is Nt_analysis.Io_log to everyone else. *)
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let unit_matches ~unit target =
  (* Executable modules may be wrapped as Dune__exe__Test_par; match the
     plain unit name or any "__"-separated suffix. *)
  unit = target
  || (String.length unit > String.length target + 2
     &&
     let suffix = "__" ^ target in
     String.sub unit (String.length unit - String.length suffix) (String.length suffix)
     = suffix)

(* --- allowlist attributes --- *)

let payload_string (p : Parsetree.payload) =
  match p with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let first_token s =
  let s = String.trim s in
  let stop = ref (String.length s) in
  String.iteri (fun i c -> if (c = ':' || c = ' ') && i < !stop then stop := i) s;
  String.sub s 0 !stop

(* [@@nt.domain_safe "reason"] allowlists both domain-safety rules;
   [@@nt.alloc_ok "reason"] allowlists the whole alloc family on one
   binding; [@@nt.bounded "cap"] / [@@nt.unbounded "reason"] allowlist
   the bound family (the first documents a cap the analyzer cannot see,
   the second an accepted unbounded growth);
   [@@nt.raise_ok "reason"] accepts an exception escape on one binding
   (the exn-flow family empties its summary and counts the suppression);
   [@@nt.allow "<rule-id>: reason"] allowlists one rule ("*" for all).
   A reason string is required: a bare attribute suppresses nothing, so
   undocumented exemptions do not accumulate. *)
let allows (attrs : Typedtree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      match (a.attr_name.txt, payload_string a.attr_payload) with
      | _, Some "" | _, None -> []
      | "nt.domain_safe", Some _ ->
          [ Rule.dom_top_mutable.Rule.id; Rule.dom_mutable_record.Rule.id ]
      | "nt.alloc_ok", Some _ ->
          [
            Rule.alloc_hot_string.Rule.id;
            Rule.alloc_hot_format.Rule.id;
            Rule.alloc_hot_list.Rule.id;
            Rule.alloc_hot_closure.Rule.id;
            Rule.alloc_poly_compare.Rule.id;
          ]
      | ("nt.bounded" | "nt.unbounded"), Some _ ->
          [ Rule.bound_table.Rule.id; Rule.bound_list.Rule.id ]
      | "nt.raise_ok", Some _ -> [ Rule.exn_escape.Rule.id ]
      | "nt.allow", Some reason -> [ first_token reason ]
      | _ -> [])
    attrs

let allowed allows_list (rule : Rule.t) =
  List.mem rule.Rule.id allows_list || List.mem "*" allows_list
