(* One audited path for every resource number in the tree. The sampler
   follows Progress's cost discipline: [tick] is an increment and a
   mask test; the clock is probed roughly 20x per interval; the
   expensive part (Gc.quick_stat + /proc/self/status) runs once per
   interval and lands in gauges plus a bounded drop-oldest ring. *)

type sample = {
  at : float;
  heap_words : int;
  top_heap_words : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  rss_bytes : int;
  rss_hwm_bytes : int;
}

type delta = {
  d_seconds : float;
  d_minor_words : float;
  d_major_words : float;
  d_promoted_words : float;
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
}

type t = {
  obs : Obs.t;
  interval : float;
  cap : int;
  ring : sample array;  (* circular, oldest at [head], [len] live *)
  mutable head : int;
  mutable len : int;
  mutable taken : int;
  mutable evicted : int;
  mutable last_at : float;
  mutable check_mask : int;
  mutable ticks_since_check : int;
  mutable ticks_since_sample : int;
  mutable footprints : (unit -> (string * Footprint.t) list) option;
  fp_pubs : (string, Footprint.pub) Hashtbl.t;
  g_heap : Obs.gauge;
  g_top_heap : Obs.gauge;
  g_rss : Obs.gauge;
  g_rss_hwm : Obs.gauge;
  g_minor_gcs : Obs.gauge;
  g_major_gcs : Obs.gauge;
  g_compactions : Obs.gauge;
  c_samples : Obs.counter;
}

(* /proc/self/status is Linux-only; elsewhere (or in a locked-down
   container) both fields read as 0 and the RSS gauges simply stay
   flat — the sampler must degrade, never raise. *)
let proc_status_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> (0, 0)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let kb_of line =
            let b = Buffer.create 8 in
            String.iter (fun c -> if c >= '0' && c <= '9' then Buffer.add_char b c) line;
            match int_of_string_opt (Buffer.contents b) with Some v -> v | None -> 0
          in
          let starts_with p line =
            String.length line >= String.length p && String.sub line 0 (String.length p) = p
          in
          let rss = ref 0 and hwm = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if starts_with "VmRSS:" line then rss := kb_of line
               else if starts_with "VmHWM:" line then hwm := kb_of line
             done
           with End_of_file | Sys_error _ -> ());
          (!rss, !hwm))

let raw_sample obs =
  let q = Gc.quick_stat () in
  let rss_kb, hwm_kb = proc_status_kb () in
  {
    at = Obs.now obs;
    heap_words = q.Gc.heap_words;
    top_heap_words = q.Gc.top_heap_words;
    minor_words = q.Gc.minor_words;
    promoted_words = q.Gc.promoted_words;
    major_words = q.Gc.major_words;
    minor_collections = q.Gc.minor_collections;
    major_collections = q.Gc.major_collections;
    compactions = q.Gc.compactions;
    rss_bytes = rss_kb * 1024;
    rss_hwm_bytes = hwm_kb * 1024;
  }

let create ?(interval = 1.0) ?(cap = 256) obs =
  let cap = max 1 cap in
  let s0 = raw_sample obs in
  let t =
    {
      obs;
      interval = Float.max 0.01 interval;
      cap;
      ring = Array.make cap s0;
      head = 0;
      len = 1;
      taken = 1;
      evicted = 0;
      last_at = s0.at;
      check_mask = 0;
      ticks_since_check = 0;
      ticks_since_sample = 0;
      footprints = None;
      fp_pubs = Hashtbl.create 8;
      g_heap = Obs.gauge obs ~help:"major heap words at the last sample" "rt.heap_words";
      g_top_heap = Obs.gauge obs ~help:"peak major heap words ever sampled" "rt.top_heap_words";
      g_rss = Obs.gauge obs ~help:"resident set bytes at the last sample" "rt.rss_bytes";
      g_rss_hwm = Obs.gauge obs ~help:"peak resident set bytes (VmHWM)" "rt.rss_hwm_bytes";
      g_minor_gcs = Obs.gauge obs ~help:"cumulative minor collections" "rt.minor_collections";
      g_major_gcs = Obs.gauge obs ~help:"cumulative major collections" "rt.major_collections";
      g_compactions = Obs.gauge obs ~help:"cumulative heap compactions" "rt.compactions";
      c_samples = Obs.counter obs ~help:"resource samples taken" "rt.samples";
    }
  in
  Obs.set t.g_heap (float_of_int s0.heap_words);
  Obs.set_max t.g_top_heap (float_of_int s0.top_heap_words);
  Obs.set t.g_rss (float_of_int s0.rss_bytes);
  Obs.set_max t.g_rss_hwm (float_of_int s0.rss_hwm_bytes);
  Obs.inc t.c_samples;
  t

let set_footprints t f = t.footprints <- Some f

let publish_footprints t =
  match t.footprints with
  | None -> []
  | Some f ->
      let fps = f () in
      List.iter
        (fun (component, fp) ->
          let pub =
            match Hashtbl.find_opt t.fp_pubs component with
            | Some p -> p
            | None ->
                let p = Footprint.publisher t.obs ~component in
                Hashtbl.replace t.fp_pubs component p;
                p
          in
          Footprint.set pub fp)
        fps;
      fps

let push t s =
  if t.len < t.cap then begin
    t.ring.((t.head + t.len) mod t.cap) <- s;
    t.len <- t.len + 1
  end
  else begin
    t.ring.(t.head) <- s;
    t.head <- (t.head + 1) mod t.cap;
    t.evicted <- t.evicted + 1
  end;
  t.taken <- t.taken + 1

let sample_now t =
  let s = raw_sample t.obs in
  push t s;
  t.last_at <- s.at;
  t.ticks_since_sample <- 0;
  Obs.set t.g_heap (float_of_int s.heap_words);
  Obs.set_max t.g_top_heap (float_of_int s.top_heap_words);
  Obs.set t.g_rss (float_of_int s.rss_bytes);
  Obs.set_max t.g_rss_hwm (float_of_int s.rss_hwm_bytes);
  Obs.set t.g_minor_gcs (float_of_int s.minor_collections);
  Obs.set t.g_major_gcs (float_of_int s.major_collections);
  Obs.set t.g_compactions (float_of_int s.compactions);
  Obs.inc t.c_samples;
  ignore (publish_footprints t : (string * Footprint.t) list);
  s

let retune t now =
  (* Same 20-probes-per-interval target as Progress: size the mask from
     the observed tick rate since the last sample. *)
  let dt = Float.max 1e-9 (now -. t.last_at) in
  let inst_rate = float_of_int t.ticks_since_sample /. dt in
  let per_check = Float.max 1. (inst_rate *. t.interval /. 20.) in
  let mask = ref 0 in
  while float_of_int (!mask + 1) < per_check && !mask < 0xFFFF do
    mask := (!mask * 2) + 1
  done;
  t.check_mask <- !mask

let tick t =
  t.ticks_since_sample <- t.ticks_since_sample + 1;
  t.ticks_since_check <- t.ticks_since_check + 1;
  if t.ticks_since_check land t.check_mask = 0 then begin
    t.ticks_since_check <- 0;
    let now = Obs.now t.obs in
    if now -. t.last_at >= t.interval then begin
      retune t now;
      ignore (sample_now t : sample)
    end
  end

let last t = t.ring.((t.head + t.len - 1) mod t.cap)
let samples t = List.init t.len (fun i -> t.ring.((t.head + i) mod t.cap))
let taken t = t.taken
let evicted t = t.evicted
let cap t = t.cap
let top_heap_words t = (last t).top_heap_words
let rss_hwm_bytes t = (last t).rss_hwm_bytes

let delta ~older ~newer =
  (* Clamped at zero: the obs clock is monotone but an externally
     injected jittery clock (tests) or a restored checkpoint may hand
     us out-of-order pairs, and the Gc counters themselves never run
     backwards — a negative delta is always a caller artifact. *)
  let fmax a b = if a > b then a else b in
  let imax a b = if a > b then a else b in
  {
    d_seconds = fmax 0. (newer.at -. older.at);
    d_minor_words = fmax 0. (newer.minor_words -. older.minor_words);
    d_major_words = fmax 0. (newer.major_words -. older.major_words);
    d_promoted_words = fmax 0. (newer.promoted_words -. older.promoted_words);
    d_minor_collections = imax 0 (newer.minor_collections - older.minor_collections);
    d_major_collections = imax 0 (newer.major_collections - older.major_collections);
    d_compactions = imax 0 (newer.compactions - older.compactions);
  }

(* --- /series JSON --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let series_json ?(refresh = true) t =
  if refresh then ignore (sample_now t : sample);
  let fps = publish_footprints t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"";
  Buffer.add_string b Nt_formats.Formats.obs_series;
  Buffer.add_string b "\",\n";
  Buffer.add_string b (Printf.sprintf "  \"interval_seconds\": %s,\n" (json_float t.interval));
  Buffer.add_string b (Printf.sprintf "  \"cap\": %d,\n  \"taken\": %d,\n  \"evicted\": %d,\n"
       t.cap t.taken t.evicted);
  Buffer.add_string b "  \"samples\": [";
  List.iteri
    (fun i (s : sample) ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b
        (Printf.sprintf
           "    {\"at\": %s, \"heap_words\": %d, \"top_heap_words\": %d, \"minor_words\": %s, \
            \"promoted_words\": %s, \"major_words\": %s, \"minor_collections\": %d, \
            \"major_collections\": %d, \"compactions\": %d, \"rss_bytes\": %d, \
            \"rss_hwm_bytes\": %d}"
           (json_float s.at) s.heap_words s.top_heap_words (json_float s.minor_words)
           (json_float s.promoted_words) (json_float s.major_words) s.minor_collections
           s.major_collections s.compactions s.rss_bytes s.rss_hwm_bytes))
    (samples t);
  Buffer.add_string b "\n  ],\n  \"footprint\": {";
  List.iteri
    (fun i (component, (fp : Footprint.t)) ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": {\"cards\": %d, \"words\": %d}" (json_escape component)
           fp.Footprint.cards fp.Footprint.words))
    fps;
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b
