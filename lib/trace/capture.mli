(** The capture engine: packets in, trace records out.

    This is the OCaml equivalent of the paper's modified tcpdump. It
    decodes Ethernet/IPv4, demultiplexes UDP datagrams and reassembled
    TCP streams into RPC messages, pairs calls with replies by
    (client, XID), decodes NFS procedure bodies, and emits one
    {!Record.t} per call.

    Loss handling follows §4.1.4: a reply whose call was never seen is
    undecodable (we count it and drop it); a call whose reply never
    arrives is emitted with [result = None]; TCP stream gaps force RPC
    resynchronisation and are counted. Degraded input — corrupted
    frames, UDP retransmissions, mangled pcap records — is likewise
    counted, never fatal: every fault the monitor can hand us lands in
    exactly one counter below (see DESIGN.md, "Fault model & loss
    accounting"). *)

type stats = {
  frames : int;  (** link frames presented *)
  undecodable_frames : int;  (** not IPv4/UDP/TCP, or truncated *)
  corrupt_frames : int;  (** parsed, but the IPv4 header checksum failed *)
  rpc_messages : int;
  rpc_errors : int;  (** XDR-level parse failures *)
  non_nfs : int;  (** RPC traffic for other programs *)
  calls : int;  (** distinct calls (retransmissions excluded) *)
  replies : int;
  duplicate_calls : int;  (** retransmitted calls for a pending/answered xid *)
  duplicate_replies : int;  (** retransmitted replies for an answered xid *)
  orphan_replies : int;  (** reply seen, call lost — both are lost, per the paper *)
  lost_replies : int;  (** call seen, reply never arrived *)
  tcp_gaps : int;
  salvaged_records : int;  (** pcap records recovered by the salvage reader *)
  skipped_pcap_bytes : int;  (** pcap bytes discarded while resyncing *)
  truncated_pcap_tails : int;  (** pcap streams that ended mid-record *)
}

val stats_to_string : stats -> string

type t

val create :
  ?obs:Nt_obs.Obs.t -> ?pending_timeout:float -> ?emit:(Record.t -> unit) -> unit -> t
(** [pending_timeout] (default 60 s): a call unanswered for this long is
    emitted as reply-lost. [emit] receives records as they complete; when
    omitted, records accumulate for {!finish}.

    [obs] hosts the capture counters ([capture.frames],
    [capture.decode_failure{reason=...}], [capture.calls], ...);
    defaults to a private always-enabled registry so {!finish} stats
    work without wiring. Share one registry between the pcap reader and
    the capture engine to get a single self-consistent snapshot — the
    namespaces are disjoint, so nothing double-counts. *)

val feed_packet : t -> time:float -> string -> unit
(** Process one link-layer frame. Never raises: malformed input is
    counted in {!stats}. The contract is fuzz-verified (random and
    bit-flipped frames in the test suite). *)

val feed_pcap : t -> Nt_net.Pcap.reader -> unit
(** Drain a pcap stream through {!feed_packet}, then fold the reader's
    salvage/truncation accounting into {!stats}. *)

val finish : t -> stats * Record.t list
(** Flush unanswered calls, then return statistics and all buffered
    records sorted by call time (empty list if an [emit] sink was
    given). *)
