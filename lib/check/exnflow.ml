(* Interprocedural exception flow: a conservative may-raise set for
   every value binding in the build tree, solved to fixpoint over
   name-resolved call edges.

   The lattice is flat-plus-top over exception constructor names:
   [Names S] means "raises at most the constructors in S", [Top] means
   a raise we cannot name (re-raise of an unknown value).  Summaries
   are small syntax trees — primitive raises, calls, and [Guard]
   nodes recording what a lexical [try]/[match ... with exception]
   handler provably catches — so handler subtraction happens *during*
   evaluation, against whatever the guarded body turns out to raise at
   the fixpoint, not against a syntactic guess.

   Sources of primitive raises: raise/failwith/invalid_arg/assert,
   a table of raising stdlib functions (Hashtbl.find, List.hd,
   int_of_string, channel IO, Unix.*, ...), and non-exhaustive
   matches from the typedtree.  Exception identity is the constructor
   name as the handler pattern would spell it (Queue.Empty and
   Stack.Empty both count as "Empty" — a deliberate conservative
   merge, see DESIGN.md §16).  Array/string indexing is out of scope,
   like every bounds-discipline question ntcheck leaves to review.

   Precision notes: nodes are value bindings at the top level of a
   unit or of any nested [struct ... end], keyed by ident stamp so a
   shadowed binding (capture.ml wraps [handle_rpc] with a same-named
   catcher) keeps its own summary; local [let]-bound closures are not
   nodes — their bodies fold into the enclosing binding, which
   over-approximates when a closure defined outside a [try] is only
   ever called inside one. *)

module Names = Set.Make (String)

type exns = Top | Names of Names.t

let bot = Names Names.empty
let is_bot = function Names s -> Names.is_empty s | Top -> false

let union a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Names a, Names b -> Names (Names.union a b)

(* Subtracting named handlers from Top stays Top: if we cannot name
   what the body raises we cannot prove the handler catches it. *)
let subtract e ns =
  match e with
  | Top -> Top
  | Names s -> Names (List.fold_left (fun s n -> Names.remove n s) s ns)

let leq a b =
  match (a, b) with
  | _, Top -> true
  | Top, Names _ -> false
  | Names a, Names b -> Names.subset a b

let equal_exns a b = leq a b && leq b a
let mem_exn n = function Top -> true | Names s -> Names.mem n s

let to_strings = function
  | Top -> [ "*" ]
  | Names s -> Names.elements s

(* --- summaries --- *)

type catch = Catch_all | Catch_names of string list

type 'a item =
  | Prim of string * 'a  (* raises this constructor; payload = origin *)
  | Prim_top of 'a  (* raises something unnameable *)
  | Call of string  (* may raise whatever the named node raises *)
  | Guard of catch * 'a item list  (* handler-subtracted region *)

let rec eval lookup items =
  List.fold_left (fun acc it -> union acc (eval_item lookup it)) bot items

and eval_item lookup = function
  | Prim (n, _) -> Names (Names.singleton n)
  | Prim_top _ -> Top
  | Call k -> lookup k
  | Guard (Catch_all, _) -> bot
  | Guard (Catch_names ns, inner) -> subtract (eval lookup inner) ns

let rec calls acc = function
  | Prim _ | Prim_top _ -> acc
  | Call k -> k :: acc
  | Guard (_, inner) -> List.fold_left calls acc inner

let item_calls items = List.fold_left calls [] items

(* Round-robin fixpoint.  Monotone: every transfer function above is
   monotone in [lookup] and in its item list, and the name alphabet is
   finite (only constructors mentioned in summaries), so the chain
   bot ⊑ ... ⊑ Top stabilizes. *)
let solve summaries =
  let sol = Hashtbl.create 256 in
  List.iter (fun (k, _) -> if not (Hashtbl.mem sol k) then Hashtbl.add sol k bot) summaries;
  let lookup k = match Hashtbl.find_opt sol k with Some e -> e | None -> bot in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (k, items) ->
        let cur = lookup k in
        let next = union cur (eval lookup items) in
        if not (equal_exns next cur) then begin
          Hashtbl.replace sol k next;
          changed := true
        end)
      summaries
  done;
  sol

(* ================================================================== *)
(* Typedtree lowering                                                 *)
(* ================================================================== *)

type origin = { o_desc : string; o_file : string; o_line : int }

let origin_of_loc desc (loc : Location.t) =
  { o_desc = desc; o_file = loc.loc_start.pos_fname; o_line = loc.loc_start.pos_lnum }

type node = {
  n_id : string;
  n_display : string;  (* dotted unit ^ "." ^ path, e.g. Nt_tbin.Decoder.feed *)
  n_unit : string;
  n_path : string;  (* binding path inside the unit *)
  n_file : string;
  n_line : int;
  n_allows : string list;  (* Syntax.allows of the binding's attributes *)
}

type graph = {
  nodes : (string, node) Hashtbl.t;  (* id -> node *)
  summaries : (string, origin item list) Hashtbl.t;
  mutable order : string list;  (* ids, deterministic collection order *)
  by_unit_path : (string, string) Hashtbl.t;  (* unit ^ ":" ^ path -> id, last wins *)
  by_stamp : (string, string) Hashtbl.t;  (* unit ^ ":" ^ unique_name -> id *)
  unit_by_name : (string, string) Hashtbl.t;  (* unit name / dotted -> unit *)
  dotted_of : (string, string) Hashtbl.t;  (* unit -> dotted *)
}

(* --- raising-stdlib seed table --- *)

let seed_exact =
  [
    ("failwith", [ "Failure" ]);
    ("invalid_arg", [ "Invalid_argument" ]);
    ("Hashtbl.find", [ "Not_found" ]);
    ("List.hd", [ "Failure" ]);
    ("List.tl", [ "Failure" ]);
    ("List.nth", [ "Failure"; "Invalid_argument" ]);
    ("List.find", [ "Not_found" ]);
    ("List.assoc", [ "Not_found" ]);
    ("List.assq", [ "Not_found" ]);
    ("Option.get", [ "Invalid_argument" ]);
    ("String.index", [ "Not_found" ]);
    ("String.rindex", [ "Not_found" ]);
    ("String.index_from", [ "Not_found" ]);
    ("String.rindex_from", [ "Not_found" ]);
    ("int_of_string", [ "Failure" ]);
    ("float_of_string", [ "Failure" ]);
    ("bool_of_string", [ "Invalid_argument" ]);
    ("Int32.of_string", [ "Failure" ]);
    ("Int64.of_string", [ "Failure" ]);
    ("Nativeint.of_string", [ "Failure" ]);
    ("Filename.chop_extension", [ "Invalid_argument" ]);
    ("Filename.chop_suffix", [ "Invalid_argument" ]);
    ("Sys.getenv", [ "Not_found" ]);
    ("Sys.remove", [ "Sys_error" ]);
    ("Sys.rename", [ "Sys_error" ]);
    ("Queue.pop", [ "Empty" ]);
    ("Queue.take", [ "Empty" ]);
    ("Queue.peek", [ "Empty" ]);
    ("Stack.pop", [ "Empty" ]);
    ("Stack.top", [ "Empty" ]);
    (* channel IO; stdout convenience printers are deliberately absent
       (a Sys_error on stdout is process-fatal by design, and lib code
       is already barred from stdout by the hygiene family) *)
    ("open_in", [ "Sys_error" ]);
    ("open_in_bin", [ "Sys_error" ]);
    ("open_in_gen", [ "Sys_error" ]);
    ("open_out", [ "Sys_error" ]);
    ("open_out_bin", [ "Sys_error" ]);
    ("open_out_gen", [ "Sys_error" ]);
    ("input_line", [ "End_of_file"; "Sys_error" ]);
    ("input_char", [ "End_of_file"; "Sys_error" ]);
    ("input_byte", [ "End_of_file"; "Sys_error" ]);
    ("input_binary_int", [ "End_of_file"; "Sys_error" ]);
    ("really_input", [ "End_of_file"; "Sys_error" ]);
    ("really_input_string", [ "End_of_file"; "Sys_error" ]);
    ("input", [ "Sys_error" ]);
    ("seek_in", [ "Sys_error" ]);
    ("pos_in", [ "Sys_error" ]);
    ("in_channel_length", [ "Sys_error" ]);
    ("close_in", [ "Sys_error" ]);
    ("output", [ "Sys_error" ]);
    ("output_string", [ "Sys_error" ]);
    ("output_substring", [ "Sys_error" ]);
    ("output_bytes", [ "Sys_error" ]);
    ("output_char", [ "Sys_error" ]);
    ("output_byte", [ "Sys_error" ]);
    ("output_binary_int", [ "Sys_error" ]);
    ("seek_out", [ "Sys_error" ]);
    ("pos_out", [ "Sys_error" ]);
    ("out_channel_length", [ "Sys_error" ]);
    ("close_out", [ "Sys_error" ]);
    ("flush", [ "Sys_error" ]);
  ]

(* Unix values that cannot meaningfully raise Unix_error. *)
let unix_safe =
  [
    "Unix.stdin"; "Unix.stdout"; "Unix.stderr"; "Unix.getpid"; "Unix.getppid";
    "Unix.gettimeofday"; "Unix.time"; "Unix.environment"; "Unix.error_message";
    "Unix.string_of_inet_addr"; "Unix.inet_addr_loopback"; "Unix.inet_addr_any";
  ]

let seed_names name =
  match List.assoc_opt name seed_exact with
  | Some ns -> ns
  | None ->
      if Syntax.starts_with ~prefix:"Unix." name && not (List.mem name unix_safe) then
        [ "Unix_error" ]
      else
        (* Functor-instance table lookups (Fh_tbl.find, M.find over
           Map/Set.Make results) follow the stdlib find contract. *)
        let last =
          match String.rindex_opt name '.' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name
        in
        if last = "find" && String.contains name '.' then [ "Not_found" ] else []

(* --- pass 1: node collection --- *)

let binding_ident (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, _) -> Some id
  | _ -> None

let new_graph () =
  {
    nodes = Hashtbl.create 512;
    summaries = Hashtbl.create 512;
    order = [];
    by_unit_path = Hashtbl.create 512;
    by_stamp = Hashtbl.create 512;
    unit_by_name = Hashtbl.create 64;
    dotted_of = Hashtbl.create 64;
  }

let add_node g ~unit_name ~dotted ~prefix vb =
  match binding_ident vb with
  | None -> ()
  | Some id ->
      let path =
        if prefix = "" then Ident.name id else prefix ^ "." ^ Ident.name id
      in
      let n_id = unit_name ^ ":" ^ prefix ^ "." ^ Ident.unique_name id in
      let loc = vb.Typedtree.vb_pat.pat_loc in
      let node =
        {
          n_id;
          n_display = dotted ^ "." ^ path;
          n_unit = unit_name;
          n_path = path;
          n_file = loc.loc_start.pos_fname;
          n_line = loc.loc_start.pos_lnum;
          n_allows = Syntax.allows vb.Typedtree.vb_attributes;
        }
      in
      Hashtbl.replace g.nodes n_id node;
      g.order <- n_id :: g.order;
      Hashtbl.replace g.by_unit_path (unit_name ^ ":" ^ path) n_id;
      Hashtbl.replace g.by_stamp (unit_name ^ ":" ^ Ident.unique_name id) n_id

let rec collect_structure g ~unit_name ~dotted ~prefix (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter (add_node g ~unit_name ~dotted ~prefix) vbs
      | Tstr_module mb -> collect_module g ~unit_name ~dotted ~prefix mb
      | Tstr_recmodule mbs -> List.iter (collect_module g ~unit_name ~dotted ~prefix) mbs
      | Tstr_include incl -> collect_module_expr g ~unit_name ~dotted ~prefix incl.incl_mod
      | _ -> ())
    str.str_items

and collect_module g ~unit_name ~dotted ~prefix (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id ->
      let sub = if prefix = "" then Ident.name id else prefix ^ "." ^ Ident.name id in
      collect_module_expr g ~unit_name ~dotted ~prefix:sub mb.mb_expr

and collect_module_expr g ~unit_name ~dotted ~prefix (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> collect_structure g ~unit_name ~dotted ~prefix str
  | Tmod_constraint (me, _, _, _) -> collect_module_expr g ~unit_name ~dotted ~prefix me
  | _ -> ()

(* --- pass 2: lowering --- *)

type env = {
  g : graph;
  e_unit : string;
  aliases : (string, string) Hashtbl.t;
  mutable reraise : string list;  (* unique_names of handler-bound exn vars *)
}

let resolve_project env (p : Path.t) =
  let g = env.g in
  match p with
  | Path.Pident id -> Hashtbl.find_opt g.by_stamp (env.e_unit ^ ":" ^ Ident.unique_name id)
  | Path.Pdot _ -> (
      let name = Hot.expand_alias env.aliases (Path.name p) in
      (* Longest unit prefix first (handles Nt_mon.Feed.pull and the
         raw Nt_mon__Feed.pull spelling), then a nested path in the
         current unit (Decoder.feed from Nt_tbin's top level). *)
      let rec try_prefix s =
        match Hashtbl.find_opt g.unit_by_name s with
        | Some u -> Some (u, String.length s)
        | None -> (
            match String.rindex_opt s '.' with
            | Some i -> try_prefix (String.sub s 0 i)
            | None -> None)
      in
      let cross =
        match String.rindex_opt name '.' with
        | None -> None
        | Some _ -> (
            match try_prefix name with
            | Some (u, plen) when plen < String.length name ->
                let rest = String.sub name (plen + 1) (String.length name - plen - 1) in
                Hashtbl.find_opt g.by_unit_path (u ^ ":" ^ rest)
            | _ -> None)
      in
      match cross with
      | Some id -> Some id
      | None -> Hashtbl.find_opt g.by_unit_path (env.e_unit ^ ":" ^ name))
  | _ -> None

let ident_items env (p : Path.t) (loc : Location.t) =
  match resolve_project env p with
  | Some id -> [ Call id ]
  | None -> (
      match p with
      | Path.Pident _ ->
          (* An unresolved bare ident is a parameter or a function-local
             binding (whose body is already folded into this summary) —
             never a stdlib value, which the typedtree spells Stdlib.*.
             Consulting the seed table here would make a local named
             [flush] raise Sys_error. *)
          []
      | _ ->
          let name = Syntax.norm_path p in
          List.map
            (fun n -> Prim (n, origin_of_loc (name ^ " raises " ^ n) loc))
            (seed_names name))

let norm_cstr (cd : Types.constructor_description) = Syntax.norm_name cd.cstr_name

let rec pat_irrefutable (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> pat_irrefutable p
  | Tpat_tuple ps -> List.for_all pat_irrefutable ps
  | _ -> false

(* What one handler pattern provably catches: [`All], specific
   constructor names, or nothing we can credit (constant patterns,
   constructors with refutable argument patterns — those only catch a
   slice of the constructor's values). *)
let rec pat_catches (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> `All
  | Tpat_alias (p, _, _) -> pat_catches p
  | Tpat_construct (_, cd, args, _) ->
      if List.for_all pat_irrefutable args then `Names [ norm_cstr cd ] else `Names []
  | Tpat_or (a, b, _) -> (
      match (pat_catches a, pat_catches b) with
      | `All, _ | _, `All -> `All
      | `Names x, `Names y -> `Names (x @ y))
  | _ -> `Names []

let rec pat_bound_var (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias (_, id, _) -> Some id
  | Tpat_or (a, _, _) -> pat_bound_var a
  | _ -> None

(* Does [body] re-raise the exception variable [id] bound by its own
   handler pattern?  (try ... with e -> cleanup; raise e) *)
let reraises_var (id : Ident.t) (body : Typedtree.expression) =
  let found = ref false in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (fp, _, _); _ }, args) -> (
        match Syntax.norm_path fp with
        | "raise" | "raise_notrace" -> (
            match args with
            | (_, Some { exp_desc = Texp_ident (Path.Pident aid, _, _); _ }) :: _
              when Ident.same aid id ->
                found := true
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

let rec collect env (e0 : Typedtree.expression) : origin item list =
  let acc = ref [] in
  let push it = acc := it :: !acc in
  let expr sub (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> List.iter push (ident_items env p e.exp_loc)
    | Texp_apply (({ exp_desc = Texp_ident (fp, _, _); _ } as f), args) -> (
        match Syntax.norm_path fp with
        | ("raise" | "raise_notrace") as rk -> (
            match args with
            | (_, Some arg) :: rest -> (
                (match arg.exp_desc with
                | Texp_construct (_, cd, cargs) ->
                    let n = norm_cstr cd in
                    push (Prim (n, origin_of_loc (rk ^ " " ^ n) arg.exp_loc));
                    List.iter (fun a -> List.iter push (collect env a)) cargs
                | Texp_ident (Path.Pident id, _, _)
                  when List.mem (Ident.unique_name id) env.reraise ->
                    (* re-raise of the handler's own exception: modeled
                       by cancelling that handler's subtraction *)
                    ()
                | _ ->
                    push (Prim_top (origin_of_loc (rk ^ " of a computed exception") arg.exp_loc));
                    List.iter push (collect env arg));
                List.iter
                  (fun (_, a) -> match a with Some a -> List.iter push (collect env a) | None -> ())
                  rest)
            | _ ->
                (* bare [raise] passed as a value: anything could come out *)
                push (Prim_top (origin_of_loc "raise used as a first-class value" e.exp_loc)))
        | _ ->
            sub.Tast_iterator.expr sub f;
            List.iter
              (fun (_, a) -> match a with Some a -> sub.Tast_iterator.expr sub a | None -> ())
              args)
    | Texp_try (body, cases) ->
        let body_items = collect env body in
        let catch = ref `None in
        let merge c =
          match (!catch, c) with
          | `All, _ | _, `All -> catch := `All
          | `None, `Names ns -> catch := `Names ns
          | `Names a, `Names b -> catch := `Names (a @ b)
        in
        List.iter
          (fun (c : _ Typedtree.case) ->
            (match c.c_guard with
            | Some g -> List.iter push (collect env g)
            | None -> ());
            let bound = pat_bound_var c.c_lhs in
            let rethrows =
              match bound with Some id -> reraises_var id c.c_rhs | None -> false
            in
            (* a guarded or re-raising handler catches nothing for
               subtraction purposes, but its body still contributes *)
            if c.c_guard = None && not rethrows then merge (pat_catches c.c_lhs);
            let saved = env.reraise in
            (match bound with
            | Some id when rethrows -> env.reraise <- Ident.unique_name id :: env.reraise
            | _ -> ());
            List.iter push (collect env c.c_rhs);
            env.reraise <- saved)
          cases;
        let catch =
          match !catch with `All -> Catch_all | `Names ns -> Catch_names ns | `None -> Catch_names []
        in
        push (Guard (catch, body_items))
    | Texp_match (scrut, cases, partial) ->
        let scrut_items = collect env scrut in
        let catch = ref `None in
        let merge c =
          match (!catch, c) with
          | `All, _ | _, `All -> catch := `All
          | `None, `Names ns -> catch := `Names ns
          | `Names a, `Names b -> catch := `Names (a @ b)
        in
        List.iter
          (fun (c : _ Typedtree.case) ->
            (match c.c_guard with
            | Some g -> List.iter push (collect env g)
            | None -> ());
            (match Typedtree.split_pattern c.c_lhs with
            | _, Some exn_pat ->
                let bound = pat_bound_var exn_pat in
                let rethrows =
                  match bound with Some id -> reraises_var id c.c_rhs | None -> false
                in
                if c.c_guard = None && not rethrows then merge (pat_catches exn_pat);
                let saved = env.reraise in
                (match bound with
                | Some id when rethrows ->
                    env.reraise <- Ident.unique_name id :: env.reraise
                | _ -> ());
                List.iter push (collect env c.c_rhs);
                env.reraise <- saved
            | _, None -> List.iter push (collect env c.c_rhs)))
          cases;
        (match !catch with
        | `None -> List.iter push scrut_items
        | `All -> push (Guard (Catch_all, scrut_items))
        | `Names ns -> push (Guard (Catch_names ns, scrut_items)));
        if partial = Typedtree.Partial then
          push (Prim ("Match_failure", origin_of_loc "non-exhaustive match" e.exp_loc))
    | Texp_function { cases; partial; _ } ->
        if partial = Typedtree.Partial then
          push (Prim ("Match_failure", origin_of_loc "non-exhaustive function" e.exp_loc));
        List.iter (sub.Tast_iterator.case sub) cases
    | Texp_assert _ ->
        push (Prim ("Assert_failure", origin_of_loc "assert" e.exp_loc));
        Tast_iterator.default_iterator.expr sub e
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e0;
  List.rev !acc

let rec lower_structure g ~unit_name aliases (str : Typedtree.structure) ~prefix =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match binding_ident vb with
              | None -> ()
              | Some id ->
                  let n_id = unit_name ^ ":" ^ prefix ^ "." ^ Ident.unique_name id in
                  let env = { g; e_unit = unit_name; aliases; reraise = [] } in
                  Hashtbl.replace g.summaries n_id (collect env vb.vb_expr))
            vbs
      | Tstr_module mb -> lower_module g ~unit_name aliases ~prefix mb
      | Tstr_recmodule mbs -> List.iter (lower_module g ~unit_name aliases ~prefix) mbs
      | Tstr_include incl -> lower_module_expr g ~unit_name aliases ~prefix incl.incl_mod
      | _ -> ())
    str.str_items

and lower_module g ~unit_name aliases ~prefix (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id ->
      let sub = if prefix = "" then Ident.name id else prefix ^ "." ^ Ident.name id in
      lower_module_expr g ~unit_name aliases ~prefix:sub mb.mb_expr

and lower_module_expr g ~unit_name aliases ~prefix (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> lower_structure g ~unit_name aliases str ~prefix
  | Tmod_constraint (me, _, _, _) -> lower_module_expr g ~unit_name aliases ~prefix me
  | _ -> ()

let build (units : Loader.unit_info list) =
  let g = new_graph () in
  let impls =
    List.filter_map
      (fun (u : Loader.unit_info) ->
        match u.Loader.payload with
        | Loader.Impl str -> Some (u, str)
        | Loader.Intf _ -> None)
      units
  in
  List.iter
    (fun ((u : Loader.unit_info), str) ->
      Hashtbl.replace g.unit_by_name u.Loader.name u.Loader.name;
      Hashtbl.replace g.unit_by_name u.Loader.dotted u.Loader.name;
      Hashtbl.replace g.dotted_of u.Loader.name u.Loader.dotted;
      collect_structure g ~unit_name:u.Loader.name ~dotted:u.Loader.dotted ~prefix:"" str)
    impls;
  g.order <- List.rev g.order;
  List.iter
    (fun ((u : Loader.unit_info), str) ->
      let aliases = Hot.module_aliases str in
      lower_structure g ~unit_name:u.Loader.name aliases str ~prefix:"")
    impls;
  g

let nodes g = List.filter_map (Hashtbl.find_opt g.nodes) g.order
let node g id = Hashtbl.find_opt g.nodes id

let summary g id =
  match Hashtbl.find_opt g.summaries id with Some items -> items | None -> []

let set_summary g id items = Hashtbl.replace g.summaries id items

let summaries g = List.map (fun id -> (id, summary g id)) g.order

(* The id the unit's surface exports for a display name: the last
   binding registered under that (unit, path), so a shadowed inner
   definition is not mistaken for the module's entry point. *)
let exported g (n : node) =
  Hashtbl.find_opt g.by_unit_path (n.n_unit ^ ":" ^ n.n_path) = Some n.n_id

(* --- provenance: one witness chain for (node, exception) --- *)

let explain g sol ~id ~exn =
  let lookup k = match Hashtbl.find_opt sol k with Some e -> e | None -> bot in
  let visited = Hashtbl.create 16 in
  let rec through_items items =
    let rec go = function
      | [] -> None
      | Prim (n, o) :: _ when n = exn || exn = "*" ->
          Some [ Printf.sprintf "%s (%s:%d)" o.o_desc o.o_file o.o_line ]
      | Prim_top o :: _ when exn = "*" ->
          Some [ Printf.sprintf "%s (%s:%d)" o.o_desc o.o_file o.o_line ]
      | Call k :: rest -> (
          if mem_exn exn (lookup k) || (exn = "*" && lookup k = Top) then
            match via_node k with Some chain -> Some chain | None -> go rest
          else go rest)
      | Guard (catch, inner) :: rest -> (
          let survives =
            match catch with
            | Catch_all -> false
            | Catch_names ns -> not (List.mem exn ns)
          in
          if survives then
            match through_items inner with Some c -> Some c | None -> go rest
          else go rest)
      | _ :: rest -> go rest
    in
    go items
  and via_node k =
    if Hashtbl.mem visited k then None
    else begin
      Hashtbl.add visited k ();
      let name = match node g k with Some n -> n.n_display | None -> k in
      match through_items (summary g k) with
      | Some chain -> Some (name :: chain)
      | None -> None
    end
  in
  Hashtbl.add visited id ();
  through_items (summary g id)
