lib/nfs/proc.mli:
