module Record = Nt_trace.Record

type entry = { expiry : float; proc : string; reply_lost : bool }

type t = {
  cap : int;
  timeout : float;
  mutable heap : entry array;  (* min-heap on expiry; [0, len) live *)
  mutable len : int;
  mutable lost : int;
  mutable dropped : int;
}

let dummy = { expiry = 0.; proc = ""; reply_lost = false }

let create ?(cap = 4096) ?(timeout = 60.) () =
  if cap <= 0 then invalid_arg "Outstanding.create: cap <= 0";
  { cap; timeout; heap = Array.make (min cap 64) dummy; len = 0; lost = 0; dropped = 0 }
[@@nt.raise_ok
  "cap is operator configuration validated at construction; a non-positive cap is a setup \
   error, not a runtime condition"]

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.heap.(i).expiry < t.heap.(p).expiry then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.len && t.heap.(l).expiry < t.heap.(!m).expiry then m := l;
  if r < t.len && t.heap.(r).expiry < t.heap.(!m).expiry then m := r;
  if !m <> i then begin
    swap t i !m;
    sift_down t !m
  end

let pop_min t =
  if t.len = 0 then None
  else begin
    let e = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy;
    sift_down t 0;
    Some e
  end

let rec insert t e =
  if t.len = Array.length t.heap && t.len < t.cap then begin
    let bigger = Array.make (min t.cap (2 * t.len)) dummy in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end;
  if t.len = t.cap then begin
    (* Full: keep the call that stays in flight longest. *)
    if e.expiry <= t.heap.(0).expiry then t.dropped <- t.dropped + 1
    else begin
      ignore (pop_min t);
      t.dropped <- t.dropped + 1;
      insert_raw t e
    end
  end
  else insert_raw t e

and insert_raw t e =
  t.heap.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let note t (r : Record.t) =
  match r.Record.reply_time with
  | Some rt ->
      insert t
        { expiry = rt; proc = Nt_nfs.Proc.to_string (Record.proc r); reply_lost = false }
  | None ->
      insert t
        {
          expiry = r.Record.time +. t.timeout;
          proc = Nt_nfs.Proc.to_string (Record.proc r);
          reply_lost = true;
        }

let advance t ~now =
  let continue = ref true in
  while !continue do
    if t.len > 0 && t.heap.(0).expiry <= now then begin
      match pop_min t with
      | Some e -> if e.reply_lost then t.lost <- t.lost + 1
      | None -> ()
    end
    else continue := false
  done

let outstanding t = t.len
let lost t = t.lost
let dropped t = t.dropped

(* --- checkpoint serialization --- *)

let to_lines t =
  let es = Array.sub t.heap 0 t.len in
  Array.sort (fun a b -> compare (a.expiry, a.proc) (b.expiry, b.proc)) es;
  Printf.sprintf "pending n=%d lost=%d dropped=%d" t.len t.lost t.dropped
  :: Array.to_list
       (Array.map
          (fun e ->
            Printf.sprintf "call %h %d %s" e.expiry (if e.reply_lost then 1 else 0) e.proc)
          es)

let of_lines ?cap ?timeout lines =
  let ( let* ) = Result.bind in
  let int s =
    match int_of_string_opt s with Some i -> Ok i | None -> Error ("bad int " ^ s)
  in
  match lines with
  | [] -> Error "empty pending section"
  | header :: rest ->
      let* n, lost, dropped =
        match String.split_on_char ' ' header with
        | [ "pending"; n; l; d ]
          when String.length n > 2 && String.sub n 0 2 = "n="
               && String.length l > 5 && String.sub l 0 5 = "lost="
               && String.length d > 8 && String.sub d 0 8 = "dropped=" ->
            let* n = int (String.sub n 2 (String.length n - 2)) in
            let* l = int (String.sub l 5 (String.length l - 5)) in
            let* d = int (String.sub d 8 (String.length d - 8)) in
            Ok (n, l, d)
        | _ -> Error ("bad pending header: " ^ header)
      in
      if List.length rest <> n then Error "pending entry count mismatch"
      else
        let t = create ?cap ?timeout () in
        t.lost <- lost;
        t.dropped <- dropped;
        let* () =
          List.fold_left
            (fun acc line ->
              let* () = acc in
              match String.split_on_char ' ' line with
              | [ "call"; expiry; lost01; proc ] -> (
                  match float_of_string_opt expiry with
                  | None -> Error ("bad pending expiry: " ^ line)
                  | Some expiry ->
                      let* lost01 = int lost01 in
                      insert t { expiry; proc; reply_lost = lost01 <> 0 };
                      Ok ())
              | _ -> Error ("bad pending line: " ^ line))
            (Ok ()) rest
        in
        Ok t

let by_proc t =
  let counts = Hashtbl.create 8 in
  for i = 0 to t.len - 1 do
    let p = t.heap.(i).proc in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  List.sort
    (fun (ka, na) (kb, nb) -> if na <> nb then compare nb na else compare ka kb)
    (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [])

let footprint t =
  (* heap slots are preallocated up to cap; live entries carry a boxed
     record + proc string. *)
  Nt_obs.Footprint.v ~cards:t.len ~words:(8 + Array.length t.heap + (t.len * 10))
