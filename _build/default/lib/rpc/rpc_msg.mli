(** ONC RPC version 2 message layer (RFC 5531).

    Every NFS call and reply travels inside one of these messages. The
    tracer only ever sees bytes on the wire, so this module provides both
    directions: the simulator encodes, the capture engine decodes.

    The message *body* (procedure arguments or results) is carried as an
    opaque region: its interpretation depends on (program, version,
    procedure), which is the job of [Nt_nfs]. Decoding therefore returns
    the offset at which the body starts. *)

type auth_flavor =
  | Auth_null
  | Auth_unix of { stamp : int; machine : string; uid : int; gid : int; gids : int list }
  | Auth_other of int * string
      (** flavor number, raw body — preserved but not interpreted. *)

type call = {
  xid : int;
  rpcvers : int;  (** always 2 on the wire; preserved to detect garbage *)
  prog : int;
  vers : int;
  proc : int;
  cred : auth_flavor;
  verf : auth_flavor;
}

type reject_reason =
  | Rpc_mismatch of int * int  (** low, high supported versions *)
  | Auth_error of int

type accept_status =
  | Success
  | Prog_unavail
  | Prog_mismatch of int * int
  | Proc_unavail
  | Garbage_args
  | System_err

type reply = { xid : int; verf : auth_flavor; status : reply_status }
and reply_status = Accepted of accept_status | Denied of reject_reason

type msg = Call of call | Reply of reply

val nfs_program : int
(** 100003, the NFS program number. *)

val encode_call : Nt_xdr.Encode.t -> call -> unit
(** Writes the call header; the caller appends the procedure arguments. *)

val encode_reply : Nt_xdr.Encode.t -> reply -> unit
(** Writes the reply header; the caller appends results when the status
    is [Accepted Success]. *)

val decode : string -> pos:int -> len:int -> msg * int
(** [decode s ~pos ~len] parses one RPC message from [s.(pos .. pos+len)]
    and returns it with the absolute offset of the first body byte.
    Raises [Nt_xdr.Decode.Error] on malformed input. *)
