lib/trace/anonymize.mli: Nt_net Record
