(** Bounded reorder buffer emitting trace records in call-time order.

    Session events can emit a burst of records whose timestamps extend
    a little past the engine clock, so arrival order is only
    approximately sorted. The sorter holds a sliding window and releases
    a record once the newest timestamp seen is [horizon] beyond it —
    giving globally sorted output with memory proportional to the
    window, not the trace. *)

type t

val create : ?obs:Nt_obs.Obs.t -> ?horizon:float -> (Nt_trace.Record.t -> unit) -> t
(** [horizon] defaults to 600 s; it must exceed the longest burst any
    single event emits. [obs] hosts [sorter.pushed], [sorter.released]
    and the [sorter.window_occupancy] peak gauge; defaults to a private
    always-enabled registry. *)

val push : t -> Nt_trace.Record.t -> unit
val flush : t -> unit
(** Release everything; call once at end of simulation. *)

val pushed : t -> int
val released : t -> int
