(* nfsstats: run the paper's analyses over a saved text trace.

   Example: nfsstats --analysis summary,runs,names --jobs 4 campus.trace *)

open Cmdliner

let load ~obs prog sampler input =
  Nt_core.Pipeline.load_trace ~obs
    ~tick:(fun () ->
      Obs_cli.tick prog ~stage:"load" 1;
      Nt_obs.Sampler.tick sampler)
    input

let run input analyses jobs shard_records lint obs_opts =
  let obs = Nt_obs.Obs.create () in
  let timeline = Obs_cli.timeline obs_opts obs in
  let sampler = Nt_obs.Sampler.create ~interval:0.05 obs in
  let prog = Obs_cli.progress obs_opts "nfsstats" in
  let records = Nt_obs.Obs.with_span obs "load" (fun () -> load ~obs prog sampler input) in
  Nt_obs.Obs.add
    (Nt_obs.Obs.counter obs ~help:"trace records loaded" "stats.records")
    (List.length records);
  Printf.eprintf "nfsstats: %d records loaded\n%!" (List.length records);
  if lint then begin
    let l = Nt_core.Pipeline.lint_records ~obs records in
    List.iter
      (fun f -> Printf.eprintf "nfsstats: %s\n" (Nt_lint.Finding.to_string f))
      (Nt_lint.Engine.findings l);
    Printf.eprintf "nfsstats: lint: %d error(s), %d warning(s)\n%!"
      (Nt_lint.Engine.severity_count l Nt_lint.Rule.Error)
      (Nt_lint.Engine.severity_count l Nt_lint.Rule.Warn)
  end;
  List.iter
    (fun a ->
      Nt_obs.Obs.add
        (Nt_obs.Obs.counter obs
           ~labels:[ ("pass", Nt_par.Report.section_name a) ]
           ~help:"records fed to each analysis pass" "analysis.records")
        (List.length records))
    analyses;
  Obs_cli.set_stage prog "analyze";
  let sections =
    Nt_obs.Obs.with_span obs "analyze" (fun () ->
        Nt_core.Pipeline.analyze_records ~obs ?timeline ~jobs ~records_per_shard:shard_records
          ~sections:analyses records)
  in
  List.iter
    (fun (_, text) ->
      print_string text;
      print_newline ())
    sections;
  ignore (Nt_obs.Sampler.sample_now sampler : Nt_obs.Sampler.sample);
  Obs_cli.finish prog;
  Obs_cli.dump obs_opts obs;
  Obs_cli.dump_timeline ~sampler obs_opts timeline;
  0

let input =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"TRACE"
        ~doc:
          "Input trace: - for stdin (text), a path (format sniffed: .ntb extension or nttb/1 \
           magic means binary), or an explicit trace:PATH / tbin:PATH.")

let analyses =
  let kind =
    Arg.enum [ ("summary", `Summary); ("runs", `Runs); ("names", `Names); ("hourly", `Hourly) ]
  in
  Arg.(
    value
    & opt (list kind) [ `Summary ]
    & info [ "a"; "analysis" ] ~docv:"LIST" ~doc:"Analyses to run: summary, runs, names, hourly.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sharded analysis engine (default 1: inline, no domains; 0: the \
           machine's recommended domain count). The report text is byte-identical at any setting \
           — sharding and merge order never depend on it.")

let shard_records =
  Arg.(
    value
    & opt int Nt_par.Report.default_records_per_shard
    & info [ "shard-records" ] ~docv:"N" ~doc:"Records per analysis shard.")

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static checker over the loaded records before analyzing; findings go to \
           stderr so suspicious traces are flagged next to the numbers they distort.")

let cmd =
  Cmd.v
    (Cmd.info "nfsstats" ~doc:"Analyze a saved NFS trace")
    Term.(const run $ input $ analyses $ jobs $ shard_records $ lint $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
