(* XDR codec tests: round trips, wire layout, padding and error
   handling per RFC 4506. *)

module E = Nt_xdr.Encode
module D = Nt_xdr.Decode

let encode f =
  let e = E.create () in
  f e;
  E.contents e

let decode s f = f (D.of_string s)

let roundtrip enc dec v =
  let s = encode (fun e -> enc e v) in
  decode s dec

let test_uint32_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) "uint32" v (roundtrip E.uint32 D.uint32 v))
    [ 0; 1; 255; 256; 65535; 0x12345678; 0xFFFFFFFF ]

let test_uint32_wire_layout () =
  Alcotest.(check string) "big endian" "\x12\x34\x56\x78"
    (encode (fun e -> E.uint32 e 0x12345678))

let test_int32_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int32) "int32" v (roundtrip E.int32 D.int32 v))
    [ 0l; 1l; -1l; Int32.max_int; Int32.min_int ]

let test_uint64_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int64) "uint64" v (roundtrip E.uint64 D.uint64 v))
    [ 0L; 1L; 0xFFFFFFFFL; 0x123456789ABCDEFL; Int64.max_int; -1L ]

let test_bool_roundtrip () =
  Alcotest.(check bool) "true" true (roundtrip E.bool D.bool true);
  Alcotest.(check bool) "false" false (roundtrip E.bool D.bool false)

let test_bool_bad_value () =
  let s = encode (fun e -> E.uint32 e 7) in
  Alcotest.check_raises "bool 7 rejected" (D.Error "bad boolean 7") (fun () ->
      ignore (decode s D.bool))

let test_enum_negative () =
  Alcotest.(check int) "negative enum" (-3) (roundtrip E.enum D.enum (-3))

let test_string_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check string) "string" v (roundtrip E.string D.string v))
    [ ""; "a"; "ab"; "abc"; "abcd"; "hello world"; String.make 1000 'x' ]

let test_string_padding () =
  (* "abc" -> 4 length + 3 data + 1 pad = 8 bytes. *)
  Alcotest.(check int) "padded length" 8 (String.length (encode (fun e -> E.string e "abc")));
  Alcotest.(check int) "aligned length" 8 (String.length (encode (fun e -> E.string e "abcd")))

let test_opaque_binary () =
  let v = "\x00\x01\xFF\xFE\x7F" in
  Alcotest.(check string) "binary opaque" v (roundtrip E.opaque D.opaque v)

let test_fixed_opaque () =
  let s = encode (fun e -> E.fixed_opaque e "xyz") in
  Alcotest.(check int) "fixed padded to 4" 4 (String.length s);
  Alcotest.(check string) "fixed roundtrip" "xyz" (decode s (fun d -> D.fixed_opaque d 3))

let test_array_roundtrip () =
  let v = [ 3; 1; 4; 1; 5 ] in
  let s = encode (fun e -> E.array e (E.uint32 e) v) in
  Alcotest.(check (list int)) "array" v (decode s (fun d -> D.array d D.uint32))

let test_array_empty () =
  let s = encode (fun e -> E.array e (E.uint32 e) []) in
  Alcotest.(check (list int)) "empty array" [] (decode s (fun d -> D.array d D.uint32))

let test_optional_roundtrip () =
  let enc e v = E.optional e (E.uint32 e) v in
  let dec d = D.optional d D.uint32 in
  Alcotest.(check (option int)) "some" (Some 9) (roundtrip enc dec (Some 9));
  Alcotest.(check (option int)) "none" None (roundtrip enc dec None)

let test_truncated_uint32 () =
  Alcotest.(check bool) "truncated raises" true
    (try
       ignore (decode "\x00\x01" D.uint32);
       false
     with D.Error _ -> true)

let test_opaque_absurd_length () =
  (* Claims 1GB of data in a 8-byte buffer. *)
  let s = encode (fun e -> E.uint32 e 0x40000000) ^ "data" in
  Alcotest.(check bool) "absurd length rejected" true
    (try
       ignore (decode s D.opaque);
       false
     with D.Error _ -> true)

let test_array_absurd_count () =
  let s = encode (fun e -> E.uint32 e 0x100000) in
  Alcotest.(check bool) "absurd count rejected" true
    (try
       ignore (decode s (fun d -> D.array d D.uint32));
       false
     with D.Error _ -> true)

let test_decode_window () =
  let s = "AAAA\x00\x00\x00\x05BBBB" in
  let d = D.of_string ~pos:4 ~len:4 s in
  Alcotest.(check int) "window read" 5 (D.uint32 d);
  Alcotest.(check bool) "at end" true (D.at_end d)

let test_decode_window_bounds () =
  Alcotest.(check bool) "bad window rejected" true
    (try
       ignore (D.of_string ~pos:2 ~len:10 "abc");
       false
     with D.Error _ -> true)

let test_skip_and_pos () =
  let d = D.of_string "abcdefgh" in
  D.skip d 4;
  Alcotest.(check int) "pos after skip" 4 (D.pos d);
  Alcotest.(check int) "remaining" 4 (D.remaining d)

let test_reset_reuse () =
  let e = E.create () in
  E.uint32 e 1;
  E.reset e;
  E.uint32 e 2;
  Alcotest.(check int) "reset buffer reused" 2 (decode (E.contents e) D.uint32)

(* Properties: everything XDR writes is 4-byte aligned and round-trips. *)

let prop_alignment =
  QCheck.Test.make ~name:"encodings are 4-byte aligned" ~count:500 QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let buf = encode (fun e -> E.string e s) in
      String.length buf mod 4 = 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:500 QCheck.(string_of_size Gen.(0 -- 300))
    (fun s -> String.equal s (roundtrip E.string D.string s))

let prop_uint64_roundtrip =
  QCheck.Test.make ~name:"uint64 roundtrip" ~count:500 QCheck.int64 (fun v ->
      Int64.equal v (roundtrip E.uint64 D.uint64 v))

let prop_mixed_sequence =
  QCheck.Test.make ~name:"mixed field sequence roundtrip" ~count:300
    QCheck.(triple (int_range 0 0xFFFFFFF) (string_of_size Gen.(0 -- 50)) bool)
    (fun (n, s, b) ->
      let buf =
        encode (fun e ->
            E.uint32 e n;
            E.string e s;
            E.bool e b)
      in
      decode buf (fun d ->
          let n' = D.uint32 d in
          let s' = D.string d in
          let b' = D.bool d in
          n = n' && String.equal s s' && Bool.equal b b' && D.at_end d))

let () =
  Alcotest.run "nt_xdr"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "uint32" `Quick test_uint32_roundtrip;
          Alcotest.test_case "uint32 wire layout" `Quick test_uint32_wire_layout;
          Alcotest.test_case "int32" `Quick test_int32_roundtrip;
          Alcotest.test_case "uint64" `Quick test_uint64_roundtrip;
          Alcotest.test_case "bool" `Quick test_bool_roundtrip;
          Alcotest.test_case "enum negative" `Quick test_enum_negative;
          Alcotest.test_case "string" `Quick test_string_roundtrip;
          Alcotest.test_case "string padding" `Quick test_string_padding;
          Alcotest.test_case "opaque binary" `Quick test_opaque_binary;
          Alcotest.test_case "fixed opaque" `Quick test_fixed_opaque;
          Alcotest.test_case "array" `Quick test_array_roundtrip;
          Alcotest.test_case "array empty" `Quick test_array_empty;
          Alcotest.test_case "optional" `Quick test_optional_roundtrip;
        ] );
      ( "errors",
        [
          Alcotest.test_case "bad bool" `Quick test_bool_bad_value;
          Alcotest.test_case "truncated uint32" `Quick test_truncated_uint32;
          Alcotest.test_case "absurd opaque length" `Quick test_opaque_absurd_length;
          Alcotest.test_case "absurd array count" `Quick test_array_absurd_count;
          Alcotest.test_case "window bounds" `Quick test_decode_window_bounds;
        ] );
      ( "cursor",
        [
          Alcotest.test_case "decode window" `Quick test_decode_window;
          Alcotest.test_case "skip and pos" `Quick test_skip_and_pos;
          Alcotest.test_case "encoder reset" `Quick test_reset_reuse;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_alignment;
          QCheck_alcotest.to_alcotest prop_string_roundtrip;
          QCheck_alcotest.to_alcotest prop_uint64_roundtrip;
          QCheck_alcotest.to_alcotest prop_mixed_sequence;
        ] );
    ]
