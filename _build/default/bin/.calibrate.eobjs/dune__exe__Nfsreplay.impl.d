bin/nfsreplay.ml: Arg Cmd Cmdliner Hashtbl Int64 List Nt_nfs Nt_sim Nt_trace Nt_util Printf Queue Term
