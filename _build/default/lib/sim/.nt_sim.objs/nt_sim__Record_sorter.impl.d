lib/sim/record_sorter.ml: Array Nt_nfs Nt_trace
