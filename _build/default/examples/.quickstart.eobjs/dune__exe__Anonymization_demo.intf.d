examples/anonymization_demo.mli:
