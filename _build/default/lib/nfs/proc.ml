type t =
  | Null
  | Getattr
  | Setattr
  | Root
  | Lookup
  | Access
  | Readlink
  | Read
  | Writecache
  | Write
  | Create
  | Mkdir
  | Symlink
  | Mknod
  | Remove
  | Rmdir
  | Rename
  | Link
  | Readdir
  | Readdirplus
  | Statfs
  | Fsinfo
  | Pathconf
  | Commit

let to_string = function
  | Null -> "null"
  | Getattr -> "getattr"
  | Setattr -> "setattr"
  | Root -> "root"
  | Lookup -> "lookup"
  | Access -> "access"
  | Readlink -> "readlink"
  | Read -> "read"
  | Writecache -> "writecache"
  | Write -> "write"
  | Create -> "create"
  | Mkdir -> "mkdir"
  | Symlink -> "symlink"
  | Mknod -> "mknod"
  | Remove -> "remove"
  | Rmdir -> "rmdir"
  | Rename -> "rename"
  | Link -> "link"
  | Readdir -> "readdir"
  | Readdirplus -> "readdirplus"
  | Statfs -> "statfs"
  | Fsinfo -> "fsinfo"
  | Pathconf -> "pathconf"
  | Commit -> "commit"

let v2_number = function
  | Null -> Some 0
  | Getattr -> Some 1
  | Setattr -> Some 2
  | Root -> Some 3
  | Lookup -> Some 4
  | Readlink -> Some 5
  | Read -> Some 6
  | Writecache -> Some 7
  | Write -> Some 8
  | Create -> Some 9
  | Remove -> Some 10
  | Rename -> Some 11
  | Link -> Some 12
  | Symlink -> Some 13
  | Mkdir -> Some 14
  | Rmdir -> Some 15
  | Readdir -> Some 16
  | Statfs -> Some 17
  | Access | Mknod | Readdirplus | Fsinfo | Pathconf | Commit -> None

let v3_number = function
  | Null -> Some 0
  | Getattr -> Some 1
  | Setattr -> Some 2
  | Lookup -> Some 3
  | Access -> Some 4
  | Readlink -> Some 5
  | Read -> Some 6
  | Write -> Some 7
  | Create -> Some 8
  | Mkdir -> Some 9
  | Symlink -> Some 10
  | Mknod -> Some 11
  | Remove -> Some 12
  | Rmdir -> Some 13
  | Rename -> Some 14
  | Link -> Some 15
  | Readdir -> Some 16
  | Readdirplus -> Some 17
  | Statfs -> Some 18 (* FSSTAT *)
  | Fsinfo -> Some 19
  | Pathconf -> Some 20
  | Commit -> Some 21
  | Root | Writecache -> None

let all =
  [ Null; Getattr; Setattr; Root; Lookup; Access; Readlink; Read; Writecache; Write; Create;
    Mkdir; Symlink; Mknod; Remove; Rmdir; Rename; Link; Readdir; Readdirplus; Statfs; Fsinfo;
    Pathconf; Commit ]

let invert numbering n = List.find_opt (fun p -> numbering p = Some n) all

let of_v2_number n = invert v2_number n
let of_v3_number n = invert v3_number n

let number ~version p = if version = 2 then v2_number p else v3_number p
let of_number ~version n = if version = 2 then of_v2_number n else of_v3_number n

type kind = Data_read | Data_write | Metadata_read | Metadata_write

let kind = function
  | Read -> Data_read
  | Write -> Data_write
  | Setattr | Create | Mkdir | Symlink | Mknod | Remove | Rmdir | Rename | Link | Commit
  | Writecache ->
      Metadata_write
  | Null | Getattr | Root | Lookup | Access | Readlink | Readdir | Readdirplus | Statfs | Fsinfo
  | Pathconf ->
      Metadata_read

let is_data p = match kind p with Data_read | Data_write -> true | Metadata_read | Metadata_write -> false
