(* Binary-trace decoder fixture: this unit stands in for lib/tbin,
   which the shipped config pulls into the decode scope. The varint
   shape mirrors Nt_tbin.Varint but seeds one purity violation. *)

(* violation: decode-raise (invalid_arg escapes a decode path that
   exposes no result/option to the caller; the tbin discipline is that
   only the typed Corrupt exception may cross a decoder boundary) *)
let decode_uv (s : string) (pos : int) =
  if pos >= String.length s then invalid_arg "decode_uv: truncated varint"
  else Char.code (String.unsafe_get s pos) land 0x7f
