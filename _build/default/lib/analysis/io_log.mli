(** Per-file I/O access collection, shared by the run, reorder and
    sequentiality analyses.

    Each READ/WRITE record contributes one access to its file's
    chronological list. Lists preserve wire arrival order — exactly what
    the paper's reorder-window technique then (partially) sorts. *)

type access = {
  at : float;  (** wire time of the call *)
  offset : int;  (** bytes *)
  count : int;  (** bytes actually moved *)
  is_read : bool;
  at_eof : bool;  (** the access referenced end-of-file *)
  file_size : int;  (** file size when the access completed *)
}

type t

val create : unit -> t

val observe : t -> Nt_trace.Record.t -> unit
(** Collect READ/WRITE records (others are ignored). Lost-reply reads
    still count with the requested byte count, as the paper's tools
    must assume. *)

val files : t -> int
val accesses : t -> int

val iter_files : t -> (Nt_nfs.Fh.t -> access array -> unit) -> unit
(** Visit each file's accesses in arrival order. *)

val sort_window : float -> access array -> access array * int
(** [sort_window w accesses] applies the paper's reorder window: each
    access may be swapped with a nearby later access (within [w]
    seconds) when they are out of ascending offset order. Returns the
    partially sorted copy and the number of swaps performed. [w = 0]
    returns an unchanged copy. *)
