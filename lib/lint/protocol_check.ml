module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Proc = Nt_nfs.Proc

type config = { reorder_window : float; xid_window : float; max_tracked : int }

type suspect = { s_index : int; s_time : float; s_fh : Fh.t; s_proc : Proc.t }

type t = {
  cfg : config;
  emit : Finding.t -> unit;
  xids : (Nt_net.Ip_addr.t * int, float) Bounded.t;
  seen : (Fh.t, bool) Bounded.t;
      (* handle -> properly introduced?  [false] marks a handle seen
         only through flagged I/O (dedup marker, not an introduction) *)
  links : (Fh.t, int) Bounded.t;
  removed : (Fh.t, float) Bounded.t;
  bindings : (Fh.t * string, Fh.t) Bounded.t;
  pending : suspect Queue.t;
      (* I/O on not-yet-introduced handles, held one reorder window in
         case the introducing reply was merely captured late *)
  mutable prev_time : float;
  mutable seen_saturated : bool;
}

let create cfg ~emit =
  let cap = max 1 cfg.max_tracked in
  {
    cfg = { cfg with max_tracked = cap };
    emit;
    xids = Bounded.create ~capacity:cap;
    seen = Bounded.create ~capacity:cap;
    links = Bounded.create ~capacity:cap;
    removed = Bounded.create ~capacity:cap;
    bindings = Bounded.create ~capacity:cap;
    pending = Queue.create ();
    prev_time = neg_infinity;
    seen_saturated = false;
  }

let tracked t =
  Bounded.length t.xids + Bounded.length t.seen + Bounded.length t.links
  + Bounded.length t.removed + Bounded.length t.bindings + Queue.length t.pending

let evictions t =
  Bounded.evictions t.xids + Bounded.evictions t.seen + Bounded.evictions t.links
  + Bounded.evictions t.removed + Bounded.evictions t.bindings

let fire t rule ~index ~time fmt =
  Printf.ksprintf (fun detail -> t.emit (Finding.v rule ~index ~time detail)) fmt

let introduce t ~proper fh =
  match Bounded.find t.seen fh with
  | None ->
      if Bounded.length t.seen >= t.cfg.max_tracked then t.seen_saturated <- true;
      Bounded.set t.seen fh proper
  | Some true -> ()
  | Some false -> if proper then Bounded.set t.seen fh true

(* A handle handed out by a LOOKUP/CREATE reply supersedes any earlier
   removal (handle reuse); keep the checker fail-open. *)
let reintroduce t fh =
  introduce t ~proper:true fh;
  Bounded.remove t.removed fh

(* Drop one link; the handle is dead when the last one goes. *)
let unlink t ~time fh =
  let links = Option.value (Bounded.find t.links fh) ~default:1 in
  if links <= 1 then begin
    Bounded.remove t.links fh;
    Bounded.set t.removed fh time
  end
  else Bounded.set t.links fh (links - 1)

let is_io (p : Proc.t) = match p with Read | Write | Commit -> true | _ -> false

let check_ranges t ~index ~time (r : Record.t) =
  match (Record.offset r, Record.count r) with
  | Some off, Some count when Int64.compare off 0L < 0 || count < 0 ->
      fire t Rule.bad_io_range ~index ~time "offset %Ld count %d" off count
  | _ -> ()

let check_times t ~index ~time (r : Record.t) =
  (match r.Record.reply_time with
  | Some rt when rt < time ->
      fire t Rule.reply_before_call ~index ~time "reply at %.6f precedes call" rt
  | _ -> ());
  if time < t.prev_time -. t.cfg.reorder_window then
    fire t Rule.non_monotonic_time ~index ~time "call time runs back %.6fs (window %.3fs)"
      (t.prev_time -. time) t.cfg.reorder_window;
  if time > t.prev_time then t.prev_time <- time

let check_xid t ~index ~time (r : Record.t) =
  let key = (r.Record.client, r.Record.xid) in
  (match Bounded.find t.xids key with
  | Some prev when time -. prev <= t.cfg.xid_window ->
      fire t Rule.duplicate_xid ~index ~time "xid %08x reused %.3fs after first use"
        r.Record.xid (time -. prev)
  | _ -> ());
  Bounded.set t.xids key time;
  if r.Record.result = None then
    fire t Rule.unanswered_call ~index ~time "xid %08x never answered" r.Record.xid

(* A suspect use is judged one reorder window after its call time: by
   then the introducing LOOKUP/CREATE reply, if it was merely captured
   a few milliseconds late, has been folded into [seen]. *)
let resolve_suspect t s =
  let properly_introduced = Bounded.find t.seen s.s_fh = Some true in
  if (not properly_introduced) && not t.seen_saturated then
    fire t Rule.fh_before_introduction ~index:s.s_index ~time:s.s_time
      "%s on fh %s never introduced" (Proc.to_string s.s_proc) (Fh.to_hex s.s_fh)

let flush_pending t ~now =
  let rec loop () =
    match Queue.peek_opt t.pending with
    | Some s when s.s_time <= now -. t.cfg.reorder_window ->
        ignore (Queue.take_opt t.pending);
        resolve_suspect t s;
        loop ()
    | _ -> ()
  in
  loop ()

let finalize t = flush_pending t ~now:infinity

let check_fh t ~index ~time (r : Record.t) =
  match Record.fh r with
  | None -> ()
  | Some fh ->
      let proc = Record.proc r in
      let removed_at = Bounded.find t.removed fh in
      if Record.is_ok r && removed_at <> None then begin
        (* Within the window the use may simply have been reordered
           past the REMOVE at the capture point; beyond it, it is real. *)
        match removed_at with
        | Some at when time -. at > t.cfg.reorder_window ->
            fire t Rule.fh_use_after_remove ~index ~time "%s succeeded on removed fh %s"
              (Proc.to_string proc) (Fh.to_hex fh)
        | _ -> ()
      end
      else if is_io proc && (not (Bounded.mem t.seen fh)) && not t.seen_saturated then begin
        if Queue.length t.pending >= t.cfg.max_tracked then (
          match Queue.take_opt t.pending with
          | Some s -> resolve_suspect t s
          | None -> ());
        Queue.push { s_index = index; s_time = time; s_fh = fh; s_proc = proc } t.pending
      end

let check_size t ~index ~time (r : Record.t) =
  if Record.is_ok r then
    match (Record.proc r, Record.offset r, Record.post_size r) with
    | (Proc.Read | Proc.Write), Some off, Some size ->
        let moved = Int64.of_int (Record.io_bytes r) in
        let reach = Int64.add off moved in
        if moved > 0L && Int64.compare reach size > 0 then
          fire t Rule.offset_beyond_size ~index ~time
            "%Ld bytes at offset %Ld reach %Ld, past attested size %Ld" moved off reach size
    | _ -> ()

(* Fold the record into handle-lifecycle state after the checks. *)
let update t ~time (r : Record.t) =
  (* Non-I/O use introduces properly (the mount root arrives outside
     the trace); I/O only marks the handle so one violation is flagged
     once, without counting as an introduction for pending suspects. *)
  Option.iter (introduce t ~proper:(not (is_io (Record.proc r)))) (Record.fh r);
  (match (r.Record.call, r.Record.result) with
  | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh; _ })) ->
      reintroduce t fh;
      Bounded.set t.bindings (dir, name) fh
  | (Ops.Create { dir; name; _ } | Ops.Mkdir { dir; name; _ }
    | Ops.Symlink { dir; name; _ } | Ops.Mknod { dir; name }),
    Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
      reintroduce t fh;
      Bounded.set t.links fh 1;
      Bounded.set t.bindings (dir, name) fh
  | (Ops.Remove { dir; name } | Ops.Rmdir { dir; name }), Some (Ok _) -> (
      match Bounded.find t.bindings (dir, name) with
      | Some child ->
          Bounded.remove t.bindings (dir, name);
          unlink t ~time child
      | None -> ())
  | Ops.Rename { from_dir; from_name; to_dir; to_name }, Some (Ok _) -> (
      (* Renaming over an existing name unlinks whatever it displaced. *)
      (match Bounded.find t.bindings (to_dir, to_name) with
      | Some displaced -> unlink t ~time displaced
      | None -> ());
      match Bounded.find t.bindings (from_dir, from_name) with
      | Some child ->
          Bounded.remove t.bindings (from_dir, from_name);
          Bounded.set t.bindings (to_dir, to_name) child
      | None -> Bounded.remove t.bindings (to_dir, to_name))
  | Ops.Link { fh; to_dir; to_name }, Some (Ok _) ->
      Bounded.set t.links fh (1 + Option.value (Bounded.find t.links fh) ~default:1);
      Bounded.set t.bindings (to_dir, to_name) fh
  | _ -> ())

let observe t ~index (r : Record.t) =
  let time = r.Record.time in
  check_ranges t ~index ~time r;
  check_times t ~index ~time r;
  check_xid t ~index ~time r;
  check_fh t ~index ~time r;
  check_size t ~index ~time r;
  update t ~time r;
  (* prev_time is the high-water mark, so suspects are judged only once
     the stream is a full window past them even under mild reordering. *)
  flush_pending t ~now:t.prev_time
