lib/rpc/rpc_msg.ml: Nt_xdr Printf
