(* Clean twin of fix_exn: the same raising chain, but the root handler
   subtracts exactly the exception that escapes. *)

let deep () = failwith "boom"
let middle () = deep ()
let entry () = try middle () with Failure _ -> ()
