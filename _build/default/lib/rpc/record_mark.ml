let header ~last len =
  let v = if last then len lor 0x80000000 else len in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (v land 0xFF));
  Bytes.to_string b

let frame msg = header ~last:true (String.length msg) ^ msg

let frame_fragmented ~fragment_size msg =
  assert (fragment_size > 0);
  let n = String.length msg in
  let buf = Buffer.create (n + 16) in
  let rec go off =
    let len = min fragment_size (n - off) in
    let last = off + len >= n in
    Buffer.add_string buf (header ~last len);
    Buffer.add_string buf (String.sub msg off len);
    if not last then go (off + len)
  in
  if n = 0 then Buffer.add_string buf (header ~last:true 0) else go 0;
  Buffer.contents buf

type reassembler = {
  stream : Buffer.t;  (* unconsumed stream bytes *)
  record : Buffer.t;  (* fragments of the record in progress *)
}

let create_reassembler () = { stream = Buffer.create 4096; record = Buffer.create 4096 }

let pending_bytes t = Buffer.length t.stream + Buffer.length t.record

let push t bytes =
  Buffer.add_string t.stream bytes;
  let data = Buffer.contents t.stream in
  let n = String.length data in
  let completed = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    if n - !pos < 4 then continue := false
    else begin
      let b i = Char.code data.[!pos + i] in
      let hdr = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      let last = hdr land 0x80000000 <> 0 in
      let len = hdr land 0x7FFFFFFF in
      if len > 0x100000 then begin
        (* No sane NFS message exceeds 1 MB: we are desynchronised
           (e.g. the capture port dropped a segment mid-record). All
           XDR/RPC boundaries are 4-aligned, so scan forward a word at
           a time until a plausible header reappears. *)
        Buffer.clear t.record;
        pos := !pos + 4
      end
      else if n - !pos - 4 < len then continue := false
      else begin
        Buffer.add_substring t.record data (!pos + 4) len;
        pos := !pos + 4 + len;
        if last then begin
          completed := Buffer.contents t.record :: !completed;
          Buffer.clear t.record
        end
      end
    end
  done;
  Buffer.clear t.stream;
  if !pos < n then Buffer.add_substring t.stream data !pos (n - !pos);
  List.rev !completed
