(* The single registry of every versioned on-disk format tag this
   project writes or reads.  A version bump edits exactly one line
   here; ntcheck's codec-drift family (format-literal-drift,
   format-unregistered) rejects any tag literal that lives anywhere
   else, so two halves of a codec cannot silently disagree about a
   version.  Keep every tag a top-level [let name = "literal"]: the
   checker reads this module's typedtree and collects exactly those
   bindings as the registered set. *)

let tbin_magic = "nttb/1\n"
(* Stream magic of the compact binary trace container (lib/tbin); the
   trailing newline keeps `head -1` and file(1) friendly. *)

let checkpoint_version = "ntmon-ckpt/1"
(* First line of nfsmon's atomic checkpoint files (lib/mon). *)

let obs_snapshot = "nt_obs/1"
(* "schema" tag of every metrics snapshot JSON document (lib/obs). *)

let obs_series = "nt_obs_series/1"
(* "schema" tag of the resource-sampler time-series JSON (lib/obs). *)

let bench_obs = "nt_bench_obs/1"
(* "schema" tag of BENCH_obs.json (bench obs overhead gate). *)

let bench_par = "nt_bench_par/2"
(* "schema" tag of BENCH_par.json (bench sharded speedup gate). *)

let bench_mon = "nt_bench_mon/1"
(* "schema" tag of BENCH_mon.json (bench monitor soak gate). *)

let bench_scale = "nt_bench_scale/1"
(* "schema" tag of BENCH_scale.json (bench out-of-core scale gate). *)

let exn_report = "ntcheck-exn/1"
(* "schema" tag of ntcheck's per-function may-raise report. *)

let all =
  [
    ("tbin_magic", tbin_magic);
    ("checkpoint_version", checkpoint_version);
    ("obs_snapshot", obs_snapshot);
    ("obs_series", obs_series);
    ("bench_obs", bench_obs);
    ("bench_par", bench_par);
    ("bench_mon", bench_mon);
    ("bench_scale", bench_scale);
    ("exn_report", exn_report);
  ]
