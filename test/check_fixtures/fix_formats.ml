(* Fixture registry twin of Nt_formats: the codec-drift family resolves
   version tags against these bindings. *)

let fixfmt = "fixfmt/1"
let fixaux = "fixaux/3"
