examples/readahead_demo.mli:
