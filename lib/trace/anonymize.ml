module Prng = Nt_util.Prng
module Ops = Nt_nfs.Ops
module Ip_addr = Nt_net.Ip_addr
module Obs = Nt_obs.Obs

type config = {
  map_names : bool;
  map_ids : bool;
  map_ips : bool;
  omit : bool;
  preserve_names : string list;
  preserve_suffixes : string list;
  preserve_uids : int list;
  preserve_gids : int list;
}

let default_config =
  {
    map_names = true;
    map_ids = true;
    map_ips = true;
    omit = false;
    preserve_names = [ "CVS"; ".inbox"; ".pinerc"; ".cshrc"; ".login"; "lock"; "mbox"; "inbox" ];
    preserve_suffixes = [ ".lock"; ",v" ];
    preserve_uids = [ 0; 1 ];
    preserve_gids = [ 0; 1 ];
  }

let omit_config =
  {
    map_names = false;
    map_ids = false;
    map_ips = false;
    omit = true;
    preserve_names = [];
    preserve_suffixes = [];
    preserve_uids = [];
    preserve_gids = [];
  }

type t = {
  config : config;
  rng : Prng.t;
  stems : (string, string) Hashtbl.t;
  suffixes : (string, string) Hashtbl.t;
  uids : (int, int) Hashtbl.t;
  gids : (int, int) Hashtbl.t;
  ips : (Ip_addr.t, Ip_addr.t) Hashtbl.t;
  used_tokens : (string, unit) Hashtbl.t;
  used_ids : (int, unit) Hashtbl.t;
  used_ips : (Ip_addr.t, unit) Hashtbl.t;
  c_leaks : Obs.counter;
      (* sensitive values passed through raw because mapping for their
         kind is disabled (preserve-list hits are deliberate, not leaks) *)
  c_map_name : Obs.counter;
  c_map_suffix : Obs.counter;
  c_map_uid : Obs.counter;
  c_map_gid : Obs.counter;
  c_map_ip : Obs.counter;
}

let create ?obs ?(seed = 0x6e667374726163L) config =
  (* The leak count gates anonymization safety checks, so the default
     registry is a private enabled one. *)
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let mapping kind =
    Obs.counter obs ~labels:[ ("kind", kind) ] ~help:"fresh anonymization mappings by kind"
      "anon.mappings"
  in
  {
    config;
    rng = Prng.create seed;
    stems = Hashtbl.create 4096;
    suffixes = Hashtbl.create 64;
    uids = Hashtbl.create 256;
    gids = Hashtbl.create 64;
    ips = Hashtbl.create 64;
    used_tokens = Hashtbl.create 4096;
    used_ids = Hashtbl.create 256;
    used_ips = Hashtbl.create 64;
    c_leaks = Obs.counter obs ~help:"sensitive values passed through unmapped" "anon.leaks";
    c_map_name = mapping "name";
    c_map_suffix = mapping "suffix";
    c_map_uid = mapping "uid";
    c_map_gid = mapping "gid";
    c_map_ip = mapping "ip";
  }

let leaked t v =
  Obs.inc t.c_leaks;
  v

let base36 = "0123456789abcdefghijklmnopqrstuvwxyz"

let fresh_token t ~prefix ~len =
  let rec draw () =
    let buf = Bytes.create len in
    for i = 0 to len - 1 do
      Bytes.set buf i base36.[Prng.int t.rng 36]
    done;
    let tok = prefix ^ Bytes.to_string buf in
    if Hashtbl.mem t.used_tokens tok then draw ()
    else begin
      Hashtbl.add t.used_tokens tok ();
      tok
    end
  in
  draw ()

let map_via tbl make key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add tbl key v;
      v

let anon_stem t stem =
  map_via t.stems
    (fun () ->
      Obs.inc t.c_map_name;
      fresh_token t ~prefix:"a" ~len:5)
    stem

let anon_suffix t suffix =
  if List.mem suffix t.config.preserve_suffixes then suffix
  else
    map_via t.suffixes
      (fun () ->
        Obs.inc t.c_map_suffix;
        "." ^ fresh_token t ~prefix:"s" ~len:2)
      suffix

(* Split [name] into (core, reattach): reattach rebuilds the special
   affixes around the anonymized core. *)
let rec name t n =
  if t.config.omit then "x"
  else if n = "" || n = "." || n = ".." then n
  else if List.mem n t.config.preserve_names then n
  else if not t.config.map_names then leaked t n
  else begin
    let len = String.length n in
    (* Emacs autosave: #core# *)
    if len > 2 && n.[0] = '#' && n.[len - 1] = '#' then
      "#" ^ name t (String.sub n 1 (len - 2)) ^ "#"
    else if len > 1 && n.[len - 1] = '~' then (* backup: core~ *)
      name t (String.sub n 0 (len - 1)) ^ "~"
    else if len > 2 && String.sub n (len - 2) 2 = ",v" then (* RCS: core,v *)
      name t (String.sub n 0 (len - 2)) ^ ",v"
    else if n.[0] = '.' then
      (* Dotfile: keep the dot (it is structural), anonymize the rest. *)
      "." ^ name t (String.sub n 1 (len - 1))
    else begin
      (* Split stem/suffix at the last dot. *)
      match String.rindex_opt n '.' with
      | Some i when i > 0 && i < len - 1 ->
          let stem = String.sub n 0 i in
          let suffix = String.sub n i (len - i) in
          anon_stem t stem ^ anon_suffix t suffix
      | Some _ | None -> anon_stem t n
    end
  end

let uid t u =
  if t.config.omit then 0
  else if List.mem u t.config.preserve_uids then u
  else if not t.config.map_ids then leaked t u
  else
    map_via t.uids
      (fun () ->
        Obs.inc t.c_map_uid;
        let rec draw () =
          let v = 10000 + Prng.int t.rng 90000 in
          if Hashtbl.mem t.used_ids v then draw ()
          else begin
            Hashtbl.add t.used_ids v ();
            v
          end
        in
        draw ())
      u

let gid t g =
  if t.config.omit then 0
  else if List.mem g t.config.preserve_gids then g
  else if not t.config.map_ids then leaked t g
  else
    map_via t.gids
      (fun () ->
        Obs.inc t.c_map_gid;
        let rec draw () =
          let v = 10000 + Prng.int t.rng 90000 in
          if Hashtbl.mem t.used_ids v then draw ()
          else begin
            Hashtbl.add t.used_ids v ();
            v
          end
        in
        draw ())
      g

let ip t addr =
  if t.config.omit then Ip_addr.v 0 0 0 0
  else if not t.config.map_ips then leaked t addr
  else
    map_via t.ips
      (fun () ->
        Obs.inc t.c_map_ip;
        let rec draw () =
          let v = Ip_addr.v 10 (Prng.int t.rng 256) (Prng.int t.rng 256) (1 + Prng.int t.rng 254) in
          if Hashtbl.mem t.used_ips v then draw ()
          else begin
            Hashtbl.add t.used_ips v ();
            v
          end
        in
        draw ())
      addr

let call t (c : Ops.call) : Ops.call =
  match c with
  | Null | Getattr _ | Setattr _ | Access _ | Readlink _ | Read _ | Write _ | Readdir _
  | Readdirplus _ | Statfs _ | Fsinfo _ | Pathconf _ | Commit _ ->
      c
  | Lookup { dir; name = n } -> Lookup { dir; name = name t n }
  | Create c' -> Create { c' with name = name t c'.name }
  | Mkdir m -> Mkdir { m with name = name t m.name }
  | Symlink s ->
      (* Symlink targets are paths: anonymize each component. *)
      let target =
        String.concat "/" (List.map (name t) (String.split_on_char '/' s.target))
      in
      Symlink { s with name = name t s.name; target }
  | Mknod m -> Mknod { m with name = name t m.name }
  | Remove r -> Remove { r with name = name t r.name }
  | Rmdir r -> Rmdir { r with name = name t r.name }
  | Rename r -> Rename { r with from_name = name t r.from_name; to_name = name t r.to_name }
  | Link l -> Link { l with to_name = name t l.to_name }

let fattr t (a : Nt_nfs.Types.fattr) = { a with uid = uid t a.uid; gid = gid t a.gid }

let success t (s : Ops.success) : Ops.success =
  match s with
  | R_null | R_empty | R_access _ | R_statfs _ | R_fsinfo _ | R_pathconf _ -> s
  | R_attr a -> R_attr (fattr t a)
  | R_lookup l -> R_lookup { l with obj = Option.map (fattr t) l.obj; dir = Option.map (fattr t) l.dir }
  | R_readlink target ->
      R_readlink (String.concat "/" (List.map (name t) (String.split_on_char '/' target)))
  | R_read r -> R_read { r with attr = Option.map (fattr t) r.attr }
  | R_write w -> R_write { w with attr = Option.map (fattr t) w.attr }
  | R_create c -> R_create { c with attr = Option.map (fattr t) c.attr }
  | R_readdir r ->
      R_readdir
        {
          r with
          entries =
            List.map
              (fun (e : Ops.dir_entry) -> { e with entry_name = name t e.entry_name })
              r.entries;
        }

let record t (r : Record.t) : Record.t =
  {
    r with
    client = ip t r.client;
    server = ip t r.server;
    uid = uid t r.uid;
    gid = gid t r.gid;
    call = call t r.call;
    result = Option.map (Result.map (success t)) r.result;
  }

let mapped_names t = Hashtbl.length t.stems
let leaks t = Obs.value t.c_leaks
