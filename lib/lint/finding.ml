type t = { rule : Rule.t; index : int; time : float; detail : string }

let v rule ~index ~time detail = { rule; index; time; detail }

let to_string f =
  let where =
    if f.index < 0 then "stats"
    else if Float.is_nan f.time then Printf.sprintf "#%d" f.index
    else Printf.sprintf "#%d @%.6f" f.index f.time
  in
  Printf.sprintf "%s %s %s: %s"
    (Rule.severity_to_string f.rule.Rule.severity)
    f.rule.Rule.id where f.detail

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let time = if Float.is_nan f.time then "null" else Printf.sprintf "%.6f" f.time in
  Printf.sprintf
    {|{"rule":"%s","family":"%s","severity":"%s","index":%d,"time":%s,"detail":"%s"}|}
    (json_escape f.rule.Rule.id)
    (Rule.family_to_string f.rule.Rule.family)
    (Rule.severity_to_string f.rule.Rule.severity)
    f.index time (json_escape f.detail)

let list_to_json fs = "[" ^ String.concat "," (List.map to_json fs) ^ "]"
