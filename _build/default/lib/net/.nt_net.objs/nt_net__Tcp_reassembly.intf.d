lib/net/tcp_reassembly.mli: Ip_addr
