lib/analysis/seqmetric.ml: Array Io_log List Runs
