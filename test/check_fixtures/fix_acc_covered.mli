(* Clean twin of Fix_acc: same shape, but Fix_testreg registers its
   merge through prop_merge_laws and its footprint through
   prop_footprint, so merge-law-missing and footprint-missing must both
   stay silent. *)

type t

val empty : t
val add : t -> int -> t
val merge : t -> t -> t
val footprint : t -> int * int
