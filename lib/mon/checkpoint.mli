(** Versioned, atomic checkpoints of monitor state.

    Format ["ntmon-ckpt/1"]: a line-oriented text document — header,
    [saved_at] wall clock, optional feed resume offset, the service's
    monotone counters, then the serialized ring — finished with an MD5
    digest of everything above it. Writes go to [path ^ ".tmp"] and
    are fsynced before an atomic [rename], so a crash mid-write leaves
    the previous checkpoint intact; a torn or tampered file fails the
    digest and {!load} returns [Error] rather than restoring garbage.
    Restore-on-start therefore has exactly two outcomes: the full
    saved state, or a clean fresh start with the failure counted. *)

type t = {
  saved_at : float;  (** wall clock at save *)
  feed_pos : int64 option;  (** feed resume offset, when the feed has one *)
  counters : (string * int) list;  (** service counters to re-add on restore *)
  ring : string list;  (** {!Ring.to_lines} payload *)
  pending : string list;  (** {!Outstanding.to_lines} payload *)
}

val version : string
(** ["ntmon-ckpt/1"] — bump when the payload shape changes; [load]
    refuses other versions. *)

val save : path:string -> t -> (unit, string) result
val load : path:string -> (t, string) result
