(** The ntcheck engine: load a build tree's typedtrees, run every
    enabled rule family, return sorted findings plus the bookkeeping the
    CLI and tests assert on. *)

type config = {
  roots : string list;
      (** compilation units whose task closures define domain-safety
          reachability (suffix-matched, e.g. Nt_par__Passes) *)
  lib_prefixes : string list;
      (** dotted-name prefixes of units under hygiene + merge-law scope *)
  decode_prefixes : string list;
      (** dotted-name prefixes of units under decode-purity scope *)
  hot_prefixes : string list;
      (** dotted-name prefixes whose observe/observe_shard/add (and, for
          the poly-compare rule, merge) bindings seed the alloc-hot set;
          decode* bindings in decode scope seed it too *)
  acc_prefixes : string list;
      (** dotted-name prefixes whose observe/observe_shard/add bindings
          seed the bound-hot set for accumulator-boundedness *)
  test_units : string list;
      (** units scanned for merge-law and footprint property registrations *)
  merge_prop_fn : string;
      (** name of the registration function the merge-law rule looks for *)
  footprint_prop_fn : string;
      (** name of the registration function the footprint rule looks for *)
  excludes : string list;  (** path substrings to skip while walking *)
  exn_roots : string list;
      (** display-name patterns ("Nt_tbin.Decoder.*" or exact
          "Nt_core.Pipeline.analyze_stream") of exported bindings the
          exn-escape rule treats as counted-never-raised entry points *)
  codecs : (string * string list * string) list;
      (** (type unit, variant type names, codec unit) triples the
          codec-arm-missing rule checks for full encode/decode dispatch *)
  formats_unit : string;
      (** compilation unit whose top-level string bindings are the
          version-tag registry for the format-drift rules *)
  enabled_only : string list option;
  disabled : string list;
  max_per_rule : int;  (** finding cap per rule; excess counts as overflow *)
}

val default_config : config
(** The shipped tree's configuration: roots in nt_par, Nt_ scopes,
    decode scope over xdr/rpc/nfs/net, Test_par registrations, and
    check_fixtures excluded. *)

type t

val run : config -> string -> t
(** [run config build_dir] scans every .cmt/.cmti under [build_dir]. *)

val findings : t -> Finding.t list
val allowed : t -> int
(** Violations suppressed by allowlist attributes. *)

val allowed_by_rule : t -> (string * int) list
(** Per-rule-id suppression counts, sorted by id — how often each
    escape hatch ([@@nt.alloc_ok], [@@nt.bounded], ...) actually bit. *)

val overflow : t -> int
(** Findings dropped past the per-rule cap. *)

val units_scanned : t -> int
val reachable : t -> string list
val merge_required : t -> string list
val merge_covered : t -> string list

val exn_report : t -> (string * string * int * string list) list
(** Per-function may-raise rows [(display, file, line, exns)] for every
    binding reachable from an exn root; [["*"]] marks an unknown (Top)
    set.  Feeds the CI artifact. *)

val load_errors : t -> (string * string) list
val severity_count : t -> Rule.severity -> int
val rule_count : t -> string -> int
