(* ntcheck engine tests over the check_fixtures mini-project: every
   rule fires exactly once on its seeded violation, stays silent on the
   clean twin next to it, and the allowlist attribute suppresses
   without hiding. *)

module Engine = Nt_check.Engine
module Rule = Nt_check.Rule
module Finding = Nt_check.Finding

let fixture_config =
  {
    Engine.default_config with
    roots = [ "Fix_driver"; "Fix_ghost" ];
    (* Fix_ghost exists nowhere: config-drift's seeded violation *)
    lib_prefixes = [ "Fix_" ];
    decode_prefixes = [ "Fix_decode"; "Fix_tbin" ];
    hot_prefixes = [ "Fix_hot" ];
    acc_prefixes = [ "Fix_bound" ];
    test_units = [ "Fix_testreg" ];
    excludes = [];
  }

(* dune runtest runs with cwd _build/default/test; dune exec from the
   workspace root does not, so fall back to the build-tree path. *)
let fixture_dir =
  List.find Sys.file_exists [ "check_fixtures"; "_build/default/test/check_fixtures" ]

let run ?(config = fixture_config) () = Engine.run config fixture_dir

let test_loads_cleanly () =
  let t = run () in
  Alcotest.(check (list (pair string string))) "no unreadable cmts" [] (Engine.load_errors t);
  Alcotest.(check int) "all fixture units scanned" 19 (Engine.units_scanned t)

(* decode-raise is seeded twice: once in fix_decode and once in the
   tbin-shaped fixture; every other rule fires on exactly one line. *)
let test_each_rule_fires_exactly_once () =
  let t = run () in
  List.iter
    (fun (r : Rule.t) ->
      let expect = if r.Rule.id = "decode-raise" then 2 else 1 in
      Alcotest.(check int)
        (Printf.sprintf "%s fires exactly %d time(s)" r.Rule.id expect)
        expect (Engine.rule_count t r.Rule.id))
    Rule.all;
  Alcotest.(check int) "one finding per seeded violation, nothing else"
    (List.length Rule.all + 1)
    (List.length (Engine.findings t))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_clean_twins_stay_silent () =
  let t = run () in
  List.iter
    (fun (f : Finding.t) ->
      List.iter
        (fun twin ->
          if contains f.Finding.file twin then
            Alcotest.failf "finding %s in clean twin %s" f.Finding.rule.Rule.id f.Finding.file)
        [
          "fix_unreachable"; "fix_acc_covered"; "fix_driver"; "fix_testreg"; "fix_hot_clean";
          "fix_hot_ok"; "fix_bound_clean"; "fix_bound_ok"; "fix_tbin_clean";
        ])
    (Engine.findings t)

let test_suppression_counts () =
  let t = run () in
  Alcotest.(check int) "allowlisted violations counted, not reported" 4 (Engine.allowed t);
  Alcotest.(check (list (pair string int)))
    "one suppression per allowlist attribute, under the right rule"
    [
      ("alloc-hot-string", 1); ("bound-list", 1); ("bound-table", 1); ("dom-top-mutable", 1);
    ]
    (Engine.allowed_by_rule t)

let test_reachability_set () =
  let t = run () in
  Alcotest.(check (list string)) "driver plus its import, nothing more"
    [ "Fix_driver"; "Fix_mutable" ] (Engine.reachable t)

let test_merge_bookkeeping () =
  let t = run () in
  Alcotest.(check (list string)) "both accumulators required"
    [ "Fix_acc"; "Fix_acc_covered" ]
    (List.sort compare (Engine.merge_required t));
  Alcotest.(check (list string)) "registration credited" [ "Fix_acc_covered" ]
    (Engine.merge_covered t)

let test_per_rule_cap () =
  let t = run ~config:{ fixture_config with Engine.max_per_rule = 0 } () in
  Alcotest.(check int) "no findings under a zero cap" 0 (List.length (Engine.findings t));
  Alcotest.(check int) "every violation counted as overflow"
    (List.length Rule.all + 1)
    (Engine.overflow t);
  Alcotest.(check int) "suppression is not capped" 4 (Engine.allowed t)

let test_disabled_rule () =
  let t = run ~config:{ fixture_config with Engine.disabled = [ "lib-stdout" ] } () in
  Alcotest.(check int) "disabled rule silent" 0 (Engine.rule_count t "lib-stdout");
  Alcotest.(check int) "everything else unaffected" (List.length Rule.all)
    (List.length (Engine.findings t))

let test_enabled_only () =
  let t = run ~config:{ fixture_config with Engine.enabled_only = Some [ "obj-magic" ] } () in
  Alcotest.(check int) "only the enabled rule" 1 (List.length (Engine.findings t));
  Alcotest.(check int) "and it is obj-magic" 1 (Engine.rule_count t "obj-magic")

let test_missing_test_unit_fails_loudly () =
  let t =
    run
      ~config:
        { fixture_config with Engine.roots = [ "Fix_driver" ]; test_units = [ "Fix_nope" ] }
      ()
  in
  Alcotest.(check int) "config-drift for the dead test unit" 1 (Engine.rule_count t "config-drift");
  Alcotest.(check int) "every merge now uncovered" 2 (Engine.rule_count t "merge-law-missing")

let test_findings_are_sorted_and_json_escapes () =
  let t = run () in
  let fs = Engine.findings t in
  Alcotest.(check bool) "sorted by location" true
    (List.sort Finding.compare fs = fs);
  let json = Finding.list_to_json fs in
  Alcotest.(check bool) "json array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']')

let () =
  Alcotest.run "nt_check"
    [
      ( "fixtures",
        [
          Alcotest.test_case "fixture cmts load" `Quick test_loads_cleanly;
          Alcotest.test_case "each rule fires exactly once" `Quick
            test_each_rule_fires_exactly_once;
          Alcotest.test_case "clean twins stay silent" `Quick test_clean_twins_stay_silent;
          Alcotest.test_case "allowlist suppresses and counts" `Quick test_suppression_counts;
          Alcotest.test_case "reachability is driver + import" `Quick test_reachability_set;
          Alcotest.test_case "merge requirement and coverage" `Quick test_merge_bookkeeping;
        ] );
      ( "engine",
        [
          Alcotest.test_case "per-rule cap overflows" `Quick test_per_rule_cap;
          Alcotest.test_case "--disable silences a rule" `Quick test_disabled_rule;
          Alcotest.test_case "--enable restricts to a rule" `Quick test_enabled_only;
          Alcotest.test_case "dead test unit fails loudly" `Quick
            test_missing_test_unit_fails_loudly;
          Alcotest.test_case "findings sorted, json well-formed" `Quick
            test_findings_are_sorted_and_json_escapes;
        ] );
    ]
