lib/analysis/hourly.ml: Hashtbl List Nt_nfs Nt_trace Nt_util
