lib/analysis/names.mli: Nt_trace
