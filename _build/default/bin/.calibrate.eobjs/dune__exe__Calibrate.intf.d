bin/calibrate.mli:
