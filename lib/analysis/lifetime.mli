(** Create-based block lifetime analysis (§5.2, Table 4, Figure 3).

    Follows Roselli's two-phase method as the paper applies it: during
    Phase 1 both block births and deaths are recorded; during Phase 2
    (the end margin) only deaths of Phase-1-born blocks are recorded.
    Death records whose lifespan exceeds the Phase 2 length are dropped
    to remove sampling bias; blocks still alive at the end are the
    "end surplus".

    Births divide into actual data writes vs file extension (blocks
    materialised by a write past EOF, including the skipped-over
    blocks, which the paper notes mildly exaggerates extensions).
    Deaths divide into overwrite, truncate and file deletion. Blocks
    that already existed before Phase 1 are tracked as live but
    uncountable, exactly as a create-based analysis must. *)

type config = {
  phase1_start : float;
  phase1_len : float;  (** paper: 24 h *)
  phase2_len : float;  (** paper: 24 h end margin *)
  block : int;  (** 8192 *)
}

val config : phase1_start:float -> config
(** 24 h + 24 h at 8 KB, the paper's parameters. *)

type t

val create : config -> t

val observe : t -> Nt_trace.Record.t -> unit
(** Records must arrive in time order (the pipeline guarantees it). *)

val create_shard : config -> t
(** An accumulator for a non-initial trace shard. It cannot assume an
    unknown (dir, name) binding is unbound or that a handle's block
    state is known, so it processes locally only what is provably
    shard-local — files created inside the shard ("grounded" handles)
    and bindings it has seen — and journals everything else (deferred
    records plus every applied binding transition) for {!merge} to
    replay. A deferred record touching a grounded file freezes that
    file so replay happens in true time order. *)

val merge : t -> t -> t
(** [merge a b] folds shard [b] (the next time range) into root/merged
    accumulator [a] and returns [a]; [b] must not be used afterwards.
    Absorbs [b]'s file states, then replays [b]'s journal oldest-first
    against [a] — deferred records run with exactly the bindings and
    block states the sequential pass had at that point. Left folds in
    shard order reproduce the sequential result exactly, provided the
    server never reuses a file handle within the trace (a successful
    CREATE's reply handle is taken as fresh); violations are detected
    and counted, see {!ground_conflicts}. *)

val ground_conflicts : t -> int
(** Number of merge-detected handle collisions (a shard grounded a
    handle some earlier shard already had state for). Zero when the
    fresh-create assumption holds, as it does for the simulated
    server. *)

type result = {
  births : int;
  births_write_pct : float;
  births_extension_pct : float;
  deaths : int;  (** after the sampling-bias filter *)
  deaths_overwrite_pct : float;
  deaths_truncate_pct : float;
  deaths_deletion_pct : float;
  end_surplus : int;
  end_surplus_pct : float;  (** of births *)
  lifetime_cdf : (float * float) list;  (** (seconds, cumulative fraction) *)
}

val result : t -> result

val cdf_at : result -> float -> float
(** Cumulative fraction of deaths with lifetime <= the given seconds. *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}): tracked
    entries and an approximate heap-words estimate. *)
