(* Seeded codec-drift violations: [Beta] has an encode arm but no
   decode arm (codec-arm-missing), [forked_tag] version-forks a
   registered tag (format-literal-drift) and [rogue_tag] names a format
   the registry has never heard of (format-unregistered). *)

type op = Alpha | Beta

let encode = function Alpha -> 'a' | Beta -> 'b'
let decode = function 'a' -> Some Alpha | _ -> None
let forked_tag = "fixfmt/2"
let rogue_tag = "fixrogue/1"
