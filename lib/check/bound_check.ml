(* Accumulator-boundedness rules.  An accumulator module fed from the
   per-record path (bound-hot bindings: observe / observe_shard / add
   reachable code in the analysis, lint and mon trees) must not grow
   without a declared discipline: every growth site needs either
   eviction evidence in the same module or a counted annotation
   ([@@nt.bounded "cap"] when a cap/eviction keeps it finite,
   [@@nt.unbounded "reason"] when unbounded growth is the documented
   contract, e.g. an append-only journal replayed by merge).

   Evidence is deliberately coarse — class-granular for hash tables
   (any Hashtbl.remove/reset/clear/filter_inplace in the module pairs
   every stdlib-Hashtbl growth site; same per functor instance) and
   label-granular for container fields (any non-growing assignment to
   [t.f] pairs every [t.f <- x :: t.f]).  Coarse pairing trades
   precision for zero false negatives on the "no eviction anywhere"
   case, which is the bug class this family exists to catch. *)

let evict_fns = [ "remove"; "reset"; "clear"; "filter_inplace" ]
let grow_fns = [ "add"; "replace" ]
let append_fns = [ "add"; "union"; "append"; "@" ]

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with Tpat_var (id, _) -> Some (Ident.name id) | _ -> None

let class_of_path p =
  match Syntax.norm_path p with
  | n -> (
      match String.rindex_opt n '.' with
      | Some i -> Some (String.sub n 0 i, String.sub n (i + 1) (String.length n - i - 1))
      | None -> None)

(* Names of local [module T = Hashtbl.Make (...)] instances: calls
   through them are hash-table traffic just like stdlib Hashtbl. *)
let functor_instances (str : Typedtree.structure) =
  let rec head (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_apply (f, _, _) -> head f
    | Tmod_constraint (me, _, _, _) -> head me
    | Tmod_ident (p, _) -> Some (Syntax.norm_name (Path.name p))
    | _ -> None
  in
  List.filter_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_module mb -> (
          match (mb.mb_id, mb.mb_expr.mod_desc) with
          | Some id, Tmod_apply _ when head mb.mb_expr = Some "Hashtbl.Make" ->
              Some (Ident.name id)
          | _ -> None)
      | _ -> None)
    str.str_items

let table_class instances cls = cls = "Hashtbl" || List.mem cls instances

(* Does [e] mention field [lbl] (or dereference ref ident [lbl] when
   [is_ref])?  Growth is self-appending: the old value feeds the new. *)
let mentions ~is_ref ~lbl (e : Typedtree.expression) =
  let found = ref false in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_field (_, _, ld) when (not is_ref) && ld.Types.lbl_name = lbl -> found := true
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some arg) ])
      when is_ref && Syntax.norm_path p = "!" -> (
        match arg.Typedtree.exp_desc with
        | Texp_ident (Path.Pident id, _, _) when Ident.name id = lbl -> found := true
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* Is the top of [rhs] an appending form: a cons cell, list append, or
   a Set/Map-style [X.add] / [X.union] returning the grown value? *)
let rec appending (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_construct (_, cd, _) when cd.Types.cstr_name = "::" -> true
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      let n = Syntax.norm_path p in
      n = "@"
      || match class_of_path p with Some (_, fn) -> List.mem fn append_fns | None -> false)
  | Texp_ifthenelse (_, t, Some f) -> appending t || appending f
  | Texp_ifthenelse (_, t, None) -> appending t
  | Texp_sequence (_, e) | Texp_let (_, _, e) -> appending e
  | Texp_match (_, cases, _) ->
      List.exists (fun (c : _ Typedtree.case) -> appending c.Typedtree.c_rhs) cases
  | _ -> false

(* Module-wide evidence scan: which hash-table classes see eviction
   calls, and which mutable labels / refs see a non-growing (resetting)
   assignment anywhere in the module. *)
type evidence = { evict_classes : string list ref; reset_labels : string list ref }

let scan_evidence instances (str : Typedtree.structure) =
  let ev = { evict_classes = ref []; reset_labels = ref [] } in
  let note r x = if not (List.mem x !r) then r := x :: !r in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        (match class_of_path p with
        | Some (cls, fn) when table_class instances cls && List.mem fn evict_fns ->
            note ev.evict_classes cls
        | _ -> ());
        match (Syntax.norm_path p, args) with
        | ":=", [ (_, Some { Typedtree.exp_desc = Texp_ident (Path.Pident id, _, _); _ });
                  (_, Some rhs) ]
          when not (appending rhs && mentions ~is_ref:true ~lbl:(Ident.name id) rhs) ->
            note ev.reset_labels (Ident.name id)
        | _ -> ())
    | Texp_setfield (_, _, ld, rhs) ->
        let lbl = ld.Types.lbl_name in
        if not (appending rhs && mentions ~is_ref:false ~lbl rhs) then
          note ev.reset_labels lbl
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  ev

let scan_binding (sink : Finding.sink) ~allows ~instances ~(ev : evidence) ~fn_name
    (root : Typedtree.expression) =
  let report rule loc detail =
    if Syntax.allowed allows rule then sink.Finding.allow rule else sink.Finding.emit rule loc detail
  in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        (match class_of_path p with
        | Some (cls, fn)
          when table_class instances cls && List.mem fn grow_fns
               && not (List.mem cls !(ev.evict_classes)) ->
            report Rule.bound_table e.exp_loc
              (Printf.sprintf
                 "%s.%s in hot %s with no %s eviction in this module (cap it or declare \
                  [@@nt.bounded]/[@@nt.unbounded])"
                 cls fn fn_name cls)
        | _ -> ());
        match (Syntax.norm_path p, args) with
        | ":=", [ (_, Some { Typedtree.exp_desc = Texp_ident (Path.Pident id, _, _); _ });
                  (_, Some rhs) ]
          when appending rhs
               && mentions ~is_ref:true ~lbl:(Ident.name id) rhs
               && not (List.mem (Ident.name id) !(ev.reset_labels)) ->
            report Rule.bound_list e.exp_loc
              (Printf.sprintf
                 "%s grows onto itself in hot %s with no reset in this module (cap it or \
                  declare [@@nt.bounded]/[@@nt.unbounded])"
                 (Ident.name id) fn_name)
        | _ -> ())
    | Texp_setfield (_, _, ld, rhs) ->
        let lbl = ld.Types.lbl_name in
        if
          appending rhs
          && mentions ~is_ref:false ~lbl rhs
          && not (List.mem lbl !(ev.reset_labels))
        then
          report Rule.bound_list e.exp_loc
            (Printf.sprintf
               "field %s grows onto itself in hot %s with no reset in this module (cap it \
                or declare [@@nt.bounded]/[@@nt.unbounded])"
               lbl fn_name)
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root

let check (sink : Finding.sink) ~(hot : Hot.t) (u : Loader.unit_info) =
  match u.Loader.payload with
  | Loader.Intf _ -> ()
  | Loader.Impl str ->
      let instances = functor_instances str in
      let ev = scan_evidence instances str in
      List.iter
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match binding_name vb with
                  | Some fn when Hot.mem hot ~unit_name:u.Loader.name ~fn ->
                      scan_binding sink
                        ~allows:(Syntax.allows vb.vb_attributes)
                        ~instances ~ev ~fn_name:fn vb.vb_expr
                  | _ -> ())
                vbs
          | _ -> ())
        str.str_items
