(** The sharded map-merge driver.

    An analysis pass is packaged as an accumulator factory pair plus
    [observe] and [merge]: shard 0 gets a root accumulator (it really
    does start the trace), every later shard gets a shard-mode one
    (which must not assume it saw the beginning), each runs over its
    slice on a pool domain, and the coordinator left-folds [merge] in
    shard order. The shard plan and the merge order are functions of
    the input alone, so results do not depend on the worker count.

    Observability: workers only measure — each shard task's wall time
    is folded into the coordinator's registry afterwards as a
    [par.pass.<name>] span ({!Nt_obs.Obs.span_record}; the registry is
    single-domain), merging is timed as [par.merge], and the driver
    exports [par.jobs] / [par.queue_depth] gauges and [par.tasks] /
    [par.shards] counters. With a [timeline], each shard task
    additionally appends its completed span into a worker-private
    {!Nt_obs.Timeline.buf} (one per task) that the coordinator absorbs
    in slice order at join — the trace gains one [par.pass.<name>]
    interval per shard on the executing domain's track, with no
    cross-domain mutation. *)

type 'a pass = {
  name : string;  (** span label: [par.pass.<name>] *)
  init : unit -> 'a;  (** root accumulator (shard 0) *)
  init_shard : unit -> 'a;  (** mid-trace accumulator (shards 1..) *)
  observe : 'a -> Nt_trace.Record.t -> unit;
  merge : 'a -> 'a -> 'a;
      (** [merge a b] with [b] the next time range; returns [a]. *)
}

type job = Job : 'a pass * ('a -> unit) -> job
(** A pass plus the continuation receiving its merged result, so
    heterogeneous passes can share one task batch. *)

val run_jobs :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  Pool.t ->
  records:Nt_trace.Record.t array ->
  slices:Shard.slice array ->
  job list ->
  unit
(** Run every (job, shard) pair on the pool — one batch, so a slow
    pass's shards interleave with a fast one's — then merge and invoke
    each continuation, in job order. The slice plan is validated with
    {!Shard.check} first. *)

val run_pass :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  Pool.t ->
  records:Nt_trace.Record.t array ->
  slices:Shard.slice array ->
  'a pass ->
  'a
(** [run_jobs] for a single pass, returning the merged accumulator. *)

val map_chunks :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  ?chunk:int ->
  Pool.t ->
  name:string ->
  ('a array -> 'b) ->
  'a array ->
  'b list
(** Fan a plain array computation (terminal analyses over
    {!Nt_analysis.Io_log.sorted_files}) across the pool in fixed-size
    chunks (default 512 items), returning chunk results in chunk
    order. The chunk size, like the shard plan, is independent of the
    worker count. *)
