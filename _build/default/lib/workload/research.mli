(** The EECS workload: a CS-department home-directory server (§3.1,
    §6.1.1).

    Mechanisms modelled, each traceable to a paper observation:

    - single-user workstations with large caches: reads are mostly
      absorbed client-side, so the server sees metadata validation
      (GETATTR/LOOKUP/ACCESS dominate; read/write op ratio 0.69) and a
      write-heavy data mix;
    - software development: edit/save cycles with [foo~] backups and
      [#foo#] autosaves, compiles that stat every source and rewrite
      [.o] files, linker temporaries that die in under a second, CVS
      reads of [,v] archives;
    - short-lived log/index files written frequently and unbuffered —
      the source of "most blocks die in less than one second";
    - browser caches kept in home directories (the paper's "somewhat
      perverse" central caching of web pages) with LRU eviction;
    - window-manager [Applet_*_Extern] files (≈10,000 deletions/day at
      full scale);
    - night-time cron batch jobs (builds, experiments, data processing)
      that create the off-peak load spikes and read large data files —
      and the weaker overall diurnal correlation;
    - a client population mixing NFSv2 and NFSv3, all over UDP. *)

type config = {
  users : int;
  seed : int64;
  scale_note : float;
  v2_fraction : float;  (** fraction of clients speaking NFSv2 *)
  edit_bursts_per_user_day : float;
  compiles_per_user_day : float;
  browse_sessions_per_user_day : float;
  applet_churn_per_user_day : float;  (** create+delete pairs *)
  log_writers_per_user : float;  (** long-running appenders per user *)
  cron_jobs_per_night : float;
  source_files_per_user : int;
}

val default_config : config
(** 40 users at ≈1/100 of EECS activity, calibrated against Table 2. *)

type t

val setup :
  config ->
  engine:Nt_sim.Engine.t ->
  server:Nt_sim.Server.t ->
  sink:(Nt_trace.Record.t -> unit) ->
  t

val schedule : t -> start:float -> stop:float -> unit
val compiles_run : t -> int
