exception Corrupt

type cursor = { s : string; mutable pos : int; limit : int }

let cursor ?(pos = 0) ?limit s =
  let limit = match limit with Some l -> l | None -> String.length s in
  { s; pos; limit }

let u8 c =
  if c.pos >= c.limit then raise Corrupt;
  let b = Char.code (String.unsafe_get c.s c.pos) in
  c.pos <- c.pos + 1;
  b

(* The loops below are written with [while]/[ref] rather than an inner
   [let rec] worker: the readers sit on the per-record decode path and
   an inner worker is a closure allocated per call. *)

(* [lsr]/[land] treat the int as its 63-bit unsigned pattern, so the
   loop terminates for negative inputs too (9 groups of 7 bits). *)
let write_uv buf v =
  let v = ref v in
  while !v land lnot 0x7F <> 0 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !v)

let read_uv c =
  let acc = ref 0 and shift = ref 0 and more = ref true in
  while !more do
    let b = u8 c in
    acc := !acc lor ((b land 0x7F) lsl !shift);
    if b land 0x80 = 0 then more := false
    else if !shift >= 56 then raise Corrupt (* 9 bytes exhaust 63 bits *)
    else shift := !shift + 7
  done;
  !acc

(* Zigzag on the 63-bit domain: [lsl] wraps, so [min_int] maps to -1
   and back without a special case. *)
let zz v = (v lsl 1) lxor (v asr 62)
let unzz z = (z lsr 1) lxor (-(z land 1))
let write_zz buf v = write_uv buf (zz v)
let read_zz c = unzz (read_uv c)

let write_uv64 buf v =
  let v = ref v in
  while not (Int64.equal (Int64.logand !v (Int64.lognot 0x7FL)) 0L) do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor Int64.to_int (Int64.logand !v 0x7FL)));
    v := Int64.shift_right_logical !v 7
  done;
  Buffer.add_char buf (Char.unsafe_chr (Int64.to_int !v))

let read_uv64 c =
  let acc = ref 0L and shift = ref 0 and more = ref true in
  while !more do
    let b = u8 c in
    acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (b land 0x7F)) !shift);
    if b land 0x80 = 0 then more := false
    else if !shift >= 63 then raise Corrupt (* 10 bytes exhaust 64 bits *)
    else shift := !shift + 7
  done;
  !acc
