module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Ip_addr = Nt_net.Ip_addr
module Obs = Nt_obs.Obs
module Footprint = Nt_obs.Footprint

type config = {
  anonymized : bool;
  anon_profile : Anon_check.profile;
  reorder_window : float;
  xid_window : float;
  max_tracked : int;
  max_findings_per_rule : int;
  enabled_only : string list option;
  disabled : string list;
}

let default_config =
  {
    anonymized = false;
    anon_profile = Anon_check.default;
    reorder_window = 0.010;
    xid_window = 120.0;
    max_tracked = 1_000_000;
    max_findings_per_rule = 100;
    enabled_only = None;
    disabled = [];
  }

let rule_enabled cfg (rule : Rule.t) =
  (match cfg.enabled_only with
  | None -> true
  | Some ids -> List.mem rule.Rule.id ids)
  && not (List.mem rule.Rule.id cfg.disabled)

type t = {
  cfg : config;
  mutable findings_rev : Finding.t list;
  counts : (string, int) Hashtbl.t;  (** rule id -> total findings *)
  mutable suppressed : int;
  mutable n_info : int;
  mutable n_warn : int;
  mutable n_error : int;
  mutable index : int;
  protocol : Protocol_check.t;
  (* Telemetry mirror: the semantic accessors below never read these,
     so the default registry is the disabled [Obs.null] and linting
     pays one dead branch per record when unobserved. *)
  c_records : Obs.counter;
  c_findings : (string, Obs.counter) Hashtbl.t;  (* rule id -> labeled counter *)
  c_suppressed : Obs.counter;
  c_evictions : Obs.counter;
  g_tracked : Obs.gauge;
  fp_pub : Footprint.pub;
}

let emit t (f : Finding.t) =
  if rule_enabled t.cfg f.Finding.rule then begin
    let id = f.Finding.rule.Rule.id in
    let n = Option.value (Hashtbl.find_opt t.counts id) ~default:0 in
    Hashtbl.replace t.counts id (n + 1);
    (match Hashtbl.find_opt t.c_findings id with Some c -> Obs.inc c | None -> ());
    if n < t.cfg.max_findings_per_rule then t.findings_rev <- f :: t.findings_rev
    else begin
      t.suppressed <- t.suppressed + 1;
      Obs.inc t.c_suppressed
    end;
    match f.Finding.rule.Rule.severity with
    | Rule.Info -> t.n_info <- t.n_info + 1
    | Rule.Warn -> t.n_warn <- t.n_warn + 1
    | Rule.Error -> t.n_error <- t.n_error + 1
  end
[@@nt.bounded "counts is keyed by the finite rule set; findings_rev is capped by max_findings_per_rule"]

let create ?(obs = Obs.null) cfg =
  let c_findings = Hashtbl.create 32 in
  List.iter
    (fun (rule : Rule.t) ->
      if rule_enabled cfg rule then
        Hashtbl.replace c_findings rule.Rule.id
          (Obs.counter obs ~labels:[ ("rule", rule.Rule.id) ] ~help:"lint findings by rule"
             "lint.findings"))
    Rule.all;
  let rec t =
    lazy
      {
        cfg;
        findings_rev = [];
        counts = Hashtbl.create 32;
        suppressed = 0;
        n_info = 0;
        n_warn = 0;
        n_error = 0;
        index = 0;
        protocol =
          Protocol_check.create
            {
              Protocol_check.reorder_window = cfg.reorder_window;
              xid_window = cfg.xid_window;
              max_tracked = cfg.max_tracked;
            }
            ~emit:(fun f -> emit (Lazy.force t) f);
        c_records = Obs.counter obs ~help:"records linted" "lint.records";
        c_findings;
        c_suppressed = Obs.counter obs ~help:"findings dropped by per-rule cap" "lint.suppressed";
        c_evictions =
          Obs.counter obs ~help:"lint state-table capacity evictions" "lint.evictions";
        g_tracked = Obs.gauge obs ~help:"live lint protocol-state entries" "lint.tracked";
        fp_pub = Footprint.publisher obs ~component:"lint";
      }
  in
  Lazy.force t

(* --- anonymization family --- *)

let path_components p = String.split_on_char '/' p

let names_of (r : Record.t) =
  let from_call =
    match r.Record.call with
    | Ops.Lookup { name; _ }
    | Ops.Create { name; _ }
    | Ops.Mkdir { name; _ }
    | Ops.Mknod { name; _ }
    | Ops.Remove { name; _ }
    | Ops.Rmdir { name; _ } ->
        [ name ]
    | Ops.Symlink { name; target; _ } -> name :: path_components target
    | Ops.Rename { from_name; to_name; _ } -> [ from_name; to_name ]
    | Ops.Link { to_name; _ } -> [ to_name ]
    | _ -> []
  in
  let from_result =
    match r.Record.result with
    | Some (Ok (Ops.R_readlink target)) -> path_components target
    | Some (Ok (Ops.R_readdir { entries; _ })) ->
        List.map (fun (e : Ops.dir_entry) -> e.Ops.entry_name) entries
    | _ -> []
  in
  from_call @ from_result

let fattrs_of (r : Record.t) =
  match r.Record.result with
  | Some (Ok (Ops.R_lookup { obj; dir; _ })) -> List.filter_map Fun.id [ obj; dir ]
  | _ -> Option.to_list (Record.post_fattr r)

let check_anon t ~index ~time (r : Record.t) =
  let p = t.cfg.anon_profile in
  let fire rule fmt = Printf.ksprintf (fun d -> emit t (Finding.v rule ~index ~time d)) fmt in
  List.iter
    (fun (role, addr) ->
      if not (Anon_check.check_ip addr) then
        fire Rule.raw_ip "%s address %s outside the 10/8 pool" role (Ip_addr.to_string addr))
    [ ("client", r.Record.client); ("server", r.Record.server) ];
  List.iter
    (fun (role, kind, v) ->
      let ok = match kind with `Uid -> Anon_check.check_uid p v | `Gid -> Anon_check.check_gid p v in
      if not ok then fire Rule.unmapped_id "%s %d neither preserved nor mapped" role v)
    ([ ("uid", `Uid, r.Record.uid); ("gid", `Gid, r.Record.gid) ]
    @ List.concat_map
        (fun (a : Types.fattr) -> [ ("attr uid", `Uid, a.Types.uid); ("attr gid", `Gid, a.Types.gid) ])
        (fattrs_of r));
  List.iter
    (fun name ->
      match Anon_check.check_name p name with
      | Anon_check.Name_ok -> ()
      | Anon_check.Dictionary w -> fire Rule.dictionary_word "%S contains %S" name w
      | Anon_check.Residue why -> fire Rule.name_residue "%S: %s" name why)
    (names_of r)

let observe t r =
  let index = t.index in
  t.index <- index + 1;
  Obs.inc t.c_records;
  Protocol_check.observe t.protocol ~index r;
  if t.cfg.anonymized then check_anon t ~index ~time:r.Record.time r

let observe_stats t stats = Hygiene_check.check ~emit:(emit t) stats

let run ?obs ?stats cfg records =
  let t = create ?obs cfg in
  Seq.iter (observe t) records;
  Option.iter (observe_stats t) stats;
  t

(* Reading results implies the stream is over: deferred protocol
   suspects still waiting out their reorder window get judged now.
   Also the sync point for state-size telemetry (delta against the
   counter's own value, so repeated settles don't double-count). *)
let footprint t =
  let tracked = Protocol_check.tracked t.protocol in
  let kept = Hashtbl.fold (fun _ n acc -> acc + n) t.counts 0 - t.suppressed in
  let kept = if kept < 0 then 0 else kept in
  Footprint.v ~cards:(tracked + kept) ~words:(32 + (tracked * 12) + (kept * 24))

let settle t =
  Protocol_check.finalize t.protocol;
  Obs.set t.g_tracked (float_of_int (Protocol_check.tracked t.protocol));
  Obs.add t.c_evictions (Protocol_check.evictions t.protocol - Obs.value t.c_evictions);
  Footprint.set t.fp_pub (footprint t)

let findings t =
  settle t;
  List.stable_sort
    (fun (a : Finding.t) (b : Finding.t) -> compare a.Finding.index b.Finding.index)
    (List.rev t.findings_rev)

let finding_count t (rule : Rule.t) =
  settle t;
  Option.value (Hashtbl.find_opt t.counts rule.Rule.id) ~default:0

let suppressed t =
  settle t;
  t.suppressed

let severity_count t sev =
  settle t;
  match sev with
  | Rule.Info -> t.n_info
  | Rule.Warn -> t.n_warn
  | Rule.Error -> t.n_error

let worst t =
  settle t;
  if t.n_error > 0 then Some Rule.Error
  else if t.n_warn > 0 then Some Rule.Warn
  else if t.n_info > 0 then Some Rule.Info
  else None

let records_seen t = t.index
let tracked t = Protocol_check.tracked t.protocol
