type t = { edges : float array; weights : float array }

let create ~edges =
  let ok = ref true in
  for i = 1 to Array.length edges - 1 do
    if edges.(i) <= edges.(i - 1) then ok := false
  done;
  assert !ok;
  { edges; weights = Array.make (Array.length edges + 1) 0. }

let log2_buckets ~lo ~hi =
  assert (lo > 0. && hi > lo);
  let rec collect acc v = if v > hi *. 1.0001 then List.rev acc else collect (v :: acc) (v *. 2.) in
  create ~edges:(Array.of_list (collect [] lo))

(* First bucket whose edge exceeds x; edges.(i) is the exclusive upper
   bound of bucket i.  Top-level so the per-sample path allocates no
   closure. *)
let rec search edges x lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if x >= edges.(mid) then search edges x (mid + 1) hi else search edges x lo mid

let bucket_of t x = search t.edges x 0 (Array.length t.edges)

let add_weighted t x w = t.weights.(bucket_of t x) <- t.weights.(bucket_of t x) +. w
let add t x = add_weighted t x 1.
let bucket_count t = Array.length t.weights
let edges t = t.edges
let weight t i = t.weights.(i)
let total_weight t = Array.fold_left ( +. ) 0. t.weights

let same_edges (a : float array) (b : float array) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) <> b.(i) then ok := false
  done;
  !ok

let merge a b =
  if not (same_edges a.edges b.edges) then invalid_arg "Histogram.merge: bucket edges differ";
  for i = 0 to Array.length a.weights - 1 do
    a.weights.(i) <- a.weights.(i) +. b.weights.(i)
  done;
  a

let cdf t =
  let total = total_weight t in
  let acc = ref 0. in
  let out = ref [] in
  for i = 0 to Array.length t.edges - 1 do
    acc := !acc +. t.weights.(i);
    let frac = if total = 0. then 0. else !acc /. total in
    out := (t.edges.(i), frac) :: !out
  done;
  List.rev !out

let footprint t =
  (* Fixed shape: two parallel float arrays, no per-observation state. *)
  let n = Array.length t.edges in
  Nt_obs.Footprint.v ~cards:n ~words:(8 + (2 * (n + 1)))
