test/test_util.ml: Alcotest Array Float Gen List Nt_util QCheck QCheck_alcotest String
