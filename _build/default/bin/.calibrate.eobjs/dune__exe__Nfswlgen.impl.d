bin/nfswlgen.ml: Arg Cmd Cmdliner Fun Nt_core Nt_net Nt_trace Nt_util Nt_workload Printf Term
