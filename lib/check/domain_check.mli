(** Domain-safety rules: no shared mutable state at module top level in
    units reachable from the parallel driver's task closures.  The
    caller decides reachability; [check] only inspects one unit. *)

val check : Finding.sink -> Loader.unit_info -> unit
