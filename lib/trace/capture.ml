module Frame = Nt_net.Frame
module Pcap = Nt_net.Pcap
module Tcp = Nt_net.Tcp_reassembly
module Rpc = Nt_rpc.Rpc_msg
module Rm = Nt_rpc.Record_mark
module Proc = Nt_nfs.Proc
module Ops = Nt_nfs.Ops
module Obs = Nt_obs.Obs

type stats = {
  frames : int;
  undecodable_frames : int;
  corrupt_frames : int;
  rpc_messages : int;
  rpc_errors : int;
  non_nfs : int;
  calls : int;
  replies : int;
  duplicate_calls : int;
  duplicate_replies : int;
  orphan_replies : int;
  lost_replies : int;
  tcp_gaps : int;
  salvaged_records : int;
  skipped_pcap_bytes : int;
  truncated_pcap_tails : int;
}

let stats_to_string s =
  Printf.sprintf
    "frames=%d undecodable=%d corrupt=%d rpc=%d rpc_errors=%d non_nfs=%d calls=%d replies=%d \
     dup_calls=%d dup_replies=%d orphan_replies=%d lost_replies=%d tcp_gaps=%d salvaged=%d \
     skipped_bytes=%d truncated_tails=%d"
    s.frames s.undecodable_frames s.corrupt_frames s.rpc_messages s.rpc_errors s.non_nfs s.calls
    s.replies s.duplicate_calls s.duplicate_replies s.orphan_replies s.lost_replies s.tcp_gaps
    s.salvaged_records s.skipped_pcap_bytes s.truncated_pcap_tails

type pending = {
  p_time : float;
  p_client : Nt_net.Ip_addr.t;
  p_server : Nt_net.Ip_addr.t;
  p_version : int;
  p_proc : Proc.t;
  p_uid : int;
  p_gid : int;
  p_call : Ops.call;
}

(* Calls are keyed by (client ip, xid): xids are per-client counters, so
   this pair is unique among outstanding requests. *)
module Key = struct
  type t = int * int

  let equal (a1, a2) (b1, b2) = a1 = b1 && a2 = b2
  let hash = Hashtbl.hash
end

module Pending_tbl = Hashtbl.Make (Key)

(* One RPC record-marking reassembler per TCP flow. *)
module Flow_tbl = Hashtbl.Make (struct
  type t = Tcp.flow

  let equal (a : Tcp.flow) (b : Tcp.flow) =
    a.src_ip = b.src_ip && a.src_port = b.src_port && a.dst_ip = b.dst_ip
    && a.dst_port = b.dst_port

  let hash = Hashtbl.hash
end)

type t = {
  pending : pending Pending_tbl.t;
  (* Recently answered (client, xid) pairs, so a retransmitted reply —
     or a retransmitted call whose reply already went by — is counted
     as a duplicate instead of an orphan or a fresh call. *)
  answered : float Pending_tbl.t;
  tcp : Tcp.t;
  rm : Rm.reassembler Flow_tbl.t;
  emit : Record.t -> unit;
  buffer : Record.t list ref option;
  pending_timeout : float;
  mutable last_sweep : float;
  (* Decode accounting lives on the obs registry (capture.* namespace,
     decode failures as one labeled counter); [finish] reads the
     counters back into [stats]. The pcap-salvage trio stays as plain
     ints aggregated from [Pcap.read_stats] — the reader registers
     those counters itself, so a registry shared with the reader (the
     normal wiring) is not double-counted. *)
  c_frames : Obs.counter;
  c_undecodable : Obs.counter;
  c_corrupt : Obs.counter;
  c_rpc_messages : Obs.counter;
  c_rpc_errors : Obs.counter;
  c_non_nfs : Obs.counter;
  c_calls : Obs.counter;
  c_replies : Obs.counter;
  c_duplicate_calls : Obs.counter;
  c_duplicate_replies : Obs.counter;
  c_orphan_replies : Obs.counter;
  c_lost_replies : Obs.counter;
  c_tcp_gaps : Obs.counter;
  mutable salvaged_records : int;
  mutable skipped_pcap_bytes : int;
  mutable truncated_pcap_tails : int;
}

let create ?obs ?(pending_timeout = 60.) ?emit () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let buffer, emit =
    match emit with
    | Some f -> (None, f)
    | None ->
        let buf = ref [] in
        (Some buf, fun r -> buf := r :: !buf)
  in
  let fail reason =
    Obs.counter obs ~labels:[ ("reason", reason) ] ~help:"frames/messages that failed to decode"
      "capture.decode_failure"
  in
  {
    pending = Pending_tbl.create 4096;
    answered = Pending_tbl.create 4096;
    tcp = Tcp.create ();
    rm = Flow_tbl.create 64;
    emit;
    buffer;
    pending_timeout;
    last_sweep = 0.;
    c_frames = Obs.counter obs ~help:"link frames presented" "capture.frames";
    c_undecodable = fail "undecodable-frame";
    c_corrupt = fail "corrupt-frame";
    c_rpc_messages = Obs.counter obs ~help:"complete RPC messages seen" "capture.rpc_messages";
    c_rpc_errors = fail "rpc-error";
    c_non_nfs = fail "non-nfs";
    c_calls = Obs.counter obs ~help:"distinct NFS calls decoded" "capture.calls";
    c_replies = Obs.counter obs ~help:"replies paired with their call" "capture.replies";
    c_duplicate_calls = Obs.counter obs ~help:"retransmitted calls" "capture.duplicate_calls";
    c_duplicate_replies =
      Obs.counter obs ~help:"retransmitted replies" "capture.duplicate_replies";
    c_orphan_replies =
      Obs.counter obs ~help:"replies whose call was never seen" "capture.orphan_replies";
    c_lost_replies =
      Obs.counter obs ~help:"calls whose reply never arrived" "capture.lost_replies";
    c_tcp_gaps = Obs.counter obs ~help:"TCP stream resynchronisations" "capture.tcp_gaps";
    salvaged_records = 0;
    skipped_pcap_bytes = 0;
    truncated_pcap_tails = 0;
  }

let lost_record (p : pending) =
  {
    Record.time = p.p_time;
    reply_time = None;
    client = p.p_client;
    server = p.p_server;
    version = p.p_version;
    xid = 0;
    uid = p.p_uid;
    gid = p.p_gid;
    call = p.p_call;
    result = None;
  }

let flush_expired t ~now =
  if now -. t.last_sweep >= t.pending_timeout /. 2. then begin
    t.last_sweep <- now;
    let expired =
      Pending_tbl.fold
        (fun key p acc -> if now -. p.p_time > t.pending_timeout then (key, p) :: acc else acc)
        t.pending []
    in
    List.iter
      (fun ((client, xid), p) ->
        Pending_tbl.remove t.pending (client, xid);
        Obs.inc t.c_lost_replies;
        t.emit { (lost_record p) with xid })
      expired;
    let stale =
      Pending_tbl.fold
        (fun key at acc -> if now -. at > t.pending_timeout then key :: acc else acc)
        t.answered []
    in
    List.iter (Pending_tbl.remove t.answered) stale
  end

let creds = function
  | Rpc.Auth_unix { uid; gid; _ } -> (uid, gid)
  | Rpc.Auth_null | Rpc.Auth_other _ -> (0, 0)

let decode_call_body ~version ~proc msg body_pos =
  let d = Nt_xdr.Decode.of_string ~pos:body_pos msg in
  if version = 2 then Nt_nfs.V2.decode_call ~proc d else Nt_nfs.V3.decode_call ~proc d

let decode_result_body ~version ~proc msg body_pos =
  let d = Nt_xdr.Decode.of_string ~pos:body_pos msg in
  if version = 2 then Nt_nfs.V2.decode_result ~proc d else Nt_nfs.V3.decode_result ~proc d

(* Handle one complete RPC message travelling from [src] to [dst]. *)
let handle_rpc t ~time ~src ~dst msg =
  Obs.inc t.c_rpc_messages;
  match Rpc.decode msg ~pos:0 ~len:(String.length msg) with
  | exception Nt_xdr.Decode.Error _ -> Obs.inc t.c_rpc_errors
  | Rpc.Call c, body_pos ->
      if c.prog <> Rpc.nfs_program then Obs.inc t.c_non_nfs
      else if Pending_tbl.mem t.pending (src, c.xid) || Pending_tbl.mem t.answered (src, c.xid)
      then
        (* A UDP client retransmitted an unanswered (or just-answered)
           call; the first arrival defines the record's call time. *)
        Obs.inc t.c_duplicate_calls
      else begin
        match Proc.of_number ~version:c.vers c.proc with
        | None -> Obs.inc t.c_rpc_errors
        | Some proc -> (
            match decode_call_body ~version:c.vers ~proc msg body_pos with
            | exception Nt_xdr.Decode.Error _ -> Obs.inc t.c_rpc_errors
            | exception Nt_nfs.V2.Unsupported _ -> Obs.inc t.c_rpc_errors
            | exception Nt_nfs.V3.Unsupported _ -> Obs.inc t.c_rpc_errors
            | call ->
                Obs.inc t.c_calls;
                let uid, gid = creds c.cred in
                Pending_tbl.replace t.pending (src, c.xid)
                  {
                    p_time = time;
                    p_client = src;
                    p_server = dst;
                    p_version = c.vers;
                    p_proc = proc;
                    p_uid = uid;
                    p_gid = gid;
                    p_call = call;
                  };
                flush_expired t ~now:time)
      end
  | Rpc.Reply r, body_pos -> (
      (* The reply travels server->client, so the pending key uses dst. *)
      match Pending_tbl.find_opt t.pending (dst, r.xid) with
      | None ->
          if Pending_tbl.mem t.answered (dst, r.xid) then
            Obs.inc t.c_duplicate_replies
          else Obs.inc t.c_orphan_replies
      | Some p ->
          Pending_tbl.remove t.pending (dst, r.xid);
          Pending_tbl.replace t.answered (dst, r.xid) time;
          let result =
            match r.status with
            | Rpc.Accepted Rpc.Success -> (
                match decode_result_body ~version:p.p_version ~proc:p.p_proc msg body_pos with
                | exception Nt_xdr.Decode.Error _ ->
                    Obs.inc t.c_rpc_errors;
                    None
                | exception Nt_nfs.V2.Unsupported _ ->
                    Obs.inc t.c_rpc_errors;
                    None
                | exception Nt_nfs.V3.Unsupported _ ->
                    Obs.inc t.c_rpc_errors;
                    None
                | res -> Some res)
            | Rpc.Accepted _ | Rpc.Denied _ -> Some (Error Nt_nfs.Types.Err_serverfault)
          in
          Obs.inc t.c_replies;
          t.emit
            {
              Record.time = p.p_time;
              reply_time = Some time;
              client = p.p_client;
              server = p.p_server;
              version = p.p_version;
              xid = r.xid;
              uid = p.p_uid;
              gid = p.p_gid;
              call = p.p_call;
              result;
            })

(* The "Never raises" contract of feed_packet: decoders signal malformed
   input with their own exceptions, but hostile bytes could in principle
   reach a stdlib primitive first. Anything escaping here is an input
   problem, not a caller problem, so it lands in rpc_errors. *)
let handle_rpc t ~time ~src ~dst msg =
  match handle_rpc t ~time ~src ~dst msg with
  | () -> ()
  | exception (Nt_xdr.Decode.Error _ | Invalid_argument _ | Failure _ | Not_found) ->
      Obs.inc t.c_rpc_errors

let rm_for t flow =
  match Flow_tbl.find_opt t.rm flow with
  | Some rm -> rm
  | None ->
      let rm = Rm.create_reassembler () in
      Flow_tbl.add t.rm flow rm;
      rm

let feed_packet t ~time data =
  Obs.inc t.c_frames;
  match Frame.decode data with
  | Error _ -> Obs.inc t.c_undecodable
  | Ok _ when not (Frame.header_checksum_ok data) ->
      (* Structurally sound but damaged in flight: never trust it. *)
      Obs.inc t.c_corrupt
  | Ok frame -> (
      match frame.transport with
      | Frame.Udp { payload; _ } ->
          if String.length payload >= 16 then
            handle_rpc t ~time ~src:frame.src_ip ~dst:frame.dst_ip payload
          else Obs.inc t.c_undecodable
      | Frame.Tcp { src_port; dst_port; seq; syn; payload; fin = _ } ->
          let flow =
            { Tcp.src_ip = frame.src_ip; src_port; dst_ip = frame.dst_ip; dst_port }
          in
          let events = Tcp.push t.tcp flow ~seq ~syn payload in
          List.iter
            (fun ev ->
              match ev with
              | Tcp.Data bytes ->
                  let rm = rm_for t flow in
                  let records = Rm.push rm bytes in
                  List.iter
                    (fun msg -> handle_rpc t ~time ~src:frame.src_ip ~dst:frame.dst_ip msg)
                    records
              | Tcp.Gap _ ->
                  Obs.inc t.c_tcp_gaps;
                  (* The stream resynchronised past a hole; any partial
                     RPC record is unrecoverable. Start clean. *)
                  Flow_tbl.replace t.rm flow (Rm.create_reassembler ()))
            events)

let feed_pcap t reader =
  Seq.iter (fun (p : Pcap.packet) -> feed_packet t ~time:p.time p.data) (Pcap.packets reader);
  let rs = Pcap.read_stats reader in
  t.salvaged_records <- t.salvaged_records + rs.salvaged;
  t.skipped_pcap_bytes <- t.skipped_pcap_bytes + rs.skipped_bytes;
  if rs.truncated_tail then t.truncated_pcap_tails <- t.truncated_pcap_tails + 1
[@@nt.raise_ok
  "propagates the reader's own Sys_error/Bad_format by contract: a caller-supplied pcap that \
   cannot be read is the caller's error to handle, not something to swallow mid-trace"]

let finish t =
  (* Whatever is still pending never got a reply. *)
  Pending_tbl.iter
    (fun (_, xid) p ->
      Obs.inc t.c_lost_replies;
      t.emit { (lost_record p) with xid })
    t.pending;
  Pending_tbl.reset t.pending;
  Pending_tbl.reset t.answered;
  let stats =
    {
      frames = Obs.value t.c_frames;
      undecodable_frames = Obs.value t.c_undecodable;
      corrupt_frames = Obs.value t.c_corrupt;
      rpc_messages = Obs.value t.c_rpc_messages;
      rpc_errors = Obs.value t.c_rpc_errors;
      non_nfs = Obs.value t.c_non_nfs;
      calls = Obs.value t.c_calls;
      replies = Obs.value t.c_replies;
      duplicate_calls = Obs.value t.c_duplicate_calls;
      duplicate_replies = Obs.value t.c_duplicate_replies;
      orphan_replies = Obs.value t.c_orphan_replies;
      lost_replies = Obs.value t.c_lost_replies;
      tcp_gaps = Tcp.gaps t.tcp;
      salvaged_records = t.salvaged_records;
      skipped_pcap_bytes = t.skipped_pcap_bytes;
      truncated_pcap_tails = t.truncated_pcap_tails;
    }
  in
  let records =
    match t.buffer with
    | None -> []
    | Some buf ->
        List.sort (fun (a : Record.t) (b : Record.t) -> Float.compare a.time b.time) !buf
  in
  (stats, records)
