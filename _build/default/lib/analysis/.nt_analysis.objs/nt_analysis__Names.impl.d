lib/analysis/names.ml: Array Fun Hashtbl Int64 List Nt_nfs Nt_trace Nt_util Option String
