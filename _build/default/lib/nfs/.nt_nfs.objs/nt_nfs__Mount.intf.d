lib/nfs/mount.mli: Fh Nt_xdr Types
