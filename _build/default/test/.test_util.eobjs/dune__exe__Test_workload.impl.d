test/test_workload.ml: Alcotest Buffer Float List Nt_analysis Nt_core Nt_net Nt_nfs Nt_sim Nt_trace Nt_util Nt_workload
