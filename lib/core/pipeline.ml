module Engine = Nt_sim.Engine
module Server = Nt_sim.Server
module Record_sorter = Nt_sim.Record_sorter
module Packet_pipe = Nt_sim.Packet_pipe
module Email = Nt_workload.Email
module Research = Nt_workload.Research
module Ip_addr = Nt_net.Ip_addr
module Obs = Nt_obs.Obs

type run_stats = {
  records : int;
  sessions : int;
  deliveries : int;
  compiles : int;
  server_calls : int;
}

let campus_server_ip = Ip_addr.v 10 1 1 2 (* "home02" *)
let eecs_server_ip = Ip_addr.v 10 2 1 2

(* run_stats is DERIVED from the registry: every field is written to an
   obs counter first and read back out, so the struct can never
   disagree with what a --metrics snapshot reports. Deltas against the
   pre-run counter values keep per-run stats correct when one registry
   hosts several runs. *)
let workload_counters obs =
  ( Obs.counter obs ~help:"trace records emitted to the sink" "pipeline.records",
    Obs.counter obs ~help:"interactive sessions started" "workload.sessions",
    Obs.counter obs ~help:"messages delivered" "workload.deliveries",
    Obs.counter obs ~help:"compile jobs run" "workload.compiles",
    Obs.counter obs ~help:"NFS calls the simulated server handled" "server.calls" )

let simulate_campus ?obs ?(config = Email.default_config) ~start ~stop ~sink () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let c_records, c_sessions, c_deliveries, c_compiles, c_server = workload_counters obs in
  let r0 = Obs.value c_records in
  let engine = Engine.create ~obs ~start:(start -. 1.) () in
  let server = Server.create ~fsid:2 ~ip:campus_server_ip () in
  let sorter =
    Record_sorter.create ~obs (fun r ->
        Obs.inc c_records;
        sink r)
  in
  let wl = Email.setup config ~engine ~server ~sink:(Record_sorter.push sorter) in
  Obs.with_span obs "simulate.campus" (fun () ->
      Email.schedule wl ~start ~stop;
      Engine.run_until engine stop;
      Record_sorter.flush sorter);
  let take c n =
    let before = Obs.value c in
    Obs.add c n;
    Obs.value c - before
  in
  {
    records = Obs.value c_records - r0;
    sessions = take c_sessions (Email.sessions_started wl);
    deliveries = take c_deliveries (Email.deliveries_made wl);
    compiles = take c_compiles 0;
    server_calls = take c_server (Server.calls_handled server);
  }

let simulate_eecs ?obs ?(config = Research.default_config) ~start ~stop ~sink () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let c_records, c_sessions, c_deliveries, c_compiles, c_server = workload_counters obs in
  let r0 = Obs.value c_records in
  let engine = Engine.create ~obs ~start:(start -. 1.) () in
  let server = Server.create ~fsid:3 ~ip:eecs_server_ip () in
  let sorter =
    Record_sorter.create ~obs (fun r ->
        Obs.inc c_records;
        sink r)
  in
  let wl = Research.setup config ~engine ~server ~sink:(Record_sorter.push sorter) in
  Obs.with_span obs "simulate.eecs" (fun () ->
      Research.schedule wl ~start ~stop;
      Engine.run_until engine stop;
      Record_sorter.flush sorter);
  let take c n =
    let before = Obs.value c in
    Obs.add c n;
    Obs.value c - before
  in
  {
    records = Obs.value c_records - r0;
    sessions = take c_sessions 0;
    deliveries = take c_deliveries 0;
    compiles = take c_compiles (Research.compiles_run wl);
    server_calls = take c_server (Server.calls_handled server);
  }

type pcap_stats = {
  run : run_stats;
  packets_written : int;
  packets_dropped : int;
  snapshot : Obs.snapshot;
}

(* packets_written/dropped are likewise read back from the registry
   counters the pipe and its fault injector maintain. *)
let to_pcap ~obs ~fault ~seed ~transport ~monitor_loss ~writer ~simulate =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let c_written = Obs.counter obs "pipe.packets_written" in
  let c_dropped = Obs.counter obs ~labels:[ ("kind", "dropped") ] "fault.events" in
  let w0 = Obs.value c_written and d0 = Obs.value c_dropped in
  let pipe = Packet_pipe.create ~obs ~monitor_loss ?fault ?seed ~transport ~writer () in
  let run =
    Obs.with_span obs "emit-pcap" (fun () ->
        let run = simulate ~obs ~sink:(Packet_pipe.push pipe) in
        Packet_pipe.finish pipe;
        run)
  in
  {
    run;
    packets_written = Obs.value c_written - w0;
    packets_dropped = Obs.value c_dropped - d0;
    snapshot = Obs.snapshot obs;
  }

let campus_to_pcap ?obs ?config ?fault ?seed ?(monitor_loss = 0.) ~start ~stop ~writer () =
  to_pcap ~obs ~fault ~seed ~transport:Packet_pipe.Tcp_transport ~monitor_loss ~writer
    ~simulate:(fun ~obs ~sink -> simulate_campus ~obs ?config ~start ~stop ~sink ())

let eecs_to_pcap ?obs ?config ?fault ?seed ?(monitor_loss = 0.) ~start ~stop ~writer () =
  to_pcap ~obs ~fault ~seed ~transport:Packet_pipe.Udp_transport ~monitor_loss ~writer
    ~simulate:(fun ~obs ~sink -> simulate_eecs ~obs ?config ~start ~stop ~sink ())

let capture_pcap ?obs ?salvage pcap_bytes =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let reader = Nt_net.Pcap.reader_of_string ~obs ?salvage pcap_bytes in
  let capture = Nt_trace.Capture.create ~obs () in
  Obs.with_span obs "capture.decode" (fun () ->
      Nt_trace.Capture.feed_pcap capture reader;
      Nt_trace.Capture.finish capture)

(* --- degraded-vs-clean differential harness --- *)

module Fault = Nt_sim.Fault

type degraded_run = {
  simulated : int;
  clean : Nt_trace.Capture.stats;
  degraded : Nt_trace.Capture.stats;
  faults : Fault.counts;
  clean_records : Nt_trace.Record.t list;
  degraded_records : Nt_trace.Record.t list;
}

let run_degraded ?(seed = 2003L) ?(mangle_flips = 0) ~transport ~plan records =
  let through plan =
    let buf = Buffer.create (1 lsl 20) in
    let writer = Nt_net.Pcap.writer_to_buffer buf in
    let pipe = Packet_pipe.create ~fault:plan ~seed ~transport ~writer () in
    List.iter (Packet_pipe.push pipe) records;
    Packet_pipe.finish pipe;
    (Buffer.contents buf, Packet_pipe.faults pipe)
  in
  let clean_pcap, _ = through Fault.none in
  let degraded_pcap, faults = through plan in
  let degraded_pcap, _ =
    if mangle_flips > 0 then Fault.mangle_pcap ~seed ~flips:mangle_flips degraded_pcap
    else (degraded_pcap, 0)
  in
  let clean, clean_records = capture_pcap clean_pcap in
  let degraded, degraded_records = capture_pcap ~salvage:true degraded_pcap in
  { simulated = List.length records; clean; degraded; faults; clean_records; degraded_records }

let collect_records simulate =
  let acc = ref [] in
  let stats = simulate ~sink:(fun r -> acc := r :: !acc) in
  (stats, List.rev !acc)

(* --- sharded analysis entry point --- *)

let analyze_records ?obs ?timeline ?jobs ?records_per_shard ~sections records =
  Nt_par.Report.run ?obs ?timeline ?jobs ?records_per_shard ~sections (Array.of_list records)

(* --- lint hooks: the linter as a differential oracle --- *)

let lint_records ?obs ?(config = Nt_lint.Engine.default_config) ?stats records =
  Nt_lint.Engine.run ?obs ?stats config (List.to_seq records)

type lint_oracle = { clean_lint : Nt_lint.Engine.t; degraded_lint : Nt_lint.Engine.t }

let lint_degraded ?config (d : degraded_run) =
  {
    clean_lint = lint_records ?config ~stats:d.clean d.clean_records;
    degraded_lint = lint_records ?config ~stats:d.degraded d.degraded_records;
  }

let campus_degraded ?config ?seed ?mangle_flips ~plan ~start ~stop () =
  let _, records =
    collect_records (fun ~sink -> simulate_campus ?config ~start ~stop ~sink ())
  in
  run_degraded ?seed ?mangle_flips ~transport:Packet_pipe.Tcp_transport ~plan records

let eecs_degraded ?config ?seed ?mangle_flips ~plan ~start ~stop () =
  let _, records =
    collect_records (fun ~sink -> simulate_eecs ?config ~start ~stop ~sink ())
  in
  run_degraded ?seed ?mangle_flips ~transport:Packet_pipe.Udp_transport ~plan records

(* --- binary trace container (nttb/1) --- *)

let read_tbin ?obs path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Nt_tbin.read_channel ?obs ic)

let iter_tbin ?obs path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Nt_tbin.iter_channel ?obs ic f)

let load_trace ?obs ?(tick = fun () -> ()) spec =
  let text ic =
    List.of_seq (Seq.map (fun r -> tick (); r) (Nt_trace.Record.read_channel ic))
  in
  let tbin ic =
    let acc = ref [] in
    let stats = Nt_tbin.iter_channel ?obs ic (fun r -> tick (); acc := r :: !acc) in
    ignore (stats : Nt_tbin.stats);
    List.rev !acc
  in
  if String.equal spec "-" then text stdin
  else begin
    let path, forced =
      if String.starts_with ~prefix:"trace:" spec then
        (String.sub spec 6 (String.length spec - 6), Some `Text)
      else if String.starts_with ~prefix:"tbin:" spec then
        (String.sub spec 5 (String.length spec - 5), Some `Tbin)
      else (spec, None)
    in
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        let kind =
          match forced with
          | Some k -> k
          | None ->
              if String.ends_with ~suffix:".ntb" path then `Tbin
              else begin
                (* sniff the 7-byte nttb magic *)
                let n = String.length Nt_tbin.magic in
                let buf = Bytes.create n in
                let got = input ic buf 0 n in
                seek_in ic 0;
                if got = n && String.equal (Bytes.sub_string buf 0 n) Nt_tbin.magic then
                  `Tbin
                else `Text
              end
        in
        match kind with `Text -> text ic | `Tbin -> tbin ic)
  end

let analyze_stream ?obs ?timeline ?jobs ?records_per_shard ~sections produce =
  Nt_par.Report.run_stream ?obs ?timeline ?jobs ?records_per_shard ~sections produce
