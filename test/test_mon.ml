(* Live monitor tests.

   The robustness properties the monitor is built around, each checked
   directly:

   - boundedness: capped tables conserve totals (evicted keys land in
     (other), never vanish), and a ring with active eviction reports
     the same whole-run totals as one uncapped batch accumulator;
   - exact window edges: ring window starts are exact multiples of the
     window length, and a record at t = k*window_s lands in window k;
   - crash safety: a checkpoint written mid-run restores to a state
     whose continuation is byte-identical to the uninterrupted run,
     and corrupt/mis-versioned checkpoints are refused loudly;
   - graceful degradation: a bounded ingest queue sheds oldest-first
     with every shed counted, preserving the conservation law
     ingested = shed + observed + queued;
   - feed resilience: tailed traces consume only complete lines and
     survive truncation; idle feeds trigger capped exponential
     backoff. *)

module Win = Nt_mon.Win
module Ring = Nt_mon.Ring
module Ingest = Nt_mon.Ingest
module Outstanding = Nt_mon.Outstanding
module Feed = Nt_mon.Feed
module Checkpoint = Nt_mon.Checkpoint
module Service = Nt_mon.Service
module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Ip = Nt_net.Ip_addr
module Obs = Nt_obs.Obs

(* --- record generators --- *)

let base_time = 1000000000.

let record ?(time = base_time) ?(client = Ip.v 10 0 0 1) ?(uid = 1) ?(lost = false)
    ?(result = Some (Ok Ops.R_empty)) call : Record.t =
  {
    time;
    reply_time = (if lost then None else Some (time +. 0.001));
    client;
    server = Ip.v 10 0 0 2;
    version = 3;
    xid = 7;
    uid;
    gid = uid;
    call;
    result;
  }

let fh ?(fsid = 2) fileid = Fh.make ~fsid ~fileid

let read_rec ~time ~client ~uid ~count () =
  record ~time ~client ~uid
    ~result:(Some (Ok (Ops.R_read { attr = None; count; eof = false })))
    (Ops.Read { fh = fh 10; offset = 0L; count })

let write_rec ~time ~client ~uid ~count ~stable () =
  record ~time ~client ~uid
    ~result:(Some (Ok (Ops.R_write { count; committed = stable; attr = None })))
    (Ops.Write { fh = fh 11; offset = 0L; count; stable })

let getattr_rec ?(lost = false) ~time ~client ~uid () =
  record ~time ~client ~uid ~lost
    ~result:(if lost then None else Some (Ok (Ops.R_attr Types.default_fattr)))
    (Ops.Getattr (fh 12))

(* A deterministic mixed workload: [n] records starting at [t0],
   [rate] records per second, keys spread over [spread] clients/uids. *)
let gen_records ?(t0 = base_time) ?(rate = 10.) ?(spread = 8) ~seed n =
  let st = Random.State.make [| seed |] in
  List.init n (fun i ->
      let time = t0 +. (float_of_int i /. rate) in
      let client = Ip.v 10 0 0 (1 + Random.State.int st spread) in
      let uid = 100 + Random.State.int st spread in
      match Random.State.int st 4 with
      | 0 -> read_rec ~time ~client ~uid ~count:(512 + Random.State.int st 4096) ()
      | 1 ->
          let stable =
            match Random.State.int st 3 with
            | 0 -> Types.Unstable
            | 1 -> Types.Data_sync
            | _ -> Types.File_sync
          in
          write_rec ~time ~client ~uid ~count:(256 + Random.State.int st 2048) ~stable ()
      | 2 -> getattr_rec ~lost:(Random.State.int st 20 = 0) ~time ~client ~uid ()
      | _ -> record ~time ~client ~uid (Ops.Access { fh = fh 13; access = 0x3f }))

let cki = Alcotest.(check int)
let ckb = Alcotest.(check bool)
let cks = Alcotest.(check string)

(* --- Win --- *)

let test_win_classification () =
  let w = Win.create () in
  Win.observe w (read_rec ~time:base_time ~client:(Ip.v 10 0 0 1) ~uid:1 ~count:4096 ());
  Win.observe w
    (write_rec ~time:(base_time +. 1.) ~client:(Ip.v 10 0 0 2) ~uid:2 ~count:100
       ~stable:Types.Unstable ());
  Win.observe w
    (write_rec ~time:(base_time +. 2.) ~client:(Ip.v 10 0 0 2) ~uid:2 ~count:200
       ~stable:Types.File_sync ());
  Win.observe w (getattr_rec ~lost:true ~time:(base_time +. 3.) ~client:(Ip.v 10 0 0 3) ~uid:3 ());
  Win.observe w
    (record ~time:(base_time +. 4.) ~client:(Ip.v 10 0 0 4)
       (Ops.Commit { fh = fh 11; offset = 0L; count = 0 }));
  cki "total" 5 (Win.total_ops w);
  cki "reads" 1 (Win.read_ops w);
  cki "read bytes" 4096 (Win.read_bytes w);
  cki "writes" 2 (Win.write_ops w);
  cki "write bytes" 300 (Win.write_bytes w);
  cki "commits" 1 (Win.commit_ops w);
  cki "lost" 1 (Win.lost_replies w);
  let by_stable = Win.writes_by_stable w in
  let row s = List.assoc s by_stable in
  cki "unstable ops" 1 (row Types.Unstable).Win.ops;
  cki "unstable bytes" 100 (row Types.Unstable).Win.write_bytes;
  cki "data_sync ops" 0 (row Types.Data_sync).Win.ops;
  cki "file_sync ops" 1 (row Types.File_sync).Win.ops;
  cki "clients" 4 (Win.table_size w `Client);
  cki "fs table" 1 (Win.table_size w `Fs);
  (match Win.span w with
  | Some (lo, hi) ->
      Alcotest.(check (float 1e-9)) "span lo" base_time lo;
      Alcotest.(check (float 1e-9)) "span hi" (base_time +. 4.) hi
  | None -> Alcotest.fail "empty span")

(* Totals survive capping: a tightly capped window agrees with an
   uncapped one on every aggregate, and keyed rows + (other) sum to the
   uncapped table. *)
let prop_win_eviction_conserves =
  QCheck.Test.make ~count:60 ~name:"win: capped totals == uncapped totals"
    QCheck.(pair small_nat int)
    (fun (n, seed) ->
      let records = gen_records ~seed ~spread:16 (min 400 (10 * (n + 1))) in
      let capped =
        Win.create ~caps:{ Win.client_cap = 3; uid_cap = 3; fs_cap = 1; proc_cap = 2 } ()
      in
      let free = Win.create () in
      List.iter
        (fun r ->
          Win.observe capped r;
          Win.observe free r)
        records;
      let ck name a b = if a <> b then QCheck.Test.fail_reportf "%s: %d <> %d" name a b in
      ck "total" (Win.total_ops capped) (Win.total_ops free);
      ck "read_bytes" (Win.read_bytes capped) (Win.read_bytes free);
      ck "write_bytes" (Win.write_bytes capped) (Win.write_bytes free);
      ck "lost" (Win.lost_replies capped) (Win.lost_replies free);
      List.iter
        (fun table ->
          let sum w =
            List.fold_left
              (fun acc (_, (r : Win.row)) -> acc + r.Win.ops)
              (Win.other_row w table).Win.ops (Win.top w table max_int)
          in
          ck (Win.table_name table ^ " ops sum") (sum capped) (sum free);
          if Win.table_size free table > Win.table_size capped table then
            ck (Win.table_name table ^ " evictions > 0")
              (min 1 (Win.evictions capped table))
              1)
        Win.all_tables;
      true)

let test_win_serialization_roundtrip () =
  let w = Win.create ~caps:{ Win.client_cap = 4; uid_cap = 4; fs_cap = 2; proc_cap = 4 } () in
  List.iter (Win.observe w) (gen_records ~seed:42 ~spread:12 200);
  let lines = Win.to_lines w in
  match Win.of_lines ~caps:{ Win.client_cap = 4; uid_cap = 4; fs_cap = 2; proc_cap = 4 } lines with
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)
  | Ok w' ->
      cks "identical serialization" (String.concat "\n" lines) (String.concat "\n" (Win.to_lines w'));
      cki "total" (Win.total_ops w) (Win.total_ops w');
      cki "evictions" (Win.evictions_total w) (Win.evictions_total w')

let test_win_of_lines_rejects_garbage () =
  let w = Win.create () in
  List.iter (Win.observe w) (gen_records ~seed:1 20);
  let lines = Win.to_lines w in
  ckb "truncated rejected" true (Result.is_error (Win.of_lines (List.tl lines)));
  ckb "garbage rejected" true (Result.is_error (Win.of_lines [ "bogus 1 2 3" ]))

(* --- Ring --- *)

let ring_config ?(window_s = 10.) ?(windows = 4) ?(caps = Win.default_caps) () =
  { Ring.window_s; windows; caps; summary_cap = caps }

(* Window boundaries land on exact multiples of window_s: a record at
   exactly t = k*window_s opens (or lands in) the window starting
   there, never the one before. *)
let test_ring_exact_edges () =
  let r = Ring.create (ring_config ~window_s:10. ()) in
  Ring.observe r (record ~time:100. (Ops.Getattr (fh 1)));
  (match Ring.current r with
  | Some (start, _) -> Alcotest.(check (float 0.)) "anchor aligned" 100. start
  | None -> Alcotest.fail "not anchored");
  Ring.observe r (record ~time:109.999999 (Ops.Getattr (fh 1)));
  cki "no rotation inside window" 0 (Ring.rotations r);
  Ring.observe r (record ~time:110. (Ops.Getattr (fh 1)));
  cki "boundary record rotates" 1 (Ring.rotations r);
  (match Ring.current r with
  | Some (start, w) ->
      Alcotest.(check (float 0.)) "new window starts at the edge" 110. start;
      cki "boundary record in new window" 1 (Win.total_ops w)
  | None -> Alcotest.fail "not anchored");
  List.iter
    (fun (start, _) ->
      ckb "start is an exact multiple" true (Float.rem start 10. = 0.))
    (Ring.live r)

let prop_ring_edges_aligned =
  QCheck.Test.make ~count:60 ~name:"ring: every window start is an exact multiple"
    QCheck.(triple small_nat (int_range 1 50) int)
    (fun (n, wsec, seed) ->
      let window_s = float_of_int wsec in
      let r = Ring.create (ring_config ~window_s ~windows:3 ()) in
      let records = gen_records ~seed ~rate:0.9 (min 300 (5 * (n + 1))) in
      List.iter (Ring.observe r) records;
      List.iter
        (fun (start, w) ->
          if Float.rem start window_s <> 0. then
            QCheck.Test.fail_reportf "window start %.3f not aligned to %.1f" start window_s;
          match Win.span w with
          | None -> ()
          | Some (lo, hi) ->
              if lo < start || hi >= start +. window_s then
                QCheck.Test.fail_reportf "record outside its window: [%f,%f] vs start %f" lo hi
                  start)
        (Ring.live r);
      true)

(* The tentpole conservation property: with rotation, spill-to-summary
   and table eviction all active, ring totals still equal one batch
   accumulator over every record. *)
let prop_ring_conserves_vs_batch =
  QCheck.Test.make ~count:60 ~name:"ring: totals with eviction == batch accumulator"
    QCheck.(pair small_nat int)
    (fun (n, seed) ->
      let caps = { Win.client_cap = 3; uid_cap = 3; fs_cap = 1; proc_cap = 3 } in
      let r = Ring.create (ring_config ~window_s:5. ~windows:2 ~caps ()) in
      let records = gen_records ~seed ~rate:2. ~spread:12 (min 400 (10 * (n + 1))) in
      let batch = Win.create () in
      List.iter
        (fun rec_ ->
          Ring.observe r rec_;
          Win.observe batch rec_)
        records;
      let totals = Ring.totals r in
      let ck name a b = if a <> b then QCheck.Test.fail_reportf "%s: %d <> %d" name a b in
      ck "observed" (Ring.observed r) (List.length records);
      ck "total" (Win.total_ops totals) (Win.total_ops batch);
      ck "read_bytes" (Win.read_bytes totals) (Win.read_bytes batch);
      ck "write_bytes" (Win.write_bytes totals) (Win.write_bytes batch);
      ck "commits" (Win.commit_ops totals) (Win.commit_ops batch);
      ck "lost" (Win.lost_replies totals) (Win.lost_replies batch);
      List.iter2
        (fun (s1, (r1 : Win.row)) (s2, (r2 : Win.row)) ->
          ck "stable kind" (Types.stable_how_to_int s1) (Types.stable_how_to_int s2);
          ck "stable ops" r1.Win.ops r2.Win.ops;
          ck "stable bytes" r1.Win.write_bytes r2.Win.write_bytes)
        (Win.writes_by_stable totals) (Win.writes_by_stable batch);
      (* windows long gone still count: enough records + short windows
         means spills definitely happened *)
      if List.length records > 100 && Ring.evicted_windows r = 0 then
        QCheck.Test.fail_reportf "expected window spills, got none";
      true)

let test_ring_time_jumps () =
  let r = Ring.create (ring_config ~window_s:10. ~windows:3 ()) in
  Ring.observe r (record ~time:1000. (Ops.Getattr (fh 1)));
  Ring.observe r (record ~time:1015. (Ops.Getattr (fh 1)));
  (* late but within retained windows: routed back, counted *)
  Ring.observe r (record ~time:1001. (Ops.Getattr (fh 1)));
  cki "late" 1 (Ring.late r);
  cki "backward" 1 (Ring.backward r);
  (* a jump over the whole ring flushes and re-anchors *)
  Ring.observe r (record ~time:5000. (Ops.Getattr (fh 1)));
  cki "forward jump" 1 (Ring.forward_jumps r);
  (match Ring.current r with
  | Some (start, _) -> Alcotest.(check (float 0.)) "re-anchored" 5000. start
  | None -> Alcotest.fail "not anchored");
  (* ancient record after the jump: into the summary, conserved *)
  Ring.observe r (record ~time:1002. (Ops.Getattr (fh 1)));
  cki "observed" 5 (Ring.observed r);
  cki "totals conserve everything" 5 (Win.total_ops (Ring.totals r))

let test_ring_serialization_roundtrip () =
  let config = ring_config ~window_s:5. ~windows:3 () in
  let r = Ring.create config in
  List.iter (Ring.observe r) (gen_records ~seed:77 ~rate:1.5 ~spread:10 150);
  match Ring.of_lines config (Ring.to_lines r) with
  | Error e -> Alcotest.fail ("ring round trip: " ^ e)
  | Ok r' ->
      cki "observed" (Ring.observed r) (Ring.observed r');
      cki "rotations" (Ring.rotations r) (Ring.rotations r');
      cki "evicted windows" (Ring.evicted_windows r) (Ring.evicted_windows r');
      cki "live windows" (List.length (Ring.live r)) (List.length (Ring.live r'));
      cki "totals" (Win.total_ops (Ring.totals r)) (Win.total_ops (Ring.totals r'));
      cks "window starts"
        (String.concat "," (List.map (fun (s, _) -> Printf.sprintf "%.1f" s) (Ring.live r)))
        (String.concat "," (List.map (fun (s, _) -> Printf.sprintf "%.1f" s) (Ring.live r')))

(* --- Ingest --- *)

let test_ingest_sheds_oldest () =
  let q = Ingest.create ~capacity:3 in
  cki "push 1" 0 (match Ingest.push q 1 with None -> 0 | Some _ -> 1);
  ignore (Ingest.push q 2);
  ignore (Ingest.push q 3);
  (match Ingest.push q 4 with
  | Some shed -> cki "oldest shed" 1 shed
  | None -> Alcotest.fail "expected shed");
  cki "length stays capped" 3 (Ingest.length q);
  (match Ingest.pop q with Some v -> cki "head is 2" 2 v | None -> Alcotest.fail "empty");
  (match Ingest.pop q with Some v -> cki "then 3" 3 v | None -> Alcotest.fail "empty");
  (match Ingest.pop q with Some v -> cki "then 4" 4 v | None -> Alcotest.fail "empty");
  ckb "now empty" true (Ingest.is_empty q)

let prop_ingest_fifo_bounded =
  QCheck.Test.make ~count:100 ~name:"ingest: bounded FIFO, shed head order"
    QCheck.(pair (int_range 1 16) (small_list small_nat))
    (fun (cap, xs) ->
      let q = Ingest.create ~capacity:cap in
      let shed = ref [] in
      List.iter
        (fun x -> match Ingest.push q x with Some s -> shed := s :: !shed | None -> ())
        xs;
      if Ingest.length q > cap then QCheck.Test.fail_reportf "over capacity";
      let rec drain acc = match Ingest.pop q with Some v -> drain (v :: acc) | None -> List.rev acc in
      let out = drain [] in
      (* shed (oldest first) + remaining = original sequence *)
      let rebuilt = List.rev !shed @ out in
      if rebuilt <> xs then QCheck.Test.fail_reportf "shed+rest is not the input sequence";
      true)

(* --- Outstanding --- *)

let test_outstanding_snapshot () =
  let o = Outstanding.create ~cap:8 ~timeout:60. () in
  Outstanding.note o (read_rec ~time:100. ~client:(Ip.v 10 0 0 1) ~uid:1 ~count:10 ());
  Outstanding.note o (getattr_rec ~lost:true ~time:100.5 ~client:(Ip.v 10 0 0 1) ~uid:1 ());
  Outstanding.advance o ~now:100.0005;
  cki "read still outstanding" 2 (Outstanding.outstanding o);
  Outstanding.advance o ~now:101.;
  cki "read retired" 1 (Outstanding.outstanding o);
  cki "no losses yet" 0 (Outstanding.lost o);
  Outstanding.advance o ~now:200.;
  cki "lost call timed out" 0 (Outstanding.outstanding o);
  cki "counted as lost" 1 (Outstanding.lost o)

let test_outstanding_bounded () =
  let o = Outstanding.create ~cap:4 ~timeout:60. () in
  for i = 0 to 9 do
    Outstanding.note o (getattr_rec ~lost:true ~time:(float_of_int (100 + i)) ~client:(Ip.v 10 0 0 1) ~uid:1 ())
  done;
  cki "capped" 4 (Outstanding.outstanding o);
  cki "dropped counted" 6 (Outstanding.dropped o)

(* --- Feed --- *)

let test_feed_of_records () =
  let records = gen_records ~seed:5 10 in
  let f = Feed.of_records (List.to_seq records) in
  let rec count acc =
    match Feed.pull f with `Record _ -> count (acc + 1) | `Closed -> acc | `Idle -> count acc
  in
  cki "all records then closed" 10 (count 0)

let with_tmp name body =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> body path)

let test_trace_tail_partial_lines () =
  with_tmp "ntmon_tail_test.trace" (fun path ->
      let records = gen_records ~seed:9 4 in
      let lines = List.map Record.to_line records in
      let oc = open_out path in
      let obs = Obs.create () in
      let f = Feed.trace_tail ~obs path in
      ckb "empty file idles" true (Feed.pull f = `Idle);
      (* a complete line plus a partial one: only the complete line is
         consumed *)
      output_string oc (List.nth lines 0);
      output_char oc '\n';
      let partial = List.nth lines 1 in
      output_string oc (String.sub partial 0 (String.length partial / 2));
      flush oc;
      ckb "first record" true (match Feed.pull f with `Record _ -> true | _ -> false);
      ckb "partial line is held back" true (Feed.pull f = `Idle);
      (* completing the line releases it *)
      output_string oc
        (String.sub partial (String.length partial / 2)
           (String.length partial - (String.length partial / 2)));
      output_char oc '\n';
      flush oc;
      ckb "completed record" true (match Feed.pull f with `Record _ -> true | _ -> false);
      (* garbage line: counted, not fatal *)
      output_string oc "not a record\n";
      output_string oc (List.nth lines 2);
      output_char oc '\n';
      flush oc;
      ckb "skips garbage, yields next" true
        (match Feed.pull f with `Record _ -> true | _ -> false);
      let snap = Obs.snapshot obs in
      cki "parse error counted" 1 (Obs.sum_counter snap "mon.feed.parse_errors");
      close_out oc;
      Feed.close f)

let test_trace_tail_truncation_reopen () =
  with_tmp "ntmon_trunc_test.trace" (fun path ->
      let records = gen_records ~seed:11 6 in
      let line r = Record.to_line r ^ "\n" in
      let oc = open_out path in
      List.iteri (fun i r -> if i < 3 then output_string oc (line r)) records;
      close_out oc;
      let obs = Obs.create () in
      let f = Feed.trace_tail ~obs path in
      let rec drain acc =
        match Feed.pull f with `Record _ -> drain (acc + 1) | _ -> acc
      in
      cki "first three" 3 (drain 0);
      (* rotate as logrotate's copytruncate does: truncate to empty,
         then the writer resumes appending *)
      let oc = open_out path in
      close_out oc;
      (match Feed.pull f with
      | `Idle -> ()
      | _ -> Alcotest.fail "expected idle at rotation");
      let oc = open_out_gen [ Open_append ] 0o644 path in
      List.iteri (fun i r -> if i >= 3 then output_string oc (line r)) records;
      close_out oc;
      cki "three more after reopen" 3 (drain 0);
      let snap = Obs.snapshot obs in
      cki "reopen counted" 1 (Obs.sum_counter snap "mon.feed.reopens");
      Feed.close f)

let test_feed_seek_replays_suffix () =
  with_tmp "ntmon_seek_test.trace" (fun path ->
      let records = gen_records ~seed:13 8 in
      let oc = open_out path in
      List.iter (fun r -> output_string oc (Record.to_line r ^ "\n")) records;
      close_out oc;
      let f = Feed.trace_tail path in
      for _ = 1 to 5 do
        match Feed.pull f with `Record _ -> () | _ -> Alcotest.fail "expected record"
      done;
      let pos = match Feed.pos f with Some p -> p | None -> Alcotest.fail "no pos" in
      Feed.close f;
      let f2 = Feed.trace_tail path in
      ckb "seek ok" true (Feed.seek f2 pos);
      let rec drain acc = match Feed.pull f2 with `Record r -> drain (r :: acc) | _ -> List.rev acc in
      let rest = drain [] in
      cki "exactly the suffix" 3 (List.length rest);
      (match (rest, List.filteri (fun i _ -> i >= 5) records) with
      | r1 :: _, r2 :: _ -> Alcotest.(check (float 0.)) "same first record" r2.Record.time r1.Record.time
      | _ -> Alcotest.fail "empty suffix");
      Feed.close f2)

(* --- Checkpoint --- *)

let test_checkpoint_roundtrip () =
  with_tmp "ntmon_ckpt_test" (fun path ->
      let ck =
        {
          Checkpoint.saved_at = 12345.5;
          feed_pos = Some 9876543210L;
          counters = [ ("ingested", 42); ("shed", 7) ];
          ring = [ "line one"; "line two" ];
          pending = [ "pending n=0 lost=1 dropped=2" ];
        }
      in
      (match Checkpoint.save ~path ck with Ok () -> () | Error e -> Alcotest.fail e);
      match Checkpoint.load ~path with
      | Error e -> Alcotest.fail e
      | Ok ck' ->
          Alcotest.(check (float 0.)) "saved_at" ck.Checkpoint.saved_at ck'.Checkpoint.saved_at;
          ckb "feed_pos" true (ck'.Checkpoint.feed_pos = Some 9876543210L);
          cki "counters" 2 (List.length ck'.Checkpoint.counters);
          cki "ingested" 42 (List.assoc "ingested" ck'.Checkpoint.counters);
          cks "ring" "line one|line two" (String.concat "|" ck'.Checkpoint.ring))

let test_checkpoint_rejects_corruption () =
  with_tmp "ntmon_ckpt_corrupt" (fun path ->
      let ck =
        {
          Checkpoint.saved_at = 1.;
          feed_pos = None;
          counters = [];
          ring = [ "payload" ];
          pending = [];
        }
      in
      (match Checkpoint.save ~path ck with Ok () -> () | Error e -> Alcotest.fail e);
      let raw = In_channel.with_open_bin path In_channel.input_all in
      (* flip a payload byte: digest must catch it *)
      let broken = Bytes.of_string raw in
      Bytes.set broken (String.length Checkpoint.version + 3) 'X';
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc broken);
      ckb "corruption rejected" true (Result.is_error (Checkpoint.load ~path));
      (* version bump must be refused *)
      let other = String.concat "\n" [ "ntmon-ckpt/99"; "saved_at 0x1p+0" ] ^ "\n" in
      let digest = Digest.to_hex (Digest.string other) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (other ^ "digest " ^ digest ^ "\n"));
      match Checkpoint.load ~path with
      | Error e -> ckb "names the version" true (String.length e > 0)
      | Ok _ -> Alcotest.fail "accepted an unsupported version")
[@@nt.allow
  "format-literal-drift: the forked ntmon-ckpt/99 tag is the fixture for the version-bump \
   rejection path"]

(* --- Service --- *)

let service_config ?(window_s = 5.) ?(windows = 3) ?(queue_cap = 1024) ?(pull_batch = 64)
    ?(drain_max = 256) ?checkpoint_path () =
  {
    Service.default_config with
    Service.ring =
      {
        Ring.window_s;
        windows;
        caps = Win.default_caps;
        summary_cap = Win.default_caps;
      };
    queue_cap;
    pull_batch;
    drain_max;
    checkpoint_path;
    checkpoint_every_s = 1e9;
    backoff_base_s = 0.001;
    backoff_cap_s = 0.016;
    idle_exit = Some 4;
  }

let run_service ?emit config records =
  let feed = Feed.of_records (List.to_seq records) in
  let obs = Obs.create () in
  let emit = match emit with Some e -> e | None -> fun _ -> () in
  let clock = ref 0. in
  let t =
    Service.create ~obs
      ~clock:(fun () -> !clock)
      ~sleep:(fun d -> clock := !clock +. d)
      ~emit config feed
  in
  Service.run t;
  t

let test_service_end_to_end () =
  let records = gen_records ~seed:21 ~rate:4. 300 in
  let reports = ref [] in
  let t = run_service ~emit:(fun s -> reports := s :: !reports) (service_config ()) records in
  cki "everything observed" 300 (Service.observed t);
  cki "nothing shed" 0 (Service.shed t);
  cki "queue drained" 0 (Service.queue_depth t);
  ckb "reports emitted" true (Service.reports_emitted t > 2);
  (match Service.conservation t with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("conservation: " ^ e));
  let snap = Obs.snapshot (Service.obs t) in
  cki "registry agrees: ingested" 300 (Obs.sum_counter snap "mon.ingested");
  cki "registry agrees: observed" 300 (Obs.sum_counter snap "mon.observed");
  cki "registry agrees: reports" (Service.reports_emitted t) (Obs.sum_counter snap "mon.reports")

let test_service_sheds_under_overload () =
  (* tiny queue, big pull batches, tiny drain quota: the monitor must
     shed but never miscount *)
  let records = gen_records ~seed:23 ~rate:50. 500 in
  let config = service_config ~queue_cap:16 ~pull_batch:128 ~drain_max:8 () in
  let t = run_service config records in
  ckb "shedding happened" true (Service.shed t > 0);
  cki "conservation: in = shed + observed" (Service.ingested t)
    (Service.shed t + Service.observed t + Service.queue_depth t);
  (match Service.conservation t with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("conservation: " ^ e));
  let snap = Obs.snapshot (Service.obs t) in
  cki "shed counter matches" (Service.shed t) (Obs.sum_counter snap "mon.shed")

let test_service_idle_backoff () =
  let idles = ref 0 in
  let feed =
    Feed.of_fn (fun () ->
        incr idles;
        `Idle)
  in
  let obs = Obs.create () in
  let sleeps = ref [] in
  let clock = ref 0. in
  let config = { (service_config ()) with Service.idle_exit = Some 6 } in
  let t =
    Service.create ~obs
      ~clock:(fun () -> !clock)
      ~sleep:(fun d ->
        sleeps := d :: !sleeps;
        clock := !clock +. d)
      ~emit:(fun _ -> ()) config feed
  in
  Service.run t;
  let sleeps = List.rev !sleeps in
  cki "one sleep per idle round" 5 (List.length sleeps);
  (match sleeps with
  | a :: b :: c :: _ ->
      Alcotest.(check (float 1e-9)) "base" 0.001 a;
      Alcotest.(check (float 1e-9)) "doubled" 0.002 b;
      Alcotest.(check (float 1e-9)) "doubled again" 0.004 c
  | _ -> Alcotest.fail "expected sleeps");
  let last = List.nth sleeps (List.length sleeps - 1) in
  ckb "capped" true (last <= 0.016 +. 1e-12)

(* The crash-safety acceptance test: run uninterrupted; then run again
   but "kill" the service right after a mid-run checkpoint (abandon it,
   no shutdown), restore a third instance from the checkpoint and let
   it finish. The restored run's final state must match the
   uninterrupted run exactly. *)
let test_service_kill_restore_equivalence () =
  with_tmp "ntmon_kill_test.trace" (fun trace_path ->
      with_tmp "ntmon_kill_test.ckpt" (fun ckpt_path ->
          let records = gen_records ~seed:31 ~rate:4. ~spread:10 400 in
          let oc = open_out trace_path in
          List.iter (fun r -> output_string oc (Record.to_line r ^ "\n")) records;
          close_out oc;
          let run_with ?checkpoint_path ~steps () =
            let feed = Feed.trace_tail trace_path in
            let obs = Obs.create () in
            let clock = ref 0. in
            let config =
              {
                (service_config ~pull_batch:32 ~drain_max:64 ?checkpoint_path ())
                with
                Service.checkpoint_every_s = (if checkpoint_path = None then 1e9 else 0.);
                idle_exit = Some 3;
              }
            in
            let t =
              Service.create ~obs
                ~clock:(fun () -> clock := !clock +. 0.01; !clock)
                ~sleep:(fun d -> clock := !clock +. d)
                ~emit:(fun _ -> ()) config feed
            in
            (match steps with
            | None -> Service.run t
            | Some k ->
                let rec go k = if k > 0 then match Service.step t with
                  | `Continue -> go (k - 1)
                  | `Stopped -> ()
                in
                go k);
            t
          in
          (* A: uninterrupted, no checkpointing *)
          let a = run_with ~steps:None () in
          (* B1: checkpoint every step, killed (abandoned) after 5 steps *)
          let b1 = run_with ~checkpoint_path:ckpt_path ~steps:(Some 5) () in
          ckb "b1 was killed mid-run" true (Service.observed b1 < List.length records);
          ckb "a checkpoint exists" true (Sys.file_exists ckpt_path);
          (* B2: restore and finish *)
          let b2 = run_with ~checkpoint_path:ckpt_path ~steps:None () in
          ckb "b2 restored" true (Service.restored b2);
          cki "same ingested" (Service.ingested a) (Service.ingested b2);
          cki "same observed" (Service.observed a) (Service.observed b2);
          cki "same shed" (Service.shed a) (Service.shed b2);
          cki "same rotations" (Ring.rotations (Service.ring a)) (Ring.rotations (Service.ring b2));
          cki "same window spills"
            (Ring.evicted_windows (Service.ring a))
            (Ring.evicted_windows (Service.ring b2));
          let totals t = Win.to_lines (Ring.totals (Service.ring t)) in
          cks "identical conserved totals" (String.concat "\n" (totals a))
            (String.concat "\n" (totals b2));
          cks "identical final report"
            (Service.report_json a) (Service.report_json b2);
          (match Service.conservation b2 with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("restored conservation: " ^ e))))

let test_service_restore_refuses_garbage () =
  with_tmp "ntmon_badckpt" (fun ckpt_path ->
      Out_channel.with_open_bin ckpt_path (fun oc ->
          Out_channel.output_string oc "not a checkpoint at all\n");
      let records = gen_records ~seed:41 50 in
      let obs = Obs.create () in
      let feed = Feed.of_records (List.to_seq records) in
      let t =
        Service.create ~obs
          ~clock:(fun () -> 0.)
          ~sleep:(fun _ -> ())
          ~emit:(fun _ -> ())
          { (service_config ()) with Service.checkpoint_path = Some ckpt_path }
          feed
      in
      ckb "not restored" false (Service.restored t);
      Service.run t;
      cki "fresh run still works" 50 (Service.observed t);
      let snap = Obs.snapshot obs in
      cki "failure counted" 1 (Obs.sum_counter snap "mon.checkpoint.restore_failed"))

let () =
  Alcotest.run "nt_mon"
    [
      ( "win",
        [
          Alcotest.test_case "classification" `Quick test_win_classification;
          QCheck_alcotest.to_alcotest prop_win_eviction_conserves;
          Alcotest.test_case "serialization round trip" `Quick test_win_serialization_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_win_of_lines_rejects_garbage;
        ] );
      ( "ring",
        [
          Alcotest.test_case "exact edges" `Quick test_ring_exact_edges;
          QCheck_alcotest.to_alcotest prop_ring_edges_aligned;
          QCheck_alcotest.to_alcotest prop_ring_conserves_vs_batch;
          Alcotest.test_case "time jumps" `Quick test_ring_time_jumps;
          Alcotest.test_case "serialization round trip" `Quick test_ring_serialization_roundtrip;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "sheds oldest" `Quick test_ingest_sheds_oldest;
          QCheck_alcotest.to_alcotest prop_ingest_fifo_bounded;
        ] );
      ( "outstanding",
        [
          Alcotest.test_case "snapshot" `Quick test_outstanding_snapshot;
          Alcotest.test_case "bounded" `Quick test_outstanding_bounded;
        ] );
      ( "feed",
        [
          Alcotest.test_case "in-memory" `Quick test_feed_of_records;
          Alcotest.test_case "tail holds partial lines" `Quick test_trace_tail_partial_lines;
          Alcotest.test_case "truncation reopens" `Quick test_trace_tail_truncation_reopen;
          Alcotest.test_case "seek replays suffix" `Quick test_feed_seek_replays_suffix;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick test_checkpoint_rejects_corruption;
        ] );
      ( "service",
        [
          Alcotest.test_case "end to end" `Quick test_service_end_to_end;
          Alcotest.test_case "sheds under overload" `Quick test_service_sheds_under_overload;
          Alcotest.test_case "idle backoff" `Quick test_service_idle_backoff;
          Alcotest.test_case "kill/restore equivalence" `Quick
            test_service_kill_restore_equivalence;
          Alcotest.test_case "refuses garbage checkpoint" `Quick
            test_service_restore_refuses_garbage;
        ] );
    ]
