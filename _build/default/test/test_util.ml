(* Unit and property tests for Nt_util: PRNG, distributions, statistics,
   histograms, trace-week calendar and table rendering. *)

module Prng = Nt_util.Prng
module Dist = Nt_util.Dist
module Stats = Nt_util.Stats
module Histogram = Nt_util.Histogram
module Tw = Nt_util.Trace_week
module Tables = Nt_util.Tables

let check = Alcotest.check
let checkf msg = check (Alcotest.float 1e-9) msg
let checkf_eps eps msg = check (Alcotest.float eps) msg

(* --- PRNG --- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  Alcotest.(check bool) "different seeds differ" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_split_independent () =
  let parent = Prng.create 7L in
  let child = Prng.split parent in
  let v1 = Prng.next_int64 child in
  (* Re-derive: same parent seed, same split order -> same child. *)
  let parent2 = Prng.create 7L in
  let child2 = Prng.split parent2 in
  check Alcotest.int64 "split reproducible" v1 (Prng.next_int64 child2)

let test_prng_copy () =
  let a = Prng.create 5L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_int_range () =
  let rng = Prng.create 11L in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let rng = Prng.create 13L in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_prng_unit_float () =
  let rng = Prng.create 17L in
  for _ = 1 to 10_000 do
    let v = Prng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_prng_uniformity () =
  let rng = Prng.create 23L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket near 10%" true (frac > 0.08 && frac < 0.12))
    buckets

let test_prng_chance () =
  let rng = Prng.create 29L in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Prng.chance rng 0.25 then incr hits
  done;
  let p = float_of_int !hits /. 100_000. in
  Alcotest.(check bool) "p ~ 0.25" true (p > 0.23 && p < 0.27)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 31L in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_choose () =
  let rng = Prng.create 37L in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let c = Prng.choose rng a in
    Alcotest.(check bool) "chosen from array" true (Array.exists (String.equal c) a)
  done

(* --- distributions --- *)

let mean_of f n rng =
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. f rng
  done;
  !sum /. float_of_int n

let test_exponential_mean () =
  let rng = Prng.create 41L in
  let m = mean_of (fun r -> Dist.exponential r ~rate:2.) 100_000 rng in
  checkf_eps 0.02 "mean 1/rate" 0.5 m

let test_exponential_positive () =
  let rng = Prng.create 43L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Dist.exponential rng ~rate:0.1 > 0.)
  done

let test_uniform_bounds () =
  let rng = Prng.create 47L in
  for _ = 1 to 1000 do
    let v = Dist.uniform rng ~lo:3. ~hi:9. in
    Alcotest.(check bool) "in bounds" true (v >= 3. && v < 9.)
  done

let test_normal_mean_stddev () =
  let rng = Prng.create 53L in
  let s = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add s (Dist.normal rng ~mean:10. ~stddev:3.)
  done;
  checkf_eps 0.1 "mean" 10. (Stats.mean s);
  checkf_eps 0.1 "stddev" 3. (Stats.stddev s)

let test_lognormal_median () =
  let rng = Prng.create 59L in
  let vals = Array.init 50_001 (fun _ -> Dist.lognormal rng ~mu:(log 100.) ~sigma:1.0) in
  let med = Stats.median vals in
  Alcotest.(check bool) "median near e^mu" true (med > 90. && med < 110.)

let test_pareto_min () =
  let rng = Prng.create 61L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above x_min" true (Dist.pareto rng ~alpha:1.5 ~x_min:10. >= 10.)
  done

let test_geometric_mean () =
  let rng = Prng.create 67L in
  let m = mean_of (fun r -> float_of_int (Dist.geometric r ~p:0.5)) 100_000 rng in
  checkf_eps 0.05 "mean (1-p)/p" 1.0 m

let test_poisson_mean () =
  let rng = Prng.create 71L in
  let m = mean_of (fun r -> float_of_int (Dist.poisson r ~mean:4.)) 50_000 rng in
  checkf_eps 0.1 "mean" 4.0 m

let test_poisson_large_mean () =
  let rng = Prng.create 73L in
  let m = mean_of (fun r -> float_of_int (Dist.poisson r ~mean:200.)) 20_000 rng in
  Alcotest.(check bool) "normal approx near mean" true (m > 195. && m < 205.)

let test_zipf_rank_one_most_popular () =
  let rng = Prng.create 79L in
  let z = Dist.zipf ~n:100 ~s:1.0 in
  let counts = Array.make 101 0 in
  for _ = 1 to 100_000 do
    let r = Dist.zipf_draw rng z in
    Alcotest.(check bool) "rank in range" true (r >= 1 && r <= 100);
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank1 > rank10" true (counts.(1) > counts.(10));
  Alcotest.(check bool) "rank1 > rank2" true (counts.(1) > counts.(2))

let test_zipf_n () =
  check Alcotest.int "zipf_n" 42 (Dist.zipf_n (Dist.zipf ~n:42 ~s:0.5))

let test_weighted_draw () =
  let rng = Prng.create 83L in
  let w = Dist.weighted [ ("a", 1.); ("b", 9.) ] in
  let b_count = ref 0 in
  for _ = 1 to 10_000 do
    if Dist.weighted_draw rng w = "b" then incr b_count
  done;
  let frac = float_of_int !b_count /. 10_000. in
  Alcotest.(check bool) "b ~ 90%" true (frac > 0.87 && frac < 0.93)

(* --- stats --- *)

let test_stats_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check Alcotest.int "count" 8 (Stats.count s);
  checkf "mean" 5. (Stats.mean s);
  checkf "total" 40. (Stats.total s);
  checkf_eps 1e-9 "variance (n-1)" (32. /. 7.) (Stats.variance s);
  checkf "min" 2. (Stats.min s);
  checkf "max" 9. (Stats.max s)

let test_stats_empty () =
  let s = Stats.create () in
  checkf "mean empty" 0. (Stats.mean s);
  checkf "variance empty" 0. (Stats.variance s);
  Alcotest.(check bool) "min is nan" true (Float.is_nan (Stats.min s))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let data = [ 1.; 5.; 2.; 8.; 13.; 0.5; 7.; 3. ] in
  List.iteri (fun i x ->
      Stats.add whole x;
      if i < 4 then Stats.add a x else Stats.add b x)
    data;
  let merged = Stats.merge a b in
  check Alcotest.int "count" (Stats.count whole) (Stats.count merged);
  checkf_eps 1e-9 "mean" (Stats.mean whole) (Stats.mean merged);
  checkf_eps 1e-9 "variance" (Stats.variance whole) (Stats.variance merged);
  checkf "min" (Stats.min whole) (Stats.min merged);
  checkf "max" (Stats.max whole) (Stats.max merged)

let test_stats_stddev_pct () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.; 10.; 10. ];
  checkf "zero spread" 0. (Stats.stddev_pct_of_mean s)

let test_percentile () =
  let data = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "p0" 1. (Stats.percentile data 0.);
  checkf "p50" 3. (Stats.percentile data 50.);
  checkf "p100" 5. (Stats.percentile data 100.);
  checkf "p25" 2. (Stats.percentile data 25.)

let test_median_even () =
  checkf "median interpolates" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |])

let test_percentile_empty () =
  Alcotest.(check bool) "nan on empty" true (Float.is_nan (Stats.percentile [||] 50.))

(* --- histogram --- *)

let test_histogram_bucketing () =
  let h = Histogram.create ~edges:[| 10.; 20.; 30. |] in
  Histogram.add h 5.;
  Histogram.add h 10.;
  Histogram.add h 15.;
  Histogram.add h 25.;
  Histogram.add h 100.;
  checkf "bucket <10" 1. (Histogram.weight h 0);
  checkf "bucket [10,20)" 2. (Histogram.weight h 1);
  checkf "bucket [20,30)" 1. (Histogram.weight h 2);
  checkf "bucket >=30" 1. (Histogram.weight h 3);
  checkf "total" 5. (Histogram.total_weight h)

let test_histogram_weighted () =
  let h = Histogram.create ~edges:[| 1. |] in
  Histogram.add_weighted h 0.5 3.5;
  Histogram.add_weighted h 2.0 1.5;
  checkf "weighted low" 3.5 (Histogram.weight h 0);
  checkf "weighted high" 1.5 (Histogram.weight h 1)

let test_histogram_cdf () =
  let h = Histogram.create ~edges:[| 1.; 2.; 3. |] in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 2.5 ];
  match Histogram.cdf h with
  | [ (_, f1); (_, f2); (_, f3) ] ->
      checkf "cdf 1" 0.25 f1;
      checkf "cdf 2" 0.75 f2;
      checkf "cdf 3" 1.0 f3
  | _ -> Alcotest.fail "expected 3 cdf points"

let test_histogram_log2 () =
  let h = Histogram.log2_buckets ~lo:1. ~hi:8. in
  check Alcotest.(array (float 1e-9)) "edges double" [| 1.; 2.; 4.; 8. |] (Histogram.edges h)

let test_histogram_empty_cdf () =
  let h = Histogram.create ~edges:[| 1.; 2. |] in
  List.iter (fun (_, f) -> checkf "zero fraction" 0. f) (Histogram.cdf h)

(* --- trace week --- *)

let test_week_span () = checkf "week is 7 days" (7. *. 86400.) (Tw.week_end -. Tw.week_start)

let test_day_of_time () =
  check Alcotest.string "start is Sunday" "Sun" (Tw.day_to_string (Tw.day_of_time Tw.week_start));
  check Alcotest.string "next day is Monday" "Mon"
    (Tw.day_to_string (Tw.day_of_time (Tw.week_start +. 86400.)));
  check Alcotest.string "last day is Saturday" "Sat"
    (Tw.day_to_string (Tw.day_of_time (Tw.week_end -. 1.)))

let test_hour_of_time () =
  check Alcotest.int "midnight" 0 (Tw.hour_of_time Tw.week_start);
  check Alcotest.int "9am" 9 (Tw.hour_of_time (Tw.week_start +. (9. *. 3600.)));
  check Alcotest.int "23h" 23 (Tw.hour_of_time (Tw.week_start +. (23.5 *. 3600.)))

let test_hour_index () =
  check Alcotest.int "first hour" 0 (Tw.hour_index Tw.week_start);
  check Alcotest.int "Monday 1am" 25 (Tw.hour_index (Tw.week_start +. (25.5 *. 3600.)))

let test_is_peak () =
  let mon10 = Tw.time_of ~day:Tw.Mon ~hour:10 ~minute:0 in
  let mon8 = Tw.time_of ~day:Tw.Mon ~hour:8 ~minute:0 in
  let mon18 = Tw.time_of ~day:Tw.Mon ~hour:18 ~minute:0 in
  let sun12 = Tw.time_of ~day:Tw.Sun ~hour:12 ~minute:0 in
  Alcotest.(check bool) "Mon 10am peak" true (Tw.is_peak mon10);
  Alcotest.(check bool) "Mon 8am not peak" false (Tw.is_peak mon8);
  Alcotest.(check bool) "Mon 6pm not peak (exclusive)" false (Tw.is_peak mon18);
  Alcotest.(check bool) "Sunday noon not peak" false (Tw.is_peak sun12)

let test_time_of () =
  let t = Tw.time_of ~day:Tw.Wed ~hour:14 ~minute:30 in
  check Alcotest.string "day" "Wed" (Tw.day_to_string (Tw.day_of_time t));
  check Alcotest.int "hour" 14 (Tw.hour_of_time t)

let test_format () =
  let t = Tw.time_of ~day:Tw.Fri ~hour:9 ~minute:5 in
  check Alcotest.string "formatted" "Fri 09:05:00.000" (Tw.format t)

(* --- tables --- *)

let test_table_render () =
  let out = Tables.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yyy"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "5 lines (incl. trailing empty)" 5 (List.length lines);
  Alcotest.(check bool) "aligned" true
    (String.length (List.nth lines 0) = String.length (List.nth lines 2))

let test_fmt_bytes () =
  check Alcotest.string "GB" "1.5 GB" (Tables.fmt_bytes (1.5 *. 1024. *. 1024. *. 1024.));
  check Alcotest.string "KB" "8.0 KB" (Tables.fmt_bytes 8192.);
  check Alcotest.string "B" "100 B" (Tables.fmt_bytes 100.)

let test_fmt_duration () =
  check Alcotest.string "sub-second" "0.40 s" (Tables.fmt_duration 0.4);
  check Alcotest.string "minutes" "5.0 min" (Tables.fmt_duration 300.);
  check Alcotest.string "days" "2.0 days" (Tables.fmt_duration 172800.)

let test_fmt_pct () = check Alcotest.string "pct" "12.3%" (Tables.fmt_pct 12.345)

(* --- qcheck properties --- *)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"prng int always in bounds" ~count:1000
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let v = Prng.int rng n in
      v >= 0 && v < n)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile stays within data range" ~count:500
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-1000.) 1000.)) (float_range 0. 100.))
    (fun (data, p) ->
      let arr = Array.of_list data in
      let v = Stats.percentile arr p in
      let lo = Array.fold_left min arr.(0) arr and hi = Array.fold_left max arr.(0) arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram total equals observation count" ~count:300
    QCheck.(list (float_range (-100.) 100.))
    (fun data ->
      let h = Histogram.create ~edges:[| -50.; 0.; 50. |] in
      List.iter (Histogram.add h) data;
      abs_float (Histogram.total_weight h -. float_of_int (List.length data)) < 1e-9)

let () =
  Alcotest.run "nt_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split reproducible" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int_in range" `Quick test_prng_int_in;
          Alcotest.test_case "unit float range" `Quick test_prng_unit_float;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "chance probability" `Quick test_prng_chance;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "choose membership" `Quick test_prng_choose;
          QCheck_alcotest.to_alcotest prop_prng_int_bounds;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "normal mean/stddev" `Quick test_normal_mean_stddev;
          Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
          Alcotest.test_case "pareto min" `Quick test_pareto_min;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
          Alcotest.test_case "zipf popularity order" `Quick test_zipf_rank_one_most_popular;
          Alcotest.test_case "zipf n" `Quick test_zipf_n;
          Alcotest.test_case "weighted draw" `Quick test_weighted_draw;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "stddev pct" `Quick test_stats_stddev_pct;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
          QCheck_alcotest.to_alcotest prop_percentile_within_range;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "weighted" `Quick test_histogram_weighted;
          Alcotest.test_case "cdf" `Quick test_histogram_cdf;
          Alcotest.test_case "log2 edges" `Quick test_histogram_log2;
          Alcotest.test_case "empty cdf" `Quick test_histogram_empty_cdf;
          QCheck_alcotest.to_alcotest prop_histogram_total;
        ] );
      ( "trace_week",
        [
          Alcotest.test_case "week span" `Quick test_week_span;
          Alcotest.test_case "day of time" `Quick test_day_of_time;
          Alcotest.test_case "hour of time" `Quick test_hour_of_time;
          Alcotest.test_case "hour index" `Quick test_hour_index;
          Alcotest.test_case "is peak" `Quick test_is_peak;
          Alcotest.test_case "time_of" `Quick test_time_of;
          Alcotest.test_case "format" `Quick test_format;
        ] );
      ( "tables",
        [
          Alcotest.test_case "render aligned" `Quick test_table_render;
          Alcotest.test_case "fmt bytes" `Quick test_fmt_bytes;
          Alcotest.test_case "fmt duration" `Quick test_fmt_duration;
          Alcotest.test_case "fmt pct" `Quick test_fmt_pct;
        ] );
    ]
