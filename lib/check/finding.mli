(** One rule violation anchored to a source location. *)

type t = { rule : Rule.t; file : string; line : int; col : int; detail : string }

val v : Rule.t -> file:string -> line:int -> col:int -> string -> t

val of_loc : Rule.t -> Location.t -> string -> t
(** Anchor at the start of a typedtree location; [pos_fname] is the
    build-relative source path the compiler recorded. *)

val compare : t -> t -> int
(** Orders by (file, line, col, rule id, detail) so reports are
    deterministic regardless of cmt traversal order. *)

val to_string : t -> string
val to_json : t -> string
val list_to_json : t list -> string

type sink = { emit : Rule.t -> Location.t -> string -> unit; allow : Rule.t -> unit }
(** How rule passes report: [emit] records a finding (subject to the
    engine's enable set and per-rule cap), [allow] counts a violation
    suppressed by an allowlist attribute. *)
