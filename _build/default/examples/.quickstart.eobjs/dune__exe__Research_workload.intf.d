examples/research_workload.mli:
