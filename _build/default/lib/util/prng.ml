type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  create (mix64 seed)

let copy t = { state = t.state }

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t n =
  assert (n > 0);
  if n <= 1 lsl 30 then begin
    (* Rejection sampling over 30 bits to avoid modulo bias. *)
    let mask = n - 1 in
    if n land mask = 0 then bits30 t land mask
    else
      let rec draw () =
        let r = bits30 t in
        let v = r mod n in
        if r - v + (n - 1) < 0 then draw () else v
      in
      draw ()
  end
  else
    (* Large ranges: take 62 bits and reduce; bias is negligible for the
       range sizes used in this project (file offsets, inode counts). *)
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    r mod n

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let unit_float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. 0x1.0p-53

let float t x = unit_float t *. x

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = unit_float t < p

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
