lib/workload/io_patterns.ml: Array Int64 List Nt_sim Nt_util
