lib/analysis/runs.mli: Io_log
