(* Benchmark harness: regenerates every table and figure of "Passive
   NFS Tracing of Email and Research Workloads" (FAST 2003) from the
   synthetic CAMPUS / EECS simulations, printing measured values next
   to the paper's.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- LIST    # subset, e.g. table3 fig1 micro

   Experiments: table1 table2 table3 table4 table5 fig1 fig2 fig3 fig4
   fig5 nfsiod names readahead nvram blockcache hints capture faultperf
   degraded lint obs micro *)

module Tw = Nt_util.Trace_week

module Tables = struct
  include Nt_util.Tables

  (* Rendering stays in the library; only the harness owns stdout. *)
  let print ?title ~header rows = print_string (render ?title ~header rows)
end
module Summary = Nt_analysis.Summary
module Hourly = Nt_analysis.Hourly
module Io_log = Nt_analysis.Io_log
module Runs = Nt_analysis.Runs
module Seqmetric = Nt_analysis.Seqmetric
module Reorder = Nt_analysis.Reorder
module Lifetime = Nt_analysis.Lifetime
module Names = Nt_analysis.Names
module Prior = Nt_analysis.Prior_studies
module Pipeline = Nt_core.Pipeline

let scale = 0.01 (* both workloads run at 1/100 of the paper's population *)

let f1 = Tables.fmt_float ~decimals:1
let f2 = Tables.fmt_float ~decimals:2

(* ------------------------------------------------------------------ *)
(* Shared week-long simulations                                        *)
(* ------------------------------------------------------------------ *)

type week = {
  label : string;
  summary : Summary.t;
  hourly : Hourly.t;
  io : Io_log.t;  (* full trace week *)
  io_fig1 : Io_log.t;  (* Wednesday 9am-12pm, as in Figure 1 *)
  names : Names.t;
  lifetimes : Lifetime.t array;  (* weekday 9am phases, Mon-Fri *)
  records : int;
  window : float;  (* reorder window chosen for this system, seconds *)
}

let weekdays = Tw.[ Mon; Tue; Wed; Thu; Fri ]

let simulate_week ~label ~window ~simulate =
  let summary = Summary.create () in
  let hourly = Hourly.create () in
  let io = Io_log.create () in
  let io_fig1 = Io_log.create () in
  let names = Names.create () in
  let lifetimes =
    Array.of_list
      (List.map
         (fun day ->
           Lifetime.create (Lifetime.config ~phase1_start:(Tw.time_of ~day ~hour:9 ~minute:0)))
         weekdays)
  in
  let wed9 = Tw.time_of ~day:Tw.Wed ~hour:9 ~minute:0 in
  let wed12 = Tw.time_of ~day:Tw.Wed ~hour:12 ~minute:0 in
  let records = ref 0 in
  let sink r =
    let t = r.Nt_trace.Record.time in
    Array.iter (fun lt -> Lifetime.observe lt r) lifetimes;
    if t < Tw.week_end then begin
      incr records;
      Summary.observe summary r;
      Hourly.observe hourly r;
      Io_log.observe io r;
      Names.observe names r;
      if t >= wed9 && t < wed12 then Io_log.observe io_fig1 r
    end
  in
  (* Friday's 24h phase + 24h end margin runs to Sunday 9am, so the
     simulation extends half a day past the analysed trace week. *)
  let stop = Tw.week_end +. (12. *. 3600.) in
  simulate ~start:Tw.week_start ~stop ~sink;
  { label; summary; hourly; io; io_fig1; names; lifetimes; records = !records; window }

let campus_week =
  lazy
    (let t0 = Unix.gettimeofday () in
     let w =
       simulate_week ~label:"CAMPUS" ~window:0.010 ~simulate:(fun ~start ~stop ~sink ->
           ignore (Pipeline.simulate_campus ~start ~stop ~sink ()))
     in
     Printf.eprintf "[sim] CAMPUS week: %d records, %.1fs\n%!" w.records
       (Unix.gettimeofday () -. t0);
     w)

let eecs_week =
  lazy
    (let t0 = Unix.gettimeofday () in
     let w =
       simulate_week ~label:"EECS" ~window:0.005 ~simulate:(fun ~start ~stop ~sink ->
           ignore (Pipeline.simulate_eecs ~start ~stop ~sink ()))
     in
     Printf.eprintf "[sim] EECS week: %d records, %.1fs\n%!" w.records
       (Unix.gettimeofday () -. t0);
     w)

let both () = [ Lazy.force campus_week; Lazy.force eecs_week ]

let banner title = Printf.printf "\n================ %s ================\n" title

(* ------------------------------------------------------------------ *)
(* Table 1: qualitative characteristics                                *)
(* ------------------------------------------------------------------ *)

let lifetime_results w = Array.to_list (Array.map Lifetime.result w.lifetimes)

let merged_cdf results =
  let total = List.fold_left (fun acc (r : Lifetime.result) -> acc + r.deaths) 0 results in
  match results with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (edge, _) ->
          let frac =
            if total = 0 then 0.
            else
              List.fold_left
                (fun acc (r : Lifetime.result) ->
                  acc +. (Lifetime.cdf_at r edge *. float_of_int r.deaths))
                0. results
              /. float_of_int total
          in
          (edge, frac))
        first.lifetime_cdf

let cdf_value cdf x =
  let rec go last = function
    | [] -> last
    | (e, f) :: rest -> if e > x then last else go f rest
  in
  go 0. cdf

let table1 () =
  banner "Table 1: Characteristics of CAMPUS and EECS";
  let campus = Lazy.force campus_week and eecs = Lazy.force eecs_week in
  let row name f = [ name; f campus; f eecs ] in
  let lifetime_median w =
    let cdf = merged_cdf (lifetime_results w) in
    match List.find_opt (fun (_, frac) -> frac >= 0.5) cdf with
    | Some (edge, _) -> edge
    | None -> infinity
  in
  let death_mode w =
    let results = lifetime_results w in
    let avg f = List.fold_left (fun acc r -> acc +. f r) 0. results /. 5. in
    Printf.sprintf "overwrite %.0f%% / deletion %.0f%%"
      (avg (fun (r : Lifetime.result) -> r.deaths_overwrite_pct))
      (avg (fun (r : Lifetime.result) -> r.deaths_deletion_pct))
  in
  Tables.print
    ~header:[ "characteristic"; "CAMPUS (measured)"; "EECS (measured)" ]
    [
      row "data calls (% of all)" (fun w -> Tables.fmt_pct (Summary.data_ops_pct w.summary));
      row "R/W op ratio" (fun w -> f2 (Summary.read_write_op_ratio w.summary));
      row "R/W byte ratio" (fun w -> f2 (Summary.read_write_byte_ratio w.summary));
      row "peak-hours variance shrink" (fun w ->
          Printf.sprintf "%.1fx" (Hourly.variance_reduction w.hourly));
      row "mailbox byte share" (fun w ->
          Tables.fmt_pct (100. *. Names.byte_share w.names Names.Mailbox));
      row "locks among files accessed" (fun w ->
          Tables.fmt_pct (100. *. Names.unique_file_share w.names Names.Lock));
      row "median block lifetime" (fun w -> Tables.fmt_duration (lifetime_median w));
      row "dominant block death" death_mode;
    ];
  print_newline ();
  print_endline
    "Paper: CAMPUS data-dominated / EECS metadata-dominated; CAMPUS reads 3x writes /\n\
     EECS writes 1.4x reads; CAMPUS peak load tracks day-of-week; 95+% of CAMPUS data\n\
     from mailboxes; ~50% of CAMPUS files are locks; CAMPUS blocks live >=10 min, die\n\
     by overwrite; EECS blocks mostly die <1s, mixed overwrite/deletion."

(* ------------------------------------------------------------------ *)
(* Table 2: average daily activity                                     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  banner "Table 2: average daily activity (10/21-10/27, rescaled by 1/scale)";
  let measured =
    List.map
      (fun w ->
        let d = Summary.daily ~scale w.summary in
        (w.label ^ " (sim)", d))
      (both ())
  in
  let paper =
    [ Prior.campus_week; Prior.eecs_week ] @ Prior.table2_comparisons
    |> List.map (fun (p : Prior.daily_activity) ->
           ( p.label ^ " (paper)",
             {
               Summary.total_ops_m = p.total_ops_m;
               data_read_gb = p.data_read_gb;
               read_ops_m = p.read_ops_m;
               data_written_gb = p.data_written_gb;
               write_ops_m = p.write_ops_m;
               rw_byte_ratio = p.rw_byte_ratio;
               rw_op_ratio = p.rw_op_ratio;
             } ))
  in
  let rows =
    List.map
      (fun (label, (d : Summary.daily)) ->
        [
          label;
          f2 d.total_ops_m;
          f1 d.data_read_gb;
          f2 d.read_ops_m;
          f1 d.data_written_gb;
          f2 d.write_ops_m;
          f2 d.rw_byte_ratio;
          f2 d.rw_op_ratio;
        ])
      (measured @ paper)
  in
  Tables.print
    ~header:
      [ "system"; "ops (M)"; "read GB"; "read ops M"; "write GB"; "write ops M"; "R/W bytes";
        "R/W ops" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 1: reorder window vs swapped accesses                        *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  banner "Figure 1: % of accesses swapped vs reorder window (Wed 9am-12pm)";
  let windows = [ 0.; 1.; 2.; 3.; 5.; 7.; 10.; 15.; 20.; 30.; 40.; 50. ] in
  let results =
    List.map (fun w -> (w.label, Reorder.swap_percentages w.io_fig1 ~windows_ms:windows)) (both ())
  in
  let header = "window (ms)" :: List.map (fun (l, _) -> l ^ " swapped %") results in
  let rows =
    List.map
      (fun wms ->
        Printf.sprintf "%.0f" wms
        :: List.map
             (fun (_, points) ->
               match List.assoc_opt wms points with Some p -> f2 p | None -> "-")
             results)
      windows
  in
  Tables.print ~header rows;
  List.iter
    (fun (label, points) ->
      Printf.printf "%s knee: %.0f ms (paper chose %s)\n" label (Reorder.knee points)
        (if label = "CAMPUS" then "10 ms" else "5 ms"))
    results

(* ------------------------------------------------------------------ *)
(* Table 3: run patterns                                               *)
(* ------------------------------------------------------------------ *)

let table3 () =
  banner "Table 3: file access patterns (entire/sequential/random)";
  let breakdown_rows (t : Runs.table3) =
    [
      ("reads (% total)", t.reads_pct);
      ("  entire (% read)", t.read.entire_pct);
      ("  sequential (% read)", t.read.sequential_pct);
      ("  random (% read)", t.read.random_pct);
      ("writes (% total)", t.writes_pct);
      ("  entire (% write)", t.write.entire_pct);
      ("  sequential (% write)", t.write.sequential_pct);
      ("  random (% write)", t.write.random_pct);
      ("read-write (% total)", t.rw_pct);
      ("  random (% r-w)", t.rw.random_pct);
    ]
  in
  let of_paper (p : Prior.run_breakdown) : Runs.table3 =
    {
      reads_pct = p.reads_pct;
      writes_pct = p.writes_pct;
      rw_pct = p.rw_pct;
      read = { entire_pct = p.read_entire; sequential_pct = p.read_seq; random_pct = p.read_random };
      write =
        { entire_pct = p.write_entire; sequential_pct = p.write_seq; random_pct = p.write_random };
      rw = { entire_pct = p.rw_entire; sequential_pct = p.rw_seq; random_pct = p.rw_random };
      total_runs = 0;
    }
  in
  List.iter
    (fun w ->
      let raw = Runs.table3 (Runs.analyze ~window:0. ~jump_blocks:1 w.io) in
      let processed = Runs.table3 (Runs.analyze ~window:w.window ~jump_blocks:10 w.io) in
      let paper_raw, paper_proc =
        if w.label = "CAMPUS" then (Prior.campus_runs_raw, Prior.campus_runs_processed)
        else (Prior.eecs_runs_raw, Prior.eecs_runs_processed)
      in
      Printf.printf "\n--- %s (%d runs) ---\n" w.label raw.total_runs;
      let cols =
        [ breakdown_rows raw; breakdown_rows processed; breakdown_rows (of_paper paper_raw);
          breakdown_rows (of_paper paper_proc) ]
      in
      let rows =
        List.mapi
          (fun i (name, _) ->
            name :: List.map (fun col -> f1 (snd (List.nth col i))) cols)
          (List.hd cols)
      in
      Tables.print
        ~header:[ "pattern"; "sim raw"; "sim processed"; "paper raw"; "paper processed" ]
        rows)
    (both ());
  Printf.printf
    "\nHistorical comparisons (paper Table 3): NT reads %.1f%%, Sprite %.1f%%, BSD %.1f%%\n"
    Prior.nt_runs.reads_pct Prior.sprite_runs.reads_pct Prior.bsd_runs.reads_pct

(* ------------------------------------------------------------------ *)
(* Figure 2: bytes accessed vs file size                               *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  banner "Figure 2: cumulative % of bytes accessed vs file size";
  List.iter
    (fun w ->
      let runs = Runs.analyze ~window:w.window ~jump_blocks:10 w.io in
      let c = Runs.by_file_size runs in
      Printf.printf "\n--- %s ---\n" w.label;
      let rows =
        Array.to_list
          (Array.mapi
             (fun i edge ->
               [
                 Tables.fmt_bytes edge;
                 f1 c.total.(i);
                 f1 c.entire.(i);
                 f1 c.sequential.(i);
                 f1 c.random.(i);
               ])
             c.edges)
      in
      Tables.print ~header:[ "file size <="; "total %"; "entire %"; "sequential %"; "random %" ]
        rows)
    (both ());
  print_endline
    "\nPaper: CAMPUS bytes come overwhelmingly from files >1MB; EECS mostly from files\n\
     <1MB with ~30% of bytes in large entirely-read files; random + entire dominate."

(* ------------------------------------------------------------------ *)
(* Table 4 and Figure 3: block lifetimes                               *)
(* ------------------------------------------------------------------ *)

let table4 () =
  banner "Table 4: daily block life statistics (weekday 24h phases + 24h margin)";
  List.iter
    (fun w ->
      let results = lifetime_results w in
      let avg f = List.fold_left (fun acc r -> acc +. f r) 0. results /. 5. in
      let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
      let paper =
        if w.label = "CAMPUS" then Prior.campus_block_life else Prior.eecs_block_life
      in
      Printf.printf "\n--- %s ---\n" w.label;
      Tables.print
        ~header:[ "statistic"; "sim"; "paper" ]
        [
          [ "total births (5 days)";
            Printf.sprintf "%d (%.2fM rescaled)"
              (total (fun r -> r.Lifetime.births))
              (float_of_int (total (fun r -> r.Lifetime.births)) /. scale /. 1e6);
            Printf.sprintf "%.1fM" paper.births_m ];
          [ "  due to writes";
            Tables.fmt_pct (avg (fun r -> r.Lifetime.births_write_pct));
            Tables.fmt_pct paper.births_write_pct ];
          [ "  due to extension";
            Tables.fmt_pct (avg (fun r -> r.Lifetime.births_extension_pct));
            Tables.fmt_pct paper.births_extension_pct ];
          [ "total deaths (5 days)";
            Printf.sprintf "%d (%.2fM rescaled)"
              (total (fun r -> r.Lifetime.deaths))
              (float_of_int (total (fun r -> r.Lifetime.deaths)) /. scale /. 1e6);
            Printf.sprintf "%.1fM" paper.deaths_m ];
          [ "  due to overwrites";
            Tables.fmt_pct (avg (fun r -> r.Lifetime.deaths_overwrite_pct));
            Tables.fmt_pct paper.deaths_overwrite_pct ];
          [ "  due to truncates";
            Tables.fmt_pct (avg (fun r -> r.Lifetime.deaths_truncate_pct));
            Tables.fmt_pct paper.deaths_truncate_pct ];
          [ "  due to file deletion";
            Tables.fmt_pct (avg (fun r -> r.Lifetime.deaths_deletion_pct));
            Tables.fmt_pct paper.deaths_deletion_pct ];
          [ "daily end surplus";
            Tables.fmt_pct (avg (fun r -> r.Lifetime.end_surplus_pct));
            (if w.label = "CAMPUS" then "2.1%-5.9%" else "3.5%-9.5%") ];
        ])
    (both ())

let fig3 () =
  banner "Figure 3: cumulative distribution of block lifetimes";
  let campus = merged_cdf (lifetime_results (Lazy.force campus_week)) in
  let eecs = merged_cdf (lifetime_results (Lazy.force eecs_week)) in
  let interesting =
    [ 1.; 10.; 30.; 60.; 300.; 600.; 1200.; 3600.; 14400.; 43200.; 86400. ]
  in
  let rows =
    List.map
      (fun x ->
        [ Tables.fmt_duration x;
          Tables.fmt_pct (100. *. cdf_value campus x);
          Tables.fmt_pct (100. *. cdf_value eecs x) ])
      interesting
  in
  Tables.print ~header:[ "lifetime <="; "CAMPUS"; "EECS" ] rows;
  Printf.printf
    "\nPaper: EECS >50%% of blocks die within 1 s; CAMPUS few die <1 s, ~50%% live\n\
     10-15+ min with a knee near 10 min.\n";
  Printf.printf "Sim: EECS <=1s %.0f%%; CAMPUS <=1s %.0f%%, <=10min %.0f%%, <=1day %.0f%%\n"
    (100. *. cdf_value eecs 1.)
    (100. *. cdf_value campus 1.)
    (100. *. cdf_value campus 600.)
    (100. *. cdf_value campus 86400.)

(* ------------------------------------------------------------------ *)
(* Figure 4 and Table 5: hourly behaviour                              *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  banner "Figure 4: hourly operation counts and R/W ratios (trace week)";
  List.iter
    (fun w ->
      Printf.printf "\n--- %s: hourly ops (thousands) ---\n" w.label;
      let points = Array.of_list (Hourly.series w.hourly) in
      let day_names = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |] in
      for day = 0 to 6 do
        let cells =
          List.init 24 (fun h ->
              let idx = (day * 24) + h in
              if idx < Array.length points then
                Printf.sprintf "%6.1f" (float_of_int points.(idx).Hourly.ops /. 1000.)
              else "     -")
        in
        Printf.printf "%s %s\n" day_names.(day) (String.concat "" cells)
      done;
      Printf.printf "--- %s: hourly read:write op ratio ---\n" w.label;
      for day = 0 to 6 do
        let cells =
          List.init 24 (fun h ->
              let idx = (day * 24) + h in
              if idx < Array.length points then
                Printf.sprintf "%6.1f" (Hourly.rw_ratio points.(idx))
              else "     -")
        in
        Printf.printf "%s %s\n" day_names.(day) (String.concat "" cells)
      done)
    (both ());
  print_endline
    "\nPaper: CAMPUS shows a strong weekday 9am-6pm cycle; EECS is noisier with\n\
     off-peak spikes; R/W ratio is steady at peak and spikes off-peak."

let table5 () =
  banner "Table 5: average hourly activity, all hours vs peak (9am-6pm Mon-Fri)";
  List.iter
    (fun w ->
      let all = Hourly.all_hours w.hourly in
      let peak = Hourly.peak_hours w.hourly in
      let row name (a : Hourly.variance_row) (p : Hourly.variance_row) =
        [ name;
          Printf.sprintf "%s (%.0f%%)" (f1 a.mean) a.stddev_pct;
          Printf.sprintf "%s (%.0f%%)" (f1 p.mean) p.stddev_pct ]
      in
      Printf.printf "\n--- %s (mean, stddev as %% of mean) ---\n" w.label;
      Tables.print
        ~header:[ "statistic"; "all hours"; "peak hours" ]
        [
          row "total ops (1000s)" all.total_ops_k peak.total_ops_k;
          row "data read (MB)" all.data_read_mb peak.data_read_mb;
          row "read ops (1000s)" all.read_ops_k peak.read_ops_k;
          row "data written (MB)" all.data_written_mb peak.data_written_mb;
          row "write ops (1000s)" all.write_ops_k peak.write_ops_k;
          row "R/W op ratio" all.rw_op_ratio peak.rw_op_ratio;
        ];
      Printf.printf "variance reduction at peak: %.1fx (paper: >=4x for CAMPUS)\n"
        (Hourly.variance_reduction w.hourly))
    (both ())

(* ------------------------------------------------------------------ *)
(* Figure 5: sequentiality metric                                      *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  banner "Figure 5: sequentiality metric vs bytes accessed per run";
  List.iter
    (fun w ->
      let c = Seqmetric.analyze ~window:w.window w.io in
      Printf.printf "\n--- %s ---\n" w.label;
      let cell v = if Float.is_nan v then "-" else f2 v in
      let rows =
        Array.to_list
          (Array.mapi
             (fun i edge ->
               [
                 Tables.fmt_bytes edge;
                 cell c.read_allowed.(i);
                 cell c.read_strict.(i);
                 cell c.write_allowed.(i);
                 cell c.write_strict.(i);
                 f1 c.cum_total_runs.(i);
                 f1 c.cum_read_runs.(i);
                 f1 c.cum_write_runs.(i);
               ])
             c.bucket_edges)
      in
      Tables.print
        ~header:
          [ "run bytes <="; "rd c=10"; "rd c=1"; "wr c=10"; "wr c=1"; "cum runs %"; "cum rd %";
            "cum wr %" ]
        rows)
    (both ());
  print_endline
    "\nPaper: long CAMPUS reads are highly sequential (metric near 1); long writes\n\
     hover near 0.6 with c=10; EECS writes are seek-prone; small jumps (c=10 vs\n\
     c=1) lift the metric substantially."

(* ------------------------------------------------------------------ *)
(* nfsiod reordering experiment (section 4.1.5)                        *)
(* ------------------------------------------------------------------ *)

let nfsiod () =
  banner "Section 4.1.5: nfsiod count vs observed reordering (isolated client/server)";
  let rows =
    List.map
      (fun k ->
        let server = Nt_sim.Server.create ~fsid:9 ~ip:(Nt_net.Ip_addr.v 10 9 0 1) () in
        let fs = Nt_sim.Server.fs server in
        let root = Nt_sim.Sim_fs.root fs in
        let node =
          Nt_sim.Sim_fs.create_file fs ~time:0. ~parent:root ~name:"big.dat" ~mode:0o644 ~uid:0
            ~gid:0
        in
        Nt_sim.Sim_fs.write fs ~time:0. node ~offset:0L ~count:(64 * 1024 * 1024);
        let io = Io_log.create () in
        let max_delay = ref 0. in
        let last = ref neg_infinity in
        (* The monitor sees packets in wire-time order, so sort the
           emitted records the way the main pipeline does. *)
        let sorter = Nt_sim.Record_sorter.create (Io_log.observe io) in
        let sink r =
          Nt_sim.Record_sorter.push sorter r;
          let t = r.Nt_trace.Record.time in
          if t < !last then max_delay := Float.max !max_delay (!last -. t);
          if t > !last then last := t
        in
        let cfg =
          { (Nt_sim.Client.default_config ~ip:(Nt_net.Ip_addr.v 10 9 0 2) ~version:3) with
            nfsiods = k }
        in
        let client =
          Nt_sim.Client.create cfg ~server ~sink
            ~rng:(Nt_util.Prng.create (Int64.of_int (100 + k)))
        in
        let s = Nt_sim.Client.session client ~time:1000. ~uid:0 ~gid:0 in
        (match Nt_sim.Client.lookup_path s [ "big.dat" ] with
        | Some fh -> ignore (Nt_sim.Client.read_whole s fh)
        | None -> ());
        Nt_sim.Record_sorter.flush sorter;
        let ooo = 100. *. Reorder.out_of_order_fraction io in
        [ string_of_int k; f2 ooo; Printf.sprintf "%.3f s" !max_delay ])
      [ 1; 2; 4; 8; 16 ]
  in
  Tables.print ~header:[ "nfsiods"; "% out-of-order"; "max delay" ] rows;
  print_endline
    "Paper: one nfsiod -> no reordering; more nfsiods -> up to ~10% of packets\n\
     reordered, with delays up to 1 second."

(* ------------------------------------------------------------------ *)
(* Section 6.3: names predict attributes                               *)
(* ------------------------------------------------------------------ *)

let names () =
  banner "Section 6.3: predicting file attributes from names";
  List.iter
    (fun w ->
      let n = w.names in
      Printf.printf "\n--- %s ---\n" w.label;
      Printf.printf
        "files created+deleted in week: %d; locks among them: %.1f%% (paper: 96%% CAMPUS / 8%% EECS)\n"
        (Names.created_deleted_total n)
        (Names.lock_created_deleted_pct n);
      let pct v = if Float.is_nan v then "-" else Tables.fmt_pct (100. *. v) in
      Printf.printf "lock lifetimes < 0.40s: %s (paper: 99.9%%)\n"
        (pct (Names.lock_lifetime_under n 0.40));
      Printf.printf "composer files <= 8KB: %s (paper: 98%%); <= 40KB: %s (paper: 99.9%%)\n"
        (pct (Names.composer_size_under n 8192.))
        (pct (Names.composer_size_under n 40960.));
      Printf.printf "composer lifetimes < 1 min: %s (paper: 45%%)\n"
        (pct (Names.composer_lifetime_under n 60.));
      let rows =
        List.map
          (fun (cat, (s : Names.category_stats)) ->
            [
              Names.category_to_string cat;
              string_of_int s.files_seen;
              string_of_int s.created_deleted;
              Tables.fmt_bytes s.median_size;
              (if Float.is_nan s.median_lifetime then "-"
               else Tables.fmt_duration s.median_lifetime);
              Tables.fmt_pct s.read_only_pct;
              Tables.fmt_pct s.write_only_pct;
            ])
          (Names.stats n)
      in
      Tables.print
        ~header:
          [ "category"; "files"; "created+deleted"; "median size"; "median life"; "read-only";
            "write-only" ]
        rows;
      let p = Names.predict n in
      Printf.printf
        "prediction (train 1st half / test 2nd half, %d files): size %.1f%%, lifetime %.1f%%, pattern %.1f%%\n"
        p.tested (100. *. p.size_accuracy)
        (100. *. p.lifetime_accuracy)
        (100. *. p.pattern_accuracy))
    (both ())

(* ------------------------------------------------------------------ *)
(* Section 6.4: read-ahead heuristic experiment                        *)
(* ------------------------------------------------------------------ *)

let readahead () =
  banner "Section 6.4: sequentiality-metric read-ahead vs fragile heuristic";
  let module Ra = Nt_sim.Readahead in
  let fractions = [ 0.0; 0.05; 0.10; 0.15; 0.20 ] in
  let rows =
    List.map
      (fun frac ->
        let fragile = Ra.run ~reorder_fraction:frac Ra.Fragile in
        let metric = Ra.run ~reorder_fraction:frac Ra.Metric in
        let none = Ra.run ~reorder_fraction:frac Ra.No_readahead in
        [
          Tables.fmt_pct (100. *. frac);
          Printf.sprintf "%d" fragile.reordered;
          Printf.sprintf "%.3f s" none.total_time;
          Printf.sprintf "%.3f s" fragile.total_time;
          Printf.sprintf "%.3f s" metric.total_time;
          Tables.fmt_pct (Ra.speedup ~baseline:fragile metric);
        ])
      fractions
  in
  Tables.print
    ~header:
      [ "reordered"; "ooo reqs"; "no readahead"; "fragile"; "seq-metric"; "metric vs fragile" ]
    rows;
  print_endline
    "Paper: with ~10% of requests reordered, the sequentiality-metric heuristic\n\
     improved large sequential transfers by more than 5% end to end."

(* ------------------------------------------------------------------ *)
(* Capture path validation (sections 2, 4.1.4)                         *)
(* ------------------------------------------------------------------ *)

let capture () =
  banner "Capture path: workload -> packets -> pcap -> tracer -> records";
  let start = Tw.time_of ~day:Tw.Wed ~hour:9 ~minute:0 in
  let stop = start +. 7200. in
  let run label ~loss ~pcap_of =
    let buf = Buffer.create (64 * 1024 * 1024) in
    let writer = Nt_net.Pcap.writer_to_buffer buf in
    let stats : Pipeline.pcap_stats = pcap_of ~writer in
    let cap_stats, records = Pipeline.capture_pcap (Buffer.contents buf) in
    Printf.printf "\n--- %s (2h, monitor loss %.0f%%) ---\n" label (100. *. loss);
    Printf.printf "simulated records: %d; packets written: %d; dropped at monitor: %d\n"
      stats.run.records stats.packets_written stats.packets_dropped;
    Printf.printf "capture: %s\n" (Nt_trace.Capture.stats_to_string cap_stats);
    Printf.printf "records recovered: %d (%.1f%% of simulated)\n" (List.length records)
      (100. *. float_of_int (List.length records) /. float_of_int (max 1 stats.run.records));
    let s = Summary.create () in
    List.iter (Summary.observe s) records;
    Printf.printf "recovered R/W op ratio: %.2f; data read %s; written %s\n"
      (Summary.read_write_op_ratio s)
      (Tables.fmt_bytes (Summary.bytes_read s))
      (Tables.fmt_bytes (Summary.bytes_written s))
  in
  let campus_cfg = { Nt_workload.Email.default_config with users = 30 } in
  run "CAMPUS (NFSv3/TCP jumbo)" ~loss:0.03 ~pcap_of:(fun ~writer ->
      Pipeline.campus_to_pcap ~config:campus_cfg ~monitor_loss:0.03 ~start ~stop ~writer ());
  let eecs_cfg = { Nt_workload.Research.default_config with users = 20 } in
  run "EECS (NFSv2+v3/UDP)" ~loss:0.0 ~pcap_of:(fun ~writer ->
      Pipeline.eecs_to_pcap ~config:eecs_cfg ~monitor_loss:0.0 ~start ~stop ~writer ());
  print_endline
    "\nPaper 4.1.4: the CAMPUS mirror port lost up to ~10% of packets under load;\n\
     losing a call loses its reply too (orphan replies are undecodable)."

(* ------------------------------------------------------------------ *)
(* Fault layer: overhead when disabled, differential run when enabled  *)
(* ------------------------------------------------------------------ *)

let bench_frame () =
  let encoded_call =
    let e = Nt_xdr.Encode.create () in
    Nt_rpc.Rpc_msg.encode_call e
      {
        xid = 7;
        rpcvers = 2;
        prog = 100003;
        vers = 3;
        proc = 6;
        cred = Auth_unix { stamp = 0; machine = "c"; uid = 1; gid = 1; gids = [] };
        verf = Auth_null;
      };
    Nt_nfs.V3.encode_call e (Nt_nfs.Ops.Read { fh = Nt_nfs.Fh.make ~fsid:1 ~fileid:42; offset = 8192L; count = 8192 });
    Nt_xdr.Encode.contents e
  in
  Nt_net.Frame.encode
    (Nt_net.Frame.udp
       ~src_ip:(Nt_net.Ip_addr.v 10 0 0 1)
       ~dst_ip:(Nt_net.Ip_addr.v 10 0 0 2)
       ~src_port:700 ~dst_port:2049 encoded_call)

let faultperf () =
  banner "Fault layer overhead: pcap write path with injection off vs on";
  let module Fault = Nt_sim.Fault in
  let frame = bench_frame () in
  let n = 200_000 in
  let time_run f =
    (* Best of 3 to shake warm-up and GC noise out of the comparison. *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let buf = Buffer.create (n * (String.length frame + 16)) in
      let writer = Nt_net.Pcap.writer_to_buffer buf in
      let t0 = Unix.gettimeofday () in
      f writer;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let raw =
    time_run (fun writer ->
        for i = 0 to n - 1 do
          Nt_net.Pcap.write writer ~time:(float_of_int i *. 1e-4) frame
        done)
  in
  let through plan =
    time_run (fun writer ->
        let inj = Fault.create plan in
        for i = 0 to n - 1 do
          Fault.wrap_writer inj writer ~time:(float_of_int i *. 1e-4) frame
        done)
  in
  let off = through Fault.none in
  let on = through Fault.campus_burst in
  let mpps t = float_of_int n /. t /. 1e6 in
  let vs t = 100. *. ((t /. raw) -. 1.) in
  Tables.print
    ~header:[ "write path"; "time (ms)"; "Mpkt/s"; "vs raw" ]
    [
      [ "raw Pcap.write"; f2 (raw *. 1e3); f2 (mpps raw); "-" ];
      [ "fault layer disabled"; f2 (off *. 1e3); f2 (mpps off); Printf.sprintf "%+.1f%%" (vs off) ];
      [ "fault layer on (campus_burst)"; f2 (on *. 1e3); f2 (mpps on);
        Printf.sprintf "%+.1f%%" (vs on) ];
    ];
  Printf.printf "\ndisabled-layer overhead: %.1f%% (budget: <= 5%%)\n" (vs off)

let degraded () =
  banner "Degraded vs clean capture (section 4.1.4 differential)";
  let start = Tw.time_of ~day:Tw.Wed ~hour:9 ~minute:0 in
  let stop = start +. 3600. in
  let show label (d : Pipeline.degraded_run) =
    Printf.printf "\n--- %s (1h, plan: campus_burst) ---\n" label;
    Printf.printf "injected: %s\n" (Nt_sim.Fault.counts_to_string d.faults);
    Printf.printf "clean:    %s\n" (Nt_trace.Capture.stats_to_string d.clean);
    Printf.printf "degraded: %s\n" (Nt_trace.Capture.stats_to_string d.degraded);
    let clean_n = List.length d.clean_records in
    let degraded_n = List.length d.degraded_records in
    Printf.printf "records: clean %d, degraded %d (%.1f%% recovered)\n" clean_n degraded_n
      (100. *. float_of_int degraded_n /. float_of_int (max 1 clean_n));
    let ratio records =
      let s = Summary.create () in
      List.iter (Summary.observe s) records;
      Summary.read_write_op_ratio s
    in
    let cr = ratio d.clean_records and dr = ratio d.degraded_records in
    Printf.printf "R/W op ratio: clean %.2f, degraded %.2f (drift %+.1f%%)\n" cr dr
      (100. *. ((dr /. cr) -. 1.))
  in
  let campus_cfg = { Nt_workload.Email.default_config with users = 30 } in
  show "CAMPUS (TCP)"
    (Pipeline.campus_degraded ~config:campus_cfg ~plan:Nt_sim.Fault.campus_burst ~start ~stop ());
  let eecs_cfg = { Nt_workload.Research.default_config with users = 20 } in
  show "EECS (UDP)"
    (Pipeline.eecs_degraded ~config:eecs_cfg ~plan:Nt_sim.Fault.campus_burst ~start ~stop ());
  print_endline
    "\nPaper 4.1.4: bursty mirror-port loss biases analyses only slightly; the\n\
     differential run quantifies that bias instead of assuming it."

(* ------------------------------------------------------------------ *)
(* nfslint throughput on a million-record stream                       *)
(* ------------------------------------------------------------------ *)

(* Shared synthetic lint workload: a pool of live handles, each
   introduced by one LOOKUP then hit with alternating reads and writes.
   Used by both the lint throughput bench and the nt_obs overhead
   gate, so the two measure the same stream. *)
let lint_stream n : Nt_trace.Record.t Seq.t =
  let module Ops = Nt_nfs.Ops in
  let module Types = Nt_nfs.Types in
  let pool = 10_000 (* live file handles rotating through the stream *) in
  let per_file = 8 (* one LOOKUP introduces each handle, then 7 I/Os *) in
  let dir = Nt_nfs.Fh.make ~fsid:1 ~fileid:1 in
  let fhs = Array.init pool (fun i -> Nt_nfs.Fh.make ~fsid:1 ~fileid:(100 + i)) in
  let attr = { Types.default_fattr with size = 1_073_741_824L } in
  let record i : Nt_trace.Record.t =
    let time = 1000. +. (1e-4 *. float_of_int i) in
    let file = i / per_file mod pool in
    let fh = fhs.(file) in
    let call, result =
      if i mod per_file = 0 then
        ( Ops.Lookup { dir; name = Printf.sprintf "f%05d" file },
          Ops.R_lookup { fh; obj = Some attr; dir = None } )
      else if i land 1 = 0 then
        let offset = Int64.of_int (8192 * (i mod 64)) in
        (Ops.Read { fh; offset; count = 8192 }, Ops.R_read { attr = Some attr; count = 8192; eof = false })
      else
        let offset = Int64.of_int (8192 * (i mod 64)) in
        (Ops.Write { fh; offset; count = 8192; stable = Types.File_sync },
         Ops.R_write { attr = Some attr; count = 8192; committed = Types.File_sync })
    in
    {
      time;
      reply_time = Some (time +. 0.0005);
      client = Nt_net.Ip_addr.v 10 1 0 (20 + (i mod 4));
      server = Nt_net.Ip_addr.v 10 1 1 2;
      version = 3;
      xid = i land 0xFFFFFFFF;
      uid = 1042;
      gid = 100;
      call;
      result = Some (Ok result);
    }
  in
  Seq.init n record

let lint () =
  banner "nfslint: streaming throughput over a 1M-record synthetic trace";
  let n = 1_000_000 in
  let t0 = Unix.gettimeofday () in
  let engine = Nt_lint.Engine.run Nt_lint.Engine.default_config (lint_stream n) in
  let errors = Nt_lint.Engine.severity_count engine Nt_lint.Rule.Error in
  let warns = Nt_lint.Engine.severity_count engine Nt_lint.Rule.Warn in
  let dt = Unix.gettimeofday () -. t0 in
  Tables.print
    ~header:[ "statistic"; "value" ]
    [
      [ "records"; string_of_int (Nt_lint.Engine.records_seen engine) ];
      [ "wall time"; Printf.sprintf "%.2f s" dt ];
      [ "throughput"; Printf.sprintf "%.0f records/s" (float_of_int n /. dt) ];
      [ "findings"; Printf.sprintf "%d error(s), %d warning(s)" errors warns ];
      [ "tracked state entries"; string_of_int (Nt_lint.Engine.tracked engine) ];
    ];
  Printf.printf
    "\nState is O(active XIDs + live fhs), not O(records): %d entries after %d records\n\
     (capped at max_tracked=%d per table; a week-long trace lints in constant memory).\n"
    (Nt_lint.Engine.tracked engine) n Nt_lint.Engine.default_config.Nt_lint.Engine.max_tracked

(* ------------------------------------------------------------------ *)
(* nt_obs overhead gate: instrumented vs disabled vs compiled-out      *)
(* ------------------------------------------------------------------ *)

let obs_overhead () =
  banner "nt_obs overhead: lint workload instrumented vs disabled vs compiled-out";
  let module Obs = Nt_obs.Obs in
  let n =
    (* Smoke mode for CI: NT_OBS_BENCH_RECORDS shrinks the stream. *)
    match Sys.getenv_opt "NT_OBS_BENCH_RECORDS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 1_000_000)
    | None -> 1_000_000
  in
  let cfg = Nt_lint.Engine.default_config in
  (* Best of 3 per variant; severity_count forces the settle so the
     deferred protocol checks land inside the timed region. The lint
     engine's default registry is Obs.null, so the no-registry run is
     the compiled-out analog: instrumentation reduced to dead branches.
     The enabled arm carries the full v2 telemetry load — resource
     sampler ticked per record plus an attached trace timeline — so the
     5% budget covers everything a --trace-out production run pays. *)
  let last_sampler = ref None in
  let run_once make_obs =
    let obs, tick = make_obs () in
    let stream =
      match tick with
      | None -> lint_stream n
      | Some f ->
          Seq.map
            (fun r ->
              f ();
              r)
            (lint_stream n)
    in
    (* Level the heap before every timed run so major-GC phase luck
       doesn't land on one variant and not its pair. *)
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let engine =
      match obs with
      | None -> Nt_lint.Engine.run cfg stream
      | Some o -> Nt_lint.Engine.run ~obs:o cfg stream
    in
    ignore (Nt_lint.Engine.severity_count engine Nt_lint.Rule.Error);
    (Unix.gettimeofday () -. t0, obs)
  in
  let make_compiled_out () = (None, None) in
  let make_disabled () = (Some (Obs.create ~enabled:false ()), None) in
  let make_enabled () =
    let obs = Obs.create () in
    let tl = Nt_obs.Timeline.create () in
    Nt_obs.Timeline.attach tl obs;
    let sampler = Nt_obs.Sampler.create ~interval:0.25 obs in
    last_sampler := Some sampler;
    (Some obs, Some (fun () -> Nt_obs.Sampler.tick sampler))
  in
  (* Rounds interleave the variants rather than timing each one's
     best-of block back to back: a systemic slow phase on a shared
     machine then lands on all three instead of poisoning one. The
     gate statistic is the median over rounds of the per-round
     enabled/disabled ratio — pairing cancels round-level machine
     drift, and the median (unlike min-of-N) is not inflated by one
     lucky-fast baseline run, which is the difference between a 5%
     gate and a coin flip. *)
  let variants = [| make_compiled_out; make_disabled; make_enabled |] in
  let rounds = if n < 1_000_000 then 7 else 5 in
  let times = Array.make_matrix 3 rounds 0.0 in
  let snap = ref None in
  ignore (run_once make_compiled_out : float * Obs.t option);
  for r = 0 to rounds - 1 do
    Array.iteri
      (fun i make ->
        let dt, obs = run_once make in
        times.(i).(r) <- dt;
        if i = 2 then Option.iter (fun o -> snap := Some (Obs.snapshot o)) obs)
      variants
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let ratio num den = median (Array.init rounds (fun r -> num.(r) /. den.(r))) in
  let compiled_out = median times.(0)
  and disabled = median times.(1)
  and enabled = median times.(2) in
  let snap = !snap in
  let rss_hwm, heap_words =
    match !last_sampler with
    | Some s ->
        let smp = Nt_obs.Sampler.sample_now s in
        (smp.Nt_obs.Sampler.rss_hwm_bytes, smp.Nt_obs.Sampler.heap_words)
    | None -> (0, 0)
  in
  let rate t = float_of_int n /. t in
  let enabled_vs_disabled = 100. *. (ratio times.(2) times.(1) -. 1.) in
  let disabled_vs_compiled = 100. *. (ratio times.(1) times.(0) -. 1.) in
  let pass = enabled_vs_disabled <= 5.0 in
  Tables.print
    ~header:[ "variant"; "time (s)"; "records/s"; "overhead" ]
    [
      [ "compiled-out (Obs.null default)"; f2 compiled_out;
        Printf.sprintf "%.0f" (rate compiled_out); "-" ];
      [ "registry disabled"; f2 disabled; Printf.sprintf "%.0f" (rate disabled);
        Printf.sprintf "%+.1f%% vs compiled-out" disabled_vs_compiled ];
      [ "registry enabled"; f2 enabled; Printf.sprintf "%.0f" (rate enabled);
        Printf.sprintf "%+.1f%% vs disabled" enabled_vs_disabled ];
    ];
  Printf.printf "\nenabled-vs-disabled overhead: %+.1f%% (budget <= 5%%): %s\n"
    enabled_vs_disabled
    (if pass then "PASS" else "FAIL");
  let snapshot_json = match snap with Some s -> Obs.to_json s | None -> "null" in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": %S,\n\
    \  \"workload\": \"lint_stream\",\n\
    \  \"records\": %d,\n\
    \  \"seconds\": {\"compiled_out\": %.6f, \"disabled\": %.6f, \"enabled\": %.6f},\n\
    \  \"records_per_second\": {\"compiled_out\": %.0f, \"disabled\": %.0f, \"enabled\": %.0f},\n\
    \  \"overhead_pct\": {\"enabled_vs_disabled\": %.3f, \"disabled_vs_compiled_out\": %.3f},\n\
    \  \"budget_pct\": 5.0,\n\
    \  \"heap_words\": %d,\n\
    \  \"rss_hwm_bytes\": %d,\n\
    \  \"pass\": %b,\n\
    \  \"snapshot\": %s}\n"
    Nt_formats.Formats.bench_obs n compiled_out disabled enabled (rate compiled_out)
    (rate disabled) (rate enabled)
    enabled_vs_disabled disabled_vs_compiled heap_words rss_hwm pass snapshot_json;
  close_out oc;
  print_endline "wrote BENCH_obs.json";
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* nt_par speedup gate: sharded analyses across domains vs sequential  *)
(* ------------------------------------------------------------------ *)

let par_speedup () =
  banner "nt_par: sharded analysis engine, 4 domains vs sequential";
  let module Obs = Nt_obs.Obs in
  let n =
    (* Smoke mode for CI: NT_PAR_BENCH_RECORDS shrinks the stream. *)
    match Sys.getenv_opt "NT_PAR_BENCH_RECORDS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 1_000_000)
    | None -> 1_000_000
  in
  let min_speedup =
    match Sys.getenv_opt "NT_PAR_BENCH_MIN_SPEEDUP" with
    | Some s -> ( try float_of_string s with Failure _ -> 2.0)
    | None -> 2.0
  in
  (* Re-time the shared lint workload across a synthetic week so the
     summary and hourly passes see a realistic trace span. *)
  let span = 7. *. 86400. in
  let records =
    lint_stream n
    |> Seq.mapi (fun i (r : Nt_trace.Record.t) ->
           let time = 1000. +. (span *. float_of_int i /. float_of_int n) in
           { r with time; reply_time = Some (time +. 0.0005) })
    |> Array.of_seq
  in
  let sections = [ `Summary; `Runs; `Names; `Hourly ] in
  (* Best of 3 per jobs setting; the rendered report is kept so the two
     settings can be compared byte for byte. *)
  let time_jobs jobs =
    let best = ref infinity and snapshot = ref None and report = ref "" in
    for _ = 1 to 3 do
      let obs = Obs.create () in
      let t0 = Unix.gettimeofday () in
      let out = Nt_par.Report.run ~obs ~jobs ~sections records in
      let dt = Unix.gettimeofday () -. t0 in
      (* Keep the snapshot from the best iteration so its span totals
         describe the same run as the reported wall time. *)
      if dt < !best then begin
        best := dt;
        snapshot := Some (Obs.snapshot obs);
        report := String.concat "\n" (List.map snd out)
      end
    done;
    (!best, !report, !snapshot)
  in
  let t1, r1, snap1 = time_jobs 1 in
  let t4, r4, snap = time_jobs 4 in
  let speedup = t1 /. t4 in
  let identical = String.equal r1 r4 in
  let domains = Domain.recommended_domain_count () in
  (* The >= 2x gate only means something with real parallel hardware;
     on fewer cores the run still reports and checks determinism. *)
  let enforced = domains >= 4 in
  let skip_reason =
    if enforced then None
    else
      Some
        (Printf.sprintf "available_domains=%d < 4: the >= %.1fx speedup gate is disarmed"
           domains min_speedup)
  in
  (match skip_reason with
  | Some reason ->
      prerr_endline ("WARNING: nt_par speedup gate NOT enforced -- " ^ reason);
      prerr_endline "WARNING: rerun on a machine with >= 4 cores for an enforceable result"
  | None -> ());
  (* Per-pass throughput from the jobs=1 snapshot: span totals there are
     sequential seconds over the whole stream, so n / total is
     single-core records/s for that pass.  Each pass is gated against
     the checked-in BENCH_par.json baseline (with slack for machine
     variance) so a regression in one pass fails the bench even when
     the aggregate hides it behind the others. *)
  let pass_rates =
    match snap1 with
    | None -> []
    | Some s ->
        List.filter_map
          (fun (st : Obs.span_stat) ->
            let prefix = "par.pass." in
            let pl = String.length prefix in
            if
              String.length st.Obs.path > pl
              && String.equal (String.sub st.Obs.path 0 pl) prefix
              && st.Obs.total_s > 0.
            then
              Some
                ( String.sub st.Obs.path pl (String.length st.Obs.path - pl),
                  float_of_int n /. st.Obs.total_s )
            else None)
          s.Obs.spans
  in
  (* jobs=1 records/s over the 1M-record workload that produced the
     checked-in BENCH_par.json: per-pass minima across repeated runs,
     deliberately conservative because a shared single-core container
     swings several-fold run to run.  The gate exists to catch
     order-of-magnitude per-pass regressions, not percent drift. *)
  let pass_baseline =
    [
      ("hourly", 20_054_143.); ("io_log", 569_525.); ("names", 1_070_555.);
      ("runs", 5_481_797.); ("summary", 5_767_697.);
    ]
  in
  let pass_slack =
    match Sys.getenv_opt "NT_PAR_BENCH_PASS_SLACK" with
    | Some s -> ( try max 1.0 (float_of_string s) with Failure _ -> 1.5)
    | None -> 1.5
  in
  (* Smoke-sized streams (NT_PAR_BENCH_RECORDS) are too noisy to gate. *)
  let pass_gate_enforced = n >= 1_000_000 in
  let regressed =
    List.filter_map
      (fun (name, base) ->
        match List.assoc_opt name pass_rates with
        | Some rate when rate < base /. pass_slack -> Some name
        | _ -> None)
      pass_baseline
  in
  let pass =
    identical
    && ((not enforced) || speedup >= min_speedup)
    && ((not pass_gate_enforced) || regressed = [])
  in
  let rate t = float_of_int n /. t in
  Tables.print
    ~header:[ "jobs"; "time (s)"; "records/s" ]
    [
      [ "1 (sequential)"; f2 t1; Printf.sprintf "%.0f" (rate t1) ];
      [ "4 (sharded)"; f2 t4; Printf.sprintf "%.0f" (rate t4) ];
    ];
  Printf.printf
    "\nspeedup at 4 domains: %.2fx (gate >= %.1fx %s on %d available core(s))\n\
     reports byte-identical across jobs settings: %s\n"
    speedup min_speedup
    (if enforced then "ENFORCED" else "not enforced")
    domains
    (if identical then "yes" else "NO");
  if pass_rates <> [] then begin
    Printf.printf "\nper-pass throughput at jobs=1 (gate: >= baseline / %.2f, %s):\n" pass_slack
      (if pass_gate_enforced then "ENFORCED" else "not enforced on a smoke-sized stream");
    Tables.print
      ~header:[ "pass"; "records/s"; "baseline"; "verdict" ]
      (List.map
         (fun (name, base) ->
           match List.assoc_opt name pass_rates with
           | Some r ->
               [
                 name; Printf.sprintf "%.0f" r; Printf.sprintf "%.0f" base;
                 (if r < base /. pass_slack then "REGRESSED" else "ok");
               ]
           | None -> [ name; "-"; Printf.sprintf "%.0f" base; "no span" ])
         pass_baseline)
  end;
  let snapshot_json = match snap with Some s -> Obs.to_json s | None -> "null" in
  let end_smp = Nt_obs.Sampler.sample_now (Nt_obs.Sampler.create Obs.null) in
  let json_rates l =
    "{"
    ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %.0f" k v) l)
    ^ "}"
  in
  let skip_json = match skip_reason with None -> "null" | Some r -> Printf.sprintf "%S" r in
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": %S,\n\
    \  \"workload\": \"lint_stream/week\",\n\
    \  \"records\": %d,\n\
    \  \"available_domains\": %d,\n\
    \  \"seconds\": {\"jobs1\": %.6f, \"jobs4\": %.6f},\n\
    \  \"records_per_second\": {\"jobs1\": %.0f, \"jobs4\": %.0f},\n\
    \  \"speedup\": %.3f,\n\
    \  \"min_speedup\": %.2f,\n\
    \  \"gate_enforced\": %b,\n\
    \  \"skip_reason\": %s,\n\
    \  \"pass_records_per_second\": %s,\n\
    \  \"pass_baseline_records_per_second\": %s,\n\
    \  \"pass_slack\": %.2f,\n\
    \  \"pass_gate_enforced\": %b,\n\
    \  \"pass_regressed\": [%s],\n\
    \  \"reports_identical\": %b,\n\
    \  \"heap_words\": %d,\n\
    \  \"rss_hwm_bytes\": %d,\n\
    \  \"pass\": %b,\n\
    \  \"snapshot\": %s}\n"
    Nt_formats.Formats.bench_par n domains t1 t4 (rate t1) (rate t4) speedup min_speedup
    enforced skip_json
    (json_rates (List.sort compare pass_rates))
    (json_rates pass_baseline) pass_slack pass_gate_enforced
    (String.concat ", " (List.map (Printf.sprintf "%S") regressed))
    identical end_smp.Nt_obs.Sampler.heap_words end_smp.Nt_obs.Sampler.rss_hwm_bytes pass
    snapshot_json;
  close_out oc;
  print_endline "wrote BENCH_par.json";
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* nfsmon endurance soak: bounded memory over a multi-day feed         *)
(* ------------------------------------------------------------------ *)

let mon_soak () =
  banner "nfsmon soak: bounded windows, eviction, and conservation over days of feed";
  let module Obs = Nt_obs.Obs in
  let module Service = Nt_mon.Service in
  let module Feed = Nt_mon.Feed in
  let module Ring = Nt_mon.Ring in
  let module Win = Nt_mon.Win in
  let n =
    (* Smoke mode for CI: NT_MON_BENCH_RECORDS shrinks the stream. *)
    match Sys.getenv_opt "NT_MON_BENCH_RECORDS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 1_000_000)
    | None -> 1_000_000
  in
  (* Re-time the shared lint workload across three simulated days and
     fan it out over far more clients and uids than the per-window caps
     admit, so the soak proves eviction instead of merely not needing
     it. *)
  let span = 3. *. 86400. in
  let records =
    lint_stream n
    |> Seq.mapi (fun i (r : Nt_trace.Record.t) ->
           let time = 1000. +. (span *. float_of_int i /. float_of_int n) in
           {
             r with
             time;
             reply_time = Some (time +. 0.0005);
             client = Nt_net.Ip_addr.v 10 (i land 3) (i / 4 mod 256) (1 + (i mod 251));
             uid = i mod 1000;
           })
  in
  let caps = { Win.client_cap = 64; uid_cap = 64; fs_cap = 16; proc_cap = 32 } in
  let config =
    {
      Service.default_config with
      ring = { Ring.window_s = 600.; windows = 6; caps; summary_cap = caps };
      report_every = 12;
      json = true;
      checkpoint_path = None;
    }
  in
  let obs = Obs.create () in
  let reports = ref 0 in
  let svc =
    Service.create ~obs
      ~sleep:(fun _ -> ())
      ~emit:(fun _ -> incr reports)
      config
      (Feed.of_records records)
  in
  let t0 = Unix.gettimeofday () in
  let warm_peak = ref 0 in
  (* All heap probes go through the service's resource sampler: one
     audited path instead of scattered Gc.quick_stat calls, and the
     readings land in the /series ring and rt.* gauges for free.
     Each gated probe compacts first so heap_words reads live state,
     not chunk-expansion timing: top_heap_words moves in whole heap
     chunks, and at smoke sizes a single expansion drifting across the
     warm mark swings the ratio more than real growth does. The warm
     probe sits at the halfway point — smoke-sized streams are not yet
     past ring warm-up at a quarter, and flat-over-the-back-half is the
     same boundedness claim. *)
  let compacted_probe () =
    Gc.compact ();
    Nt_obs.Sampler.sample_now (Service.sampler svc)
  in
  let rec loop () =
    match Service.step svc with
    | `Continue ->
        if !warm_peak = 0 && Service.observed svc >= n / 2 then
          warm_peak := (compacted_probe ()).Nt_obs.Sampler.heap_words;
        loop ()
    | `Stopped -> ()
  in
  loop ();
  Service.shutdown svc;
  let dt = Unix.gettimeofday () -. t0 in
  let end_smp = compacted_probe () in
  let end_peak = end_smp.Nt_obs.Sampler.heap_words in
  let warm_peak = if !warm_peak = 0 then end_peak else !warm_peak in
  (* Footprint honesty gate: the per-component state estimates must be
     non-trivial and within 2x of the live major heap — an estimator
     that drifts past the heap it claims to describe is lying. *)
  let footprints = Nt_obs.Sampler.publish_footprints (Service.sampler svc) in
  let fp_words =
    List.fold_left (fun acc (_, fp) -> acc + fp.Nt_obs.Footprint.words) 0 footprints
  in
  let fp_ok = fp_words > 0 && fp_words <= 2 * end_smp.Nt_obs.Sampler.heap_words in
  let evictions =
    List.fold_left (fun acc (_, e) -> acc + e) 0 (Ring.evictions (Service.ring svc))
  in
  let conserved =
    match Service.conservation svc with Ok () -> true | Error _ -> false
  in
  (* "Flat peak RSS": the major heap must stop growing once the ring,
     caps, and queue are warm — halfway in is generously past warm-up,
     so the end-of-run live heap may exceed it only slightly. *)
  let growth_budget = 1.20 in
  let heap_flat = float_of_int end_peak <= growth_budget *. float_of_int warm_peak in
  let pass = heap_flat && evictions > 0 && conserved && !reports > 0 && fp_ok in
  Tables.print
    ~header:[ "statistic"; "value" ]
    [
      [ "records"; string_of_int (Service.observed svc) ];
      [ "wall time"; Printf.sprintf "%.2f s" dt ];
      [ "throughput"; Printf.sprintf "%.0f records/s" (float_of_int n /. dt) ];
      [ "reports emitted"; string_of_int !reports ];
      [ "rotations"; string_of_int (Ring.rotations (Service.ring svc)) ];
      [ "table evictions"; string_of_int evictions ];
      [ "shed"; string_of_int (Service.shed svc) ];
      [ "compacted heap at 50% (words)"; string_of_int warm_peak ];
      [ "compacted heap at end (words)"; string_of_int end_peak ];
      [ "peak heap ever (words)"; string_of_int end_smp.Nt_obs.Sampler.top_heap_words ];
      [ "state footprint (words)"; string_of_int fp_words ];
      [ "peak RSS (bytes)"; string_of_int end_smp.Nt_obs.Sampler.rss_hwm_bytes ];
    ];
  Printf.printf
    "\nheap flat (end <= %.2fx warm): %s; evictions > 0: %s; conservation: %s;\n\
     footprint sum within 2x of live heap (%d <= 2 * %d): %s\n"
    growth_budget
    (if heap_flat then "PASS" else "FAIL")
    (if evictions > 0 then "PASS" else "FAIL")
    (if conserved then "PASS" else "FAIL")
    fp_words end_smp.Nt_obs.Sampler.heap_words
    (if fp_ok then "PASS" else "FAIL");
  let snapshot_json = Obs.to_json (Obs.snapshot obs) in
  let oc = open_out "BENCH_mon.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": %S,\n\
    \  \"workload\": \"lint_stream/3days\",\n\
    \  \"records\": %d,\n\
    \  \"seconds\": %.6f,\n\
    \  \"records_per_second\": %.0f,\n\
    \  \"reports\": %d,\n\
    \  \"rotations\": %d,\n\
    \  \"evictions\": %d,\n\
    \  \"shed\": %d,\n\
    \  \"heap_words\": {\"warm\": %d, \"end\": %d},\n\
    \  \"growth_budget\": %.2f,\n\
    \  \"rss_hwm_bytes\": %d,\n\
    \  \"footprint_words\": %d,\n\
    \  \"footprint_within_2x_heap\": %b,\n\
    \  \"pass\": %b,\n\
    \  \"snapshot\": %s}\n"
    Nt_formats.Formats.bench_mon n dt
    (float_of_int n /. dt)
    !reports
    (Ring.rotations (Service.ring svc))
    evictions (Service.shed svc) warm_peak end_peak growth_budget
    end_smp.Nt_obs.Sampler.rss_hwm_bytes fp_words fp_ok pass snapshot_json;
  close_out oc;
  print_endline "wrote BENCH_mon.json";
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* nt_tbin scale gate: user-count sweep through the out-of-core path   *)
(* ------------------------------------------------------------------ *)

(* The ROADMAP's "1:1 population scale, out of core" deliverable:
   simulate CAMPUS at growing user counts, stream every record through
   a tbin Writer to disk (no pcap, no in-memory trace), then decode the
   .ntb back record-by-record into the chunked report engine. Peak RSS
   must stay flat while the record volume grows 16x (100x locally via
   NT_SCALE_BENCH_MULTS), and decode+analyze throughput must not sag.

   The sweep runs in ascending order on purpose: VmHWM is monotone over
   a process's life, so with flat per-step memory the high-water mark
   set by the smallest run survives the largest, and the last/first
   ratio gates real growth rather than allocator noise. *)

let scale () =
  banner "nt_tbin scale: CAMPUS user sweep through the tbin streaming path";
  let env_int name default =
    match Sys.getenv_opt name with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> default)
    | None -> default
  in
  let base_users = env_int "NT_SCALE_BENCH_USERS" 12 in
  let hours = env_int "NT_SCALE_BENCH_HOURS" 24 in
  let mults =
    match Sys.getenv_opt "NT_SCALE_BENCH_MULTS" with
    | Some s ->
        let parts = String.split_on_char ',' s in
        let ms = List.filter_map int_of_string_opt parts in
        if ms = [] then [ 1; 4; 16 ] else ms
    | None -> [ 1; 4; 16 ]
  in
  let obs = Nt_obs.Obs.create () in
  let sampler = Nt_obs.Sampler.create ~interval:0.25 obs in
  let live_decoder = ref None in
  Nt_obs.Sampler.set_footprints sampler (fun () ->
      match !live_decoder with
      | Some d -> [ ("tbin.decoder", Nt_tbin.Decoder.footprint d) ]
      | None -> []);
  let start = Tw.time_of ~day:Tw.Mon ~hour:0 ~minute:0 in
  let stop = start +. (3600. *. float_of_int hours) in
  let step mult =
    let users = base_users * mult in
    let config = { Nt_workload.Email.default_config with users } in
    let path = Filename.temp_file "nt_scale" ".ntb" in
    (* generate -> tbin on disk, streaming; nothing is materialized.
       The simulator legitimately holds O(users) mailbox/session state,
       which is not what this gate measures, so generation runs in a
       forked child: the parent's RSS high-water mark tracks only the
       out-of-core reader path. *)
    let t0 = Unix.gettimeofday () in
    flush stdout;
    flush stderr;
    (match Unix.fork () with
    | 0 ->
        let code =
          try
            let oc = open_out_bin path in
            let w = Nt_tbin.Writer.create (output_string oc) in
            ignore
              (Pipeline.simulate_campus ~config ~start ~stop
                 ~sink:(Nt_tbin.Writer.add w) ()
                : Pipeline.run_stats);
            Nt_tbin.Writer.close w;
            close_out oc;
            0
          with _ -> 1
        in
        (* the child must not replay the parent's at_exit work *)
        Unix._exit code
    | pid -> (
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ ->
            Printf.eprintf "scale: generator child failed at %dx\n" mult;
            exit 1));
    Gc.compact ();
    let gen_s = Unix.gettimeofday () -. t0 in
    let bytes = (Unix.stat path).Unix.st_size in
    (* decode -> chunked report, streaming; peak state is one chunk *)
    Gc.compact ();
    let t1 = Unix.gettimeofday () in
    let dstats = ref None in
    let produce push =
      let ic = open_in_bin path in
      let d = Nt_tbin.Decoder.create ~obs () in
      live_decoder := Some d;
      let buf = Bytes.create 65536 in
      let rec drain () =
        match Nt_tbin.Decoder.pull d with
        | Some r ->
            push r;
            drain ()
        | None -> ()
      in
      let rec loop () =
        let n = input ic buf 0 (Bytes.length buf) in
        if n > 0 then begin
          Nt_tbin.Decoder.feed d (Bytes.sub_string buf 0 n);
          drain ();
          Nt_obs.Sampler.tick sampler;
          loop ()
        end
      in
      loop ();
      Nt_tbin.Decoder.finish d;
      drain ();
      close_in ic;
      dstats := Some (Nt_tbin.Decoder.stats d)
    in
    (* A fixed 16k-record chunk keeps peak state identical across the
       sweep: even the 1x run fills several whole chunks, so the gate
       compares steady states rather than a partial first chunk
       against full ones. *)
    let _report, records =
      Pipeline.analyze_stream ~obs ~jobs:1 ~records_per_shard:16384
        ~sections:[ `Summary; `Hourly ] produce
    in
    let an_s = Unix.gettimeofday () -. t1 in
    let stats = Option.get !dstats in
    ignore (Nt_obs.Sampler.publish_footprints sampler : (string * Nt_obs.Footprint.t) list);
    Sys.remove path;
    Gc.compact ();
    let smp = Nt_obs.Sampler.sample_now sampler in
    if Nt_tbin.failures stats <> 0 then begin
      Printf.eprintf "scale: decode failures at %dx: %s\n" mult
        (Nt_tbin.stats_to_string stats);
      exit 1
    end;
    if records <> stats.Nt_tbin.records then begin
      Printf.eprintf "scale: analyzed %d of %d decoded records at %dx\n" records
        stats.Nt_tbin.records mult;
      exit 1
    end;
    ( mult,
      users,
      records,
      bytes,
      gen_s,
      an_s,
      smp.Nt_obs.Sampler.rss_hwm_bytes,
      smp.Nt_obs.Sampler.heap_words )
  in
  let mults = List.sort compare mults in
  (* one unmeasured pass at the smallest multiple levels allocator
     pools and chunk buffers, so the first measured high-water mark is
     a steady state rather than a cold start *)
  ignore (step (List.hd mults));
  let rows = List.map step mults in
  let rps (_, _, records, _, _, an_s, _, _) =
    float_of_int records /. Float.max 1e-9 an_s
  in
  Tables.print
    ~header:
      [ "users"; "records"; "tbin bytes"; "gen (s)"; "decode+report (s)";
        "records/s"; "peak RSS" ]
    (List.map
       (fun ((_, users, records, bytes, gen_s, an_s, hwm, _) as row) ->
         [
           string_of_int users;
           string_of_int records;
           Tables.fmt_bytes (float_of_int bytes);
           f2 gen_s;
           f2 an_s;
           Printf.sprintf "%.0f" (rps row);
           Tables.fmt_bytes (float_of_int hwm);
         ])
       rows);
  let first = List.hd rows and last = List.hd (List.rev rows) in
  let hwm_of (_, _, _, _, _, _, hwm, _) = float_of_int hwm in
  let rss_growth = hwm_of last /. Float.max 1. (hwm_of first) in
  let rates = List.map rps rows in
  let min_rps = List.fold_left Float.min infinity rates in
  let max_rps = List.fold_left Float.max 0. rates in
  let rps_floor = 0.8 *. max_rps in
  let rss_ok = rss_growth <= 1.2 in
  let rps_ok = min_rps >= rps_floor in
  let pass = rss_ok && rps_ok in
  let mult_of (m, _, _, _, _, _, _, _) = m in
  Printf.printf
    "\npeak RSS growth across %dx more users: %.3fx (budget <= 1.2x): %s\n"
    (mult_of last / mult_of first)
    rss_growth
    (if rss_ok then "PASS" else "FAIL");
  Printf.printf "records/s floor: %.0f >= 0.8 * %.0f max: %s\n" min_rps max_rps
    (if rps_ok then "PASS" else "FAIL");
  let snapshot_json = Nt_obs.Obs.to_json (Nt_obs.Obs.snapshot obs) in
  let oc = open_out "BENCH_scale.json" in
  let row_json ((mult, users, records, bytes, gen_s, an_s, hwm, heap) as row) =
    Printf.sprintf
      "{\"mult\": %d, \"users\": %d, \"records\": %d, \"tbin_bytes\": %d,\n\
      \     \"generate_seconds\": %.6f, \"analyze_seconds\": %.6f,\n\
      \     \"records_per_second\": %.0f, \"rss_hwm_bytes\": %d, \"heap_words\": %d}"
      mult users records bytes gen_s an_s (rps row) hwm heap
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": %S,\n\
    \  \"workload\": \"campus/tbin-stream\",\n\
    \  \"base_users\": %d,\n\
    \  \"hours\": %d,\n\
    \  \"sweep\": [\n\
    \    %s\n\
    \  ],\n\
    \  \"rss_growth\": %.4f,\n\
    \  \"rss_budget\": 1.2,\n\
    \  \"min_records_per_second\": %.0f,\n\
    \  \"max_records_per_second\": %.0f,\n\
    \  \"rps_flatness_budget\": 0.8,\n\
    \  \"pass\": %b,\n\
    \  \"snapshot\": %s}\n"
    Nt_formats.Formats.bench_scale base_users hours
    (String.concat ",\n    " (List.map row_json rows))
    rss_growth min_rps max_rps pass snapshot_json;
  close_out oc;
  print_endline "wrote BENCH_scale.json";
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the tracer's hot paths                 *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "Microbenchmarks (Bechamel): tracer hot paths";
  let open Bechamel in
  let open Toolkit in
  let fh = Nt_nfs.Fh.make ~fsid:1 ~fileid:42 in
  let read_call = Nt_nfs.Ops.Read { fh; offset = 8192L; count = 8192 } in
  let encoded_call =
    let e = Nt_xdr.Encode.create () in
    Nt_rpc.Rpc_msg.encode_call e
      {
        xid = 7;
        rpcvers = 2;
        prog = 100003;
        vers = 3;
        proc = 6;
        cred = Auth_unix { stamp = 0; machine = "c"; uid = 1; gid = 1; gids = [] };
        verf = Auth_null;
      };
    Nt_nfs.V3.encode_call e read_call;
    Nt_xdr.Encode.contents e
  in
  let frame =
    Nt_net.Frame.encode
      (Nt_net.Frame.udp
         ~src_ip:(Nt_net.Ip_addr.v 10 0 0 1)
         ~dst_ip:(Nt_net.Ip_addr.v 10 0 0 2)
         ~src_port:700 ~dst_port:2049 encoded_call)
  in
  let accesses =
    Array.init 512 (fun i ->
        {
          Io_log.at = float_of_int i *. 0.001;
          offset = i * 8192;
          count = 8192;
          is_read = true;
          at_eof = i = 511;
          file_size = 512 * 8192;
        })
  in
  let marked = Nt_rpc.Record_mark.frame encoded_call in
  let tests =
    Test.make_grouped ~name:"nfstrace"
      [
        Test.make ~name:"xdr-encode-read-call"
          (Staged.stage (fun () ->
               let e = Nt_xdr.Encode.create () in
               Nt_nfs.V3.encode_call e read_call;
               Nt_xdr.Encode.contents e));
        Test.make ~name:"rpc+nfs-decode-call"
          (Staged.stage (fun () ->
               let msg, body =
                 Nt_rpc.Rpc_msg.decode encoded_call ~pos:0 ~len:(String.length encoded_call)
               in
               match msg with
               | Nt_rpc.Rpc_msg.Call c ->
                   let d = Nt_xdr.Decode.of_string ~pos:body encoded_call in
                   ignore
                     (Nt_nfs.V3.decode_call
                        ~proc:(Option.get (Nt_nfs.Proc.of_v3_number c.proc))
                        d)
               | Nt_rpc.Rpc_msg.Reply _ -> ()));
        Test.make ~name:"ethernet+ip+udp-decode"
          (Staged.stage (fun () -> ignore (Nt_net.Frame.decode frame)));
        Test.make ~name:"record-mark-reassemble"
          (Staged.stage (fun () ->
               let rm = Nt_rpc.Record_mark.create_reassembler () in
               ignore (Nt_rpc.Record_mark.push rm marked)));
        Test.make ~name:"reorder-window-512-accesses"
          (Staged.stage (fun () -> ignore (Io_log.sort_window 0.01 accesses)));
        Test.make ~name:"classify-run-512-accesses"
          (Staged.stage (fun () -> ignore (Runs.classify ~jump_blocks:10 accesses)));
        Test.make ~name:"sequentiality-metric-512"
          (Staged.stage (fun () -> ignore (Seqmetric.run_metric ~c:10 accesses)));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Ablations: the paper's quantified conjectures (sections 6.1, 6.1.2  *)
(* and 7)                                                              *)
(* ------------------------------------------------------------------ *)

(* "Mechanisms for delaying writes, such as NVRAM, would improve
   performance for both the CAMPUS and EECS workloads." *)
let nvram () =
  banner "Ablation: NVRAM delayed writes (paper sections 6.1 / 7)";
  let day = Tw.time_of ~day:Tw.Wed ~hour:0 ~minute:0 in
  let delays = [ 1.; 10.; 60.; 600.; 1800. ] in
  let run_system label simulate =
    let buffers =
      List.map
        (fun delay ->
          ( delay,
            Nt_analysis.Nvram.create
              { capacity_bytes = 256 * 1024 * 1024; flush_delay = delay; block = 8192 } ))
        delays
    in
    simulate ~sink:(fun r -> List.iter (fun (_, b) -> Nt_analysis.Nvram.observe b r) buffers);
    Printf.printf "\n--- %s (1 day, 256 MB buffer) ---\n" label;
    Tables.print
      ~header:[ "flush delay"; "block writes"; "absorbed"; "reach disk"; "absorbed %" ]
      (List.map
         (fun (delay, b) ->
           let r = Nt_analysis.Nvram.result b in
           [
             Tables.fmt_duration delay;
             string_of_int r.block_writes;
             string_of_int r.absorbed;
             string_of_int r.disk_writes;
             Tables.fmt_pct r.absorbed_pct;
           ])
         buffers)
  in
  run_system "CAMPUS" (fun ~sink ->
      ignore (Pipeline.simulate_campus ~start:day ~stop:(day +. 86400.) ~sink ()));
  run_system "EECS" (fun ~sink ->
      ignore (Pipeline.simulate_eecs ~start:day ~stop:(day +. 86400.) ~sink ()));
  print_endline
    "\nPaper: many blocks do not live long enough to need writing — especially EECS\n\
     data blocks (most die <1s) — so delayed writes absorb much of the write load;\n\
     CAMPUS needs mail-session-scale delays (10+ min) before absorption pays off."

(* "We speculate that if client caching of mailboxes was done on a
   block or message basis instead of a file basis, the amount of data
   read per day would shrink to a fraction of the current size." *)
let blockcache () =
  banner "Ablation: block-granularity mailbox caching (paper section 6.1.2)";
  let day = Tw.time_of ~day:Tw.Wed ~hour:0 ~minute:0 in
  let run label config =
    let s = Summary.create () in
    ignore
      (Pipeline.simulate_campus ~config ~start:day ~stop:(day +. 86400.)
         ~sink:(Summary.observe s) ());
    (label, s)
  in
  let file_based = run "file-granularity (reality)" Nt_workload.Email.default_config in
  let block_based =
    run "block-granularity (counterfactual)"
      { Nt_workload.Email.default_config with file_based_caching = false }
  in
  Tables.print
    ~header:[ "caching model"; "data read"; "read ops"; "total ops" ]
    (List.map
       (fun (label, s) ->
         [
           label;
           Tables.fmt_bytes (Summary.bytes_read s);
           string_of_int (Summary.read_ops s);
           string_of_int (Summary.total_ops s);
         ])
       [ file_based; block_based ]);
  let frac =
    Summary.bytes_read (snd block_based) /. Float.max 1. (Summary.bytes_read (snd file_based))
  in
  Printf.printf
    "\nblock-granularity caching reads %.1f%% of the file-granularity volume\n\
     (paper: \"would shrink to a fraction of the current size\").\n"
    (100. *. frac)

(* Section 7's open question: can a file system learn the name ->
   attribute correlation online, and how much state does it take? *)
let hints () =
  banner "Ablation: online filename-hint learning (paper sections 6.3 / 7)";
  let day = Tw.time_of ~day:Tw.Mon ~hour:0 ~minute:0 in
  let run label simulate =
    let h = Nt_analysis.Hints.create () in
    simulate ~sink:(Nt_analysis.Hints.observe h);
    let s = Nt_analysis.Hints.score h in
    Printf.printf "\n--- %s (2 simulated days) ---\n" label;
    Printf.printf "creates seen: %d (of which %d cold-start, no history)\n"
      (s.predictions + s.cold_creates) s.cold_creates;
    Printf.printf "size-class predictions: %d scored, %.1f%% correct\n" s.size_scored
      (100. *. Nt_analysis.Hints.size_accuracy s);
    Printf.printf "lifetime-class predictions: %d scored, %.1f%% correct\n" s.lifetime_scored
      (100. *. Nt_analysis.Hints.lifetime_accuracy s);
    Printf.printf "model state: %d categories of class counters\n" s.model_categories
  in
  run "CAMPUS" (fun ~sink ->
      ignore (Pipeline.simulate_campus ~start:day ~stop:(day +. 172800.) ~sink ()));
  run "EECS" (fun ~sink ->
      ignore (Pipeline.simulate_eecs ~start:day ~stop:(day +. 172800.) ~sink ()));
  print_endline
    "\nPaper: \"the file system has, at the time of file creation, reliable and\n\
     potentially useful information to guide its decisions\" — and the model\n\
     needed to exploit it is a handful of counters per name category."

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig1", fig1);
    ("table3", table3);
    ("fig2", fig2);
    ("table4", table4);
    ("fig3", fig3);
    ("fig4", fig4);
    ("table5", table5);
    ("fig5", fig5);
    ("nfsiod", nfsiod);
    ("names", names);
    ("readahead", readahead);
    ("nvram", nvram);
    ("blockcache", blockcache);
    ("hints", hints);
    ("capture", capture);
    ("faultperf", faultperf);
    ("degraded", degraded);
    ("lint", lint);
    ("obs", obs_overhead);
    ("par", par_speedup);
    ("mon", mon_soak);
    ("scale", scale);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as picks) -> picks
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
