(** The "currently outstanding calls" snapshot — the one line of the
    [nfs3-mon.d] report that is instantaneous rather than aggregated.

    The monitor sees completed records (call + reply when captured), so
    a call is outstanding at feed time [T] when its reply is later than
    [T], or was never captured and its timeout has not yet expired.
    State is a bounded binary min-heap on expiry time; when full, the
    call expiring soonest is dropped and counted, so a reply storm can
    never grow the monitor. *)

type t

val create : ?cap:int -> ?timeout:float -> unit -> t
(** [cap] (default 4096) bounds tracked in-flight calls; [timeout]
    (default 60 s) is how long a reply-lost call stays "outstanding"
    before it is counted as lost. *)

val note : t -> Nt_trace.Record.t -> unit
val advance : t -> now:float -> unit
(** Retire every call whose reply (or timeout) is at or before [now];
    timed-out reply-lost calls increment {!lost}. *)

val outstanding : t -> int
val by_proc : t -> (string * int) list
(** Outstanding count per procedure, ops-descending then name. O(live)
    per call. *)

val lost : t -> int
val dropped : t -> int
(** Calls evicted because the tracker was full. *)

val to_lines : t -> string list
(** Deterministic checkpoint serialization: a [pending] header with the
    cumulative counters, then one line per in-flight call. *)

val of_lines : ?cap:int -> ?timeout:float -> string list -> (t, string) result
(** Rebuild a tracker from {!to_lines} output, enforcing the given
    bounds (entries beyond [cap] are dropped and counted, as live). *)

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}). *)
