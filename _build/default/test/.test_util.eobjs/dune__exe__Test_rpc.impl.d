test/test_rpc.ml: Alcotest Char Gen List Nt_rpc Nt_xdr QCheck QCheck_alcotest String
