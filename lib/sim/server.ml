module Types = Nt_nfs.Types
module Ops = Nt_nfs.Ops

type t = {
  fs : Sim_fs.t;
  ip : Nt_net.Ip_addr.t;
  mutable handled : int;
}

let create ?(fsid = 1) ~ip () = { fs = Sim_fs.create ~fsid (); ip; handled = 0 }
let fs t = t.fs
let ip t = t.ip
let root_fh t = Sim_fs.fh_of_node t.fs (Sim_fs.root t.fs)
let calls_handled t = t.handled

let node t fh =
  match Sim_fs.node_of_fh t.fs fh with
  | Some n -> n
  | None -> raise (Sim_fs.Fs_error Types.Err_stale)

let attr t n = Sim_fs.fattr t.fs n

let handle t ~time (call : Ops.call) : Ops.result =
  t.handled <- t.handled + 1;
  try
    match call with
    | Null -> Ok R_null
    | Getattr fh -> Ok (R_attr (attr t (node t fh)))
    | Setattr { fh; attrs } ->
        let n = node t fh in
        (match attrs.set_size with
        | Some sz -> Sim_fs.truncate t.fs ~time n sz
        | None -> ());
        (match attrs.set_mtime with Some _ -> Sim_fs.set_mtime t.fs ~time n | None -> ());
        Ok (R_attr (attr t n))
    | Lookup { dir; name } ->
        let d = node t dir in
        let n = Sim_fs.lookup t.fs d name in
        Ok
          (R_lookup
             { fh = Sim_fs.fh_of_node t.fs n; obj = Some (attr t n); dir = Some (attr t d) })
    | Access { fh; access } ->
        let _n = node t fh in
        Ok (R_access access)
    | Readlink fh -> Ok (R_readlink (Sim_fs.readlink (node t fh)))
    | Read { fh; offset; count } ->
        let n = node t fh in
        let size = Sim_fs.size n in
        if Int64.compare offset size >= 0 then
          Ok (R_read { attr = Some (attr t n); count = 0; eof = true })
        else begin
          let available = Int64.to_int (Int64.min (Int64.sub size offset) (Int64.of_int count)) in
          Sim_fs.touch_read t.fs ~time n;
          let eof = Int64.compare (Int64.add offset (Int64.of_int available)) size >= 0 in
          Ok (R_read { attr = Some (attr t n); count = available; eof })
        end
    | Write { fh; offset; count; stable } ->
        let n = node t fh in
        Sim_fs.write t.fs ~time n ~offset ~count;
        Ok (R_write { count; committed = stable; attr = Some (attr t n) })
    | Create { dir; name; mode; exclusive = _ } ->
        let d = node t dir in
        let n =
          match Sim_fs.lookup t.fs d name with
          | existing -> existing (* UNCHECKED create of an existing file truncates it *)
          | exception Sim_fs.Fs_error Types.Err_noent ->
              Sim_fs.create_file t.fs ~time ~parent:d ~name ~mode ~uid:0 ~gid:0
        in
        Ok (R_create { fh = Some (Sim_fs.fh_of_node t.fs n); attr = Some (attr t n) })
    | Mkdir { dir; name; mode } ->
        let d = node t dir in
        let n = Sim_fs.mkdir t.fs ~time ~parent:d ~name ~mode in
        Ok (R_create { fh = Some (Sim_fs.fh_of_node t.fs n); attr = Some (attr t n) })
    | Symlink { dir; name; target } ->
        let d = node t dir in
        let n = Sim_fs.symlink t.fs ~time ~parent:d ~name ~target in
        Ok (R_create { fh = Some (Sim_fs.fh_of_node t.fs n); attr = Some (attr t n) })
    | Mknod { dir; name } ->
        let d = node t dir in
        let n = Sim_fs.create_file t.fs ~time ~parent:d ~name ~mode:0o644 ~uid:0 ~gid:0 in
        Ok (R_create { fh = Some (Sim_fs.fh_of_node t.fs n); attr = Some (attr t n) })
    | Remove { dir; name } ->
        let d = node t dir in
        Sim_fs.remove t.fs ~time ~parent:d ~name;
        Ok R_empty
    | Rmdir { dir; name } ->
        let d = node t dir in
        Sim_fs.rmdir t.fs ~time ~parent:d ~name;
        Ok R_empty
    | Rename { from_dir; from_name; to_dir; to_name } ->
        Sim_fs.rename t.fs ~time ~from_parent:(node t from_dir) ~from_name
          ~to_parent:(node t to_dir) ~to_name;
        Ok R_empty
    | Link { fh; to_dir; to_name } ->
        Sim_fs.link t.fs ~time (node t fh) ~to_parent:(node t to_dir) ~to_name;
        Ok R_empty
    | Readdir { dir; cookie; count } | Readdirplus { dir; cookie; count } ->
        let d = node t dir in
        let all =
          List.sort (fun (a, _) (b, _) -> String.compare a b) (Sim_fs.entries d)
        in
        let skip = Int64.to_int cookie in
        let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
        let rest = drop skip all in
        let per_entry = 64 (* rough wire cost per entry *) in
        let capacity = max 1 (count / per_entry) in
        let rec take n idx acc l =
          match l with
          | [] -> (List.rev acc, true)
          | _ when n = 0 -> (List.rev acc, false)
          | (name, node) :: tl ->
              let entry =
                {
                  Ops.entry_fileid = Int64.of_int (Sim_fs.fileid node);
                  entry_name = name;
                  entry_cookie = Int64.of_int (idx + 1);
                }
              in
              take (n - 1) (idx + 1) (entry :: acc) tl
        in
        let entries, eof = take capacity skip [] rest in
        Ok (R_readdir { entries; eof })
    | Statfs _ -> Ok (R_statfs { total_bytes = 53_000_000_000L; free_bytes = 20_000_000_000L })
    | Fsinfo _ -> Ok (R_fsinfo { rtmax = 32768; wtmax = 32768 })
    | Pathconf _ -> Ok (R_pathconf { name_max = 255 })
    | Commit { fh; _ } ->
        let _n = node t fh in
        Ok R_empty
  with Sim_fs.Fs_error status -> Error status
