(** Chrome trace-event / Perfetto-loadable span timeline.

    Spans export as duration Begin/End pairs and sampler readings as
    Counter events; load the written file straight into
    [ui.perfetto.dev] or [chrome://tracing]. Invariants the export
    keeps per track (tid): timestamps are monotone non-decreasing,
    every Begin has a matching End, and spans nest strictly — enforced
    by a per-track clamp and open-span stack, and property-tested.

    Coordinator spans arrive through {!attach}, which registers an
    {!Obs.sink} so every [Obs.span_open]/[span_close]/[reanchor] is
    mirrored as an event on the creating domain's track. Worker
    domains never touch the shared timeline: they append completed
    spans into private {!buf}s (one per shard task) that the
    coordinator {!absorb}s in-order at join — no cross-domain
    mutation, same discipline as [Obs.span_record].

    The event store is bounded: past [cap], whole spans are dropped
    (never half of one — Ends still emit to balance already-emitted
    Begins) and counted in {!dropped}. *)

type t

val create : ?cap:int -> unit -> t
(** [cap] (default 200k) bounds stored events. The creating domain's
    id becomes the main track. *)

(** {1 Recording} *)

val span_begin : t -> tid:int -> name:string -> ts:float -> unit
val span_end : t -> tid:int -> name:string -> ts:float -> unit
(** [name] on end is informational; the stack top closes (an unmatched
    end is ignored, as in [Obs]). *)

val span : t -> tid:int -> name:string -> t0:float -> t1:float -> unit
(** A completed span; [t1] clamps to [>= t0]. *)

val counter : t -> ?tid:int -> name:string -> ts:float -> value:float -> unit -> unit
(** A counter-track point (heap words, RSS, ...). *)

val reanchor : t -> ts:float -> unit
(** Checkpoint-restore: close all open spans at their tracks' current
    clamps and reopen them at [ts] (clamped forward), so downtime is
    attributed to no span and every per-track invariant survives. *)

val obs_sink : ?tid:int -> t -> Obs.sink
val attach : ?tid:int -> t -> Obs.t -> unit
(** Mirror a registry's span activity onto track [tid] (default: the
    timeline's main track). *)

(** {1 Worker buffers} *)

type buf

val buf : unit -> buf
val buf_add : buf -> name:string -> t0:float -> t1:float -> unit
(** Call from the worker: the current domain's id is captured as the
    span's track. *)

val absorb : t -> buf -> unit
(** Coordinator-side: replay a worker buffer into the timeline. *)

(** {1 Inspection and export} *)

val events : t -> int
val dropped : t -> int
val tracks_count : t -> int

val to_json : t -> string
(** [{"traceEvents": [...]}] with timestamps in microseconds relative
    to the earliest event. *)

val write_file : t -> string -> unit
