(* The exn-escape rule: every function transitively reachable from a
   counted-never-raised root must have an empty residual may-raise set
   after handler subtraction.  Roots are configured as display-name
   patterns ("Nt_tbin.Decoder.*" or "Nt_core.Pipeline.analyze_stream");
   a pattern that matches nothing is configuration drift.

   [@@nt.raise_ok "reason"] (or [@@nt.allow "exn-escape: reason"]) on a
   binding empties its summary before the fixpoint — accepted escapes
   stop propagating — and every annotated binding reachable from a
   root in the *un*-annotated graph is counted through the suppression
   census, so escapes are visible in --verbose even when accepted. *)

let glob_matches pat display =
  let n = String.length pat in
  if n >= 2 && String.sub pat (n - 2) 2 = ".*" then
    Syntax.starts_with ~prefix:(String.sub pat 0 (n - 1)) display
  else pat = display

let check (sink : Finding.sink) ~roots ~units ~config_finding =
  let g = Exnflow.build units in
  let all_nodes = Exnflow.nodes g in
  (* Root expansion: globs take every exported binding under the
     prefix; exact names take the exported binding only. *)
  let root_ids = ref [] in
  List.iter
    (fun pat ->
      let matched =
        List.filter
          (fun (n : Exnflow.node) ->
            Exnflow.exported g n && glob_matches pat n.Exnflow.n_display)
          all_nodes
      in
      if matched = [] then
        config_finding
          (Printf.sprintf "exn root %s matched no compiled binding" pat)
      else
        List.iter
          (fun (n : Exnflow.node) ->
            if not (List.mem n.Exnflow.n_id !root_ids) then
              root_ids := n.Exnflow.n_id :: !root_ids)
          matched)
    roots;
  let root_ids = List.rev !root_ids in
  (* Census closure over the un-annotated graph: which nodes can the
     roots reach at all, annotations notwithstanding. *)
  let closure = Hashtbl.create 256 in
  let rec visit id =
    if not (Hashtbl.mem closure id) then begin
      Hashtbl.add closure id ();
      List.iter visit (Exnflow.item_calls (Exnflow.summary g id))
    end
  in
  List.iter visit root_ids;
  (* Accepted escapes: empty the summary, count the suppression. *)
  List.iter
    (fun (n : Exnflow.node) ->
      if Syntax.allowed n.Exnflow.n_allows Rule.exn_escape then begin
        if Hashtbl.mem closure n.Exnflow.n_id then sink.Finding.allow Rule.exn_escape;
        Exnflow.set_summary g n.Exnflow.n_id []
      end)
    all_nodes;
  let sol = Exnflow.solve (Exnflow.summaries g) in
  let solution id =
    match Hashtbl.find_opt sol id with Some e -> e | None -> Exnflow.bot
  in
  (* Findings, one per raising root. *)
  List.iter
    (fun id ->
      match Exnflow.node g id with
      | None -> ()
      | Some n ->
          let res = solution id in
          if not (Exnflow.is_bot res) then begin
            let names = Exnflow.to_strings res in
            let witness =
              match names with
              | first :: _ -> (
                  match Exnflow.explain g sol ~id ~exn:first with
                  | Some chain -> "; e.g. " ^ String.concat " -> " chain
                  | None -> "")
              | [] -> ""
            in
            let loc =
              {
                Location.none with
                loc_start =
                  {
                    Lexing.pos_fname = n.Exnflow.n_file;
                    pos_lnum = n.Exnflow.n_line;
                    pos_bol = 0;
                    pos_cnum = 0;
                  };
              }
            in
            sink.Finding.emit Rule.exn_escape loc
              (Printf.sprintf "%s may raise {%s}%s" n.Exnflow.n_display
                 (String.concat ", " names)
                 witness)
          end)
    root_ids;
  (* Per-function report over the closure, for the CI artifact. *)
  let rows =
    Hashtbl.fold
      (fun id () acc ->
        match Exnflow.node g id with
        | None -> acc
        | Some n ->
            (n.Exnflow.n_display, n.Exnflow.n_file, n.Exnflow.n_line,
             Exnflow.to_strings (solution id))
            :: acc)
      closure []
  in
  List.sort compare rows
