lib/sim/packet_pipe.ml: Array Hashtbl Nt_net Nt_nfs Nt_rpc Nt_trace Nt_util Nt_xdr String
