(** Composable, seeded fault injection for the capture path.

    The paper's tracer lived downstream of a lossy mirror port: CAMPUS
    dropped up to ~10% of packets under load, and months-long runs also
    saw corrupted frames, snaplen truncation, duplicated RPCs from UDP
    retransmission, reordering, and the occasional mangled pcap record
    (§4.1.4). This module models all of those as one declarative
    {!plan} so that every consumer — {!Packet_pipe}, the capture
    engine, the analyses — can be exercised against known-degraded
    input and its loss accounting validated.

    Faults are mutually exclusive per packet: a packet is first run
    through the drop model, and a surviving packet suffers at most one
    of duplication, corruption, truncation, or displacement. This makes
    the conservation invariant testable — every injected fault shows up
    in exactly one {!counts} field, and downstream in exactly one
    capture counter. Clock jitter is a timestamp perturbation applied
    on top, not an exclusive fault, so it has no count.

    All randomness flows through {!Nt_util.Prng}: the same seed and
    plan over the same packets produce byte-identical output. *)

type drop_model =
  | No_drop
  | Bernoulli of float  (** independent loss; subsumes the old [monitor_loss] *)
  | Gilbert_elliott of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }
      (** two-state bursty loss: per-packet transition probabilities
          good→bad [p_gb] and bad→good [p_bg], with per-state loss
          rates. Mean loss = [loss_good] + (p_gb/(p_gb+p_bg)) ·
          ([loss_bad] - [loss_good]) for small rates. *)

type plan = {
  drop : drop_model;
  corrupt : float;  (** per-packet probability of byte corruption *)
  corrupt_bytes : int;  (** bytes flipped per corrupted packet, >= 1 *)
  corrupt_addrs_only : bool;
      (** restrict flips to the IPv4 source/destination address bytes
          (offsets 26..33): such corruption never changes the frame's
          structure, but always breaks the header checksum, so the
          capture engine detects it deterministically — exact
          conservation for tests. When false, flips land anywhere. *)
  truncate : float;  (** probability of truncating the frame *)
  truncate_to : int;  (** bytes kept when truncating *)
  duplicate : float;  (** probability of emitting the packet twice *)
  duplicate_delay : float;  (** seconds between the copies *)
  reorder : float;  (** probability of displacing the packet in time *)
  reorder_displace : float;  (** seconds a displaced packet is delayed *)
  clock_jitter : float;  (** uniform ±jitter added to every timestamp *)
}

val none : plan
(** All faults disabled; {!apply} is the identity. *)

val bernoulli_loss : float -> plan
(** [bernoulli_loss p]: only independent drop, probability [p] — the
    behaviour of the old [monitor_loss] float. *)

val campus_burst : plan
(** A plan shaped like the CAMPUS mirror port under load: ~2% bursty
    loss (Gilbert–Elliott), light corruption, duplication and
    truncation. *)

val is_noop : plan -> bool

type counts = {
  presented : int;  (** packets offered to the injector *)
  dropped : int;
  corrupted : int;
  truncated : int;
  duplicated : int;  (** packets that were emitted twice *)
  reordered : int;
  emitted : int;  (** = presented - dropped + duplicated *)
}

val counts_to_string : counts -> string

type t
(** Stateful injector (drop-model state, PRNG, counters). *)

val create : ?obs:Nt_obs.Obs.t -> ?seed:int64 -> plan -> t
(** [obs] hosts the injection counters ([fault.presented],
    [fault.events{kind=...}], [fault.emitted]); defaults to a private
    always-enabled registry so {!counts} works without wiring. *)

val counts : t -> counts

val apply : t -> time:float -> string -> (float * string) list
(** Pass one packet through the plan. Returns zero (dropped), one, or
    two (duplicated) [(time, bytes)] pairs, with timestamps jittered or
    displaced as the plan dictates. *)

val wrap_writer : t -> Nt_net.Pcap.writer -> time:float -> string -> unit
(** [wrap_writer t w] is a drop-in replacement for [Pcap.write w]: each
    packet runs through {!apply} and the survivors are written. *)

val mangle_pcap : ?seed:int64 -> flips:int -> string -> string * int
(** [mangle_pcap ~flips bytes] flips up to [flips] random bytes of a
    pcap byte string, sparing the 24-byte global header, and returns
    the mangled copy with the number of flips actually applied. Unlike
    {!apply}, this corrupts the savefile itself — record headers
    included — which is what the salvage-mode {!Nt_net.Pcap} reader
    exists to survive. *)
