module Engine = Nt_sim.Engine
module Server = Nt_sim.Server
module Record_sorter = Nt_sim.Record_sorter
module Email = Nt_workload.Email
module Research = Nt_workload.Research
module Obs = Nt_obs.Obs

type workload = Campus | Eecs

type state = {
  engine : Engine.t;
  sorter : Record_sorter.t;
  queue : Nt_trace.Record.t Queue.t;
  stop : float;
  slice_s : float;
  speedup : float option;
  wall_anchor : float;  (* wall clock when pacing started *)
  sim_anchor : float;  (* sim clock at the same instant *)
  mutable flushed : bool;
}

let describe = function Campus -> "sim:campus" | Eecs -> "sim:eecs"

(* With pacing, the simulation may only advance to the sim-time the
   wall clock has "earned" since the anchor. *)
let allowed_horizon st =
  match st.speedup with
  | None -> st.stop
  | Some k -> Float.min st.stop (st.sim_anchor +. ((Unix.gettimeofday () -. st.wall_anchor) *. k))

let pull st () =
  if not (Queue.is_empty st.queue) then `Record (Queue.pop st.queue)
  else if st.flushed then `Closed
  else begin
    let now = Engine.now st.engine in
    if now >= st.stop then begin
      Record_sorter.flush st.sorter;
      st.flushed <- true;
      if Queue.is_empty st.queue then `Closed else `Record (Queue.pop st.queue)
    end
    else begin
      let horizon = allowed_horizon st in
      if horizon <= now then `Idle
      else begin
        (* Advance in bounded slices until something comes out, the
           pacing horizon is reached, or the interval ends. *)
        let cursor = ref now in
        while Queue.is_empty st.queue && !cursor < horizon do
          cursor := Float.min horizon (!cursor +. st.slice_s);
          Engine.run_until st.engine !cursor
        done;
        if not (Queue.is_empty st.queue) then `Record (Queue.pop st.queue)
        else if !cursor >= st.stop then begin
          Record_sorter.flush st.sorter;
          st.flushed <- true;
          if Queue.is_empty st.queue then `Closed else `Record (Queue.pop st.queue)
        end
        else `Idle
      end
    end
  end

let create ?obs ?(email = Email.default_config) ?(research = Research.default_config)
    ?(slice_s = 1.0) ?speedup ~workload ~start ~stop () =
  if stop <= start then invalid_arg "Live_feed.create: stop <= start";
  if slice_s <= 0. then invalid_arg "Live_feed.create: slice_s <= 0";
  let obs = match obs with Some o -> o | None -> Obs.null in
  let engine = Engine.create ~obs ~start:(start -. 1.) () in
  let queue = Queue.create () in
  let c_records = Obs.counter obs ~help:"records released by the live sim feed" "pipeline.records" in
  let sorter =
    Record_sorter.create ~obs (fun r ->
        Obs.inc c_records;
        Queue.push r queue)
  in
  (match workload with
  | Campus ->
      let server = Server.create ~fsid:2 ~ip:(Nt_net.Ip_addr.v 10 1 1 2) () in
      let wl = Email.setup email ~engine ~server ~sink:(Record_sorter.push sorter) in
      Email.schedule wl ~start ~stop
  | Eecs ->
      let server = Server.create ~fsid:3 ~ip:(Nt_net.Ip_addr.v 10 2 1 2) () in
      let wl = Research.setup research ~engine ~server ~sink:(Record_sorter.push sorter) in
      Research.schedule wl ~start ~stop);
  let st =
    {
      engine;
      sorter;
      queue;
      stop;
      slice_s;
      speedup;
      wall_anchor = Unix.gettimeofday ();
      sim_anchor = start;
      flushed = false;
    }
  in
  Nt_mon.Feed.of_fn ~describe:(describe workload) (pull st)
