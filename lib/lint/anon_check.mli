(** Anonymization-leak checks.

    These checks ask the inverse question of {!Nt_trace.Anonymize}: does
    a field look like something the anonymizer could have produced? A
    name must parse under the anonymizer's output grammar — special
    affixes ([#…#], trailing [~], [,v], leading dot) around a core that
    is either a preserved component or an [a]+base36 stem with an
    optional preserved or [.s]+base36 suffix. UIDs/GIDs must be
    preserved or in the mapped range, addresses must come from the
    private 10/8 pool.

    The checks are sound against the anonymizer itself: any output of
    [Anonymize.record] under the profile's config passes. They are
    heuristic against arbitrary leaks — a 6-character lowercase stem
    happens to match the token shape — which is why the dictionary check
    exists as a second line. *)

type profile = {
  preserve_names : string list;
  preserve_suffixes : string list;
  preserve_uids : int list;
  preserve_gids : int list;
}

val default : profile
(** Matches {!Nt_trace.Anonymize.default_config}. *)

val of_config : Nt_trace.Anonymize.config -> profile

type name_verdict =
  | Name_ok
  | Dictionary of string  (** the offending word *)
  | Residue of string  (** why the name fails the output grammar *)

val check_name : profile -> string -> name_verdict
(** Grammar-valid names are accepted without dictionary screening — a
    random token can spell a word by chance. A grammar-failing name
    reports [Dictionary] when it contains a word and [Residue]
    otherwise, so each bad name yields exactly one verdict. *)

val check_uid : profile -> int -> bool
val check_gid : profile -> int -> bool

val check_ip : Nt_net.Ip_addr.t -> bool
(** True iff the address lies in the anonymizer's 10/8 pool. *)
