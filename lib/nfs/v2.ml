module E = Nt_xdr.Encode
module D = Nt_xdr.Decode

exception Unsupported of string

let unsupported proc = raise (Unsupported (Proc.to_string proc ^ " has no NFSv2 form"))

let ftype_code = function
  | Types.Reg -> 1
  | Types.Dir -> 2
  | Types.Blk -> 3
  | Types.Chr -> 4
  | Types.Lnk -> 5
  | Types.Sock -> 6
  | Types.Fifo -> 8 (* NFFIFO in v2 *)

let ftype_of_code = function
  | 0 -> Types.Reg (* NFNON: treat as regular for tracing purposes *)
  | 1 -> Types.Reg
  | 2 -> Types.Dir
  | 3 -> Types.Blk
  | 4 -> Types.Chr
  | 5 -> Types.Lnk
  | 6 -> Types.Sock
  | 8 -> Types.Fifo
  | n -> raise (D.Error (Printf.sprintf "bad v2 ftype %d" n))

let encode_timeval e (t : Types.time) =
  E.uint32 e t.seconds;
  E.uint32 e (t.nanos / 1000)

let decode_timeval d : Types.time =
  let seconds = D.uint32 d in
  let micros = D.uint32 d in
  { seconds; nanos = micros * 1000 }

let encode_fh e fh = E.fixed_opaque e (Fh.to_v2_raw fh)
let decode_fh d = Fh.of_raw (D.fixed_opaque d Fh.v2_size)

let clamp32 (v : int64) =
  if Int64.compare v 0xFFFFFFFFL > 0 then 0xFFFFFFFF else Int64.to_int v

let encode_fattr e (a : Types.fattr) =
  E.uint32 e (ftype_code a.ftype);
  E.uint32 e a.mode;
  E.uint32 e a.nlink;
  E.uint32 e a.uid;
  E.uint32 e a.gid;
  E.uint32 e (clamp32 a.size);
  E.uint32 e 8192 (* blocksize *);
  E.uint32 e 0 (* rdev *);
  E.uint32 e (clamp32 (Int64.div (Int64.add a.used 511L) 512L)) (* blocks *);
  E.uint32 e (Int64.to_int (Int64.logand a.fsid 0xFFFFFFFFL));
  E.uint32 e (clamp32 a.fileid);
  encode_timeval e a.atime;
  encode_timeval e a.mtime;
  encode_timeval e a.ctime

let decode_fattr d : Types.fattr =
  let ftype = ftype_of_code (D.uint32 d) in
  let mode = D.uint32 d in
  let nlink = D.uint32 d in
  let uid = D.uint32 d in
  let gid = D.uint32 d in
  let size = Int64.of_int (D.uint32 d) in
  let _blocksize = D.uint32 d in
  let _rdev = D.uint32 d in
  let blocks = D.uint32 d in
  let fsid = Int64.of_int (D.uint32 d) in
  let fileid = Int64.of_int (D.uint32 d) in
  let atime = decode_timeval d in
  let mtime = decode_timeval d in
  let ctime = decode_timeval d in
  {
    ftype; mode; nlink; uid; gid; size;
    used = Int64.of_int (blocks * 512);
    fsid; fileid; atime; mtime; ctime;
  }

(* v2 sattr: each field is "-1 means don't set". *)
let neg1 = 0xFFFFFFFF

let encode_sattr e (s : Types.sattr) =
  let f32 = function Some v -> v | None -> neg1 in
  E.uint32 e (f32 s.set_mode);
  E.uint32 e (f32 s.set_uid);
  E.uint32 e (f32 s.set_gid);
  E.uint32 e (match s.set_size with Some v -> clamp32 v | None -> neg1);
  (match s.set_atime with
  | Some t -> encode_timeval e t
  | None ->
      E.uint32 e neg1;
      E.uint32 e neg1);
  match s.set_mtime with
  | Some t -> encode_timeval e t
  | None ->
      E.uint32 e neg1;
      E.uint32 e neg1

(* Helpers at top level: decode_sattr runs per SETATTR/CREATE record,
   so its body must not rebuild these closures each call. *)
let sattr_opt v = if v = neg1 then None else Some v

let decode_sattr_time d =
  let seconds = D.uint32 d in
  let micros = D.uint32 d in
  if seconds = neg1 then None else Some { Types.seconds; nanos = micros * 1000 }

let decode_sattr d : Types.sattr =
  let set_mode = sattr_opt (D.uint32 d) in
  let set_uid = sattr_opt (D.uint32 d) in
  let set_gid = sattr_opt (D.uint32 d) in
  let set_size =
    match sattr_opt (D.uint32 d) with Some v -> Some (Int64.of_int v) | None -> None
  in
  let set_atime = decode_sattr_time d in
  let set_mtime = decode_sattr_time d in
  { set_mode; set_uid; set_gid; set_size; set_atime; set_mtime }

let encode_diropargs e dir name =
  encode_fh e dir;
  E.string e name

let filler n = String.make n '\000'

let encode_call e (c : Ops.call) =
  match c with
  | Null -> ()
  | Getattr fh | Readlink fh | Statfs fh -> encode_fh e fh
  | Setattr { fh; attrs } ->
      encode_fh e fh;
      encode_sattr e attrs
  | Lookup { dir; name } -> encode_diropargs e dir name
  | Read { fh; offset; count } ->
      encode_fh e fh;
      E.uint32 e (clamp32 offset);
      E.uint32 e count;
      E.uint32 e count (* totalcount, unused *)
  | Write { fh; offset; count; stable = _ } ->
      encode_fh e fh;
      E.uint32 e 0 (* beginoffset, unused *);
      E.uint32 e (clamp32 offset);
      E.uint32 e count (* totalcount, unused *);
      E.opaque e (filler count)
  | Create { dir; name; mode; exclusive = _ } ->
      encode_diropargs e dir name;
      encode_sattr e { Types.empty_sattr with set_mode = Some mode }
  | Mkdir { dir; name; mode } ->
      encode_diropargs e dir name;
      encode_sattr e { Types.empty_sattr with set_mode = Some mode }
  | Symlink { dir; name; target } ->
      encode_diropargs e dir name;
      E.string e target;
      encode_sattr e Types.empty_sattr
  | Remove { dir; name } | Rmdir { dir; name } -> encode_diropargs e dir name
  | Rename { from_dir; from_name; to_dir; to_name } ->
      encode_diropargs e from_dir from_name;
      encode_diropargs e to_dir to_name
  | Link { fh; to_dir; to_name } ->
      encode_fh e fh;
      encode_diropargs e to_dir to_name
  | Readdir { dir; cookie; count } ->
      encode_fh e dir;
      E.uint32 e (clamp32 cookie) (* nfscookie, 4 bytes in v2 *);
      E.uint32 e count
  | Access _ | Mknod _ | Readdirplus _ | Fsinfo _ | Pathconf _ | Commit _ ->
      unsupported (Ops.proc_of_call c)

let decode_call ~proc d : Ops.call =
  match (proc : Proc.t) with
  | Null -> Null
  | Root ->
      (* Obsolete; takes no arguments, never used by real clients. *)
      Null
  | Writecache -> Null
  | Getattr -> Getattr (decode_fh d)
  | Readlink -> Readlink (decode_fh d)
  | Statfs -> Statfs (decode_fh d)
  | Setattr ->
      let fh = decode_fh d in
      let attrs = decode_sattr d in
      Setattr { fh; attrs }
  | Lookup ->
      let dir = decode_fh d in
      let name = D.string d in
      Lookup { dir; name }
  | Read ->
      let fh = decode_fh d in
      let offset = Int64.of_int (D.uint32 d) in
      let count = D.uint32 d in
      let _totalcount = D.uint32 d in
      Read { fh; offset; count }
  | Write ->
      let fh = decode_fh d in
      let _beginoffset = D.uint32 d in
      let offset = Int64.of_int (D.uint32 d) in
      let _totalcount = D.uint32 d in
      let data = D.opaque d in
      Write { fh; offset; count = String.length data; stable = Types.File_sync }
  | Create ->
      let dir = decode_fh d in
      let name = D.string d in
      let attrs = decode_sattr d in
      Create { dir; name; mode = Option.value attrs.set_mode ~default:0o644; exclusive = false }
  | Mkdir ->
      let dir = decode_fh d in
      let name = D.string d in
      let attrs = decode_sattr d in
      Mkdir { dir; name; mode = Option.value attrs.set_mode ~default:0o755 }
  | Symlink ->
      let dir = decode_fh d in
      let name = D.string d in
      let target = D.string d in
      let _attrs = decode_sattr d in
      Symlink { dir; name; target }
  | Remove ->
      let dir = decode_fh d in
      let name = D.string d in
      Remove { dir; name }
  | Rmdir ->
      let dir = decode_fh d in
      let name = D.string d in
      Rmdir { dir; name }
  | Rename ->
      let from_dir = decode_fh d in
      let from_name = D.string d in
      let to_dir = decode_fh d in
      let to_name = D.string d in
      Rename { from_dir; from_name; to_dir; to_name }
  | Link ->
      let fh = decode_fh d in
      let to_dir = decode_fh d in
      let to_name = D.string d in
      Link { fh; to_dir; to_name }
  | Readdir ->
      let dir = decode_fh d in
      let cookie = Int64.of_int (D.uint32 d) in
      let count = D.uint32 d in
      Readdir { dir; cookie; count }
  | Access | Mknod | Readdirplus | Fsinfo | Pathconf | Commit -> unsupported proc

(* v2 maps our rich nfsstat onto its smaller code space; codes above the
   v2 range degrade to EIO, which is what old servers did. *)
let v2_status (st : Types.nfsstat) =
  match st with
  | Err_badhandle | Err_notsupp | Err_serverfault | Err_jukebox -> 5
  | other -> Types.nfsstat_to_int other

let encode_result e ~proc (r : Ops.result) =
  let status e = match r with Ok _ -> E.uint32 e 0 | Error st -> E.uint32 e (v2_status st) in
  match (proc : Proc.t) with
  | Null -> ()
  | Root | Writecache -> ()
  | Getattr | Setattr -> (
      status e;
      match r with
      | Ok (R_attr a) -> encode_fattr e a
      | Ok _ -> raise (Unsupported "attrstat result shape")
      | Error _ -> ())
  | Lookup -> (
      status e;
      match r with
      | Ok (R_lookup { fh; obj; _ }) ->
          encode_fh e fh;
          encode_fattr e (Option.value obj ~default:Types.default_fattr)
      | Ok _ -> raise (Unsupported "diropres result shape")
      | Error _ -> ())
  | Readlink -> (
      status e;
      match r with
      | Ok (R_readlink target) -> E.string e target
      | Ok _ -> raise (Unsupported "readlink result shape")
      | Error _ -> ())
  | Read -> (
      status e;
      match r with
      | Ok (R_read { attr; count; eof = _ }) ->
          encode_fattr e (Option.value attr ~default:Types.default_fattr);
          E.opaque e (filler count)
      | Ok _ -> raise (Unsupported "read result shape")
      | Error _ -> ())
  | Write -> (
      status e;
      match r with
      | Ok (R_write { attr; _ }) -> encode_fattr e (Option.value attr ~default:Types.default_fattr)
      | Ok _ -> raise (Unsupported "write result shape")
      | Error _ -> ())
  | Create | Mkdir | Symlink -> (
      status e;
      match r with
      | Ok (R_create { fh; attr }) ->
          (* v2 SYMLINK replies carry only status, but encoding the
             diropres for CREATE/MKDIR; SYMLINK handled below. *)
          if proc <> Symlink then begin
            encode_fh e (Option.value fh ~default:(Fh.make ~fsid:0 ~fileid:0));
            encode_fattr e (Option.value attr ~default:Types.default_fattr)
          end
      | Ok _ -> raise (Unsupported "create result shape")
      | Error _ -> ())
  | Remove | Rmdir | Rename | Link -> status e
  | Readdir -> (
      status e;
      match r with
      | Ok (R_readdir { entries; eof }) ->
          List.iter
            (fun (entry : Ops.dir_entry) ->
              E.bool e true;
              E.uint32 e (clamp32 entry.entry_fileid);
              E.string e entry.entry_name;
              E.uint32 e (clamp32 entry.entry_cookie))
            entries;
          E.bool e false;
          E.bool e eof
      | Ok _ -> raise (Unsupported "readdir result shape")
      | Error _ -> ())
  | Statfs -> (
      status e;
      match r with
      | Ok (R_statfs { total_bytes; free_bytes }) ->
          E.uint32 e 8192 (* tsize *);
          E.uint32 e 4096 (* bsize *);
          E.uint32 e (clamp32 (Int64.div total_bytes 4096L));
          E.uint32 e (clamp32 (Int64.div free_bytes 4096L));
          E.uint32 e (clamp32 (Int64.div free_bytes 4096L))
      | Ok _ -> raise (Unsupported "statfs result shape")
      | Error _ -> ())
  | Access | Mknod | Readdirplus | Fsinfo | Pathconf | Commit -> unsupported proc

let decode_status d = Types.nfsstat_of_int (D.uint32 d)

let decode_result ~proc d : Ops.result =
  let status = decode_status in
  match (proc : Proc.t) with
  | Null -> Ok R_null
  | Root | Writecache -> Ok R_null
  | Getattr | Setattr -> (
      match status d with Ok_ -> Ok (R_attr (decode_fattr d)) | err -> Error err)
  | Lookup -> (
      match status d with
      | Ok_ ->
          let fh = decode_fh d in
          let attr = decode_fattr d in
          Ok (R_lookup { fh; obj = Some attr; dir = None })
      | err -> Error err)
  | Readlink -> (
      match status d with Ok_ -> Ok (R_readlink (D.string d)) | err -> Error err)
  | Read -> (
      match status d with
      | Ok_ ->
          let attr = decode_fattr d in
          let data = D.opaque d in
          Ok (R_read { attr = Some attr; count = String.length data; eof = false })
      | err -> Error err)
  | Write -> (
      match status d with
      | Ok_ ->
          let attr = decode_fattr d in
          (* v2 writes are always synchronous full writes. *)
          Ok (R_write { count = 0; committed = Types.File_sync; attr = Some attr })
      | err -> Error err)
  | Create | Mkdir -> (
      match status d with
      | Ok_ ->
          let fh = decode_fh d in
          let attr = decode_fattr d in
          Ok (R_create { fh = Some fh; attr = Some attr })
      | err -> Error err)
  | Symlink -> (
      match status d with Ok_ -> Ok (R_create { fh = None; attr = None }) | err -> Error err)
  | Remove | Rmdir | Rename | Link -> (
      match status d with Ok_ -> Ok R_empty | err -> Error err)
  | Readdir -> (
      match status d with
      | Ok_ ->
          let rec entries acc =
            if D.bool d then begin
              let entry_fileid = Int64.of_int (D.uint32 d) in
              let entry_name = D.string d in
              let entry_cookie = Int64.of_int (D.uint32 d) in
              entries ({ Ops.entry_fileid; entry_name; entry_cookie } :: acc)
            end
            else List.rev acc
          in
          let es = entries [] in
          let eof = D.bool d in
          Ok (R_readdir { entries = es; eof })
      | err -> Error err)
  | Statfs -> (
      match status d with
      | Ok_ ->
          let _tsize = D.uint32 d in
          let bsize = D.uint32 d in
          let blocks = D.uint32 d in
          let bfree = D.uint32 d in
          let _bavail = D.uint32 d in
          Ok
            (R_statfs
               {
                 total_bytes = Int64.of_int (blocks * bsize);
                 free_bytes = Int64.of_int (bfree * bsize);
               })
      | err -> Error err)
  | Access | Mknod | Readdirplus | Fsinfo | Pathconf | Commit -> unsupported proc
[@@nt.alloc_ok "the readdir entry list (cons + rev + local walker) is the decoded value"]
