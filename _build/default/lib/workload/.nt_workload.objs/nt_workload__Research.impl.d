lib/workload/research.ml: Array Diurnal Float Int64 Io_patterns List Nt_net Nt_nfs Nt_sim Nt_util Option Printf
