lib/net/ip_addr.mli:
