(* The paper's read-ahead experiment (§6.4): an NFS server whose
   prefetch heuristic uses the sequentiality metric keeps streaming
   through nfsiod-reordered requests, while the classic fragile
   heuristic collapses toward no-read-ahead behaviour.

   Run with: dune exec examples/readahead_demo.exe *)

module Ra = Nt_sim.Readahead

let () =
  Printf.printf "16 MB sequential transfer, requests reordered by nfsiod scheduling\n\n";
  Printf.printf "%-10s %-12s %-12s %-12s %s\n" "reordered" "no-RA" "fragile" "seq-metric"
    "metric vs fragile";
  List.iter
    (fun frac ->
      let none = Ra.run ~reorder_fraction:frac Ra.No_readahead in
      let fragile = Ra.run ~reorder_fraction:frac Ra.Fragile in
      let metric = Ra.run ~reorder_fraction:frac Ra.Metric in
      Printf.printf "%8.0f%%  %9.3f s  %9.3f s  %9.3f s  %+.1f%%\n" (100. *. frac)
        none.total_time fragile.total_time metric.total_time
        (Ra.speedup ~baseline:fragile metric))
    [ 0.0; 0.02; 0.05; 0.10; 0.15; 0.20; 0.30 ];
  Printf.printf
    "\nThe paper observed ~10%% reordering on a loaded client and >5%% end-to-end\n\
     improvement from the metric-driven heuristic; the same crossover appears here.\n"
