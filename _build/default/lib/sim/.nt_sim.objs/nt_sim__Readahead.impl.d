lib/sim/readahead.ml: Array Disk Nt_util Queue
