(** The paper's analyses packaged as {!Driver.pass} values, plus the
    chunk-parallel terminal analyses that consume a merged I/O log.

    Summary, hourly and the I/O log are position-independent, so their
    shard accumulator is the plain empty one. Names and lifetime need
    the shard-mode constructors that defer what only predecessor shards
    can resolve. Runs, the sequentiality metric and the reorder window
    are pure functions of per-file access lists, so they run after the
    I/O-log merge, chunked over {!Nt_analysis.Io_log.sorted_files} —
    the shard-boundary carry for an open run is the log merge itself. *)

val summary : Nt_analysis.Summary.t Driver.pass
val hourly : Nt_analysis.Hourly.t Driver.pass
val io_log : Nt_analysis.Io_log.t Driver.pass
val names : Nt_analysis.Names.t Driver.pass
val lifetime : Nt_analysis.Lifetime.config -> Nt_analysis.Lifetime.t Driver.pass

val runs :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  ?window:float ->
  ?gap:float ->
  ?chunk:int ->
  jump_blocks:int ->
  Pool.t ->
  Nt_analysis.Io_log.t ->
  Nt_analysis.Runs.run list
(** Chunk-parallel {!Nt_analysis.Runs.analyze}. Runs come back ordered
    by (file-handle, position) rather than hash-table order — a
    deterministic permutation of the sequential result, so every
    aggregate ({!Nt_analysis.Runs.table3} etc.) is identical. *)

val seq_curve :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  ?window:float ->
  ?chunk:int ->
  Pool.t ->
  Nt_analysis.Io_log.t ->
  Nt_analysis.Seqmetric.curve
(** Chunk-parallel {!Nt_analysis.Seqmetric.analyze}. Per-chunk tallies
    merge in chunk order, so the result is worker-count-invariant;
    against the sequential pass, float metric sums may differ by
    reassociation only (1e-9 relative). *)
