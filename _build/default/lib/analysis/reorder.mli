(** Reorder-window analysis (paper §4.2, Figure 1).

    Measures how many accesses get swapped when the reorder window is
    applied at each candidate size, reproducing the knee the paper uses
    to pick 5 ms (EECS) and 10 ms (CAMPUS) windows, and quantifies raw
    out-of-order arrivals for the §4.1.5 nfsiod experiment. *)

val swap_percentages : Io_log.t -> windows_ms:float list -> (float * float) list
(** [(window_ms, percent_of_accesses_swapped)] for each window size. *)

val knee : (float * float) list -> float
(** Smallest window (ms) after which growing the window further yields
    < 10% relative improvement — the paper's "knee" selection rule. *)

val out_of_order_fraction : Io_log.t -> float
(** Fraction of consecutive same-file access pairs whose offsets run
    backwards in arrival order — the raw reordering level (the paper
    observed up to ~10% under load). *)
