(* nt_obs tests: metric semantics, label canonicalisation, span nesting
   under a fake clock, disabled-mode no-ops, both exporters, the
   embedded JSON parser, and a Pipeline integration test asserting
   packet conservation straight from the exported JSON. *)

module Obs = Nt_obs.Obs
module Json = Nt_obs.Obs.Json

(* --- counters --- *)

let test_counter_basics () =
  let t = Obs.create () in
  let c = Obs.counter t ~help:"test" "c.basic" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.inc c;
  Obs.add c 41;
  Alcotest.(check int) "inc + add" 42 (Obs.value c);
  Obs.add c (-7);
  Alcotest.(check int) "negative add ignored (monotone)" 42 (Obs.value c)

let test_counter_idempotent_registration () =
  let t = Obs.create () in
  let a = Obs.counter t "c.same" in
  let b = Obs.counter t "c.same" in
  Obs.inc a;
  Obs.inc b;
  Alcotest.(check int) "both handles hit one cell" 2 (Obs.value a);
  Alcotest.(check int)
    "snapshot sees a single metric" 1
    (List.length
       (List.filter (fun (m : Obs.metric) -> m.name = "c.same") (Obs.snapshot t).metrics))

let test_cross_kind_registration_rejected () =
  let t = Obs.create () in
  ignore (Obs.counter t "c.kind");
  match Obs.gauge t "c.kind" with
  | _ -> Alcotest.fail "re-registering a counter as a gauge must raise"
  | exception Invalid_argument _ -> ()

(* --- labels --- *)

let test_labels_distinguish_and_canonicalise () =
  let t = Obs.create () in
  let red = Obs.counter t ~labels:[ ("colour", "red"); ("shape", "dot") ] "c.lab" in
  let blue = Obs.counter t ~labels:[ ("colour", "blue"); ("shape", "dot") ] "c.lab" in
  (* Same pairs in the opposite order resolve to the same cell. *)
  let red2 = Obs.counter t ~labels:[ ("shape", "dot"); ("colour", "red") ] "c.lab" in
  Obs.inc red;
  Obs.inc red2;
  Obs.inc blue;
  Alcotest.(check int) "label order is canonical" 2 (Obs.value red);
  Alcotest.(check int) "distinct label sets are distinct" 1 (Obs.value blue);
  let snap = Obs.snapshot t in
  Alcotest.(check (option int))
    "lookup by labels" (Some 2)
    (Obs.get_counter snap ~labels:[ ("colour", "red"); ("shape", "dot") ] "c.lab");
  Alcotest.(check int) "sum across label sets" 3 (Obs.sum_counter snap "c.lab")

(* --- gauges and histograms --- *)

let test_gauge () =
  let t = Obs.create () in
  let g = Obs.gauge t "g.depth" in
  Obs.set g 3.;
  Alcotest.(check (float 0.)) "set" 3. (Obs.gauge_value g);
  Obs.set_max g 1.;
  Alcotest.(check (float 0.)) "set_max keeps the peak" 3. (Obs.gauge_value g);
  Obs.set_max g 9.;
  Alcotest.(check (float 0.)) "set_max moves up" 9. (Obs.gauge_value g)

let test_histogram () =
  let t = Obs.create () in
  let h = Obs.histogram t ~buckets:[ 1.; 5. ] "h.lat" in
  List.iter (Obs.observe h) [ 0.5; 3.; 10. ];
  Alcotest.(check int) "count" 3 (Obs.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 13.5 (Obs.histogram_sum h);
  match
    List.find_opt (fun (m : Obs.metric) -> m.name = "h.lat") (Obs.snapshot t).metrics
  with
  | Some { value = Obs.Histogram { le; counts; sum; count }; _ } ->
      Alcotest.(check (list (float 0.))) "bounds" [ 1.; 5. ] le;
      Alcotest.(check (list int)) "per-bucket counts + overflow" [ 1; 1; 1 ] counts;
      Alcotest.(check (float 1e-9)) "snap sum" 13.5 sum;
      Alcotest.(check int) "snap count" 3 count
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* --- spans --- *)

let test_span_nesting_and_timing () =
  let clock = ref 100. in
  let t = Obs.create ~clock:(fun () -> !clock) () in
  Obs.span_open t "outer";
  clock := 101.;
  Obs.span_open t "inner";
  clock := 103.;
  Obs.span_close t "inner";
  clock := 106.;
  Obs.span_close t "outer";
  let snap = Obs.snapshot t in
  (match Obs.get_span snap "outer" with
  | Some s ->
      Alcotest.(check int) "outer count" 1 s.count;
      Alcotest.(check (float 1e-9)) "outer total" 6. s.total_s
  | None -> Alcotest.fail "outer span missing");
  match Obs.get_span snap "outer/inner" with
  | Some s ->
      Alcotest.(check int) "nested count" 1 s.count;
      Alcotest.(check (float 1e-9)) "nested total" 2. s.total_s;
      Alcotest.(check (float 1e-9)) "min = max on one sample" s.min_s s.max_s
  | None -> Alcotest.fail "nested span recorded under parent/child path"

let test_span_monotonic_clamp () =
  (* A clock that runs backwards must never produce a negative span. *)
  let clock = ref 50. in
  let t = Obs.create ~clock:(fun () -> !clock) () in
  Obs.span_open t "back";
  clock := 40.;
  Obs.span_close t "back";
  match Obs.get_span (Obs.snapshot t) "back" with
  | Some s -> Alcotest.(check bool) "non-negative duration" true (s.total_s >= 0.)
  | None -> Alcotest.fail "span missing"

let test_reanchor_forward_jump () =
  (* Checkpoint restore after downtime: the wall clock leapt forward
     while the monitor was dead. Re-anchoring must charge the open span
     only for time after the restore. *)
  let clock = ref 100. in
  let t = Obs.create ~clock:(fun () -> !clock) () in
  Obs.span_open t "svc";
  clock := 500.;
  (* hours of downtime *)
  Obs.reanchor t;
  clock := 501.5;
  Obs.span_close t "svc";
  match Obs.get_span (Obs.snapshot t) "svc" with
  | Some s -> Alcotest.(check (float 1e-9)) "downtime excluded" 1.5 s.total_s
  | None -> Alcotest.fail "span missing"

let test_reanchor_backward_clock () =
  (* Restoring on a machine whose clock is behind the checkpointed one:
     the monotonic clamp must release downward instead of freezing the
     registry clock in the future (which would zero every duration). *)
  let clock = ref 100. in
  let t = Obs.create ~clock:(fun () -> !clock) () in
  Obs.span_open t "svc";
  clock := 40.;
  Obs.reanchor t;
  Alcotest.(check (float 1e-9)) "registry clock released down" 40. (Obs.now t);
  clock := 41.;
  Obs.span_close t "svc";
  match Obs.get_span (Obs.snapshot t) "svc" with
  | Some s -> Alcotest.(check (float 1e-9)) "post-restore time only" 1. s.total_s
  | None -> Alcotest.fail "span missing"

let test_with_span_closes_on_raise () =
  let clock = ref 0. in
  let t = Obs.create ~clock:(fun () -> !clock) () in
  (try
     Obs.with_span t "boom" (fun () ->
         clock := 2.;
         failwith "inside")
   with Failure _ -> ());
  (* If "boom" leaked open, this span would nest under it. *)
  Obs.with_span t "after" (fun () -> clock := 3.);
  let snap = Obs.snapshot t in
  Alcotest.(check bool) "raising span recorded" true (Obs.get_span snap "boom" <> None);
  Alcotest.(check bool) "later span is top-level" true (Obs.get_span snap "after" <> None);
  Obs.span_close t "stray";
  Alcotest.(check int) "extra close is ignored" 2 (List.length (Obs.snapshot t).spans)

(* --- disabled mode --- *)

let test_disabled_noop () =
  let reads = ref 0 in
  let t =
    Obs.create ~enabled:false
      ~clock:(fun () ->
        incr reads;
        0.)
      ()
  in
  let reads_at_create = !reads in
  let c = Obs.counter t "c.off" in
  let g = Obs.gauge t "g.off" in
  let h = Obs.histogram t ~buckets:[ 1. ] "h.off" in
  Obs.inc c;
  Obs.add c 10;
  Obs.set g 5.;
  Obs.observe h 2.;
  Obs.with_span t "s.off" Fun.id;
  Alcotest.(check int) "counter untouched" 0 (Obs.value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Obs.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.histogram_count h);
  (* Taking the snapshot below reads the clock once for taken_at; the
     updates and spans above must not have. *)
  Alcotest.(check int) "disabled spans never read the clock" reads_at_create !reads;
  Alcotest.(check bool) "no spans recorded" true ((Obs.snapshot t).spans = []);
  Alcotest.(check bool) "snapshot says disabled" false (Obs.snapshot t).snap_enabled

let test_null_registry_stays_disabled () =
  Obs.set_enabled Obs.null true;
  Alcotest.(check bool) "null is frozen" false (Obs.enabled Obs.null);
  let c = Obs.counter Obs.null "c.null" in
  Obs.inc c;
  Alcotest.(check int) "null counters never move" 0 (Obs.value c)

(* --- exporters and the JSON parser --- *)

let test_json_roundtrip () =
  let t = Obs.create () in
  Obs.add (Obs.counter t ~labels:[ ("kind", "x") ] ~help:"things" "c.json") 7;
  Obs.set (Obs.gauge t "g.json") 2.5;
  Obs.with_span t "stage" Fun.id;
  let doc =
    match Json.parse (Obs.to_json (Obs.snapshot t)) with
    | Ok v -> v
    | Error e -> Alcotest.failf "export does not parse: %s" e
  in
  Alcotest.(check (option string))
    "schema tag" (Some Nt_formats.Formats.obs_snapshot)
    (Option.bind (Json.member "schema" doc) Json.to_str);
  Alcotest.(check (option (float 0.)))
    "labeled counter via metric_number" (Some 7.)
    (Json.metric_number doc ~labels:[ ("kind", "x") ] "c.json");
  Alcotest.(check (option (float 0.)))
    "gauge via metric_number" (Some 2.5) (Json.metric_number doc "g.json");
  Alcotest.(check bool) "wrong labels miss" true
    (Json.find_metric doc ~labels:[ ("kind", "y") ] "c.json" = None);
  let spans = Option.bind (Json.member "spans" doc) Json.to_list in
  Alcotest.(check (option int)) "span exported" (Some 1) (Option.map List.length spans)

let test_json_parser_rejects_garbage () =
  (match Json.parse "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed value accepted"

let test_prometheus_export () =
  let t = Obs.create () in
  Obs.add (Obs.counter t ~labels:[ ("reason", "bad") ] ~help:"oops" "capture.decode_failure") 3;
  Obs.observe (Obs.histogram t ~buckets:[ 1. ] "h.prom") 0.5;
  Obs.with_span t "stage" Fun.id;
  let text = Obs.to_prometheus (Obs.snapshot t) in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "sanitised counter line" true
    (has "capture_decode_failure{reason=\"bad\"} 3");
  Alcotest.(check bool) "type header" true (has "# TYPE capture_decode_failure counter");
  Alcotest.(check bool) "histogram +Inf bucket" true (has "h_prom_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "span series" true (has "nt_span_count{path=\"stage\"} 1")

(* --- socket exporter --- *)

(* The exporter is single-threaded by design: all its work happens in
   [poll]. The test client therefore has to be non-blocking too,
   interleaving its own connect/write/read with the exporter's polls. *)
let fetch_interleaved exp ~port ~path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
  let request = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
  let buf = Buffer.create 4096 in
  let sent = ref 0 in
  let closed = ref false in
  let rounds = ref 0 in
  while (not !closed) && !rounds < 500 do
    incr rounds;
    Nt_obs.Exporter.poll exp;
    (if !sent < String.length request then
       match Unix.write_substring fd request !sent (String.length request - !sent) with
       | n -> sent := !sent + n
       | exception
           Unix.Unix_error
             ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINPROGRESS | Unix.ENOTCONN), _, _) ->
           ()
     else
       let b = Bytes.create 4096 in
       match Unix.read fd b 0 4096 with
       | 0 -> closed := true
       | n -> Buffer.add_subbytes buf b 0 n
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    if not !closed then Unix.sleepf 0.001
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Buffer.contents buf

let test_exporter_serves_endpoints () =
  let t = Obs.create () in
  Obs.add (Obs.counter t ~help:"records ingested" "mon.ingested") 42;
  match Nt_obs.Exporter.create t with
  | Error e -> Alcotest.fail ("exporter create failed: " ^ e)
  | Ok exp ->
      let port = Nt_obs.Exporter.port exp in
      Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
      let has hay needle =
        let n = String.length needle and m = String.length hay in
        let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      let metrics = fetch_interleaved exp ~port ~path:"/metrics" in
      Alcotest.(check bool) "/metrics 200" true (has metrics "200 OK");
      Alcotest.(check bool) "/metrics body" true (has metrics "mon_ingested 42");
      let json = fetch_interleaved exp ~port ~path:"/json" in
      Alcotest.(check bool) "/json 200" true (has json "200 OK");
      Alcotest.(check bool) "/json body" true (has json "\"mon.ingested\"");
      let missing = fetch_interleaved exp ~port ~path:"/nope" in
      Alcotest.(check bool) "unknown path 404" true (has missing "404");
      Nt_obs.Exporter.close exp;
      (* closed exporter: connection refused, not a hang *)
      (match
         Nt_obs.Exporter.scrape ~timeout_s:1.0 ~addr:"127.0.0.1" ~port ~path:"/metrics" ()
       with
      | Ok _ -> Alcotest.fail "scrape succeeded after close"
      | Error _ -> ())

(* --- timeline: Chrome trace-event export --- *)

module Timeline = Nt_obs.Timeline

(* Decode a trace document and enforce the three per-track invariants
   the writer promises: timestamps monotone non-decreasing, every End
   matches the innermost open Begin (strict nesting), and no End
   without a Begin. Returns the event count. *)
let check_trace_wellformed json_str =
  let fail fmt = Alcotest.failf fmt in
  let doc =
    match Json.parse json_str with Ok v -> v | Error e -> fail "trace does not parse: %s" e
  in
  let evs =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> l
    | None -> fail "no traceEvents array"
  in
  let stacks = Hashtbl.create 8 and lasts = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let str m = Option.bind (Json.member m ev) Json.to_str in
      let num m = Option.bind (Json.member m ev) Json.to_num in
      let ph = Option.value (str "ph") ~default:"?" in
      let name = Option.value (str "name") ~default:"?" in
      let tid =
        match num "tid" with Some f -> int_of_float f | None -> fail "event without tid"
      in
      let ts = match num "ts" with Some f -> f | None -> fail "event without ts" in
      let last = Option.value (Hashtbl.find_opt lasts tid) ~default:neg_infinity in
      if ts < last then fail "track %d: ts %f after %f" tid ts last;
      Hashtbl.replace lasts tid ts;
      let stack = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
      match ph with
      | "B" -> Hashtbl.replace stacks tid (name :: stack)
      | "E" -> (
          match stack with
          | [] -> fail "track %d: End %S with nothing open" tid name
          | top :: rest ->
              if top <> name then fail "track %d: End %S but innermost open is %S" tid name top;
              Hashtbl.replace stacks tid rest)
      | "C" -> ()
      | ph -> fail "unknown phase %S" ph)
    evs;
  List.length evs

(* Random op soup over three tracks with a jittery clock (steps can go
   backwards) and interleaved reanchors: the emitted stream must stay
   well-formed no matter the order. *)
let prop_timeline_wellformed =
  QCheck.Test.make ~count:200 ~name:"timeline: random ops emit a well-formed trace"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 120) (triple (int_bound 2) (int_bound 9) (int_range (-5) 20)))
    (fun ops ->
      let tl = Timeline.create () in
      let clock = ref 100. in
      List.iter
        (fun (tid, kind, dt) ->
          clock := !clock +. (float_of_int dt *. 0.001);
          let ts = !clock in
          match kind with
          | 0 | 1 | 2 -> Timeline.span_begin tl ~tid ~name:(Printf.sprintf "s%d" kind) ~ts
          | 3 | 4 | 5 -> Timeline.span_end tl ~tid ~name:"whatever" ~ts
          | 6 | 7 -> Timeline.counter tl ~tid ~name:"c" ~ts ~value:(float_of_int dt) ()
          | 8 -> Timeline.span tl ~tid ~name:"complete" ~t0:ts ~t1:(ts +. 0.0005)
          | _ -> Timeline.reanchor tl ~ts)
        ops;
      let n = check_trace_wellformed (Timeline.to_json tl) in
      n = Timeline.events tl)

(* Same property with the events arriving through an attached Obs
   registry (the production path), including a mid-run reanchor. *)
let test_timeline_attach_reanchor () =
  let clock = ref 10. in
  let obs = Obs.create ~clock:(fun () -> !clock) () in
  let tl = Timeline.create () in
  Timeline.attach ~tid:1 tl obs;
  Obs.span_open obs "svc";
  clock := 11.;
  Obs.span_open obs "svc.step";
  clock := 500.;
  Obs.reanchor obs;
  clock := 500.5;
  Obs.span_close obs "svc.step";
  clock := 501.;
  Obs.span_close obs "svc";
  ignore (check_trace_wellformed (Timeline.to_json tl) : int);
  (* reanchor closes and reopens both spans: 2B + 2E + 2B + 2E *)
  Alcotest.(check int) "close/reopen doubles the events" 8 (Timeline.events tl);
  Alcotest.(check int) "nothing dropped" 0 (Timeline.dropped tl)

let test_timeline_cap_drops_whole_spans () =
  let tl = Timeline.create ~cap:16 () in
  for i = 0 to 39 do
    let t0 = float_of_int i in
    Timeline.span_begin tl ~tid:1 ~name:"w" ~ts:t0;
    Timeline.span_end tl ~tid:1 ~name:"w" ~ts:(t0 +. 0.5)
  done;
  ignore (check_trace_wellformed (Timeline.to_json tl) : int);
  Alcotest.(check bool) "drops counted" true (Timeline.dropped tl > 0);
  (* Whole spans drop: at depth 1 the store holds at most cap + 1
     events (a final balancing End may land past the cap). *)
  Alcotest.(check bool) "bounded store" true (Timeline.events tl <= 17);
  Alcotest.(check int) "all 80 accounted" 80 (Timeline.events tl + Timeline.dropped tl)

let test_timeline_worker_buffers () =
  let tl = Timeline.create () in
  let b = Timeline.buf () in
  Timeline.buf_add b ~name:"pass.summary" ~t0:1.0 ~t1:1.5;
  Timeline.buf_add b ~name:"pass.names" ~t0:1.5 ~t1:1.9;
  Timeline.absorb tl b;
  Timeline.counter tl ~tid:1_000_000 ~name:"heap_words" ~ts:1.2 ~value:4096. ();
  ignore (check_trace_wellformed (Timeline.to_json tl) : int);
  Alcotest.(check int) "2 spans + 1 counter" 5 (Timeline.events tl);
  Alcotest.(check int) "worker track + counter track" 2 (Timeline.tracks_count tl)

(* Byte-level golden: a fixed op sequence on explicit tids must render
   the exact Chrome trace JSON (pid normalised — it is the one
   run-dependent field). *)
let build_golden_timeline () =
  let tl = Timeline.create ~cap:64 () in
  Timeline.span_begin tl ~tid:1 ~name:"parse" ~ts:10.0;
  Timeline.span_begin tl ~tid:1 ~name:"parse/decode" ~ts:10.001;
  Timeline.counter tl ~tid:7 ~name:"heap_words" ~ts:10.0015 ~value:4096. ();
  Timeline.span_end tl ~tid:1 ~name:"parse/decode" ~ts:10.002;
  Timeline.span tl ~tid:2 ~name:"shard.0" ~t0:10.0005 ~t1:10.003;
  Timeline.counter tl ~tid:7 ~name:"heap_words" ~ts:10.004 ~value:5120. ();
  Timeline.span_end tl ~tid:1 ~name:"parse" ~ts:10.005;
  tl

let normalize_pid s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let key = "\"pid\": " in
  let k = String.length key in
  let i = ref 0 in
  while !i < n do
    if !i + k <= n && String.sub s !i k = key then begin
      Buffer.add_string b "\"pid\": 0";
      i := !i + k;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_timeline_golden () =
  let got = normalize_pid (Timeline.to_json (build_golden_timeline ())) in
  let want = read_file "golden/timeline.golden" in
  Alcotest.(check string) "chrome trace bytes" want got

(* --- resource sampler --- *)

module Sampler = Nt_obs.Sampler
module Footprint = Nt_obs.Footprint

(* Gc counters never run backwards, so under an arbitrarily jittery
   injected clock every successive delta must clamp non-negative and
   the sample clock must stay monotone (the registry clamp). *)
let prop_sampler_deltas_nonnegative =
  QCheck.Test.make ~count:100 ~name:"sampler: deltas non-negative under clock jitter"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range (-1000) 1000))
    (fun jumps ->
      let clock = ref 100. in
      let obs = Obs.create ~clock:(fun () -> !clock) () in
      let s = Sampler.create ~interval:0.01 obs in
      let samples =
        List.map
          (fun jump ->
            clock := !clock +. (float_of_int jump /. 100.);
            ignore (Sys.opaque_identity (Array.make 64 jump));
            Sampler.sample_now s)
          jumps
      in
      List.iter2
        (fun older newer ->
          if newer.Sampler.at < older.Sampler.at then
            QCheck.Test.fail_reportf "sample clock ran backwards";
          let d = Sampler.delta ~older ~newer in
          if
            d.Sampler.d_seconds < 0. || d.Sampler.d_minor_words < 0.
            || d.Sampler.d_major_words < 0.
            || d.Sampler.d_promoted_words < 0.
            || d.Sampler.d_minor_collections < 0
            || d.Sampler.d_major_collections < 0
            || d.Sampler.d_compactions < 0
          then QCheck.Test.fail_reportf "negative delta")
        (List.filteri (fun i _ -> i < List.length samples - 1) samples)
        (List.tl samples);
      true)

let test_sampler_ring_bounded () =
  let obs = Obs.create () in
  let s = Sampler.create ~interval:0.01 ~cap:4 obs in
  for _ = 1 to 10 do
    ignore (Sampler.sample_now s : Sampler.sample)
  done;
  Alcotest.(check int) "ring holds cap" 4 (List.length (Sampler.samples s));
  Alcotest.(check int) "baseline + 10" 11 (Sampler.taken s);
  Alcotest.(check int) "evictions counted" 7 (Sampler.evicted s);
  let ats = List.map (fun (smp : Sampler.sample) -> smp.Sampler.at) (Sampler.samples s) in
  Alcotest.(check bool) "oldest first" true (List.sort compare ats = ats)

let test_sampler_publishes_gauges_and_footprints () =
  let obs = Obs.create () in
  let s = Sampler.create ~interval:0.01 obs in
  Sampler.set_footprints s (fun () -> [ ("acc.test", Footprint.v ~cards:3 ~words:42) ]);
  ignore (Sampler.sample_now s : Sampler.sample);
  let doc =
    match Json.parse (Obs.to_json (Obs.snapshot obs)) with
    | Ok v -> v
    | Error e -> Alcotest.failf "snapshot does not parse: %s" e
  in
  let num ?labels name =
    match Json.metric_number doc ?labels name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  Alcotest.(check bool) "rt.heap_words live" true (num "rt.heap_words" > 0.);
  Alcotest.(check bool) "rt.samples counts" true (num "rt.samples" >= 2.);
  Alcotest.(check (float 0.))
    "nt_state_cards published" 3.
    (num ~labels:[ ("component", "acc.test") ] "nt_state_cards");
  Alcotest.(check (float 0.))
    "nt_state_words published" 42.
    (num ~labels:[ ("component", "acc.test") ] "nt_state_words")

let test_series_json_document () =
  let obs = Obs.create () in
  let s = Sampler.create ~interval:0.01 ~cap:8 obs in
  Sampler.set_footprints s (fun () -> [ ("acc.test", Footprint.v ~cards:1 ~words:9) ]);
  let doc =
    match Json.parse (Sampler.series_json s) with
    | Ok v -> v
    | Error e -> Alcotest.failf "/series does not parse: %s" e
  in
  Alcotest.(check (option string))
    "schema tag" (Some Nt_formats.Formats.obs_series)
    (Option.bind (Json.member "schema" doc) Json.to_str);
  let samples = Option.bind (Json.member "samples" doc) Json.to_list in
  (match samples with
  | None -> Alcotest.fail "no samples array"
  | Some l ->
      Alcotest.(check bool) "never empty (baseline + refresh)" true (List.length l >= 2);
      Alcotest.(check bool) "bounded by cap" true (List.length l <= 8);
      let ats =
        List.map (fun smp -> Option.bind (Json.member "at" smp) Json.to_num) l
      in
      Alcotest.(check bool) "timestamps monotone" true (List.sort compare ats = ats));
  match Option.bind (Json.member "footprint" doc) (Json.member "acc.test") with
  | None -> Alcotest.fail "footprint map missing acc.test"
  | Some fp ->
      Alcotest.(check (option (float 0.)))
        "words embedded" (Some 9.)
        (Option.bind (Json.member "words" fp) Json.to_num)

let test_exporter_series_endpoint () =
  let obs = Obs.create () in
  let s = Sampler.create ~interval:0.01 obs in
  Sampler.set_footprints s (fun () -> [ ("acc.test", Footprint.v ~cards:2 ~words:17) ]);
  match Nt_obs.Exporter.create ~series:(fun () -> Sampler.series_json s) obs with
  | Error e -> Alcotest.fail ("exporter create failed: " ^ e)
  | Ok exp ->
      let port = Nt_obs.Exporter.port exp in
      let has hay needle =
        let n = String.length needle and m = String.length hay in
        let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      let body = fetch_interleaved exp ~port ~path:"/series" in
      Nt_obs.Exporter.close exp;
      Alcotest.(check bool) "/series 200" true (has body "200 OK");
      Alcotest.(check bool) "schema tag served" true (has body Nt_formats.Formats.obs_series);
      Alcotest.(check bool) "footprints embedded" true (has body "\"acc.test\"")

(* --- Pipeline integration: conservation from the exported JSON --- *)

let test_pipeline_conservation_from_json () =
  let obs = Obs.create () in
  let start = Nt_util.Trace_week.time_of ~day:Nt_util.Trace_week.Wed ~hour:9 ~minute:0 in
  let buf = Buffer.create (1 lsl 20) in
  let writer = Nt_net.Pcap.writer_to_buffer buf in
  let stats =
    Nt_core.Pipeline.campus_to_pcap ~obs
      ~config:{ Nt_workload.Email.default_config with users = 8 }
      ~monitor_loss:0.05 ~start ~stop:(start +. 600.) ~writer ()
  in
  let doc =
    match Json.parse (Obs.to_json stats.snapshot) with
    | Ok v -> v
    | Error e -> Alcotest.failf "snapshot does not parse: %s" e
  in
  let num ?labels name =
    match Json.metric_number doc ?labels name with
    | Some v -> int_of_float v
    | None -> Alcotest.failf "metric %s missing from snapshot" name
  in
  let presented = num "fault.presented" in
  let written = num "pipe.packets_written" in
  let dropped = num ~labels:[ ("kind", "dropped") ] "fault.events" in
  Alcotest.(check int) "packets_written + dropped = frames attempted" presented
    (written + dropped);
  Alcotest.(check int) "struct written = registry" stats.packets_written written;
  Alcotest.(check int) "struct dropped = registry" stats.packets_dropped dropped;
  Alcotest.(check bool) "wrote some packets" true (written > 0);
  Alcotest.(check bool) "5% monitor loss dropped some" true (dropped > 0);
  Alcotest.(check bool) "emit-pcap span present" true
    (Obs.get_span stats.snapshot "emit-pcap" <> None);
  Alcotest.(check bool) "simulate span nests under emit-pcap" true
    (Obs.get_span stats.snapshot "emit-pcap/simulate.campus" <> None)

let () =
  Alcotest.run "nt_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "idempotent registration" `Quick test_counter_idempotent_registration;
          Alcotest.test_case "cross-kind rejected" `Quick test_cross_kind_registration_rejected;
        ] );
      ( "labels",
        [ Alcotest.test_case "distinguish + canonicalise" `Quick test_labels_distinguish_and_canonicalise ] );
      ( "gauges-histograms",
        [
          Alcotest.test_case "gauge set/set_max" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + timing" `Quick test_span_nesting_and_timing;
          Alcotest.test_case "monotonic clamp" `Quick test_span_monotonic_clamp;
          Alcotest.test_case "reanchor after forward jump" `Quick test_reanchor_forward_jump;
          Alcotest.test_case "reanchor after backward clock" `Quick test_reanchor_backward_clock;
          Alcotest.test_case "with_span closes on raise" `Quick test_with_span_closes_on_raise;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "no-op updates" `Quick test_disabled_noop;
          Alcotest.test_case "null stays disabled" `Quick test_null_registry_stays_disabled;
        ] );
      ( "export",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json parser rejects garbage" `Quick test_json_parser_rejects_garbage;
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
          Alcotest.test_case "socket exporter" `Quick test_exporter_serves_endpoints;
        ] );
      ( "timeline",
        [
          QCheck_alcotest.to_alcotest prop_timeline_wellformed;
          Alcotest.test_case "attach + reanchor stays balanced" `Quick test_timeline_attach_reanchor;
          Alcotest.test_case "cap drops whole spans" `Quick test_timeline_cap_drops_whole_spans;
          Alcotest.test_case "worker buffers absorb" `Quick test_timeline_worker_buffers;
          Alcotest.test_case "golden chrome trace" `Quick test_timeline_golden;
        ] );
      ( "sampler",
        [
          QCheck_alcotest.to_alcotest prop_sampler_deltas_nonnegative;
          Alcotest.test_case "ring bounded" `Quick test_sampler_ring_bounded;
          Alcotest.test_case "gauges + footprints published" `Quick
            test_sampler_publishes_gauges_and_footprints;
          Alcotest.test_case "/series document" `Quick test_series_json_document;
          Alcotest.test_case "/series endpoint" `Quick test_exporter_series_endpoint;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "conservation from exported JSON" `Quick test_pipeline_conservation_from_json ] );
    ]
