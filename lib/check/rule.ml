type severity = Info | Warn | Error

let severity_to_string = function Info -> "info" | Warn -> "warn" | Error -> "error"
let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2

type family =
  | Domain_safety
  | Merge_law
  | Decode_purity
  | Hygiene
  | Alloc
  | Bound
  | Footprint
  | Exn_flow
  | Codec_drift
  | Config

let family_to_string = function
  | Domain_safety -> "domain-safety"
  | Merge_law -> "merge-law"
  | Decode_purity -> "decode-purity"
  | Hygiene -> "hygiene"
  | Alloc -> "alloc"
  | Bound -> "bound"
  | Footprint -> "footprint"
  | Exn_flow -> "exn-flow"
  | Codec_drift -> "codec-drift"
  | Config -> "config"

type t = { id : string; family : family; severity : severity; doc : string }

let rule id family severity doc = { id; family; severity; doc }

(* --- domain safety --- *)

let dom_top_mutable =
  rule "dom-top-mutable" Domain_safety Error
    "top-level mutable container (ref, Hashtbl.t, Buffer.t, Queue.t, Stack.t) in a module \
     reachable from the parallel driver's task closures"

let dom_mutable_record =
  rule "dom-mutable-record" Domain_safety Error
    "top-level record literal with mutable fields in a module reachable from the parallel \
     driver's task closures"

(* --- merge laws --- *)

let merge_law_missing =
  rule "merge-law-missing" Merge_law Error
    "interface exposes merge : t -> t -> t with no registered merge-law property in the \
     test suite"

(* --- decode purity --- *)

let decode_raise =
  rule "decode-raise" Decode_purity Error
    "untyped failure (failwith, invalid_arg, assert false, raise of a stdlib exception) in \
     a decode-path function that does not return result or option"

let decode_partial_match =
  rule "decode-partial-match" Decode_purity Error
    "partial pattern match in a decode-path function that does not return result or option"

(* --- hygiene --- *)

let lib_stdout =
  rule "lib-stdout" Hygiene Error
    "stdout printing inside lib/ (results must go through nt_obs or be returned as data)"

let obj_magic = rule "obj-magic" Hygiene Error "Obj.magic defeats the type system"

let marshal_untrusted =
  rule "marshal-untrusted" Hygiene Error "Marshal.from_* deserialization of untrusted bytes"

let marshal_output =
  rule "marshal-output" Hygiene Warn
    "Marshal serialization (fragile, version-locked wire format)"

(* --- hot-path allocation --- *)

let alloc_hot_string =
  rule "alloc-hot-string" Alloc Error
    "intermediate string copy (String.sub, concat, ^, Bytes conversion, Buffer \
     materialization) in per-record hot code"

let alloc_hot_format =
  rule "alloc-hot-format" Alloc Error
    "Printf/Format call in per-record hot code (format interpretation allocates; error \
     paths under raise are exempt)"

let alloc_hot_list =
  rule "alloc-hot-list" Alloc Error
    "list construction (cons, append, List.map/rev/init) in per-record hot code"

let alloc_hot_closure =
  rule "alloc-hot-closure" Alloc Error
    "closure allocated per record (fun nested inside a hot function body)"

let alloc_poly_compare =
  rule "alloc-poly-compare" Alloc Error
    "polymorphic =, <>, compare or Hashtbl.hash at a type the compiler does not \
     specialize (walks the heap, allocates, and is slow on every record)"

(* --- accumulator boundedness --- *)

let bound_table =
  rule "bound-table" Bound Error
    "Hashtbl add/replace growth in per-record accumulator code with no eviction \
     (remove/reset/clear/filter_inplace) on the same table class anywhere in the module"

let bound_list =
  rule "bound-list" Bound Error
    "self-appending container growth (x :: t.f, Set.add into its own field) in per-record \
     accumulator code with no reset of the same field anywhere in the module"

(* --- state-footprint accounting --- *)

let footprint_missing =
  rule "footprint-missing" Footprint Error
    "interface exposes merge : t -> t -> t (a sharded accumulator) without a footprint \
     value over t, or its footprint has no registered property in the test suite — the \
     state-accounting gauges would silently omit this component"

(* --- interprocedural exception flow --- *)

let exn_escape =
  rule "exn-escape" Exn_flow Error
    "a counted-never-raised root (decode entry, streaming monitor surface, analyze_stream) \
     can transitively raise: its residual may-raise set after try-handler subtraction is \
     non-empty ([@@nt.raise_ok \"reason\"] accepts and counts the escape)"

(* --- codec / format drift --- *)

let codec_arm_missing =
  rule "codec-arm-missing" Codec_drift Error
    "a record call/success constructor has no encode (match) or decode (construct) arm in \
     the binary codec dispatch — the two halves of the wire format have forked"

let format_literal_drift =
  rule "format-literal-drift" Codec_drift Error
    "a string literal duplicates or version-forks a registered on-disk format tag instead \
     of referencing the Nt_formats registry"

let format_unregistered =
  rule "format-unregistered" Codec_drift Error
    "a version-tag-shaped string literal (name/N) names a format absent from the \
     Nt_formats registry"

(* --- configuration drift --- *)

let config_drift =
  rule "config-drift" Config Error
    "a configured reachability root, scope prefix or test unit matched no compiled module; \
     the corresponding rule family would be silently weaker"

let all =
  [
    dom_top_mutable;
    dom_mutable_record;
    merge_law_missing;
    decode_raise;
    decode_partial_match;
    lib_stdout;
    obj_magic;
    marshal_untrusted;
    marshal_output;
    alloc_hot_string;
    alloc_hot_format;
    alloc_hot_list;
    alloc_hot_closure;
    alloc_poly_compare;
    bound_table;
    bound_list;
    footprint_missing;
    exn_escape;
    codec_arm_missing;
    format_literal_drift;
    format_unregistered;
    config_drift;
  ]

let find id = List.find_opt (fun r -> r.id = id) all
