lib/analysis/reorder.ml: Array Float Io_log List
