type pattern = Entire | Sequential | Random

let pattern_to_string = function
  | Entire -> "entire"
  | Sequential -> "sequential"
  | Random -> "random"

type run = {
  is_read : bool;
  is_write : bool;
  bytes : int;
  file_size : int;
  pattern : pattern;
  accesses : int;
}

let split ?(gap = 30.) (accesses : Io_log.access array) =
  let n = Array.length accesses in
  let runs = ref [] in
  let current = ref [] in
  let flush () =
    match !current with
    | [] -> ()
    | items ->
        runs := Array.of_list (List.rev items) :: !runs;
        current := []
  in
  for i = 0 to n - 1 do
    (match !current with
    | last :: _ ->
        (* Rule (a): the previous access referenced EOF. Rule (b): the
           previous access is stale. *)
        if last.Io_log.at_eof || accesses.(i).Io_log.at -. last.Io_log.at > gap then flush ()
    | [] -> ());
    current := accesses.(i) :: !current
  done;
  flush ();
  List.rev !runs

let blocks_of ~block bytes = (bytes + block - 1) / block

let classify ?(block = 8192) ~jump_blocks (run : Io_log.access array) =
  let n = Array.length run in
  assert (n > 0);
  let first = run.(0) in
  let last = run.(n - 1) in
  if n = 1 then
    if first.offset = 0 && first.offset + first.count >= first.file_size then Entire
    else Sequential
  else begin
    let sequential = ref true in
    for i = 1 to n - 1 do
      let prev = run.(i - 1) in
      let expected = (prev.offset / block) + blocks_of ~block prev.count in
      let got = run.(i).offset / block in
      if abs (got - expected) >= jump_blocks then sequential := false
    done;
    if !sequential then
      if first.offset / block = 0 && last.offset + last.count >= last.file_size then Entire
      else Sequential
    else Random
  end
[@@nt.raise_ok
  "split only ever emits non-empty runs, and run_of_accesses is its sole other caller; an \
   empty run is a programming error"]

let run_of_accesses ~jump_blocks (accesses : Io_log.access array) =
  let bytes = Array.fold_left (fun acc (a : Io_log.access) -> acc + a.count) 0 accesses in
  let file_size =
    Array.fold_left (fun acc (a : Io_log.access) -> max acc a.file_size) 0 accesses
  in
  let is_read = Array.exists (fun (a : Io_log.access) -> a.is_read) accesses in
  let is_write = Array.exists (fun (a : Io_log.access) -> not a.is_read) accesses in
  {
    is_read;
    is_write;
    bytes;
    file_size;
    pattern = classify ~jump_blocks accesses;
    accesses = Array.length accesses;
  }

let analyze_file ?(window = 0.) ?(gap = 30.) ~jump_blocks accesses =
  let sorted = if window > 0. then fst (Io_log.sort_window window accesses) else accesses in
  List.map (run_of_accesses ~jump_blocks) (split ~gap sorted)

let analyze ?(window = 0.) ?(gap = 30.) ~jump_blocks log =
  let out = ref [] in
  Io_log.iter_files log (fun _ accesses ->
      out := List.rev_append (analyze_file ~window ~gap ~jump_blocks accesses) !out);
  !out

type table3_row = { entire_pct : float; sequential_pct : float; random_pct : float }

type table3 = {
  reads_pct : float;
  writes_pct : float;
  rw_pct : float;
  read : table3_row;
  write : table3_row;
  rw : table3_row;
  total_runs : int;
}

let table3 runs =
  let total = List.length runs in
  let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den in
  let bucket runs =
    let n = List.length runs in
    {
      entire_pct = pct (List.length (List.filter (fun r -> r.pattern = Entire) runs)) n;
      sequential_pct = pct (List.length (List.filter (fun r -> r.pattern = Sequential) runs)) n;
      random_pct = pct (List.length (List.filter (fun r -> r.pattern = Random) runs)) n;
    }
  in
  let reads = List.filter (fun r -> r.is_read && not r.is_write) runs in
  let writes = List.filter (fun r -> r.is_write && not r.is_read) runs in
  let rws = List.filter (fun r -> r.is_read && r.is_write) runs in
  {
    reads_pct = pct (List.length reads) total;
    writes_pct = pct (List.length writes) total;
    rw_pct = pct (List.length rws) total;
    read = bucket reads;
    write = bucket writes;
    rw = bucket rws;
    total_runs = total;
  }

type size_curve = {
  edges : float array;
  total : float array;
  entire : float array;
  sequential : float array;
  random : float array;
}

let by_file_size runs =
  (* Log2 buckets from 1 KB to 128 MB, as in Figure 2's axis. *)
  let edges = Array.init 18 (fun i -> 1024. *. (2. ** float_of_int i)) in
  let nb = Array.length edges + 1 in
  let totals = Array.make nb 0. in
  let entire = Array.make nb 0. in
  let sequential = Array.make nb 0. in
  let random = Array.make nb 0. in
  let bucket_of size =
    let rec go i = if i >= Array.length edges || size < edges.(i) then i else go (i + 1) in
    go 0
  in
  List.iter
    (fun r ->
      let b = bucket_of (float_of_int r.file_size) in
      let bytes = float_of_int r.bytes in
      totals.(b) <- totals.(b) +. bytes;
      match r.pattern with
      | Entire -> entire.(b) <- entire.(b) +. bytes
      | Sequential -> sequential.(b) <- sequential.(b) +. bytes
      | Random -> random.(b) <- random.(b) +. bytes)
    runs;
  let grand = Array.fold_left ( +. ) 0. totals in
  let cumulative src =
    let out = Array.make (Array.length edges) 0. in
    let acc = ref 0. in
    for i = 0 to Array.length edges - 1 do
      acc := !acc +. src.(i);
      out.(i) <- (if grand = 0. then 0. else 100. *. !acc /. grand)
    done;
    out
  in
  {
    edges;
    total = cumulative totals;
    entire = cumulative entire;
    sequential = cumulative sequential;
    random = cumulative random;
  }
