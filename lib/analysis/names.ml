module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Stats = Nt_util.Stats
module Intern = Nt_util.Intern

type category =
  | Lock
  | Mailbox
  | Mail_composer
  | Dot_file
  | Applet
  | Browser_cache
  | Temp_build
  | Autosave
  | Backup
  | Rcs_archive
  | Source
  | Object_file
  | Log_index
  | Dataset
  | Other

let all_categories =
  [ Lock; Mailbox; Mail_composer; Dot_file; Applet; Browser_cache; Temp_build; Autosave;
    Backup; Rcs_archive; Source; Object_file; Log_index; Dataset; Other ]

let category_to_string = function
  | Lock -> "lock"
  | Mailbox -> "mailbox"
  | Mail_composer -> "mail-composer"
  | Dot_file -> "dot-file"
  | Applet -> "applet"
  | Browser_cache -> "browser-cache"
  | Temp_build -> "temp-build"
  | Autosave -> "autosave"
  | Backup -> "backup"
  | Rcs_archive -> "rcs-archive"
  | Source -> "source"
  | Object_file -> "object"
  | Log_index -> "log-index"
  | Dataset -> "dataset"
  | Other -> "other"

(* categorize runs once per lookup/create record: compare in place, no
   substring copies. *)
let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf
  &&
  let ok = ref true in
  for i = 0 to lf - 1 do
    if s.[ls - lf + i] <> suf.[i] then ok := false
  done;
  !ok

let has_prefix s pre =
  let ls = String.length s and lp = String.length pre in
  ls >= lp
  &&
  let ok = ref true in
  for i = 0 to lp - 1 do
    if s.[i] <> pre.[i] then ok := false
  done;
  !ok

let categorize name =
  let n = String.length name in
  if n = 0 then Other
  else if has_suffix name ".lock" || name = "lock" then Lock
  else if name = ".inbox" || name = "mbox" || name = "inbox" || has_prefix name "saved-" then
    Mailbox
  else if has_prefix name "pine-tmp" then Mail_composer
  else if has_prefix name "Applet_" && has_suffix name "_Extern" then Applet
  else if has_prefix name "cache" && n >= 10 then Browser_cache
  else if n > 2 && name.[0] = '#' && name.[n - 1] = '#' then Autosave
  else if name.[n - 1] = '~' then Backup
  else if has_suffix name ",v" then Rcs_archive
  else if has_suffix name ".tmp" || has_prefix name "ld-" || has_prefix name "result-" then
    Temp_build
  else if has_suffix name ".c" || has_suffix name ".h" || has_suffix name ".ml" || name = "Makefile"
  then Source
  else if has_suffix name ".o" then Object_file
  else if has_suffix name ".log" || has_suffix name ".db" || name = ".history" then Log_index
  else if has_suffix name ".dat" || has_suffix name ".out" then Dataset
  else if name.[0] = '.' then Dot_file
  else Other

type file_info = {
  category : category;
  mutable created : float option;
  mutable deleted : float option;
  mutable max_size : float;
  mutable reads : int;
  mutable writes : int;
  mutable bytes : float;  (* READ+WRITE bytes against this file *)
}

module Fh_tbl = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

(* Name-binding keys are packed interned atoms (dir atom in the high
   bits, name atom in the low 31), so steady-state binding traffic is
   int-keyed: no tuple allocation, no polymorphic hashing, and no hex
   encoding of the directory handle. *)
module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

(* Key states for (dir, name) bindings. A root accumulator knows every
   binding, so "absent" means unbound. A shard accumulator starts blind:
   "absent" means unknown — the predecessor shards may hold a binding —
   and [Unbound] is an explicit tombstone recording that the shard
   itself unbound the key (so later events need no deferral). *)
type kstate = Bound of Fh.t | Unbound

(* I/O against a handle the shard has no info for. The sequential pass
   would count it iff an earlier shard introduced the file; kept aside
   and resolved (or dropped, matching the sequential drop) at merge. *)
type orphan = {
  mutable o_reads : int;
  mutable o_writes : int;
  mutable o_bytes : float;
  mutable o_max : float;
}

type t = {
  files : file_info Fh_tbl.t;
  atoms : Intern.t;  (* dir-handle and name atoms backing [names] keys *)
  names : kstate Int_tbl.t;
  mutable t_min : float;
  mutable t_max : float;
  root : bool;
  orphans : orphan Fh_tbl.t;  (* shard mode only *)
  (* Unresolved REMOVEs in arrival order; [n_deferred] live entries. *)
  mutable deferred : Record.t array;
  mutable n_deferred : int;
}

let make ~root =
  {
    files = Fh_tbl.create 4096;
    atoms = Intern.create 4096;
    names = Int_tbl.create 4096;
    t_min = infinity;
    t_max = neg_infinity;
    root;
    orphans = Fh_tbl.create 64;
    deferred = [||];
    n_deferred = 0;
  }

let create () = make ~root:true
let create_shard () = make ~root:false

let info_for t fh ~name =
  match Fh_tbl.find_opt t.files fh with
  | Some info -> info
  | None ->
      let info =
        { category = categorize name; created = None; deleted = None; max_size = 0.; reads = 0;
          writes = 0; bytes = 0. }
      in
      Fh_tbl.add t.files fh info;
      info
[@@nt.unbounded "one entry per distinct file handle; the per-file table is the analysis product"]

let key t ~dir ~name = (Intern.id t.atoms dir lsl 31) lor Intern.id t.atoms name
let key_dir t k = Intern.to_string t.atoms (k lsr 31)
let key_name t k = Intern.to_string t.atoms (k land 0x7FFFFFFF)

let note_size info size = if size > info.max_size then info.max_size <- size

let unbind t k =
  (* Root accumulators keep the historical "absent = unbound" encoding;
     shards need the tombstone to distinguish unbound from unknown. *)
  if t.root then Int_tbl.remove t.names k else Int_tbl.replace t.names k Unbound

let orphan_for t fh =
  match Fh_tbl.find_opt t.orphans fh with
  | Some o -> o
  | None ->
      let o = { o_reads = 0; o_writes = 0; o_bytes = 0.; o_max = 0. } in
      Fh_tbl.add t.orphans fh o;
      o
[@@nt.unbounded "one entry per distinct unresolved handle, resolved or dropped at merge"]

let push_deferred t r =
  if t.n_deferred >= Array.length t.deferred then begin
    let bigger = Array.make (max 8 (2 * Array.length t.deferred)) r in
    Array.blit t.deferred 0 bigger 0 t.n_deferred;
    t.deferred <- bigger
  end;
  t.deferred.(t.n_deferred) <- r;
  t.n_deferred <- t.n_deferred + 1
[@@nt.unbounded "shard replay journal of unresolved REMOVEs, drained at merge"]

let count_io t fh ~is_read (r : Record.t) =
  match Fh_tbl.find_opt t.files fh with
  | Some info ->
      if is_read then info.reads <- info.reads + 1 else info.writes <- info.writes + 1;
      info.bytes <- info.bytes +. float_of_int (Record.io_bytes r);
      (match Record.post_size r with
      | Some s -> note_size info (Int64.to_float s)
      | None -> ())
  | None ->
      (* A root pass drops I/O on never-named handles; a shard must
         remember it, because an earlier shard may have named the file. *)
      if not t.root then begin
        let o = orphan_for t fh in
        if is_read then o.o_reads <- o.o_reads + 1 else o.o_writes <- o.o_writes + 1;
        o.o_bytes <- o.o_bytes +. float_of_int (Record.io_bytes r);
        match Record.post_size r with
        | Some s -> if Int64.to_float s > o.o_max then o.o_max <- Int64.to_float s
        | None -> ()
      end

let observe t (r : Record.t) =
  if r.time < t.t_min then t.t_min <- r.time;
  if r.time > t.t_max then t.t_max <- r.time;
  match (r.call, r.result) with
  | Ops.Lookup { dir; name }, Some (Ok (Ops.R_lookup { fh; obj; _ })) ->
      Int_tbl.replace t.names (key t ~dir:(Fh.to_raw dir) ~name) (Bound fh);
      let info = info_for t fh ~name in
      (match obj with Some a -> note_size info (Int64.to_float a.size) | None -> ())
  | Ops.Create { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ }))
  | Ops.Mkdir { dir; name; _ }, Some (Ok (Ops.R_create { fh = Some fh; _ })) ->
      Int_tbl.replace t.names (key t ~dir:(Fh.to_raw dir) ~name) (Bound fh);
      let info = info_for t fh ~name in
      (match info.created with None -> info.created <- Some r.time | Some _ -> ())
  | Ops.Remove { dir; name }, Some (Ok _) -> (
      let k = key t ~dir:(Fh.to_raw dir) ~name in
      match Int_tbl.find_opt t.names k with
      | Some (Bound fh) -> (
          unbind t k;
          match Fh_tbl.find_opt t.files fh with
          | Some info -> (
              match info.deleted with None -> info.deleted <- Some r.time | Some _ -> ())
          | None -> ())
      | Some Unbound -> ()
      | None ->
          (* Unknown key. A root pass knows that means no binding; a
             shard defers the whole record for replay at merge, when the
             predecessor's bindings are in scope, and tombstones the key
             (whatever the binding was, the REMOVE consumed it). *)
          if not t.root then begin
            push_deferred t r;
            Int_tbl.replace t.names k Unbound
          end)
  | Ops.Read { fh; _ }, _ -> count_io t fh ~is_read:true r
  | Ops.Write { fh; _ }, _ -> count_io t fh ~is_read:false r
  | _ -> ()

let merge a b =
  if not a.root then invalid_arg "Names.merge: left accumulator must be a root (or merged) one";
  (* 1. Replay b's unresolved REMOVEs, oldest first, against a's state —
     exactly the bindings the sequential pass would have had in scope,
     since a deferred key was never locally bound before the REMOVE. *)
  for i = 0 to b.n_deferred - 1 do
    observe a b.deferred.(i)
  done;
  (* 2. Orphan I/O resolves only against files named before b began. An
     orphan with no match is dropped, matching the sequential pass: the
     file was first named after those accesses, so they never counted. *)
  Fh_tbl.iter
    (fun fh (o : orphan) ->
      match Fh_tbl.find_opt a.files fh with
      | Some info ->
          info.reads <- info.reads + o.o_reads;
          info.writes <- info.writes + o.o_writes;
          info.bytes <- info.bytes +. o.o_bytes;
          note_size info o.o_max
      | None -> ())
    b.orphans;
  (* 3. Absorb b's per-file infos; earlier-shard category/created win
     (first-sight semantics), counters add. [deleted] takes the
     earliest time from either side: the sequential pass stamps it at
     the first successful REMOVE, and a remove b resolved locally can
     precede one that had to wait for merge-time replay (step 1). *)
  Fh_tbl.iter
    (fun fh (bi : file_info) ->
      match Fh_tbl.find_opt a.files fh with
      | None -> Fh_tbl.add a.files fh bi
      | Some ai ->
          (match ai.created with None -> ai.created <- bi.created | Some _ -> ());
          (match (ai.deleted, bi.deleted) with
          | None, d -> ai.deleted <- d
          | Some ta, Some tb when tb < ta -> ai.deleted <- Some tb
          | _ -> ());
          note_size ai bi.max_size;
          ai.reads <- ai.reads + bi.reads;
          ai.writes <- ai.writes + bi.writes;
          ai.bytes <- ai.bytes +. bi.bytes)
    b.files;
  (* 4. Keys b touched take b's (later) end state.  b's packed keys are
     meaningless in a's atom space: translate through b's interner and
     re-intern in a. *)
  Int_tbl.iter
    (fun k st ->
      let ka = key a ~dir:(key_dir b k) ~name:(key_name b k) in
      match st with
      | Bound _ -> Int_tbl.replace a.names ka st
      | Unbound -> Int_tbl.remove a.names ka)
    b.names;
  if b.t_min < a.t_min then a.t_min <- b.t_min;
  if b.t_max > a.t_max then a.t_max <- b.t_max;
  a
[@@nt.raise_ok
  "the parallel driver always folds shard accumulators into the root one, so a non-root left \
   argument is a programming error at the merge call site"]

let lifetime info =
  match (info.created, info.deleted) with
  | Some c, Some d when d >= c -> Some (d -. c)
  | _ -> None

type category_stats = {
  files_seen : int;
  created_deleted : int;
  median_size : float;
  median_lifetime : float;
  read_only_pct : float;
  write_only_pct : float;
}

let infos t = Fh_tbl.fold (fun _ info acc -> info :: acc) t.files []

let stats t =
  let all = infos t in
  List.filter_map
    (fun cat ->
      let members = List.filter (fun i -> i.category = cat) all in
      match members with
      | [] -> None
      | _ ->
          let n = List.length members in
          let sizes = Array.of_list (List.map (fun i -> i.max_size) members) in
          let lifetimes = List.filter_map lifetime members in
          let accessed = List.filter (fun i -> i.reads + i.writes > 0) members in
          let na = max 1 (List.length accessed) in
          let read_only =
            List.length (List.filter (fun i -> i.reads > 0 && i.writes = 0) accessed)
          in
          let write_only =
            List.length (List.filter (fun i -> i.writes > 0 && i.reads = 0) accessed)
          in
          Some
            ( cat,
              {
                files_seen = n;
                created_deleted =
                  List.length
                    (List.filter (fun i -> i.created <> None && i.deleted <> None) members);
                median_size = Stats.median sizes;
                median_lifetime =
                  (match lifetimes with
                  | [] -> nan
                  | _ -> Stats.median (Array.of_list lifetimes));
                read_only_pct = 100. *. float_of_int read_only /. float_of_int na;
                write_only_pct = 100. *. float_of_int write_only /. float_of_int na;
              } ))
    all_categories

let created_deleted t =
  List.filter (fun i -> i.created <> None && i.deleted <> None) (infos t)

let created_deleted_total t = List.length (created_deleted t)

let byte_share t cat =
  let all = infos t in
  let total = List.fold_left (fun acc i -> acc +. i.bytes) 0. all in
  if total = 0. then 0.
  else
    List.fold_left (fun acc i -> if i.category = cat then acc +. i.bytes else acc) 0. all /. total

let unique_file_share t cat =
  let all = infos t in
  let n = List.length all in
  if n = 0 then 0.
  else
    float_of_int (List.length (List.filter (fun i -> i.category = cat) all)) /. float_of_int n

let lock_created_deleted_pct t =
  let cd = created_deleted t in
  let total = List.length cd in
  if total = 0 then 0.
  else
    100.
    *. float_of_int (List.length (List.filter (fun i -> i.category = Lock) cd))
    /. float_of_int total

let fraction_under values threshold =
  match values with
  | [] -> nan
  | _ ->
      float_of_int (List.length (List.filter (fun v -> v <= threshold) values))
      /. float_of_int (List.length values)

let lock_lifetime_under t seconds =
  let ls = List.filter_map lifetime (List.filter (fun i -> i.category = Lock) (infos t)) in
  fraction_under ls seconds

let composer_size_under t bytes =
  let sizes =
    List.map (fun i -> i.max_size) (List.filter (fun i -> i.category = Mail_composer) (infos t))
  in
  fraction_under sizes bytes

let composer_lifetime_under t seconds =
  let ls =
    List.filter_map lifetime (List.filter (fun i -> i.category = Mail_composer) (infos t))
  in
  fraction_under ls seconds

(* --- the prediction experiment --- *)

type prediction = {
  tested : int;
  size_accuracy : float;
  lifetime_accuracy : float;
  pattern_accuracy : float;
}

let size_class s = if s <= 8192. then 0 else if s <= 1_048_576. then 1 else 2
let lifetime_class l = if l <= 1. then 0 else if l <= 60. then 1 else if l <= 3600. then 2 else 3

let pattern_class info =
  if info.reads > 0 && info.writes = 0 then 0
  else if info.writes > 0 && info.reads = 0 then 1
  else 2

let majority classes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    classes;
  Hashtbl.fold (fun c n acc -> match acc with Some (_, bn) when bn >= n -> acc | _ -> Some (c, n)) tbl None
  |> Option.map fst

let predict t =
  let mid = (t.t_min +. t.t_max) /. 2. in
  let all = List.filter (fun i -> i.created <> None) (infos t) in
  let train, test =
    List.partition (fun i -> Option.value i.created ~default:0. < mid) all
  in
  let learn extract members =
    List.filter_map
      (fun cat ->
        let of_cat = List.filter (fun i -> i.category = cat) members in
        match majority (List.filter_map extract of_cat) with
        | Some c -> Some (cat, c)
        | None -> None)
      all_categories
  in
  let size_of i = Some (size_class i.max_size) in
  let lt_of i = Option.map lifetime_class (lifetime i) in
  let pat_of i = if i.reads + i.writes > 0 then Some (pattern_class i) else None in
  let size_model = learn size_of train in
  let lt_model = learn lt_of train in
  let pat_model = learn pat_of train in
  let accuracy model extract =
    let scored =
      List.filter_map
        (fun i ->
          match (List.assoc_opt i.category model, extract i) with
          | Some predicted, Some actual -> Some (predicted = actual)
          | _ -> None)
        test
    in
    match scored with
    | [] -> nan
    | _ ->
        float_of_int (List.length (List.filter Fun.id scored)) /. float_of_int (List.length scored)
  in
  {
    tested = List.length test;
    size_accuracy = accuracy size_model size_of;
    lifetime_accuracy = accuracy lt_model lt_of;
    pattern_accuracy = accuracy pat_model pat_of;
  }

let footprint t =
  let files = Fh_tbl.length t.files in
  let atoms = Intern.size t.atoms in
  let names = Int_tbl.length t.names in
  let orphans = Fh_tbl.length t.orphans in
  let deferred = t.n_deferred in
  Nt_obs.Footprint.v
    ~cards:(files + atoms + names + orphans + deferred)
    ~words:
      (32 + (files * 20) + (atoms * 10) + (names * 8) + (orphans * 12)
      + (Array.length t.deferred * 2))
