(* Simulator tests: event engine, record sorter, server file system,
   NFS server, caching client, disk model and the read-ahead policies. *)

module Engine = Nt_sim.Engine
module Record_sorter = Nt_sim.Record_sorter
module Sim_fs = Nt_sim.Sim_fs
module Server = Nt_sim.Server
module Client = Nt_sim.Client
module Disk = Nt_sim.Disk
module Ra = Nt_sim.Readahead
module Types = Nt_nfs.Types
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Record = Nt_trace.Record
module Ip = Nt_net.Ip_addr
module Prng = Nt_util.Prng

(* --- engine --- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e 3. (fun () -> log := 3 :: !log);
  Engine.schedule e 1. (fun () -> log := 1 :: !log);
  Engine.schedule e 2. (fun () -> log := 2 :: !log);
  Engine.run_all e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e 1. (fun () -> log := i :: !log)
  done;
  Engine.run_all e;
  Alcotest.(check (list int)) "insertion order at same time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e 1. (fun () -> incr fired);
  Engine.schedule e 5. (fun () -> incr fired);
  Engine.run_until e 3.;
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check (float 0.) "clock at horizon") 3. (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e)

let test_engine_cascading () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then Engine.schedule_in e 1. tick
  in
  Engine.schedule e 0.5 tick;
  Engine.run_all e;
  Alcotest.(check int) "events schedule events" 10 !count

let test_engine_past_rejected () =
  let e = Engine.create ~start:100. () in
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Engine.schedule: time is in the past") (fun () ->
      Engine.schedule e 50. ignore)

let test_engine_growth () =
  let e = Engine.create () in
  let n = 5000 in
  let fired = ref 0 in
  for i = 1 to n do
    Engine.schedule e (float_of_int (n - i)) (fun () -> incr fired)
  done;
  Engine.run_all e;
  Alcotest.(check int) "all fired" n !fired

(* --- record sorter --- *)

let mk_record time : Record.t =
  {
    time;
    reply_time = None;
    client = Ip.v 10 0 0 1;
    server = Ip.v 10 0 0 2;
    version = 3;
    xid = 0;
    uid = 0;
    gid = 0;
    call = Ops.Null;
    result = None;
  }

let test_sorter_orders () =
  let out = ref [] in
  let s = Record_sorter.create ~horizon:10. (fun r -> out := r.Record.time :: !out) in
  List.iter (fun t -> Record_sorter.push s (mk_record t)) [ 5.; 3.; 8.; 1.; 30. ];
  Record_sorter.flush s;
  Alcotest.(check (list (float 0.))) "sorted output" [ 1.; 3.; 5.; 8.; 30. ] (List.rev !out)

let test_sorter_streams_before_flush () =
  let out = ref [] in
  let s = Record_sorter.create ~horizon:5. (fun r -> out := r.Record.time :: !out) in
  Record_sorter.push s (mk_record 1.);
  Record_sorter.push s (mk_record 2.);
  Record_sorter.push s (mk_record 100.);
  (* 1 and 2 are more than 5s behind 100: released already. *)
  Alcotest.(check int) "early records released" 2 (List.length !out);
  Record_sorter.flush s;
  Alcotest.(check int) "all released" 3 (Record_sorter.released s)

let prop_sorter_total_order =
  QCheck.Test.make ~name:"sorter emits globally sorted stream" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_range 0. 50.))
    (fun times ->
      let out = ref [] in
      let s = Record_sorter.create ~horizon:60. (fun r -> out := r.Record.time :: !out) in
      List.iter (fun t -> Record_sorter.push s (mk_record t)) times;
      Record_sorter.flush s;
      let result = List.rev !out in
      List.length result = List.length times
      && List.for_all2 ( = ) (List.sort compare times) result)

(* --- sim fs --- *)

let test_fs_create_lookup () =
  let fs = Sim_fs.create () in
  let root = Sim_fs.root fs in
  let f = Sim_fs.create_file fs ~time:1. ~parent:root ~name:"f" ~mode:0o644 ~uid:7 ~gid:8 in
  let found = Sim_fs.lookup fs root "f" in
  Alcotest.(check int) "same inode" (Sim_fs.fileid f) (Sim_fs.fileid found);
  let attr = Sim_fs.fattr fs f in
  Alcotest.(check int) "uid" 7 attr.uid;
  Alcotest.(check bool) "regular" true (attr.ftype = Types.Reg)

let test_fs_lookup_enoent () =
  let fs = Sim_fs.create () in
  Alcotest.(check bool) "ENOENT" true
    (try
       ignore (Sim_fs.lookup fs (Sim_fs.root fs) "missing");
       false
     with Sim_fs.Fs_error Types.Err_noent -> true)

let test_fs_create_eexist () =
  let fs = Sim_fs.create () in
  let root = Sim_fs.root fs in
  ignore (Sim_fs.create_file fs ~time:1. ~parent:root ~name:"f" ~mode:0o644 ~uid:0 ~gid:0);
  Alcotest.(check bool) "EEXIST" true
    (try
       ignore (Sim_fs.create_file fs ~time:2. ~parent:root ~name:"f" ~mode:0o644 ~uid:0 ~gid:0);
       false
     with Sim_fs.Fs_error Types.Err_exist -> true)

let test_fs_write_extends () =
  let fs = Sim_fs.create () in
  let f = Sim_fs.create_file fs ~time:1. ~parent:(Sim_fs.root fs) ~name:"f" ~mode:0o644 ~uid:0 ~gid:0 in
  Sim_fs.write fs ~time:2. f ~offset:100L ~count:50;
  Alcotest.(check int64) "extended" 150L (Sim_fs.size f);
  Sim_fs.write fs ~time:3. f ~offset:0L ~count:10;
  Alcotest.(check int64) "not shrunk" 150L (Sim_fs.size f);
  Alcotest.(check (float 0.) "mtime bumped") 3. (Types.time_to_float (Sim_fs.fattr fs f).mtime)

let test_fs_truncate () =
  let fs = Sim_fs.create () in
  let f = Sim_fs.create_file fs ~time:1. ~parent:(Sim_fs.root fs) ~name:"f" ~mode:0o644 ~uid:0 ~gid:0 in
  Sim_fs.write fs ~time:2. f ~offset:0L ~count:1000;
  Sim_fs.truncate fs ~time:3. f 10L;
  Alcotest.(check int64) "truncated" 10L (Sim_fs.size f)

let test_fs_remove () =
  let fs = Sim_fs.create () in
  let root = Sim_fs.root fs in
  ignore (Sim_fs.create_file fs ~time:1. ~parent:root ~name:"f" ~mode:0o644 ~uid:0 ~gid:0);
  let before = Sim_fs.node_count fs in
  Sim_fs.remove fs ~time:2. ~parent:root ~name:"f";
  Alcotest.(check int) "node freed" (before - 1) (Sim_fs.node_count fs);
  Alcotest.(check bool) "gone" true
    (try
       ignore (Sim_fs.lookup fs root "f");
       false
     with Sim_fs.Fs_error Types.Err_noent -> true)

let test_fs_rmdir_notempty () =
  let fs = Sim_fs.create () in
  let root = Sim_fs.root fs in
  let d = Sim_fs.mkdir fs ~time:1. ~parent:root ~name:"d" ~mode:0o755 in
  ignore (Sim_fs.create_file fs ~time:1. ~parent:d ~name:"f" ~mode:0o644 ~uid:0 ~gid:0);
  Alcotest.(check bool) "ENOTEMPTY" true
    (try
       Sim_fs.rmdir fs ~time:2. ~parent:root ~name:"d";
       false
     with Sim_fs.Fs_error Types.Err_notempty -> true);
  Sim_fs.remove fs ~time:3. ~parent:d ~name:"f";
  Sim_fs.rmdir fs ~time:4. ~parent:root ~name:"d"

let test_fs_rename_replaces () =
  let fs = Sim_fs.create () in
  let root = Sim_fs.root fs in
  let a = Sim_fs.create_file fs ~time:1. ~parent:root ~name:"a" ~mode:0o644 ~uid:0 ~gid:0 in
  ignore (Sim_fs.create_file fs ~time:1. ~parent:root ~name:"b" ~mode:0o644 ~uid:0 ~gid:0);
  Sim_fs.rename fs ~time:2. ~from_parent:root ~from_name:"a" ~to_parent:root ~to_name:"b";
  let b = Sim_fs.lookup fs root "b" in
  Alcotest.(check int) "a took b's place" (Sim_fs.fileid a) (Sim_fs.fileid b);
  Alcotest.(check bool) "a gone" true
    (try
       ignore (Sim_fs.lookup fs root "a");
       false
     with Sim_fs.Fs_error Types.Err_noent -> true)

let test_fs_hard_link () =
  let fs = Sim_fs.create () in
  let root = Sim_fs.root fs in
  let f = Sim_fs.create_file fs ~time:1. ~parent:root ~name:"f" ~mode:0o644 ~uid:0 ~gid:0 in
  Sim_fs.link fs ~time:2. f ~to_parent:root ~to_name:"g";
  Alcotest.(check int) "nlink 2" 2 (Sim_fs.nlink f);
  Sim_fs.remove fs ~time:3. ~parent:root ~name:"f";
  Alcotest.(check int) "nlink back to 1" 1 (Sim_fs.nlink f);
  (* Inode still reachable through the second name. *)
  Alcotest.(check int) "still linked" (Sim_fs.fileid f) (Sim_fs.fileid (Sim_fs.lookup fs root "g"))

let test_fs_mkdir_path () =
  let fs = Sim_fs.create () in
  let leaf = Sim_fs.mkdir_path fs ~time:1. [ "a"; "b"; "c" ] in
  let found =
    Sim_fs.lookup fs (Sim_fs.lookup fs (Sim_fs.lookup fs (Sim_fs.root fs) "a") "b") "c"
  in
  Alcotest.(check int) "path built" (Sim_fs.fileid leaf) (Sim_fs.fileid found);
  (* Idempotent. *)
  let again = Sim_fs.mkdir_path fs ~time:2. [ "a"; "b"; "c" ] in
  Alcotest.(check int) "idempotent" (Sim_fs.fileid leaf) (Sim_fs.fileid again)

let test_fs_fh_roundtrip () =
  let fs = Sim_fs.create ~fsid:9 () in
  let f = Sim_fs.create_file fs ~time:1. ~parent:(Sim_fs.root fs) ~name:"f" ~mode:0o644 ~uid:0 ~gid:0 in
  let fh = Sim_fs.fh_of_node fs f in
  match Sim_fs.node_of_fh fs fh with
  | Some n -> Alcotest.(check int) "node via fh" (Sim_fs.fileid f) (Sim_fs.fileid n)
  | None -> Alcotest.fail "fh did not resolve"

(* --- server --- *)

let make_server () = Server.create ~fsid:1 ~ip:(Ip.v 10 0 0 2) ()

let ok = function Ok r -> r | Error st -> Alcotest.failf "unexpected %s" (Types.nfsstat_to_string st)

let test_server_create_write_read () =
  let srv = make_server () in
  let root = Server.root_fh srv in
  let fh =
    match ok (Server.handle srv ~time:1. (Ops.Create { dir = root; name = "f"; mode = 0o644; exclusive = false })) with
    | Ops.R_create { fh = Some fh; _ } -> fh
    | _ -> Alcotest.fail "create"
  in
  (match ok (Server.handle srv ~time:2. (Ops.Write { fh; offset = 0L; count = 10000; stable = Types.Unstable })) with
  | Ops.R_write { count; attr = Some a; _ } ->
      Alcotest.(check int) "write count" 10000 count;
      Alcotest.(check int64) "size" 10000L a.size
  | _ -> Alcotest.fail "write");
  (match ok (Server.handle srv ~time:3. (Ops.Read { fh; offset = 8192L; count = 8192 })) with
  | Ops.R_read { count; eof; _ } ->
      Alcotest.(check int) "short read at eof" 1808 count;
      Alcotest.(check bool) "eof" true eof
  | _ -> Alcotest.fail "read");
  match ok (Server.handle srv ~time:4. (Ops.Read { fh; offset = 20000L; count = 8192 })) with
  | Ops.R_read { count; eof; _ } ->
      Alcotest.(check int) "read past eof" 0 count;
      Alcotest.(check bool) "eof past end" true eof
  | _ -> Alcotest.fail "read past eof"

let test_server_stale_handle () =
  let srv = make_server () in
  let bogus = Fh.make ~fsid:1 ~fileid:424242 in
  match Server.handle srv ~time:1. (Ops.Getattr bogus) with
  | Error Types.Err_stale -> ()
  | _ -> Alcotest.fail "expected ESTALE"

let test_server_lookup_noent () =
  let srv = make_server () in
  match Server.handle srv ~time:1. (Ops.Lookup { dir = Server.root_fh srv; name = "ghost" }) with
  | Error Types.Err_noent -> ()
  | _ -> Alcotest.fail "expected ENOENT"

let test_server_readdir_pagination () =
  let srv = make_server () in
  let root = Server.root_fh srv in
  for i = 0 to 99 do
    ignore
      (Server.handle srv ~time:1.
         (Ops.Create { dir = root; name = Printf.sprintf "f%03d" i; mode = 0o644; exclusive = false }))
  done;
  let rec page cookie acc guard =
    if guard > 100 then Alcotest.fail "no progress"
    else
      match ok (Server.handle srv ~time:2. (Ops.Readdir { dir = root; cookie; count = 1024 })) with
      | Ops.R_readdir { entries; eof } ->
          let acc = acc @ List.map (fun (e : Ops.dir_entry) -> e.entry_name) entries in
          if eof then acc
          else page (List.nth entries (List.length entries - 1)).Ops.entry_cookie acc (guard + 1)
      | _ -> Alcotest.fail "readdir"
  in
  let names = page 0L [] 0 in
  Alcotest.(check int) "all entries once" 100 (List.length names);
  Alcotest.(check int) "no duplicates" 100 (List.length (List.sort_uniq compare names))

let test_server_setattr_truncate () =
  let srv = make_server () in
  let root = Server.root_fh srv in
  let fh =
    match ok (Server.handle srv ~time:1. (Ops.Create { dir = root; name = "t"; mode = 0o644; exclusive = false })) with
    | Ops.R_create { fh = Some fh; _ } -> fh
    | _ -> Alcotest.fail "create"
  in
  ignore (Server.handle srv ~time:2. (Ops.Write { fh; offset = 0L; count = 5000; stable = Types.File_sync }));
  match ok (Server.handle srv ~time:3. (Ops.Setattr { fh; attrs = { Types.empty_sattr with set_size = Some 100L } })) with
  | Ops.R_attr a -> Alcotest.(check int64) "truncated" 100L a.size
  | _ -> Alcotest.fail "setattr"

(* --- client --- *)

type harness = {
  client : Client.t;
  server : Server.t;
  records : Record.t list ref;
}

let make_harness ?(config_f = fun c -> c) () =
  let server = make_server () in
  let records = ref [] in
  let cfg = config_f (Client.default_config ~ip:(Ip.v 10 0 0 5) ~version:3) in
  let client =
    Client.create cfg ~server ~sink:(fun r -> records := r :: !records) ~rng:(Prng.create 1L)
  in
  { client; server; records }

let count_proc h proc =
  List.length (List.filter (fun r -> Record.proc r = proc) !(h.records))

let setup_file h ~name ~size =
  let fs = Server.fs h.server in
  let node =
    Sim_fs.create_file fs ~time:0. ~parent:(Sim_fs.root fs) ~name ~mode:0o644 ~uid:0 ~gid:0
  in
  Sim_fs.write fs ~time:0. node ~offset:0L ~count:size;
  Sim_fs.fh_of_node fs node

let test_client_lookup_path_caches () =
  let h = make_harness () in
  let _ = setup_file h ~name:"file" ~size:100 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  ignore (Client.lookup_path s [ "file" ]);
  let first = count_proc h Nt_nfs.Proc.Lookup in
  ignore (Client.lookup_path s [ "file" ]);
  Alcotest.(check int) "dnlc absorbs second lookup" first (count_proc h Nt_nfs.Proc.Lookup)

let test_client_read_whole_then_cached () =
  let h = make_harness () in
  let fh = setup_file h ~name:"f" ~size:50_000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  let got = Client.read_whole s fh in
  Alcotest.(check int) "read everything" 50_000 got;
  let wire_reads = count_proc h Nt_nfs.Proc.Read in
  Alcotest.(check int) "chunked in rsize units" 7 wire_reads;
  (* Within the attribute TTL, a re-read is silent. *)
  let got2 = Client.read s fh ~offset:0L ~len:50_000 in
  Alcotest.(check int) "cache hit returns data" 50_000 got2;
  Alcotest.(check int) "no extra wire reads" wire_reads (count_proc h Nt_nfs.Proc.Read)

let test_client_invalidation_on_mtime_change () =
  let h = make_harness () in
  let fh = setup_file h ~name:"f" ~size:20_000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  ignore (Client.read_whole s fh);
  let reads_before = count_proc h Nt_nfs.Proc.Read in
  (* Another party writes the file on the server. *)
  let fs = Server.fs h.server in
  (match Sim_fs.node_of_fh fs fh with
  | Some node -> Sim_fs.write fs ~time:20. node ~offset:0L ~count:100
  | None -> Alcotest.fail "node");
  (* Move past the attribute TTL, then open: GETATTR sees the new
     mtime, invalidates, and the next read goes to the wire. *)
  Client.set_now s (Client.now s +. 60.);
  (match Client.open_file s fh with
  | `Changed -> ()
  | `Cached -> Alcotest.fail "should have noticed the change"
  | `Error -> Alcotest.fail "open error");
  ignore (Client.read_whole s fh);
  Alcotest.(check bool) "re-read hit the wire" true (count_proc h Nt_nfs.Proc.Read > reads_before)

let test_client_getattr_ttl () =
  let h = make_harness () in
  let fh = setup_file h ~name:"f" ~size:100 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  ignore (Client.open_file s fh);
  let getattrs = count_proc h Nt_nfs.Proc.Getattr in
  ignore (Client.open_file s fh);
  Alcotest.(check int) "fresh attrs reused" getattrs (count_proc h Nt_nfs.Proc.Getattr);
  Client.set_now s (Client.now s +. 60.);
  ignore (Client.open_file s fh);
  Alcotest.(check int) "expired attrs revalidated" (getattrs + 1) (count_proc h Nt_nfs.Proc.Getattr)

let test_client_append_offset () =
  let h = make_harness () in
  let fh = setup_file h ~name:"f" ~size:10_000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  Client.append s fh ~len:500 ~sync:true;
  let writes = List.filter (fun r -> Record.proc r = Nt_nfs.Proc.Write) !(h.records) in
  (match writes with
  | [ w ] -> Alcotest.(check (option int64)) "append at eof" (Some 10_000L) (Record.offset w)
  | _ -> Alcotest.fail "expected one write");
  Alcotest.(check int64) "server size grew" 10_500L
    (match Sim_fs.node_of_fh (Server.fs h.server) fh with
    | Some n -> Sim_fs.size n
    | None -> -1L)

let test_client_write_alignment () =
  let h = make_harness () in
  let fh = setup_file h ~name:"f" ~size:100_000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  (* Unaligned 20KB write: first chunk reaches the boundary, the rest
     are block-aligned. *)
  Client.write s fh ~offset:1000L ~len:20_000 ~sync:false;
  let writes =
    List.filter_map
      (fun r -> if Record.proc r = Nt_nfs.Proc.Write then Record.offset r else None)
      !(h.records)
    |> List.sort compare
  in
  (match writes with
  | first :: rest ->
      Alcotest.(check int64) "first at requested offset" 1000L first;
      List.iter
        (fun off -> Alcotest.(check int64) "aligned" 0L (Int64.rem off 8192L))
        rest
  | [] -> Alcotest.fail "no writes");
  Alcotest.(check int) "commit after async write" 1 (count_proc h Nt_nfs.Proc.Commit)

let test_client_v2_no_access_no_commit () =
  let h = make_harness ~config_f:(fun c -> { c with version = 2 }) () in
  let fh = setup_file h ~name:"f" ~size:9000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  ignore (Client.open_file s fh);
  ignore (Client.read_whole s fh);
  Client.write s fh ~offset:0L ~len:100 ~sync:false;
  Alcotest.(check int) "no ACCESS in v2" 0 (count_proc h Nt_nfs.Proc.Access);
  Alcotest.(check int) "no COMMIT in v2" 0 (count_proc h Nt_nfs.Proc.Commit);
  List.iter
    (fun r -> Alcotest.(check int) "records marked v2" 2 r.Record.version)
    !(h.records)

let test_client_cache_capacity_eviction () =
  let h =
    make_harness ~config_f:(fun c -> { c with cache_capacity = 30_000; nfsiods = 1 }) ()
  in
  let fh1 = setup_file h ~name:"a" ~size:20_000 in
  let fh2 = setup_file h ~name:"b" ~size:20_000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  ignore (Client.read_whole s fh1);
  ignore (Client.read_whole s fh2);
  (* fh1 was evicted by fh2; re-reading it within the TTL still goes to
     the wire. *)
  let before = count_proc h Nt_nfs.Proc.Read in
  ignore (Client.read s fh1 ~offset:0L ~len:20_000);
  Alcotest.(check bool) "evicted file re-read" true (count_proc h Nt_nfs.Proc.Read > before)

let test_client_create_remove () =
  let h = make_harness () in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  let root = Server.root_fh h.server in
  (match Client.create_file s ~dir:root ~name:"lockfile" ~mode:0o600 () with
  | Some _ -> ()
  | None -> Alcotest.fail "create failed");
  Client.remove s ~dir:root ~name:"lockfile";
  Alcotest.(check int) "create then remove on the wire" 1 (count_proc h Nt_nfs.Proc.Create);
  Alcotest.(check int) "remove" 1 (count_proc h Nt_nfs.Proc.Remove);
  (* Server agrees the file is gone. *)
  match Server.handle h.server ~time:99. (Ops.Lookup { dir = root; name = "lockfile" }) with
  | Error Types.Err_noent -> ()
  | _ -> Alcotest.fail "file should be gone"

let test_client_session_clock_advances () =
  let h = make_harness () in
  let fh = setup_file h ~name:"f" ~size:80_000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  ignore (Client.read_whole s fh);
  Alcotest.(check bool) "time advanced" true (Client.now s > 10.)

let test_client_single_nfsiod_no_reorder () =
  let h = make_harness ~config_f:(fun c -> { c with nfsiods = 1 }) () in
  let fh = setup_file h ~name:"f" ~size:400_000 in
  let s = Client.session h.client ~time:10. ~uid:1 ~gid:1 in
  ignore (Client.read_whole s fh);
  let times =
    List.rev_map (fun r -> r.Record.time) !(h.records)
  in
  let rec sorted = function a :: b :: tl -> a <= b && sorted (b :: tl) | _ -> true in
  Alcotest.(check bool) "wire order monotone with 1 nfsiod" true (sorted times)

(* --- disk + readahead --- *)

let test_disk_seek_vs_near () =
  let d = Disk.create () in
  let t1 = Disk.read d ~block:0 ~nblocks:1 in
  let t2 = Disk.read d ~block:2 ~nblocks:1 (* within near threshold *) in
  let t3 = Disk.read d ~block:5000 ~nblocks:1 (* far: pays a seek *) in
  Alcotest.(check bool) "near cheaper than far" true (t2 < t3);
  Alcotest.(check bool) "positive times" true (t1 > 0. && t2 > 0. && t3 > 0.)

let test_disk_prefetch_free_reads () =
  let d = Disk.create () in
  ignore (Disk.prefetch d ~block:10 ~nblocks:4);
  Alcotest.(check (float 0.) "buffered read is free") 0. (Disk.read d ~block:10 ~nblocks:4);
  Alcotest.(check bool) "buffer consumed" true (Disk.read d ~block:10 ~nblocks:1 > 0.)

let test_disk_busy_time_accumulates () =
  let d = Disk.create () in
  ignore (Disk.read d ~block:0 ~nblocks:8);
  let b1 = Disk.busy_time d in
  ignore (Disk.read d ~block:1000 ~nblocks:8);
  Alcotest.(check bool) "busy grows" true (Disk.busy_time d > b1)

let test_readahead_in_order_equal () =
  let fragile = Ra.run ~reorder_fraction:0.0 Ra.Fragile in
  let metric = Ra.run ~reorder_fraction:0.0 Ra.Metric in
  Alcotest.(check int) "no reordering observed" 0 fragile.reordered;
  Alcotest.(check (float 0.01) "policies equal when in order") fragile.total_time metric.total_time

let test_readahead_metric_wins_under_reorder () =
  let fragile = Ra.run ~reorder_fraction:0.10 Ra.Fragile in
  let metric = Ra.run ~reorder_fraction:0.10 Ra.Metric in
  Alcotest.(check bool) "reordering present" true (fragile.reordered > 0);
  Alcotest.(check bool) "paper's >5% improvement" true (Ra.speedup ~baseline:fragile metric > 5.)

let test_readahead_beats_none () =
  let none = Ra.run ~reorder_fraction:0.1 Ra.No_readahead in
  let metric = Ra.run ~reorder_fraction:0.1 Ra.Metric in
  Alcotest.(check bool) "read-ahead helps" true (metric.total_time < none.total_time)

(* --- fault injection --- *)

module Fault = Nt_sim.Fault

let apply_n inj n =
  let out = ref [] in
  for i = 0 to n - 1 do
    let data = Printf.sprintf "packet-%06d-%s" i (String.make 60 'p') in
    out := List.rev_append (Fault.apply inj ~time:(float_of_int i *. 0.001) data) !out
  done;
  List.rev !out

let test_fault_noop_identity () =
  Alcotest.(check bool) "none is noop" true (Fault.is_noop Fault.none);
  Alcotest.(check bool) "campus_burst is not" false (Fault.is_noop Fault.campus_burst);
  let inj = Fault.create Fault.none in
  let data = String.make 80 'x' in
  (match Fault.apply inj ~time:42.5 data with
  | [ (t, bytes) ] ->
      Alcotest.(check (float 0.)) "time untouched" 42.5 t;
      Alcotest.(check string) "bytes untouched" data bytes
  | _ -> Alcotest.fail "noop must emit exactly one packet");
  ignore (apply_n inj 999);
  let c = Fault.counts inj in
  Alcotest.(check int) "presented" 1000 c.presented;
  Alcotest.(check int) "emitted = presented" 1000 c.emitted;
  Alcotest.(check int) "nothing dropped" 0
    (c.dropped + c.corrupted + c.truncated + c.duplicated + c.reordered)

let test_fault_deterministic () =
  let run () =
    let inj = Fault.create ~seed:99L Fault.campus_burst in
    let out = apply_n inj 2000 in
    (out, Fault.counts inj)
  in
  let out1, c1 = run () in
  let out2, c2 = run () in
  Alcotest.(check bool) "same emissions" true (out1 = out2);
  Alcotest.(check string) "same counts" (Fault.counts_to_string c1) (Fault.counts_to_string c2)

let test_fault_conservation () =
  let inj = Fault.create ~seed:7L Fault.campus_burst in
  let out = apply_n inj 20_000 in
  let c = Fault.counts inj in
  Alcotest.(check int) "emitted = presented - dropped + duplicated"
    (c.presented - c.dropped + c.duplicated) c.emitted;
  Alcotest.(check int) "emission list agrees" c.emitted (List.length out);
  Alcotest.(check bool) "every fault class exercised" true
    (c.dropped > 0 && c.corrupted > 0 && c.truncated > 0 && c.duplicated > 0 && c.reordered > 0)

let test_fault_burst_loss_rate () =
  (* campus_burst models the CAMPUS mirror port: a few percent mean
     loss concentrated in bursts (Gilbert-Elliott bad states). *)
  let inj = Fault.create ~seed:2003L Fault.campus_burst in
  ignore (apply_n inj 100_000);
  let c = Fault.counts inj in
  let rate = float_of_int c.dropped /. float_of_int c.presented in
  Alcotest.(check bool) "mean loss in [0.5%, 5%]" true (rate > 0.005 && rate < 0.05)

let test_fault_bernoulli_rate () =
  let inj = Fault.create ~seed:5L (Fault.bernoulli_loss 0.10) in
  ignore (apply_n inj 50_000);
  let c = Fault.counts inj in
  let rate = float_of_int c.dropped /. float_of_int c.presented in
  Alcotest.(check bool) "close to 10%" true (rate > 0.08 && rate < 0.12)

let test_fault_shapes () =
  (* Force each fault with probability 1 and check the output shape. *)
  let data = String.make 100 'q' in
  let trunc = Fault.create { Fault.none with truncate = 1.0; truncate_to = 60 } in
  (match Fault.apply trunc ~time:0. data with
  | [ (_, bytes) ] -> Alcotest.(check int) "snaplen cut" 60 (String.length bytes)
  | _ -> Alcotest.fail "truncate emits one");
  let dup = Fault.create { Fault.none with duplicate = 1.0; duplicate_delay = 0.25 } in
  (match Fault.apply dup ~time:1. data with
  | [ (t1, b1); (t2, b2) ] ->
      Alcotest.(check string) "copy 1" data b1;
      Alcotest.(check string) "copy 2" data b2;
      Alcotest.(check (float 1e-9)) "delayed copy" 1.25 t2;
      Alcotest.(check (float 1e-9)) "original time" 1. t1
  | _ -> Alcotest.fail "duplicate emits two");
  let reord = Fault.create { Fault.none with reorder = 1.0; reorder_displace = 0.5 } in
  (match Fault.apply reord ~time:2. data with
  | [ (t, _) ] -> Alcotest.(check (float 1e-9)) "displaced" 2.5 t
  | _ -> Alcotest.fail "reorder emits one");
  let corr =
    Fault.create { Fault.none with corrupt = 1.0; corrupt_bytes = 1; corrupt_addrs_only = true }
  in
  match Fault.apply corr ~time:3. data with
  | [ (_, bytes) ] ->
      Alcotest.(check int) "length preserved" 100 (String.length bytes);
      let diffs = ref [] in
      String.iteri (fun i c -> if c <> data.[i] then diffs := i :: !diffs) bytes;
      Alcotest.(check int) "exactly one byte flipped" 1 (List.length !diffs);
      let pos = List.hd !diffs in
      Alcotest.(check bool) "flip confined to IP addresses" true (pos >= 26 && pos <= 33)
  | _ -> Alcotest.fail "corrupt emits one"

let test_fault_clock_jitter_bounded () =
  let inj = Fault.create ~seed:3L { Fault.none with clock_jitter = 0.001 } in
  let ok = ref true in
  for i = 0 to 999 do
    let time = float_of_int i in
    match Fault.apply inj ~time "x" with
    | [ (t, _) ] -> if Float.abs (t -. time) > 0.001 then ok := false
    | _ -> ok := false
  done;
  Alcotest.(check bool) "jitter within bound" true !ok

let test_fault_mangle_pcap () =
  let buf = Buffer.create 256 in
  let w = Nt_net.Pcap.writer_to_buffer buf in
  for i = 1 to 10 do
    Nt_net.Pcap.write w ~time:(float_of_int i) (String.make 40 'm')
  done;
  let original = Buffer.contents buf in
  let mangled, applied = Fault.mangle_pcap ~seed:11L ~flips:25 original in
  Alcotest.(check int) "flips applied" 25 applied;
  Alcotest.(check int) "length preserved" (String.length original) (String.length mangled);
  Alcotest.(check string) "global header spared" (String.sub original 0 24)
    (String.sub mangled 0 24);
  Alcotest.(check bool) "body changed" true
    (String.sub original 24 (String.length original - 24)
    <> String.sub mangled 24 (String.length mangled - 24))

let () =
  Alcotest.run "nt_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_order;
          Alcotest.test_case "fifo at same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "cascading events" `Quick test_engine_cascading;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "heap growth" `Quick test_engine_growth;
        ] );
      ( "record_sorter",
        [
          Alcotest.test_case "orders" `Quick test_sorter_orders;
          Alcotest.test_case "streams early" `Quick test_sorter_streams_before_flush;
          QCheck_alcotest.to_alcotest prop_sorter_total_order;
        ] );
      ( "sim_fs",
        [
          Alcotest.test_case "create/lookup" `Quick test_fs_create_lookup;
          Alcotest.test_case "lookup enoent" `Quick test_fs_lookup_enoent;
          Alcotest.test_case "create eexist" `Quick test_fs_create_eexist;
          Alcotest.test_case "write extends" `Quick test_fs_write_extends;
          Alcotest.test_case "truncate" `Quick test_fs_truncate;
          Alcotest.test_case "remove" `Quick test_fs_remove;
          Alcotest.test_case "rmdir notempty" `Quick test_fs_rmdir_notempty;
          Alcotest.test_case "rename replaces" `Quick test_fs_rename_replaces;
          Alcotest.test_case "hard link" `Quick test_fs_hard_link;
          Alcotest.test_case "mkdir_path" `Quick test_fs_mkdir_path;
          Alcotest.test_case "fh roundtrip" `Quick test_fs_fh_roundtrip;
        ] );
      ( "server",
        [
          Alcotest.test_case "create/write/read" `Quick test_server_create_write_read;
          Alcotest.test_case "stale handle" `Quick test_server_stale_handle;
          Alcotest.test_case "lookup noent" `Quick test_server_lookup_noent;
          Alcotest.test_case "readdir pagination" `Quick test_server_readdir_pagination;
          Alcotest.test_case "setattr truncate" `Quick test_server_setattr_truncate;
        ] );
      ( "client",
        [
          Alcotest.test_case "dnlc caching" `Quick test_client_lookup_path_caches;
          Alcotest.test_case "read then cached" `Quick test_client_read_whole_then_cached;
          Alcotest.test_case "mtime invalidation" `Quick test_client_invalidation_on_mtime_change;
          Alcotest.test_case "getattr ttl" `Quick test_client_getattr_ttl;
          Alcotest.test_case "append offset" `Quick test_client_append_offset;
          Alcotest.test_case "write alignment" `Quick test_client_write_alignment;
          Alcotest.test_case "v2 client" `Quick test_client_v2_no_access_no_commit;
          Alcotest.test_case "capacity eviction" `Quick test_client_cache_capacity_eviction;
          Alcotest.test_case "create/remove" `Quick test_client_create_remove;
          Alcotest.test_case "clock advances" `Quick test_client_session_clock_advances;
          Alcotest.test_case "1 nfsiod no reorder" `Quick test_client_single_nfsiod_no_reorder;
        ] );
      ( "disk",
        [
          Alcotest.test_case "seek vs near" `Quick test_disk_seek_vs_near;
          Alcotest.test_case "prefetch free" `Quick test_disk_prefetch_free_reads;
          Alcotest.test_case "busy time" `Quick test_disk_busy_time_accumulates;
        ] );
      ( "readahead",
        [
          Alcotest.test_case "in order equal" `Quick test_readahead_in_order_equal;
          Alcotest.test_case "metric wins" `Quick test_readahead_metric_wins_under_reorder;
          Alcotest.test_case "beats none" `Quick test_readahead_beats_none;
        ] );
      ( "fault",
        [
          Alcotest.test_case "noop identity" `Quick test_fault_noop_identity;
          Alcotest.test_case "deterministic" `Quick test_fault_deterministic;
          Alcotest.test_case "conservation" `Quick test_fault_conservation;
          Alcotest.test_case "burst loss rate" `Quick test_fault_burst_loss_rate;
          Alcotest.test_case "bernoulli rate" `Quick test_fault_bernoulli_rate;
          Alcotest.test_case "fault shapes" `Quick test_fault_shapes;
          Alcotest.test_case "clock jitter bounded" `Quick test_fault_clock_jitter_bounded;
          Alcotest.test_case "mangle pcap" `Quick test_fault_mangle_pcap;
        ] );
    ]
