lib/util/trace_week.ml: Array Float Printf
