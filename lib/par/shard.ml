module Record = Nt_trace.Record

type slice = { off : int; len : int }

let plan ~records_per_shard n =
  if records_per_shard <= 0 then invalid_arg "Shard.plan: records_per_shard must be positive";
  if n <= 0 then [||]
  else begin
    let shards = (n + records_per_shard - 1) / records_per_shard in
    Array.init shards (fun i ->
        let off = i * records_per_shard in
        { off; len = min records_per_shard (n - off) })
  end

let plan_by_time ~window (records : Record.t array) =
  if window <= 0. then invalid_arg "Shard.plan_by_time: window must be positive";
  let n = Array.length records in
  if n = 0 then [||]
  else begin
    let slices = ref [] in
    let start = ref 0 in
    let boundary = ref (records.(0).Record.time +. window) in
    for i = 0 to n - 1 do
      if records.(i).Record.time >= !boundary then begin
        slices := { off = !start; len = i - !start } :: !slices;
        start := i;
        (* Skip windows nothing fell into; shards are never empty. *)
        while records.(i).Record.time >= !boundary do
          boundary := !boundary +. window
        done
      end
    done;
    slices := { off = !start; len = n - !start } :: !slices;
    Array.of_list (List.rev !slices)
  end

let check ~total slices =
  let next = ref 0 in
  Array.iter
    (fun s ->
      if s.off <> !next || s.len < 0 then invalid_arg "Shard.check: slices must tile the input";
      next := s.off + s.len)
    slices;
  if !next <> total then invalid_arg "Shard.check: slices must cover the input"
