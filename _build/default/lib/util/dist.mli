(** Random variates for the workload models.

    Each sampler takes the {!Prng.t} explicitly; none keeps hidden state.
    Parameterisations follow the usual conventions (rates, not scales,
    for the exponential; log-space mean/sigma for the lognormal). *)

val exponential : Prng.t -> rate:float -> float
(** Inter-arrival times. [rate] is events per unit time; result > 0. *)

val uniform : Prng.t -> lo:float -> hi:float -> float

val lognormal : Prng.t -> mu:float -> sigma:float -> float
(** [exp (mu + sigma * N(0,1))]. Used for mailbox and file sizes. *)

val normal : Prng.t -> mean:float -> stddev:float -> float
(** Box–Muller. *)

val pareto : Prng.t -> alpha:float -> x_min:float -> float
(** Heavy-tailed sizes (large research data files). *)

val geometric : Prng.t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; >= 0. *)

val poisson : Prng.t -> mean:float -> int
(** Knuth's method for small means, normal approximation above 60. *)

type zipf
(** Precomputed Zipf sampler over ranks [1..n]. *)

val zipf : n:int -> s:float -> zipf
(** Build a sampler with exponent [s] over [n] ranks. O(n) setup. *)

val zipf_draw : Prng.t -> zipf -> int
(** Rank in [\[1, n\]]; rank 1 is the most popular. O(log n). *)

val zipf_n : zipf -> int

type 'a weighted
(** Discrete distribution over arbitrary values. *)

val weighted : ('a * float) list -> 'a weighted
(** Weights must be positive; they need not sum to 1. *)

val weighted_draw : Prng.t -> 'a weighted -> 'a
