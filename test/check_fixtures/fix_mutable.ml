(* Domain-safety fixtures. This module is imported by Fix_driver, so it
   is reachable from the configured task-closure roots and every
   top-level mutable cell here is shared state. *)

(* violation: dom-top-mutable (shared Hashtbl at module top level) *)
let table : (int, int) Hashtbl.t = Hashtbl.create 16

type cell = { mutable hits : int }

(* violation: dom-mutable-record (record literal with a mutable field) *)
let counter = { hits = 0 }

(* clean twin: Atomic wrapping is the sanctioned form of shared state *)
let safe = Atomic.make 0

(* suppressed: the allowlist attribute must silence the rule and be
   counted as an allowed finding *)
let suppressed = ref 0 [@@nt.domain_safe "fixture: suppression must count, not fire"]

let bump () =
  Hashtbl.replace table 0 (counter.hits + Atomic.get safe + !suppressed);
  counter.hits <- counter.hits + 1
