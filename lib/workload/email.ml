module Prng = Nt_util.Prng
module Dist = Nt_util.Dist
module Tw = Nt_util.Trace_week
module Ip_addr = Nt_net.Ip_addr
module Engine = Nt_sim.Engine
module Server = Nt_sim.Server
module Sim_fs = Nt_sim.Sim_fs
module Client = Nt_sim.Client

type config = {
  users : int;
  seed : int64;
  scale_note : float;
  sessions_per_user_day : float;
  deliveries_per_user_day : float;
  pop_checks_per_user_day : float;
  mailbox_median_bytes : float;
  mailbox_sigma : float;
  message_median_bytes : float;
  message_sigma : float;
  rescan_interval : float;
  checkpoint_interval : float;
  session_mean_duration : float;
  compose_prob : float;
  expunge_prob : float;
  file_based_caching : bool;
      (* true = NFS's whole-file invalidation (the paper's reality);
         false = the paper's 6.1.2 counterfactual, block/message-level
         caching where clients fetch only what changed *)
}

let default_config =
  {
    users = 100;
    seed = 1003L;
    scale_note = 0.01;
    sessions_per_user_day = 1.35;
    deliveries_per_user_day = 1.8;
    pop_checks_per_user_day = 12.0;
    mailbox_median_bytes = 1_500_000.;
    mailbox_sigma = 0.9;
    message_median_bytes = 3_500.;
    message_sigma = 1.1;
    rescan_interval = 60.;
    checkpoint_interval = 750.;
    session_mean_duration = 1800.;
    compose_prob = 0.025;
    expunge_prob = 0.45;
    file_based_caching = true;
  }

type user = {
  index : int;
  uid : int;
  gid : int;
  uname : string;
  mutable in_session : bool;
  mutable compose_seq : int;
  login_host : int;  (** index into login clients *)
}

type t = {
  config : config;
  engine : Engine.t;
  rng : Prng.t;
  users : user array;
  smtp_client : Client.t;
  pop_clients : Client.t array;
  login_clients : Client.t array;
  activity : Dist.zipf;  (** which users get the mail / log in most *)
  mutable stop : float;
  mutable sessions_started : int;
  mutable deliveries_made : int;
}

let quota = 50_000_000. (* the CAMPUS 50 MB home quota *)

let mailbox_size cfg rng =
  let mu = log cfg.mailbox_median_bytes in
  Float.min (quota *. 0.8) (Float.max 4096. (Dist.lognormal rng ~mu ~sigma:cfg.mailbox_sigma))

let message_size cfg rng =
  let mu = log cfg.message_median_bytes in
  (* Occasional large attachments. *)
  if Prng.chance rng 0.09 then Dist.uniform rng ~lo:50_000. ~hi:350_000.
  else Float.max 400. (Dist.lognormal rng ~mu ~sigma:cfg.message_sigma)

let uname_of i = Printf.sprintf "u%04d" i

(* --- initial file system population (no trace records emitted) --- *)

let populate (cfg : config) rng server =
  let fs = Server.fs server in
  let t0 = Tw.week_start -. (30. *. 86400.) in
  let users_dir = Sim_fs.mkdir_path fs ~time:t0 [ "users" ] in
  for i = 0 to cfg.users - 1 do
    let home =
      Sim_fs.mkdir fs ~time:t0 ~parent:users_dir ~name:(uname_of i) ~mode:0o755
    in
    let file name size =
      let n =
        Sim_fs.create_file fs ~time:t0 ~parent:home ~name ~mode:0o644 ~uid:(1000 + i) ~gid:100
      in
      Sim_fs.write fs ~time:t0 n ~offset:0L ~count:size
    in
    file ".cshrc" (600 + Prng.int rng 600);
    file ".login" (250 + Prng.int rng 300);
    file ".pinerc" (11_000 + Prng.int rng 15_000);
    file ".addressbook" (1_500 + Prng.int rng 8_000);
    file ".inbox" (int_of_float (mailbox_size cfg rng));
    (* Saved-mail folders. *)
    let mail = Sim_fs.mkdir fs ~time:t0 ~parent:home ~name:"mail" ~mode:0o700 in
    let folders = 1 + Prng.int rng 4 in
    for f = 0 to folders - 1 do
      let n =
        Sim_fs.create_file fs ~time:t0 ~parent:mail
          ~name:(Printf.sprintf "saved-%02d" f)
          ~mode:0o600 ~uid:(1000 + i) ~gid:100
      in
      Sim_fs.write fs ~time:t0 n ~offset:0L
        ~count:(int_of_float (Float.max 2000. (Dist.lognormal rng ~mu:(log 80_000.) ~sigma:1.2)))
    done
  done

let setup cfg ~engine ~server ~sink =
  let rng = Prng.create cfg.seed in
  populate cfg rng server;
  let mk_client ip =
    let cfg =
      { (Client.default_config ~ip ~version:3) with
        nfsiods = 8; reorder_prob = 0.8; reorder_mean = 0.005; reorder_cap = 0.0085;
        cache_capacity = 1024 * 1024 * 1024 }
    in
    Client.create cfg ~server ~sink ~rng:(Prng.split rng)
  in
  let smtp_client = mk_client (Ip_addr.v 10 1 0 10) in
  let pop_clients = Array.init 2 (fun i -> mk_client (Ip_addr.v 10 1 0 (20 + i))) in
  let login_clients = Array.init 2 (fun i -> mk_client (Ip_addr.v 10 1 0 (30 + i))) in
  let users =
    Array.init cfg.users (fun i ->
        {
          index = i;
          uid = 1000 + i;
          gid = 100;
          uname = uname_of i;
          in_session = false;
          compose_seq = 0;
          login_host = Prng.int rng (Array.length login_clients);
        })
  in
  {
    config = cfg;
    engine;
    rng;
    users;
    smtp_client;
    pop_clients;
    login_clients;
    activity = Dist.zipf ~n:cfg.users ~s:0.6;
    stop = infinity;
    sessions_started = 0;
    deliveries_made = 0;
  }

let pick_user t = t.users.(Dist.zipf_draw t.rng t.activity - 1)

let home_path u = [ "users"; u.uname ]
let inbox_path u = home_path u @ [ ".inbox" ]

(* Resolve the user's home and inbox through the client (cheap once the
   dnlc is warm), then run [f] under the inbox lock. *)
let with_inbox_lock s u ~f =
  match Client.lookup_path s (home_path u) with
  | None -> ()
  | Some home -> (
      match Client.lookup_path s (inbox_path u) with
      | None -> ()
      | Some inbox ->
          let lock_name = ".inbox.lock" in
          (match Client.create_file s ~dir:home ~name:lock_name ~mode:0o600 () with
          | Some _lock_fh ->
              f ~home ~inbox;
              Client.remove s ~dir:home ~name:lock_name
          | None ->
              (* Lock collision: retry-less skip, like mail.local backing off. *)
              ()))

(* Fetch only the newly appended tail of the mailbox (mail clients
   track how much of the file they have already parsed); occasionally a
   client rescans the whole file instead (e.g. after an expunge by
   another session). *)
let refresh_mailbox t s inbox ~full_prob =
  if Prng.chance t.rng full_prob then ignore (Client.read_whole s inbox)
  else begin
    match Client.cached_size s inbox with
    | Some size when Int64.compare size 0L > 0 ->
        let size = Int64.to_int size in
        let frac = Dist.uniform t.rng ~lo:0.02 ~hi:0.10 in
        let tail = max 2048 (int_of_float (float_of_int size *. frac)) in
        let offset = max 0 (size - tail) in
        ignore (Client.read s inbox ~offset:(Int64.of_int offset) ~len:(size - offset))
    | _ -> ignore (Client.read_whole s inbox)
  end

(* Jump to a particular message without a full scan: a few page-sized
   reads at essentially random offsets (the client knows the byte range
   of each message from its last parse). *)
let message_fetch t s inbox =
  match Client.cached_size s inbox with
  | Some size when Int64.compare size 65536L > 0 ->
      let size = Int64.to_int size in
      let pages = 2 + Prng.int t.rng 3 in
      for _ = 1 to pages do
        let off = Prng.int t.rng (max 1 (size - 16384)) in
        ignore (Client.read s inbox ~offset:(Int64.of_int off) ~len:(8192 + Prng.int t.rng 8192))
      done
  | _ -> ()

(* Update message status flags in place (what clients like mutt do
   instead of rewriting the whole file). *)
let flag_update t s inbox ~with_read =
  match Client.cached_size s inbox with
  | Some size when Int64.compare size 65536L > 0 ->
      let size = Int64.to_int size in
      let touches = 2 + Prng.int t.rng 4 in
      for _ = 1 to touches do
        let off = Prng.int t.rng (max 1 (size - 8192)) in
        if with_read then
          ignore (Client.read s inbox ~offset:(Int64.of_int off) ~len:4096);
        Client.write s inbox ~offset:(Int64.of_int off) ~len:(200 + Prng.int t.rng 600) ~sync:true
      done
  | _ -> ()

(* --- SMTP delivery --- *)

let deliver t time =
  t.deliveries_made <- t.deliveries_made + 1;
  let u = pick_user t in
  let s = Client.session t.smtp_client ~time ~uid:1 ~gid:1 in
  (* mail.local drains the queue: often several messages arrive under
     one lock acquisition. *)
  let batch = 1 + Dist.geometric t.rng ~p:0.6 in
  let size = ref 0 in
  for _ = 1 to batch do
    size := !size + int_of_float (message_size t.config t.rng)
  done;
  with_inbox_lock s u ~f:(fun ~home:_ ~inbox ->
      let current = Option.value (Client.cached_size s inbox) ~default:0L in
      if Int64.to_float current +. float_of_int !size < quota then
        Client.append s inbox ~len:!size ~sync:true)

(* --- interactive mail session --- *)

let compose_tick t s u ~home =
  let name = Printf.sprintf "pine-tmp-%04d-%03d" u.index u.compose_seq in
  u.compose_seq <- u.compose_seq + 1;
  let size =
    Float.min 40_000. (Float.max 200. (Dist.lognormal t.rng ~mu:(log 2_000.) ~sigma:1.0))
  in
  (match Client.create_file s ~dir:home ~name ~mode:0o600 () with
  | Some fh ->
      Client.write s fh ~offset:0L ~len:(int_of_float size) ~sync:true;
      (* The composer file is deleted when the draft is sent: usually
         within a minute, occasionally after much longer. *)
      let linger =
        if Prng.chance t.rng 0.45 then Dist.uniform t.rng ~lo:5. ~hi:55.
        else Dist.exponential t.rng ~rate:(1. /. 300.)
      in
      let del_time = Client.now s +. linger in
      Engine.schedule t.engine del_time (fun () ->
          let s' = Client.session (t.login_clients.(u.login_host)) ~time:del_time ~uid:u.uid ~gid:u.gid in
          match Client.lookup_path s' (home_path u) with
          | Some home -> Client.remove s' ~dir:home ~name
          | None -> ())
  | None -> ())

(* Pine rewrites the mailbox from the first modified message onward: a
   mid-session checkpoint usually touches only a tail of the file, the
   final quit-time expunge rewrites the whole file. *)
let rewrite_mailbox t s inbox ~mode =
  match Client.getattr s inbox with
  | None -> ()
  | Some attr ->
      let old_size = Int64.to_int attr.size in
      if old_size > 0 then begin
        match mode with
        | `Checkpoint ->
            let dirty_frac = Dist.uniform t.rng ~lo:0.12 ~hi:0.42 in
            let from = int_of_float (float_of_int old_size *. (1. -. dirty_frac)) in
            Client.write s inbox ~offset:(Int64.of_int from) ~len:(old_size - from) ~sync:false
        | `Quit shrink ->
            let new_size =
              if shrink then
                let frac = Dist.uniform t.rng ~lo:0.02 ~hi:0.08 in
                int_of_float (float_of_int old_size *. (1. -. frac))
              else old_size
            in
            (* An expunge compacts message by message and revisits
               headers, so the rewrite seeks (Figure 5's ~0.6-sequential
               long writes); a flags-only rewrite streams in order. *)
            let jump_prob = if shrink then 0.55 else 0. in
            Io_patterns.seeky_write t.rng s inbox ~total:new_size ~seg_min:8_000 ~seg_max:16_000
              ~jump_prob ~sync:false;
            if new_size < old_size then Client.truncate s inbox (Int64.of_int new_size)
      end

let rec session_poll t u ~session_end ~last_checkpoint time =
  if time < t.stop && time < session_end then begin
    let client = t.login_clients.(u.login_host) in
    let s = Client.session client ~time ~uid:u.uid ~gid:u.gid in
    (match Client.lookup_path s (home_path u) with
    | None -> ()
    | Some home -> (
        match Client.lookup_path s (inbox_path u) with
        | None -> ()
        | Some inbox ->
            (* Pine's periodic new-mail check. *)
            (match Client.open_file s inbox with
            | `Cached -> ()
            | `Changed ->
                with_inbox_lock s u ~f:(fun ~home:_ ~inbox ->
                    let full_prob = if t.config.file_based_caching then 0.35 else 0.02 in
                    refresh_mailbox t s inbox ~full_prob)
            | `Error -> ());
            if Prng.chance t.rng t.config.compose_prob then compose_tick t s u ~home;
            (* Reading an individual message the client has not cached. *)
            if Prng.chance t.rng 0.06 then message_fetch t s inbox;
            (* Some clients update status flags in place. *)
            if Prng.chance t.rng 0.012 then
              flag_update t s inbox ~with_read:(Prng.chance t.rng 0.4);
            (* Occasional folder activity: save or re-read old mail. *)
            if Prng.chance t.rng 0.02 then begin
              match Client.lookup_path s (home_path u @ [ "mail"; "saved-00" ]) with
              | Some folder ->
                  if Prng.chance t.rng 0.5 then Client.append s folder ~len:(2_000 + Prng.int t.rng 6_000) ~sync:true
                  else ignore (Client.read_whole s folder)
              | None -> ()
            end));
    let checkpoint_due = time -. last_checkpoint >= t.config.checkpoint_interval in
    let last_checkpoint =
      if checkpoint_due then begin
        (match Client.lookup_path s (inbox_path u) with
        | Some inbox -> with_inbox_lock s u ~f:(fun ~home:_ ~inbox:_ -> rewrite_mailbox t s inbox ~mode:`Checkpoint)
        | None -> ());
        time
      end
      else last_checkpoint
    in
    let next = time +. t.config.rescan_interval *. Dist.uniform t.rng ~lo:0.8 ~hi:1.2 in
    Engine.schedule t.engine next (fun () -> session_poll t u ~session_end ~last_checkpoint next)
  end
  else session_quit t u (Float.min time t.stop)

and session_quit t u time =
  if time < t.stop then begin
    let client = t.login_clients.(u.login_host) in
    let s = Client.session client ~time ~uid:u.uid ~gid:u.gid in
    (match Client.lookup_path s (inbox_path u) with
    | Some inbox ->
        let shrink = Prng.chance t.rng t.config.expunge_prob in
        with_inbox_lock s u ~f:(fun ~home:_ ~inbox:_ -> rewrite_mailbox t s inbox ~mode:(`Quit shrink))
    | None -> ())
  end;
  u.in_session <- false

let start_session t time =
  let u = pick_user t in
  if not u.in_session then begin
    u.in_session <- true;
    t.sessions_started <- t.sessions_started + 1;
    let client = t.login_clients.(u.login_host) in
    let s = Client.session client ~time ~uid:u.uid ~gid:u.gid in
    (* Shell login: read .cshrc (and often .login). *)
    (match Client.lookup_path s (home_path u @ [ ".cshrc" ]) with
    | Some fh ->
        (match Client.open_file s fh with
        | `Changed -> ignore (Client.read_whole s fh)
        | `Cached | `Error -> ())
    | None -> ());
    if Prng.chance t.rng 0.5 then begin
      match Client.lookup_path s (home_path u @ [ ".login" ]) with
      | Some fh -> (
          match Client.open_file s fh with
          | `Changed -> ignore (Client.read_whole s fh)
          | `Cached | `Error -> ())
      | None -> ()
    end;
    (* Pine startup: config then a full locked mailbox scan. *)
    (match Client.lookup_path s (home_path u @ [ ".pinerc" ]) with
    | Some fh -> (
        match Client.open_file s fh with
        | `Changed -> ignore (Client.read_whole s fh)
        | `Cached | `Error -> ())
    | None -> ());
    with_inbox_lock s u ~f:(fun ~home:_ ~inbox -> ignore (Client.read_whole s inbox));
    let duration = Dist.exponential t.rng ~rate:(1. /. t.config.session_mean_duration) in
    let duration = Float.max 120. (Float.min 7200. duration) in
    let session_end = Client.now s +. duration in
    let first_poll = Client.now s +. t.config.rescan_interval in
    Engine.schedule t.engine first_poll (fun () ->
        session_poll t u ~session_end ~last_checkpoint:time first_poll)
  end

(* --- POP checks --- *)

let pop_check t time =
  let u = pick_user t in
  let client = t.pop_clients.(u.index mod Array.length t.pop_clients) in
  let s = Client.session client ~time ~uid:u.uid ~gid:u.gid in
  with_inbox_lock s u ~f:(fun ~home:_ ~inbox ->
      match Client.open_file s inbox with
      | `Changed ->
          let full_prob = if t.config.file_based_caching then 0.85 else 0.02 in
          refresh_mailbox t s inbox ~full_prob
      | `Cached | `Error -> ())

(* --- non-homogeneous Poisson drivers --- *)

let rec drive t ~base_rate ~intensity ~action time =
  if time < t.stop then begin
    action t time;
    let rate = Float.max 1e-9 (base_rate *. intensity time) in
    let next = time +. Dist.exponential t.rng ~rate in
    Engine.schedule t.engine next (fun () -> drive t ~base_rate ~intensity ~action next)
  end

let schedule t ~start ~stop =
  t.stop <- stop;
  let cfg = t.config in
  let per_sec daily = float_of_int cfg.users *. daily /. 86400. in
  let arm ~base_rate ~action =
    (* Desynchronise process starts slightly. *)
    let first = start +. Prng.float t.rng 30. in
    Engine.schedule t.engine first (fun () ->
        drive t ~base_rate ~intensity:Diurnal.campus_intensity ~action first)
  in
  arm ~base_rate:(per_sec cfg.deliveries_per_user_day) ~action:(fun t time -> deliver t time);
  arm ~base_rate:(per_sec cfg.sessions_per_user_day) ~action:(fun t time -> start_session t time);
  arm ~base_rate:(per_sec cfg.pop_checks_per_user_day) ~action:(fun t time -> pop_check t time)

let sessions_started t = t.sessions_started
let deliveries_made t = t.deliveries_made
