bin/nfstrace.ml: Arg Cmd Cmdliner Nt_net Nt_trace Printf Term
