(** The sequentiality metric (§6.4, Figure 5).

    A finer-grained alternative to entire/sequential/random, derived
    from Smith's layout score: the fraction of a run's accesses that
    are c-consecutive with their predecessor (within [c] blocks of
    where the previous access ended). [c = 10] is the paper's "small
    jumps allowed" variant; [c = 1] is strict consecutiveness. *)

val run_metric : ?block:int -> c:int -> Io_log.access array -> float
(** Metric for one run; 1.0 for singleton runs. *)

type curve = {
  bucket_edges : float array;  (** bytes-accessed bucket upper edges *)
  read_allowed : float array;  (** avg metric of read runs, c = 10 *)
  read_strict : float array;  (** c = 1 *)
  write_allowed : float array;
  write_strict : float array;
  cum_total_runs : float array;  (** cumulative % of runs by size *)
  cum_read_runs : float array;  (** as % of all runs *)
  cum_write_runs : float array;
}

type tally
(** Mergeable intermediate: per-bucket metric sums and run counts. Runs
    never span files, so per-file tallies combine associatively — the
    unit the parallel driver fans out. Bucket counts merge exactly;
    metric sums are floats, so a chunked merge can differ from the
    sequential pass only by float-addition reassociation. *)

val tally : unit -> tally
val tally_file : ?window:float -> tally -> Io_log.access array -> unit
(** Fold one file's accesses (window defaults to the paper's 10 ms). *)

val tally_merge : tally -> tally -> tally
(** Adds [b] into [a] and returns [a]. *)

val curve_of_tally : tally -> curve

val analyze : ?window:float -> Io_log.t -> curve
(** Figure 5: average sequentiality metric vs bytes accessed in the run
    (log buckets 16 KB – 64 MB), reads and writes, both c values, plus
    the cumulative run-size distribution. Applies the reorder-window
    sort first ([window] in seconds, default 0.01). *)
