let run_metric ?(block = 8192) ~c (run : Io_log.access array) =
  let n = Array.length run in
  if n <= 1 then 1.0
  else begin
    let consecutive = ref 0 in
    for i = 1 to n - 1 do
      let prev = run.(i - 1) in
      let expected = (prev.Io_log.offset / block) + ((prev.count + block - 1) / block) in
      let got = run.(i).Io_log.offset / block in
      if abs (got - expected) < c then incr consecutive
    done;
    float_of_int !consecutive /. float_of_int (n - 1)
  end

type curve = {
  bucket_edges : float array;
  read_allowed : float array;
  read_strict : float array;
  write_allowed : float array;
  write_strict : float array;
  cum_total_runs : float array;
  cum_read_runs : float array;
  cum_write_runs : float array;
}

(* Buckets: 16k, 32k, ..., 64M (13 buckets). *)
let edges = Array.init 13 (fun i -> 16384. *. (2. ** float_of_int i))

let bucket_of bytes =
  let rec go i =
    if i >= Array.length edges - 1 || bytes < edges.(i) then i else go (i + 1)
  in
  go 0

type tally = {
  sum_ra : float array;
  n_ra : int array;
  sum_rs : float array;
  sum_wa : float array;
  n_wa : int array;
  sum_ws : float array;
  runs_total : int array;
  runs_read : int array;
  runs_write : int array;
  mutable total_runs : int;
}

let tally () =
  let nb = Array.length edges in
  {
    sum_ra = Array.make nb 0.;
    n_ra = Array.make nb 0;
    sum_rs = Array.make nb 0.;
    sum_wa = Array.make nb 0.;
    n_wa = Array.make nb 0;
    sum_ws = Array.make nb 0.;
    runs_total = Array.make nb 0;
    runs_read = Array.make nb 0;
    runs_write = Array.make nb 0;
    total_runs = 0;
  }

let tally_file ?(window = 0.01) t accesses =
  let sorted = if window > 0. then fst (Io_log.sort_window window accesses) else accesses in
  List.iter
    (fun run ->
      let bytes =
        float_of_int (Array.fold_left (fun acc (a : Io_log.access) -> acc + a.count) 0 run)
      in
      let b = bucket_of bytes in
      t.total_runs <- t.total_runs + 1;
      t.runs_total.(b) <- t.runs_total.(b) + 1;
      let is_read = Array.for_all (fun (a : Io_log.access) -> a.is_read) run in
      let is_write = Array.for_all (fun (a : Io_log.access) -> not a.is_read) run in
      let allowed = run_metric ~c:10 run in
      let strict = run_metric ~c:1 run in
      if is_read then begin
        t.runs_read.(b) <- t.runs_read.(b) + 1;
        t.sum_ra.(b) <- t.sum_ra.(b) +. allowed;
        t.sum_rs.(b) <- t.sum_rs.(b) +. strict;
        t.n_ra.(b) <- t.n_ra.(b) + 1
      end
      else if is_write then begin
        t.runs_write.(b) <- t.runs_write.(b) + 1;
        t.sum_wa.(b) <- t.sum_wa.(b) +. allowed;
        t.sum_ws.(b) <- t.sum_ws.(b) +. strict;
        t.n_wa.(b) <- t.n_wa.(b) + 1
      end)
    (Runs.split sorted)

let tally_merge a b =
  let addf dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) +. v) src in
  let addi dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src in
  addf a.sum_ra b.sum_ra;
  addi a.n_ra b.n_ra;
  addf a.sum_rs b.sum_rs;
  addf a.sum_wa b.sum_wa;
  addi a.n_wa b.n_wa;
  addf a.sum_ws b.sum_ws;
  addi a.runs_total b.runs_total;
  addi a.runs_read b.runs_read;
  addi a.runs_write b.runs_write;
  a.total_runs <- a.total_runs + b.total_runs;
  a

let curve_of_tally t =
  let nb = Array.length edges in
  let avg sums counts =
    Array.mapi (fun i s -> if counts.(i) = 0 then nan else s /. float_of_int counts.(i)) sums
  in
  let cumulative counts =
    let out = Array.make nb 0. in
    let acc = ref 0 in
    let total = float_of_int (max 1 t.total_runs) in
    for i = 0 to nb - 1 do
      acc := !acc + counts.(i);
      out.(i) <- 100. *. float_of_int !acc /. total
    done;
    out
  in
  {
    bucket_edges = edges;
    read_allowed = avg t.sum_ra t.n_ra;
    read_strict = avg t.sum_rs t.n_ra;
    write_allowed = avg t.sum_wa t.n_wa;
    write_strict = avg t.sum_ws t.n_wa;
    cum_total_runs = cumulative t.runs_total;
    cum_read_runs = cumulative t.runs_read;
    cum_write_runs = cumulative t.runs_write;
  }

let analyze ?(window = 0.01) log =
  let t = tally () in
  Io_log.iter_files log (fun _ accesses -> tally_file ~window t accesses);
  curve_of_tally t
