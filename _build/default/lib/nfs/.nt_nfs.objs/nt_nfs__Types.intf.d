lib/nfs/types.mli:
