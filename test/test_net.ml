(* Network layer tests: IP addresses, Ethernet/IPv4/UDP/TCP codecs,
   pcap files, TCP stream reassembly. *)

module Ip = Nt_net.Ip_addr
module Frame = Nt_net.Frame
module Pcap = Nt_net.Pcap
module Tcp = Nt_net.Tcp_reassembly

let ip1 = Ip.v 10 0 0 1
let ip2 = Ip.v 192 168 1 254

(* --- ip addresses --- *)

let test_ip_to_string () =
  Alcotest.(check string) "render" "10.0.0.1" (Ip.to_string ip1);
  Alcotest.(check string) "render 2" "192.168.1.254" (Ip.to_string ip2)

let test_ip_of_string () =
  Alcotest.(check (option int)) "parse" (Some ip1) (Ip.of_string "10.0.0.1");
  Alcotest.(check (option int)) "reject short" None (Ip.of_string "10.0.0");
  Alcotest.(check (option int)) "reject range" None (Ip.of_string "10.0.0.256");
  Alcotest.(check (option int)) "reject junk" None (Ip.of_string "not.an.ip.addr")

let test_ip_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check (option string)) "roundtrip" (Some s) (Option.map Ip.to_string (Ip.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "1.2.3.4" ]

(* --- frames --- *)

let test_udp_roundtrip () =
  let f = Frame.udp ~src_ip:ip1 ~dst_ip:ip2 ~src_port:700 ~dst_port:2049 "payload-bytes" in
  match Frame.decode (Frame.encode f) with
  | Ok f' -> (
      Alcotest.(check int) "src ip" ip1 f'.src_ip;
      Alcotest.(check int) "dst ip" ip2 f'.dst_ip;
      match f'.transport with
      | Frame.Udp u ->
          Alcotest.(check int) "sport" 700 u.src_port;
          Alcotest.(check int) "dport" 2049 u.dst_port;
          Alcotest.(check string) "payload" "payload-bytes" u.payload
      | Frame.Tcp _ -> Alcotest.fail "expected UDP")
  | Error e -> Alcotest.fail e

let test_tcp_roundtrip () =
  let f =
    Frame.tcp ~syn:true ~src_ip:ip1 ~dst_ip:ip2 ~src_port:1023 ~dst_port:2049 ~seq:123456 "data"
  in
  match Frame.decode (Frame.encode f) with
  | Ok f' -> (
      match f'.transport with
      | Frame.Tcp t ->
          Alcotest.(check int) "seq" 123456 t.seq;
          Alcotest.(check bool) "syn" true t.syn;
          Alcotest.(check bool) "fin" false t.fin;
          Alcotest.(check string) "payload" "data" t.payload
      | Frame.Udp _ -> Alcotest.fail "expected TCP")
  | Error e -> Alcotest.fail e

let test_jumbo_frame () =
  let payload = String.make 8800 'J' in
  let f = Frame.udp ~src_ip:ip1 ~dst_ip:ip2 ~src_port:1 ~dst_port:2 payload in
  match Frame.decode (Frame.encode f) with
  | Ok f' -> (
      match f'.transport with
      | Frame.Udp u -> Alcotest.(check int) "jumbo payload intact" 8800 (String.length u.payload)
      | _ -> Alcotest.fail "expected UDP")
  | Error e -> Alcotest.fail e

let test_checksum_valid () =
  let raw = Frame.encode (Frame.udp ~src_ip:ip1 ~dst_ip:ip2 ~src_port:1 ~dst_port:2 "x") in
  (* Recomputing the checksum over the IP header including the stored
     checksum yields 0 (one's-complement property). *)
  Alcotest.(check int) "header sums to zero" 0 (Frame.ipv4_checksum raw ~pos:14 ~len:20)

let test_decode_errors () =
  let err s = match Frame.decode s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "short frame" true (err "tiny");
  let raw = Frame.encode (Frame.udp ~src_ip:ip1 ~dst_ip:ip2 ~src_port:1 ~dst_port:2 "hello") in
  let non_ip = Bytes.of_string raw in
  Bytes.set non_ip 12 '\x08';
  Bytes.set non_ip 13 '\x06' (* ARP *);
  Alcotest.(check bool) "non-IPv4 ethertype" true (err (Bytes.to_string non_ip));
  let truncated = String.sub raw 0 (String.length raw - 3) in
  Alcotest.(check bool) "truncated packet" true (err truncated)

let test_mac_fields () =
  let f =
    Frame.udp ~src_mac:"\x02\x00\x00\x00\x00\x0A" ~dst_mac:"\x02\x00\x00\x00\x00\x0B"
      ~src_ip:ip1 ~dst_ip:ip2 ~src_port:5 ~dst_port:6 ""
  in
  match Frame.decode (Frame.encode f) with
  | Ok f' ->
      Alcotest.(check string) "src mac" "\x02\x00\x00\x00\x00\x0A" f'.src_mac;
      Alcotest.(check string) "dst mac" "\x02\x00\x00\x00\x00\x0B" f'.dst_mac
  | Error e -> Alcotest.fail e

(* --- pcap --- *)

let test_pcap_roundtrip () =
  let buf = Buffer.create 256 in
  let w = Pcap.writer_to_buffer buf in
  Pcap.write w ~time:1003622400.000001 "packet-one";
  Pcap.write w ~time:1003622401.5 "packet-two-longer";
  let r = Pcap.reader_of_string (Buffer.contents buf) in
  (match Pcap.read_next r with
  | Some p ->
      Alcotest.(check string) "data 1" "packet-one" p.data;
      Alcotest.(check int) "orig len" 10 p.orig_len;
      Alcotest.(check (float 0.001) "time 1") 1003622400.000001 p.time
  | None -> Alcotest.fail "missing packet 1");
  (match Pcap.read_next r with
  | Some p -> Alcotest.(check string) "data 2" "packet-two-longer" p.data
  | None -> Alcotest.fail "missing packet 2");
  Alcotest.(check bool) "eof" true (Pcap.read_next r = None)

let test_pcap_snaplen () =
  let buf = Buffer.create 256 in
  let w = Pcap.writer_to_buffer ~snaplen:8 buf in
  Pcap.write w ~time:0. "0123456789ABCDEF";
  let r = Pcap.reader_of_string (Buffer.contents buf) in
  match Pcap.read_next r with
  | Some p ->
      Alcotest.(check string) "snapped" "01234567" p.data;
      Alcotest.(check int) "orig preserved" 16 p.orig_len
  | None -> Alcotest.fail "missing packet"

let test_pcap_bad_magic () =
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Pcap.reader_of_string (String.make 24 'z'));
       false
     with Pcap.Bad_format _ -> true)

let test_pcap_truncated_header () =
  Alcotest.(check bool) "short header rejected" true
    (try
       ignore (Pcap.reader_of_string "abc");
       false
     with Pcap.Bad_format _ -> true)

let test_pcap_big_endian () =
  (* Hand-build a big-endian microsecond header with one empty packet. *)
  let buf = Buffer.create 64 in
  let be32 v =
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))
  in
  be32 0xA1B2C3D4;
  Buffer.add_string buf "\x00\x02\x00\x04";
  be32 0;
  be32 0;
  be32 65535;
  be32 1;
  be32 1000;
  be32 250000;
  be32 3;
  be32 3;
  Buffer.add_string buf "abc";
  let r = Pcap.reader_of_string (Buffer.contents buf) in
  match Pcap.read_next r with
  | Some p ->
      Alcotest.(check string) "data" "abc" p.data;
      Alcotest.(check (float 1e-6) "time") 1000.25 p.time
  | None -> Alcotest.fail "missing packet"

let test_pcap_truncated_final_record () =
  (* A capture cut off mid-record must not raise: the good prefix is
     returned and the cut is accounted in read_stats. *)
  let buf = Buffer.create 256 in
  let w = Pcap.writer_to_buffer buf in
  Pcap.write w ~time:1000. "first-packet";
  Pcap.write w ~time:1001. "second-packet";
  let whole = Buffer.contents buf in
  (* Cut inside the second record's payload. *)
  let cut_payload = String.sub whole 0 (String.length whole - 5) in
  let r = Pcap.reader_of_string cut_payload in
  Alcotest.(check bool) "first packet survives" true (Pcap.read_next r <> None);
  Alcotest.(check bool) "cut record yields None" true (Pcap.read_next r = None);
  let st = Pcap.read_stats r in
  Alcotest.(check bool) "truncated tail flagged" true st.truncated_tail;
  Alcotest.(check bool) "cut bytes counted" true (st.skipped_bytes > 0);
  Alcotest.(check int) "one good record" 1 st.records;
  (* Cut inside the second record's header. *)
  let second_hdr = 24 + 16 + 12 in
  let cut_header = String.sub whole 0 (second_hdr + 7) in
  let r2 = Pcap.reader_of_string cut_header in
  Alcotest.(check bool) "first packet survives 2" true (Pcap.read_next r2 <> None);
  Alcotest.(check bool) "cut header yields None" true (Pcap.read_next r2 = None);
  Alcotest.(check bool) "tail flagged 2" true (Pcap.read_stats r2).truncated_tail

let corrupt_second_record_length () =
  (* Three packets; the middle record's incl-length field is smashed. *)
  let buf = Buffer.create 256 in
  let w = Pcap.writer_to_buffer buf in
  Pcap.write w ~time:1000. (String.make 20 'A');
  Pcap.write w ~time:1001. (String.make 24 'B');
  Pcap.write w ~time:1002. (String.make 28 'C');
  let b = Bytes.of_string (Buffer.contents buf) in
  let second = 24 + 16 + 20 in
  (* incl is the third little-endian u32 of the record header. *)
  Bytes.set b (second + 8) '\xFF';
  Bytes.set b (second + 9) '\xFF';
  Bytes.set b (second + 10) '\xFF';
  Bytes.set b (second + 11) '\x7F';
  Bytes.to_string b

let test_pcap_corrupt_raises_without_salvage () =
  let pcap = corrupt_second_record_length () in
  let r = Pcap.reader_of_string pcap in
  Alcotest.(check bool) "first ok" true (Pcap.read_next r <> None);
  Alcotest.(check bool) "corrupt length raises" true
    (try
       ignore (Pcap.read_next r);
       false
     with Pcap.Bad_format _ -> true)

let test_pcap_salvage_resyncs () =
  let pcap = corrupt_second_record_length () in
  let r = Pcap.reader_of_string ~salvage:true pcap in
  let all = List.of_seq (Pcap.packets r) in
  (* The corrupt middle record is lost; the reader resyncs on the third. *)
  Alcotest.(check int) "two packets recovered" 2 (List.length all);
  Alcotest.(check string) "first intact" (String.make 20 'A') (List.nth all 0).Pcap.data;
  Alcotest.(check string) "third recovered" (String.make 28 'C') (List.nth all 1).Pcap.data;
  let st = Pcap.read_stats r in
  Alcotest.(check int) "one salvage" 1 st.salvaged;
  (* Skipped exactly the mangled record: its 16-byte header + 24 bytes. *)
  Alcotest.(check int) "skipped bytes accounted" 40 st.skipped_bytes;
  Alcotest.(check bool) "no truncated tail" false st.truncated_tail

let test_pcap_salvage_corrupt_tail () =
  (* Corruption in the LAST record: salvage scans to EOF and reports. *)
  let buf = Buffer.create 128 in
  let w = Pcap.writer_to_buffer buf in
  Pcap.write w ~time:1000. "only-good-packet";
  Pcap.write w ~time:1001. (String.make 30 'Z');
  let b = Bytes.of_string (Buffer.contents buf) in
  let second = 24 + 16 + 16 in
  Bytes.set b (second + 8) '\xEE';
  Bytes.set b (second + 11) '\x7E';
  let r = Pcap.reader_of_string ~salvage:true (Bytes.to_string b) in
  Alcotest.(check int) "one packet" 1 (Seq.length (Pcap.packets r));
  let st = Pcap.read_stats r in
  Alcotest.(check bool) "tail reported" true (st.truncated_tail || st.skipped_bytes > 0)

let test_pcap_fold_and_seq () =
  let buf = Buffer.create 256 in
  let w = Pcap.writer_to_buffer buf in
  for i = 1 to 5 do
    Pcap.write w ~time:(float_of_int i) (String.make i 'x')
  done;
  let r = Pcap.reader_of_string (Buffer.contents buf) in
  Alcotest.(check int) "fold count" 5 (Pcap.fold r (fun acc _ -> acc + 1) 0);
  let r2 = Pcap.reader_of_string (Buffer.contents buf) in
  Alcotest.(check int) "seq length" 5 (Seq.length (Pcap.packets r2))

(* --- TCP reassembly --- *)

let flow = { Tcp.src_ip = ip1; src_port = 1000; dst_ip = ip2; dst_port = 2049 }

let collect events =
  List.filter_map (function Tcp.Data d -> Some d | Tcp.Gap _ -> None) events
  |> String.concat ""

let test_tcp_in_order () =
  let t = Tcp.create () in
  let out1 = Tcp.push t flow ~seq:100 ~syn:false "hello " in
  let out2 = Tcp.push t flow ~seq:106 ~syn:false "world" in
  Alcotest.(check string) "stream" "hello world" (collect out1 ^ collect out2)

let test_tcp_out_of_order () =
  let t = Tcp.create () in
  ignore (Tcp.push t flow ~seq:99 ~syn:true "");
  let out1 = Tcp.push t flow ~seq:106 ~syn:false "world" in
  Alcotest.(check string) "held back" "" (collect out1);
  let out2 = Tcp.push t flow ~seq:100 ~syn:false "hello " in
  Alcotest.(check string) "released in order" "hello world" (collect out2)

let test_tcp_midstream_join () =
  (* Without a SYN, the first segment seen defines the stream start —
     a monitor that attaches mid-connection must start somewhere. *)
  let t = Tcp.create () in
  let out = Tcp.push t flow ~seq:5000 ~syn:false "joined" in
  Alcotest.(check string) "first segment accepted" "joined" (collect out)

let test_tcp_duplicate () =
  let t = Tcp.create () in
  ignore (Tcp.push t flow ~seq:0 ~syn:false "abcd");
  let out = Tcp.push t flow ~seq:0 ~syn:false "abcd" in
  Alcotest.(check string) "duplicate dropped" "" (collect out)

let test_tcp_overlap () =
  let t = Tcp.create () in
  ignore (Tcp.push t flow ~seq:0 ~syn:false "abcd");
  let out = Tcp.push t flow ~seq:2 ~syn:false "cdEF" in
  Alcotest.(check string) "overlap trimmed" "EF" (collect out)

let test_tcp_syn_establishes () =
  let t = Tcp.create () in
  ignore (Tcp.push t flow ~seq:999 ~syn:true "");
  let out = Tcp.push t flow ~seq:1000 ~syn:false "after-syn" in
  Alcotest.(check string) "ISN+1" "after-syn" (collect out)

let test_tcp_gap_resync () =
  let t = Tcp.create ~max_buffered_segments:4 () in
  ignore (Tcp.push t flow ~seq:0 ~syn:false "start");
  (* Lose bytes 5..99; deliver far-ahead segments until forced resync. *)
  let got_gap = ref false in
  for i = 0 to 5 do
    let events = Tcp.push t flow ~seq:(100 + (i * 4)) ~syn:false "wxyz" in
    List.iter (function Tcp.Gap _ -> got_gap := true | Tcp.Data _ -> ()) events
  done;
  Alcotest.(check bool) "gap declared" true !got_gap;
  Alcotest.(check bool) "gap counted" true (Tcp.gaps t > 0)

let test_tcp_two_flows_independent () =
  let t = Tcp.create () in
  let flow2 = { flow with src_port = 1001 } in
  ignore (Tcp.push t flow ~seq:0 ~syn:false "AA");
  ignore (Tcp.push t flow2 ~seq:500 ~syn:false "BB");
  Alcotest.(check int) "two flows" 2 (Tcp.flows t)

let test_tcp_seq_wraparound () =
  let t = Tcp.create () in
  let near_wrap = 0xFFFFFFFE in
  ignore (Tcp.push t flow ~seq:near_wrap ~syn:false "ab");
  let out = Tcp.push t flow ~seq:0 ~syn:false "cd" in
  Alcotest.(check string) "wraps cleanly" "cd" (collect out)

let test_tcp_retransmission_wraparound () =
  (* Pure retransmissions (the d < 0 branch) across the 2^32 seq wrap:
     a duplicated segment straddling the wrap is dropped, partial
     overlaps are trimmed, and the stream stays intact. *)
  let t = Tcp.create () in
  let base = 0xFFFFFFF8 in
  ignore (Tcp.push t flow ~seq:(base - 1) ~syn:true "");
  let out1 = Tcp.push t flow ~seq:base ~syn:false "12345678" in
  Alcotest.(check string) "crosses wrap" "12345678" (collect out1);
  (* Exact duplicate of the wrap-straddling segment: retransmission. *)
  let dup = Tcp.push t flow ~seq:base ~syn:false "12345678" in
  Alcotest.(check string) "retransmission dropped" "" (collect dup);
  Alcotest.(check (list int)) "no gap events" []
    (List.filter_map (function Tcp.Gap g -> Some g | Tcp.Data _ -> None) dup);
  (* Overlapping retransmission that extends past delivered data. *)
  let out2 = Tcp.push t flow ~seq:0xFFFFFFFC ~syn:false "5678abcd" in
  Alcotest.(check string) "overlap trimmed across wrap" "abcd" (collect out2);
  Alcotest.(check int) "no gaps declared" 0 (Tcp.gaps t)

(* Drive segments through a Fault plan (duplication, displacement,
   bursty drop) and check the reassembler's contract: every Data event
   carries exactly the original bytes at the stream position implied by
   the Data/Gap sequence — degraded input, gap-accounted output. *)
let tcp_fault_plan_case ~plan ~seed ~base =
  let module Fault = Nt_sim.Fault in
  let message = String.init 960 (fun i -> Char.chr (32 + (i mod 95))) in
  let seg_len = 16 in
  let inj = Fault.create ~seed plan in
  let timed = ref [] in
  String.iteri
    (fun i _ ->
      if i mod seg_len = 0 then begin
        let payload = String.sub message i (min seg_len (String.length message - i)) in
        let seq = (base + i) land 0xFFFFFFFF in
        let at = float_of_int (i / seg_len) *. 0.001 in
        List.iter
          (fun (t, bytes) -> timed := (t, seq, bytes) :: !timed)
          (Fault.apply inj ~time:at payload)
      end)
    message;
  let arrivals =
    List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b) (List.rev !timed)
  in
  let t = Tcp.create ~max_buffered_segments:4 () in
  ignore (Tcp.push t flow ~seq:((base - 1) land 0xFFFFFFFF) ~syn:true "");
  let pos = ref 0 in
  List.iter
    (fun (_, seq, payload) ->
      List.iter
        (function
          | Tcp.Data d ->
              let expected = String.sub message !pos (String.length d) in
              Alcotest.(check string) "in-order bytes" expected d;
              pos := !pos + String.length d
          | Tcp.Gap g ->
              Alcotest.(check bool) "gap positive" true (g > 0);
              pos := !pos + g)
        (Tcp.push t flow ~seq ~syn:false payload))
    arrivals;
  let counts = Fault.counts inj in
  (counts, Tcp.gaps t, !pos)

let test_tcp_fault_duplication_reorder () =
  (* Duplication + displacement only: everything is recoverable, so the
     full message must come out with zero gaps, across the seq wrap. *)
  let module Fault = Nt_sim.Fault in
  let plan = { Fault.none with duplicate = 0.3; reorder = 0.15; reorder_displace = 0.0021 } in
  let counts, gaps, pos = tcp_fault_plan_case ~plan ~seed:11L ~base:0xFFFFFE00 in
  Alcotest.(check bool) "duplicates injected" true (counts.duplicated > 0);
  Alcotest.(check bool) "reorders injected" true (counts.reordered > 0);
  Alcotest.(check int) "no gaps" 0 gaps;
  Alcotest.(check int) "whole stream delivered" 960 pos

let test_tcp_fault_burst_loss_gap_accounted () =
  (* Add bursty loss: holes must be declared as gaps whose sizes keep
     the stream position honest (checked inside the driver). *)
  let module Fault = Nt_sim.Fault in
  let plan =
    {
      Fault.none with
      drop = Fault.Gilbert_elliott { p_gb = 0.05; p_bg = 0.3; loss_good = 0.01; loss_bad = 0.7 };
      duplicate = 0.2;
      reorder = 0.1;
      reorder_displace = 0.0021;
    }
  in
  let counts, gaps, pos = tcp_fault_plan_case ~plan ~seed:7L ~base:0xFFFFFE80 in
  Alcotest.(check bool) "packets dropped" true (counts.dropped > 0);
  Alcotest.(check bool) "gaps declared" true (gaps > 0);
  Alcotest.(check bool) "position within stream" true (pos <= 960)

let prop_tcp_shuffled_segments =
  QCheck.Test.make ~name:"reassembly restores shuffled segments" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, base) ->
      let rng = Nt_util.Prng.create (Int64.of_int (seed + 1)) in
      let message = String.init 120 (fun i -> Char.chr (33 + (i mod 90))) in
      (* split into segments of 1-20 bytes *)
      let rec split acc off =
        if off >= String.length message then List.rev acc
        else begin
          let len = min (1 + Nt_util.Prng.int rng 20) (String.length message - off) in
          split ((base + off, String.sub message off len) :: acc) (off + len)
        end
      in
      let segments = Array.of_list (split [] 0) in
      ignore base;
      (* shuffle bounded: swap adjacent pairs, so the buffer never overflows *)
      for i = 0 to Array.length segments - 2 do
        if Nt_util.Prng.bool rng then begin
          let tmp = segments.(i) in
          segments.(i) <- segments.(i + 1);
          segments.(i + 1) <- tmp
        end
      done;
      let t = Tcp.create () in
      ignore (Tcp.push t flow ~seq:(base - 1) ~syn:true "");
      let out = Buffer.create 128 in
      Array.iter
        (fun (seq, data) ->
          List.iter
            (function Tcp.Data d -> Buffer.add_string out d | Tcp.Gap _ -> ())
            (Tcp.push t flow ~seq ~syn:false data))
        segments;
      String.equal (Buffer.contents out) message)

let () =
  Alcotest.run "nt_net"
    [
      ( "ip_addr",
        [
          Alcotest.test_case "to_string" `Quick test_ip_to_string;
          Alcotest.test_case "of_string" `Quick test_ip_of_string;
          Alcotest.test_case "roundtrip" `Quick test_ip_roundtrip;
        ] );
      ( "frame",
        [
          Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "jumbo frame" `Quick test_jumbo_frame;
          Alcotest.test_case "checksum" `Quick test_checksum_valid;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "mac fields" `Quick test_mac_fields;
        ] );
      ( "pcap",
        [
          Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "snaplen" `Quick test_pcap_snaplen;
          Alcotest.test_case "bad magic" `Quick test_pcap_bad_magic;
          Alcotest.test_case "truncated header" `Quick test_pcap_truncated_header;
          Alcotest.test_case "big endian" `Quick test_pcap_big_endian;
          Alcotest.test_case "fold and seq" `Quick test_pcap_fold_and_seq;
          Alcotest.test_case "truncated final record" `Quick test_pcap_truncated_final_record;
          Alcotest.test_case "corrupt raises without salvage" `Quick
            test_pcap_corrupt_raises_without_salvage;
          Alcotest.test_case "salvage resyncs" `Quick test_pcap_salvage_resyncs;
          Alcotest.test_case "salvage corrupt tail" `Quick test_pcap_salvage_corrupt_tail;
        ] );
      ( "tcp_reassembly",
        [
          Alcotest.test_case "in order" `Quick test_tcp_in_order;
          Alcotest.test_case "out of order" `Quick test_tcp_out_of_order;
          Alcotest.test_case "mid-stream join" `Quick test_tcp_midstream_join;
          Alcotest.test_case "duplicate" `Quick test_tcp_duplicate;
          Alcotest.test_case "overlap" `Quick test_tcp_overlap;
          Alcotest.test_case "syn" `Quick test_tcp_syn_establishes;
          Alcotest.test_case "gap resync" `Quick test_tcp_gap_resync;
          Alcotest.test_case "independent flows" `Quick test_tcp_two_flows_independent;
          Alcotest.test_case "seq wraparound" `Quick test_tcp_seq_wraparound;
          Alcotest.test_case "retransmission across wrap" `Quick
            test_tcp_retransmission_wraparound;
          Alcotest.test_case "fault plan: duplication+reorder" `Quick
            test_tcp_fault_duplication_reorder;
          Alcotest.test_case "fault plan: burst loss gap-accounted" `Quick
            test_tcp_fault_burst_loss_gap_accounted;
          QCheck_alcotest.to_alcotest prop_tcp_shuffled_segments;
        ] );
    ]
