lib/analysis/lifetime.mli: Nt_trace
